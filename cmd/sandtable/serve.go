package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/serve"
)

// runServe starts the checking service: an HTTP control plane (see
// internal/serve) over the same pipeline the other subcommands drive.
// It blocks until SIGINT/SIGTERM, then drains gracefully: in-flight HTTP
// requests finish, running jobs are canceled at their next block boundary
// (keeping their last checkpoint resumable), and queued jobs are marked
// canceled.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8424", "HTTP listen address")
	artifacts := fs.String("artifacts", "", "artifact root directory, one subdirectory per job (required)")
	queueDepth := fs.Int("queue-depth", 16, "maximum queued (not yet running) jobs; beyond it submissions get 429")
	slots := fs.Int("slots", 1, "jobs run concurrently")
	workers := fs.Int("workers", 1, "default per-job BFS/replay workers when the job spec leaves workers unset")
	maxJobStates := fs.Int("max-job-states", 0, "cap every job's distinct-state budget (0 = uncapped)")
	defDeadline := fs.Duration("default-deadline", 2*time.Minute, "per-job wall-clock budget when the job spec leaves deadline unset")
	maxDeadline := fs.Duration("max-job-deadline", 0, "cap every job's wall-clock budget (0 = uncapped)")
	memBudget := fs.String("mem-budget", "", "default per-job memory budget (e.g. 8GiB); over budget the fingerprint set and frontier spill to disk (default: half of GOMEMLIMIT when that is set)")
	pprofAddr := fs.String("pprof", "", "also serve net/http/pprof, expvar, and Prometheus /metrics on this address")
	fs.Parse(args)

	if *artifacts == "" {
		return fmt.Errorf("serve: -artifacts <dir> is required")
	}
	budget, err := resolveMemBudget(*memBudget)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Options{
		Dir:             *artifacts,
		QueueDepth:      *queueDepth,
		Slots:           *slots,
		DefaultWorkers:  *workers,
		MaxJobStates:    *maxJobStates,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		MemBudget:       budget,
		Registry:        reg,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()

	if *pprofAddr != "" {
		dbgAddr, stopPprof, err := obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			return fmt.Errorf("serve: pprof: %w", err)
		}
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof and /debug/vars on http://%s\n", dbgAddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("serve: listening on http://%s (artifacts in %s, %d slot(s), queue depth %d)\n",
		ln.Addr(), *artifacts, *slots, *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "serve: %s — draining (running jobs cancel at their next block boundary)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		return nil
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return fmt.Errorf("serve: %w", err)
	}
}
