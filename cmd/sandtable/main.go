// Command sandtable is the CLI for the SandTable workflow (Figure 1 of the
// paper): specification-level model checking, simulation, constraint
// ranking, conformance checking, and implementation-level bug confirmation
// for the integrated target systems.
//
// Usage:
//
//	sandtable check   -system gosyncobj [-bug GoSyncObj#4] [-nodes 2] ...
//	sandtable simulate -system craft -walks 100
//	sandtable rank    -system xraft
//	sandtable conform -system asyncraft -walks 500
//	sandtable confirm -system gosyncobj -bug GoSyncObj#4
//	sandtable list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/ranking"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "simulate":
		err = runSimulate(args)
	case "rank":
		err = runRank(args)
	case "conform":
		err = runConform(args)
	case "confirm":
		err = runConfirm(args)
	case "replay":
		err = runReplay(args)
	case "list":
		err = runList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sandtable:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sandtable <check|simulate|rank|conform|confirm|replay|list> [flags]`)
}

// commonFlags adds the session flags shared by all subcommands.
type sessionFlags struct {
	system   *string
	bug      *string
	nodes    *int
	fixed    *bool
	timeouts *int
	requests *int
	crashes  *int
	buffer   *int
	deadline *time.Duration
}

func addSessionFlags(fs *flag.FlagSet) *sessionFlags {
	return &sessionFlags{
		system:   fs.String("system", "gosyncobj", "target system ("+strings.Join(integrations.Names(), ", ")+")"),
		bug:      fs.String("bug", "", "check a single catalogued defect (e.g. GoSyncObj#4); default: the system's verification defect set"),
		nodes:    fs.Int("nodes", 0, "cluster size (0 = system default)"),
		fixed:    fs.Bool("fixed", false, "use the fully fixed build (fix validation)"),
		timeouts: fs.Int("max-timeouts", 0, "override MaxTimeouts budget"),
		requests: fs.Int("max-requests", 0, "override MaxRequests budget"),
		crashes:  fs.Int("max-crashes", -1, "override MaxCrashes budget"),
		buffer:   fs.Int("max-buffer", 0, "override MaxBuffer budget"),
		deadline: fs.Duration("deadline", 2*time.Minute, "model checking deadline"),
	}
}

func (f *sessionFlags) session() (*sandtable.SandTable, error) {
	sys, err := integrations.Get(*f.system)
	if err != nil {
		return nil, err
	}
	cfg := sys.DefaultConfig
	if *f.nodes > 0 {
		cfg = spec.Config{Name: fmt.Sprintf("n%dw2", *f.nodes), Nodes: *f.nodes, Workload: []string{"v1", "v2"}}
	}
	bugs := bugdb.VerificationBugs(*f.system)
	if *f.fixed {
		bugs = bugdb.NoBugs()
	}
	if *f.bug != "" {
		info, ok := bugdb.ByID(*f.bug)
		if !ok {
			return nil, fmt.Errorf("unknown bug id %q", *f.bug)
		}
		bugs = bugdb.NoBugs().With(info.Key)
	}
	budget := sys.DefaultBudget
	if *f.timeouts > 0 {
		budget.MaxTimeouts = *f.timeouts
	}
	if *f.requests > 0 {
		budget.MaxRequests = *f.requests
	}
	if *f.crashes >= 0 {
		budget.MaxCrashes = *f.crashes
	}
	if *f.buffer > 0 {
		budget.MaxBuffer = *f.buffer
	}
	return sandtable.New(sys, cfg, budget, bugs), nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	sf := addSessionFlags(fs)
	workers := fs.Int("workers", 0, "BFS workers (0 = NumCPU)")
	showTrace := fs.Bool("trace", true, "print the counterexample trace")
	out := fs.String("o", "", "write the counterexample trace as JSON (replay it with `sandtable replay -trace <file>`)")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	opts := explorer.DefaultOptions()
	opts.Deadline = *sf.deadline
	opts.Workers = *workers
	res := st.Check(opts)
	fmt.Printf("explored %d distinct states (max depth %d) in %s — %.0f states/s, stop: %s\n",
		res.DistinctStates, res.MaxDepth, res.Duration.Round(time.Millisecond), res.StatesPerSecond(), res.StopReason)
	v := res.FirstViolation()
	if v == nil {
		fmt.Println("no invariant violation found")
		return nil
	}
	fmt.Printf("VIOLATION: %s at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	if *showTrace {
		fmt.Println(v.Trace.Format(false))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := v.Trace.Encode(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *out)
	}
	return nil
}

// runReplay replays a saved trace against a fresh implementation cluster,
// comparing every step (the §3.4 confirmation, decoupled from the search).
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	sf := addSessionFlags(fs)
	file := fs.String("trace", "", "trace JSON written by `sandtable check -o`")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("replay: -trace is required")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		return err
	}
	st, err := sf.session()
	if err != nil {
		return err
	}
	cluster, err := st.Sys.NewCluster(st.Config, st.ImplBugs, 1)
	if err != nil {
		return err
	}
	res, err := replay.ConfirmBug(tr, cluster, replay.Options{IgnoreVars: st.Sys.IgnoreVars, Observe: st.Sys.Observe})
	if err != nil {
		return err
	}
	if res.Confirmed {
		fmt.Printf("CONFIRMED: %d events replayed deterministically, every step conforming\n", res.Steps)
		return nil
	}
	fmt.Printf("replay diverged: %s\n", res.Divergence.Describe())
	return nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	sf := addSessionFlags(fs)
	walks := fs.Int("walks", 100, "number of random walks")
	depth := fs.Int("depth", 0, "walk depth bound (0 = until deadlock)")
	seed := fs.Int64("seed", 1, "base seed")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	sim := explorer.NewSimulator(st.Machine(), explorer.SimOptions{MaxDepth: *depth, Seed: *seed, CheckInvariants: true})
	results := sim.Walks(*walks)
	agg := explorer.Aggregate(results)
	fmt.Printf("walks=%d branch-coverage=%d event-diversity=%d max-depth=%d mean-depth=%.1f violations=%d elapsed=%s\n",
		agg.Walks, agg.BranchCoverage, agg.EventDiversity, agg.MaxDepth, agg.MeanDepth, agg.Violations, agg.TotalElapsed.Round(time.Millisecond))
	for _, w := range results {
		if w.Violation != nil {
			fmt.Printf("first violating walk: %v\n", w.Violation)
			break
		}
	}
	return nil
}

func runRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	sf := addSessionFlags(fs)
	walks := fs.Int("walks", 32, "random walks per (config, constraint) pair")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	configs := []spec.Config{
		{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}},
		{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
	}
	base := st.Budget
	budgets := []spec.Budget{base}
	lighter := base
	lighter.Name = base.Name + "-light"
	lighter.MaxTimeouts = max(1, base.MaxTimeouts-2)
	lighter.MaxCrashes = 0
	budgets = append(budgets, lighter, base.Double())
	r := st.Rank(configs, budgets, ranking.Options{WalksPerPair: *walks, Seed: 1})
	fmt.Print(r.Format())
	return nil
}

func runConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ExitOnError)
	sf := addSessionFlags(fs)
	walks := fs.Int("walks", 200, "random traces to replay")
	depth := fs.Int("depth", 30, "trace depth bound")
	seed := fs.Int64("seed", 1, "base seed")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	rep, err := st.Conform(conformance.Options{Walks: *walks, WalkDepth: *depth, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("conformance: %d walks, %d events checked in %s\n", rep.Walks, rep.EventsChecked, rep.Duration.Round(time.Millisecond))
	if rep.Passed() {
		fmt.Println("PASS: no spec/impl discrepancy found")
		return nil
	}
	fmt.Printf("DISCREPANCY: %v\n", rep.Discrepancy)
	fmt.Println("trace prefix:")
	fmt.Println(rep.Discrepancy.Trace.Format(false))
	return nil
}

func runConfirm(args []string) error {
	fs := flag.NewFlagSet("confirm", flag.ExitOnError)
	sf := addSessionFlags(fs)
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	opts := explorer.DefaultOptions()
	opts.Deadline = *sf.deadline
	res := st.Check(opts)
	v := res.FirstViolation()
	if v == nil {
		return fmt.Errorf("no violation found to confirm (%d states)", res.DistinctStates)
	}
	fmt.Printf("violation: %s at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	conf, err := st.Confirm(v)
	if err != nil {
		return err
	}
	if conf.Confirmed {
		fmt.Printf("CONFIRMED at the implementation level (%d events replayed, every step conforming)\n", conf.Steps)
		return nil
	}
	fmt.Printf("NOT confirmed — replay diverged: %s\n", conf.Divergence.Describe())
	return nil
}

func runList() error {
	fmt.Println("integrated systems:")
	for _, name := range integrations.Names() {
		fmt.Printf("  %-11s defects:", name)
		for _, b := range bugdb.ForSystem(name) {
			fmt.Printf(" %s", b.ID)
		}
		fmt.Println()
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
