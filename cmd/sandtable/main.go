// Command sandtable is the CLI for the SandTable workflow (Figure 1 of the
// paper): specification-level model checking, simulation, constraint
// ranking, conformance checking, and implementation-level bug confirmation
// for the integrated target systems.
//
// Usage:
//
//	sandtable check   -system gosyncobj [-bug GoSyncObj#4] [-nodes 2] ...
//	sandtable simulate -system craft -walks 100
//	sandtable rank    -system xraft
//	sandtable conform -system asyncraft -walks 500
//	sandtable confirm -system gosyncobj -bug GoSyncObj#4
//	sandtable serve   -addr localhost:8424 -artifacts ./jobs
//	sandtable list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/ranking"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/report"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/shrink"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/transport"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "simulate":
		err = runSimulate(args)
	case "rank":
		err = runRank(args)
	case "conform":
		err = runConform(args)
	case "confirm":
		err = runConfirm(args)
	case "replay":
		err = runReplay(args)
	case "report":
		err = runReport(args)
	case "serve":
		err = runServe(args)
	case "list":
		err = runList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sandtable:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sandtable <check|simulate|rank|conform|confirm|replay|report|serve|list> [flags]`)
}

// commonFlags adds the session flags shared by all subcommands.
type sessionFlags struct {
	system   *string
	bug      *string
	nodes    *int
	fixed    *bool
	timeouts *int
	requests *int
	crashes  *int
	dirty    *int
	buffer   *int
	deadline *time.Duration
}

func addSessionFlags(fs *flag.FlagSet) *sessionFlags {
	return &sessionFlags{
		system:   fs.String("system", "gosyncobj", "target system ("+strings.Join(integrations.Names(), ", ")+")"),
		bug:      fs.String("bug", "", "check a single catalogued defect (e.g. GoSyncObj#4); default: the system's verification defect set"),
		nodes:    fs.Int("nodes", 0, "cluster size (0 = system default)"),
		fixed:    fs.Bool("fixed", false, "use the fully fixed build (fix validation)"),
		timeouts: fs.Int("max-timeouts", 0, "override MaxTimeouts budget"),
		requests: fs.Int("max-requests", 0, "override MaxRequests budget"),
		crashes:  fs.Int("max-crashes", -1, "override MaxCrashes budget"),
		dirty:    fs.Int("max-dirty-crashes", 0, "override MaxDirtyCrashes budget (crash-consistency faults losing unsynced writes)"),
		buffer:   fs.Int("max-buffer", 0, "override MaxBuffer budget"),
		deadline: fs.Duration("deadline", 2*time.Minute, "model checking deadline"),
	}
}

// panicFlags configure the engine's graceful-degradation policy for node
// panics during implementation-level replay.
type panicFlags struct {
	tolerate    *bool
	maxRestarts *int
	mode        *string
}

func addPanicFlags(fs *flag.FlagSet) *panicFlags {
	return &panicFlags{
		tolerate:    fs.Bool("tolerate-panics", false, "convert node panics into an injected crash+restart instead of aborting the run"),
		maxRestarts: fs.Int("max-auto-restarts", 2, "per-node bound on automatic restarts after tolerated panics"),
		mode:        fs.String("panic-crash-mode", "clean", "store outcome applied on a tolerated panic: clean, lose-unsynced, or torn-batch"),
	}
}

func (p *panicFlags) apply(c *engine.Cluster) {
	if !*p.tolerate {
		return
	}
	c.SetPanicPolicy(engine.PanicPolicy{
		Tolerate:        true,
		MaxAutoRestarts: *p.maxRestarts,
		Mode:            vos.CrashMode(*p.mode),
		Backoff:         50 * time.Millisecond,
	})
}

// obsFlags are the observability flags shared by the long-running
// subcommands (check, simulate, conform, confirm, replay).
type obsFlags struct {
	progress   *time.Duration
	metricsOut *string
	traceOut   *string
	reportOut  *string
	pprofAddr  *string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		progress:   fs.Duration("progress", 0, "print TLC-style progress lines to stderr at this interval (0 = off)"),
		metricsOut: fs.String("metrics-out", "", "write the final metrics snapshot + result summary as JSON to this file"),
		traceOut:   fs.String("trace-out", "", "write structured JSONL observability events to this file"),
		reportOut:  fs.String("report", "", "render a post-run Markdown report (coverage, depth profile, counterexample) to this file (\"-\" = stdout)"),
		pprofAddr:  fs.String("pprof", "", "serve net/http/pprof, expvar, and Prometheus /metrics on this address (e.g. localhost:6060)"),
	}
}

// obsSession is the per-run observability state: the registry every layer
// reports into, the optional JSONL tracer, the progress callback, and the
// optional pprof/expvar server.
type obsSession struct {
	reg        *obs.Registry
	tracer     *obs.Tracer
	traceFile  *os.File
	progress   obs.ProgressFunc
	interval   time.Duration
	metricsOut string
	reportOut  string
	// cover is the run's coverage profile; subcommands that collect one
	// hand it over before close so it lands in the metrics artifact and the
	// rendered report.
	cover *obs.Cover
	// title heads the rendered report ("sandtable <cmd> -system <sys>").
	title     string
	stopPprof func() error
}

func (f *obsFlags) open() (*obsSession, error) {
	s := &obsSession{reg: obs.NewRegistry(), metricsOut: *f.metricsOut, reportOut: *f.reportOut}
	if len(os.Args) > 1 {
		s.title = "sandtable " + strings.Join(os.Args[1:], " ")
	}
	if *f.progress > 0 {
		s.progress = obs.StderrProgress()
		s.interval = *f.progress
	}
	if *f.traceOut != "" {
		file, err := os.Create(*f.traceOut)
		if err != nil {
			return nil, err
		}
		s.traceFile = file
		s.tracer = obs.NewTracer(file)
	}
	if *f.pprofAddr != "" {
		addr, stop, err := obs.ServeDebug(*f.pprofAddr, s.reg)
		if err != nil {
			s.close(nil)
			return nil, err
		}
		s.stopPprof = stop
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof and /debug/vars on http://%s\n", addr)
	}
	return s, nil
}

// close finalises the session: writes the metrics snapshot (merged with the
// result summary and coverage profile, stamped with the artifact schema
// version) when -metrics-out is set, renders the Markdown report when
// -report is set, flushes and closes the JSONL trace, and stops the pprof
// server.
func (s *obsSession) close(result map[string]any) error {
	var firstErr error
	var snap map[string]any
	if s.metricsOut != "" || s.reportOut != "" {
		snap = s.reg.Snapshot()
		snap["schema"] = obs.MetricsSchemaVersion
		if result != nil {
			snap["result"] = result
		}
		if s.cover != nil {
			snap["cover"] = s.cover
		}
	}
	if s.metricsOut != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err == nil {
			err = os.WriteFile(s.metricsOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			firstErr = fmt.Errorf("metrics-out: %w", err)
		} else {
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", s.metricsOut)
		}
	}
	if s.reportOut != "" {
		d := &report.Data{Title: s.title, Source: "in-memory run", Metrics: snap, Cover: s.cover}
		if err := report.WriteFile(s.reportOut, d); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("report: %w", err)
			}
		} else if s.reportOut != "-" {
			fmt.Fprintf(os.Stderr, "report written to %s\n", s.reportOut)
		}
	}
	if s.tracer != nil {
		if err := s.tracer.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%d trace events written to %s\n", s.tracer.Events(), s.traceFile.Name())
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.stopPprof != nil {
		s.stopPprof()
	}
	return firstErr
}

// shrinkTrace runs the ddmin minimizer over tr, printing the reduction
// summary and merging the shrink counters into the metrics summary. On
// failure (e.g. the trace does not reproduce under the oracle) it warns and
// hands the original trace back, so -shrink never loses a counterexample.
func shrinkTrace(m spec.Machine, tr *trace.Trace, oracle shrink.Oracle, o *obsSession, summary map[string]any) *trace.Trace {
	res, err := shrink.Minimize(m, tr, oracle, shrink.Options{Metrics: o.reg, Tracer: o.tracer})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shrink: %v (keeping the original trace)\n", err)
		return tr
	}
	fmt.Printf("shrink: %d -> %d events (%d removed, %d candidate(s) evaluated, %d spec-invalid)\n",
		res.OriginalLen, res.MinimizedLen, res.Removed, res.Attempts, res.Invalid)
	if summary != nil {
		summary["shrink_original_len"] = res.OriginalLen
		summary["shrink_minimized_len"] = res.MinimizedLen
		summary["shrink_attempts"] = res.Attempts
	}
	return res.Trace
}

func (f *sessionFlags) session() (*sandtable.SandTable, error) {
	sys, err := integrations.Get(*f.system)
	if err != nil {
		return nil, err
	}
	cfg := sys.DefaultConfig
	if *f.nodes > 0 {
		cfg = spec.Config{Name: fmt.Sprintf("n%dw2", *f.nodes), Nodes: *f.nodes, Workload: []string{"v1", "v2"}}
	}
	bugs := bugdb.VerificationBugs(*f.system)
	if *f.fixed {
		bugs = bugdb.NoBugs()
	}
	if *f.bug != "" {
		info, ok := bugdb.ByID(*f.bug)
		if !ok {
			return nil, fmt.Errorf("unknown bug id %q", *f.bug)
		}
		bugs = bugdb.NoBugs().With(info.Key)
	}
	budget := sys.DefaultBudget
	if *f.timeouts > 0 {
		budget.MaxTimeouts = *f.timeouts
	}
	if *f.requests > 0 {
		budget.MaxRequests = *f.requests
	}
	if *f.crashes >= 0 {
		budget.MaxCrashes = *f.crashes
	}
	if *f.dirty > 0 {
		budget.MaxDirtyCrashes = *f.dirty
	}
	if *f.buffer > 0 {
		budget.MaxBuffer = *f.buffer
	}
	return sandtable.New(sys, cfg, budget, bugs), nil
}

// resolveMemBudget turns the -mem-budget flag into a byte count. An empty
// flag defers to the GOMEMLIMIT environment variable when one is set: half
// the runtime's soft limit goes to exploration state, leaving the rest for
// transient expansion buffers, so a process capped by its operator spills
// instead of thrashing the GC. Returns 0 (no budget) when neither is set.
func resolveMemBudget(flagVal string) (int64, error) {
	if flagVal != "" {
		n, err := explorer.ParseByteSize(flagVal)
		if err != nil {
			return 0, fmt.Errorf("-mem-budget: %w", err)
		}
		return n, nil
	}
	env := os.Getenv("GOMEMLIMIT")
	if env == "" || env == "off" {
		return 0, nil
	}
	n, err := explorer.ParseByteSize(env)
	if err != nil {
		// GOMEMLIMIT is the runtime's contract, not ours; an unparsable
		// value is its problem and not a reason to refuse the run.
		return 0, nil
	}
	return n / 2, nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	sf := addSessionFlags(fs)
	of := addObsFlags(fs)
	workers := fs.Int("workers", 0, "BFS workers (0 = NumCPU)")
	maxStates := fs.Int("max-states", 0, "stop after this many distinct states (0 = off; checked at block boundaries)")
	fpShards := fs.Int("fpset-shards", 0, "fingerprint-set shard count, rounded up to a power of two (0 = automatic, sized from GOMAXPROCS)")
	ckDir := fs.String("checkpoint", "", "write periodic exploration snapshots to this directory (enables checkpointing)")
	ckEvery := fs.Duration("checkpoint-every", 0, "minimum wall-clock time between snapshots (default 60s once -checkpoint is set)")
	ckStates := fs.Int("checkpoint-states", 0, "also snapshot every N newly discovered distinct states")
	resume := fs.Bool("resume", false, "resume from the snapshot in the -checkpoint directory instead of starting fresh")
	memBudget := fs.String("mem-budget", "", "hard memory budget for exploration state (e.g. 8GiB); over budget the fingerprint set and frontier spill to disk (default: half of GOMEMLIMIT when that is set)")
	spillDir := fs.String("spill-dir", "", "directory for spill scratch files (default: the -checkpoint directory, else the system temp dir)")
	doShrink := fs.Bool("shrink", false, "minimize the counterexample with delta debugging (ddmin) before printing/writing it")
	showTrace := fs.Bool("trace", true, "print the counterexample trace")
	out := fs.String("o", "", "write the counterexample trace as JSON (replay it with `sandtable replay -trace <file>`)")
	peers := fs.String("peers", "", "comma-separated peer listen addresses (host:port, one per peer): run this process as one peer of a distributed exploration (see OPERATIONS.md)")
	peerID := fs.Int("peer-id", 0, "this process's index into -peers (peer 0 coordinates and prints the counterexample)")
	peerTimeout := fs.Duration("peer-timeout", 0, "cluster connection-establishment timeout (0 = 30s)")
	fs.Parse(args)

	if *resume && *ckDir == "" {
		return fmt.Errorf("check: -resume requires -checkpoint <dir>")
	}
	budget, err := resolveMemBudget(*memBudget)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	var peerAddrs []string
	if *peers != "" {
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				peerAddrs = append(peerAddrs, a)
			}
		}
		if len(peerAddrs) < 2 {
			return fmt.Errorf("check: -peers needs at least 2 addresses, got %d", len(peerAddrs))
		}
		if *peerID < 0 || *peerID >= len(peerAddrs) {
			return fmt.Errorf("check: -peer-id %d out of range [0,%d)", *peerID, len(peerAddrs))
		}
		if budget > 0 {
			return fmt.Errorf("check: -mem-budget is not supported with -peers (partitioning already divides the footprint)")
		}
		if *resume && *ckDir == "" {
			return fmt.Errorf("check: cluster resume requires -checkpoint <dir> on every peer")
		}
	}
	st, err := sf.session()
	if err != nil {
		return err
	}
	o, err := of.open()
	if err != nil {
		return err
	}
	opts := explorer.DefaultOptions()
	opts.Deadline = *sf.deadline
	opts.Workers = *workers
	opts.MaxStates = *maxStates
	opts.FPSetShards = *fpShards
	opts.MemBudget = budget
	opts.SpillDir = *spillDir
	opts.Cover = true
	if *ckDir != "" {
		opts.Checkpoint = explorer.CheckpointOptions{
			Dir:         *ckDir,
			Interval:    *ckEvery,
			EveryStates: *ckStates,
			Resume:      *resume,
			Label:       st.Label(),
		}
	}
	opts.Progress = o.progress
	opts.ProgressInterval = o.interval
	opts.Metrics = o.reg
	opts.Tracer = o.tracer
	coordinator := true
	if len(peerAddrs) > 0 {
		// Every peer must agree on the run configuration before any state
		// flows; the handshake digest catches a peer launched with a
		// different -system/-bug/-nodes/-fixed combination.
		h := fnv.New64a()
		io.WriteString(h, st.Label())
		fmt.Fprintf(h, "|peers=%d", len(peerAddrs))
		conn, err := transport.DialTCP(transport.TCPOptions{
			Addrs:   peerAddrs,
			Self:    *peerID,
			Digest:  h.Sum64(),
			Timeout: *peerTimeout,
			Metrics: transport.NewMetrics(o.reg),
		})
		if err != nil {
			o.close(nil)
			return fmt.Errorf("check: %w", err)
		}
		opts.Peer = &explorer.PeerOptions{Conn: conn}
		coordinator = *peerID == 0
		fmt.Printf("peer %d/%d: joined cluster, exploring fingerprint shard %d\n", *peerID, len(peerAddrs), *peerID)
	}

	stopExplore := o.reg.StartPhase("explore")
	res := st.Check(opts)
	stopExplore()
	o.cover = res.Cover
	if res.Err != nil {
		o.close(res.Summary())
		return res.Err
	}

	if res.Resumed {
		fmt.Printf("resumed from %s\n", *ckDir)
	}
	fmt.Printf("explored %d distinct states (max depth %d) in %s — %.0f states/s, dedup %.1f%% (%d hits), peak queue %d, stop: %s\n",
		res.DistinctStates, res.MaxDepth, res.Duration.Round(time.Millisecond), res.StatesPerSecond(),
		100*res.DedupRatio(), res.DedupHits, res.MaxQueueLen, res.StopReason)
	if nf := res.Cover.NeverFired(); len(nf) > 0 {
		fmt.Printf("coverage: %d declared action(s) never fired: %s\n", len(nf), strings.Join(nf, ", "))
	}
	if res.Checkpoints > 0 {
		fmt.Printf("%d checkpoint(s) written to %s (resume with -checkpoint %s -resume)\n", res.Checkpoints, *ckDir, *ckDir)
	}
	if budget > 0 {
		s := o.reg.Snapshot()
		spilled, _ := s["fpset.spilled_entries"].(int64)
		fbytes, _ := s["explorer.frontier_spill_bytes"].(int64)
		if spilled > 0 || fbytes > 0 {
			fmt.Printf("memory budget %.1f MiB: spilled %d fingerprints and %.1f MiB of frontier to disk\n",
				float64(budget)/(1<<20), spilled, float64(fbytes)/(1<<20))
		}
	}
	v := res.FirstViolation()
	if v == nil {
		fmt.Println("no invariant violation found")
		return o.close(res.Summary())
	}
	fmt.Printf("VIOLATION: %s at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	summary := res.Summary()
	if !coordinator {
		// Only the coordinator reconstructs counterexample traces (the
		// other peers served its remote edge probes and hold no trace).
		return o.close(summary)
	}
	ctrace := v.Trace
	if *doShrink {
		// BFS counterexamples are depth-minimal, so this usually confirms
		// 1-minimality rather than shrinking; random-walk traces (simulate
		// -shrink) and divergences (conform -shrink) are where ddmin bites.
		ctrace = shrinkTrace(st.Machine(), ctrace, shrink.InvariantOracle(st.Machine(), v.Invariant), o, summary)
	}
	if *showTrace {
		fmt.Println(ctrace.Format(false))
	}
	if *out != "" {
		stopOut := o.reg.StartPhase("write-trace")
		f, err := os.Create(*out)
		if err != nil {
			o.close(summary)
			return err
		}
		defer f.Close()
		if err := ctrace.Encode(f); err != nil {
			o.close(summary)
			return err
		}
		stopOut()
		fmt.Printf("trace written to %s\n", *out)
	}
	return o.close(summary)
}

// runReplay replays a saved trace against a fresh implementation cluster,
// comparing every step (the §3.4 confirmation, decoupled from the search).
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	sf := addSessionFlags(fs)
	of := addObsFlags(fs)
	pf := addPanicFlags(fs)
	file := fs.String("trace", "", "trace JSON written by `sandtable check -o`")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("replay: -trace is required")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		return err
	}
	st, err := sf.session()
	if err != nil {
		return err
	}
	o, err := of.open()
	if err != nil {
		return err
	}
	stopReplay := o.reg.StartPhase("replay")
	cluster, err := st.Sys.NewCluster(st.Config, st.ImplBugs, 1)
	if err != nil {
		o.close(nil)
		return err
	}
	pf.apply(cluster)
	res, err := replay.ConfirmBug(tr, cluster, replay.Options{
		IgnoreVars: st.Sys.IgnoreVars, Observe: st.Sys.Observe,
		Tracer: o.tracer, Metrics: o.reg,
	})
	if err != nil {
		o.close(nil)
		return err
	}
	stopReplay()
	summary := map[string]any{"steps": res.Steps, "confirmed": res.Confirmed}
	if res.Confirmed {
		fmt.Printf("CONFIRMED: %d events replayed deterministically, every step conforming\n", res.Steps)
		return o.close(summary)
	}
	fmt.Printf("replay diverged: %s\n", res.Divergence.Describe())
	summary["divergence"] = res.Divergence.Describe()
	return o.close(summary)
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	sf := addSessionFlags(fs)
	of := addObsFlags(fs)
	walks := fs.Int("walks", 100, "number of random walks")
	depth := fs.Int("depth", 0, "walk depth bound (0 = until deadlock)")
	seed := fs.Int64("seed", 1, "base seed")
	distinct := fs.Bool("distinct", false, "track distinct states across walks in a shared fingerprint set (coverage measurement)")
	doShrink := fs.Bool("shrink", false, "minimize the first violating walk with delta debugging (ddmin)")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	o, err := of.open()
	if err != nil {
		return err
	}
	sim := explorer.NewSimulator(st.Machine(), explorer.SimOptions{
		MaxDepth: *depth, Seed: *seed, CheckInvariants: true,
		TrackDistinct: *distinct, RecordVars: *doShrink,
		Progress: o.progress, ProgressInterval: o.interval,
		Metrics: o.reg, Tracer: o.tracer, Cover: true,
	})
	stopSim := o.reg.StartPhase("simulate")
	results := sim.Walks(*walks)
	stopSim()
	o.cover = sim.Cover()
	agg := explorer.Aggregate(results)
	fmt.Printf("walks=%d branch-coverage=%d event-diversity=%d max-depth=%d mean-depth=%.1f violations=%d elapsed=%s\n",
		agg.Walks, agg.BranchCoverage, agg.EventDiversity, agg.MaxDepth, agg.MeanDepth, agg.Violations, agg.TotalElapsed.Round(time.Millisecond))
	if *distinct {
		visits := int(agg.MeanDepth*float64(agg.Walks)) + agg.Walks
		fmt.Printf("distinct states across walks: %d (%.1f%% of ~%d visits fresh)\n",
			sim.Distinct(), 100*float64(agg.DistinctStates)/float64(max(1, visits)), visits)
	}
	summary := map[string]any{
		"walks":           agg.Walks,
		"branch_coverage": agg.BranchCoverage,
		"event_diversity": agg.EventDiversity,
		"max_depth":       agg.MaxDepth,
		"mean_depth":      agg.MeanDepth,
		"violations":      agg.Violations,
		"distinct_states": agg.DistinctStates,
	}
	for _, w := range results {
		if w.Violation != nil {
			fmt.Printf("first violating walk: %v\n", w.Violation)
			if *doShrink {
				min := shrinkTrace(st.Machine(), w.Trace, shrink.InvariantOracle(st.Machine(), w.Violation.Invariant), o, summary)
				fmt.Println(min.Format(false))
			}
			break
		}
	}
	return o.close(summary)
}

func runRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	sf := addSessionFlags(fs)
	walks := fs.Int("walks", 32, "random walks per (config, constraint) pair")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	configs := []spec.Config{
		{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}},
		{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
	}
	base := st.Budget
	budgets := []spec.Budget{base}
	lighter := base
	lighter.Name = base.Name + "-light"
	lighter.MaxTimeouts = max(1, base.MaxTimeouts-2)
	lighter.MaxCrashes = 0
	lighter.MaxDirtyCrashes = 0
	budgets = append(budgets, lighter, base.Double())
	r := st.Rank(configs, budgets, ranking.Options{WalksPerPair: *walks, Seed: 1})
	fmt.Print(r.Format())
	return nil
}

func runConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ExitOnError)
	sf := addSessionFlags(fs)
	of := addObsFlags(fs)
	walks := fs.Int("walks", 200, "random traces to replay")
	depth := fs.Int("depth", 30, "trace depth bound")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 1, "parallel replay workers (each walk boots its own cluster; the first discrepancy is identical for every worker count)")
	doShrink := fs.Bool("shrink", false, "minimize the discrepancy trace with delta debugging (ddmin) before printing it")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	o, err := of.open()
	if err != nil {
		return err
	}
	stopConform := o.reg.StartPhase("conform")
	rep, err := st.Conform(conformance.Options{
		Walks: *walks, WalkDepth: *depth, Seed: *seed, Workers: *workers,
		Progress: o.progress, ProgressInterval: o.interval,
		Metrics: o.reg, Tracer: o.tracer,
	})
	if err != nil {
		o.close(nil)
		return err
	}
	stopConform()
	fmt.Printf("conformance: %d walks, %d events checked in %s\n", rep.Walks, rep.EventsChecked, rep.Duration.Round(time.Millisecond))
	summary := map[string]any{"walks": rep.Walks, "events_checked": rep.EventsChecked, "passed": rep.Passed()}
	if rep.Passed() {
		fmt.Println("PASS: no spec/impl discrepancy found")
		return o.close(summary)
	}
	fmt.Printf("DISCREPANCY: %v\n", rep.Discrepancy)
	d := rep.Discrepancy
	dtrace := d.Trace
	if *doShrink {
		oracle := shrink.DivergenceOracle(func(seed int64) (*engine.Cluster, error) {
			return st.Sys.NewCluster(st.Config, st.ImplBugs, seed)
		}, d.Seed, replay.Options{IgnoreVars: st.Sys.IgnoreVars, Observe: st.Sys.Observe}, d.Step)
		dtrace = shrinkTrace(st.Machine(), dtrace, oracle, o, summary)
	}
	fmt.Println("trace prefix:")
	fmt.Println(dtrace.Format(false))
	summary["discrepancy"] = rep.Discrepancy.Error()
	return o.close(summary)
}

func runConfirm(args []string) error {
	fs := flag.NewFlagSet("confirm", flag.ExitOnError)
	sf := addSessionFlags(fs)
	of := addObsFlags(fs)
	pf := addPanicFlags(fs)
	doShrink := fs.Bool("shrink", false, "minimize the counterexample with delta debugging (ddmin) before replaying it at the implementation level")
	fs.Parse(args)

	st, err := sf.session()
	if err != nil {
		return err
	}
	o, err := of.open()
	if err != nil {
		return err
	}
	opts := explorer.DefaultOptions()
	opts.Deadline = *sf.deadline
	opts.Progress = o.progress
	opts.ProgressInterval = o.interval
	opts.Metrics = o.reg
	opts.Tracer = o.tracer
	opts.Cover = true

	stopExplore := o.reg.StartPhase("explore")
	res := st.Check(opts)
	stopExplore()
	o.cover = res.Cover
	summary := res.Summary()
	v := res.FirstViolation()
	if v == nil {
		o.close(summary)
		return fmt.Errorf("no violation found to confirm (%d states)", res.DistinctStates)
	}
	fmt.Printf("violation: %s at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	ctrace := v.Trace
	if *doShrink {
		ctrace = shrinkTrace(st.Machine(), ctrace, shrink.InvariantOracle(st.Machine(), v.Invariant), o, summary)
	}

	stopReplay := o.reg.StartPhase("replay")
	cluster, err := st.Sys.NewCluster(st.Config, st.ImplBugs, 1)
	if err != nil {
		o.close(summary)
		return err
	}
	pf.apply(cluster)
	conf, err := replay.ConfirmBug(ctrace, cluster, replay.Options{
		IgnoreVars: st.Sys.IgnoreVars, Observe: st.Sys.Observe,
		Tracer: o.tracer, Metrics: o.reg,
	})
	if err != nil {
		o.close(summary)
		return err
	}
	stopReplay()
	summary["replay_steps"] = conf.Steps
	summary["confirmed"] = conf.Confirmed
	if conf.Confirmed {
		fmt.Printf("CONFIRMED at the implementation level (%d events replayed, every step conforming)\n", conf.Steps)
		return o.close(summary)
	}
	fmt.Printf("NOT confirmed — replay diverged: %s\n", conf.Divergence.Describe())
	summary["divergence"] = conf.Divergence.Describe()
	return o.close(summary)
}

// runReport renders a post-run Markdown report from observability artifacts
// written by earlier runs (-metrics-out and/or -trace-out) — the offline
// path; `-report` on check/simulate/conform/confirm/replay renders the same
// report in-process at the end of the run.
func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	metrics := fs.String("metrics", "", "metrics JSON written by -metrics-out")
	traceF := fs.String("trace", "", "JSONL events written by -trace-out")
	out := fs.String("o", "", "output Markdown file (default stdout)")
	title := fs.String("title", "", "report title (default \"SandTable run report\")")
	fs.Parse(args)
	if *metrics == "" && *traceF == "" {
		return fmt.Errorf("report: at least one of -metrics or -trace is required")
	}
	d, err := report.FromFiles(*metrics, *traceF)
	if err != nil {
		return err
	}
	if *title != "" {
		d.Title = *title
	}
	if err := report.WriteFile(*out, d); err != nil {
		return err
	}
	if *out != "" && *out != "-" {
		fmt.Printf("report written to %s\n", *out)
	}
	return nil
}

func runList() error {
	fmt.Println("integrated systems:")
	for _, name := range integrations.Names() {
		fmt.Printf("  %-11s defects:", name)
		for _, b := range bugdb.ForSystem(name) {
			fmt.Printf(" %s", b.ID)
		}
		for _, b := range bugdb.Extensions {
			if b.System == name {
				fmt.Printf(" %s (extension)", b.ID)
			}
		}
		fmt.Println()
	}
	return nil
}
