// Command experiments regenerates the paper's evaluation artifacts (Tables
// 1–4 and Figures 6–7) on this reproduction.
//
// Usage:
//
//	experiments -table 2            # one table
//	experiments -fig 6              # one figure
//	experiments -all                # everything (the EXPERIMENTS.md content)
//	experiments -all -deadline 30s  # cap each model-checking run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/sandtable-go/sandtable/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-4)")
	fig := flag.Int("fig", 0, "regenerate one figure (6 or 7)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	deadline := flag.Duration("deadline", 4*time.Minute, "per-run model checking deadline")
	budget := flag.Duration("budget", 15*time.Second, "table 3 experiment #2 exploration budget")
	specTraces := flag.Int("spec-traces", 2000, "table 4 specification-level trace count")
	implTraces := flag.Int("impl-traces", 200, "table 4 implementation-level replay count")
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Deadline = *deadline
	o.ExplorationBudget = *budget
	o.SpecTraces = *specTraces
	o.ImplTraces = *implTraces

	run := func(name string, f func() (string, error)) {
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s regenerated in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(t int) bool { return *all || *table == t }
	if want(1) {
		run("table 1", func() (string, error) {
			rows, err := experiments.Table1()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable1(rows), nil
		})
	}
	if want(2) {
		run("table 2", func() (string, error) {
			rows, err := experiments.Table2(o)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable2(rows), nil
		})
	}
	if want(3) {
		run("table 3", func() (string, error) {
			rows, err := experiments.Table3(o)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable3(rows), nil
		})
	}
	if want(4) {
		run("table 4", func() (string, error) {
			rows, err := experiments.Table4(o)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable4(rows), nil
		})
	}
	if *all || *fig == 6 {
		run("figure 6", func() (string, error) { return experiments.Figure6(o) })
	}
	if *all || *fig == 7 {
		run("figure 7", func() (string, error) { return experiments.Figure7(o) })
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
}
