// Command checktrace validates SandTable observability artifacts against
// the versioned schema in internal/obs: JSONL event streams written by
// -trace-out and metrics snapshots written by -metrics-out. `make
// checktrace` (part of `make ci`) regenerates small artifacts from a
// bounded run and gates them through this validator, so schema drift fails
// CI before it breaks downstream tooling (`sandtable report`, dashboards
// scraping /metrics, archived run artifacts).
//
// Usage: checktrace [-metrics FILE] [-require METRIC ...] [TRACE.jsonl ...]
//
// Every trace event must parse, pass obs.ValidateEvent (readable version,
// known layer, non-empty kind), and carry a strictly increasing sequence
// number within its file. The metrics snapshot must pass
// obs.ValidateMetrics, and an embedded coverage profile must carry a
// readable schema version. Each -require METRIC (repeatable) additionally
// asserts that the snapshot holds the named metric with a value greater
// than zero — how `make soak` proves a run actually exercised the spill
// and delta-checkpoint paths rather than finishing comfortably in RAM.
// The exit status is the gate: 0 only if every artifact validates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// requireList collects repeated -require flags.
type requireList []string

func (r *requireList) String() string { return fmt.Sprint([]string(*r)) }

func (r *requireList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON to validate (-metrics-out artifact)")
	var require requireList
	flag.Var(&require, "require", "require this metric to be present and > 0 in the -metrics snapshot (repeatable)")
	flag.Parse()
	if len(require) > 0 && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "checktrace: -require needs -metrics FILE")
		os.Exit(2)
	}
	if *metricsPath == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: checktrace [-metrics FILE] [TRACE.jsonl ...]")
		os.Exit(2)
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "checktrace: "+format+"\n", args...)
		failed = true
	}

	for _, path := range flag.Args() {
		n, err := checkTraceFile(path)
		if err != nil {
			fail("%s: %v", path, err)
			continue
		}
		fmt.Printf("%s: %d event(s) OK\n", path, n)
	}
	if *metricsPath != "" {
		if err := checkMetricsFile(*metricsPath, require); err != nil {
			fail("%s: %v", *metricsPath, err)
		} else {
			fmt.Printf("%s: metrics snapshot OK\n", *metricsPath)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkTraceFile validates one JSONL event stream and returns the event
// count. Beyond per-event schema checks, sequence numbers must be strictly
// increasing — the writer is serialized, so a regression here means events
// were reordered or duplicated between emission and disk.
func checkTraceFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return 0, err
	}
	lastSeq := int64(0)
	for i, e := range events {
		if err := obs.ValidateEvent(e); err != nil {
			return 0, fmt.Errorf("line %d: %w", i+1, err)
		}
		if e.Seq <= lastSeq {
			return 0, fmt.Errorf("line %d: seq %d not strictly increasing (previous %d)", i+1, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	return len(events), nil
}

// checkMetricsFile validates one metrics snapshot, including the schema
// version of an embedded coverage profile when present, and enforces any
// -require assertions against it.
func checkMetricsFile(path string, require []string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		return err
	}
	if err := obs.ValidateMetrics(snap); err != nil {
		return err
	}
	if cv, ok := snap["cover"]; ok && cv != nil {
		buf, err := json.Marshal(cv)
		if err != nil {
			return fmt.Errorf("cover: %w", err)
		}
		var cover obs.Cover
		if err := json.Unmarshal(buf, &cover); err != nil {
			return fmt.Errorf("cover: %w", err)
		}
		if cover.Schema != obs.MetricsSchemaVersion {
			return fmt.Errorf("cover: schema version %d, this build reads %d", cover.Schema, obs.MetricsSchemaVersion)
		}
	}
	for _, key := range require {
		v, ok := snap[key]
		if !ok {
			return fmt.Errorf("required metric %q missing from snapshot", key)
		}
		n, ok := v.(float64) // JSON numbers decode as float64
		if !ok {
			return fmt.Errorf("required metric %q is %T, not a number", key, v)
		}
		if n <= 0 {
			return fmt.Errorf("required metric %q = %v, want > 0", key, n)
		}
		fmt.Printf("%s: required metric %s = %.0f\n", path, key, n)
	}
	return nil
}
