// Command servesmoke is the CI client for `sandtable serve`: it drives one
// job through the service over real HTTP and collects everything needed to
// prove service/CLI equivalence.
//
//	servesmoke -server http://127.0.0.1:8424 -out DIR -spec '{"op":"check",...}'
//
// It waits for /healthz, submits the spec, streams /events (saving every
// "trace" SSE event as JSONL — these carry real tracer sequence numbers, so
// checktrace can validate the stream like any trace artifact), requires at
// least one "progress" event and a terminal "done" event with state done,
// then downloads the artifact set (metrics.json, trace.jsonl, report.md,
// and trace.json when the run found a violation) into -out. The Makefile's
// serve-smoke target then runs checktrace over the artifacts and the SSE
// stream, clustercmp against a CLI reference run, and cmp on the
// counterexample traces.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	server := flag.String("server", "", "base URL of the sandtable serve instance (required)")
	out := flag.String("out", "", "directory to save artifacts into (required)")
	spec := flag.String("spec", "", "job spec JSON to submit (required)")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall smoke deadline")
	flag.Parse()
	if *server == "" || *out == "" || *spec == "" {
		fmt.Fprintln(os.Stderr, "usage: servesmoke -server URL -out DIR -spec JSON")
		os.Exit(2)
	}
	if err := run(*server, *out, *spec, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
}

func run(server, out, spec string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Wait for the service to come up.
	for {
		resp, err := http.Get(server + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s never became healthy: %v", server, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Submit the job.
	resp, err := http.Post(server+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d: %s", resp.StatusCode, body)
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		return fmt.Errorf("submit response: %w", err)
	}
	fmt.Printf("servesmoke: submitted %s (%s)\n", status.ID, status.State)

	// Stream SSE to completion, saving trace events as JSONL.
	traceEvents, progressEvents, finalState, err := streamEvents(server, status.ID, filepath.Join(out, "sse-trace.jsonl"))
	if err != nil {
		return err
	}
	fmt.Printf("servesmoke: stream closed after %d trace + %d progress events, state %s\n",
		traceEvents, progressEvents, finalState)
	if finalState != "done" {
		return fmt.Errorf("job ended %s, want done", finalState)
	}
	if traceEvents == 0 {
		return fmt.Errorf("SSE stream carried no trace events")
	}
	if progressEvents == 0 {
		return fmt.Errorf("SSE stream carried no progress events")
	}

	// Download the artifact set.
	required := []string{"metrics.json", "trace.jsonl", "report.md", "result.json"}
	var listing struct {
		Artifacts []string `json:"artifacts"`
	}
	if err := getJSON(server+"/v1/jobs/"+status.ID+"/artifacts/", &listing); err != nil {
		return err
	}
	have := make(map[string]bool, len(listing.Artifacts))
	for _, a := range listing.Artifacts {
		have[a] = true
	}
	for _, name := range required {
		if !have[name] {
			return fmt.Errorf("artifact %s missing (have %v)", name, listing.Artifacts)
		}
	}
	fetch := required
	if have["trace.json"] {
		fetch = append(fetch, "trace.json")
	}
	for _, name := range fetch {
		if err := download(server+"/v1/jobs/"+status.ID+"/artifacts/"+name, filepath.Join(out, name)); err != nil {
			return err
		}
	}

	// The rendered report must include the coverage section the offline
	// `sandtable report` path produces.
	rep, err := os.ReadFile(filepath.Join(out, "report.md"))
	if err != nil {
		return err
	}
	if !strings.Contains(string(rep), "## Action coverage") {
		return fmt.Errorf("report.md lacks the Action coverage section")
	}
	fmt.Printf("servesmoke: saved %d artifacts to %s\n", len(fetch), out)
	return nil
}

// streamEvents consumes the job's SSE stream until the "done" event,
// writing each "trace" event's payload as one JSONL line to tracePath. It
// returns the trace/progress event counts and the job's final state.
func streamEvents(server, id, tracePath string) (traceN, progressN int, finalState string, err error) {
	resp, err := http.Get(server + "/v1/jobs/" + id + "/events")
	if err != nil {
		return 0, 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, "", fmt.Errorf("events: status %d", resp.StatusCode)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return 0, 0, "", err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var typ, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch typ {
			case "trace":
				traceN++
				fmt.Fprintln(w, data)
			case "progress":
				progressN++
			case "done":
				var st struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return traceN, progressN, "", fmt.Errorf("done payload: %w", err)
				}
				return traceN, progressN, st.State, w.Flush()
			}
			typ, data = "", ""
		}
	}
	return traceN, progressN, "", fmt.Errorf("stream ended without a done event: %v", sc.Err())
}

// getJSON fetches url into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// download saves url to path.
func download(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
