// Command checkdocs is the repository's documentation gate, run by
// scripts/checkdocs.sh as part of `make ci`. It enforces two rules:
//
//  1. Every exported identifier in the audited packages (internal/fpset,
//     internal/explorer, internal/ranking, internal/scenario,
//     internal/shrink, internal/conformance, internal/transport,
//     internal/serve) carries
//     a doc comment, and every audited package has a package-level doc
//     comment.
//  2. Every relative link in the repository's *.md files resolves to an
//     existing file, and the operator-facing documents (README.md,
//     ARCHITECTURE.md, OPERATIONS.md, EXPERIMENTS.md) exist — the link
//     check only sees documents that are linked, so existence is asserted
//     separately.
//
// It prints one line per problem and exits non-zero if any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// auditedPackages are the directories whose exported API must be fully
// documented (the godoc-audit scope fixed by the docs PR).
var auditedPackages = []string{
	"internal/fpset",
	"internal/explorer",
	"internal/ranking",
	"internal/scenario",
	"internal/shrink",
	"internal/conformance",
	"internal/transport",
	"internal/serve",
}

// requiredDocs are the operator-facing documents that must exist at the
// repository root. The relative-link walk can only validate links that
// are written, so a deleted (or never-committed) document would pass
// silently without this list.
var requiredDocs = []string{
	"README.md",
	"ARCHITECTURE.md",
	"OPERATIONS.md",
	"EXPERIMENTS.md",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems := 0
	for _, pkg := range auditedPackages {
		problems += checkPackageDocs(filepath.Join(root, pkg))
	}
	for _, doc := range requiredDocs {
		if _, err := os.Stat(filepath.Join(root, doc)); err != nil {
			fmt.Printf("%s: required document missing\n", doc)
			problems++
		}
	}
	problems += checkMarkdownLinks(root)
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

// checkPackageDocs parses one package directory (tests excluded) and
// reports exported declarations without doc comments.
func checkPackageDocs(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Printf("%s: %v\n", dir, err)
		return 1
	}
	problems := 0
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s has no doc comment\n", p.Filename, p.Line, what)
		problems++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package-level doc comment\n", dir, pkg.Name)
			problems++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil && len(d.Recv.List) > 0 {
						// Methods on unexported receivers are internal API.
						if !ast.IsExported(receiverTypeName(d.Recv.List[0].Type)) {
							continue
						}
						report(d.Pos(), fmt.Sprintf("method %s.%s", receiverTypeName(d.Recv.List[0].Type), d.Name.Name))
						continue
					}
					report(d.Pos(), "function "+d.Name.Name)
				case *ast.GenDecl:
					for _, s := range d.Specs {
						switch spec := s.(type) {
						case *ast.TypeSpec:
							if spec.Name.IsExported() && d.Doc == nil && spec.Doc == nil {
								report(spec.Pos(), "type "+spec.Name.Name)
							}
						case *ast.ValueSpec:
							// A doc on the grouped decl covers its members.
							if d.Doc != nil || spec.Doc != nil || spec.Comment != nil {
								continue
							}
							for _, name := range spec.Names {
								if name.IsExported() {
									report(name.Pos(), "declaration "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverTypeName unwraps *T / generic instantiations to the base type name.
func receiverTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// mdLink matches inline markdown links [text](target). Images and
// reference-style links are out of scope.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies that every relative link in the repo's *.md
// files points at an existing file. External (scheme://), mailto, and
// pure-anchor (#...) targets are skipped; a #fragment on a relative target
// is stripped before the existence check.
func checkMarkdownLinks(root string) int {
	problems := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and editor/tool caches.
			if name := d.Name(); path != root && (name == ".git" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: broken relative link %q\n", path, i+1, m[1])
					problems++
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Printf("markdown walk: %v\n", err)
		problems++
	}
	return problems
}
