// Command benchdiff compares two BENCH_explorer.json reports (see
// scripts/bench.sh for the format) and prints per-benchmark deltas:
// throughput (states/s or events/s; ns/op for micro-benchmarks that report
// neither, where lower is better), bytes/op, and allocs/op. `make
// benchdiff` uses it to compare a fresh benchmark run against the committed
// baseline, so a hot-path change shows its effect without overwriting the
// baseline file.
//
// Usage: benchdiff OLD.json NEW.json
//
// Runs with the same name (go test -count > 1) are averaged before
// comparison. Names present in only one file are listed but not compared.
// The exit status is always 0 — the diff is a report, not a gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// report mirrors the JSON written by scripts/bench.sh.
type report struct {
	Count int   `json:"count"`
	Runs  []run `json:"runs"`
}

// run is one parsed benchmark line. Pointer fields distinguish "absent"
// (null in JSON, e.g. events/s on an exploration run, or gomaxprocs in
// reports predating that field) from zero.
type run struct {
	Name       string   `json:"name"`
	Workers    *float64 `json:"workers"`
	Gomaxprocs *float64 `json:"gomaxprocs"`
	NsPerOp    *float64 `json:"ns_per_op"`
	StatesSec  *float64 `json:"states_per_sec"`
	EventsSec  *float64 `json:"events_per_sec"`
	BytesOp    *float64 `json:"bytes_per_op"`
	AllocsOp   *float64 `json:"allocs_per_op"`
}

// avg holds the per-name mean of every metric that was present.
type avg struct {
	throughput, bytes, allocs float64
	unit                      string
	n                         int
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-55s %15s %15s %8s %10s %10s\n",
		"benchmark", "old", "new", "thrpt", "B/op", "allocs/op")
	for _, name := range names {
		n := fresh[name]
		o, ok := old[name]
		if !ok {
			fmt.Printf("%-55s %15s\n", name, "(new)")
			continue
		}
		fmt.Printf("%-55s %12.0f %s %12.0f %s %8s %10s %10s\n",
			name, o.throughput, o.unit, n.throughput, n.unit,
			pct(o.throughput, n.throughput),
			pct(o.bytes, n.bytes),
			pct(o.allocs, n.allocs))
	}
	for name := range old {
		if _, ok := fresh[name]; !ok {
			fmt.Printf("%-55s %15s\n", name, "(removed)")
		}
	}
}

// load parses a report and averages runs by benchmark name.
func load(path string) (map[string]avg, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sums := make(map[string]avg)
	for _, r := range rep.Runs {
		a := sums[r.Name]
		switch {
		case r.StatesSec != nil:
			a.throughput += *r.StatesSec
			a.unit = "states/s"
		case r.EventsSec != nil:
			a.throughput += *r.EventsSec
			a.unit = "events/s"
		case r.NsPerOp != nil:
			// Micro-benchmarks (e.g. BenchmarkCanonicalization) report no
			// throughput metric; compare latency instead. Lower is better,
			// so a negative delta is an improvement here.
			a.throughput += *r.NsPerOp
			a.unit = "ns/op"
		}
		if r.BytesOp != nil {
			a.bytes += *r.BytesOp
		}
		if r.AllocsOp != nil {
			a.allocs += *r.AllocsOp
		}
		a.n++
		sums[r.Name] = a
	}
	for name, a := range sums {
		if a.n > 1 {
			a.throughput /= float64(a.n)
			a.bytes /= float64(a.n)
			a.allocs /= float64(a.n)
			sums[name] = a
		}
	}
	return sums, nil
}

// pct renders the relative change from before to after ("-41.2%", "+3.0%").
func pct(before, after float64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(after-before)/before)
}
