// Command clustercmp asserts that two SandTable runs explored the same
// state space. It compares -metrics-out snapshots on every
// schedule-independent field — result counters, stop decision, violation
// set, and the full coverage profile — while ignoring the fields that
// legitimately differ between a single-process run and a cluster run
// (wall-clock duration, throughput, peak queue length, fpset probe
// counts, checkpoint placement). `make cluster` uses it to gate the
// distributed-equivalence guarantee in CI: a 3-peer localhost run must
// match the single-process reference bit for bit on everything that
// describes the explored graph rather than the machinery that explored
// it.
//
// Usage: clustercmp -ref REFERENCE.json CANDIDATE.json ...
//
// The reference should be a single-process -workers 1 run (or any
// cluster run): those produce the canonical coverage attribution.
// Single-process -workers N>1 runs attribute per-action fresh-state
// credit by worker arrival order; compare those with -totals, which
// drops per-action fresh/last_fresh_depth from the signature while
// still checking every total. The exit status is the gate: 0 only if
// every candidate matches the reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
)

// signature is the schedule-independent projection of a metrics
// snapshot: equal signatures mean the runs explored the same graph,
// stopped for the same reason, and found the same violations.
type signature struct {
	Result map[string]any `json:"result"`
	Cover  map[string]any `json:"cover"`
	// Resumed marks a run that continued from a checkpoint. Its coverage
	// profile describes the continuation only (ResumedAtDepth onward), so
	// cover comparison is skipped when either side resumed; the result
	// block still carries cumulative counters and must match.
	Resumed bool
}

// resultKeys are the result fields that must match exactly. Notably
// absent: duration_ns, states_per_sec (wall clock), max_queue_len
// (summed across peers in a cluster run), checkpoints and resumed
// (operational history, not graph shape).
var resultKeys = []string{
	"distinct_states", "transitions", "dedup_hits", "dedup_ratio",
	"max_depth", "stop_reason", "exhausted", "violations", "first_violation",
}

func main() {
	refPath := flag.String("ref", "", "reference metrics snapshot (single-process -workers 1 run)")
	totals := flag.Bool("totals", false, "skip per-action fresh/last_fresh_depth (reference ran with -workers > 1)")
	flag.Parse()
	if *refPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: clustercmp -ref REFERENCE.json [-totals] CANDIDATE.json ...")
		os.Exit(2)
	}

	ref, err := loadSignature(*refPath, *totals)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clustercmp: %s: %v\n", *refPath, err)
		os.Exit(1)
	}

	failed := false
	for _, path := range flag.Args() {
		cand, err := loadSignature(path, *totals)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustercmp: %s: %v\n", path, err)
			failed = true
			continue
		}
		diffs := compare(ref, cand)
		if len(diffs) == 0 {
			fmt.Printf("%s: matches %s\n", path, *refPath)
			continue
		}
		failed = true
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "clustercmp: %s: %s\n", path, d)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadSignature projects one snapshot file down to its comparable core.
func loadSignature(path string, totals bool) (signature, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return signature{}, err
	}
	var snap struct {
		Result map[string]any `json:"result"`
		Cover  map[string]any `json:"cover"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return signature{}, err
	}
	if snap.Result == nil {
		return signature{}, fmt.Errorf("no result block (not a -metrics-out snapshot from a completed run?)")
	}
	sig := signature{Result: map[string]any{}, Cover: map[string]any{}}
	if r, ok := snap.Result["resumed"].(bool); ok && r {
		sig.Resumed = true
	}
	for _, k := range resultKeys {
		if v, ok := snap.Result[k]; ok {
			sig.Result[k] = v
		}
	}
	if snap.Cover != nil {
		sig.Cover["symmetry_hits"] = snap.Cover["symmetry_hits"]
		sig.Cover["declared"] = snap.Cover["declared"]
		sig.Cover["actions"] = projectActions(snap.Cover["actions"], totals)
		sig.Cover["levels"] = projectLevels(snap.Cover["levels"])
	}
	return sig, nil
}

// projectActions keeps the per-action fields that are deterministic for
// the comparison mode. fired and first_depth are deterministic at every
// worker count; fresh and last_fresh_depth are attribution, canonical
// only for -workers 1 and cluster runs.
func projectActions(v any, totals bool) any {
	m, ok := v.(map[string]any)
	if !ok {
		return v
	}
	out := make(map[string]any, len(m))
	for name, av := range m {
		a, ok := av.(map[string]any)
		if !ok {
			out[name] = av
			continue
		}
		p := map[string]any{"fired": a["fired"], "first_depth": a["first_depth"]}
		if !totals {
			p["fresh"] = a["fresh"]
			p["last_fresh_depth"] = a["last_fresh_depth"]
		}
		out[name] = p
	}
	return out
}

// projectLevels drops the machinery fields from each per-level entry:
// fpset_probes counts hash-table work, which partitioning redistributes,
// and checkpoint marks where snapshots landed, which cadence decides.
func projectLevels(v any) any {
	ls, ok := v.([]any)
	if !ok {
		return v
	}
	out := make([]any, 0, len(ls))
	for _, lv := range ls {
		l, ok := lv.(map[string]any)
		if !ok {
			out = append(out, lv)
			continue
		}
		out = append(out, map[string]any{
			"depth": l["depth"], "frontier": l["frontier"], "fresh": l["fresh"],
			"transitions": l["transitions"], "dedup": l["dedup"], "violations": l["violations"],
		})
	}
	return out
}

// compare reports one line per mismatched field so a CI failure names
// exactly what diverged instead of dumping both snapshots.
func compare(ref, cand signature) []string {
	var diffs []string
	for _, k := range resultKeys {
		rv, rok := ref.Result[k]
		cv, cok := cand.Result[k]
		if rok != cok {
			diffs = append(diffs, fmt.Sprintf("result.%s: present=%v in reference, present=%v in candidate", k, rok, cok))
			continue
		}
		if rok && !reflect.DeepEqual(rv, cv) {
			diffs = append(diffs, fmt.Sprintf("result.%s: reference %v, candidate %v", k, rv, cv))
		}
	}
	if ref.Resumed || cand.Resumed {
		return diffs
	}
	for _, k := range []string{"symmetry_hits", "declared", "actions", "levels"} {
		if !reflect.DeepEqual(ref.Cover[k], cand.Cover[k]) {
			diffs = append(diffs, fmt.Sprintf("cover.%s differs", k))
		}
	}
	return diffs
}
