#!/bin/sh
# checkdocs.sh — the documentation gate, run by `make docs` (part of `make ci`).
#
# Fails when:
#   - any Go file is not gofmt-formatted,
#   - `go vet` reports a problem,
#   - an exported identifier in the audited packages (internal/fpset,
#     internal/explorer, internal/ranking, internal/scenario,
#     internal/shrink, internal/conformance, internal/transport,
#     internal/serve) lacks a
#     doc comment, or an audited package lacks a package doc comment,
#   - a required operator document (README.md, ARCHITECTURE.md,
#     OPERATIONS.md, EXPERIMENTS.md) is missing,
#   - a relative link in any *.md file points at a missing file.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

exec go run ./scripts/checkdocs
