#!/bin/sh
# Runs the perf-trajectory benchmarks — BenchmarkTable3Exploration (the
# guard benchmark for explorer hot-path changes, e.g. observability
# instrumentation), BenchmarkSpillExploration (in-RAM vs memory-budgeted
# spill-path throughput), BenchmarkConformance (the parallel replay
# pool's workers sweep), and BenchmarkCanonicalization (flat vs incremental
# min-of-orbit fingerprinting per spec family) — and writes
# BENCH_explorer.json with the raw `go test -bench` lines plus parsed
# per-run numbers.
#
# Usage: scripts/bench.sh [count]   (default: 3 runs per benchmark)
# The output path can be overridden with BENCH_OUT (used by `make benchdiff`
# to produce a fresh report without clobbering the committed baseline).
set -eu

cd "$(dirname "$0")/.."
COUNT="${1:-3}"
OUT="${BENCH_OUT:-BENCH_explorer.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkTable3Exploration|BenchmarkSpillExploration|BenchmarkConformance|BenchmarkCanonicalization' -benchmem -count "$COUNT" . | tee "$RAW"

# Render the raw lines into a small JSON report. Exploration runs carry
# states/s and events/s (transition throughput), conformance runs events/s;
# the field a run lacks stays null. Values are taken only from well-formed
# `<number> <unit>` metric pairs, the GOMAXPROCS suffix go test appends to
# benchmark names (`/wmax-8`) is stripped so names compare across machines,
# and each run records two disambiguating fields: `label` (the last
# sub-benchmark path segment — w1/w4/wmax, flat/orbit, inram/spill — which
# keeps wmax rows distinguishable from w1 on a 1-CPU box where both
# legitimately record workers=1) and the gomaxprocs metric the harness
# reports, which proves that is the machine, not a parse failure.
awk -v count="$COUNT" '
BEGIN { print "{"; printf "  \"benchmarks\": [\"BenchmarkTable3Exploration\", \"BenchmarkSpillExploration\", \"BenchmarkConformance\", \"BenchmarkCanonicalization\"],\n  \"count\": %d,\n  \"runs\": [\n", count }
/^Benchmark/ && NF >= 2 && $2 ~ /^[0-9]+$/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    label = name
    sub(/^.*\//, "", label)
    ns = b = a = sps = eps = w = gmp = "null"
    for (i = 3; i <= NF; i++) {
        if ($(i - 1) !~ /^[0-9]+(\.[0-9]+)?$/) continue
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") b = $(i - 1)
        else if ($i == "allocs/op") a = $(i - 1)
        else if ($i == "states/s") sps = $(i - 1)
        else if ($i == "events/s") eps = $(i - 1)
        else if ($i == "workers") w = $(i - 1)
        else if ($i == "gomaxprocs") gmp = $(i - 1)
    }
    sep = (n++ ? ",\n" : "")
    printf "%s    {\"name\": \"%s\", \"label\": \"%s\", \"iterations\": %s, \"workers\": %s, \"gomaxprocs\": %s, \"ns_per_op\": %s, \"states_per_sec\": %s, \"events_per_sec\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, label, $2, w, gmp, ns, sps, eps, b, a
}
END { print "\n  ]\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT"

# Snapshot a metrics dump next to the benchmark report: one bounded xraft
# exploration with the coverage profiler on, so the baseline carries the
# registry counters and per-action/per-depth profile behind the throughput
# numbers. The dump follows the versioned -metrics-out schema and renders
# with `sandtable report -metrics <file>`.
METRICS="${BENCH_METRICS_OUT:-${OUT%.json}_metrics.json}"
go run ./cmd/sandtable check -system xraft -max-states 20000 -deadline 60s \
    -metrics-out "$METRICS" >/dev/null

echo "wrote $METRICS"
