#!/bin/sh
# Runs the perf-trajectory benchmarks — BenchmarkTable3Exploration (the
# guard benchmark for explorer hot-path changes, e.g. observability
# instrumentation) and BenchmarkConformance (the parallel replay pool's
# workers sweep) — and writes BENCH_explorer.json with the raw
# `go test -bench` lines plus parsed per-run numbers.
#
# Usage: scripts/bench.sh [count]   (default: 3 runs per benchmark)
set -eu

cd "$(dirname "$0")/.."
COUNT="${1:-3}"
OUT=BENCH_explorer.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkTable3Exploration|BenchmarkConformance' -benchmem -count "$COUNT" . | tee "$RAW"

# Render the raw lines into a small JSON report. Exploration runs carry
# states/s, conformance runs events/s; the field the run lacks stays null.
awk -v count="$COUNT" '
BEGIN { print "{"; printf "  \"benchmarks\": [\"BenchmarkTable3Exploration\", \"BenchmarkConformance\"],\n  \"count\": %d,\n  \"runs\": [\n", count }
/^Benchmark/ {
    ns = b = a = sps = eps = w = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") b = $(i - 1)
        else if ($i == "allocs/op") a = $(i - 1)
        else if ($i == "states/s") sps = $(i - 1)
        else if ($i == "events/s") eps = $(i - 1)
        else if ($i == "workers") w = $(i - 1)
    }
    sep = (n++ ? ",\n" : "")
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"workers\": %s, \"ns_per_op\": %s, \"states_per_sec\": %s, \"events_per_sec\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $1, $2, w, ns, sps, eps, b, a
}
END { print "\n  ]\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
