module github.com/sandtable-go/sandtable

go 1.24
