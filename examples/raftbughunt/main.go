// Raft bug hunt: the full SandTable workflow on GoSyncObj#4 (the paper's
// Figure 6 bug — a non-monotonic match index in the PySyncObj analogue).
//
//  1. specification-level model checking finds the safety violation;
//  2. the counterexample renders as a Figure-6-style space-time diagram;
//  3. deterministic replay confirms the bug at the implementation level;
//  4. fix validation re-runs conformance and model checking on the fixed
//     build.
//
// Run: go run ./examples/raftbughunt
package main

import (
	"fmt"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

func main() {
	sys, err := integrations.Get("gosyncobj")
	if err != nil {
		panic(err)
	}
	cfg := spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}
	budget := spec.Budget{
		Name: "hunt", MaxTimeouts: 5, MaxCrashes: 1, MaxRestarts: 1,
		MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 3,
	}
	st := sandtable.New(sys, cfg, budget, bugdb.NoBugs().With(bugdb.GSOMatchNonMonotonic))

	fmt.Println("== 1. specification-level model checking ==")
	opts := explorer.DefaultOptions()
	opts.Deadline = 2 * time.Minute
	res := st.Check(opts)
	v := res.FirstViolation()
	if v == nil {
		panic("bug not found")
	}
	fmt.Printf("%s after %d distinct states (%s): %v\n\n",
		v.Invariant, res.DistinctStates, res.Duration.Round(time.Millisecond), v.Err)

	fmt.Println("== 2. the counterexample as a space-time diagram (cf. Figure 6) ==")
	fmt.Println(v.Trace.Diagram(cfg.Nodes, nil))

	fmt.Println("== 3. confirming at the implementation level ==")
	conf, err := st.Confirm(v)
	if err != nil {
		panic(err)
	}
	if !conf.Confirmed {
		panic("replay diverged: " + conf.Divergence.Describe())
	}
	fmt.Printf("confirmed: %d events replayed deterministically, every step conforming\n\n", conf.Steps)

	fmt.Println("== 4. validating the fix ==")
	rep, err := st.ValidateFix(
		[]bugdb.Key{bugdb.GSOMatchNonMonotonic},
		conformance.Options{Walks: 100, WalkDepth: 25, Seed: 7},
		opts,
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("conformance passed=%v, model checking clean=%v (explored %d states, %s)\n",
		rep.Conformance.Passed(), len(rep.Check.Violations) == 0, rep.Check.DistinctStates, rep.Check.StopReason)
}
