// Conformance checking (the paper's §3.2 and Figure 4): random
// specification traces replay against the implementation and every
// variable is compared after every event.
//
//  1. the aligned spec/impl pair passes a conformance round;
//  2. a deliberately wrong specification (modelling a commit-index defect
//     the implementation does not have) is caught with the exact diverging
//     variable and the event prefix that exposes it — the Figure 4 story;
//  3. an implementation crash bug (GoSyncObj#1, an unhandled exception on
//     heartbeat during disconnection) surfaces as a conformance by-product.
//
// Run: go run ./examples/conformance
package main

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

func main() {
	sys, err := integrations.Get("gosyncobj")
	if err != nil {
		panic(err)
	}
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	budget := spec.Budget{
		Name: "conf", MaxTimeouts: 6, MaxCrashes: 1, MaxRestarts: 1,
		MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 4,
	}

	fmt.Println("== 1. aligned specification and implementation ==")
	st := sandtable.New(sys, cfg, budget, bugdb.NoBugs())
	rep, err := st.Conform(conformance.Options{Walks: 150, WalkDepth: 30, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("pass=%v: %d traces, %d events compared\n\n", rep.Passed(), rep.Walks, rep.EventsChecked)

	fmt.Println("== 2. a wrong specification is caught (cf. Figure 4) ==")
	st.SpecBugs = bugdb.NoBugs().With(bugdb.GSOCommitNonMonotonic)
	rep, err = st.Conform(conformance.Options{Walks: 100, WalkDepth: 60, Seed: 1})
	if err != nil {
		panic(err)
	}
	if rep.Passed() {
		panic("expected a discrepancy")
	}
	fmt.Println(rep.Discrepancy.Error())
	fmt.Println()

	fmt.Println("== 3. an implementation crash surfaces during conformance ==")
	st.SpecBugs = bugdb.NoBugs()
	st.ImplBugs = bugdb.NoBugs().With(bugdb.GSODisconnectCrash)
	rep, err = st.Conform(conformance.Options{Walks: 600, WalkDepth: 30, Seed: 4})
	if err != nil {
		panic(err)
	}
	if rep.Passed() {
		panic("expected the crash to surface")
	}
	fmt.Println(rep.Discrepancy.Error())
}
