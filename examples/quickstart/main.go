// Quickstart: model-check a tiny specification and read a counterexample.
//
// The toy machine models the classic lost-update race: two processes each
// increment a shared counter with separate read and write steps. SandTable's
// stateful BFS finds the minimal interleaving that violates the safety
// property, reconstructs the trace, and — once the model is fixed (atomic
// increments) — exhausts the space proving the property holds.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

func main() {
	fmt.Println("== model checking the racy counter ==")
	res := explorer.NewChecker(&toy.LostUpdate{N: 2}, explorer.DefaultOptions()).Run()
	v := res.FirstViolation()
	if v == nil {
		panic("expected a violation")
	}
	fmt.Printf("violated %s at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	fmt.Println("\nminimal counterexample:")
	fmt.Println(v.Trace.Format(true))

	fmt.Println("== validating the fix (atomic increments) ==")
	res = explorer.NewChecker(&toy.LostUpdate{N: 3, Atomic: true}, explorer.DefaultOptions()).Run()
	fmt.Printf("explored %d distinct states, exhausted=%v, violations=%d\n",
		res.DistinctStates, res.Exhausted, len(res.Violations))
}
