// Zab election: ZabKeeper#1 — the ZOOKEEPER-1419 analogue. The fast leader
// election vote comparator loses antisymmetry once vote zxids cross epochs
// ("votes are not total ordered"), so two LOOKING servers can supersede
// each other forever and the election never settles.
//
// Run: go run ./examples/zabelection
package main

import (
	"fmt"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

func main() {
	sys, err := integrations.Get("zabkeeper")
	if err != nil {
		panic(err)
	}
	// Two election timeouts give two leadership epochs; three requests
	// build histories whose last zxids cross epochs — (1,2) vs (2,1) —
	// which the buggy comparator orders in both directions.
	cfg := spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}}
	budget := spec.Budget{
		Name: "zab", MaxTimeouts: 2, MaxRequests: 3, MaxBuffer: 3,
	}
	st := sandtable.New(sys, cfg, budget, bugdb.NoBugs().With(bugdb.ZabVoteOrder))

	fmt.Println("== hunting the vote total-order violation ==")
	opts := explorer.DefaultOptions()
	opts.Deadline = 3 * time.Minute
	res := st.Check(opts)
	v := res.FirstViolation()
	if v == nil {
		panic("vote-order violation not found")
	}
	fmt.Printf("%s at depth %d (%d states, %s):\n  %v\n\n",
		v.Invariant, v.Depth, res.DistinctStates, res.Duration.Round(time.Millisecond), v.Err)
	fmt.Println("the optimal trace crosses election, discovery/sync and broadcast phases:")
	fmt.Println(v.Trace.Format(false))

	fmt.Println("== confirming at the implementation level ==")
	conf, err := st.Confirm(v)
	if err != nil {
		panic(err)
	}
	if !conf.Confirmed {
		panic("replay diverged: " + conf.Divergence.Describe())
	}
	fmt.Printf("confirmed: %d events replayed deterministically, every step conforming\n", conf.Steps)
}
