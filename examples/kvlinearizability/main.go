// KV linearizability: XraftKV#1 — the key-value store on the xraft core
// serves reads from the leader's local state without confirming leadership,
// so a deposed leader returns stale data after a partition.
//
// Model checking finds the violating schedule; deterministic replay
// confirms the stale read in the implementation; the ReadIndex fix
// validates clean.
//
// Run: go run ./examples/kvlinearizability
package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/histories"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

func main() {
	sys, err := integrations.Get("xraftkv")
	if err != nil {
		panic(err)
	}
	// The configuration and budget the §3.3 ranking heuristics select for
	// this defect: one workload value suffices (a stale read needs a
	// committed write and a read, not distinct values), three timeouts
	// cover the two elections plus a heartbeat, one partition isolates the
	// deposed leader.
	cfg := spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}}
	budget := spec.Budget{
		Name: "kv", MaxTimeouts: 3, MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 3,
	}
	st := sandtable.New(sys, cfg, budget, bugdb.NoBugs().With(bugdb.XKVStaleRead))

	fmt.Println("== hunting the stale read ==")
	opts := explorer.DefaultOptions()
	opts.Deadline = 3 * time.Minute
	res := st.Check(opts)
	v := res.FirstViolation()
	if v == nil {
		panic("linearizability violation not found")
	}
	fmt.Printf("%s at depth %d (%d states, %s):\n  %v\n\n",
		v.Invariant, v.Depth, res.DistinctStates, res.Duration.Round(time.Millisecond), v.Err)
	fmt.Println(v.Trace.Format(false))

	fmt.Println("== confirming at the implementation level ==")
	conf, err := st.Confirm(v)
	if err != nil {
		panic(err)
	}
	if !conf.Confirmed {
		panic("replay diverged: " + conf.Divergence.Describe())
	}
	fmt.Printf("confirmed: the store really served the stale value (%d events replayed)\n\n", conf.Steps)

	fmt.Println("== independent check: the recorded history admits no linearization ==")
	h := historyFromTrace(v.Trace)
	fmt.Printf("history: %s\n", histories.Explain(h))
	if histories.Check(h) {
		panic("the Wing-Gong checker should reject this history")
	}
	fmt.Println("confirmed by the Wing-Gong register checker: not linearizable")
	fmt.Println()

	fmt.Println("== validating the ReadIndex fix ==")
	rep, err := st.ValidateFix(
		[]bugdb.Key{bugdb.XKVStaleRead},
		conformance.Options{Walks: 100, WalkDepth: 25, Seed: 2},
		opts,
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("conformance passed=%v, model checking clean=%v (%d states, %s)\n",
		rep.Conformance.Passed(), len(rep.Check.Violations) == 0, rep.Check.DistinctStates, rep.Check.StopReason)
}

// historyFromTrace extracts the client operation history from a violating
// trace: puts complete when the cluster-wide commit frontier covers them
// (in log order); the stale get is the final read.
func historyFromTrace(t *trace.Trace) []histories.Op {
	var ops []histories.Op
	var pending []int // indexes into ops of uncommitted writes, in log order
	committed := 0
	for i, step := range t.Steps {
		ev := step.Event
		switch {
		case ev.Action == "ClientPut":
			fields := strings.Fields(ev.Payload) // "put x v"
			ops = append(ops, histories.Op{
				Client: ev.Node, Kind: histories.Write,
				Key: fields[1], Value: fields[2],
				Invoke: i, Complete: len(t.Steps) + i, // completes when committed
			})
			pending = append(pending, len(ops)-1)
		case ev.Action == "ClientGet":
			fields := strings.Fields(ev.Payload)
			val := ""
			if lr, ok := step.Vars["lastRead["+strconv.Itoa(ev.Node)+"]"]; ok {
				if j := strings.IndexByte(lr, '='); j >= 0 {
					val = lr[j+1:]
				}
			}
			ops = append(ops, histories.Op{
				Client: ev.Node + 100, Kind: histories.Read,
				Key: fields[1], Value: val, Invoke: i, Complete: i,
			})
		}
		// Advance the commit frontier: max commit index over up nodes.
		front := committed
		for k, v := range step.Vars {
			if strings.HasPrefix(k, "commit[") {
				if c, err := strconv.Atoi(v); err == nil && c > front {
					front = c
				}
			}
		}
		for committed < front && len(pending) > 0 {
			ops[pending[0]].Complete = i
			pending = pending[1:]
			committed++
		}
	}
	return ops
}
