// Package sandtable_bench holds the benchmark harness that regenerates the
// paper's evaluation: one benchmark per table and figure (§5), plus
// ablation benchmarks for the design choices called out in DESIGN.md
// (symmetry reduction, stateful vs stateless search, BFS parallelism,
// constraint-ranking sort orders).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package sandtable_bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/experiments"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/ranking"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Deadline = 90 * time.Second
	o.ExplorationBudget = 3 * time.Second
	o.SpecTraces = 400
	o.ImplTraces = 40
	o.ConformanceWalks = 1500
	return o
}

// BenchmarkTable1Inventory regenerates the integration inventory.
func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("expected 8 systems, got %d", len(rows))
		}
	}
}

// BenchmarkTable2Bugs hunts a representative fast subset of the Table 2
// verification bugs (one per system family) and reports states-to-bug;
// cmd/experiments regenerates the full table.
func BenchmarkTable2Bugs(b *testing.B) {
	for _, id := range []string{"GoSyncObj#2", "CRaft#4", "DaosRaft#1", "AsyncRaft#2"} {
		id := id
		b.Run(id, func(b *testing.B) {
			info, _ := bugdb.ByID(id)
			d := experiments.Detections[id]
			sys, err := integrations.Get(info.System)
			if err != nil {
				b.Fatal(err)
			}
			var states int
			for i := 0; i < b.N; i++ {
				st := sandtable.New(sys, d.Config, d.Budget, d.Bugs)
				opts := explorer.DefaultOptions()
				opts.Deadline = 90 * time.Second
				res := st.Check(opts)
				if res.FirstViolation() == nil {
					b.Fatalf("%s not found", id)
				}
				states = res.DistinctStates
			}
			b.ReportMetric(float64(states), "states-to-bug")
		})
	}
}

// BenchmarkTable3Exploration measures each system's bug-fixed exploration
// throughput over a capped prefix of its experiment-#1 space (the full
// exhaustive runs are `cmd/experiments -table 3`; capping keeps the whole
// benchmark suite inside the default go-test timeout). Each system runs at
// three worker counts — 1, 4, and NumCPU ("max") — so BENCH_explorer.json
// tracks both single-worker probe-table speed and the scaling of the
// concurrent probe-and-insert fingerprint set. The coverage profiler
// (Options.Cover) stays on, matching how `sandtable check` runs and gating
// the profiler's hot-path overhead.
func BenchmarkTable3Exploration(b *testing.B) {
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	workerRuns := []struct {
		label   string
		workers int
	}{
		{"w1", 1},
		{"w4", 4},
		{"wmax", runtime.NumCPU()},
	}
	for _, name := range experiments.Systems {
		name := name
		b.Run(name, func(b *testing.B) {
			sys, err := integrations.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, wr := range workerRuns {
				wr := wr
				b.Run(wr.label, func(b *testing.B) {
					var perSec, eventsPerSec float64
					for i := 0; i < b.N; i++ {
						st := sandtable.New(sys, cfg, experiments.Exp1Budget(name), bugdb.NoBugs())
						res := st.Check(explorer.Options{
							Symmetry: true, StopAtFirstViolation: true,
							MaxStates: 120_000, Workers: wr.workers, Cover: true,
						})
						if v := res.FirstViolation(); v != nil {
							b.Fatalf("bug-fixed spec violated %s: %v", v.Invariant, v.Err)
						}
						perSec = res.StatesPerSecond()
						eventsPerSec = float64(res.Transitions) / res.Duration.Seconds()
					}
					b.ReportMetric(perSec, "states/s")
					b.ReportMetric(eventsPerSec, "events/s")
					b.ReportMetric(float64(wr.workers), "workers")
					// GOMAXPROCS makes the workers column interpretable: on a
					// 1-CPU machine wmax legitimately records workers=1, and
					// only this field distinguishes that from a parse bug.
					b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
				})
			}
		})
	}
}

// BenchmarkSpillExploration contrasts in-RAM exploration with the same run
// under a memory budget far below its working set, so BENCH_explorer.json
// tracks what the out-of-core path costs: the budgeted run spills frozen
// fingerprint-set shards to sorted disk runs at every level boundary and
// answers dedup probes through the min/max+bloom-gated disk index. (The
// distributed-system specs carry no spec.StateCodec, so the frontier stays
// in RAM here; the fingerprint set is what grows without bound anyway.)
func BenchmarkSpillExploration(b *testing.B) {
	sys, err := integrations.Get("craft")
	if err != nil {
		b.Fatal(err)
	}
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	for _, m := range []struct {
		label  string
		budget int64
	}{
		{"inram", 0},
		{"spill", 256 << 10},
	} {
		m := m
		b.Run(m.label, func(b *testing.B) {
			var perSec float64
			for i := 0; i < b.N; i++ {
				st := sandtable.New(sys, cfg, experiments.Exp1Budget("craft"), bugdb.NoBugs())
				res := st.Check(explorer.Options{
					Symmetry: true, StopAtFirstViolation: true,
					MaxStates: 60_000, Workers: 4, Cover: true,
					MemBudget: m.budget, SpillDir: b.TempDir(),
				})
				if v := res.FirstViolation(); v != nil {
					b.Fatalf("bug-fixed spec violated %s: %v", v.Invariant, v.Err)
				}
				perSec = res.StatesPerSecond()
			}
			b.ReportMetric(perSec, "states/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkConformance measures conformance-checking throughput (§3.2: walk
// generation plus implementation-level replay on a fresh cluster per walk)
// at 1, 4, and NumCPU replay workers, so scripts/bench.sh records the
// parallel replay pool's scaling in BENCH_explorer.json alongside the
// explorer sweep. The report is identical at every worker count (see
// conformance.Options.Workers); only wall-clock changes.
func BenchmarkConformance(b *testing.B) {
	sys, err := integrations.Get("gosyncobj")
	if err != nil {
		b.Fatal(err)
	}
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	workerRuns := []struct {
		label   string
		workers int
	}{
		{"w1", 1},
		{"w4", 4},
		{"wmax", runtime.NumCPU()},
	}
	for _, wr := range workerRuns {
		wr := wr
		b.Run(wr.label, func(b *testing.B) {
			var perSec float64
			for i := 0; i < b.N; i++ {
				st := sandtable.New(sys, cfg, sys.DefaultBudget, bugdb.NoBugs())
				rep, err := st.Conform(conformance.Options{
					Walks: 300, WalkDepth: 30, Seed: 1, Workers: wr.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Passed() {
					b.Fatalf("aligned pair diverged: %v", rep.Discrepancy)
				}
				perSec = float64(rep.EventsChecked) / rep.Duration.Seconds()
			}
			b.ReportMetric(perSec, "events/s")
			b.ReportMetric(float64(wr.workers), "workers")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkTable4Speedup measures per-trace exploration at both levels and
// reports the spec-vs-impl speedup under the paper-calibrated cost model.
func BenchmarkTable4Speedup(b *testing.B) {
	for _, name := range experiments.Systems {
		name := name
		b.Run(name, func(b *testing.B) {
			sys, err := integrations.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			bugs := bugdb.VerificationBugs(name)
			cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
			st := sandtable.New(sys, cfg, sys.DefaultBudget, bugs)
			sim := explorer.NewSimulator(st.Machine(), explorer.SimOptions{Seed: 1})

			var specNs, implSimNs float64
			for i := 0; i < b.N; i++ {
				start := time.Now()
				w := sim.Walk(int64(i))
				specNs = float64(time.Since(start).Nanoseconds())

				cluster, err := sys.NewCluster(cfg, bugs, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := replay.Run(w.Trace, cluster, replay.Options{}); err != nil {
					b.Fatal(err)
				}
				implSimNs = float64(cluster.SimulatedCost().Nanoseconds())
			}
			if specNs > 0 {
				b.ReportMetric(implSimNs/specNs, "speedup")
			}
		})
	}
}

// BenchmarkFigure6 regenerates the GoSyncObj#4 counterexample behind the
// paper's Figure 6 timing diagram.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the CRaft#1+#2 data-inconsistency scenario
// behind the paper's Figure 7.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSymmetry measures the distinct-state reduction from
// symmetry (DESIGN.md ablation #2).
func BenchmarkAblationSymmetry(b *testing.B) {
	sys, err := integrations.Get("gosyncobj")
	if err != nil {
		b.Fatal(err)
	}
	budget := spec.Budget{Name: "sym", MaxTimeouts: 2, MaxRequests: 1, MaxPartitions: 1, MaxBuffer: 2}
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	for _, sym := range []bool{false, true} {
		name := "off"
		if sym {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				st := sandtable.New(sys, cfg, budget, bugdb.NoBugs())
				res := st.Check(explorer.Options{Symmetry: sym, StopAtFirstViolation: true})
				if !res.Exhausted {
					b.Fatalf("space not exhausted: %s", res.StopReason)
				}
				states = res.DistinctStates
			}
			b.ReportMetric(float64(states), "distinct-states")
		})
	}
}

// BenchmarkAblationStateless compares the stateful fingerprint-set BFS with
// the stateless (no-dedup) search discipline on the same bounded model
// (DESIGN.md ablation #1 — the paper's core premise).
func BenchmarkAblationStateless(b *testing.B) {
	m := &toy.LostUpdate{N: 4}
	b.Run("stateful", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			res := explorer.NewChecker(m, explorer.Options{Symmetry: false}).Run()
			states = res.DistinctStates
		}
		b.ReportMetric(float64(states), "visits")
	})
	b.Run("stateless", func(b *testing.B) {
		var visits int64
		for i := 0; i < b.N; i++ {
			res := explorer.StatelessSearch(m, explorer.StatelessOptions{})
			visits = res.Visits
		}
		b.ReportMetric(float64(visits), "visits")
	})
}

// BenchmarkAblationWorkers sweeps the BFS worker count (DESIGN.md #4).
func BenchmarkAblationWorkers(b *testing.B) {
	sys, err := integrations.Get("craft")
	if err != nil {
		b.Fatal(err)
	}
	budget := spec.Budget{Name: "w", MaxTimeouts: 2, MaxRequests: 1, MaxDrops: 1, MaxBuffer: 2, MaxCompactions: 1}
	cfg := spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := sandtable.New(sys, cfg, budget, bugdb.NoBugs())
				res := st.Check(explorer.Options{Symmetry: true, Workers: workers, StopAtFirstViolation: true})
				if !res.Exhausted {
					b.Fatalf("not exhausted: %s", res.StopReason)
				}
			}
		})
	}
}

// BenchmarkAblationRanking compares the built-in constraint-ranking sort
// order with the depth-first alternative (DESIGN.md #3).
func BenchmarkAblationRanking(b *testing.B) {
	sys, err := integrations.Get("gosyncobj")
	if err != nil {
		b.Fatal(err)
	}
	cfgs := []spec.Config{{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}}
	budgets := []spec.Budget{
		{Name: "light", MaxTimeouts: 3, MaxRequests: 1, MaxBuffer: 3},
		{Name: "hunt", MaxTimeouts: 5, MaxCrashes: 1, MaxRestarts: 1, MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 3},
		{Name: "wide", MaxTimeouts: 8, MaxCrashes: 2, MaxRestarts: 2, MaxRequests: 3, MaxPartitions: 2, MaxBuffer: 5},
	}
	for _, order := range []struct {
		name string
		less ranking.Less
	}{{"coverage-first", ranking.BranchCoverageFirst}, {"depth-first", ranking.DepthFirst}} {
		order := order
		b.Run(order.name, func(b *testing.B) {
			st := sandtable.New(sys, cfgs[0], budgets[1], bugdb.VerificationBugs("gosyncobj"))
			for i := 0; i < b.N; i++ {
				r := st.Rank(cfgs, budgets, ranking.Options{WalksPerPair: 16, Seed: 1, Less: order.less})
				if len(r.Top("n2w2", 1)) != 1 {
					b.Fatal("no ranking produced")
				}
			}
		})
	}
}

// sampleStates collects up to n distinct states from seeded random walks
// over m — a workload-shaped corpus for the canonicalization benchmark
// (states at many depths, not just the bushy initial levels).
func sampleStates(m spec.Machine, n int, seed int64) []spec.State {
	rng := rand.New(rand.NewSource(seed))
	var out []spec.State
	for len(out) < n {
		inits := m.Init()
		cur := inits[rng.Intn(len(inits))]
		for d := 0; d < 60 && len(out) < n; d++ {
			out = append(out, cur)
			succs := m.Next(cur)
			if len(succs) == 0 {
				break
			}
			cur = succs[rng.Intn(len(succs))].State
		}
	}
	return out
}

// BenchmarkCanonicalization isolates the min-of-orbit canonical fingerprint
// — the per-successor cost symmetry reduction adds to every state the
// explorer touches — and contrasts the two pipelines on the same sampled
// states: `flat` recomputes a full fingerprint per non-identity permutation
// (PermutedFingerprint), `orbit` digests the state once and recombines
// sub-digests per permutation (spec.OrbitHasher with reused scratch, the
// explorer's worker configuration). The ratio of the two ns/op columns is
// the canonicalization speedup the PR-level gate tracks; allocs/op on the
// orbit path should be zero.
func BenchmarkCanonicalization(b *testing.B) {
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	fams := []struct {
		name string
		mk   func(b *testing.B) spec.Machine
	}{
		{"gosyncobj", func(b *testing.B) spec.Machine { return benchMachine(b, "gosyncobj", cfg) }},
		{"craft", func(b *testing.B) spec.Machine { return benchMachine(b, "craft", cfg) }},
		{"zabkeeper", func(b *testing.B) spec.Machine { return benchMachine(b, "zabkeeper", cfg) }},
		{"toy", func(b *testing.B) spec.Machine { return &toy.LostUpdate{N: 3} }},
	}
	for _, f := range fams {
		f := f
		m := f.mk(b)
		sym := m.(spec.Symmetric)
		oh := m.(spec.OrbitHasher)
		fast, _ := m.(spec.FastSymmetric)
		pt := spec.PermTableFor(sym.NumNodes())
		states := sampleStates(m, 512, 17)
		b.Run(f.name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				s := states[i%len(states)]
				min := s.Fingerprint()
				for _, p := range pt.NonIdentity {
					var pf uint64
					if fast != nil {
						pf = fast.PermutedFingerprint(s, p)
					} else {
						pf = sym.Permute(s, p).Fingerprint()
					}
					if pf < min {
						min = pf
					}
				}
				sink ^= min
			}
			benchSink = sink
		})
		b.Run(f.name+"/orbit", func(b *testing.B) {
			b.ReportAllocs()
			sc := fp.NewOrbitScratch()
			var sink uint64
			for i := 0; i < b.N; i++ {
				s := states[i%len(states)]
				min, _ := oh.OrbitFingerprint(s, pt, sc)
				sink ^= min
			}
			benchSink = sink
		})
	}
}

// benchSink defeats dead-code elimination in tight benchmark loops.
var benchSink uint64

// benchMachine builds one integration system's bug-fixed spec machine.
func benchMachine(b *testing.B, name string, cfg spec.Config) spec.Machine {
	b.Helper()
	sys, err := integrations.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return sandtable.New(sys, cfg, sys.DefaultBudget, bugdb.NoBugs()).Machine()
}

// BenchmarkExplorerThroughput reports the raw distinct-state throughput of
// the specification-level explorer (the quantity behind the paper's 10^9
// states/machine-day headline).
func BenchmarkExplorerThroughput(b *testing.B) {
	sys, err := integrations.Get("gosyncobj")
	if err != nil {
		b.Fatal(err)
	}
	cfg := spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}
	budget := spec.Budget{Name: "big", MaxTimeouts: 6, MaxCrashes: 1, MaxRestarts: 1, MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 4}
	for i := 0; i < b.N; i++ {
		st := sandtable.New(sys, cfg, budget, bugdb.NoBugs())
		res := st.Check(explorer.Options{Symmetry: true, MaxStates: 120000, StopAtFirstViolation: true})
		b.ReportMetric(res.StatesPerSecond(), "states/s")
	}
}
