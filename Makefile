GO ?= go

.PHONY: all build vet test race race-conform fuzz docs ci bench benchdiff clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-conform hammers the parallel conformance worker pool specifically:
# repeated -race runs of the pool's equivalence and verdict tests, so a
# scheduling-dependent regression in the first-discrepancy-wins protocol
# fails CI even when the full-suite race pass happens to interleave benignly.
race-conform:
	$(GO) test -race -count 4 -run 'TestParallelMatchesSerial|TestResourceCheck' ./internal/conformance/

# fuzz runs a short coverage-guided smoke over the virtual network's queue
# operations (send/deliver/drop/duplicate against a model oracle).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/vnet/ -fuzz FuzzQueueOps -fuzztime $(FUZZTIME)

# docs is the documentation gate: gofmt cleanliness, go vet, doc comments
# on every exported identifier in the audited packages, and unbroken
# relative links in the *.md files (see scripts/checkdocs.sh).
docs:
	./scripts/checkdocs.sh

# ci is the gate every change must pass: compile, static checks, the docs
# gate, the full test suite under the race detector, the repeated race run
# of the parallel conformance pool, and a short fuzz smoke.
ci: build vet docs race race-conform fuzz

# bench runs the Table 3 exploration benchmark and writes BENCH_explorer.json
# (see scripts/bench.sh for the JSON shape).
bench:
	./scripts/bench.sh

# benchdiff runs a fresh single-count benchmark into a scratch file and
# prints per-system throughput / bytes-per-op / allocs-per-op deltas against
# the committed BENCH_explorer.json, without overwriting the baseline.
benchdiff:
	BENCH_OUT=.bench_fresh.json ./scripts/bench.sh 1
	$(GO) run ./scripts/benchdiff BENCH_explorer.json .bench_fresh.json

clean:
	rm -f BENCH_explorer.json .bench_fresh.json
