GO ?= go

.PHONY: all build vet test race race-conform fuzz docs checktrace soak cluster serve-smoke ci ci-bench bench benchdiff clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-conform hammers the parallel conformance worker pool specifically:
# repeated -race runs of the pool's equivalence and verdict tests, so a
# scheduling-dependent regression in the first-discrepancy-wins protocol
# fails CI even when the full-suite race pass happens to interleave benignly.
race-conform:
	$(GO) test -race -count 4 -run 'TestParallelMatchesSerial|TestResourceCheck' ./internal/conformance/

# fuzz runs a short coverage-guided smoke over the virtual network's queue
# operations (send/deliver/drop/duplicate against a model oracle).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/vnet/ -fuzz FuzzQueueOps -fuzztime $(FUZZTIME)

# docs is the documentation gate: gofmt cleanliness, go vet, doc comments
# on every exported identifier in the audited packages, and unbroken
# relative links in the *.md files (see scripts/checkdocs.sh).
docs:
	./scripts/checkdocs.sh

# checktrace regenerates observability artifacts (JSONL trace, metrics
# snapshot, Markdown report) from a small bounded run and validates them
# against the versioned schema in internal/obs/schema.go — every event must
# parse, carry a readable version, and keep strictly increasing sequence
# numbers; the metrics snapshot and embedded coverage profile must carry
# readable schema versions too. Schema drift fails here before it breaks
# `sandtable report` or archived artifacts.
checktrace:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/sandtable check -system gosyncobj -max-states 2000 -deadline 60s \
		-metrics-out "$$tmp/metrics.json" -trace-out "$$tmp/trace.jsonl" -report "$$tmp/report.md" >/dev/null && \
	$(GO) run ./scripts/checktrace -metrics "$$tmp/metrics.json" "$$tmp/trace.jsonl" && \
	grep -q '## Action coverage' "$$tmp/report.md"

# soak exercises the out-of-core path end to end: a GOMEMLIMIT-capped
# raftbase-family run under a deliberately tiny -mem-budget, so the
# fingerprint set must spill shards to disk, with a tight checkpoint
# cadence so the incremental delta log engages; then a resume leg reloads
# the committed base+delta chain and rebuilds the frontier by guided
# replay. checktrace -require asserts the spill and delta counters actually
# moved — a soak that fits comfortably in RAM proves nothing.
soak:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	GOMEMLIMIT=512MiB $(GO) run ./cmd/sandtable check -system craft -fixed -max-states 30000 -deadline 120s \
		-mem-budget 256KiB -spill-dir "$$tmp/spill" -checkpoint "$$tmp/ck" -checkpoint-states 5000 \
		-metrics-out "$$tmp/metrics.json" -trace-out "$$tmp/trace.jsonl" >/dev/null && \
	$(GO) run ./scripts/checktrace -metrics "$$tmp/metrics.json" \
		-require fpset.spilled_entries -require checkpoint.deltas "$$tmp/trace.jsonl" && \
	GOMEMLIMIT=512MiB $(GO) run ./cmd/sandtable check -system craft -fixed -max-states 40000 -deadline 120s \
		-mem-budget 256KiB -spill-dir "$$tmp/spill" -checkpoint "$$tmp/ck" -resume >/dev/null && \
	echo "soak: spill + delta checkpoint + resume OK"

# cluster proves the distributed-equivalence guarantee end to end on real
# sockets: a 3-process localhost TCP run of a violating craft configuration
# against a single-process -workers 1 reference. checktrace -require
# asserts frontier blocks actually crossed the transport (a run that never
# exchanged state proves nothing), clustercmp asserts every peer's result
# counters, stop decision, violation set, and full coverage profile match
# the reference, and cmp asserts the coordinator reconstructed a
# byte-identical counterexample trace through remote edge probes. Ports
# are derived from the shell PID so concurrent CI jobs don't collide.
cluster:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/sandtable" ./cmd/sandtable; \
	base=$$((42000 + $$$$ % 2000)); \
	peers="127.0.0.1:$$base,127.0.0.1:$$((base+1)),127.0.0.1:$$((base+2))"; \
	run() { "$$tmp/sandtable" check -system craft -nodes 3 -max-timeouts 2 -max-requests 1 \
		-max-buffer 2 -deadline 120s "$$@"; }; \
	run -workers 1 -metrics-out "$$tmp/ref.json" -o "$$tmp/ref-trace.json" >/dev/null; \
	run -workers 2 -peers "$$peers" -peer-id 1 -metrics-out "$$tmp/peer1.json" >/dev/null 2>&1 & p1=$$!; \
	run -workers 2 -peers "$$peers" -peer-id 2 -metrics-out "$$tmp/peer2.json" >/dev/null 2>&1 & p2=$$!; \
	run -workers 2 -peers "$$peers" -peer-id 0 -metrics-out "$$tmp/peer0.json" \
		-o "$$tmp/cluster-trace.json" >/dev/null; \
	wait $$p1; wait $$p2; \
	$(GO) run ./scripts/checktrace -metrics "$$tmp/peer0.json" \
		-require transport.blocks_sent -require transport.bytes_recv -require transport.barriers; \
	$(GO) run ./scripts/clustercmp -ref "$$tmp/ref.json" "$$tmp/peer0.json" "$$tmp/peer1.json" "$$tmp/peer2.json"; \
	cmp "$$tmp/ref-trace.json" "$$tmp/cluster-trace.json"; \
	echo "cluster: 3-peer run matches single-process reference (counters, coverage, trace)"

# serve-smoke proves checking-as-a-service end to end over real HTTP: a
# `sandtable serve` daemon gets a violating craft job submitted by the
# servesmoke client, which streams SSE progress + trace events to
# completion and downloads the artifact set. checktrace validates both the
# trace.jsonl artifact and the SSE-streamed events against the schema,
# clustercmp asserts the job's result counters, stop decision, violation
# set, and coverage profile match a CLI run with identical settings, and
# cmp asserts the counterexample trace is byte-identical — an HTTP job and
# a CLI invocation are the same check. Ports derive from the shell PID so
# concurrent CI jobs don't collide.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); srv=""; \
	trap 'test -n "$$srv" && kill $$srv 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/sandtable" ./cmd/sandtable; \
	addr=127.0.0.1:$$((44100 + $$$$ % 2000)); \
	"$$tmp/sandtable" check -system craft -nodes 3 -max-timeouts 2 -max-requests 1 \
		-max-buffer 2 -deadline 120s -workers 1 \
		-metrics-out "$$tmp/ref.json" -o "$$tmp/ref-trace.json" >/dev/null; \
	"$$tmp/sandtable" serve -addr "$$addr" -artifacts "$$tmp/jobs" >/dev/null & srv=$$!; \
	$(GO) run ./scripts/servesmoke -server "http://$$addr" -out "$$tmp/serve" \
		-spec '{"op":"check","system":"craft","nodes":3,"max_timeouts":2,"max_requests":1,"max_buffer":2,"deadline":"120s","workers":1,"progress_every":"100ms"}'; \
	kill $$srv; wait $$srv 2>/dev/null; srv=""; \
	$(GO) run ./scripts/checktrace -metrics "$$tmp/serve/metrics.json" \
		"$$tmp/serve/trace.jsonl" "$$tmp/serve/sse-trace.jsonl"; \
	$(GO) run ./scripts/clustercmp -ref "$$tmp/ref.json" "$$tmp/serve/metrics.json"; \
	cmp "$$tmp/ref-trace.json" "$$tmp/serve/trace.json"; \
	echo "serve-smoke: HTTP job matches CLI reference (counters, coverage, trace)"

# ci is the gate every change must pass: compile, static checks, the docs
# gate, the full test suite under the race detector, the repeated race run
# of the parallel conformance pool, a short fuzz smoke, the observability
# artifact schema gate, the out-of-core soak, the 3-process
# distributed-equivalence gate, and the checking-as-a-service smoke.
ci: build vet docs race race-conform fuzz checktrace soak cluster serve-smoke

# ci-bench is ci plus a soft performance gate: a fresh single-count benchmark
# run diffed against the committed BENCH_explorer.json baseline. The `-`
# prefix makes it advisory — benchmark noise on shared CI boxes must not
# fail the build, but the delta table lands in the log for perf-sensitive
# changes (canonicalization, fingerprint set, frontier) to be eyeballed.
ci-bench: ci
	-$(MAKE) benchdiff

# bench runs the Table 3 exploration benchmark and writes BENCH_explorer.json
# (see scripts/bench.sh for the JSON shape).
bench:
	./scripts/bench.sh

# benchdiff runs a fresh single-count benchmark into a scratch file and
# prints per-system throughput / bytes-per-op / allocs-per-op deltas against
# the committed BENCH_explorer.json, without overwriting the baseline.
benchdiff:
	BENCH_OUT=.bench_fresh.json ./scripts/bench.sh 1
	$(GO) run ./scripts/benchdiff BENCH_explorer.json .bench_fresh.json

clean:
	rm -f BENCH_explorer.json BENCH_explorer_metrics.json .bench_fresh.json .bench_fresh_metrics.json
