GO ?= go

.PHONY: all build vet test race ci bench clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate every change must pass: compile, static checks, and the
# full test suite under the race detector.
ci: build vet race

# bench runs the Table 3 exploration benchmark and writes BENCH_explorer.json
# (see scripts/bench.sh for the JSON shape).
bench:
	./scripts/bench.sh

clean:
	rm -f BENCH_explorer.json
