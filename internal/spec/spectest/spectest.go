// Package spectest provides generic property tests shared by the
// specification packages' test suites. It verifies the
// spec.BufferedMachine contract — pooled successor enumeration
// (AppendNext into a caller-owned scratch buffer) must be observationally
// identical to the allocating Next path, including when the buffer is
// recycled across calls and when it arrives with a non-empty prefix — and
// the spec.OrbitHasher contract: the incremental min-of-orbit canonical
// fingerprint must equal the reference computed by materialising every
// permuted state.
package spectest

import (
	"math/rand"
	"testing"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// AssertOrbitEquiv drives `walks` seeded random walks of up to `depth`
// steps over m (which must implement spec.OrbitHasher) and, at every
// visited state s, asserts the full canonicalization contract against the
// materialising reference Permute(s, p).Fingerprint():
//
//   - OrbitFingerprint's minimum equals the reference min over the whole
//     orbit (identity included), and its reduced flag equals
//     "a non-identity permutation strictly beat the plain fingerprint";
//   - when m also implements spec.FastSymmetric, PermutedFingerprint
//     agrees with the reference for every permutation individually;
//
// while reusing one scratch across all calls (the explorer's per-worker
// usage pattern, which also catches stale-scratch bugs).
func AssertOrbitEquiv(t *testing.T, m spec.Machine, walks, depth int, seed int64) {
	t.Helper()
	oh, ok := m.(spec.OrbitHasher)
	if !ok {
		t.Fatalf("%s does not implement spec.OrbitHasher", m.Name())
	}
	pt := spec.PermTableFor(oh.NumNodes())
	fast, _ := m.(spec.FastSymmetric)
	scratch := fp.NewOrbitScratch()
	rng := rand.New(rand.NewSource(seed))
	checked := 0
	for w := 0; w < walks; w++ {
		inits := m.Init()
		cur := inits[rng.Intn(len(inits))]
		for d := 0; d <= depth; d++ {
			plain := cur.Fingerprint()
			wantMin := plain
			for _, p := range pt.NonIdentity {
				ref := oh.Permute(cur, p).Fingerprint()
				if fast != nil {
					if got := fast.PermutedFingerprint(cur, p); got != ref {
						t.Fatalf("%s: PermutedFingerprint(%v) = %#x, reference Permute+Fingerprint = %#x",
							m.Name(), p, got, ref)
					}
				}
				if ref < wantMin {
					wantMin = ref
				}
			}
			gotMin, gotReduced := oh.OrbitFingerprint(cur, pt, scratch)
			if gotMin != wantMin {
				t.Fatalf("%s: OrbitFingerprint min = %#x, reference orbit min = %#x (plain %#x)",
					m.Name(), gotMin, wantMin, plain)
			}
			if wantReduced := wantMin != plain; gotReduced != wantReduced {
				t.Fatalf("%s: OrbitFingerprint reduced = %v, want %v (min %#x, plain %#x)",
					m.Name(), gotReduced, wantReduced, wantMin, plain)
			}
			checked++
			succs := m.Next(cur)
			if len(succs) == 0 {
				break
			}
			cur = succs[rng.Intn(len(succs))].State
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no states checked", m.Name())
	}
}

// AssertBufferedEquiv drives `walks` seeded random walks of up to `depth`
// steps over m and, at every visited state s, asserts that
// AppendNext(s, buf) appends exactly the successors Next(s) returns — same
// count, same events, same successor fingerprints — while reusing one
// scratch buffer across all calls (the explorer's per-worker usage pattern).
// It also asserts the append contract proper: an existing buffer prefix
// survives untouched. Machines that do not implement spec.BufferedMachine
// fail immediately.
func AssertBufferedEquiv(t *testing.T, m spec.Machine, walks, depth int, seed int64) {
	t.Helper()
	bm, ok := m.(spec.BufferedMachine)
	if !ok {
		t.Fatalf("%s does not implement spec.BufferedMachine", m.Name())
	}
	rng := rand.New(rand.NewSource(seed))
	var buf []spec.Succ
	checked := 0
	for w := 0; w < walks; w++ {
		inits := m.Init()
		cur := inits[rng.Intn(len(inits))]
		for d := 0; d <= depth; d++ {
			plain := m.Next(cur)
			buf = bm.AppendNext(cur, buf[:0])
			compareSuccs(t, m, plain, buf, 0)
			checked++
			if t.Failed() || len(plain) == 0 {
				break
			}
			cur = plain[rng.Intn(len(plain))].State
		}
		if t.Failed() {
			return
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no states checked", m.Name())
	}

	// Append contract: a non-empty prefix must survive untouched.
	inits := m.Init()
	s := inits[0]
	prefix := bm.AppendNext(s, nil)
	if len(prefix) == 0 {
		return
	}
	// Snapshot the expectation first: the second AppendNext may legally grow
	// prefix's backing array in place, overwriting prefix[1:].
	want := append([]spec.Succ(nil), prefix...)
	out := bm.AppendNext(s, prefix[:1])
	if len(out) != 1+len(want) {
		t.Fatalf("%s: AppendNext with prefix returned %d successors, want %d",
			m.Name(), len(out), 1+len(want))
	}
	if out[0].Event.String() != want[0].Event.String() ||
		out[0].State.Fingerprint() != want[0].State.Fingerprint() {
		t.Fatalf("%s: AppendNext overwrote the buffer prefix", m.Name())
	}
	compareSuccs(t, m, want, out, 1)
}

// compareSuccs asserts got[skip:] matches want element-wise (event rendering
// and successor fingerprint — fingerprints are the explorer's notion of
// state identity).
func compareSuccs(t *testing.T, m spec.Machine, want, got []spec.Succ, skip int) {
	t.Helper()
	got = got[skip:]
	if len(want) != len(got) {
		t.Fatalf("%s: AppendNext returned %d successors, Next returned %d",
			m.Name(), len(got), len(want))
	}
	for i := range want {
		if w, g := want[i].Event.String(), got[i].Event.String(); w != g {
			t.Fatalf("%s: successor %d event mismatch: Next %q, AppendNext %q", m.Name(), i, w, g)
		}
		if w, g := want[i].State.Fingerprint(), got[i].State.Fingerprint(); w != g {
			t.Fatalf("%s: successor %d state fingerprint mismatch: Next %#x, AppendNext %#x",
				m.Name(), i, w, g)
		}
	}
}
