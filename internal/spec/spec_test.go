package spec

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/sandtable-go/sandtable/internal/fp"
)

func TestBudgetDoubleDoublesEveryBound(t *testing.T) {
	b := Budget{Name: "x", MaxTimeouts: 1, MaxCrashes: 2, MaxRestarts: 3, MaxRequests: 4,
		MaxPartitions: 5, MaxDrops: 6, MaxDuplicates: 7, MaxBuffer: 8, MaxCompactions: 9, MaxDepth: 10}
	d := b.Double()
	if d.MaxTimeouts != 2 || d.MaxCrashes != 4 || d.MaxRestarts != 6 || d.MaxRequests != 8 ||
		d.MaxPartitions != 10 || d.MaxDrops != 12 || d.MaxDuplicates != 14 || d.MaxBuffer != 16 ||
		d.MaxCompactions != 18 || d.MaxDepth != 20 {
		t.Errorf("double = %+v", d)
	}
	if d.Name != "xx2" {
		t.Errorf("name = %q", d.Name)
	}
	if m := b.Map(); m["MaxTimeouts"] != 1 || m["MaxBuffer"] != 8 {
		t.Errorf("map = %v", m)
	}
}

func TestCountersBudgetGates(t *testing.T) {
	b := Budget{MaxTimeouts: 1, MaxCrashes: 0}
	var c Counters
	if !c.CanTimeout(b) {
		t.Error("timeout should be allowed")
	}
	c.Timeouts++
	if c.CanTimeout(b) {
		t.Error("timeout budget should be exhausted")
	}
	if c.CanCrash(b) {
		t.Error("crash budget is zero")
	}
}

func TestCountersHashChanges(t *testing.T) {
	h1, h2 := fp.New(), fp.New()
	a, b := Counters{}, Counters{Timeouts: 1}
	a.Hash(h1)
	b.Hash(h2)
	if h1.Sum() == h2.Sum() {
		t.Error("counter difference not reflected in hash")
	}
}

func TestViolationFirstWins(t *testing.T) {
	var v Violation
	v.Set("first %d", 1)
	v.Set("second")
	if v.Flag != "first 1" {
		t.Errorf("flag = %q", v.Flag)
	}
}

func TestViolationInvariant(t *testing.T) {
	inv := ViolationInvariant(func(s State) string { return s.(fakeState).flag })
	if err := inv.Check(fakeState{}); err != nil {
		t.Errorf("clean state flagged: %v", err)
	}
	err := inv.Check(fakeState{flag: "boom"})
	if err == nil || !errors.Is(err, err) || err.Error() != "boom" {
		t.Errorf("err = %v", err)
	}
}

type fakeState struct{ flag string }

func (f fakeState) Fingerprint() uint64     { return 0 }
func (f fakeState) Vars() map[string]string { return nil }

func TestPermutationsCountAndUniqueness(t *testing.T) {
	fact := []int{1, 1, 2, 6, 24, 120}
	for n := 0; n <= 5; n++ {
		perms := Permutations(n)
		if len(perms) != fact[n] {
			t.Fatalf("n=%d: %d perms, want %d", n, len(perms), fact[n])
		}
		seen := map[string]bool{}
		for _, p := range perms {
			key := ""
			for _, v := range p {
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Fatalf("duplicate permutation %v", p)
			}
			seen[key] = true
		}
	}
}

func TestQuickPermutationsAreBijections(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%5 + 1
		for _, p := range Permutations(n) {
			seen := make([]bool, n)
			for _, v := range p {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Nodes != 3 || len(c.Workload) != 2 {
		t.Errorf("default config = %+v", c)
	}
}
