// Package spec defines SandTable's specification framework: the state-machine
// abstraction over which the explorer performs specification-level model
// checking (§3.1 of the paper).
//
// A specification is a state machine with an initial-state set, a successor
// relation (actions with preconditions that fire node-level events such as
// message handling, timeouts, client requests, and failures), correctness
// properties (safety invariants used as bug oracles), and state constraints
// that bound the exploration (budget constraints on timeouts, crashes,
// client requests, and network operations).
//
// Where the paper writes specifications in TLA+ and explores them with TLC,
// this reproduction writes them as Go state machines and explores them with
// the internal/explorer package, which reimplements TLC's stateful BFS and
// simulation (random walk) modes.
package spec

import (
	"fmt"
	"sync"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// State is one specification-level system state. Implementations must be
// treated as immutable once returned from Init or Next: actions clone the
// state, mutate the clone, and return it.
type State interface {
	// Fingerprint returns a canonical 64-bit digest of the state. Equal
	// states must produce equal fingerprints; the explorer treats distinct
	// states with colliding fingerprints as identical (the same engineering
	// tradeoff TLC makes).
	Fingerprint() uint64
	// Vars renders every specification variable to a canonical string,
	// keyed by variable name (per-node variables use "var[i]" keys). The
	// conformance checker compares these against implementation state.
	Vars() map[string]string
}

// Succ is one enabled transition out of a state: the node-level event that
// fires it and the successor state it produces.
type Succ struct {
	Event trace.Event
	State State
}

// Invariant is a named safety property. Check returns nil when the property
// holds in the given state and a descriptive error when it is violated.
type Invariant struct {
	Name  string
	Check func(State) error
}

// Machine is a system specification: a state machine suitable for model
// checking. Implementations live in internal/specs/<system>.
type Machine interface {
	// Name identifies the specification (e.g. "gosyncobj").
	Name() string
	// Init returns the initial states.
	Init() []State
	// Next enumerates every enabled transition from s. The returned
	// successor states must already satisfy the machine's internal budget
	// accounting (Next must not enumerate transitions that exceed budgets).
	Next(s State) []Succ
	// Invariants returns the safety properties checked on every state.
	Invariants() []Invariant
}

// BufferedMachine is an optional Machine capability for allocation-lean
// successor enumeration: AppendNext appends every enabled transition from s
// to buf and returns the extended slice, exactly as
//
//	append(buf, m.Next(s)...)
//
// would, but without allocating a fresh []Succ per call. The explorer, the
// simulator, and the stateless-search ablation all prefer AppendNext when a
// machine provides it, passing a long-lived per-worker scratch buffer whose
// capacity amortises across millions of states; Next remains the required
// fallback for machines that do not implement it.
//
// Ownership rules: the caller owns buf (and the returned slice, which may
// share buf's backing array); the machine must not retain either across
// calls. The successor *states* follow the usual immutability contract —
// they are freshly built per call and never reused, so callers may keep them
// after recycling the buffer. The spectest package provides a generic
// equivalence test asserting AppendNext ≡ Next.
type BufferedMachine interface {
	Machine
	// AppendNext appends every enabled transition from s to buf and
	// returns the extended slice (semantics of append(buf, Next(s)...)).
	AppendNext(s State, buf []Succ) []Succ
}

// AppendSuccessors enumerates s's successors into buf using AppendNext when
// the machine implements BufferedMachine and Next otherwise. Hot loops that
// care about the type-assertion cost should assert once and call AppendNext
// directly; this helper is for the cooler call sites.
func AppendSuccessors(m Machine, s State, buf []Succ) []Succ {
	if bm, ok := m.(BufferedMachine); ok {
		return bm.AppendNext(s, buf)
	}
	return append(buf, m.Next(s)...)
}

// Symmetric is an optional Machine capability enabling symmetry reduction
// (§3.3: "permuting the nodes and workload values does not change whether an
// action satisfies an invariant"). Permute returns the state with node
// identities permuted by perm (perm[i] = new identity of node i).
type Symmetric interface {
	NumNodes() int
	Permute(s State, perm []int) State
}

// FastSymmetric is an optional refinement of Symmetric: machines that can
// compute the fingerprint of a permuted state without materialising it
// (avoiding one full state copy per permutation per successor) implement
// this; the explorer prefers it when present. The contract is
//
//	PermutedFingerprint(s, perm) == Permute(s, perm).Fingerprint()
//
// which the specification test suites verify by property testing.
type FastSymmetric interface {
	Symmetric
	PermutedFingerprint(s State, perm []int) uint64
}

// OrbitHasher is an optional refinement of Symmetric for incremental orbit
// canonicalization: instead of rehashing the full state once per
// permutation (P! full passes for the min-of-orbit canonical fingerprint),
// the machine decomposes the state into node-id-free sub-digests hashed
// once (per node, per ordered node pair, plus a global residue) and derives
// each permutation's fingerprint by cheaply recombining them — O(|state| +
// P!·P²) instead of O(P!·|state|). The contract is exact equality with the
// flat path:
//
//	min over all perms of Permute(s, perm).Fingerprint()
//
// with reduced == (min != s.Fingerprint()); implementers therefore build
// State.Fingerprint, PermutedFingerprint, and OrbitFingerprint on the same
// decomposition, and spectest.AssertOrbitEquiv property-tests the
// equivalence. scratch is caller-owned reusable memory (the explorer keeps
// one per expansion worker); implementations must not retain it.
type OrbitHasher interface {
	Symmetric
	OrbitFingerprint(s State, perms *PermTable, scratch *fp.OrbitScratch) (min uint64, reduced bool)
}

// ActionLister is an optional Machine capability declaring the full action
// vocabulary of the specification: every name that can appear as
// trace.Event.Action under the machine's configuration and budget. The
// coverage profiler (obs.Cover) diffs fired actions against this declared
// set to flag actions that never fired — an enabled-but-unreached part of
// the model that a raw fire-count profile cannot see. The list should be
// conditioned on the instance (budgets, feature switches): declaring an
// action the configuration makes impossible produces a false "never fired"
// flag.
type ActionLister interface {
	// Actions returns the declared action names in a stable order.
	Actions() []string
}

// DeclaredActions returns the machine's declared action vocabulary, or nil
// when the machine does not implement ActionLister.
func DeclaredActions(m Machine) []string {
	if al, ok := m.(ActionLister); ok {
		return al.Actions()
	}
	return nil
}

// StateCodec is an optional Machine capability: states round-trip through a
// compact binary encoding. States are deliberately NOT generically
// serialisable (Vars() is for humans, not round-trips), so out-of-core
// features that must park live states on disk — the explorer's frontier
// spill under a memory budget — are only available on machines that opt in
// here. The contract is
//
//	DecodeState(AppendState(nil, s)).Fingerprint() == s.Fingerprint()
//
// and the decoded state must be behaviourally identical to the original
// (same successors, same invariant verdicts). The encoding is private to the
// machine and never persisted across runs, so it carries no versioning.
type StateCodec interface {
	// AppendState appends s's encoding to dst and returns the extended
	// slice (append-style, so callers can batch many states into one
	// buffer without per-state allocations).
	AppendState(dst []byte, s State) []byte
	// DecodeState decodes one state from the front of src, returning the
	// state and the remaining bytes.
	DecodeState(src []byte) (State, []byte, error)
}

// Config instantiates a model: the node count and the workload values that
// client requests write (the paper's "system configurations" in §3.3).
type Config struct {
	Name     string
	Nodes    int
	Workload []string
}

// DefaultConfig is the 3-node, two-workload-value configuration used in most
// of the paper's experiments.
func DefaultConfig() Config {
	return Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
}

// Budget bounds the explored state space (the paper's "budget constraints"):
// maximum counts of timeouts, crashes/restarts, client requests, partitions,
// UDP drops/duplications, in-flight messages per channel, and exploration
// depth. A zero MaxDepth means unbounded depth.
type Budget struct {
	Name           string
	MaxTimeouts    int
	MaxCrashes     int
	MaxRestarts    int
	MaxRequests    int
	MaxPartitions  int
	MaxDrops       int
	MaxDuplicates  int
	MaxBuffer      int
	MaxCompactions int
	// MaxDirtyCrashes bounds crash-consistency faults (NodeCrashDirty):
	// crashes that lose or tear the node's unsynced writes instead of
	// preserving durable state atomically. Zero disables the fault model,
	// leaving the legacy atomic-durability crash semantics.
	MaxDirtyCrashes int
	MaxDepth        int
}

// Map renders the budget as the generic config map recorded in traces.
func (b Budget) Map() map[string]int {
	return map[string]int{
		"MaxTimeouts":     b.MaxTimeouts,
		"MaxCrashes":      b.MaxCrashes,
		"MaxRestarts":     b.MaxRestarts,
		"MaxRequests":     b.MaxRequests,
		"MaxPartitions":   b.MaxPartitions,
		"MaxDrops":        b.MaxDrops,
		"MaxDuplicates":   b.MaxDuplicates,
		"MaxBuffer":       b.MaxBuffer,
		"MaxCompactions":  b.MaxCompactions,
		"MaxDirtyCrashes": b.MaxDirtyCrashes,
		"MaxDepth":        b.MaxDepth,
	}
}

// Double returns the budget with every bound doubled — Table 3's
// experiment #2 doubles each constraint value of experiment #1.
func (b Budget) Double() Budget {
	d := b
	d.Name = b.Name + "x2"
	d.MaxTimeouts *= 2
	d.MaxCrashes *= 2
	d.MaxRestarts *= 2
	d.MaxRequests *= 2
	d.MaxPartitions *= 2
	d.MaxDrops *= 2
	d.MaxDuplicates *= 2
	d.MaxBuffer *= 2
	d.MaxCompactions *= 2
	d.MaxDirtyCrashes *= 2
	if b.MaxDepth > 0 {
		d.MaxDepth = b.MaxDepth * 2
	}
	return d
}

// Counters tracks how much of each budget a state has consumed. Specs embed
// Counters in their state structs; actions bump the relevant counter and
// refuse to enumerate once the budget is exhausted.
type Counters struct {
	Timeouts    int
	Crashes     int
	Restarts    int
	Requests    int
	Partitions  int
	Drops       int
	Duplicates  int
	Compactions int
	// DirtyCrashes counts crash-consistency faults taken (NodeCrashDirty).
	DirtyCrashes int
}

// Hash mixes the counters into a state fingerprint.
func (c *Counters) Hash(h *fp.Hasher) {
	h.Sep()
	h.WriteInt(c.Timeouts)
	h.WriteInt(c.Crashes)
	h.WriteInt(c.Restarts)
	h.WriteInt(c.Requests)
	h.WriteInt(c.Partitions)
	h.WriteInt(c.Drops)
	h.WriteInt(c.Duplicates)
	h.WriteInt(c.Compactions)
	h.WriteInt(c.DirtyCrashes)
}

// Vars renders the counters for conformance output.
func (c *Counters) Vars(m map[string]string) {
	m["counters"] = fmt.Sprintf("timeouts=%d crashes=%d restarts=%d requests=%d partitions=%d drops=%d dups=%d dirty=%d",
		c.Timeouts, c.Crashes, c.Restarts, c.Requests, c.Partitions, c.Drops, c.Duplicates, c.DirtyCrashes)
}

// CanTimeout etc. report whether the corresponding budget still has room.
func (c *Counters) CanTimeout(b Budget) bool   { return c.Timeouts < b.MaxTimeouts }
func (c *Counters) CanCrash(b Budget) bool     { return c.Crashes < b.MaxCrashes }
func (c *Counters) CanRestart(b Budget) bool   { return c.Restarts < b.MaxRestarts }
func (c *Counters) CanRequest(b Budget) bool   { return c.Requests < b.MaxRequests }
func (c *Counters) CanPartition(b Budget) bool { return c.Partitions < b.MaxPartitions }
func (c *Counters) CanDrop(b Budget) bool      { return c.Drops < b.MaxDrops }
func (c *Counters) CanDuplicate(b Budget) bool { return c.Duplicates < b.MaxDuplicates }
func (c *Counters) CanCompact(b Budget) bool   { return c.Compactions < b.MaxCompactions }

// CanDirtyCrash reports whether another crash-consistency fault fits the
// budget (dirty crashes also consume the ordinary crash budget, so a spec
// should check both).
func (c *Counters) CanDirtyCrash(b Budget) bool { return c.DirtyCrashes < b.MaxDirtyCrashes }

// Violation is the standard auxiliary variable specs use to flag
// action-property violations (e.g. "match index is not monotonic", which is
// a property of a transition rather than of a single state). Actions set the
// flag when the property is broken; the ViolationInvariant then reports it.
type Violation struct {
	Flag string
}

// Set records a violation description (first one wins).
func (v *Violation) Set(format string, args ...any) {
	if v.Flag == "" {
		v.Flag = fmt.Sprintf(format, args...)
	}
}

// Hash mixes the violation flag into a fingerprint.
func (v *Violation) Hash(h *fp.Hasher) {
	h.Sep()
	h.WriteString(v.Flag)
}

// ViolationInvariant returns the invariant that fails whenever a state
// carries a flagged action-property violation.
func ViolationInvariant(get func(State) string) Invariant {
	return Invariant{
		Name: "NoFlaggedViolation",
		Check: func(s State) error {
			if f := get(s); f != "" {
				return fmt.Errorf("%s", f)
			}
			return nil
		},
	}
}

// PermTable is the precomputed permutation table for one arity: every
// permutation of 0..n-1 plus the derived views the canonicalization hot
// path needs (identity dropped, inverses paired). Tables come from
// PermTableFor and are shared across callers — treat every slice as
// read-only.
type PermTable struct {
	// N is the arity.
	N int
	// All lists every permutation; All[0] is the identity.
	All [][]int
	// Identity is All[0] (perm[i] == i).
	Identity []int
	// NonIdentity is All[1:]: the permutations the min-of-orbit loop
	// actually has to try once the plain fingerprint seeds the minimum.
	NonIdentity [][]int
	// NonIdentityInv holds the inverse of each NonIdentity permutation,
	// index-aligned (inv[perm[i]] == i) — combiners read "which original
	// node fills slot j" without re-deriving it per state.
	NonIdentityInv [][]int
}

// permTableMax bounds the cached arities; factorial growth makes larger
// tables pathological anyway (8! = 40320 permutations), so beyond the cap
// tables are built on demand.
const permTableMax = 8

var permTables [permTableMax + 1]struct {
	once sync.Once
	tab  *PermTable
}

// PermTableFor returns the (cached, shared, read-only) permutation table
// for arity n. The first call per arity builds the table; subsequent calls
// are a pointer load — call sites no longer regenerate the factorial table
// per run.
func PermTableFor(n int) *PermTable {
	if n < 0 || n > permTableMax {
		return buildPermTable(n)
	}
	e := &permTables[n]
	e.once.Do(func() { e.tab = buildPermTable(n) })
	return e.tab
}

func buildPermTable(n int) *PermTable {
	t := &PermTable{N: n, All: generatePermutations(n)}
	t.Identity = t.All[0]
	t.NonIdentity = t.All[1:]
	t.NonIdentityInv = make([][]int, len(t.NonIdentity))
	for k, p := range t.NonIdentity {
		inv := make([]int, n)
		for i, v := range p {
			inv[v] = i
		}
		t.NonIdentityInv[k] = inv
	}
	return t
}

// Permutations returns all permutations of 0..n-1 (used for symmetry
// reduction; n is small — the paper uses 2- and 3-node configurations).
// The copies are fresh, so callers may mutate them; hot paths should use
// PermTableFor instead.
func Permutations(n int) [][]int {
	t := PermTableFor(n)
	out := make([][]int, len(t.All))
	for i, p := range t.All {
		out[i] = append([]int(nil), p...)
	}
	return out
}

// generatePermutations emits every permutation of 0..n-1 by recursive
// position swaps; the first emitted permutation is the identity (the swap
// at each level starts with the no-op), which PermTable relies on.
func generatePermutations(n int) [][]int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := make([]int, n)
			copy(p, ids)
			out = append(out, p)
			return
		}
		for i := k; i < n; i++ {
			ids[k], ids[i] = ids[i], ids[k]
			rec(k + 1)
			ids[k], ids[i] = ids[i], ids[k]
		}
	}
	rec(0)
	return out
}
