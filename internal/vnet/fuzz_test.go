package vnet

import (
	"bytes"
	"testing"
)

// FuzzQueueOps drives a Network through an arbitrary interleaving of
// send/deliver/drop/duplicate/partition/heal/crash/restart operations
// decoded from the fuzz input. The oracle is a naive per-pair slice model:
// after every operation the real queues must match the model exactly, every
// rejected operation must leave state untouched, and the buffered-frame
// accounting (Len/TotalBuffered/Stats) must stay consistent. Run via
// `make fuzz` (a short -fuzztime smoke wired into `make ci`).
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 1, 0, 4, 1})
	f.Add([]byte{0, 0, 2, 0, 0, 3, 0, 0, 1, 0, 0})
	f.Add([]byte{0, 2, 5, 0, 1, 6, 2, 0, 1, 0, 7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 3
		nw := New(n, UDP)
		model := map[pair][][]byte{}
		cut := map[pair]bool{}
		modelTotal := func() int {
			total := 0
			for _, q := range model {
				total += len(q)
			}
			return total
		}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 8
			src := int(data[i+1]) % n
			dst := (src + 1 + int(data[i+1])/n%(n-1)) % n
			idx := int(data[i+2])
			p := pair{src, dst}
			switch op {
			case 0: // send
				payload := []byte{data[i+2]}
				nw.Send(src, dst, payload)
				if !cut[p] {
					model[p] = append(model[p], payload)
				}
			case 1: // deliver
				fr, err := nw.Deliver(src, dst, idx)
				if idx < len(model[p]) {
					if err != nil {
						t.Fatalf("deliver %d->%d[%d]: %v", src, dst, idx, err)
					}
					if !bytes.Equal(fr.Payload, model[p][idx]) {
						t.Fatalf("deliver %d->%d[%d] = %q, model %q", src, dst, idx, fr.Payload, model[p][idx])
					}
					model[p] = append(model[p][:idx], model[p][idx+1:]...)
				} else if err == nil {
					t.Fatalf("deliver %d->%d[%d] accepted beyond %d buffered", src, dst, idx, len(model[p]))
				}
			case 2: // drop
				err := nw.Drop(src, dst, idx)
				if idx < len(model[p]) {
					if err != nil {
						t.Fatalf("drop %d->%d[%d]: %v", src, dst, idx, err)
					}
					model[p] = append(model[p][:idx], model[p][idx+1:]...)
				} else if err == nil {
					t.Fatalf("drop %d->%d[%d] accepted beyond %d buffered", src, dst, idx, len(model[p]))
				}
			case 3: // duplicate
				err := nw.Duplicate(src, dst, idx)
				if idx < len(model[p]) {
					if err != nil {
						t.Fatalf("duplicate %d->%d[%d]: %v", src, dst, idx, err)
					}
					model[p] = append(model[p], append([]byte(nil), model[p][idx]...))
				} else if err == nil {
					t.Fatalf("duplicate %d->%d[%d] accepted beyond %d buffered", src, dst, idx, len(model[p]))
				}
			case 4: // partition
				nw.Partition(src, dst)
				for _, q := range []pair{{src, dst}, {dst, src}} {
					delete(model, q)
					cut[q] = true
				}
			case 5: // heal
				nw.Heal(src, dst)
				delete(cut, pair{src, dst})
				delete(cut, pair{dst, src})
			case 6: // crash node
				nw.CrashNode(src)
				for other := 0; other < n; other++ {
					if other == src {
						continue
					}
					for _, q := range []pair{{src, other}, {other, src}} {
						delete(model, q)
						cut[q] = true
					}
				}
			case 7: // restart node (no partitions tracked beyond cut map)
				nw.RestartNode(src, func(a, b int) bool { return false })
				for other := 0; other < n; other++ {
					if other == src {
						continue
					}
					delete(cut, pair{src, other})
					delete(cut, pair{other, src})
				}
			}
			// Accounting invariants after every op.
			for q, frames := range model {
				if nw.Len(q.src, q.dst) != len(frames) {
					t.Fatalf("Len(%d,%d) = %d, model %d", q.src, q.dst, nw.Len(q.src, q.dst), len(frames))
				}
			}
			if nw.TotalBuffered() != modelTotal() {
				t.Fatalf("TotalBuffered = %d, model %d", nw.TotalBuffered(), modelTotal())
			}
		}
		// Channels must come back sorted by sequence number.
		frames := nw.Channels()
		for i := 1; i < len(frames); i++ {
			if frames[i-1].Seq >= frames[i].Seq {
				t.Fatalf("Channels not strictly ordered by Seq at %d: %d >= %d", i, frames[i-1].Seq, frames[i].Seq)
			}
		}
	})
}
