// Package vnet is the transparent network proxy (§A.2 of the paper): it
// buffers every message a node sends and releases messages only on explicit
// engine commands, giving the engine full control over delivery order and
// network failures.
//
// Two semantics are provided, matching §3.1's environment modeling:
//
//   - TCP: per-connection FIFO queues; no loss, duplication, or reordering.
//     The only failure is a network partition, which breaks the connection,
//     clears in-flight buffers, and blocks traffic until healed (§A.3).
//   - UDP: an indexed buffer per ordered pair allowing selective delivery
//     (out-of-order), drops, and duplication.
//
// # Concurrency
//
// A Network is not safe for concurrent use: it is owned by exactly one
// goroutine (the deterministic engine's command loop — determinism requires
// serial execution), and every method, including Stats, must be called from
// that goroutine. The one sanctioned way to observe a live run from another
// goroutine is the obs-backed mirror installed with SetMetrics: its
// counters and gauges are atomics updated alongside the plain Stats fields,
// so a concurrent reader (an expvar endpoint, a progress reporter, trace
// emission) polls the registry's vnet.* entries instead of touching the
// Network. TestStatsMirrorConcurrentReads pins this contract under -race.
package vnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// Semantics selects the transport failure model.
type Semantics int

// Transport semantics.
const (
	TCP Semantics = iota
	UDP
)

func (s Semantics) String() string {
	if s == TCP {
		return "tcp"
	}
	return "udp"
}

// Frame is one buffered message with its interposition header already
// stripped: Src/Dst identify the connection, Payload is the message body,
// Seq is a per-network monotonic sequence used for debugging.
type Frame struct {
	Src, Dst int
	Payload  []byte
	Seq      int
}

// Stats counts network activity for observation and leak checking.
//
// Ownership contract: the counters are plain ints deliberately — a Network
// is owned by exactly one goroutine (the deterministic engine's command
// loop; determinism *requires* serial execution), every mutation happens on
// that goroutine, and Stats() hands callers an independent copy by value.
// Concurrent readers that need live counters (an expvar endpoint watching a
// run) must not reach into the Network; they read the obs-backed mirror
// installed with SetMetrics, whose counters are atomics updated alongside
// these fields.
type Stats struct {
	Sent       int
	Delivered  int
	Dropped    int // includes partition-cleared and send-while-disconnected
	Duplicated int
}

// metrics mirrors Stats into an obs registry; nil handles no-op, so the
// mutation paths update them unconditionally.
type metrics struct {
	sent, delivered, dropped, duplicated *obs.Counter
	buffered                             *obs.Gauge
}

type pair struct{ src, dst int }

// Network is the engine-side message proxy.
type Network struct {
	n         int
	semantics Semantics
	queues    map[pair][]Frame
	cut       map[pair]bool // severed ordered pairs (partition or crash)
	stats     Stats
	seq       int

	m      metrics     // obs-backed mirror of stats (atomic, nil-safe)
	tracer *obs.Tracer // structured event sink (nil-safe)
}

// New builds a proxy for n nodes with the given semantics.
func New(n int, s Semantics) *Network {
	return &Network{
		n:         n,
		semantics: s,
		queues:    make(map[pair][]Frame),
		cut:       make(map[pair]bool),
	}
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// Semantics returns the transport model.
func (nw *Network) Semantics() Semantics { return nw.semantics }

// Stats returns a copy of the activity counters (see the Stats ownership
// contract).
func (nw *Network) Stats() Stats { return nw.stats }

// SetMetrics installs an obs-backed mirror of the Stats counters (keys
// vnet.sent, vnet.delivered, vnet.dropped, vnet.duplicated and the
// vnet.buffered gauge) so network activity appears in metrics snapshots. A
// nil registry uninstalls the mirror.
func (nw *Network) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		nw.m = metrics{}
		return
	}
	nw.m = metrics{
		sent:       reg.Counter("vnet.sent"),
		delivered:  reg.Counter("vnet.delivered"),
		dropped:    reg.Counter("vnet.dropped"),
		duplicated: reg.Counter("vnet.duplicated"),
		buffered:   reg.Gauge("vnet.buffered"),
	}
}

// SetTracer installs a structured event sink: send/deliver/drop/duplicate
// and partition/heal/crash/restart events are emitted as they happen.
func (nw *Network) SetTracer(t *obs.Tracer) { nw.tracer = t }

// drop records n dropped frames in both the plain stats and the mirror.
func (nw *Network) drop(n int) {
	nw.stats.Dropped += n
	nw.m.dropped.Add(int64(n))
}

func (nw *Network) emit(kind string, src, dst, index int, detail map[string]string) {
	if nw.tracer == nil {
		return
	}
	nw.tracer.Emit(obs.Event{Layer: "vnet", Kind: kind, Node: dst, Peer: src, Index: index, Detail: detail})
}

// Connected reports whether the ordered pair src→dst can currently carry
// traffic.
func (nw *Network) Connected(src, dst int) bool {
	return !nw.cut[pair{src, dst}]
}

// Send enqueues a message. Under TCP semantics a send across a severed
// connection is dropped (the connection is broken; the sender would see an
// error or a reset — the paper's spec models this as not appending to the
// channel).
func (nw *Network) Send(src, dst int, payload []byte) {
	nw.stats.Sent++
	nw.m.sent.Inc()
	if !nw.Connected(src, dst) {
		nw.drop(1)
		nw.emit("send-dropped", src, dst, 0, map[string]string{"bytes": strconv.Itoa(len(payload))})
		return
	}
	nw.seq++
	p := pair{src, dst}
	nw.queues[p] = append(nw.queues[p], Frame{Src: src, Dst: dst, Payload: append([]byte(nil), payload...), Seq: nw.seq})
	nw.m.buffered.Add(1)
	nw.emit("send", src, dst, len(nw.queues[p])-1, map[string]string{"seq": strconv.Itoa(nw.seq), "bytes": strconv.Itoa(len(payload))})
}

// Len reports the number of buffered messages src→dst.
func (nw *Network) Len(src, dst int) int { return len(nw.queues[pair{src, dst}]) }

// TotalBuffered reports all in-flight messages.
func (nw *Network) TotalBuffered() int {
	t := 0
	for _, q := range nw.queues {
		t += len(q)
	}
	return t
}

// Peek returns the buffered frame at index without removing it.
func (nw *Network) Peek(src, dst, index int) (Frame, error) {
	q := nw.queues[pair{src, dst}]
	if index < 0 || index >= len(q) {
		return Frame{}, fmt.Errorf("vnet: no message %d->%d at index %d (buffered %d)", src, dst, index, len(q))
	}
	return q[index], nil
}

// ErrHeadOnly is returned when a non-head delivery is attempted under TCP.
var ErrHeadOnly = errors.New("vnet: TCP semantics deliver only the head message")

// Deliver removes and returns the frame at index. TCP semantics require
// index 0 (FIFO); UDP semantics allow any index (out-of-order delivery).
func (nw *Network) Deliver(src, dst, index int) (Frame, error) {
	if nw.semantics == TCP && index != 0 {
		return Frame{}, ErrHeadOnly
	}
	p := pair{src, dst}
	q := nw.queues[p]
	if index < 0 || index >= len(q) {
		return Frame{}, fmt.Errorf("vnet: no message %d->%d at index %d (buffered %d)", src, dst, index, len(q))
	}
	f := q[index]
	nw.queues[p] = append(q[:index:index], q[index+1:]...)
	nw.stats.Delivered++
	nw.m.delivered.Inc()
	nw.m.buffered.Add(-1)
	nw.emit("deliver", src, dst, index, map[string]string{"seq": strconv.Itoa(f.Seq)})
	return f, nil
}

// Drop discards the frame at index (UDP loss).
func (nw *Network) Drop(src, dst, index int) error {
	if nw.semantics != UDP {
		return fmt.Errorf("vnet: drop requires UDP semantics")
	}
	p := pair{src, dst}
	q := nw.queues[p]
	if index < 0 || index >= len(q) {
		return fmt.Errorf("vnet: no message %d->%d at index %d (buffered %d)", src, dst, index, len(q))
	}
	seq := q[index].Seq
	nw.queues[p] = append(q[:index:index], q[index+1:]...)
	nw.drop(1)
	nw.m.buffered.Add(-1)
	nw.emit("drop", src, dst, index, map[string]string{"seq": strconv.Itoa(seq)})
	return nil
}

// Duplicate appends a copy of the frame at index to the tail (UDP
// duplication).
func (nw *Network) Duplicate(src, dst, index int) error {
	if nw.semantics != UDP {
		return fmt.Errorf("vnet: duplicate requires UDP semantics")
	}
	p := pair{src, dst}
	q := nw.queues[p]
	if index < 0 || index >= len(q) {
		return fmt.Errorf("vnet: no message %d->%d at index %d (buffered %d)", src, dst, index, len(q))
	}
	nw.seq++
	dup := Frame{Src: src, Dst: dst, Payload: append([]byte(nil), q[index].Payload...), Seq: nw.seq}
	nw.queues[p] = append(q, dup)
	nw.stats.Duplicated++
	nw.m.duplicated.Inc()
	nw.m.buffered.Add(1)
	nw.emit("duplicate", src, dst, index, map[string]string{"seq": strconv.Itoa(nw.seq)})
	return nil
}

// Partition severs both directions between a and b: connections break,
// in-flight buffers are cleared, and no traffic flows until Heal (§A.3).
func (nw *Network) Partition(a, b int) {
	for _, p := range []pair{{a, b}, {b, a}} {
		nw.drop(len(nw.queues[p]))
		nw.m.buffered.Add(-int64(len(nw.queues[p])))
		delete(nw.queues, p)
		nw.cut[p] = true
	}
	nw.emit("partition", a, b, 0, nil)
}

// Heal restores connectivity between a and b.
func (nw *Network) Heal(a, b int) {
	delete(nw.cut, pair{a, b})
	delete(nw.cut, pair{b, a})
	nw.emit("heal", a, b, 0, nil)
}

// CrashNode severs and clears every connection involving the node (a node
// crash breaks all its network connections).
func (nw *Network) CrashNode(node int) {
	for other := 0; other < nw.n; other++ {
		if other == node {
			continue
		}
		for _, p := range []pair{{node, other}, {other, node}} {
			nw.drop(len(nw.queues[p]))
			nw.m.buffered.Add(-int64(len(nw.queues[p])))
			delete(nw.queues, p)
			nw.cut[p] = true
		}
	}
	nw.emit("crash-node", -1, node, 0, nil)
}

// RestartNode re-establishes the node's connections except those severed by
// an active partition involving other nodes (a rejoining node reconnects).
func (nw *Network) RestartNode(node int, partitioned func(a, b int) bool) {
	for other := 0; other < nw.n; other++ {
		if other == node {
			continue
		}
		if partitioned != nil && partitioned(node, other) {
			continue
		}
		delete(nw.cut, pair{node, other})
		delete(nw.cut, pair{other, node})
	}
	nw.emit("restart-node", -1, node, 0, nil)
}

// Channels lists the ordered pairs with buffered traffic, sorted, for
// rendering network state in conformance comparisons.
func (nw *Network) Channels() []Frame {
	var out []Frame
	for p, q := range nw.queues {
		_ = p
		out = append(out, q...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Encode frames a payload with the interposition header the paper's
// interceptor prepends to mark message boundaries in a TCP byte stream.
func Encode(payload []byte) []byte {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	return buf
}

// DecodeStream splits a byte stream into framed payloads, returning any
// trailing partial frame as rest.
func DecodeStream(stream []byte) (payloads [][]byte, rest []byte) {
	for {
		if len(stream) < 4 {
			return payloads, stream
		}
		n := binary.BigEndian.Uint32(stream)
		if len(stream) < int(4+n) {
			return payloads, stream
		}
		payloads = append(payloads, append([]byte(nil), stream[4:4+n]...))
		stream = stream[4+n:]
	}
}
