package vnet

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

func TestTCPFIFOOrder(t *testing.T) {
	n := New(3, TCP)
	n.Send(0, 1, []byte("a"))
	n.Send(0, 1, []byte("b"))
	n.Send(0, 1, []byte("c"))
	if n.Len(0, 1) != 3 {
		t.Fatalf("buffered = %d, want 3", n.Len(0, 1))
	}
	for _, want := range []string{"a", "b", "c"} {
		f, err := n.Deliver(0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(f.Payload) != want {
			t.Errorf("delivered %q, want %q", f.Payload, want)
		}
	}
}

func TestTCPHeadOnly(t *testing.T) {
	n := New(2, TCP)
	n.Send(0, 1, []byte("a"))
	n.Send(0, 1, []byte("b"))
	if _, err := n.Deliver(0, 1, 1); err != ErrHeadOnly {
		t.Errorf("non-head TCP delivery: err = %v, want ErrHeadOnly", err)
	}
}

func TestTCPNoLossNoDupOps(t *testing.T) {
	n := New(2, TCP)
	n.Send(0, 1, []byte("a"))
	if err := n.Drop(0, 1, 0); err == nil {
		t.Error("drop should be rejected under TCP semantics")
	}
	if err := n.Duplicate(0, 1, 0); err == nil {
		t.Error("duplicate should be rejected under TCP semantics")
	}
}

func TestPartitionClearsAndBlocks(t *testing.T) {
	n := New(3, TCP)
	n.Send(0, 1, []byte("inflight"))
	n.Partition(0, 1)
	if n.Len(0, 1) != 0 {
		t.Error("partition should clear in-flight buffers")
	}
	n.Send(0, 1, []byte("blocked"))
	if n.Len(0, 1) != 0 {
		t.Error("send across partition should be dropped")
	}
	if n.Connected(0, 1) || n.Connected(1, 0) {
		t.Error("both directions should be severed")
	}
	// Unaffected pair still works.
	n.Send(0, 2, []byte("ok"))
	if n.Len(0, 2) != 1 {
		t.Error("partition must not affect other pairs")
	}
	n.Heal(0, 1)
	n.Send(0, 1, []byte("after"))
	if n.Len(0, 1) != 1 {
		t.Error("healed pair should carry traffic")
	}
	st := n.Stats()
	if st.Dropped != 2 { // 1 cleared + 1 blocked send
		t.Errorf("dropped = %d, want 2", st.Dropped)
	}
}

func TestUDPOutOfOrderDropDuplicate(t *testing.T) {
	n := New(2, UDP)
	n.Send(0, 1, []byte("a"))
	n.Send(0, 1, []byte("b"))
	n.Send(0, 1, []byte("c"))

	// Out-of-order: deliver index 1 ("b") first.
	f, err := n.Deliver(0, 1, 1)
	if err != nil || string(f.Payload) != "b" {
		t.Fatalf("deliver idx 1: %v %q", err, f.Payload)
	}
	// Duplicate "a" (now index 0): buffer becomes a, c, a.
	if err := n.Duplicate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if n.Len(0, 1) != 3 {
		t.Fatalf("buffered = %d, want 3", n.Len(0, 1))
	}
	// Drop "c" (index 1): buffer becomes a, a.
	if err := n.Drop(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for n.Len(0, 1) > 0 {
		f, err := n.Deliver(0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(f.Payload))
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "a" {
		t.Errorf("remaining = %v, want [a a]", got)
	}
	st := n.Stats()
	if st.Duplicated != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCrashNodeSeversEverything(t *testing.T) {
	n := New(3, TCP)
	n.Send(0, 1, []byte("x"))
	n.Send(2, 1, []byte("y"))
	n.Send(1, 2, []byte("z"))
	n.CrashNode(1)
	if n.Len(0, 1)+n.Len(2, 1)+n.Len(1, 2) != 0 {
		t.Error("crash should clear all the node's channels")
	}
	n.Send(0, 1, []byte("gone"))
	if n.Len(0, 1) != 0 {
		t.Error("send to crashed node should be dropped")
	}
	// Restart reconnects, except pairs an active partition keeps severed.
	n.RestartNode(1, func(a, b int) bool { return (a == 1 && b == 2) || (a == 2 && b == 1) })
	if !n.Connected(0, 1) {
		t.Error("restart should reconnect to node 0")
	}
	if n.Connected(1, 2) {
		t.Error("restart must not reconnect across an active partition")
	}
}

func TestDeliverErrors(t *testing.T) {
	n := New(2, TCP)
	if _, err := n.Deliver(0, 1, 0); err == nil {
		t.Error("delivering from empty channel should fail")
	}
	if _, err := n.Peek(0, 1, 0); err == nil {
		t.Error("peeking empty channel should fail")
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	msgs := [][]byte{[]byte("hello"), []byte(""), []byte("worlds")}
	var stream []byte
	for _, m := range msgs {
		stream = append(stream, Encode(m)...)
	}
	// Append a partial frame.
	partial := Encode([]byte("tail"))[:5]
	stream = append(stream, partial...)

	payloads, rest := DecodeStream(stream)
	if len(payloads) != len(msgs) {
		t.Fatalf("decoded %d payloads, want %d", len(payloads), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(payloads[i], msgs[i]) {
			t.Errorf("payload %d = %q, want %q", i, payloads[i], msgs[i])
		}
	}
	if !bytes.Equal(rest, partial) {
		t.Errorf("rest = %q, want the partial frame", rest)
	}
}

func TestChannelsSortedBySeq(t *testing.T) {
	n := New(3, TCP)
	n.Send(0, 1, []byte("1"))
	n.Send(1, 2, []byte("2"))
	n.Send(0, 1, []byte("3"))
	ch := n.Channels()
	if len(ch) != 3 {
		t.Fatalf("channels = %d frames, want 3", len(ch))
	}
	for i := 1; i < len(ch); i++ {
		if ch[i].Seq <= ch[i-1].Seq {
			t.Error("channels not sorted by sequence")
		}
	}
}

// TestStaleIndexAfterDrop exercises the trap ISSUE targets: a Drop shrinks
// the queue, so an index computed before it can be stale. Every queue op
// must reject the out-of-range index with a diagnostic that reports the
// remaining buffer length instead of panicking or acting on a wrong frame.
func TestStaleIndexAfterDrop(t *testing.T) {
	n := New(2, UDP)
	n.Send(0, 1, []byte("a"))
	n.Send(0, 1, []byte("b"))
	if err := n.Drop(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Index 1 referred to "b" before the drop; now only "a" remains.
	if _, err := n.Deliver(0, 1, 1); err == nil {
		t.Error("Deliver with stale index should fail")
	} else if !strings.Contains(err.Error(), "(buffered 1)") {
		t.Errorf("Deliver error %q should report buffered length", err)
	}
	if err := n.Drop(0, 1, 1); err == nil {
		t.Error("Drop with stale index should fail")
	} else if !strings.Contains(err.Error(), "(buffered 1)") {
		t.Errorf("Drop error %q should report buffered length", err)
	}
	if err := n.Duplicate(0, 1, 1); err == nil {
		t.Error("Duplicate with stale index should fail")
	} else if !strings.Contains(err.Error(), "(buffered 1)") {
		t.Errorf("Duplicate error %q should report buffered length", err)
	}
	// The surviving frame is untouched by the failed operations.
	if n.Len(0, 1) != 1 {
		t.Fatalf("buffered = %d, want 1", n.Len(0, 1))
	}
	f, err := n.Deliver(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "a" {
		t.Errorf("delivered %q, want %q", f.Payload, "a")
	}
}

func TestNegativeIndexRejected(t *testing.T) {
	n := New(2, UDP)
	n.Send(0, 1, []byte("a"))
	if _, err := n.Deliver(0, 1, -1); err == nil {
		t.Error("Deliver with negative index should fail")
	}
	if err := n.Drop(0, 1, -1); err == nil {
		t.Error("Drop with negative index should fail")
	}
	if err := n.Duplicate(0, 1, -1); err == nil {
		t.Error("Duplicate with negative index should fail")
	}
	if _, err := n.Peek(0, 1, -1); err == nil {
		t.Error("Peek with negative index should fail")
	}
}

// TestStatsMirrorConcurrentReads pins the package's concurrency contract:
// the Network itself is single-goroutine, but the obs-backed mirror
// installed with SetMetrics may be read concurrently while the engine
// goroutine delivers, drops, and duplicates. Under -race this fails if the
// mirror ever shares non-atomic state with the delivery path (the bug this
// guards against: trace emission reading the plain Stats ints directly).
func TestStatsMirrorConcurrentReads(t *testing.T) {
	n := New(2, UDP)
	reg := obs.NewRegistry()
	n.SetMetrics(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent observer: registry snapshots + counter reads
		defer wg.Done()
		sent := reg.Counter("vnet.sent")
		delivered := reg.Counter("vnet.delivered")
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap := reg.Snapshot(); snap == nil {
				t.Error("Snapshot returned nil")
				return
			}
			// Individual counter reads alongside full snapshots; the race
			// detector does the real checking here.
			_, _ = sent.Value(), delivered.Value()
		}
	}()

	// Engine goroutine (this one): a busy delivery loop.
	for i := 0; i < 2000; i++ {
		n.Send(0, 1, []byte("m"))
		if i%7 == 0 {
			n.Duplicate(0, 1, 0)
		}
		if i%5 == 0 {
			n.Drop(0, 1, 0)
			continue
		}
		if _, err := n.Deliver(0, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st := n.Stats() // safe: delivery loop above has finished
	if got := reg.Counter("vnet.sent").Value(); got != int64(st.Sent) {
		t.Errorf("mirror sent = %d, stats.Sent = %d", got, st.Sent)
	}
	if got := reg.Counter("vnet.delivered").Value(); got != int64(st.Delivered) {
		t.Errorf("mirror delivered = %d, stats.Delivered = %d", got, st.Delivered)
	}
}
