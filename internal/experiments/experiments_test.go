package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
)

func fastOptions() Options {
	o := DefaultOptions()
	o.Deadline = 90 * time.Second
	o.ExplorationBudget = 2 * time.Second
	o.SpecTraces = 100
	o.ImplTraces = 10
	o.ConformanceWalks = 800
	return o
}

func TestTable1InventoryShape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("systems = %d, want 8", len(rows))
	}
	total := 0
	for _, r := range rows {
		if r.Vars < 5 || r.Actions < 8 || r.Invs < 5 {
			t.Errorf("%s inventory too small: %+v", r.System, r)
		}
		if r.ImplLOC == 0 || r.SpecLOC == 0 {
			t.Errorf("%s line counts missing: %+v", r.System, r)
		}
		total += r.Defects
	}
	if total != len(bugdb.Catalog) {
		t.Errorf("catalog rows across systems = %d, want %d", total, len(bugdb.Catalog))
	}
	if out := FormatTable1(rows); !strings.Contains(out, "zabkeeper") {
		t.Error("format missing a system")
	}
}

// TestTable2FastRows runs the quick verification-stage detections end to
// end (model checking + implementation-level confirmation); the slower rows
// are covered by cmd/experiments and the benchmarks.
func TestTable2FastRows(t *testing.T) {
	for _, id := range []string{"GoSyncObj#2", "CRaft#4", "DaosRaft#1", "AsyncRaft#1", "AsyncRaft#2", "Xraft#1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			info, ok := bugdb.ByID(id)
			if !ok {
				t.Fatal("unknown id")
			}
			row, err := Table2Single(info, fastOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !row.Found {
				t.Fatalf("not found: %s", row.Detail)
			}
			if !row.Confirmed {
				t.Fatalf("not confirmed at implementation level: %s", row.Detail)
			}
			if row.Depth <= 0 || row.States <= 0 {
				t.Errorf("missing metrics: %+v", row)
			}
		})
	}
}

func TestTable2ConformanceRows(t *testing.T) {
	for _, id := range []string{"GoSyncObj#1", "CRaft#6", "AsyncRaft#3", "CRaft#9"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			info, _ := bugdb.ByID(id)
			row, err := Table2Single(info, fastOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !row.Found {
				t.Fatalf("not found: %s", row.Detail)
			}
		})
	}
}

func TestTable4ShapePreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every system")
	}
	rows, err := Table4(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 10 {
			t.Errorf("%s: speedup %.0f — the spec level must win by orders of magnitude", r.System, r.Speedup)
		}
		if r.MeanDepth <= 1 {
			t.Errorf("%s: degenerate walks (mean depth %.1f)", r.System, r.MeanDepth)
		}
	}
	// The paper's ordering shape: the sleep-bound systems (xraft, xraftkv,
	// zabkeeper) show much larger speedups than the sleepless drivers.
	bySys := map[string]float64{}
	for _, r := range rows {
		bySys[r.System] = r.Speedup
	}
	if !(bySys["xraft"] > bySys["gosyncobj"] && bySys["zabkeeper"] > bySys["craft"]) {
		t.Errorf("speedup shape mismatch: %v", bySys)
	}
}

func TestFigure6Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("BFS run")
	}
	out, err := Figure6(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "match index") || !strings.Contains(out, "n0") {
		t.Errorf("figure 6 output malformed:\n%s", out)
	}
}
