package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Table1Row is one row of the integration inventory (the reproduction's
// Table 1): per-system implementation and specification sizes.
type Table1Row struct {
	System  string
	ImplLOC int
	SpecLOC int
	Vars    int
	Actions int
	Invs    int
	Defects int
}

// implDirs maps systems to the implementation packages whose lines Table 1
// counts (forks share their upstream's code the way RedisRaft/DaosRaft
// share WRaft's).
var implDirs = map[string][]string{
	"gosyncobj": {"internal/systems/gosyncobj"},
	"craft":     {"internal/systems/craft"},
	"redisraft": {"internal/systems/craft"},
	"daosraft":  {"internal/systems/craft"},
	"asyncraft": {"internal/systems/asyncraft"},
	"xraft":     {"internal/systems/xraft"},
	"xraftkv":   {"internal/systems/xraft", "internal/systems/xraftkv"},
	"zabkeeper": {"internal/systems/zabkeeper"},
}

var specDirs = map[string][]string{
	"gosyncobj": {"internal/specs/raftbase", "internal/specs/gosyncobj"},
	"craft":     {"internal/specs/raftbase", "internal/specs/craft"},
	"redisraft": {"internal/specs/raftbase", "internal/specs/redisraft"},
	"daosraft":  {"internal/specs/raftbase", "internal/specs/daosraft"},
	"asyncraft": {"internal/specs/raftbase", "internal/specs/asyncraft"},
	"xraft":     {"internal/specs/raftbase", "internal/specs/xraft"},
	"xraftkv":   {"internal/specs/raftbase", "internal/specs/xraftkv"},
	"zabkeeper": {"internal/specs/zabkeeper"},
}

// Table1 builds the inventory.
func Table1() ([]Table1Row, error) {
	root := moduleRoot()
	var rows []Table1Row
	for _, name := range Systems {
		sys, err := integrations.Get(name)
		if err != nil {
			return nil, err
		}
		m := sys.NewMachine(sys.DefaultConfig, sys.DefaultBudget, bugdb.AllBugs(name))
		row := Table1Row{
			System:  name,
			Vars:    countVars(m.Init()[0]),
			Invs:    len(m.Invariants()),
			Defects: len(bugdb.ForSystem(name)),
		}
		if acts, ok := m.(interface{ Actions() []string }); ok {
			row.Actions = len(acts.Actions())
		}
		if root != "" {
			for _, d := range implDirs[name] {
				row.ImplLOC += countLines(filepath.Join(root, d))
			}
			for _, d := range specDirs[name] {
				row.SpecLOC += countLines(filepath.Join(root, d))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// countVars counts distinct specification variable families ("role[0]" and
// "role[2]" are one variable, "role").
func countVars(s spec.State) int {
	names := make(map[string]struct{})
	for k := range s.Vars() {
		if i := strings.IndexByte(k, '['); i >= 0 {
			k = k[:i]
		}
		names[k] = struct{}{}
	}
	return len(names)
}

// moduleRoot locates the repository root (the directory holding go.mod).
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// countLines counts non-test Go source lines under dir.
func countLines(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		total += strings.Count(string(b), "\n")
	}
	return total
}

// FormatTable1 renders the inventory.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: integrated systems and specification inventory\n")
	fmt.Fprintf(&b, "%-11s %9s %9s %6s %6s %6s %8s\n", "System", "Impl LOC", "Spec LOC", "#Var", "#Act", "#Inv", "Defects")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %9d %9d %6d %6d %6d %8d\n", r.System, r.ImplLOC, r.SpecLOC, r.Vars, r.Actions, r.Invs, r.Defects)
	}
	return b.String()
}
