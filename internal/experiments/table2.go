package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/scenario"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Table2Row is one bug-detection result (the reproduction's Table 2).
type Table2Row struct {
	Bug bugdb.Info
	// Verification-stage metrics (zero for other stages).
	Time      time.Duration
	Depth     int
	States    int
	Invariant string
	Confirmed bool
	// Conformance-stage metrics: the walk at which the discrepancy/crash
	// surfaced and a one-line description.
	FoundAtWalk int
	Detail      string
	// Found reports whether the bug was detected at all.
	Found bool
}

// Table2 hunts every catalogued bug through the stage the paper found it
// at: verification bugs by bounded BFS plus implementation-level replay
// confirmation; conformance bugs by random-trace conformance checking
// against the buggy implementation; the modeling bug by a reachability
// query showing no leader is ever electable.
func Table2(o Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, info := range bugdb.Catalog {
		var row Table2Row
		var err error
		stop := o.Metrics.StartPhase("table2." + info.ID)
		switch info.Stage {
		case bugdb.StageVerification:
			row, err = detectVerification(info, o)
		case bugdb.StageConformance:
			row, err = detectConformance(info, o)
		case bugdb.StageModeling:
			row, err = detectModeling(info, o)
		}
		stop()
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", info.ID, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func detectVerification(info bugdb.Info, o Options) (Table2Row, error) {
	row := Table2Row{Bug: info}
	d, ok := Detections[info.ID]
	if !ok {
		return row, fmt.Errorf("no detection setup")
	}
	st, err := session(info.System, d)
	if err != nil {
		return row, err
	}
	res := st.Check(checkOptions(o))
	v := res.FirstViolation()
	if v == nil {
		row.Detail = fmt.Sprintf("not found (%d states, %s)", res.DistinctStates, res.StopReason)
		return row, nil
	}
	row.Found = true
	row.Time = res.Duration
	row.Depth = v.Depth
	row.States = res.DistinctStates
	row.Invariant = v.Invariant
	row.Detail = v.Err.Error()
	// §3.4: confirm at the implementation level by deterministic replay.
	conf, err := st.Confirm(v)
	if err != nil {
		return row, err
	}
	row.Confirmed = conf.Confirmed
	return row, nil
}

// detectConformance runs conformance rounds with the defect present in the
// implementation only, the way the by-product bugs surfaced while aligning
// the spec (§3.2). CRaft#3 needs its triggering situation (a snapshot
// repairing a conflicting log) steered into deliberately, so its trace is
// produced by goal-directed exploration instead of random walks.
func detectConformance(info bugdb.Info, o Options) (Table2Row, error) {
	if info.Key == bugdb.CRaftSnapshotReject {
		return detectSnapshotReject(info, o)
	}
	row := Table2Row{Bug: info}
	sys, err := integrations.Get(info.System)
	if err != nil {
		return row, err
	}
	st := sandtable.New(sys, cfg(3), huntBudget(), bugdb.NoBugs())
	st.ImplBugs = bugdb.NoBugs().With(info.Key)
	walks := o.ConformanceWalks
	if walks <= 0 {
		walks = 2000
	}
	rep, err := st.Conform(conformance.Options{Walks: walks, WalkDepth: 40, Seed: 1})
	if err != nil {
		return row, err
	}
	if rep.Passed() {
		row.Detail = fmt.Sprintf("not found in %d walks", rep.Walks)
		return row, nil
	}
	row.Found = true
	row.FoundAtWalk = rep.Discrepancy.Walk
	var ce *engine.CrashError
	if errors.As(rep.Discrepancy.Step.Err, &ce) {
		row.Detail = fmt.Sprintf("impl crash at walk %d: %v", rep.Discrepancy.Walk, ce.Panic)
	} else {
		row.Detail = fmt.Sprintf("discrepancy at walk %d: %s", rep.Discrepancy.Walk,
			strings.SplitN(rep.Discrepancy.Step.Describe(), "\n", 2)[0])
	}
	return row, nil
}

// snapshotRejectScript is the directed scenario for CRaft#3: node 2 leads
// term 1 and appends locally; node 0 takes over in term 2, commits and
// compacts; its snapshot transfer then reaches node 2, whose conflicting
// local entry the snapshot must repair — the exact install the buggy
// implementation rejects.
var snapshotRejectScript = []string{
	"TimeoutElection n2",
	"HandleRequestVote 2->0",
	"HandleRequestVoteResponse 0->2", // node 2 leads term 1
	`ClientRequest n2 "v1"`,          // appended at node 2 only
	"TimeoutElection n0",
	"HandleRequestVote 0->1",
	"HandleRequestVoteResponse 1->0", // node 0 leads term 2
	`ClientRequest n0 "v1"`,
	"HandleAppendEntries 0->1 [1]",     // replicate to node 1
	"HandleAppendEntriesResponse 1->0", // commit
	"CompactLog n0",                    // entry 1 compacted into a snapshot
	"DropMessage 0->2 [2]",             // the eager AppendEntries is lost (UDP)
	"TimeoutHeartbeat n0",              // next[2] <= snapIdx: snapshot sent
	"HandleSnapshot 0->2 [2]",          // install over the conflicting log
}

// detectSnapshotReject steers a specification trace into the situation
// CRaft#3 mishandles — a snapshot transfer repairing a follower whose local
// log conflicts — and replays it against the buggy implementation, which
// diverges at the installation step (the follower keeps lagging behind
// until the next snapshot, exactly the paper's consequence).
func detectSnapshotReject(info bugdb.Info, o Options) (Table2Row, error) {
	row := Table2Row{Bug: info}
	sys, err := integrations.Get(info.System)
	if err != nil {
		return row, err
	}
	budget := spec.Budget{Name: "snap3", MaxTimeouts: 3, MaxRequests: 2, MaxDrops: 1, MaxBuffer: 3, MaxCompactions: 1}
	m := sys.NewMachine(cfgW1(3), budget, bugdb.NoBugs())
	tr, err := scenario.Run(m, snapshotRejectScript)
	if err != nil {
		return row, err
	}
	cluster, err := sys.NewCluster(cfgW1(3), bugdb.NoBugs().With(info.Key), 1)
	if err != nil {
		return row, err
	}
	rep, err := replay.Run(tr, cluster, replay.Options{CompareEachStep: true})
	if err != nil {
		return row, err
	}
	if rep.Divergence == nil {
		row.Detail = "replay conformed: defect not observable"
		return row, nil
	}
	row.Found = true
	row.Detail = fmt.Sprintf("directed trace (depth %d): %s", tr.Depth(),
		strings.SplitN(rep.Divergence.Describe(), "\n", 2)[0])
	return row, nil
}

// detectModeling demonstrates CRaft#9 the way the paper's authors hit it
// while writing the spec: with the defect in the implementation, no leader
// can ever be elected — visible as an unreachable goal when exploring an
// implementation-faithful model. We replay spec election traces against the
// buggy implementation; the election outcome diverges immediately.
func detectModeling(info bugdb.Info, o Options) (Table2Row, error) {
	row := Table2Row{Bug: info}
	sys, err := integrations.Get(info.System)
	if err != nil {
		return row, err
	}
	st := sandtable.New(sys, cfg(3), spec.Budget{Name: "elect", MaxTimeouts: 2, MaxBuffer: 4}, bugdb.NoBugs())
	st.ImplBugs = bugdb.NoBugs().With(info.Key)
	rep, err := st.Conform(conformance.Options{Walks: 200, WalkDepth: 15, Seed: 1})
	if err != nil {
		return row, err
	}
	if rep.Passed() {
		row.Detail = "not found: implementation elections match the model"
		return row, nil
	}
	row.Found = true
	row.FoundAtWalk = rep.Discrepancy.Walk
	row.Detail = fmt.Sprintf("model/impl divergence at walk %d: %s", rep.Discrepancy.Walk,
		strings.SplitN(rep.Discrepancy.Step.Describe(), "\n", 2)[0])
	return row, nil
}

// FormatTable2 renders the rows next to the paper's reported numbers.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: bug detection effectiveness and efficiency (measured vs paper)\n")
	fmt.Fprintf(&b, "%-12s %-12s %-6s %8s %6s %10s   %-8s %7s %10s  %s\n",
		"ID", "Stage", "Found", "Time", "Depth", "States", "P.Time", "P.Depth", "P.States", "Consequence")
	for _, r := range rows {
		found := "yes"
		if !r.Found {
			found = "NO"
		}
		if r.Bug.Stage == bugdb.StageVerification && r.Found {
			conf := ""
			if r.Confirmed {
				conf = "+confirmed"
			}
			fmt.Fprintf(&b, "%-12s %-12s %-6s %8s %6d %10d   %-8s %7d %10d  %s %s\n",
				r.Bug.ID, r.Bug.Stage, found, fmtDuration(r.Time), r.Depth, r.States,
				r.Bug.PaperTime, r.Bug.PaperDepth, r.Bug.PaperStates, r.Bug.Consequence, conf)
		} else {
			fmt.Fprintf(&b, "%-12s %-12s %-6s %8s %6s %10s   %-8s %7s %10s  %s (%s)\n",
				r.Bug.ID, r.Bug.Stage, found, "-", "-", "-", "-", "-", "-", r.Bug.Consequence, r.Detail)
		}
	}
	return b.String()
}

// Table2Single runs one catalogued bug's detection (exported for targeted
// runs and tests).
func Table2Single(info bugdb.Info, o Options) (Table2Row, error) {
	switch info.Stage {
	case bugdb.StageConformance:
		return detectConformance(info, o)
	case bugdb.StageModeling:
		return detectModeling(info, o)
	default:
		return detectVerification(info, o)
	}
}
