package experiments

import (
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/scenario"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// TestFigure7ScenarioDirected drives the exact Figure 7 event chain through
// the craft specification with the CRaft#1+#2 defects enabled and asserts
// the paper's consequence: a follower commits a conflicting entry, so the
// cluster's committed logs disagree. (BenchmarkFigure7 finds the same chain
// by BFS; this is the deterministic fast check.)
func TestFigure7ScenarioDirected(t *testing.T) {
	m := raftbase.New(raftbase.Options{
		System:    "craft",
		Profile:   raftbase.CRaft,
		Transport: vnet.UDP,
		Snapshots: true,
		Bugs:      bugdb.NoBugs().With(bugdb.CRaftFirstEntryAppend, bugdb.CRaftAEInsteadOfSnapshot),
		Config:    cfgW1(3),
		Budget: spec.Budget{Name: "fig7", MaxTimeouts: 3, MaxRequests: 2,
			MaxDrops: 1, MaxBuffer: 3, MaxCompactions: 1},
		ContinuePastFlag: true,
	})
	script := []string{
		"TimeoutElection n2", // node 2 leads term 1
		"HandleRequestVote 2->0",
		"HandleRequestVoteResponse 0->2",
		`ClientRequest n2 "v1"`, // e1 appended at node 2 only
		"TimeoutElection n0",    // node 0 takes over in term 2
		"HandleRequestVote 0->1",
		"HandleRequestVoteResponse 1->0",
		`ClientRequest n0 "v1"`,            // e2
		"HandleAppendEntries 0->1 [1]",     // replicate e2 to node 1
		"HandleAppendEntriesResponse 1->0", // e2 commits
		"CompactLog n0",                    // e2 compacted into a snapshot
		"DropMessage 0->2 [2]",             // the eager AppendEntries is lost
		"TimeoutHeartbeat n0",              // BUG(#2): AE sent where a snapshot is required
		"HandleAppendEntries 0->2 [2]",     // BUG(#1): node 2 keeps e1 yet advances commit
	}
	tr, err := scenario.Run(m, script)
	if err != nil {
		t.Fatal(err)
	}
	final := tr.Steps[len(tr.Steps)-1]
	if final.Vars["commit[2]"] != "1" {
		t.Fatalf("node 2 commit = %s, want 1 (the incorrectly advanced commit)", final.Vars["commit[2]"])
	}
	if final.Vars["log[2]"] == final.Vars["log[0]"] && final.Vars["snapshot[2]"] == final.Vars["snapshot[0]"] {
		t.Fatal("node 2's log should conflict with the leader's committed state")
	}
	// The committed-log invariants must reject the final state.
	violated := false
	for _, inv := range m.Invariants() {
		if inv.Name == "CommittedLogConsistency" || inv.Name == "LogDurability" {
			// Re-run the script to obtain the final state object.
			if err := checkFinalState(m, script, inv.Name); err != nil {
				violated = true
				if !strings.Contains(err.Error(), "committed") && !strings.Contains(err.Error(), "survives") {
					t.Errorf("unexpected violation message: %v", err)
				}
			}
		}
	}
	if !violated {
		t.Fatal("the Figure 7 chain must violate a committed-log invariant")
	}
}

// checkFinalState re-executes the script and applies one named invariant to
// the final state.
func checkFinalState(m *raftbase.Machine, script []string, invariant string) error {
	cur := m.Init()[0]
	for _, want := range script {
		for _, su := range m.Next(cur) {
			if s := su.Event.String(); s == want || strings.HasPrefix(s, want) {
				cur = su.State
				break
			}
		}
	}
	for _, inv := range m.Invariants() {
		if inv.Name == invariant {
			return inv.Check(cur)
		}
	}
	return nil
}
