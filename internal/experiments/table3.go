package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Table3Row is one system's exploration-efficiency measurement (the
// reproduction's Table 3): experiment #1 exhausts a small bug-fixed space;
// experiment #2 doubles every constraint and explores under a time budget.
type Table3Row struct {
	System string

	Exp1Time      time.Duration
	Exp1Depth     int
	Exp1States    int
	Exp1Exhausted bool

	Exp2Depth  int
	Exp2States int
	Exp2Time   time.Duration

	StatesPerMin float64
}

// Exp1Budget is the restrictive constraint set of Table 3's experiment #1,
// scaled down (as the paper did: "we slightly reduced the timeout events
// and network buffers to 3-4") so exhaustion takes seconds to minutes. UDP
// systems branch on every buffered message index, so their failure budgets
// are trimmed harder to keep the exhaustive space in memory.
func Exp1Budget(system string) spec.Budget {
	switch system {
	case "gosyncobj":
		return spec.Budget{
			Name:        "exp1",
			MaxTimeouts: 2, MaxCrashes: 1, MaxRestarts: 1,
			MaxRequests: 1, MaxPartitions: 1, MaxBuffer: 3,
		}
	case "craft": // UDP: per-index delivery branching dominates
		return spec.Budget{
			Name:        "exp1",
			MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 2, MaxCompactions: 1,
		}
	case "asyncraft":
		return spec.Budget{
			Name:        "exp1",
			MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 2,
		}
	case "zabkeeper": // vote-notification storms dominate
		return spec.Budget{
			Name:        "exp1",
			MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 2,
		}
	default: // redisraft, daosraft, xraft, xraftkv (TCP)
		return spec.Budget{
			Name:        "exp1",
			MaxTimeouts: 2, MaxCrashes: 1, MaxRestarts: 1,
			MaxRequests: 1, MaxPartitions: 1, MaxBuffer: 2,
		}
	}
}

// Table3 runs both experiments per system on the bug-fixed specifications
// with a 3-node configuration, exactly as §5.2 describes.
func Table3(o Options) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range Systems {
		sys, err := integrations.Get(name)
		if err != nil {
			return nil, err
		}
		c := cfg(3)
		b1 := Exp1Budget(name)

		// Experiment #1: exhaust the small space. MaxStates is a memory
		// backstop: exp1 budgets are sized to exhaust well below it.
		st := sandtable.New(sys, c, b1, bugdb.NoBugs())
		opts := explorer.DefaultOptions()
		opts.StopAtFirstViolation = true
		opts.RecordVars = false
		opts.Workers = o.Workers
		opts.Deadline = o.Deadline
		opts.MaxStates = 4_000_000
		opts.Progress = o.Progress
		opts.ProgressInterval = o.ProgressInterval
		opts.Metrics = o.Metrics
		stop1 := o.Metrics.StartPhase("table3." + name + ".exp1")
		res1 := st.Check(opts)
		stop1()
		if v := res1.FirstViolation(); v != nil {
			return nil, fmt.Errorf("table3 %s: bug-fixed spec violated %s: %v", name, v.Invariant, v.Err)
		}

		// Experiment #2: double each constraint, bound by time budget.
		st2 := sandtable.New(sys, c, b1.Double(), bugdb.NoBugs())
		opts2 := opts
		opts2.Deadline = o.ExplorationBudget
		stop2 := o.Metrics.StartPhase("table3." + name + ".exp2")
		res2 := st2.Check(opts2)
		stop2()
		if v := res2.FirstViolation(); v != nil {
			return nil, fmt.Errorf("table3 %s (exp2): bug-fixed spec violated %s: %v", name, v.Invariant, v.Err)
		}

		row := Table3Row{
			System:        name,
			Exp1Time:      res1.Duration,
			Exp1Depth:     res1.MaxDepth,
			Exp1States:    res1.DistinctStates,
			Exp1Exhausted: res1.Exhausted,
			Exp2Depth:     res2.MaxDepth,
			Exp2States:    res2.DistinctStates,
			Exp2Time:      res2.Duration,
		}
		total := res1.Duration + res2.Duration
		if total > 0 {
			row.StatesPerMin = float64(res1.DistinctStates+res2.DistinctStates) / total.Minutes()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders the rows.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: efficiency of state exploration (3-node, bug-fixed specs)\n")
	b.WriteString("experiment #1 exhausts a restrictive space; #2 doubles constraints under a time budget\n")
	fmt.Fprintf(&b, "%-11s | %8s %6s %10s %5s | %6s %10s %8s | %12s\n",
		"System", "Time", "Depth", "#States", "Done", "Depth", "#States", "Budget", "states/min")
	for _, r := range rows {
		done := "yes"
		if !r.Exp1Exhausted {
			done = "no"
		}
		fmt.Fprintf(&b, "%-11s | %8s %6d %10d %5s | %6d %10d %8s | %12.0f\n",
			r.System, fmtDuration(r.Exp1Time), r.Exp1Depth, r.Exp1States, done,
			r.Exp2Depth, r.Exp2States, fmtDuration(r.Exp2Time), r.StatesPerMin)
	}
	return b.String()
}
