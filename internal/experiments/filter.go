package experiments

import (
	"errors"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// filteredMachine restricts a machine's invariants to a chosen subset, so a
// deep scenario (e.g. Figure 7's committed-log inconsistency) can be hunted
// without stopping at shallower flag-style violations on the way.
type filteredMachine struct {
	spec.Machine
	keep map[string]bool
}

// onlyInvariant wraps m keeping just the named invariants.
func onlyInvariant(m spec.Machine, names ...string) spec.Machine {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	return &filteredMachine{Machine: m, keep: keep}
}

// Invariants implements spec.Machine.
func (f *filteredMachine) Invariants() []spec.Invariant {
	var out []spec.Invariant
	for _, inv := range f.Machine.Invariants() {
		if f.keep[inv.Name] {
			out = append(out, inv)
		}
	}
	return out
}

// NumNodes implements spec.Symmetric by delegation (symmetry off when the
// wrapped machine is not symmetric).
func (f *filteredMachine) NumNodes() int {
	if sym, ok := f.Machine.(spec.Symmetric); ok {
		return sym.NumNodes()
	}
	return 1
}

// Permute implements spec.Symmetric by delegation.
func (f *filteredMachine) Permute(s spec.State, perm []int) spec.State {
	if sym, ok := f.Machine.(spec.Symmetric); ok {
		return sym.Permute(s, perm)
	}
	return s
}

// PermutedFingerprint implements spec.FastSymmetric by delegation.
func (f *filteredMachine) PermutedFingerprint(s spec.State, perm []int) uint64 {
	if fast, ok := f.Machine.(spec.FastSymmetric); ok {
		return fast.PermutedFingerprint(s, perm)
	}
	return f.Permute(s, perm).Fingerprint()
}

// OrbitFingerprint implements spec.OrbitHasher by delegation, so filtering
// invariants does not silently drop the wrapped machine's incremental
// canonicalization path. When the wrapped machine lacks the fast path the
// wrapper falls back to the flat min-of-orbit — same contract, one
// PermutedFingerprint per permutation.
func (f *filteredMachine) OrbitFingerprint(s spec.State, perms *spec.PermTable, scratch *fp.OrbitScratch) (uint64, bool) {
	if oh, ok := f.Machine.(spec.OrbitHasher); ok {
		return oh.OrbitFingerprint(s, perms, scratch)
	}
	plain := s.Fingerprint()
	min := plain
	for _, p := range perms.NonIdentity {
		if pf := f.PermutedFingerprint(s, p); pf < min {
			min = pf
		}
	}
	return min, min != plain
}

// goalMachine wraps a machine replacing its invariants with a single
// "goal reached" pseudo-violation, turning BFS into shortest-trace
// goal-directed search (the counterexample IS the directed scenario).
func goalMachine(m spec.Machine, name string, goal func(spec.State) bool) spec.Machine {
	return &goalWrapper{filteredMachine: filteredMachine{Machine: m}, name: name, goal: goal}
}

type goalWrapper struct {
	filteredMachine
	name string
	goal func(spec.State) bool
}

// Invariants implements spec.Machine: the goal as a pseudo-violation.
func (g *goalWrapper) Invariants() []spec.Invariant {
	return []spec.Invariant{{Name: g.name, Check: func(s spec.State) error {
		if g.goal(s) {
			return errGoalReached
		}
		return nil
	}}}
}

var errGoalReached = errors.New("goal state reached")
