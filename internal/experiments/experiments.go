// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on this reproduction: Table 1 (integration inventory),
// Table 2 (bug detection effectiveness and efficiency), Table 3 (state
// exploration efficiency), Table 4 (specification- vs implementation-level
// exploration speed), and the Figure 6/7 space-time diagrams.
//
// Budgets are scaled from the paper's machine-hours to seconds; the shapes
// the paper reports — which level wins, by what orders of magnitude, how
// deep the counterexamples are — are preserved and recorded next to the
// paper's numbers in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Systems is the paper's integration order.
var Systems = []string{"gosyncobj", "craft", "redisraft", "daosraft", "asyncraft", "xraft", "xraftkv", "zabkeeper"}

func cfg(nodes int) spec.Config {
	return spec.Config{Name: fmt.Sprintf("n%dw2", nodes), Nodes: nodes, Workload: []string{"v1", "v2"}}
}

// cfgW1 is a single-workload-value configuration: the deep 3-node UDP
// scenarios need two requests but not distinct values, and halving the
// workload alphabet roughly halves the branching (a configuration choice
// Algorithm 1 ranks highly for these defects).
func cfgW1(nodes int) spec.Config {
	return spec.Config{Name: fmt.Sprintf("n%dw1", nodes), Nodes: nodes, Workload: []string{"v1"}}
}

// huntBudget is the bug-detection constraint family of §5.1 (scaled).
func huntBudget() spec.Budget {
	return spec.Budget{
		Name:        "hunt",
		MaxTimeouts: 5, MaxCrashes: 1, MaxRestarts: 1,
		MaxRequests: 2, MaxPartitions: 1, MaxDrops: 2, MaxDuplicates: 1,
		MaxBuffer: 3, MaxCompactions: 1,
	}
}

// tightBudget is the Algorithm-1-selected constraint set for the deep
// 3-node UDP searches: failures and UDP manipulations are disabled so
// bounded BFS reaches the required depth within the time frame (§5.1:
// "further selections can be made based on a smaller estimated state space
// to make BFS explore deeper within a limited time frame").
func tightBudget() spec.Budget {
	return spec.Budget{Name: "tight", MaxTimeouts: 2, MaxRequests: 2, MaxBuffer: 3}
}

// snapshotBudget keeps one drop so a follower can lag behind a compaction.
func snapshotBudget() spec.Budget {
	return spec.Budget{Name: "snap", MaxTimeouts: 3, MaxRequests: 2, MaxDrops: 2, MaxBuffer: 2, MaxCompactions: 1}
}

// electionBudget drives pure election scenarios (no client traffic).
func electionBudget() spec.Budget {
	return spec.Budget{Name: "election", MaxTimeouts: 3, MaxBuffer: 4}
}

// kvBudget drives the stale-read scenario: a partitioned old leader, one
// write through the new leader, one read at the old one.
func kvBudget() spec.Budget {
	return spec.Budget{Name: "kv", MaxTimeouts: 3, MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 3}
}

// zabBudget bounds the zabkeeper space for the vote-order hunt: two
// election timeouts (two leadership epochs) and three client requests build
// the crossing-epoch zxids the broken comparator cannot order.
func zabBudget() spec.Budget {
	return spec.Budget{Name: "zab", MaxTimeouts: 2, MaxRequests: 3, MaxBuffer: 3}
}

// Detection holds the per-bug model-checking setup: the configuration and
// budget constraints (selected with the §3.3 heuristics) and the defect set
// the buggy build carries when the bug is hunted.
type Detection struct {
	Config spec.Config
	Budget spec.Budget
	Bugs   bugdb.Set
}

// Detections maps Table 2 bug IDs to their detection setups. Verification
// bugs use single-defect builds for attribution (the paper's iterative
// find-fix-rerun reaches the same states); CRaft#2's detection needs the
// snapshot path, so its budget keeps compaction enabled.
var Detections = map[string]Detection{
	"GoSyncObj#2": {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.GSOCommitNonMonotonic)},
	"GoSyncObj#3": {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.GSONextLEMatch)},
	"GoSyncObj#4": {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.GSOMatchNonMonotonic)},
	"GoSyncObj#5": {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.GSOCommitOldTerm)},
	"CRaft#1":     {cfgW1(3), tightBudget(), bugdb.NoBugs().With(bugdb.CRaftFirstEntryAppend)},
	"CRaft#2":     {cfgW1(3), snapshotBudget(), bugdb.NoBugs().With(bugdb.CRaftAEInsteadOfSnapshot)},
	"CRaft#4":     {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.CRaftTermNonMonotonic)},
	"CRaft#5":     {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.CRaftEmptyRetry)},
	"CRaft#7":     {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.CRaftNextLEMatch)},
	"DaosRaft#1":  {cfg(3), huntBudget(), bugdb.NoBugs().With(bugdb.DaosLeaderVotes)},
	"AsyncRaft#1": {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.ARMatchNonMonotonic)},
	"AsyncRaft#2": {cfg(2), huntBudget(), bugdb.NoBugs().With(bugdb.ARLogErase)},
	"AsyncRaft#4": {cfgW1(3), tightBudget(), bugdb.NoBugs().With(bugdb.ARCommitLoopBreak)},
	"Xraft#1":     {cfg(3), electionBudget(), bugdb.NoBugs().With(bugdb.XRaftStaleVotes)},
	"XraftKV#1":   {cfgW1(3), kvBudget(), bugdb.NoBugs().With(bugdb.XKVStaleRead)},
	"ZabKeeper#1": {cfgW1(3), zabBudget(), bugdb.NoBugs().With(bugdb.ZabVoteOrder)},
}

// session builds a SandTable session for one detection.
func session(system string, d Detection) (*sandtable.SandTable, error) {
	sys, err := integrations.Get(system)
	if err != nil {
		return nil, err
	}
	return sandtable.New(sys, d.Config, d.Budget, d.Bugs), nil
}

// Options bounds experiment runs so the full suite fits a CI budget.
type Options struct {
	// Deadline caps each model-checking run.
	Deadline time.Duration
	// Workers for the BFS explorer (0 = NumCPU).
	Workers int
	// ExplorationBudget is Table 3 experiment #2's per-system time budget
	// (the paper used one machine-day).
	ExplorationBudget time.Duration
	// SpecTraces / ImplTraces are Table 4's sample sizes (paper: 10000 and
	// 1000).
	SpecTraces int
	ImplTraces int
	// ConformanceWalks bounds conformance-stage bug hunts.
	ConformanceWalks int
	// Progress, when set, receives progress reports from every
	// model-checking run inside the suite (cadence: ProgressInterval,
	// default 5s — see explorer.Options).
	Progress         obs.ProgressFunc
	ProgressInterval time.Duration
	// Metrics, when set, collects explorer gauges plus per-phase
	// wall-clock durations (phase.table3.<system>.exp1_ns etc.), so a
	// suite run leaves a machine-readable record of where the time went.
	Metrics *obs.Registry
}

// DefaultOptions runs the full suite in a few minutes.
func DefaultOptions() Options {
	return Options{
		Deadline:          4 * time.Minute,
		ExplorationBudget: 15 * time.Second,
		SpecTraces:        2000,
		ImplTraces:        200,
		ConformanceWalks:  2000,
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

// checkOptions builds explorer options for a detection run.
func checkOptions(o Options) explorer.Options {
	opts := explorer.DefaultOptions()
	opts.Deadline = o.Deadline
	opts.Workers = o.Workers
	opts.Progress = o.Progress
	opts.ProgressInterval = o.ProgressInterval
	opts.Metrics = o.Metrics
	return opts
}
