package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/sandtable"
)

// Table4Row compares specification-level and implementation-level
// exploration speed for one system (the reproduction's Table 4).
type Table4Row struct {
	System    string
	MinDepth  int
	MaxDepth  int
	MeanDepth float64
	// SpecMs is the mean wall-clock per specification-level trace.
	SpecMs float64
	// ImplSimMs is the mean per-trace implementation time under the
	// §5.3-calibrated cost model (cluster-init and synchronisation sleeps
	// of the real systems; see DESIGN.md substitutions).
	ImplSimMs float64
	// ImplRealMs is the measured wall-clock of our engine actually
	// executing the implementation (reported for transparency; the engine
	// has no sleeps, so it under-counts the real systems' delays).
	ImplRealMs float64
	// Speedup is ImplSimMs / SpecMs — the paper's headline column.
	Speedup float64
	// PaperSpeedup is the paper's measured value for the shape comparison.
	PaperSpeedup float64
}

// paperSpeedups from Table 4 of the paper.
var paperSpeedups = map[string]float64{
	"gosyncobj": 127, "craft": 121, "redisraft": 114, "daosraft": 177,
	"asyncraft": 825, "xraft": 2989, "xraftkv": 2781, "zabkeeper": 1660,
}

// Table4 runs random-walk exploration at the specification level and
// replays a sample of the traces at the implementation level, exactly the
// setup of §5.3 (10,000 spec traces and 1,000 replays in the paper, scaled
// by Options).
func Table4(o Options) ([]Table4Row, error) {
	specTraces := o.SpecTraces
	if specTraces <= 0 {
		specTraces = 2000
	}
	implTraces := o.ImplTraces
	if implTraces <= 0 {
		implTraces = 200
	}
	var rows []Table4Row
	for _, name := range Systems {
		sys, err := integrations.Get(name)
		if err != nil {
			return nil, err
		}
		bugs := bugdb.VerificationBugs(name)
		st := sandtable.New(sys, cfg(3), sys.DefaultBudget, bugs)

		// Specification-level: seeded random walks, single worker (§5.3).
		sim := explorer.NewSimulator(st.Machine(), explorer.SimOptions{Seed: 1, RecordVars: false})
		specStart := time.Now()
		minD, maxD, sumD := 1<<30, 0, 0
		for i := 0; i < specTraces; i++ {
			w := sim.Walk(int64(i))
			d := w.Stats.Depth
			sumD += d
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		specElapsed := time.Since(specStart)

		// Implementation-level: replay a sample of the same traces on a
		// fresh cluster each (stateless initialisation per trace).
		simVars := explorer.NewSimulator(st.Machine(), explorer.SimOptions{Seed: 1, RecordVars: false})
		var implReal time.Duration
		var implSim time.Duration
		for i := 0; i < implTraces; i++ {
			w := simVars.Walk(int64(i))
			cluster, err := sys.NewCluster(st.Config, bugs, int64(i))
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := replay.Run(w.Trace, cluster, replay.Options{}); err != nil {
				return nil, fmt.Errorf("table4 %s: %w", name, err)
			}
			implReal += time.Since(start)
			implSim += cluster.SimulatedCost()
		}

		row := Table4Row{
			System:       name,
			MinDepth:     minD,
			MaxDepth:     maxD,
			MeanDepth:    float64(sumD) / float64(specTraces),
			SpecMs:       float64(specElapsed.Microseconds()) / 1000 / float64(specTraces),
			ImplSimMs:    float64(implSim.Microseconds()) / 1000 / float64(implTraces),
			ImplRealMs:   float64(implReal.Microseconds()) / 1000 / float64(implTraces),
			PaperSpeedup: paperSpeedups[name],
		}
		if row.SpecMs > 0 {
			row.Speedup = row.ImplSimMs / row.SpecMs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders the comparison.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: specification-level vs implementation-level exploration speed\n")
	b.WriteString("(Impl. is the calibrated cost model of the real systems' delays; Impl.real is our engine's raw execution)\n")
	fmt.Fprintf(&b, "%-11s %11s %10s %10s %12s %12s %9s %9s\n",
		"System", "TraceDepth", "MeanDepth", "Spec.(ms)", "Impl.(ms)", "Impl.real", "Speedup", "P.Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %11s %10.1f %10.3f %12.1f %12.3f %9.0f %9.0f\n",
			r.System, fmt.Sprintf("%d-%d", r.MinDepth, r.MaxDepth), r.MeanDepth,
			r.SpecMs, r.ImplSimMs, r.ImplRealMs, r.Speedup, r.PaperSpeedup)
	}
	return b.String()
}
