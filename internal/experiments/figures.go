package experiments

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/scenario"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// Figure6 reproduces the paper's Figure 6: the space-time diagram of the
// GoSyncObj#4 counterexample (non-monotonic match index), obtained from the
// minimal-depth BFS trace and rendered as an ASCII timing diagram.
func Figure6(o Options) (string, error) {
	d := Detections["GoSyncObj#4"]
	st, err := session("gosyncobj", d)
	if err != nil {
		return "", err
	}
	res := st.Check(checkOptions(o))
	v := res.FirstViolation()
	if v == nil {
		return "", fmt.Errorf("figure 6: GoSyncObj#4 not found")
	}
	head := fmt.Sprintf("Figure 6: GoSyncObj#4 — %v (depth %d, %d states)\n\n", v.Err, v.Depth, res.DistinctStates)
	return head + v.Trace.Diagram(d.Config.Nodes, nil) + "\n" + v.Trace.Format(false), nil
}

// figure7Script is the paper's Figure 7 event chain: node 2 leads term 1
// and appends e1 locally; node 0 takes over in term 2, commits e2 and
// compacts it into a snapshot; CRaft#2 then sends an AppendEntries where a
// snapshot transfer is required, and CRaft#1 makes node 2 accept it —
// keeping e1 yet advancing its commit index.
var figure7Script = []string{
	"TimeoutElection n2",
	"HandleRequestVote 2->0",
	"HandleRequestVoteResponse 0->2",
	`ClientRequest n2 "v1"`,
	"TimeoutElection n0",
	"HandleRequestVote 0->1",
	"HandleRequestVoteResponse 1->0",
	`ClientRequest n0 "v1"`,
	"HandleAppendEntries 0->1 [1]",
	"HandleAppendEntriesResponse 1->0",
	"CompactLog n0",
	"DropMessage 0->2 [2]",
	"TimeoutHeartbeat n0",
	"HandleAppendEntries 0->2 [2]",
}

// Figure7 reproduces the paper's Figure 7: the CRaft#1 + CRaft#2
// combination leading to inconsistent committed logs across the cluster
// after a snapshot-eliding AppendEntries. The chain is replayed through the
// specification as a directed scenario (TestFigure7ScenarioDirected asserts
// its invariant violations; the BFS hunt for the underlying defects is the
// Table 2 CRaft#1/#2 rows).
func Figure7(o Options) (string, error) {
	bugs := bugdb.NoBugs().With(bugdb.CRaftFirstEntryAppend, bugdb.CRaftAEInsteadOfSnapshot)
	m := raftbase.New(raftbase.Options{
		System:    "craft",
		Profile:   raftbase.CRaft,
		Transport: vnet.UDP,
		Snapshots: true,
		Bugs:      bugs,
		Config:    cfgW1(3),
		Budget: spec.Budget{Name: "fig7", MaxTimeouts: 3, MaxRequests: 2,
			MaxDrops: 1, MaxBuffer: 3, MaxCompactions: 1},
		ContinuePastFlag: true,
	})
	tr, err := scenario.Run(m, figure7Script)
	if err != nil {
		return "", fmt.Errorf("figure 7: %w", err)
	}
	final := tr.Steps[len(tr.Steps)-1].Vars
	head := fmt.Sprintf("Figure 7: CRaft#1+#2 — node 2 committed %s up to index %s while the cluster committed %s (snapshot %s)\n\n",
		final["log[2]"], final["commit[2]"], final["log[0]"], final["snapshot[0]"])
	return head + tr.Diagram(3, nil) + "\n" + tr.Format(false), nil
}
