package fp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// combineDigests folds a sequence of sub-digests the way an OrbitHasher
// combiner does: one WriteDigest per component.
func combineDigests(ds []uint64) uint64 {
	var h Hasher
	h.Reset()
	for _, d := range ds {
		h.WriteDigest(d)
	}
	return h.Sum()
}

// TestQuickDigestCombinationOrderSensitive: swapping any two distinct
// sub-digests changes the combined fingerprint — the combiner must encode
// slot order, or permuted states would collide with their originals and
// symmetry reduction would collapse states that are NOT in the same orbit.
func TestQuickDigestCombinationOrderSensitive(t *testing.T) {
	f := func(ds []uint64, i, j uint8) bool {
		if len(ds) < 2 {
			return true
		}
		a, b := int(i)%len(ds), int(j)%len(ds)
		if a == b || ds[a] == ds[b] {
			return true
		}
		orig := combineDigests(ds)
		ds[a], ds[b] = ds[b], ds[a]
		swapped := combineDigests(ds)
		return orig != swapped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubDigestFramingNoAliasing: splitting the same byte stream at
// different node boundaries yields different combined fingerprints — the
// per-component digest seed and the WriteDigest domain byte keep component
// boundaries from aliasing ("ab"|"c" must not collide with "a"|"bc").
func TestQuickSubDigestFramingNoAliasing(t *testing.T) {
	combineSplit := func(data []byte, cut int) uint64 {
		var part Hasher
		part.Reset()
		part.WriteBytes(data[:cut])
		d1 := part.Sum()
		part.Reset()
		part.WriteBytes(data[cut:])
		d2 := part.Sum()
		return combineDigests([]uint64{d1, d2})
	}
	f := func(data []byte, i, j uint8) bool {
		if len(data) == 0 {
			return true
		}
		a, b := int(i)%(len(data)+1), int(j)%(len(data)+1)
		if a == b {
			return true
		}
		return combineSplit(data, a) != combineSplit(data, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDigestStreamDistinctFromRawValues: a combined sub-digest stream must
// not alias a stream of the same 64-bit values written raw — WriteDigest's
// domain byte separates the two vocabularies.
func TestDigestStreamDistinctFromRawValues(t *testing.T) {
	vals := []uint64{0, 1, 0xDEADBEEF, ^uint64(0)}
	var raw Hasher
	raw.Reset()
	for _, v := range vals {
		raw.WriteUint64(v)
	}
	if raw.Sum() == combineDigests(vals) {
		t.Fatal("digest stream aliases raw WriteUint64 stream")
	}
}

// TestQuickCombinePermutationConsistency is the model-level agreement
// property behind OrbitHasher: for a synthetic n-node state (one random
// payload per node), combining the per-node sub-digests in permuted slot
// order equals hashing the materialised permuted state flat — i.e. the
// incremental path agrees with flat hashing on randomized states.
func TestQuickCombinePermutationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	flat := func(payloads [][]byte) uint64 {
		var h Hasher
		h.Reset()
		for _, p := range payloads {
			var sub Hasher
			sub.Reset()
			sub.WriteBytes(p)
			h.WriteDigest(sub.Sum())
		}
		return h.Sum()
	}
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(5)
		payloads := make([][]byte, n)
		for i := range payloads {
			payloads[i] = make([]byte, rng.Intn(12))
			rng.Read(payloads[i])
		}
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		// Materialise the permuted state, then hash it flat.
		permuted := make([][]byte, n)
		for i, p := range payloads {
			permuted[perm[i]] = p
		}
		want := flat(permuted)
		// Incremental path: hash each node once, combine through inv.
		node := make([]uint64, n)
		var sub Hasher
		for i, p := range payloads {
			sub.Reset()
			sub.WriteBytes(p)
			node[i] = sub.Sum()
		}
		var h Hasher
		h.Reset()
		for j := 0; j < n; j++ {
			h.WriteDigest(node[inv[j]])
		}
		if got := h.Sum(); got != want {
			t.Fatalf("iter %d n %d perm %v: incremental combine %#x != flat permuted hash %#x",
				iter, n, perm, got, want)
		}
	}
}

// FuzzDigestCombiner fuzzes the framing-safety property: two different
// splits of the same byte stream into two sub-digests must combine to
// different fingerprints (a collision here would let symmetry reduction
// identify states whose node boundaries merely shifted).
func FuzzDigestCombiner(f *testing.F) {
	f.Add([]byte("abc"), uint8(1), uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(0), uint8(4))
	f.Add([]byte("sandtable"), uint8(3), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, i, j uint8) {
		if len(data) == 0 {
			return
		}
		a, b := int(i)%(len(data)+1), int(j)%(len(data)+1)
		combine := func(cut int) uint64 {
			var sub Hasher
			sub.Reset()
			sub.WriteBytes(data[:cut])
			d1 := sub.Sum()
			sub.Reset()
			sub.WriteBytes(data[cut:])
			d2 := sub.Sum()
			return combineDigests([]uint64{d1, d2})
		}
		fa, fb := combine(a), combine(b)
		if a == b {
			if fa != fb {
				t.Fatalf("same split %d produced different fingerprints %#x vs %#x", a, fa, fb)
			}
			return
		}
		if fa == fb {
			t.Fatalf("splits %d and %d of %q alias to %#x", a, b, data, fa)
		}
	})
}
