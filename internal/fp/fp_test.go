package fp

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	h1, h2 := New(), New()
	for _, h := range []*Hasher{h1, h2} {
		h.WriteInt(42)
		h.WriteString("hello")
		h.WriteBool(true)
		h.Sep()
		h.WriteInts([]int{1, 2, 3})
	}
	if h1.Sum() != h2.Sum() {
		t.Fatal("same writes produced different fingerprints")
	}
}

func TestFieldFramingPreventsAliasing(t *testing.T) {
	pairs := [][2][2]string{
		{{"ab", "c"}, {"a", "bc"}},
		{{"", "x"}, {"x", ""}},
		{{"a", ""}, {"", "a"}},
	}
	for _, p := range pairs {
		a, b := New(), New()
		a.WriteString(p[0][0])
		a.WriteString(p[0][1])
		b.WriteString(p[1][0])
		b.WriteString(p[1][1])
		if a.Sum() == b.Sum() {
			t.Errorf("aliasing: %q+%q collides with %q+%q", p[0][0], p[0][1], p[1][0], p[1][1])
		}
	}
}

func TestQuickStringSplitNoAliasing(t *testing.T) {
	f := func(s string, cut uint8) bool {
		if len(s) < 2 {
			return true
		}
		k := int(cut)%(len(s)-1) + 1
		split := New()
		split.WriteString(s[:k])
		split.WriteString(s[k:])
		whole := New()
		whole.WriteString(s)
		// A split write must never hash like the concatenated write.
		return split.Sum() != whole.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := New()
	h.WriteString("data")
	h.Reset()
	if h.Sum() != New().Sum() {
		t.Fatal("reset did not restore the offset basis")
	}
}

func TestBoolDistinctFromInts(t *testing.T) {
	a, b := New(), New()
	a.WriteBool(true)
	b.WriteBool(false)
	if a.Sum() == b.Sum() {
		t.Fatal("true and false collide")
	}
}

func TestHashString(t *testing.T) {
	if HashString("x") == HashString("y") {
		t.Fatal("trivial collision")
	}
	if HashString("x") != HashString("x") {
		t.Fatal("not deterministic")
	}
}

func TestQuickIntsRoundTripOrderSensitive(t *testing.T) {
	f := func(a, b []int) bool {
		if len(a) == len(b) {
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
		x, y := New(), New()
		x.WriteInts(a)
		y.WriteInts(b)
		return x.Sum() != y.Sum() // different slices should (essentially always) differ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
