// Package fp provides a fast, allocation-free fingerprint hasher used to
// compute canonical 64-bit fingerprints of specification states.
//
// SandTable's specification-level explorer is stateful: it remembers every
// visited state in a fingerprint set, exactly as TLC does. States therefore
// need a deterministic, order-sensitive 64-bit digest that is cheap to
// compute millions of times per minute. The hasher mixes one 64-bit word at
// a time with a murmur-style avalanche step (two multiplies per word instead
// of FNV's eight sequential ones — fingerprinting dominates the exploration
// profile, so the word-at-a-time mix is a direct states/s win) and uses
// explicit framing between fields so that adjacent fields cannot alias
// (e.g. the pair ("ab","c") must not collide with ("a","bc")).
//
// Fingerprints are stable within a build but NOT across hash-function
// changes; anything that persists fingerprints (explorer checkpoints) must
// version them.
package fp

// Seed of the running hash (the 64-bit FNV offset basis, kept as a
// historical constant) and the two multipliers of the murmur3 fmix64
// avalanche step.
const (
	offset64 = 14695981039346656037
	mix1     = 0xff51afd7ed558ccd
	mix2     = 0xc4ceb9fe1a85ec53
	// prime64 is the FNV-1a prime, still used for single framing bytes
	// where a full avalanche step is overkill.
	prime64 = 1099511628211
)

// Hasher accumulates a 64-bit fingerprint. The zero value is NOT ready to
// use; call New or Reset first.
type Hasher struct {
	h uint64
}

// New returns a Hasher initialised with the seed basis.
func New() *Hasher {
	return &Hasher{h: offset64}
}

// Reset restores the hasher to its initial state so it can be reused.
func (h *Hasher) Reset() { h.h = offset64 }

// Sum returns the fingerprint accumulated so far.
func (h *Hasher) Sum() uint64 { return h.h }

// writeByte mixes a single framing byte (separators, booleans, string
// tails). One multiply, FNV-style; full words go through WriteUint64.
func (h *Hasher) writeByte(b byte) {
	h.h = (h.h ^ uint64(b)) * prime64
}

// WriteUint64 mixes a 64-bit value in one avalanche step (murmur3 fmix64
// core: xor-fold, multiply, shift-xor, multiply).
func (h *Hasher) WriteUint64(v uint64) {
	x := (h.h ^ v) * mix1
	x ^= x >> 33
	h.h = x * mix2
}

// WriteInt mixes an int (framed as 64-bit two's complement).
func (h *Hasher) WriteInt(v int) { h.WriteUint64(uint64(int64(v))) }

// WriteBool mixes a boolean as a framing byte distinct from small ints.
func (h *Hasher) WriteBool(v bool) {
	if v {
		h.writeByte(0xAB)
	} else {
		h.writeByte(0xAC)
	}
}

// WriteString mixes a string with a leading length frame, eight bytes per
// avalanche step (the compiler turns the shift chain into a single
// little-endian load). The tail is mixed byte-wise; the length frame keeps
// zero-padded tails from aliasing shorter strings.
func (h *Hasher) WriteString(s string) {
	h.WriteInt(len(s))
	for len(s) >= 8 {
		h.WriteUint64(uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56)
		s = s[8:]
	}
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

// WriteBytes mixes a byte slice with a leading length frame (same word
// batching as WriteString).
func (h *Hasher) WriteBytes(b []byte) {
	h.WriteInt(len(b))
	for len(b) >= 8 {
		h.WriteUint64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
		b = b[8:]
	}
	for _, c := range b {
		h.writeByte(c)
	}
}

// WriteInts mixes an int slice with a leading length frame.
func (h *Hasher) WriteInts(vs []int) {
	h.WriteInt(len(vs))
	for _, v := range vs {
		h.WriteInt(v)
	}
}

// Sep writes a framing byte that separates logical sections of a state.
// Using a dedicated separator prevents field-boundary aliasing between
// variables hashed back to back.
func (h *Hasher) Sep() { h.writeByte(0xFE) }

// WriteDigest mixes a completed sub-digest produced by a separate Hasher
// (the incremental-canonicalization combiner, see OrbitScratch). The value
// is framed with a dedicated domain byte so a stream of combined
// sub-digests cannot alias a stream of raw WriteUint64 field values.
func (h *Hasher) WriteDigest(d uint64) {
	h.writeByte(0xD6)
	h.WriteUint64(d)
}

// OrbitScratch is the reusable scratch buffer for incremental orbit
// canonicalization (spec.OrbitHasher). A spec decomposes its state into
// node-id-free sub-digests — one per node (Node), one per ordered node pair
// (Edge, row-major n×n) — hashed ONCE per state; the canonical min-of-orbit
// fingerprint is then the minimum over permutations of a cheap combiner
// that mixes the sub-digests in permuted slot order plus the few
// node-id-valued residue fields. Reset between states; the explorer keeps
// one scratch per expansion worker so the canonical path never allocates.
type OrbitScratch struct {
	// Node holds one sub-digest per node (the node's id-free local
	// component).
	Node []uint64
	// Edge holds one sub-digest per ordered node pair, row-major: the pair
	// (a, b) lives at index a*n + b. Diagonal entries carry per-node data
	// indexed by peer (e.g. a leader's own replication-state slot).
	Edge []uint64
}

// NewOrbitScratch returns an empty scratch; Reset sizes it.
func NewOrbitScratch() *OrbitScratch { return &OrbitScratch{} }

// Reset sizes the scratch for an n-node state, growing the buffers only
// when a larger arity appears (steady-state: zero allocations).
func (o *OrbitScratch) Reset(n int) {
	if cap(o.Node) < n {
		o.Node = make([]uint64, n)
	} else {
		o.Node = o.Node[:n]
	}
	e := n * n
	if cap(o.Edge) < e {
		o.Edge = make([]uint64, e)
	} else {
		o.Edge = o.Edge[:e]
	}
}

// HashString is a convenience helper fingerprinting a single string.
func HashString(s string) uint64 {
	h := New()
	h.WriteString(s)
	return h.Sum()
}
