// Package fp provides a fast, allocation-free fingerprint hasher used to
// compute canonical 64-bit fingerprints of specification states.
//
// SandTable's specification-level explorer is stateful: it remembers every
// visited state in a fingerprint set, exactly as TLC does. States therefore
// need a deterministic, order-sensitive 64-bit digest that is cheap to
// compute millions of times per minute. We use FNV-1a with explicit framing
// bytes between fields so that adjacent fields cannot alias (e.g. the pair
// ("ab","c") must not collide with ("a","bc")).
package fp

// Offset and prime of 64-bit FNV-1a.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hasher accumulates an FNV-1a fingerprint. The zero value is NOT ready to
// use; call New or Reset first.
type Hasher struct {
	h uint64
}

// New returns a Hasher initialised with the FNV-1a offset basis.
func New() *Hasher {
	return &Hasher{h: offset64}
}

// Reset restores the hasher to its initial state so it can be reused.
func (h *Hasher) Reset() { h.h = offset64 }

// Sum returns the fingerprint accumulated so far.
func (h *Hasher) Sum() uint64 { return h.h }

// writeByte mixes a single byte.
func (h *Hasher) writeByte(b byte) {
	h.h = (h.h ^ uint64(b)) * prime64
}

// WriteUint64 mixes a 64-bit value, little-endian.
func (h *Hasher) WriteUint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.writeByte(byte(v))
		v >>= 8
	}
}

// WriteInt mixes an int (framed as 64-bit two's complement).
func (h *Hasher) WriteInt(v int) { h.WriteUint64(uint64(int64(v))) }

// WriteBool mixes a boolean as a framing byte distinct from small ints.
func (h *Hasher) WriteBool(v bool) {
	if v {
		h.writeByte(0xAB)
	} else {
		h.writeByte(0xAC)
	}
}

// WriteString mixes a string with a leading length frame.
func (h *Hasher) WriteString(s string) {
	h.WriteInt(len(s))
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

// WriteBytes mixes a byte slice with a leading length frame.
func (h *Hasher) WriteBytes(b []byte) {
	h.WriteInt(len(b))
	for _, c := range b {
		h.writeByte(c)
	}
}

// WriteInts mixes an int slice with a leading length frame.
func (h *Hasher) WriteInts(vs []int) {
	h.WriteInt(len(vs))
	for _, v := range vs {
		h.WriteInt(v)
	}
}

// Sep writes a framing byte that separates logical sections of a state.
// Using a dedicated separator prevents field-boundary aliasing between
// variables hashed back to back.
func (h *Hasher) Sep() { h.writeByte(0xFE) }

// HashString is a convenience helper fingerprinting a single string.
func HashString(s string) uint64 {
	h := New()
	h.WriteString(s)
	return h.Sum()
}
