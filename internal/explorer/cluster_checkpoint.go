package explorer

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/transport"
)

// Cluster checkpoints are simpler than single-process ones: no delta chain,
// just a full per-peer snapshot at a level barrier, all peers at the same
// depth. The commit point is the coordinator's manifest, written only after
// a resolve barrier confirms every peer's snapshot succeeded — a crash
// between snapshots and manifest leaves the previous manifest (and the
// snapshots it references) authoritative. Peer snapshots are depth-stamped
// (peer-<id>/cluster-<depth>.snap) so an uncommitted write never clobbers
// the committed one; depths below the manifest are pruned on the
// coordinator's instruction, one committed level later.
//
// Unlike single-process snapshots, cluster snapshots store the frontier
// *states* (via the machine's StateCodec, which cluster mode requires
// anyway), so resume needs no guided replay: each peer reloads exactly its
// shard and the cluster restarts at the manifest depth after the hello
// barrier re-validates compatibility.

const (
	clusterSnapMagic    = "SNDTBLCP"
	clusterSnapVersion  = 1
	clusterManifestFile = "cluster-manifest.json"
)

// clusterSnapHeader extends the single-process header with the peer's
// coordinates in the partition.
type clusterSnapHeader struct {
	snapshotHeader
	PeerID    int `json:"peer_id"`
	Peers     int `json:"peers"`
	Partition int `json:"partition_version"`
}

// clusterManifest is the cluster-wide commit record: the depth at which
// every peer holds a validated snapshot, plus the model identity resume
// re-checks.
type clusterManifest struct {
	Version    int    `json:"version"`
	Label      string `json:"label,omitempty"`
	Machine    string `json:"machine"`
	Symmetry   bool   `json:"symmetry"`
	InitDigest uint64 `json:"init_digest"`
	Peers      int    `json:"peers"`
	Partition  int    `json:"partition_version"`
	Depth      int    `json:"depth"`
}

// clusterRestore is a loaded per-peer snapshot.
type clusterRestore struct {
	header   clusterSnapHeader
	frontier []frontierEntry
}

// clusterCheckpointer is the coordinator's cadence state. Only peer 0 holds
// one with a live reporter; the decision travels to the other peers in the
// data-barrier summary, so the whole cluster snapshots at the same level.
// The cadence is evaluated against the previous level's global distinct
// count (the freshest number available before expansion), one level staler
// than the single-process trigger.
type clusterCheckpointer struct {
	cadence    *obs.Reporter
	pruneBelow int
}

func (c *Checker) newClusterCheckpointer() *clusterCheckpointer {
	o := c.opts.Checkpoint
	if !o.enabled() {
		return nil
	}
	interval := o.Interval
	if interval == 0 && o.EveryStates == 0 {
		interval = 60 * time.Second
	}
	// Sentinel reporter, used purely for Due/Emit cadence bookkeeping —
	// the same pattern as the single-process checkpointer.
	return &clusterCheckpointer{cadence: obs.NewReporter(func(obs.Progress) {}, interval, o.EveryStates)}
}

func (k *clusterCheckpointer) due(gDistinct int) bool {
	return k.cadence.Due(gDistinct)
}

func (k *clusterCheckpointer) emit(gDistinct int) {
	k.cadence.Emit(obs.Progress{DistinctStates: gDistinct})
}

func clusterPeerDir(dir string, peer int) string {
	return filepath.Join(dir, fmt.Sprintf("peer-%d", peer))
}

func clusterSnapPath(dir string, peer, depth int) string {
	return filepath.Join(clusterPeerDir(dir, peer), fmt.Sprintf("cluster-%06d.snap", depth))
}

// writeClusterSnapshot writes this peer's shard at the given depth:
// header, encoded frontier states, fingerprint set, CRC tail — temp file
// plus rename, so a torn write is never mistaken for a snapshot.
func (c *Checker) writeClusterSnapshot(cl *clusterCtx, res *Result, depth int, frontier []frontierEntry, viols []snapViolation, elapsed time.Duration) error {
	o := c.opts.Checkpoint
	if !o.enabled() {
		return fmt.Errorf("checkpoint requested by coordinator but this peer has no checkpoint dir")
	}
	dir := clusterPeerDir(o.Dir, cl.self)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	hdr := clusterSnapHeader{
		snapshotHeader: buildHeader(o, c, res, depth, elapsed),
		PeerID:         cl.self,
		Peers:          cl.peers,
		Partition:      transport.PartitionVersion,
	}
	hdr.Version = clusterSnapVersion
	hdr.Violations = viols

	tmp, err := os.CreateTemp(dir, "cluster-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := writeClusterSnapshotTo(tmp, cl, c.visited, hdr, frontier); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), clusterSnapPath(o.Dir, cl.self, depth))
}

func writeClusterSnapshotTo(dst io.Writer, cl *clusterCtx, set *fpset.Set, hdr clusterSnapHeader, frontier []frontierEntry) error {
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	w := io.MultiWriter(dst, crc)
	var scratch [8]byte
	if _, err := w.Write([]byte(clusterSnapMagic)); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], clusterSnapVersion)
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(hb)))
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}
	if _, err := w.Write(hb); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(frontier)))
	if _, err := w.Write(scratch[:]); err != nil {
		return err
	}
	var enc []byte
	for i := range frontier {
		enc = cl.codec.AppendState(enc[:0], frontier[i].state)
		binary.LittleEndian.PutUint64(scratch[:], frontier[i].fp)
		if _, err := w.Write(scratch[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(enc)))
		if _, err := w.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
	}
	if _, err := set.WriteTo(w); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	_, err = dst.Write(scratch[:4])
	return err
}

// writeClusterManifest commits the cluster checkpoint at depth. Coordinator
// only, called after a resolve barrier confirmed every peer's snapshot.
func (c *Checker) writeClusterManifest(cl *clusterCtx, depth int) error {
	o := c.opts.Checkpoint
	man := clusterManifest{
		Version:    clusterSnapVersion,
		Label:      o.Label,
		Machine:    c.m.Name(),
		Symmetry:   c.sym != nil,
		InitDigest: c.initDigest(),
		Peers:      cl.peers,
		Partition:  transport.PartitionVersion,
		Depth:      depth,
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(o.Dir, "manifest-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(o.Dir, clusterManifestFile))
}

// pruneClusterSnaps deletes this peer's snapshots below the last committed
// manifest depth. Best-effort: a leftover file is wasted disk, not a
// correctness problem.
func (c *Checker) pruneClusterSnaps(cl *clusterCtx, below int) {
	dir := clusterPeerDir(c.opts.Checkpoint.Dir, cl.self)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		var d int
		if _, err := fmt.Sscanf(e.Name(), "cluster-%06d.snap", &d); err != nil {
			continue
		}
		if d < below {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// loadClusterSnapshot loads this peer's shard at the manifest's committed
// depth, validating the manifest and the snapshot against the running
// configuration. Called before the hello barrier, which then cross-checks
// that every peer resumed from the same depth.
func (c *Checker) loadClusterSnapshot(cl *clusterCtx) (*clusterRestore, error) {
	o := c.opts.Checkpoint
	mpath := filepath.Join(o.Dir, clusterManifestFile)
	mraw, err := os.ReadFile(mpath)
	if err != nil {
		return nil, err
	}
	var man clusterManifest
	if err := json.Unmarshal(mraw, &man); err != nil {
		return nil, fmt.Errorf("%s: %w", mpath, err)
	}
	if man.Version != clusterSnapVersion {
		return nil, fmt.Errorf("%s: manifest version %d, this build reads %d", mpath, man.Version, clusterSnapVersion)
	}
	if man.Machine != c.m.Name() {
		return nil, fmt.Errorf("%s: checkpoint is for machine %q, this run checks %q", mpath, man.Machine, c.m.Name())
	}
	if man.Symmetry != (c.sym != nil) {
		return nil, fmt.Errorf("%s: checkpoint symmetry=%v, this run uses %v", mpath, man.Symmetry, c.sym != nil)
	}
	if o.Label != "" && man.Label != "" && o.Label != man.Label {
		return nil, fmt.Errorf("%s: checkpoint label %q, this run is %q", mpath, man.Label, o.Label)
	}
	if got := c.initDigest(); got != man.InitDigest {
		return nil, fmt.Errorf("%s: initial-state digest mismatch (different config, budget, or defect set)", mpath)
	}
	if man.Peers != cl.peers {
		return nil, fmt.Errorf("%s: checkpoint is for %d peers, this cluster has %d (repartitioning is not supported)", mpath, man.Peers, cl.peers)
	}
	if man.Partition != transport.PartitionVersion {
		return nil, fmt.Errorf("%s: checkpoint partition version %d, this build uses %d", mpath, man.Partition, transport.PartitionVersion)
	}

	path := clusterSnapPath(o.Dir, cl.self, man.Depth)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(clusterSnapMagic)+4+4+8+4 {
		return nil, fmt.Errorf("%s: truncated snapshot (%d bytes)", path, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got := crc32.ChecksumIEEE(body); got != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%s: checksum mismatch (snapshot corrupt)", path)
	}
	r := body
	if string(r[:len(clusterSnapMagic)]) != clusterSnapMagic {
		return nil, fmt.Errorf("%s: not a sandtable cluster checkpoint", path)
	}
	r = r[len(clusterSnapMagic):]
	if v := binary.LittleEndian.Uint32(r[:4]); v != clusterSnapVersion {
		return nil, fmt.Errorf("%s: snapshot version %d, this build reads %d", path, v, clusterSnapVersion)
	}
	r = r[4:]
	hlen := int(binary.LittleEndian.Uint32(r[:4]))
	r = r[4:]
	if hlen > len(r) {
		return nil, fmt.Errorf("%s: truncated header", path)
	}
	var hdr clusterSnapHeader
	if err := json.Unmarshal(r[:hlen], &hdr); err != nil {
		return nil, fmt.Errorf("%s: header: %w", path, err)
	}
	r = r[hlen:]
	if hdr.PeerID != cl.self || hdr.Peers != cl.peers {
		return nil, fmt.Errorf("%s: snapshot is peer %d of %d, this peer is %d of %d", path, hdr.PeerID, hdr.Peers, cl.self, cl.peers)
	}
	if hdr.Partition != transport.PartitionVersion {
		return nil, fmt.Errorf("%s: snapshot partition version %d, this build uses %d", path, hdr.Partition, transport.PartitionVersion)
	}
	if hdr.Depth != man.Depth {
		return nil, fmt.Errorf("%s: snapshot depth %d, manifest committed %d", path, hdr.Depth, man.Depth)
	}
	if hdr.Machine != c.m.Name() || hdr.Symmetry != (c.sym != nil) || hdr.InitDigest != man.InitDigest {
		return nil, fmt.Errorf("%s: snapshot does not match the manifest's model identity", path)
	}

	if len(r) < 8 {
		return nil, fmt.Errorf("%s: truncated frontier", path)
	}
	fcount := binary.LittleEndian.Uint64(r[:8])
	r = r[8:]
	frontier := make([]frontierEntry, 0, fcount)
	for i := uint64(0); i < fcount; i++ {
		if len(r) < 12 {
			return nil, fmt.Errorf("%s: truncated frontier entry %d", path, i)
		}
		f := binary.LittleEndian.Uint64(r[:8])
		elen := int(binary.LittleEndian.Uint32(r[8:12]))
		r = r[12:]
		if elen > len(r) {
			return nil, fmt.Errorf("%s: truncated state for %#x", path, f)
		}
		st, rest, err := cl.codec.DecodeState(r[:elen])
		if err != nil {
			return nil, fmt.Errorf("%s: decode state %#x: %w", path, f, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%s: state %#x: %d trailing bytes", path, f, len(rest))
		}
		r = r[elen:]
		frontier = append(frontier, frontierEntry{state: st, fp: f})
	}
	set, err := fpset.Read(bytes.NewReader(r), c.opts.FPSetShards)
	if err != nil {
		return nil, fmt.Errorf("%s: fingerprint set: %w", path, err)
	}
	c.visited = set
	return &clusterRestore{header: hdr, frontier: frontier}, nil
}
