package explorer

import (
	"bytes"
	"strconv"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// TestBFSRecordsDedupAndQueueHighWater checks the new Result
// instrumentation: dedup hits plus distinct states must account for every
// generated transition, and the frontier high-water mark must be positive
// and at least the final level's size.
func TestBFSRecordsDedupAndQueueHighWater(t *testing.T) {
	res := NewChecker(newToy(4, true), Options{}).Run()
	if !res.Exhausted {
		t.Fatalf("space not exhausted: %s", res.StopReason)
	}
	if res.DedupHits == 0 {
		t.Fatal("expected dedup hits in a converging state graph")
	}
	// Every generated successor is either newly discovered or a dedup hit
	// (init states are discovered outside the transition count).
	inits := len(newToy(4, true).Init())
	if res.DedupHits+int64(res.DistinctStates-inits) != res.Transitions {
		t.Fatalf("dedup accounting: %d hits + %d new != %d transitions",
			res.DedupHits, res.DistinctStates-inits, res.Transitions)
	}
	if res.MaxQueueLen <= 0 || res.MaxQueueLen > res.DistinctStates {
		t.Fatalf("implausible MaxQueueLen %d (distinct %d)", res.MaxQueueLen, res.DistinctStates)
	}
	if res.DedupRatio() <= 0 || res.DedupRatio() >= 1 {
		t.Fatalf("dedup ratio %v out of range", res.DedupRatio())
	}
}

// TestBFSProgressAndMetrics runs with a per-state progress cadence and a
// registry: the callback must fire, the final report must carry the run's
// totals, and the registry must expose the acceptance-criteria keys.
func TestBFSProgressAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var reports []obs.Progress
	opts := Options{
		Progress:       func(p obs.Progress) { reports = append(reports, p) },
		ProgressStates: 1, // fire at every block boundary
		Metrics:        reg,
	}
	res := NewChecker(newToy(4, false), opts).Run()

	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	final := reports[len(reports)-1]
	if !final.Final {
		t.Fatal("last report not marked final")
	}
	if final.DistinctStates != res.DistinctStates || final.Transitions != res.Transitions || final.DedupHits != res.DedupHits {
		t.Fatalf("final report %+v disagrees with result %+v", final, res)
	}

	snap := reg.Snapshot()
	for _, key := range []string{"distinct_states", "transitions", "dedup_hits", "max_queue_len", "queue_len", "depth"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("registry snapshot missing %q: %v", key, snap)
		}
	}
	if snap["distinct_states"].(int64) != int64(res.DistinctStates) {
		t.Fatalf("distinct_states = %v, want %d", snap["distinct_states"], res.DistinctStates)
	}
	if snap["max_queue_len"].(int64) != int64(res.MaxQueueLen) {
		t.Fatalf("max_queue_len = %v, want %d", snap["max_queue_len"], res.MaxQueueLen)
	}
}

// TestBFSTracerEmitsLevels checks the spec-level JSONL trace: one "level"
// event per explored depth, with a distinct-state count that matches the
// final result.
func TestBFSTracerEmitsLevels(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res := NewChecker(newToy(3, true), Options{Tracer: tr}).Run()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no level events")
	}
	last := evs[len(evs)-1]
	if last.Layer != "spec" || last.Kind != "level" {
		t.Fatalf("unexpected event: %+v", last)
	}
	if got, _ := strconv.Atoi(last.Detail["distinct"]); got != res.DistinctStates {
		t.Fatalf("last level distinct = %s, want %d", last.Detail["distinct"], res.DistinctStates)
	}
}

// TestWalksProgressAndMetrics drives simulation mode with a walk-count
// cadence and a registry.
func TestWalksProgressAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	var reports []obs.Progress
	sim := NewSimulator(newToy(3, false), SimOptions{
		Seed:           1,
		Progress:       func(p obs.Progress) { reports = append(reports, p) },
		ProgressStates: 1,
		Metrics:        reg,
		Tracer:         tr,
	})
	walks := sim.Walks(10)
	if len(walks) != 10 {
		t.Fatalf("walks = %d", len(walks))
	}
	if len(reports) == 0 || !reports[len(reports)-1].Final {
		t.Fatal("walk progress missing or unterminated")
	}
	snap := reg.Snapshot()
	if snap["walks"].(int64) != 10 {
		t.Fatalf("walks counter = %v", snap["walks"])
	}
	if snap["walk_steps"].(int64) <= 0 {
		t.Fatalf("walk_steps = %v", snap["walk_steps"])
	}
	if snap["walk_depth.count"].(int64) != 10 {
		t.Fatalf("walk_depth histogram count = %v", snap["walk_depth.count"])
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 {
		t.Fatalf("walk events = %d, want 10", len(evs))
	}
}

// TestStatelessProgress checks the stateless checker reports visit counts.
func TestStatelessProgress(t *testing.T) {
	reg := obs.NewRegistry()
	var reports []obs.Progress
	res := StatelessSearch(newToy(4, false), StatelessOptions{
		Progress:       func(p obs.Progress) { reports = append(reports, p) },
		ProgressStates: 1,
		Metrics:        reg,
	})
	if len(reports) == 0 || !reports[len(reports)-1].Final {
		t.Fatal("no final stateless progress report")
	}
	if got := reports[len(reports)-1].Transitions; got != res.Visits {
		t.Fatalf("final report visits = %d, want %d", got, res.Visits)
	}
	if reg.Gauge("stateless_visits").Value() != res.Visits {
		t.Fatalf("stateless_visits gauge = %d, want %d", reg.Gauge("stateless_visits").Value(), res.Visits)
	}
}
