package explorer

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// TestBFSCoverProfile runs the profiler over the exactly-analysable toy
// model and cross-checks the per-action and per-level totals against the
// run counters they decompose.
func TestBFSCoverProfile(t *testing.T) {
	res := NewChecker(newToy(4, false), Options{Cover: true}).Run()
	if res.Cover == nil {
		t.Fatal("Cover option set but Result.Cover is nil")
	}
	cover := res.Cover
	if cover.Mode != "bfs" {
		t.Fatalf("mode = %q", cover.Mode)
	}

	// The declared vocabulary comes from spec.ActionLister; the non-atomic
	// model fires both of its actions.
	if got := cover.ActionNames(); !reflect.DeepEqual(got, []string{"Read", "Write"}) {
		t.Fatalf("action names = %v", got)
	}
	if nf := cover.NeverFired(); nf != nil {
		t.Fatalf("never-fired = %v, want none", nf)
	}

	// Every generated transition is attributed to exactly one action, and
	// every fresh state beyond the inits to exactly one firing.
	if got := cover.TotalFired(); got != res.Transitions {
		t.Fatalf("sum of action fire counts = %d, want %d transitions", got, res.Transitions)
	}
	var fresh int64
	for _, a := range cover.Actions {
		fresh += a.Fresh
	}
	inits := int64(len(newToy(4, false).Init()))
	if fresh != int64(res.DistinctStates)-inits {
		t.Fatalf("sum of action fresh counts = %d, want %d", fresh, int64(res.DistinctStates)-inits)
	}

	// Per-level profile: level 0 is the init frontier; the remaining levels
	// decompose the run totals exactly, and every level's frontier is the
	// previous level's fresh count (level-synchronous BFS). An exhausted run
	// ends with one extra all-duplicate level past MaxDepth — the level that
	// proved the frontier empty.
	if len(cover.Levels) != res.MaxDepth+2 {
		t.Fatalf("levels = %d, want %d", len(cover.Levels), res.MaxDepth+2)
	}
	if last := cover.Levels[len(cover.Levels)-1]; last.Fresh != 0 {
		t.Fatalf("closing level = %+v, want no fresh states", last)
	}
	if lv0 := cover.Levels[0]; lv0.Depth != 0 || lv0.Fresh != int(inits) {
		t.Fatalf("level 0 = %+v", lv0)
	}
	var trans, dedup int64
	var levelFresh int
	for i, lv := range cover.Levels[1:] {
		if lv.Depth != i+1 {
			t.Fatalf("level %d has depth %d", i+1, lv.Depth)
		}
		if lv.Frontier != cover.Levels[i].Fresh {
			t.Fatalf("level %d frontier %d != level %d fresh %d", lv.Depth, lv.Frontier, i, cover.Levels[i].Fresh)
		}
		trans += lv.Transitions
		dedup += lv.Dedup
		levelFresh += lv.Fresh
	}
	if trans != res.Transitions || dedup != res.DedupHits {
		t.Fatalf("level sums trans=%d dedup=%d, want %d/%d", trans, dedup, res.Transitions, res.DedupHits)
	}
	if int64(levelFresh) != int64(res.DistinctStates)-inits {
		t.Fatalf("level fresh sum = %d, want %d", levelFresh, int64(res.DistinctStates)-inits)
	}
	// The toy model violates at depth 4: the profile must place the
	// violations on the right levels (StopAtFirstViolation off explores all).
	var viols int
	for _, lv := range cover.Levels {
		viols += lv.Violations
	}
	if viols != len(res.Violations) {
		t.Fatalf("level violations sum = %d, want %d", viols, len(res.Violations))
	}
}

// TestBFSCoverDeterministicAcrossWorkers: merge-at-barrier collection must
// produce an identical profile whatever the worker count.
func TestBFSCoverDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *obs.Cover {
		res := NewChecker(newToy(4, false), Options{Cover: true, Workers: workers}).Run()
		return res.Cover
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		c := run(workers)
		if !reflect.DeepEqual(c.Actions, base.Actions) {
			t.Fatalf("workers=%d action profile diverged:\n%+v\n%+v", workers, c.Actions, base.Actions)
		}
		if !reflect.DeepEqual(c.Levels, base.Levels) {
			t.Fatalf("workers=%d level profile diverged", workers)
		}
		if c.SymmetryHits != base.SymmetryHits {
			t.Fatalf("workers=%d symmetry hits %d != %d", workers, c.SymmetryHits, base.SymmetryHits)
		}
	}
}

// TestBFSCoverSymmetryHits: with symmetry on, the fully symmetric toy model
// must collapse many successors onto canonical representatives.
func TestBFSCoverSymmetryHits(t *testing.T) {
	plain := NewChecker(newToy(4, true), Options{Cover: true}).Run()
	if plain.Cover.SymmetryHits != 0 {
		t.Fatalf("symmetry off but %d hits recorded", plain.Cover.SymmetryHits)
	}
	sym := NewChecker(newToy(4, true), Options{Cover: true, Symmetry: true}).Run()
	if sym.Cover.SymmetryHits == 0 {
		t.Fatal("symmetry on but no hits recorded in a fully symmetric model")
	}
	// The atomic model fires only IncAtomic; Read/Write are not declared.
	if nf := sym.Cover.NeverFired(); nf != nil {
		t.Fatalf("never-fired = %v", nf)
	}
}

// TestBFSCoverZeroYieldOnMaxDepth: cutting the search short leaves the
// frontier's actions with fresh states, so a fully explored converging level
// shows up through dedup, not zero-yield flags on unrelated actions.
func TestBFSCoverNeverFiredOnAtomicVocabulary(t *testing.T) {
	// Force the non-atomic vocabulary but stop before Write can ever fire:
	// MaxDepth 1 only fires Read from the all-idle init state.
	res := NewChecker(newToy(3, false), Options{Cover: true, MaxDepth: 1}).Run()
	if nf := res.Cover.NeverFired(); !reflect.DeepEqual(nf, []string{"Write"}) {
		t.Fatalf("never-fired = %v, want [Write]", nf)
	}
}

// TestSimulateCoverProfile: the simulator aggregates a profile across walks
// with fresh-state attribution when TrackDistinct is on.
func TestSimulateCoverProfile(t *testing.T) {
	sim := NewSimulator(newToy(3, false), SimOptions{Seed: 7, Cover: true, TrackDistinct: true})
	walks := sim.Walks(20)
	cover := sim.Cover()
	if cover == nil || cover.Mode != "simulate" {
		t.Fatalf("cover = %+v", cover)
	}
	var steps int64
	for _, w := range walks {
		steps += int64(w.Stats.Depth)
	}
	if got := cover.TotalFired(); got != steps {
		t.Fatalf("fired = %d, want %d walked steps", got, steps)
	}
	var fresh int64
	for _, a := range cover.Actions {
		fresh += a.Fresh
	}
	// Init states insert into the distinct set outside any action, so the
	// action-attributed fresh count undercounts Distinct by those inits.
	if fresh <= 0 || fresh > sim.Distinct() {
		t.Fatalf("fresh = %d, distinct = %d", fresh, sim.Distinct())
	}
	if nf := cover.NeverFired(); nf != nil {
		t.Fatalf("never-fired = %v after 20 walks", nf)
	}
}

// TestStatelessTracerSummary: the ablation emits its closing summary event.
func TestStatelessTracerSummary(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res := StatelessSearch(newToy(3, true), StatelessOptions{MaxDepth: 6, TrackDistinct: true, Tracer: tr})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != "stateless" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Detail["visits"] == "" || evs[0].Detail["visits"] == "0" {
		t.Fatalf("summary detail = %v (visits %d)", evs[0].Detail, res.Visits)
	}
}
