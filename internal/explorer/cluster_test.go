package explorer

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/transport"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// The distributed explorer's headline property: a cluster run is
// byte-identical to a single-process run — counters, violations, coverage
// profile, counterexample traces — at every peer count and worker count.
// These tests check it on real raftbase models, in both the exhaustive and
// the violation-stop regime, plus the kill-one-peer-and-resume path.

// eqMachine is a fully-exhaustible gosyncobj model: 1127 distinct states
// over 15 levels, no violations.
func eqMachine() *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System: "gosyncobj", Profile: raftbase.GoSyncObj, Transport: vnet.TCP,
		Config: spec.Config{Name: "n2w1", Nodes: 2, Workload: []string{"v1"}},
		Budget: spec.Budget{Name: "eq", MaxTimeouts: 3, MaxRequests: 2, MaxBuffer: 3},
	})
}

// bugMachine is a seeded-defect craft model that violates an invariant at
// depth 7 (18 violating states at that level).
func bugMachine() *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System: "craft", Profile: raftbase.CRaft, Transport: vnet.UDP, Snapshots: true,
		Bugs:   bugdb.VerificationBugs("craft"),
		Config: spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}},
		Budget: spec.Budget{Name: "eq", MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 2, MaxCompactions: 1},
	})
}

// Cover detail level for clusterSig. coverFull includes the per-action
// Fresh/LastFreshDepth split, which is canonical for cluster runs (the
// serial merge attributes freshness by min-parent, generation order — the
// W=1 single-process order) but schedule-dependent for single-process W>1
// runs when the same state is reachable within one level through different
// actions: whichever worker inserts first gets the credit. Per-level Fresh
// totals and everything else are worker-count deterministic everywhere, so
// W>1 single-process references compare with coverTotals.
const (
	coverNone = iota
	coverTotals
	coverFull
)

// clusterSig canonicalises the equivalence-relevant part of a Result.
// Excluded by design: Duration (wall clock), MaxQueueLen (summed per-peer
// high-water marks), per-level FpsetProbes and Checkpoint flags (structural,
// not behavioural), ResumedAtDepth.
func clusterSig(res *Result, coverMode int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "distinct=%d trans=%d dedup=%d maxdepth=%d stop=%s exhausted=%v goal=%v\n",
		res.DistinctStates, res.Transitions, res.DedupHits, res.MaxDepth,
		res.StopReason, res.Exhausted, res.GoalReached)
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "viol d=%d fp=%#x %s: %v\n", v.Depth, v.fp, v.Invariant, v.Err)
	}
	if coverMode != coverNone && res.Cover != nil {
		fmt.Fprintf(&b, "symhits=%d\n", res.Cover.SymmetryHits)
		for _, name := range res.Cover.ActionNames() {
			a := res.Cover.Actions[name]
			if a == nil {
				fmt.Fprintf(&b, "action %s never\n", name)
				continue
			}
			fmt.Fprintf(&b, "action %s fired=%d first=%d", name, a.Fired, a.FirstDepth)
			if coverMode == coverFull {
				fmt.Fprintf(&b, " fresh=%d lastfresh=%d", a.Fresh, a.LastFreshDepth)
			}
			b.WriteString("\n")
		}
		for _, l := range res.Cover.Levels {
			fmt.Fprintf(&b, "level %d frontier=%d fresh=%d trans=%d dedup=%d viols=%d\n",
				l.Depth, l.Frontier, l.Fresh, l.Transitions, l.Dedup, l.Violations)
		}
	}
	return b.String()
}

// traceSig canonicalises the reconstructed counterexample traces.
func traceSig(res *Result) string {
	var b strings.Builder
	for _, v := range res.Violations {
		if v.Trace == nil {
			b.WriteString("trace: nil\n")
			continue
		}
		b.WriteString("trace:")
		for _, s := range v.Trace.Steps {
			fmt.Fprintf(&b, " %s/%d@%#x", s.Event.Action, s.Event.Node, s.Fingerprint)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// runClusterPeers runs one checker per peer over an in-process mesh (real
// wire encoding, separate machine instances) and returns the per-peer
// results in peer order. wrap, when non-nil, can interpose on a peer's Conn
// (failure injection).
func runClusterPeers(peers int, opts func(i int) Options, wrap func(i int, c transport.Conn) transport.Conn) []*Result {
	conns := transport.NewMesh(peers)
	results := make([]*Result, peers)
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := conns[i]
			if wrap != nil {
				conn = wrap(i, conn)
			}
			o := opts(i)
			o.Peer = &PeerOptions{Conn: conn}
			results[i] = NewChecker(eqOrBug(o), o).Run()
		}(i)
	}
	wg.Wait()
	return results
}

// eqOrBug picks the machine for the run: the options carry a marker in
// Checkpoint.Label ("bug" → bugMachine) so runClusterPeers stays generic.
func eqOrBug(o Options) spec.Machine {
	if strings.HasPrefix(o.Checkpoint.Label, "bug") {
		return bugMachine()
	}
	return eqMachine()
}

func TestClusterEquivalenceExhaustive(t *testing.T) {
	// Canonical reference: single-process W=1. W>1 single-process runs must
	// match it on every worker-count-deterministic dimension (coverTotals).
	refRes := NewChecker(eqMachine(), Options{Workers: 1, Cover: true}).Run()
	if refRes.Err != nil {
		t.Fatalf("single-process w=1: %v", refRes.Err)
	}
	ref, refTotals := clusterSig(refRes, coverFull), clusterSig(refRes, coverTotals)
	if !strings.Contains(ref, "stop=exhausted") {
		t.Fatalf("reference run not exhaustive:\n%s", ref)
	}
	for _, w := range []int{2, 4} {
		res := NewChecker(eqMachine(), Options{Workers: w, Cover: true}).Run()
		if sig := clusterSig(res, coverTotals); sig != refTotals {
			t.Fatalf("single-process signature differs at w=%d:\n%s\nvs\n%s", w, sig, refTotals)
		}
	}
	// Cluster runs reproduce the full canonical profile — including the
	// per-action fresh split — at every peer count and worker count.
	for _, peers := range []int{1, 2, 3} {
		for _, w := range []int{1, 2} {
			results := runClusterPeers(peers, func(int) Options {
				return Options{Workers: w, Cover: true, Checkpoint: CheckpointOptions{Label: "eq"}}
			}, nil)
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("p=%d w=%d peer %d: %v (stop=%s)", peers, w, i, res.Err, res.StopReason)
				}
				if sig := clusterSig(res, coverFull); sig != ref {
					t.Errorf("p=%d w=%d peer %d signature differs:\n%s\nwant:\n%s", peers, w, i, sig, ref)
				}
			}
		}
	}
}

func TestClusterEquivalenceViolation(t *testing.T) {
	ref := NewChecker(bugMachine(), Options{Workers: 1, Cover: true, StopAtFirstViolation: true, Checkpoint: CheckpointOptions{Label: "bug"}}).Run()
	if ref.StopReason != "violation" || len(ref.Violations) == 0 {
		t.Fatalf("reference run found no violation: stop=%s", ref.StopReason)
	}
	refSig, refTraces := clusterSig(ref, coverFull), traceSig(ref)
	if strings.Contains(refTraces, "nil") {
		t.Fatalf("reference traces incomplete:\n%s", refTraces)
	}
	// bugMachine reaches the same state through different actions within one
	// level, so a W=2 single-process run matches only up to the per-action
	// fresh attribution race (see coverTotals).
	w2 := NewChecker(bugMachine(), Options{Workers: 2, Cover: true, StopAtFirstViolation: true, Checkpoint: CheckpointOptions{Label: "bug"}}).Run()
	if sig := clusterSig(w2, coverTotals); sig != clusterSig(ref, coverTotals) {
		t.Fatalf("single-process w=2 signature differs:\n%s\nvs\n%s", sig, clusterSig(ref, coverTotals))
	}
	for _, peers := range []int{2, 3} {
		results := runClusterPeers(peers, func(int) Options {
			return Options{Workers: 2, Cover: true, StopAtFirstViolation: true, Checkpoint: CheckpointOptions{Label: "bug"}}
		}, nil)
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("p=%d peer %d: %v", peers, i, res.Err)
			}
			if sig := clusterSig(res, coverFull); sig != refSig {
				t.Errorf("p=%d peer %d signature differs:\n%s\nwant:\n%s", peers, i, sig, refSig)
			}
		}
		// Only the coordinator reconstructs traces (it probes the other
		// shards for parent edges); they must match single-process exactly.
		if got := traceSig(results[0]); got != refTraces {
			t.Errorf("p=%d coordinator traces differ:\n%s\nwant:\n%s", peers, got, refTraces)
		}
	}
}

// flakyConn fails every Exchange at or past failAt and closes the underlying
// mesh endpoint, which propagates a transport error to every other peer
// blocked on the barrier — the closest in-process analogue of a peer crash.
type flakyConn struct {
	transport.Conn
	failAt uint64
}

func (f *flakyConn) Exchange(tag uint64, blocks [][]byte, summary []byte) ([][]byte, [][]byte, error) {
	if tag >= f.failAt {
		f.Conn.Close()
		return nil, nil, errors.New("injected peer failure")
	}
	return f.Conn.Exchange(tag, blocks, summary)
}

func TestClusterKillAndResume(t *testing.T) {
	ref := NewChecker(eqMachine(), Options{Workers: 2}).Run()
	refSig := clusterSig(ref, coverNone)

	dir := t.TempDir()
	// Leg 1: 3-peer run checkpointing every level; peer 1 dies at barrier
	// tag 12 (hello + depth-0 resolve + 5 levels in).
	results := runClusterPeers(3, func(int) Options {
		return Options{Workers: 2, Checkpoint: CheckpointOptions{Dir: dir, EveryStates: 1, Label: "eq"}}
	}, func(i int, c transport.Conn) transport.Conn {
		if i == 1 {
			return &flakyConn{Conn: c, failAt: 12}
		}
		return c
	})
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("peer %d survived the injected crash (stop=%s)", i, res.StopReason)
		}
		if res.StopReason != "transport-error" {
			t.Errorf("peer %d stop=%s, want transport-error (%v)", i, res.StopReason, res.Err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, clusterManifestFile)); err != nil {
		t.Fatalf("no committed manifest after crash: %v", err)
	}

	// Leg 2: a fresh 3-peer cluster resumes from the manifest and must land
	// on the reference result. Coverage is excluded: a resumed session
	// profiles only its own levels by design.
	results = runClusterPeers(3, func(int) Options {
		return Options{Workers: 2, Checkpoint: CheckpointOptions{Dir: dir, EveryStates: 1, Label: "eq", Resume: true}}
	}, nil)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("resumed peer %d: %v (stop=%s)", i, res.Err, res.StopReason)
		}
		if !res.Resumed {
			t.Errorf("peer %d did not resume from the manifest", i)
		}
		if sig := clusterSig(res, coverNone); sig != refSig {
			t.Errorf("resumed peer %d signature differs:\n%s\nwant:\n%s", i, sig, refSig)
		}
	}
}

// noCodec strips every optional capability off a machine, leaving the bare
// spec.Machine interface.
type noCodec struct{ spec.Machine }

func TestClusterConfigErrors(t *testing.T) {
	// A machine without a StateCodec cannot join a cluster.
	res := NewChecker(noCodec{newToy(3, false)}, Options{Peer: &PeerOptions{Conn: transport.NewMesh(1)[0]}}).Run()
	if res.StopReason != "config-error" || res.Err == nil {
		t.Fatalf("toy machine: stop=%s err=%v, want config-error", res.StopReason, res.Err)
	}
	// MemBudget is incompatible with distributed runs.
	res = NewChecker(eqMachine(), Options{MemBudget: 1 << 20, Peer: &PeerOptions{Conn: transport.NewMesh(1)[0]}}).Run()
	if res.StopReason != "config-error" || res.Err == nil {
		t.Fatalf("mem-budget: stop=%s err=%v, want config-error", res.StopReason, res.Err)
	}
}
