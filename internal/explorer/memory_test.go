package explorer

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"64KiB", 64 << 10, false},
		{"64kb", 64 << 10, false},
		{"2MiB", 2 << 20, false},
		{"1GiB", 1 << 30, false},
		{"3TB", 3 << 40, false},
		{"512B", 512, false},
		{" 7 MiB ", 7 << 20, false},
		{"", 0, true},
		{"-1", 0, true},
		{"abc", 0, true},
		{"12XiB", 0, true},
		// Overflow: n * mult must not wrap. 8EiB-1 is the largest
		// representable size; one unit past MaxInt64/mult must be rejected,
		// the exact quotient still accepted.
		{"9000000000GiB", 0, true},
		{"9007199254740992KiB", 0, true},             // MaxInt64/1024 + 1
		{"9007199254740991KiB", 1<<63 - 1024, false}, // MaxInt64/1024, exact
		{"8796093022208MiB", 0, true},                // MaxInt64/2^20 + 1
		{"9223372036854775807", 1<<63 - 1, false},    // MaxInt64 plain bytes
		{"9223372036854775807B", 1<<63 - 1, false},   // mult==1 never overflows
		{"18446744073709551616", 0, true},            // past uint64 too
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseByteSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

// coverSignature renders a coverage profile for equality comparison across
// the spill boundary. Fingerprint-set probe counts are zeroed first: spilling
// rebuilds hash tables at different sizes, so probe counts (a cost metric,
// not a result) legitimately differ between spilled and in-RAM runs. With
// workers > 1, per-action fresh attribution is zeroed too: when two actions
// produce the same fingerprint at the same level, which one gets the fresh
// credit is decided by a concurrent insert race, so attribution is canonical
// only for single-worker (and cluster) runs — per-level fresh totals and
// per-action fired counts stay deterministic and are still compared.
func coverSignature(t *testing.T, cover *obs.Cover, workers int) string {
	t.Helper()
	cp := *cover
	cp.Levels = append([]obs.LevelStats(nil), cover.Levels...)
	for i := range cp.Levels {
		cp.Levels[i].FpsetProbes = 0
	}
	if workers > 1 {
		cp.Actions = make(map[string]*obs.ActionStats, len(cover.Actions))
		for name, a := range cover.Actions {
			ac := *a
			ac.Fresh, ac.LastFreshDepth = 0, 0
			cp.Actions[name] = &ac
		}
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMemBudgetEquivalence is the tentpole guarantee: a run under a memory
// budget tiny enough to force both fingerprint-set and frontier spilling
// reports byte-identical results — every counter, every violation with its
// reconstructed trace, and the full coverage profile (modulo probe counts) —
// as the unbudgeted in-RAM run, at every worker count.
func TestMemBudgetEquivalence(t *testing.T) {
	base := Options{RecordVars: true, Cover: true}
	ref := NewChecker(newToy(6, false), base).Run()
	if ref.Err != nil || !ref.Exhausted {
		t.Fatalf("reference run: err=%v stop=%s", ref.Err, ref.StopReason)
	}
	refSig := resultSignature(t, ref)

	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		opts := base
		opts.Workers = workers
		opts.MemBudget = 64 << 10 // far below the working set
		opts.SpillDir = t.TempDir()
		opts.Metrics = reg
		res := NewChecker(newToy(6, false), opts).Run()
		if res.Err != nil {
			t.Fatalf("workers=%d budgeted run failed: %v", workers, res.Err)
		}
		if got := resultSignature(t, res); got != refSig {
			t.Errorf("workers=%d budgeted result differs from in-RAM run:\n--- budgeted\n%s--- in-RAM\n%s", workers, got, refSig)
		}
		refCover := coverSignature(t, ref.Cover, workers)
		if got := coverSignature(t, res.Cover, workers); got != refCover {
			t.Errorf("workers=%d budgeted coverage differs from in-RAM run:\ngot  %s\nwant %s", workers, got, refCover)
		}
		snap := reg.Snapshot()
		if got, _ := snap["fpset.spilled_entries"].(int64); got == 0 {
			t.Errorf("workers=%d: fingerprint set never spilled (budget did not engage): %v", workers, snap)
		}
		if got, _ := snap["explorer.frontier_spilled_entries"].(int64); got == 0 {
			t.Errorf("workers=%d: frontier never spilled (budget did not engage)", workers)
		}
		if _, err := os.Stat(opts.SpillDir); err != nil {
			t.Errorf("workers=%d: spill base dir vanished: %v", workers, err)
		}
		ents, err := os.ReadDir(opts.SpillDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Errorf("workers=%d: spill scratch not cleaned up: %v", workers, ents)
		}
	}
}

// TestDeltaCheckpointChain asserts the incremental path engages: with a
// per-level cadence the first checkpoint is a full snapshot and later ones
// append delta blocks, and a resume over base+deltas matches the
// uninterrupted run exactly.
func TestDeltaCheckpointChain(t *testing.T) {
	full := NewChecker(newToy(3, true), Options{}).Run()

	dir := t.TempDir()
	reg := obs.NewRegistry()
	res := NewChecker(newToy(3, true), Options{
		MaxDepth:   4,
		Metrics:    reg,
		Checkpoint: CheckpointOptions{Dir: dir, EveryStates: 1},
	}).Run()
	if res.Err != nil || res.Checkpoints < 2 {
		t.Fatalf("interrupted run: err=%v checkpoints=%d (need >=2 for a chain)", res.Err, res.Checkpoints)
	}
	snap := reg.Snapshot()
	deltas, _ := snap["checkpoint.deltas"].(int64)
	if deltas == 0 {
		t.Fatalf("no delta blocks written (all checkpoints were full rewrites): %v", snap)
	}
	if _, err := os.Stat(filepath.Join(dir, deltaFile)); err != nil {
		t.Fatalf("delta log missing: %v", err)
	}
	cb, err := os.ReadFile(filepath.Join(dir, commitFile))
	if err != nil {
		t.Fatalf("commit record missing: %v", err)
	}
	var rec commitRecord
	if err := json.Unmarshal(cb, &rec); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, deltaFile)); err != nil || st.Size() != rec.DeltaBytes {
		t.Errorf("commit names %d delta bytes, log holds %d", rec.DeltaBytes, st.Size())
	}

	resumed := NewChecker(newToy(3, true), Options{
		Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
	}).Run()
	if resumed.Err != nil {
		t.Fatalf("resume over delta chain failed: %v", resumed.Err)
	}
	if resumed.DistinctStates != full.DistinctStates || !resumed.Exhausted {
		t.Errorf("resumed distinct=%d exhausted=%v, want %d and true",
			resumed.DistinctStates, resumed.Exhausted, full.DistinctStates)
	}
}

// deltaChainDir writes a base snapshot plus at least one committed delta
// block into a fresh directory, returning it.
func deltaChainDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	res := NewChecker(newToy(3, true), Options{
		MaxDepth:   4,
		Checkpoint: CheckpointOptions{Dir: dir, EveryStates: 1},
	}).Run()
	if res.Err != nil {
		t.Fatalf("chain-writing run failed: %v", res.Err)
	}
	if _, err := os.Stat(filepath.Join(dir, commitFile)); err != nil {
		t.Fatalf("no committed chain: %v", err)
	}
	return dir
}

// resumeDistinct resumes from dir and returns the final distinct-state count,
// failing the test on any resume error.
func resumeDistinct(t *testing.T, dir string) int {
	t.Helper()
	res := NewChecker(newToy(3, true), Options{
		Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
	}).Run()
	if res.Err != nil {
		t.Fatalf("resume failed: %v", res.Err)
	}
	if !res.Exhausted {
		t.Fatalf("resumed run did not exhaust: %s", res.StopReason)
	}
	return res.DistinctStates
}

// TestDeltaCrashWindows drives resume through each crash window of the
// commit protocol: a torn tail beyond the committed length (crash
// mid-append), a delta log with no commit record (crash before the first
// commit), and a chain whose commit names a different base (crash during
// compaction). All three must resume cleanly; committed-but-corrupt bytes
// must fail loudly.
func TestDeltaCrashWindows(t *testing.T) {
	want := NewChecker(newToy(3, true), Options{}).Run().DistinctStates

	t.Run("torn-tail", func(t *testing.T) {
		dir := deltaChainDir(t)
		f, err := os.OpenFile(filepath.Join(dir, deltaFile), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Half a block header: magic then garbage, cut mid-payload.
		if _, err := f.Write(append([]byte(deltaMagic), 0xde, 0xad, 0xbe)); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if got := resumeDistinct(t, dir); got != want {
			t.Errorf("distinct after torn-tail resume = %d, want %d", got, want)
		}
	})

	t.Run("uncommitted-log", func(t *testing.T) {
		dir := deltaChainDir(t)
		if err := os.Remove(filepath.Join(dir, commitFile)); err != nil {
			t.Fatal(err)
		}
		// Resume must fall back to the base snapshot alone and still converge.
		if got := resumeDistinct(t, dir); got != want {
			t.Errorf("distinct after uncommitted-log resume = %d, want %d", got, want)
		}
		if _, err := os.Stat(filepath.Join(dir, deltaFile)); !os.IsNotExist(err) {
			t.Errorf("uncommitted delta log not cleared: %v", err)
		}
	})

	t.Run("stale-base", func(t *testing.T) {
		dir := deltaChainDir(t)
		cb, err := os.ReadFile(filepath.Join(dir, commitFile))
		if err != nil {
			t.Fatal(err)
		}
		var rec commitRecord
		if err := json.Unmarshal(cb, &rec); err != nil {
			t.Fatal(err)
		}
		rec.BaseCRC ^= 0xffffffff
		out, _ := json.Marshal(rec)
		if err := os.WriteFile(filepath.Join(dir, commitFile), out, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := resumeDistinct(t, dir); got != want {
			t.Errorf("distinct after stale-base resume = %d, want %d", got, want)
		}
		if _, err := os.Stat(filepath.Join(dir, commitFile)); !os.IsNotExist(err) {
			t.Errorf("stale commit record not cleared: %v", err)
		}
	})

	t.Run("committed-corruption-fails-loudly", func(t *testing.T) {
		dir := deltaChainDir(t)
		raw, err := os.ReadFile(filepath.Join(dir, deltaFile))
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, deltaFile), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		res := NewChecker(newToy(3, true), Options{
			Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
		}).Run()
		if res.Err == nil {
			t.Fatal("resume over corrupt committed delta succeeded, want loud failure")
		}
		if res.StopReason != "checkpoint-error" {
			t.Errorf("stop reason %q, want checkpoint-error", res.StopReason)
		}
	})
}

// faultWriter writes a short prefix then fails — the test's ENOSPC: a
// partial write lands on disk before the error surfaces.
type faultWriter struct {
	w    io.Writer
	left int
}

var errDiskFull = errors.New("injected: no space left on device")

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.left <= 0 {
		return 0, errDiskFull
	}
	if len(p) > fw.left {
		n, _ := fw.w.Write(p[:fw.left])
		fw.left = 0
		return n, errDiskFull
	}
	fw.left -= len(p)
	return fw.w.Write(p)
}

// TestCheckpointENOSPC injects a write failure partway through the run's
// checkpoint sequence: the run must finish normally, the failure must
// surface as a checkpoint.errors tick plus a reporter warning, and the last
// successfully committed checkpoint must still resume.
func TestCheckpointENOSPC(t *testing.T) {
	// Let the first checkpoint (full base snapshot) through intact, then
	// every later checkpoint write dies after a 16-byte partial write.
	wraps := 0
	orig := ckWriterWrap
	ckWriterWrap = func(w io.Writer) io.Writer {
		wraps++
		if wraps == 1 {
			return w
		}
		return &faultWriter{w: w, left: 16}
	}
	defer func() { ckWriterWrap = orig }()

	var warnings []string
	reg := obs.NewRegistry()
	dir := t.TempDir()
	res := NewChecker(newToy(3, true), Options{
		MaxDepth: 4,
		Metrics:  reg,
		Progress: func(p obs.Progress) {
			if p.Warning != "" {
				warnings = append(warnings, p.Warning)
			}
		},
		ProgressStates: 1,
		Checkpoint:     CheckpointOptions{Dir: dir, EveryStates: 1},
	}).Run()
	if res.Err != nil {
		t.Fatalf("run aborted on checkpoint failure, must degrade gracefully: %v", res.Err)
	}
	if res.Checkpoints == 0 {
		t.Fatal("not even the first checkpoint landed; fault injection budget too small")
	}
	if got, _ := reg.Snapshot()["checkpoint.errors"].(int64); got == 0 {
		t.Error("no checkpoint.errors recorded despite injected write failures")
	}
	found := false
	for _, w := range warnings {
		if len(w) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no warning reached the progress reporter: %v", warnings)
	}

	// The surviving snapshot must be the last *successful* checkpoint and
	// must resume to the full result.
	ckWriterWrap = orig
	full := NewChecker(newToy(3, true), Options{}).Run()
	resumed := NewChecker(newToy(3, true), Options{
		Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
	}).Run()
	if resumed.Err != nil {
		t.Fatalf("snapshot left by failing run does not resume: %v", resumed.Err)
	}
	if resumed.DistinctStates != full.DistinctStates {
		t.Errorf("resumed distinct=%d, want %d", resumed.DistinctStates, full.DistinctStates)
	}
}

// TestKillAndResumeUnderBudget is the spill-path resume guarantee: a
// budget-constrained run interrupted both mid-level (max-states inside a
// level) and at a level boundary (max-depth) resumes to byte-identical
// results — counters, violations, coverage — as an uninterrupted in-RAM run.
func TestKillAndResumeUnderBudget(t *testing.T) {
	base := Options{RecordVars: true, Cover: true}
	ref := NewChecker(newToy(6, false), base).Run()
	if !ref.Exhausted {
		t.Fatalf("reference run did not exhaust: %s", ref.StopReason)
	}
	refSig := resultSignature(t, ref)

	budgeted := func(dir string) Options {
		o := base
		o.MemBudget = 64 << 10
		o.SpillDir = filepath.Join(dir, "spill")
		o.Checkpoint = CheckpointOptions{Dir: dir, EveryStates: 1}
		return o
	}

	interruptions := []struct {
		name string
		stop func(o *Options)
	}{
		// Level boundary: the checkpoint at depth 6 is complete and the next
		// level's spill files are gone when the process "dies".
		{"at-level-boundary", func(o *Options) { o.MaxDepth = 6 }},
		// Mid-level: the bound trips inside a level's block loop, while the
		// level being consumed and the set both live partly on disk; the
		// checkpoint layer must fall back to the last complete level.
		{"mid-level", func(o *Options) { o.MaxStates = ref.DistinctStates / 2 }},
	}
	for _, ic := range interruptions {
		t.Run(ic.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := budgeted(dir)
			ic.stop(&opts)
			reg := obs.NewRegistry()
			opts.Metrics = reg
			res := NewChecker(newToy(6, false), opts).Run()
			if res.Err != nil {
				t.Fatalf("interrupted budgeted run failed: %v", res.Err)
			}
			if res.Checkpoints == 0 {
				t.Fatal("interrupted run wrote no checkpoints")
			}
			if got, _ := reg.Snapshot()["fpset.spilled_entries"].(int64); got == 0 {
				t.Fatal("interrupted run never spilled; budget did not engage")
			}

			// Resume under the same budget; spill scratch from the "killed"
			// run is inert — the resume builds its own.
			ropts := budgeted(dir)
			ropts.Checkpoint.EveryStates = 0
			ropts.Checkpoint.Resume = true
			resumed := NewChecker(newToy(6, false), ropts).Run()
			if resumed.Err != nil {
				t.Fatalf("resume failed: %v", resumed.Err)
			}
			if got := resultSignature(t, resumed); got != refSig {
				t.Errorf("resumed budgeted result differs from uninterrupted in-RAM run:\n--- resumed\n%s--- in-RAM\n%s", got, refSig)
			}
		})
	}
}
