package explorer

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// memController enforces Options.MemBudget: it owns the run's private spill
// directory, wires the fingerprint set's spill controller, decides the
// frontier spill threshold, and samples the heap gauge. It is driven from
// expansion block boundaries (the run's safepoints), never the hot path. A
// nil *memController is the unbudgeted run; every method no-ops.
type memController struct {
	budget int64
	dir    string // private per-run spill dir, removed by close
	codec  spec.StateCodec
	// frontierChunk is the next-level buffer size (entries) that triggers a
	// spill; 0 means frontier spilling is off (no codec, or disabled after
	// a write failure).
	frontierChunk int
	frontierSeq   int

	m        *runMetrics
	reporter *obs.Reporter
	tracer   *obs.Tracer

	lastHeap    time.Time
	spillWarned bool
}

// frontierChunkFloor keeps spill runs from degenerating into thousands of
// tiny files when the budget is far below the working set.
const frontierChunkFloor = 512

// newMemController builds the controller for this run, creating the spill
// directory and enabling fpset spilling. Returns (nil, nil) when no budget
// is configured.
func (c *Checker) newMemController(metrics *runMetrics, reporter *obs.Reporter) (*memController, error) {
	budget := c.opts.MemBudget
	if budget <= 0 {
		return nil, nil
	}
	base := c.opts.SpillDir
	if base == "" {
		base = c.opts.Checkpoint.Dir
	}
	if base == "" {
		base = os.TempDir()
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, err
	}
	// A fresh private directory per run: concurrent runs never collide, and
	// stale directories left by a kill -9 are inert (spill files are session
	// scratch, rebuilt from checkpoints on resume, so leftovers are never
	// read — only disk-space litter the user can delete).
	dir, err := os.MkdirTemp(base, "sandtable-spill-")
	if err != nil {
		return nil, err
	}
	// The budget is split: half for the fingerprint set (the structure that
	// grows without bound), the rest headroom for the frontier buffers and
	// everything else.
	if err := c.visited.EnableSpill(fpset.SpillConfig{
		Dir:         filepath.Join(dir, "fpset"),
		BudgetBytes: budget / 2,
	}); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	mc := &memController{
		budget: budget, dir: dir,
		m: metrics, reporter: reporter, tracer: c.opts.Tracer,
	}
	if codec, ok := c.m.(spec.StateCodec); ok {
		mc.codec = codec
		// Estimate the resident cost of one frontier entry from an encoded
		// init state (encoding length ≈ state payload; ×3 for the decoded
		// object plus slice headers, +64 fixed overhead), then size the
		// spill threshold so the buffered frontier stays within a quarter
		// of the budget.
		est := 64
		if inits := c.m.Init(); len(inits) > 0 {
			est += 3 * len(codec.AppendState(nil, inits[0]))
		}
		chunk := int(budget / 4 / int64(est))
		mc.frontierChunk = max(frontierChunkFloor, min(chunk, 1<<20))
	}
	if metrics != nil {
		metrics.memBudget.Set(budget)
	}
	return mc, nil
}

// newSink starts the next-level accumulator for one BFS level (nil when
// frontier spilling is unavailable).
func (mc *memController) newSink(depth int) *frontierSink {
	if mc == nil || mc.frontierChunk == 0 {
		return nil
	}
	return &frontierSink{mc: mc, depth: depth}
}

// blockTick runs the budget checks at an expansion block boundary: spill
// frozen fingerprints if the set is over budget, and refresh the heap gauge
// at most twice a second.
func (mc *memController) blockTick(c *Checker, depth int) {
	if mc == nil {
		return
	}
	// Only entries at depths the BFS has completed are frozen (their edges
	// can no longer change); the level currently being inserted must stay
	// in RAM so the equal-depth tie-break keeps working.
	if _, err := c.visited.MaybeSpill(int32(depth - 1)); err != nil {
		mc.warnf("fingerprint-set spill failed, continuing in RAM: %v", err)
	}
	if mc.m != nil && time.Since(mc.lastHeap) > 500*time.Millisecond {
		mc.lastHeap = time.Now()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mc.m.heapInuse.Set(int64(ms.HeapInuse))
	}
}

// warnf surfaces a degradation through the progress reporter (once per run)
// and the structured trace (every occurrence).
func (mc *memController) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	mc.tracer.Emit(obs.Event{
		Layer: "spec", Kind: "spill-error", Node: -1,
		Detail: map[string]string{"error": msg},
	})
	if !mc.spillWarned {
		mc.spillWarned = true
		mc.reporter.Warnf("%s", msg)
	}
}

// close releases the fingerprint set's run files and deletes the spill
// directory. Called after trace reconstruction (which may still probe
// spilled entries).
func (mc *memController) close(set *fpset.Set) {
	if mc == nil {
		return
	}
	set.CloseSpill()
	os.RemoveAll(mc.dir)
}

// ParseByteSize parses a human byte size: a plain integer is bytes, and the
// suffixes B, KiB, MiB, GiB, TiB (case-insensitive, also accepted without
// the i: KB, MB, GB, TB) scale by powers of 1024 — the same grammar as Go's
// GOMEMLIMIT. Used by the CLI's -mem-budget flag.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			t = t[:len(t)-len(suf.name)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	if mult > 1 && n > math.MaxInt64/mult {
		return 0, fmt.Errorf("byte size %q overflows int64", s)
	}
	return n * mult, nil
}
