package explorer

import (
	"strconv"
	"time"

	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// StatelessOptions configures the stateless search ablation: bounded DFS
// with no visited set, the exploration discipline implementation-level
// DMCKs are forced into (§2.1: the stateless approach "cannot distinguish
// redundant states, leading to a more severe explosion").
type StatelessOptions struct {
	MaxDepth  int
	Deadline  time.Duration
	MaxVisits int64 // stop after this many state visits (0 = off)

	// TrackDistinct additionally counts *distinct* states in a fingerprint
	// set (internal/fpset). The set never prunes the search — that would
	// make it stateful — it only measures the redundancy, so
	// StatelessResult.SelfRedundancy works without a separate stateful run
	// of the same model.
	TrackDistinct bool

	// Progress, when set, receives periodic snapshots: DistinctStates and
	// Transitions both carry the raw visit count (the stateless discipline
	// cannot tell duplicates apart — that is its defining deficiency), and
	// Depth carries the current DFS depth. Cadence as in Options.
	Progress obs.ProgressFunc
	// ProgressInterval is the minimum wall-clock time between reports.
	ProgressInterval time.Duration
	// ProgressStates reports every N visits.
	ProgressStates int
	// Metrics, when set, receives live visit/execution counters.
	Metrics *obs.Registry
	// Tracer, when set, receives one "stateless" summary event when the
	// search ends (visits, executions, distinct states) — the ablation's
	// counterpart of the BFS checker's per-level events.
	Tracer *obs.Tracer
}

// StatelessResult reports how much work the stateless discipline performed.
type StatelessResult struct {
	Visits     int64 // states visited, duplicates included
	Executions int64 // complete root-to-leaf executions
	Violations int
	// Distinct is the number of distinct states among the visits (0 unless
	// StatelessOptions.TrackDistinct).
	Distinct  int64
	Duration  time.Duration
	Exhausted bool
}

// RedundancyFactor estimates wasted work: visits per distinct state, given
// the distinct-state count measured by a stateful run of the same model.
func (r *StatelessResult) RedundancyFactor(distinct int) float64 {
	if distinct == 0 {
		return 0
	}
	return float64(r.Visits) / float64(distinct)
}

// SelfRedundancy is RedundancyFactor against the run's own distinct-state
// count (requires StatelessOptions.TrackDistinct).
func (r *StatelessResult) SelfRedundancy() float64 {
	return r.RedundancyFactor(int(r.Distinct))
}

// StatelessSearch explores the machine by depth-bounded DFS without state
// deduplication. It exists to make the paper's premise measurable: the same
// bounded space costs vastly more transitions without statefulness.
func StatelessSearch(m spec.Machine, opts StatelessOptions) *StatelessResult {
	start := time.Now()
	res := &StatelessResult{}
	invs := m.Invariants()
	deadline := time.Time{}
	if opts.Deadline > 0 {
		deadline = start.Add(opts.Deadline)
	}
	interval := opts.ProgressInterval
	if opts.Progress != nil && interval == 0 && opts.ProgressStates == 0 {
		interval = 5 * time.Second
	}
	reporter := obs.NewReporter(opts.Progress, interval, opts.ProgressStates)
	var visitsGauge, execGauge *obs.Gauge
	if opts.Metrics != nil {
		visitsGauge = opts.Metrics.Gauge("stateless_visits")
		execGauge = opts.Metrics.Gauge("stateless_executions")
	}
	var distinct *fpset.Set
	if opts.TrackDistinct {
		distinct = fpset.New(1)
	}
	// With a BufferedMachine, each DFS depth owns one reusable successor
	// buffer: a parent is still iterating its buffer while its children
	// enumerate, so buffers cannot be shared across levels, but within a
	// level every sibling reuses the same one.
	bm, _ := m.(spec.BufferedMachine)
	var bufs [][]spec.Succ

	var dfs func(s spec.State, depth int) bool // returns false to abort
	dfs = func(s spec.State, depth int) bool {
		res.Visits++
		if distinct != nil {
			distinct.Insert(s.Fingerprint(), 0, int32(depth))
		}
		if opts.MaxVisits > 0 && res.Visits >= opts.MaxVisits {
			return false
		}
		// Observation points share the 4096-visit cadence of the deadline
		// check so the hot recursion stays free of clock reads.
		if res.Visits%4096 == 0 {
			visitsGauge.Set(res.Visits)
			execGauge.Set(res.Executions)
			reporter.Maybe(obs.Progress{
				DistinctStates: int(res.Visits),
				Transitions:    res.Visits,
				Depth:          depth,
			})
			if !deadline.IsZero() && time.Now().After(deadline) {
				return false
			}
		}
		if v := checkInvariants(invs, s, depth, 0); v != nil {
			res.Violations++
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Executions++
			return true
		}
		var succs []spec.Succ
		if bm != nil {
			for depth >= len(bufs) {
				bufs = append(bufs, nil)
			}
			bufs[depth] = bm.AppendNext(s, bufs[depth][:0])
			succs = bufs[depth]
		} else {
			succs = m.Next(s)
		}
		if len(succs) == 0 {
			res.Executions++
			return true
		}
		for i := range succs {
			if !dfs(succs[i].State, depth+1) {
				return false
			}
		}
		return true
	}

	res.Exhausted = true
	for _, s := range m.Init() {
		if !dfs(s, 0) {
			res.Exhausted = false
			break
		}
	}
	res.Duration = time.Since(start)
	if distinct != nil {
		res.Distinct = distinct.Len()
	}
	visitsGauge.Set(res.Visits)
	execGauge.Set(res.Executions)
	if opts.Progress != nil {
		reporter.Emit(obs.Progress{DistinctStates: int(res.Visits), Transitions: res.Visits, Final: true})
	}
	opts.Tracer.Emit(obs.Event{
		Layer: "spec", Kind: "stateless", Node: -1,
		Detail: map[string]string{
			"visits":     strconv.FormatInt(res.Visits, 10),
			"executions": strconv.FormatInt(res.Executions, 10),
			"distinct":   strconv.FormatInt(res.Distinct, 10),
			"violations": strconv.Itoa(res.Violations),
			"exhausted":  strconv.FormatBool(res.Exhausted),
		},
	})
	return res
}
