package explorer

import (
	"time"

	"github.com/sandtable-go/sandtable/internal/spec"
)

// StatelessOptions configures the stateless search ablation: bounded DFS
// with no visited set, the exploration discipline implementation-level
// DMCKs are forced into (§2.1: the stateless approach "cannot distinguish
// redundant states, leading to a more severe explosion").
type StatelessOptions struct {
	MaxDepth  int
	Deadline  time.Duration
	MaxVisits int64 // stop after this many state visits (0 = off)
}

// StatelessResult reports how much work the stateless discipline performed.
type StatelessResult struct {
	Visits     int64 // states visited, duplicates included
	Executions int64 // complete root-to-leaf executions
	Violations int
	Duration   time.Duration
	Exhausted  bool
}

// RedundancyFactor estimates wasted work: visits per distinct state, given
// the distinct-state count measured by a stateful run of the same model.
func (r *StatelessResult) RedundancyFactor(distinct int) float64 {
	if distinct == 0 {
		return 0
	}
	return float64(r.Visits) / float64(distinct)
}

// StatelessSearch explores the machine by depth-bounded DFS without state
// deduplication. It exists to make the paper's premise measurable: the same
// bounded space costs vastly more transitions without statefulness.
func StatelessSearch(m spec.Machine, opts StatelessOptions) *StatelessResult {
	start := time.Now()
	res := &StatelessResult{}
	invs := m.Invariants()
	deadline := time.Time{}
	if opts.Deadline > 0 {
		deadline = start.Add(opts.Deadline)
	}

	var dfs func(s spec.State, depth int) bool // returns false to abort
	dfs = func(s spec.State, depth int) bool {
		res.Visits++
		if opts.MaxVisits > 0 && res.Visits >= opts.MaxVisits {
			return false
		}
		if !deadline.IsZero() && res.Visits%4096 == 0 && time.Now().After(deadline) {
			return false
		}
		if v := checkInvariants(invs, s, depth, 0); v != nil {
			res.Violations++
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Executions++
			return true
		}
		succs := m.Next(s)
		if len(succs) == 0 {
			res.Executions++
			return true
		}
		for _, su := range succs {
			if !dfs(su.State, depth+1) {
				return false
			}
		}
		return true
	}

	res.Exhausted = true
	for _, s := range m.Init() {
		if !dfs(s, 0) {
			res.Exhausted = false
			break
		}
	}
	res.Duration = time.Since(start)
	return res
}
