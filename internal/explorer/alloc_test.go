package explorer

import "testing"

// TestAllocsPerState pins the expansion pipeline's allocation budget: a
// full single-worker BFS over the toy space must stay under a fixed number
// of heap allocations per distinct state. The toy spec implements
// spec.BufferedMachine with a flat-backed clone, so the steady-state cost
// per state is the clone's few backing arrays plus amortised fingerprint-set
// growth; a regression in the pooled-buffer discipline (successor slices,
// frontier double-buffering, per-worker scratch) shows up here as a jump.
// The bound has ~1.5x headroom over the measured value (~5.3) so it only
// trips on structural regressions, not allocator noise.
func TestAllocsPerState(t *testing.T) {
	const maxAllocsPerState = 8.0
	var distinct int
	allocs := testing.AllocsPerRun(5, func() {
		res := NewChecker(newToy(4, false), Options{Workers: 1}).Run()
		if res.DistinctStates == 0 {
			t.Fatal("no states explored")
		}
		distinct = res.DistinctStates
	})
	perState := allocs / float64(distinct)
	t.Logf("allocs/run=%.0f distinct=%d allocs/state=%.2f", allocs, distinct, perState)
	if perState > maxAllocsPerState {
		t.Errorf("allocations per distinct state = %.2f, want <= %.1f", perState, maxAllocsPerState)
	}
}
