package explorer

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// interrupt runs the machine with checkpointing on and a depth bound that
// stops the run before the space is exhausted — the test stand-in for a
// killed process. Every completed level writes a snapshot (EveryStates: 1),
// so Dir/checkpoint.snap afterwards holds the last complete level.
func interrupt(t *testing.T, dir string, maxDepth int, atomic bool, base Options) *Result {
	t.Helper()
	opts := base
	opts.MaxDepth = maxDepth
	opts.Checkpoint = CheckpointOptions{Dir: dir, EveryStates: 1, Label: base.Checkpoint.Label}
	res := NewChecker(newToy(3, atomic), opts).Run()
	if res.Err != nil {
		t.Fatalf("interrupted run failed: %v", res.Err)
	}
	if res.Checkpoints == 0 {
		t.Fatal("interrupted run wrote no checkpoints")
	}
	if _, err := os.Stat(filepath.Join(dir, snapFile)); err != nil {
		t.Fatalf("no snapshot on disk: %v", err)
	}
	return res
}

// TestResumeMatchesUninterruptedRun is the core checkpoint/resume guarantee:
// a run killed after a checkpoint and resumed reports exactly the counters an
// uninterrupted run reports.
func TestResumeMatchesUninterruptedRun(t *testing.T) {
	full := NewChecker(newToy(3, true), Options{}).Run()
	if !full.Exhausted {
		t.Fatalf("reference run did not exhaust: %s", full.StopReason)
	}

	dir := t.TempDir()
	interrupt(t, dir, 2, true, Options{})

	resumed := NewChecker(newToy(3, true), Options{
		Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
	}).Run()
	if resumed.Err != nil {
		t.Fatalf("resume failed: %v", resumed.Err)
	}
	if !resumed.Resumed {
		t.Fatal("Result.Resumed not set")
	}
	if resumed.DistinctStates != full.DistinctStates {
		t.Errorf("distinct states: resumed %d, uninterrupted %d", resumed.DistinctStates, full.DistinctStates)
	}
	if resumed.Transitions != full.Transitions {
		t.Errorf("transitions: resumed %d, uninterrupted %d", resumed.Transitions, full.Transitions)
	}
	if resumed.DedupHits != full.DedupHits {
		t.Errorf("dedup hits: resumed %d, uninterrupted %d", resumed.DedupHits, full.DedupHits)
	}
	if !resumed.Exhausted {
		t.Errorf("resumed run did not exhaust: %s", resumed.StopReason)
	}
	if resumed.MaxDepth != full.MaxDepth {
		t.Errorf("max depth: resumed %d, uninterrupted %d", resumed.MaxDepth, full.MaxDepth)
	}
}

// TestResumeFindsSameCounterexample checks the other half of the resume
// guarantee: a violation found after resuming is the same violation (same
// invariant, depth, and state) the uninterrupted run reports, with a
// reconstructible trace.
func TestResumeFindsSameCounterexample(t *testing.T) {
	base := Options{StopAtFirstViolation: true, RecordVars: true}
	full := NewChecker(newToy(3, false), base).Run()
	fv := full.FirstViolation()
	if fv == nil {
		t.Fatal("reference run found no violation")
	}

	dir := t.TempDir()
	// The toy's minimal counterexample is at depth 4; stop at depth 2 so the
	// snapshot predates the violation.
	interrupt(t, dir, 2, false, base)

	opts := base
	opts.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
	resumed := NewChecker(newToy(3, false), opts).Run()
	if resumed.Err != nil {
		t.Fatalf("resume failed: %v", resumed.Err)
	}
	rv := resumed.FirstViolation()
	if rv == nil {
		t.Fatal("resumed run found no violation")
	}
	if rv.Invariant != fv.Invariant || rv.Depth != fv.Depth || rv.fp != fv.fp {
		t.Errorf("counterexample differs: resumed (%s, depth %d, fp %#x), uninterrupted (%s, depth %d, fp %#x)",
			rv.Invariant, rv.Depth, rv.fp, fv.Invariant, fv.Depth, fv.fp)
	}
	if resumed.DistinctStates != full.DistinctStates {
		t.Errorf("distinct states at violation: resumed %d, uninterrupted %d",
			resumed.DistinctStates, full.DistinctStates)
	}
	if rv.Trace == nil || rv.Trace.Depth() != rv.Depth {
		t.Errorf("resumed counterexample trace not reconstructed (trace %v)", rv.Trace)
	}
}

// TestResumeWithSymmetryAndDifferentWorkers crosses resume with symmetry
// reduction and a different worker count than the interrupted run — neither
// may change the result.
func TestResumeWithSymmetryAndDifferentWorkers(t *testing.T) {
	base := Options{Symmetry: true, Workers: 1}
	full := NewChecker(newToy(3, true), Options{Symmetry: true}).Run()

	dir := t.TempDir()
	interrupt(t, dir, 2, true, base)

	resumed := NewChecker(newToy(3, true), Options{
		Symmetry:   true,
		Workers:    4,
		Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
	}).Run()
	if resumed.Err != nil {
		t.Fatalf("resume failed: %v", resumed.Err)
	}
	if resumed.DistinctStates != full.DistinctStates || !resumed.Exhausted {
		t.Errorf("resumed symmetric run: distinct %d exhausted %v, want %d and true",
			resumed.DistinctStates, resumed.Exhausted, full.DistinctStates)
	}
}

// TestResumeFailsLoudly enumerates the refusal cases: a resume must surface
// Result.Err (StopReason "checkpoint-error") rather than silently starting
// over.
func TestResumeFailsLoudly(t *testing.T) {
	resumeErr := func(t *testing.T, dir string, opts Options) error {
		t.Helper()
		o := opts
		o.Checkpoint.Dir = dir
		o.Checkpoint.Resume = true
		res := NewChecker(newToy(3, true), o).Run()
		if res.Err == nil {
			t.Fatal("resume succeeded, want error")
		}
		if res.StopReason != "checkpoint-error" {
			t.Fatalf("stop reason %q, want checkpoint-error", res.StopReason)
		}
		if res.DistinctStates != 0 {
			t.Fatalf("failed resume explored %d states", res.DistinctStates)
		}
		return res.Err
	}

	t.Run("missing", func(t *testing.T) {
		resumeErr(t, t.TempDir(), Options{})
	})

	t.Run("corrupt", func(t *testing.T) {
		dir := t.TempDir()
		interrupt(t, dir, 2, true, Options{})
		path := filepath.Join(dir, snapFile)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resumeErr(t, dir, Options{}); !strings.Contains(err.Error(), "checksum") {
			t.Errorf("corrupt snapshot error = %v, want checksum mismatch", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapFile), []byte("short"), 0o644); err != nil {
			t.Fatal(err)
		}
		resumeErr(t, dir, Options{})
	})

	t.Run("different-model", func(t *testing.T) {
		dir := t.TempDir()
		interrupt(t, dir, 2, true, Options{})
		// Same machine name, different initial state (4 processes instead of
		// 3): caught by the init digest.
		o := Options{Checkpoint: CheckpointOptions{Dir: dir, Resume: true}}
		res := NewChecker(newToy(4, true), o).Run()
		if res.Err == nil || !strings.Contains(res.Err.Error(), "digest") {
			t.Errorf("different-model resume error = %v, want digest mismatch", res.Err)
		}
	})

	t.Run("different-symmetry", func(t *testing.T) {
		dir := t.TempDir()
		interrupt(t, dir, 2, true, Options{})
		if err := resumeErr(t, dir, Options{Symmetry: true}); !strings.Contains(err.Error(), "symmetry") {
			t.Errorf("symmetry-mismatch error = %v", err)
		}
	})

	t.Run("different-label", func(t *testing.T) {
		dir := t.TempDir()
		interrupt(t, dir, 2, true, Options{Checkpoint: CheckpointOptions{Label: "toy/3/atomic"}})
		o := Options{Checkpoint: CheckpointOptions{Label: "toy/5/crash"}}
		if err := resumeErr(t, dir, o); !strings.Contains(err.Error(), "label") {
			t.Errorf("label-mismatch error = %v", err)
		}
	})
}

// TestCheckpointObservability checks the side channels: the checkpoints
// counter in the metrics registry, the "checkpoint" tracer events, and the
// checkpoint phase timer.
func TestCheckpointObservability(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	dir := t.TempDir()
	res := NewChecker(newToy(3, true), Options{
		Metrics:    reg,
		Tracer:     tr,
		MaxDepth:   3,
		Checkpoint: CheckpointOptions{Dir: dir, EveryStates: 1},
	}).Run()
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	snap := reg.Snapshot()
	if got := snap["checkpoints"].(int64); got != int64(res.Checkpoints) {
		t.Errorf("checkpoints counter = %v, want %d", got, res.Checkpoints)
	}
	if _, ok := snap["phase.checkpoint_ns"]; !ok {
		t.Errorf("no checkpoint phase timer in snapshot: %v", snap)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ckEvents := 0
	for _, ev := range evs {
		if ev.Kind == "checkpoint" {
			ckEvents++
			if ev.Detail["depth"] == "" || ev.Detail["frontier"] == "" {
				t.Errorf("checkpoint event missing detail: %+v", ev)
			}
		}
	}
	if ckEvents != res.Checkpoints {
		t.Errorf("tracer saw %d checkpoint events, result counted %d", ckEvents, res.Checkpoints)
	}
}

// TestCheckpointSkipsPartialLevels: a run stopped mid-level (max-states hit
// inside a level's block loop) must not snapshot the incomplete frontier; the
// previous complete-level snapshot stays authoritative.
func TestCheckpointSkipsPartialLevels(t *testing.T) {
	dir := t.TempDir()
	// MaxStates small enough to trip mid-exploration; EveryStates 1 so every
	// complete level would checkpoint.
	res := NewChecker(newToy(4, true), Options{
		MaxStates:  10,
		Checkpoint: CheckpointOptions{Dir: dir, EveryStates: 1},
	}).Run()
	if res.StopReason != "max-states" {
		t.Skipf("toy space too small to trip max-states: %s", res.StopReason)
	}
	// Whatever was written must resume cleanly (i.e. describe a complete
	// level), or nothing was written at all.
	if _, err := os.Stat(filepath.Join(dir, snapFile)); err != nil {
		return
	}
	resumed := NewChecker(newToy(4, true), Options{
		Checkpoint: CheckpointOptions{Dir: dir, Resume: true},
	}).Run()
	if resumed.Err != nil {
		t.Fatalf("snapshot from a max-states run does not resume: %v", resumed.Err)
	}
	full := NewChecker(newToy(4, true), Options{}).Run()
	if resumed.DistinctStates != full.DistinctStates {
		t.Errorf("resumed distinct %d, uninterrupted %d", resumed.DistinctStates, full.DistinctStates)
	}
}
