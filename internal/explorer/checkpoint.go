package explorer

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// CheckpointOptions configures periodic exploration snapshots — the
// reproduction of TLC's checkpointing, which lets a machine-day-scale run
// survive interruption. The zero value disables checkpointing.
//
// A snapshot is written at BFS level boundaries (where the frontier is
// well-defined and expansion workers are quiescent) whenever the cadence is
// due: every Interval of wall-clock time and/or every EveryStates newly
// discovered distinct states, whichever fires first (both zero with a Dir
// set defaults to a 60-second interval). The file contains the fingerprint
// set, the frontier (as fingerprints), and the run's counters, wrapped in a
// versioned, checksummed envelope and written atomically (temp file +
// rename), so a crash mid-write never corrupts the previous snapshot.
//
// Resume rebuilds the frontier deterministically by guided replay: it
// re-expands the already-explored interior of the state graph, following
// only edges recorded in the snapshot's fingerprint set, and verifies the
// rebuilt frontier matches the snapshot exactly. BFS exploration is
// deterministic (see the package comment), so a resumed run reports the
// same distinct-state count and the same counterexample as an uninterrupted
// run with the same options.
type CheckpointOptions struct {
	// Dir is the snapshot directory ("" disables checkpointing). The
	// current snapshot is Dir/checkpoint.snap.
	Dir string
	// Interval is the minimum wall-clock time between snapshots.
	Interval time.Duration
	// EveryStates writes a snapshot every N newly discovered states.
	EveryStates int
	// Resume loads Dir/checkpoint.snap before exploring and continues from
	// it. A missing, corrupt, or incompatible snapshot fails the run
	// (Result.Err) rather than silently starting over.
	Resume bool
	// Label identifies the model for compatibility checking, e.g.
	// "system/config/budget/bugs". A snapshot written under one label
	// refuses to resume under a different non-empty label. Independently of
	// the label, resume verifies the machine name, the symmetry setting,
	// and a digest of the initial states.
	Label string
}

func (o *CheckpointOptions) enabled() bool { return o.Dir != "" }

// snapFile is the current snapshot name within CheckpointOptions.Dir.
const snapFile = "checkpoint.snap"

// snapMagic and snapVersion identify the envelope format. Version bumps
// whenever the byte layout or header semantics change; old versions are
// rejected (re-run from scratch rather than risking a wrong resume).
const (
	snapMagic   = "SNDTBLCK"
	snapVersion = 1
)

// snapshotHeader is the JSON head of a snapshot file: model identity for
// compatibility checking plus every Result counter needed to continue.
type snapshotHeader struct {
	Version        int             `json:"version"`
	Label          string          `json:"label,omitempty"`
	Machine        string          `json:"machine"`
	Symmetry       bool            `json:"symmetry"`
	InitDigest     uint64          `json:"init_digest"`
	Depth          int             `json:"depth"`
	DistinctStates int             `json:"distinct_states"`
	Transitions    int64           `json:"transitions"`
	DedupHits      int64           `json:"dedup_hits"`
	MaxQueueLen    int             `json:"max_queue_len"`
	MaxDepth       int             `json:"max_depth"`
	GoalReached    bool            `json:"goal_reached"`
	ElapsedNs      int64           `json:"elapsed_ns"`
	Violations     []snapViolation `json:"violations,omitempty"`
}

// snapViolation persists a violation found before the snapshot (only
// relevant with StopAtFirstViolation off). The error survives as text.
type snapViolation struct {
	Invariant string `json:"invariant"`
	Error     string `json:"error"`
	Depth     int    `json:"depth"`
	FP        uint64 `json:"fp"`
}

// snapshot is a decoded checkpoint: header, rebuilt frontier, and the
// restored fingerprint set (already installed into the Checker).
type snapshot struct {
	header   snapshotHeader
	frontier []frontierEntry
}

func (s *snapshot) violations() []*Violation {
	var out []*Violation
	for _, v := range s.header.Violations {
		out = append(out, &Violation{
			Invariant: v.Invariant,
			Err:       errors.New(v.Error),
			Depth:     v.Depth,
			fp:        v.FP,
		})
	}
	return out
}

// initDigest fingerprints the machine's initial states (canonical, sorted
// by insertion into a running hash of the sorted fingerprint multiset) so a
// resume under a different configuration, budget, or defect set is caught
// even when the label matches.
func (c *Checker) initDigest() uint64 {
	var fps []uint64
	for _, s := range c.m.Init() {
		fps = append(fps, c.canonicalFP(s))
	}
	// Order-insensitive combine: initial-state order is an implementation
	// detail; XOR of per-fp hashes ignores it.
	h := fp.New()
	var acc uint64
	for _, f := range fps {
		h.Reset()
		h.WriteUint64(f)
		acc ^= h.Sum()
	}
	return acc
}

// checkpointer drives the snapshot cadence for one run, reusing the obs
// reporter clock/cadence machinery (a Reporter with the write callback as
// its ProgressFunc).
type checkpointer struct {
	opts     CheckpointOptions
	reporter *obs.Reporter
	metrics  *runMetrics
	tracer   *obs.Tracer
}

// newCheckpointer returns nil when checkpointing is disabled.
func (c *Checker) newCheckpointer(metrics *runMetrics) *checkpointer {
	o := c.opts.Checkpoint
	if !o.enabled() {
		return nil
	}
	interval := o.Interval
	if interval == 0 && o.EveryStates == 0 {
		interval = 60 * time.Second
	}
	ck := &checkpointer{opts: o, metrics: metrics, tracer: c.opts.Tracer}
	// The ProgressFunc is a sentinel: the reporter is used purely for its
	// Due/Emit cadence bookkeeping; the snapshot write happens in
	// maybeWrite between Due and Emit.
	ck.reporter = obs.NewReporter(func(obs.Progress) {}, interval, o.EveryStates)
	return ck
}

// maybeWrite writes a snapshot if the cadence is due. Write failures do not
// abort the exploration: the error is recorded as a trace event and the run
// carries on (the previous snapshot, if any, is still intact).
func (ck *checkpointer) maybeWrite(c *Checker, res *Result, depth int, frontier []frontierEntry, elapsed time.Duration) {
	if !ck.reporter.Due(res.DistinctStates) {
		return
	}
	var stop func()
	if c.opts.Metrics != nil {
		stop = c.opts.Metrics.StartPhase("checkpoint")
	}
	err := writeSnapshot(ck.opts, c, res, depth, frontier, elapsed)
	if stop != nil {
		stop()
	}
	detail := map[string]string{
		"depth":    fmt.Sprint(depth),
		"distinct": fmt.Sprint(res.DistinctStates),
		"frontier": fmt.Sprint(len(frontier)),
	}
	if err != nil {
		detail["error"] = err.Error()
	} else {
		res.Checkpoints++
		if ck.metrics != nil {
			ck.metrics.checkpoints.Inc()
		}
	}
	ck.tracer.Emit(obs.Event{Layer: "spec", Kind: "checkpoint", Node: -1, Detail: detail})
	ck.reporter.Emit(obs.Progress{DistinctStates: res.DistinctStates})
}

// writeSnapshot serialises the run state into Dir/checkpoint.snap via an
// atomic rename. Layout:
//
//	magic[8] version[u32] headerLen[u32] headerJSON
//	frontierCount[u64] frontierFP[u64]...
//	fpset stream (see fpset.WriteTo)
//	crc32[u32] of everything prior (IEEE)
func writeSnapshot(o CheckpointOptions, c *Checker, res *Result, depth int, frontier []frontierEntry, elapsed time.Duration) error {
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(o.Dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after successful rename
	}()

	hdr := snapshotHeader{
		Version:        snapVersion,
		Label:          o.Label,
		Machine:        c.m.Name(),
		Symmetry:       c.sym != nil,
		InitDigest:     c.initDigest(),
		Depth:          depth,
		DistinctStates: res.DistinctStates,
		Transitions:    res.Transitions,
		DedupHits:      res.DedupHits,
		MaxQueueLen:    res.MaxQueueLen,
		MaxDepth:       res.MaxDepth,
		GoalReached:    res.GoalReached,
		ElapsedNs:      int64(elapsed),
	}
	for _, v := range res.Violations {
		hdr.Violations = append(hdr.Violations, snapViolation{
			Invariant: v.Invariant, Error: v.Err.Error(), Depth: v.Depth, FP: v.fp,
		})
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}

	crc := crc32.NewIEEE()
	w := io.MultiWriter(tmp, crc)
	var scratch [8]byte
	if _, err := w.Write([]byte(snapMagic)); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], snapVersion)
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(hb)))
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}
	if _, err := w.Write(hb); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(frontier)))
	if _, err := w.Write(scratch[:]); err != nil {
		return err
	}
	for _, fe := range frontier {
		binary.LittleEndian.PutUint64(scratch[:], fe.fp)
		if _, err := w.Write(scratch[:]); err != nil {
			return err
		}
	}
	if _, err := c.visited.WriteTo(w); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := tmp.Write(scratch[:4]); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(o.Dir, snapFile))
}

// resume loads Dir/checkpoint.snap, verifies integrity and model
// compatibility, installs the fingerprint set, and rebuilds the frontier.
func (c *Checker) resume() error {
	o := c.opts.Checkpoint
	path := filepath.Join(o.Dir, snapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(snapMagic)+4+4+8+4 {
		return fmt.Errorf("%s: truncated snapshot (%d bytes)", path, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("%s: checksum mismatch (snapshot corrupt)", path)
	}
	r := body
	if string(r[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%s: not a sandtable checkpoint", path)
	}
	r = r[len(snapMagic):]
	if v := binary.LittleEndian.Uint32(r[:4]); v != snapVersion {
		return fmt.Errorf("%s: snapshot version %d, this build reads %d", path, v, snapVersion)
	}
	r = r[4:]
	hlen := int(binary.LittleEndian.Uint32(r[:4]))
	r = r[4:]
	if hlen > len(r) {
		return fmt.Errorf("%s: truncated header", path)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(r[:hlen], &hdr); err != nil {
		return fmt.Errorf("%s: header: %w", path, err)
	}
	r = r[hlen:]

	// Compatibility: the snapshot must describe this exact model.
	if hdr.Machine != c.m.Name() {
		return fmt.Errorf("%s: snapshot is for machine %q, this run checks %q", path, hdr.Machine, c.m.Name())
	}
	if hdr.Symmetry != (c.sym != nil) {
		return fmt.Errorf("%s: snapshot symmetry=%v, this run uses %v", path, hdr.Symmetry, c.sym != nil)
	}
	if o.Label != "" && hdr.Label != "" && o.Label != hdr.Label {
		return fmt.Errorf("%s: snapshot label %q, this run is %q", path, hdr.Label, o.Label)
	}
	if got := c.initDigest(); got != hdr.InitDigest {
		return fmt.Errorf("%s: initial-state digest mismatch (different config, budget, or defect set)", path)
	}

	if len(r) < 8 {
		return fmt.Errorf("%s: truncated frontier", path)
	}
	fcount := binary.LittleEndian.Uint64(r[:8])
	r = r[8:]
	if uint64(len(r)) < 8*fcount {
		return fmt.Errorf("%s: truncated frontier (%d of %d entries)", path, len(r)/8, fcount)
	}
	wantFrontier := make(map[uint64]bool, fcount)
	for i := uint64(0); i < fcount; i++ {
		wantFrontier[binary.LittleEndian.Uint64(r[:8])] = true
		r = r[8:]
	}
	set, err := fpset.Read(bytes.NewReader(r), c.opts.FPSetShards)
	if err != nil {
		return fmt.Errorf("%s: fingerprint set: %w", path, err)
	}
	c.visited = set

	frontier, err := c.rebuildFrontier(hdr.Depth, wantFrontier)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	c.restored = &snapshot{header: hdr, frontier: frontier}
	return nil
}

// rebuildFrontier re-derives the frontier *states* for the snapshot's
// frontier fingerprints by guided replay: specification states are not
// generically serialisable, but exploration is deterministic, so walking
// the recorded state graph forward from the initial states — expanding only
// states whose recorded depth matches the replay level — reproduces the
// frontier exactly. The interior's Next/fingerprint work is re-done; the
// frontier level and everything beyond it (usually the bulk of an
// interrupted run) is not.
func (c *Checker) rebuildFrontier(depth int, want map[uint64]bool) ([]frontierEntry, error) {
	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Level 0: the deduplicated initial states.
	var cur []frontierEntry
	seen := make(map[uint64]bool)
	for _, s := range c.m.Init() {
		f := c.canonicalFP(s)
		if seen[f] {
			continue
		}
		seen[f] = true
		cur = append(cur, frontierEntry{state: s, fp: f})
	}
	for d := 1; d <= depth; d++ {
		var next []frontierEntry
		seen = make(map[uint64]bool) // a level's dedup is local to the level
		const block = 1 << 14
		for lo := 0; lo < len(cur); lo += block {
			hi := min(lo+block, len(cur))
			recs := c.replayExpand(cur[lo:hi], workers)
			for k := lo; k < hi; k++ {
				cur[k].state = nil
			}
			for _, rec := range recs {
				e, ok := c.visited.Lookup(rec.fp)
				if !ok {
					return nil, fmt.Errorf("replay reached state %#x absent from the snapshot's fingerprint set", rec.fp)
				}
				if int(e.Depth) != d || seen[rec.fp] {
					continue
				}
				seen[rec.fp] = true
				next = append(next, rec)
			}
		}
		cur = next
	}
	if len(cur) != len(want) {
		return nil, fmt.Errorf("rebuilt frontier has %d states, snapshot recorded %d", len(cur), len(want))
	}
	for _, fe := range cur {
		if !want[fe.fp] {
			return nil, fmt.Errorf("rebuilt frontier state %#x is not in the snapshot frontier", fe.fp)
		}
	}
	sortFrontier(cur)
	return cur, nil
}

// replayExpand computes successor (state, fingerprint) pairs for guided
// replay, fanning Next/canonicalFP across workers without touching the
// fingerprint set.
func (c *Checker) replayExpand(entries []frontierEntry, workers int) []frontierEntry {
	expandOne := func(fes []frontierEntry) []frontierEntry {
		var out []frontierEntry
		var buf []spec.Succ // goroutine-local, reused across the slice
		for _, fe := range fes {
			buf = c.nextInto(fe.state, buf[:0])
			for i := range buf {
				out = append(out, frontierEntry{state: buf[i].State, fp: c.canonicalFP(buf[i].State)})
			}
		}
		return out
	}
	if len(entries) < 2*workers || workers == 1 {
		return expandOne(entries)
	}
	outs := make([][]frontierEntry, workers)
	var wg sync.WaitGroup
	size := (len(entries) + workers - 1) / workers
	for i := 0; i < workers; i++ {
		lo := i * size
		hi := min(lo+size, len(entries))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			outs[i] = expandOne(entries[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	var all []frontierEntry
	for _, o := range outs {
		all = append(all, o...)
	}
	return all
}
