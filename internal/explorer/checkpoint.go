package explorer

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// CheckpointOptions configures periodic exploration snapshots — the
// reproduction of TLC's checkpointing, which lets a machine-day-scale run
// survive interruption. The zero value disables checkpointing.
//
// A snapshot is written at BFS level boundaries (where the frontier is
// well-defined and expansion workers are quiescent) whenever the cadence is
// due: every Interval of wall-clock time and/or every EveryStates newly
// discovered distinct states, whichever fires first (both zero with a Dir
// set defaults to a 60-second interval). The file contains the fingerprint
// set, the frontier (as fingerprints), and the run's counters, wrapped in a
// versioned, checksummed envelope and written atomically (temp file +
// rename), so a crash mid-write never corrupts the previous snapshot.
//
// Resume rebuilds the frontier deterministically by guided replay: it
// re-expands the already-explored interior of the state graph, following
// only edges recorded in the snapshot's fingerprint set, and verifies the
// rebuilt frontier matches the snapshot exactly. BFS exploration is
// deterministic (see the package comment), so a resumed run reports the
// same distinct-state count and the same counterexample as an uninterrupted
// run with the same options.
type CheckpointOptions struct {
	// Dir is the snapshot directory ("" disables checkpointing). The
	// current snapshot is Dir/checkpoint.snap.
	Dir string
	// Interval is the minimum wall-clock time between snapshots.
	Interval time.Duration
	// EveryStates writes a snapshot every N newly discovered states.
	EveryStates int
	// Resume loads Dir/checkpoint.snap before exploring and continues from
	// it. A missing, corrupt, or incompatible snapshot fails the run
	// (Result.Err) rather than silently starting over.
	Resume bool
	// Label identifies the model for compatibility checking, e.g.
	// "system/config/budget/bugs". A snapshot written under one label
	// refuses to resume under a different non-empty label. Independently of
	// the label, resume verifies the machine name, the symmetry setting,
	// and a digest of the initial states.
	Label string
}

func (o *CheckpointOptions) enabled() bool { return o.Dir != "" }

// snapFile is the current snapshot name within CheckpointOptions.Dir.
const snapFile = "checkpoint.snap"

// snapMagic and snapVersion identify the envelope format. Version bumps
// whenever the byte layout or header semantics change; old versions are
// rejected (re-run from scratch rather than risking a wrong resume).
const (
	snapMagic   = "SNDTBLCK"
	snapVersion = 1
)

// snapshotHeader is the JSON head of a snapshot file: model identity for
// compatibility checking plus every Result counter needed to continue.
type snapshotHeader struct {
	Version        int             `json:"version"`
	Label          string          `json:"label,omitempty"`
	Machine        string          `json:"machine"`
	Symmetry       bool            `json:"symmetry"`
	InitDigest     uint64          `json:"init_digest"`
	Depth          int             `json:"depth"`
	DistinctStates int             `json:"distinct_states"`
	Transitions    int64           `json:"transitions"`
	DedupHits      int64           `json:"dedup_hits"`
	MaxQueueLen    int             `json:"max_queue_len"`
	MaxDepth       int             `json:"max_depth"`
	GoalReached    bool            `json:"goal_reached"`
	ElapsedNs      int64           `json:"elapsed_ns"`
	Violations     []snapViolation `json:"violations,omitempty"`
}

// snapViolation persists a violation found before the snapshot (only
// relevant with StopAtFirstViolation off). The error survives as text.
type snapViolation struct {
	Invariant string `json:"invariant"`
	Error     string `json:"error"`
	Depth     int    `json:"depth"`
	FP        uint64 `json:"fp"`
}

// snapshot is a decoded checkpoint: header, rebuilt frontier, and the
// restored fingerprint set (already installed into the Checker).
type snapshot struct {
	header   snapshotHeader
	frontier []frontierEntry
}

func (s *snapshot) violations() []*Violation {
	var out []*Violation
	for _, v := range s.header.Violations {
		out = append(out, &Violation{
			Invariant: v.Invariant,
			Err:       errors.New(v.Error),
			Depth:     v.Depth,
			fp:        v.FP,
		})
	}
	return out
}

// initDigest fingerprints the machine's initial states (canonical, sorted
// by insertion into a running hash of the sorted fingerprint multiset) so a
// resume under a different configuration, budget, or defect set is caught
// even when the label matches.
func (c *Checker) initDigest() uint64 {
	var fps []uint64
	for _, s := range c.m.Init() {
		fps = append(fps, c.canonicalFP(s))
	}
	// Order-insensitive combine: initial-state order is an implementation
	// detail; XOR of per-fp hashes ignores it.
	h := fp.New()
	var acc uint64
	for _, f := range fps {
		h.Reset()
		h.WriteUint64(f)
		acc ^= h.Sum()
	}
	return acc
}

// checkpointer drives the snapshot cadence for one run, reusing the obs
// reporter clock/cadence machinery (a Reporter with the write callback as
// its ProgressFunc), and tracks the incremental chain: the current base
// snapshot plus the committed delta log appended to it (see delta.go).
type checkpointer struct {
	opts     CheckpointOptions
	reporter *obs.Reporter
	// warn is the run's user-facing progress reporter; checkpoint failures
	// surface there as warnings instead of aborting the run.
	warn    *obs.Reporter
	metrics *runMetrics
	tracer  *obs.Tracer

	// Chain state. haveBase is false until a full snapshot has been
	// written (or adopted from a resume); afterwards checkpoints append
	// deltas until the log outgrows the base, which triggers a compaction
	// (fresh full snapshot, chain reset).
	haveBase   bool
	baseCRC    uint32
	baseBytes  int64
	deltaBytes int64
	deltaCount int
	// lastDepth is the depth covered by the last committed checkpoint;
	// the next delta carries entries with Depth in (lastDepth, depth].
	lastDepth int
}

// ckChainState carries a resumed delta chain from resume() to the
// checkpointer, so a resumed run keeps appending instead of rewriting.
type ckChainState struct {
	baseCRC    uint32
	baseBytes  int64
	deltaBytes int64
	deltaCount int
	depth      int
}

// ckWriterWrap wraps every checkpoint writer (base snapshot, delta append,
// commit record). Production leaves it as the identity; fault-injection
// tests swap it to simulate ENOSPC/partial writes.
var ckWriterWrap = func(w io.Writer) io.Writer { return w }

// newCheckpointer returns nil when checkpointing is disabled. Called after
// resume so an existing committed chain is adopted.
func (c *Checker) newCheckpointer(metrics *runMetrics, warn *obs.Reporter) *checkpointer {
	o := c.opts.Checkpoint
	if !o.enabled() {
		return nil
	}
	interval := o.Interval
	if interval == 0 && o.EveryStates == 0 {
		interval = 60 * time.Second
	}
	ck := &checkpointer{opts: o, metrics: metrics, tracer: c.opts.Tracer, warn: warn}
	if ch := c.ckChain; ch != nil {
		ck.haveBase = true
		ck.baseCRC = ch.baseCRC
		ck.baseBytes = ch.baseBytes
		ck.deltaBytes = ch.deltaBytes
		ck.deltaCount = ch.deltaCount
		ck.lastDepth = ch.depth
	}
	// The ProgressFunc is a sentinel: the reporter is used purely for its
	// Due/Emit cadence bookkeeping; the snapshot write happens in
	// maybeWrite between Due and Emit.
	ck.reporter = obs.NewReporter(func(obs.Progress) {}, interval, o.EveryStates)
	return ck
}

// maybeWrite advances the checkpoint chain if the cadence is due: a full
// snapshot when there is no base yet or the delta log has outgrown the base
// (compaction), an appended delta block otherwise. Write failures do not
// abort the exploration: the previous committed chain stays valid, the
// error is recorded as a trace event plus a checkpoint.errors tick, and a
// warning reaches the progress reporter.
func (ck *checkpointer) maybeWrite(c *Checker, res *Result, depth int, lf *levelFrontier, elapsed time.Duration) {
	if !ck.reporter.Due(res.DistinctStates) {
		return
	}
	var stop func()
	if c.opts.Metrics != nil {
		stop = c.opts.Metrics.StartPhase("checkpoint")
	}
	fps, err := lf.fps(nil)
	kind := "full"
	if err == nil {
		if full := !ck.haveBase || ck.deltaBytes > ck.baseBytes; full {
			compaction := ck.haveBase
			var size int64
			var crc uint32
			if size, crc, err = writeSnapshot(ck.opts, c, res, depth, fps, elapsed); err == nil {
				// Retire the old chain. If a crash lands between the
				// snapshot rename and these removes, the stale chain's
				// base CRC no longer matches and resume ignores it.
				os.Remove(filepath.Join(ck.opts.Dir, commitFile))
				os.Remove(filepath.Join(ck.opts.Dir, deltaFile))
				ck.haveBase, ck.baseCRC, ck.baseBytes = true, crc, size
				ck.deltaBytes, ck.deltaCount = 0, 0
				if compaction && ck.metrics != nil {
					ck.metrics.ckCompactions.Inc()
				}
			}
		} else {
			kind = "delta"
			var blockLen int64
			if blockLen, err = ck.appendDelta(c, res, depth, fps, elapsed); err == nil {
				ck.deltaBytes += blockLen
				ck.deltaCount++
				if ck.metrics != nil {
					ck.metrics.ckDeltas.Inc()
					ck.metrics.ckDeltaBytes.Add(blockLen)
				}
			}
		}
	}
	if stop != nil {
		stop()
	}
	detail := map[string]string{
		"kind":     kind,
		"depth":    fmt.Sprint(depth),
		"distinct": fmt.Sprint(res.DistinctStates),
		"frontier": fmt.Sprint(lf.size()),
	}
	if err != nil {
		detail["error"] = err.Error()
		if ck.metrics != nil {
			ck.metrics.ckErrors.Inc()
		}
		ck.warn.Warnf("checkpoint failed (previous checkpoint still valid): %v", err)
	} else {
		ck.lastDepth = depth
		res.Checkpoints++
		if ck.metrics != nil {
			ck.metrics.checkpoints.Inc()
		}
	}
	ck.tracer.Emit(obs.Event{Layer: "spec", Kind: "checkpoint", Node: -1, Detail: detail})
	ck.reporter.Emit(obs.Progress{DistinctStates: res.DistinctStates})
}

// buildHeader assembles the snapshot header shared by full snapshots and
// delta blocks.
func buildHeader(o CheckpointOptions, c *Checker, res *Result, depth int, elapsed time.Duration) snapshotHeader {
	hdr := snapshotHeader{
		Version:        snapVersion,
		Label:          o.Label,
		Machine:        c.m.Name(),
		Symmetry:       c.sym != nil,
		InitDigest:     c.initDigest(),
		Depth:          depth,
		DistinctStates: res.DistinctStates,
		Transitions:    res.Transitions,
		DedupHits:      res.DedupHits,
		MaxQueueLen:    res.MaxQueueLen,
		MaxDepth:       res.MaxDepth,
		GoalReached:    res.GoalReached,
		ElapsedNs:      int64(elapsed),
	}
	for _, v := range res.Violations {
		hdr.Violations = append(hdr.Violations, snapViolation{
			Invariant: v.Invariant, Error: v.Err.Error(), Depth: v.Depth, FP: v.fp,
		})
	}
	return hdr
}

// writeSnapshot serialises the run state into Dir/checkpoint.snap via an
// atomic rename, returning the file size and trailing CRC (the base
// identity delta commits refer to). Layout:
//
//	magic[8] version[u32] headerLen[u32] headerJSON
//	frontierCount[u64] frontierFP[u64]...
//	fpset stream (see fpset.WriteTo)
//	crc32[u32] of everything prior (IEEE)
func writeSnapshot(o CheckpointOptions, c *Checker, res *Result, depth int, fps []uint64, elapsed time.Duration) (int64, uint32, error) {
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return 0, 0, err
	}
	tmp, err := os.CreateTemp(o.Dir, "checkpoint-*.tmp")
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after successful rename
	}()

	hb, err := json.Marshal(buildHeader(o, c, res, depth, elapsed))
	if err != nil {
		return 0, 0, err
	}

	crc := crc32.NewIEEE()
	dst := ckWriterWrap(tmp)
	cw := &countingWriter{w: io.MultiWriter(dst, crc)}
	w := io.Writer(cw)
	var scratch [8]byte
	if _, err := w.Write([]byte(snapMagic)); err != nil {
		return 0, 0, err
	}
	binary.LittleEndian.PutUint32(scratch[:4], snapVersion)
	if _, err := w.Write(scratch[:4]); err != nil {
		return 0, 0, err
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(hb)))
	if _, err := w.Write(scratch[:4]); err != nil {
		return 0, 0, err
	}
	if _, err := w.Write(hb); err != nil {
		return 0, 0, err
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(fps)))
	if _, err := w.Write(scratch[:]); err != nil {
		return 0, 0, err
	}
	for _, f := range fps {
		binary.LittleEndian.PutUint64(scratch[:], f)
		if _, err := w.Write(scratch[:]); err != nil {
			return 0, 0, err
		}
	}
	if _, err := c.visited.WriteTo(w); err != nil {
		return 0, 0, err
	}
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	if _, err := dst.Write(scratch[:4]); err != nil {
		return 0, 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(o.Dir, snapFile)); err != nil {
		return 0, 0, err
	}
	return cw.n + 4, sum, nil
}

// countingWriter tracks bytes written so the checkpointer can size the base
// without a Stat round trip.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// resume loads Dir/checkpoint.snap, verifies integrity and model
// compatibility, installs the fingerprint set, applies the committed delta
// chain (see delta.go), and rebuilds the frontier at the chain's final
// depth.
func (c *Checker) resume() error {
	o := c.opts.Checkpoint
	path := filepath.Join(o.Dir, snapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(snapMagic)+4+4+8+4 {
		return fmt.Errorf("%s: truncated snapshot (%d bytes)", path, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	baseCRC := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != baseCRC {
		return fmt.Errorf("%s: checksum mismatch (snapshot corrupt)", path)
	}
	r := body
	if string(r[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%s: not a sandtable checkpoint", path)
	}
	r = r[len(snapMagic):]
	if v := binary.LittleEndian.Uint32(r[:4]); v != snapVersion {
		return fmt.Errorf("%s: snapshot version %d, this build reads %d", path, v, snapVersion)
	}
	r = r[4:]
	hlen := int(binary.LittleEndian.Uint32(r[:4]))
	r = r[4:]
	if hlen > len(r) {
		return fmt.Errorf("%s: truncated header", path)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(r[:hlen], &hdr); err != nil {
		return fmt.Errorf("%s: header: %w", path, err)
	}
	r = r[hlen:]

	// Compatibility: the snapshot must describe this exact model.
	if hdr.Machine != c.m.Name() {
		return fmt.Errorf("%s: snapshot is for machine %q, this run checks %q", path, hdr.Machine, c.m.Name())
	}
	if hdr.Symmetry != (c.sym != nil) {
		return fmt.Errorf("%s: snapshot symmetry=%v, this run uses %v", path, hdr.Symmetry, c.sym != nil)
	}
	if o.Label != "" && hdr.Label != "" && o.Label != hdr.Label {
		return fmt.Errorf("%s: snapshot label %q, this run is %q", path, hdr.Label, o.Label)
	}
	if got := c.initDigest(); got != hdr.InitDigest {
		return fmt.Errorf("%s: initial-state digest mismatch (different config, budget, or defect set)", path)
	}

	if len(r) < 8 {
		return fmt.Errorf("%s: truncated frontier", path)
	}
	fcount := binary.LittleEndian.Uint64(r[:8])
	r = r[8:]
	if uint64(len(r)) < 8*fcount {
		return fmt.Errorf("%s: truncated frontier (%d of %d entries)", path, len(r)/8, fcount)
	}
	wantFrontier := make(map[uint64]bool, fcount)
	for i := uint64(0); i < fcount; i++ {
		wantFrontier[binary.LittleEndian.Uint64(r[:8])] = true
		r = r[8:]
	}
	set, err := fpset.Read(bytes.NewReader(r), c.opts.FPSetShards)
	if err != nil {
		return fmt.Errorf("%s: fingerprint set: %w", path, err)
	}
	c.visited = set

	// Apply the committed delta chain on top of the base: each block adds
	// the fingerprints discovered since the previous checkpoint and
	// replaces the frontier and counters with its own.
	blocks, commit, err := loadDeltaChain(o.Dir, baseCRC)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, blk := range blocks {
		for _, rec := range blk.recs {
			set.Insert(rec.fp, rec.parent, rec.depth)
		}
		hdr = blk.header
		wantFrontier = make(map[uint64]bool, len(blk.fps))
		for _, f := range blk.fps {
			wantFrontier[f] = true
		}
	}
	chain := &ckChainState{baseCRC: baseCRC, baseBytes: int64(len(raw)), depth: hdr.Depth}
	if commit != nil {
		chain.deltaBytes = commit.DeltaBytes
		chain.deltaCount = commit.Deltas
	}
	c.ckChain = chain

	frontier, err := c.rebuildFrontier(hdr.Depth, wantFrontier)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	c.restored = &snapshot{header: hdr, frontier: frontier}
	return nil
}

// rebuildFrontier re-derives the frontier *states* for the snapshot's
// frontier fingerprints by guided replay: specification states are not
// generically serialisable, but exploration is deterministic, so walking
// the recorded state graph forward from the initial states — expanding only
// states whose recorded depth matches the replay level — reproduces the
// frontier exactly. The interior's Next/fingerprint work is re-done; the
// frontier level and everything beyond it (usually the bulk of an
// interrupted run) is not.
func (c *Checker) rebuildFrontier(depth int, want map[uint64]bool) ([]frontierEntry, error) {
	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Level 0: the deduplicated initial states.
	var cur []frontierEntry
	seen := make(map[uint64]bool)
	for _, s := range c.m.Init() {
		f := c.canonicalFP(s)
		if seen[f] {
			continue
		}
		seen[f] = true
		cur = append(cur, frontierEntry{state: s, fp: f})
	}
	for d := 1; d <= depth; d++ {
		var next []frontierEntry
		seen = make(map[uint64]bool) // a level's dedup is local to the level
		const block = 1 << 14
		for lo := 0; lo < len(cur); lo += block {
			hi := min(lo+block, len(cur))
			recs := c.replayExpand(cur[lo:hi], workers)
			c.countCanon(int64(len(recs))) // replay canonicalizations, folded serially
			for k := lo; k < hi; k++ {
				cur[k].state = nil
			}
			for _, rec := range recs {
				e, ok := c.visited.Lookup(rec.fp)
				if !ok {
					return nil, fmt.Errorf("replay reached state %#x absent from the snapshot's fingerprint set", rec.fp)
				}
				if int(e.Depth) != d || seen[rec.fp] {
					continue
				}
				seen[rec.fp] = true
				next = append(next, rec)
			}
		}
		cur = next
	}
	if len(cur) != len(want) {
		return nil, fmt.Errorf("rebuilt frontier has %d states, snapshot recorded %d", len(cur), len(want))
	}
	for _, fe := range cur {
		if !want[fe.fp] {
			return nil, fmt.Errorf("rebuilt frontier state %#x is not in the snapshot frontier", fe.fp)
		}
	}
	sortFrontier(cur)
	return cur, nil
}

// replayExpand computes successor (state, fingerprint) pairs for guided
// replay, fanning Next/canonicalFP across workers without touching the
// fingerprint set.
func (c *Checker) replayExpand(entries []frontierEntry, workers int) []frontierEntry {
	expandOne := func(fes []frontierEntry) []frontierEntry {
		var out []frontierEntry
		var buf []spec.Succ    // goroutine-local, reused across the slice
		var sc fp.OrbitScratch // goroutine-local orbit-hash scratch
		for _, fe := range fes {
			buf = c.nextInto(fe.state, buf[:0])
			for i := range buf {
				f, _ := c.canonicalFPScratch(buf[i].State, &sc)
				out = append(out, frontierEntry{state: buf[i].State, fp: f})
			}
		}
		return out
	}
	if len(entries) < 2*workers || workers == 1 {
		return expandOne(entries)
	}
	outs := make([][]frontierEntry, workers)
	var wg sync.WaitGroup
	size := (len(entries) + workers - 1) / workers
	for i := 0; i < workers; i++ {
		lo := i * size
		hi := min(lo+size, len(entries))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			outs[i] = expandOne(entries[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	var all []frontierEntry
	for _, o := range outs {
		all = append(all, o...)
	}
	return all
}
