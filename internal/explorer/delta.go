package explorer

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/sandtable-go/sandtable/internal/fpset"
)

// Incremental crash-safe checkpoints. After the first full snapshot
// (checkpoint.snap, see checkpoint.go) each further checkpoint appends one
// delta block to an append-only log instead of rewriting the whole set:
//
//	checkpoint.delta  — delta blocks:
//	    magic[8]="SNDTBLDL" payloadLen[u32] crc32[u32 of payload] payload
//	    payload: headerLen[u32] headerJSON (full snapshotHeader at the
//	             delta's depth) frontierCount[u64] frontierFP[u64]...
//	             recordCount[u64] fpset records (20 bytes each: fp, parent,
//	             depth) for every entry with Depth in (prevDepth, depth]
//	checkpoint.commit — JSON commit record naming the number of valid bytes
//	    of the delta log, written via temp file + fsync + atomic rename
//	    after the delta append is synced.
//
// The delta's record set is exactly "entries discovered since the previous
// checkpoint": once BFS level P completes, every edge at depth <= P is
// final (the equal-depth tie-break can no longer fire), so earlier
// checkpoints already hold those records' final values and never need
// patching.
//
// Commit protocol: append+fsync the delta block, then publish it by
// atomically renaming a fresh commit record over checkpoint.commit. A crash
// mid-append leaves a torn tail beyond the committed length, which recovery
// truncates; a crash before the rename leaves the old commit record naming
// the old length — same outcome. Committed bytes that fail their CRC mean
// real corruption and fail the resume loudly.
//
// The commit record also names the base snapshot's own CRC, tying the chain
// to its base: after a compaction (full rewrite of checkpoint.snap) crashes
// between the snapshot rename and the chain reset, the stale chain's
// base CRC no longer matches and the chain is ignored — correct, because a
// compacted base supersedes every delta written against its predecessor.

const (
	// deltaFile is the append-only delta log within CheckpointOptions.Dir.
	deltaFile = "checkpoint.delta"
	// commitFile is the atomically renamed commit record.
	commitFile = "checkpoint.commit"
	// deltaMagic starts every delta block.
	deltaMagic = "SNDTBLDL"
)

// commitRecord is the JSON content of checkpoint.commit.
type commitRecord struct {
	Version int `json:"version"`
	// BaseCRC is the trailing CRC of the checkpoint.snap the chain extends.
	BaseCRC uint32 `json:"base_crc"`
	// DeltaBytes is the number of valid bytes of checkpoint.delta.
	DeltaBytes int64 `json:"delta_bytes"`
	// Deltas is the number of blocks within DeltaBytes.
	Deltas int `json:"deltas"`
	// Depth is the BFS depth the chain's last block checkpoints.
	Depth int `json:"depth"`
}

// deltaBlock is one decoded block of the delta log.
type deltaBlock struct {
	header snapshotHeader
	fps    []uint64
	recs   []deltaRec
}

// deltaRec is one fpset record carried by a delta block.
type deltaRec struct {
	fp, parent uint64
	depth      int32
}

// appendDelta builds and appends one delta block covering (prevDepth,
// depth], starting at byte offset committed of the delta log, and publishes
// it with a commit record. Returns the block's byte length. On error the
// previously committed chain is untouched (a partial append beyond the
// committed length is overwritten by the next attempt and truncated by
// recovery).
func (ck *checkpointer) appendDelta(c *Checker, res *Result, depth int, fps []uint64, elapsed time.Duration) (int64, error) {
	hdr := buildHeader(ck.opts, c, res, depth, elapsed)
	hb, err := json.Marshal(hdr)
	if err != nil {
		return 0, err
	}
	var payload bytes.Buffer
	var scratch [20]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(hb)))
	payload.Write(scratch[:4])
	payload.Write(hb)
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(fps)))
	payload.Write(scratch[:8])
	for _, f := range fps {
		binary.LittleEndian.PutUint64(scratch[:8], f)
		payload.Write(scratch[:8])
	}
	var recs bytes.Buffer
	count := uint64(0)
	rerr := c.visited.RangeNewer(int32(ck.lastDepth), func(fp uint64, e fpset.Edge) bool {
		binary.LittleEndian.PutUint64(scratch[0:8], fp)
		binary.LittleEndian.PutUint64(scratch[8:16], e.Parent)
		binary.LittleEndian.PutUint32(scratch[16:20], uint32(e.Depth))
		recs.Write(scratch[:20])
		count++
		return true
	})
	if rerr != nil {
		return 0, fmt.Errorf("delta records: %w", rerr)
	}
	binary.LittleEndian.PutUint64(scratch[:8], count)
	payload.Write(scratch[:8])
	payload.Write(recs.Bytes())

	f, err := os.OpenFile(filepath.Join(ck.opts.Dir, deltaFile), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(ck.deltaBytes, io.SeekStart); err != nil {
		return 0, err
	}
	w := ckWriterWrap(f)
	var head [16]byte
	copy(head[:8], deltaMagic)
	binary.LittleEndian.PutUint32(head[8:12], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(head[12:16], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	blockLen := int64(16 + payload.Len())
	rec := commitRecord{
		Version:    snapVersion,
		BaseCRC:    ck.baseCRC,
		DeltaBytes: ck.deltaBytes + blockLen,
		Deltas:     ck.deltaCount + 1,
		Depth:      depth,
	}
	if err := writeCommit(ck.opts.Dir, rec); err != nil {
		return 0, err
	}
	return blockLen, nil
}

// writeCommit publishes a commit record atomically (temp + fsync + rename),
// then best-effort fsyncs the directory so the rename itself is durable.
func writeCommit(dir string, rec commitRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "commit-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after successful rename
	}()
	if _, err := ckWriterWrap(tmp).Write(b); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, commitFile)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadDeltaChain reads and validates the committed delta chain for a base
// snapshot with the given CRC. It returns the decoded blocks in append
// order, or nil when there is no (usable) chain: no commit record, or a
// chain written against a different base (stale after a crashed
// compaction). A torn tail beyond the committed length is truncated so
// later appends start clean; committed bytes that fail validation are an
// error (resume fails loudly rather than silently losing progress).
func loadDeltaChain(dir string, baseCRC uint32) ([]deltaBlock, *commitRecord, error) {
	commitPath := filepath.Join(dir, commitFile)
	deltaPath := filepath.Join(dir, deltaFile)
	cb, err := os.ReadFile(commitPath)
	if os.IsNotExist(err) {
		// No commit: any delta bytes on disk are uncommitted scratch.
		os.Remove(deltaPath)
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var rec commitRecord
	if err := json.Unmarshal(cb, &rec); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", commitPath, err)
	}
	if rec.Version != snapVersion {
		return nil, nil, fmt.Errorf("%s: version %d, this build reads %d", commitPath, rec.Version, snapVersion)
	}
	if rec.BaseCRC != baseCRC {
		// Chain belongs to an older base: a compaction replaced the base
		// (which supersedes these deltas) and crashed before clearing the
		// chain. Safe to discard.
		os.Remove(commitPath)
		os.Remove(deltaPath)
		return nil, nil, nil
	}
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		return nil, nil, fmt.Errorf("%s names %d delta bytes: %w", commitPath, rec.DeltaBytes, err)
	}
	if int64(len(raw)) < rec.DeltaBytes {
		return nil, nil, fmt.Errorf("%s: committed %d bytes but log holds %d (delta log corrupt)", deltaPath, rec.DeltaBytes, len(raw))
	}
	if int64(len(raw)) > rec.DeltaBytes {
		// Torn tail from an append that crashed before committing.
		if err := os.Truncate(deltaPath, rec.DeltaBytes); err != nil {
			return nil, nil, fmt.Errorf("%s: truncating torn tail: %w", deltaPath, err)
		}
		raw = raw[:rec.DeltaBytes]
	}
	var blocks []deltaBlock
	for len(raw) > 0 {
		if len(raw) < 16 || string(raw[:8]) != deltaMagic {
			return nil, nil, fmt.Errorf("%s: bad delta block magic at offset %d", deltaPath, rec.DeltaBytes-int64(len(raw)))
		}
		plen := int(binary.LittleEndian.Uint32(raw[8:12]))
		want := binary.LittleEndian.Uint32(raw[12:16])
		if len(raw) < 16+plen {
			return nil, nil, fmt.Errorf("%s: truncated committed delta block", deltaPath)
		}
		payload := raw[16 : 16+plen]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, nil, fmt.Errorf("%s: delta block checksum mismatch (log corrupt)", deltaPath)
		}
		blk, err := parseDeltaPayload(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", deltaPath, err)
		}
		blocks = append(blocks, blk)
		raw = raw[16+plen:]
	}
	if len(blocks) != rec.Deltas {
		return nil, nil, fmt.Errorf("%s: %d blocks committed, %d found", deltaPath, rec.Deltas, len(blocks))
	}
	return blocks, &rec, nil
}

func parseDeltaPayload(p []byte) (deltaBlock, error) {
	var blk deltaBlock
	if len(p) < 4 {
		return blk, fmt.Errorf("truncated delta header")
	}
	hlen := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if len(p) < hlen {
		return blk, fmt.Errorf("truncated delta header")
	}
	if err := json.Unmarshal(p[:hlen], &blk.header); err != nil {
		return blk, fmt.Errorf("delta header: %w", err)
	}
	p = p[hlen:]
	if len(p) < 8 {
		return blk, fmt.Errorf("truncated delta frontier")
	}
	fcount := binary.LittleEndian.Uint64(p[:8])
	p = p[8:]
	if uint64(len(p)) < 8*fcount {
		return blk, fmt.Errorf("truncated delta frontier")
	}
	blk.fps = make([]uint64, 0, fcount)
	for i := uint64(0); i < fcount; i++ {
		blk.fps = append(blk.fps, binary.LittleEndian.Uint64(p[:8]))
		p = p[8:]
	}
	if len(p) < 8 {
		return blk, fmt.Errorf("truncated delta records")
	}
	rcount := binary.LittleEndian.Uint64(p[:8])
	p = p[8:]
	if uint64(len(p)) != 20*rcount {
		return blk, fmt.Errorf("delta records: %d bytes for %d records", len(p), rcount)
	}
	blk.recs = make([]deltaRec, 0, rcount)
	for i := uint64(0); i < rcount; i++ {
		blk.recs = append(blk.recs, deltaRec{
			fp:     binary.LittleEndian.Uint64(p[0:8]),
			parent: binary.LittleEndian.Uint64(p[8:16]),
			depth:  int32(binary.LittleEndian.Uint32(p[16:20])),
		})
		p = p[20:]
	}
	return blk, nil
}
