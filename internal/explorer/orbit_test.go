package explorer

import (
	"fmt"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
	scraft "github.com/sandtable-go/sandtable/internal/specs/craft"
	sgso "github.com/sandtable-go/sandtable/internal/specs/gosyncobj"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
	"github.com/sandtable-go/sandtable/internal/specs/zabkeeper"
)

// orbitDiffScenarios are the machines the canonicalization differential runs
// over: one per OrbitHasher implementation family (raftbase twice — two
// systems with different action vocabularies — plus zabkeeper and toy).
// maxWorkers is 1 for zabkeeper: its successor enumeration does not
// perfectly commute with node permutation, so with symmetry on the explored
// closure depends on which orbit member each worker stores first — a
// pre-existing, pipeline-independent wobble under parallel scheduling. At
// Workers=1 scheduling is deterministic and the differential is exact.
func orbitDiffScenarios() []struct {
	name       string
	maxWorkers int
	mk         func() spec.Machine
} {
	cfg := spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}}
	raftBudget := spec.Budget{Name: "orbitdiff", MaxTimeouts: 3, MaxCrashes: 1, MaxRestarts: 1, MaxRequests: 1, MaxBuffer: 3}
	zabBudget := spec.Budget{Name: "orbitdiff", MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 3}
	return []struct {
		name       string
		maxWorkers int
		mk         func() spec.Machine
	}{
		{"gosyncobj", 4, func() spec.Machine { return sgso.New(cfg, raftBudget, bugdb.AllBugs("gosyncobj")) }},
		{"craft", 4, func() spec.Machine { return scraft.New(cfg, raftBudget, bugdb.NoBugs()) }},
		{"zabkeeper", 1, func() spec.Machine { return zabkeeper.New(cfg, zabBudget, bugdb.NoBugs()) }},
		{"toy", 4, func() spec.Machine { return &toy.LostUpdate{N: 3} }},
	}
}

// coreSignature is the subset of resultSignature that is exact at every
// worker count even under symmetry reduction. (Transitions and DedupHits
// are exact too for machines whose successor counts are orbit-invariant,
// but with symmetry on the stored representative of an orbit is whichever
// member a worker inserts first, and zabkeeper's successor *count* is not
// perfectly invariant across orbit members — a pre-existing ±1–2 wobble at
// >1 workers on the seed tree, pipeline-independent. The canonical
// fingerprint set itself, and hence every field below, stays exact.)
func coreSignature(t *testing.T, res *Result) string {
	t.Helper()
	sig := fmt.Sprintf("distinct=%d maxdepth=%d stop=%q exhausted=%v goal=%v violations=%d\n",
		res.DistinctStates, res.MaxDepth, res.StopReason, res.Exhausted, res.GoalReached, len(res.Violations))
	for _, v := range res.Violations {
		sig += v.String() + "\n"
		if v.Trace != nil {
			sig += v.Trace.Format(true) + "\n"
		}
	}
	return sig
}

// TestOrbitCanonicalizationEquivalence is the end-to-end differential gate
// for the incremental canonicalization pipeline: for every OrbitHasher
// family, an exploration with the orbit fast path must match the same
// exploration forced onto the flat per-permutation path with FlatCanon —
// byte-identical in every Result field and the symmetry-hit profile at
// Workers=1 (where scheduling is deterministic), and identical in every
// schedule-exact field (the canonical fingerprint set: distinct states,
// depths, stop metadata, violations with traces) at every worker count.
// Any fingerprint the incremental path got wrong would split or merge
// orbits and move the distinct-state count.
func TestOrbitCanonicalizationEquivalence(t *testing.T) {
	for _, sc := range orbitDiffScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			var baseCore, baseFull string
			for _, workers := range []int{1, 2, 4} {
				if workers > sc.maxWorkers {
					continue
				}
				for _, flat := range []bool{false, true} {
					opts := Options{
						Workers:    workers,
						Symmetry:   true,
						FlatCanon:  flat,
						MaxStates:  20_000,
						RecordVars: true,
						Cover:      true,
					}
					res := NewChecker(sc.mk(), opts).Run()
					if res.Err != nil {
						t.Fatalf("workers=%d flat=%v: run failed: %v", workers, flat, res.Err)
					}
					if res.DistinctStates == 0 {
						t.Fatalf("workers=%d flat=%v: no states explored", workers, flat)
					}
					core := coreSignature(t, res)
					if baseCore == "" {
						baseCore = core
					} else if core != baseCore {
						t.Fatalf("workers=%d flat=%v diverged:\n--- baseline ---\n%s--- got ---\n%s",
							workers, flat, baseCore, core)
					}
					if workers == 1 {
						full := resultSignature(t, res) + fmt.Sprintf("symhits=%d\n", res.Cover.SymmetryHits)
						if baseFull == "" {
							baseFull = full
						} else if full != baseFull {
							t.Fatalf("serial flat=%v diverged from orbit pipeline:\n--- baseline ---\n%s--- got ---\n%s",
								flat, baseFull, full)
						}
					}
				}
			}
		})
	}
}

// TestOrbitCanonicalizationCounters asserts the pipeline attribution
// metrics: a symmetric run on an OrbitHasher machine serves every
// canonicalization from the orbit path (flat == 0), forcing FlatCanon flips
// both, and the totals agree with Transitions + the machine's initial
// states on the single-process path.
func TestOrbitCanonicalizationCounters(t *testing.T) {
	run := func(flat bool) (*Result, int64, int64) {
		reg := obs.NewRegistry()
		m := sgso.New(spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}},
			spec.Budget{Name: "cnt", MaxTimeouts: 2, MaxBuffer: 3}, bugdb.NoBugs())
		opts := Options{Symmetry: true, FlatCanon: flat, MaxStates: 5_000, Metrics: reg}
		res := NewChecker(m, opts).Run()
		return res, reg.Gauge("explorer.canonical.orbit").Value(), reg.Gauge("explorer.canonical.flat").Value()
	}

	res, orbit, flat := run(false)
	if orbit == 0 {
		t.Fatal("orbit pipeline served no canonicalizations on an OrbitHasher machine")
	}
	if flat != 0 {
		t.Fatalf("flat pipeline counted %d canonicalizations with the orbit path active", flat)
	}
	inits := int64(len(sgso.New(spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}},
		spec.Budget{Name: "cnt", MaxTimeouts: 2, MaxBuffer: 3}, bugdb.NoBugs()).Init()))
	if want := res.Transitions + inits; orbit != want {
		t.Fatalf("orbit canonicalizations = %d, want transitions+inits = %d", orbit, want)
	}

	res2, orbit2, flat2 := run(true)
	if flat2 == 0 || orbit2 != 0 {
		t.Fatalf("FlatCanon: flat=%d orbit=%d, want flat>0 orbit=0", flat2, orbit2)
	}
	if res2.Transitions != res.Transitions {
		t.Fatalf("pipelines explored different spaces: %d vs %d transitions", res2.Transitions, res.Transitions)
	}
}
