package explorer

import (
	"fmt"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
	"github.com/sandtable-go/sandtable/internal/trace"
)

func newToy(n int, atomic bool) spec.Machine { return &toy.LostUpdate{N: n, Atomic: atomic} }

func TestBFSFindsLostUpdateAtMinimalDepth(t *testing.T) {
	c := NewChecker(newToy(2, false), Options{StopAtFirstViolation: true, RecordVars: true})
	res := c.Run()
	v := res.FirstViolation()
	if v == nil {
		t.Fatalf("expected a violation, got none (%+v)", res)
	}
	// Minimal counterexample: Read(0), Read(1), Write(0), Write(1).
	if v.Depth != 4 {
		t.Errorf("violation depth = %d, want 4", v.Depth)
	}
	if v.Invariant != "NoLostUpdate" {
		t.Errorf("invariant = %q, want NoLostUpdate", v.Invariant)
	}
	if v.Trace == nil {
		t.Fatalf("violation has no reconstructed trace")
	}
	if got := v.Trace.Depth(); got != 4 {
		t.Errorf("trace depth = %d, want 4", got)
	}
	// The trace must be a real execution: 2 reads then 2 writes in some
	// interleaving where both reads precede at least one overlapping write.
	reads, writes := 0, 0
	for _, e := range v.Trace.Events() {
		switch e.Action {
		case "Read":
			reads++
		case "Write":
			writes++
		default:
			t.Errorf("unexpected action %q", e.Action)
		}
	}
	if reads != 2 || writes != 2 {
		t.Errorf("trace has %d reads, %d writes; want 2 and 2", reads, writes)
	}
}

func TestBFSAtomicModelHasNoViolation(t *testing.T) {
	res := NewChecker(newToy(3, true), Options{StopAtFirstViolation: true}).Run()
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("atomic model should satisfy the invariant, got %v", v)
	}
	if !res.Exhausted {
		t.Errorf("small space should be exhausted, stop reason %q", res.StopReason)
	}
}

// resultSignature renders every externally observable field of a Result —
// counters, stop metadata, and each violation with its reconstructed trace —
// so two runs can be compared for exact equality.
func resultSignature(t *testing.T, res *Result) string {
	t.Helper()
	sig := fmt.Sprintf("distinct=%d transitions=%d dedup=%d maxqueue=%d maxdepth=%d stop=%q exhausted=%v goal=%v violations=%d\n",
		res.DistinctStates, res.Transitions, res.DedupHits, res.MaxQueueLen,
		res.MaxDepth, res.StopReason, res.Exhausted, res.GoalReached, len(res.Violations))
	for _, v := range res.Violations {
		sig += v.String() + "\n"
		if v.Trace != nil {
			sig += v.Trace.Format(true) + "\n"
		}
	}
	return sig
}

// TestBFSExhaustsAndIsDeterministic asserts the checker's central contract:
// byte-identical results regardless of worker count — not just the distinct
// state count, but every counter, the stop reason, and every reconstructed
// counterexample. Three stop regimes are crossed with Workers ∈ {1,2,4,8}:
// exhaustive search (violations recorded, exploration continues),
// stop-at-first-violation, and a MaxStates bound that lands mid-level (the
// N=7 space has >16k-state frontiers, so the bound trips at an interior
// block boundary and the partial-level stop path must also be scheduling-
// independent).
func TestBFSExhaustsAndIsDeterministic(t *testing.T) {
	scenarios := []struct {
		name string
		mk   func() spec.Machine
		opts Options
	}{
		{"exhaustive", func() spec.Machine { return newToy(3, false) }, Options{RecordVars: true}},
		{"stop-at-first-violation", func() spec.Machine { return newToy(3, false) },
			Options{StopAtFirstViolation: true, RecordVars: true}},
		{"max-states-mid-level", func() spec.Machine { return newToy(7, false) },
			Options{MaxStates: 40_000}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var base string
			for _, workers := range []int{1, 2, 4, 8} {
				opts := sc.opts
				opts.Workers = workers
				res := NewChecker(sc.mk(), opts).Run()
				if res.DistinctStates == 0 {
					t.Fatal("no states explored")
				}
				sig := resultSignature(t, res)
				if base == "" {
					base = sig
					continue
				}
				if sig != base {
					t.Errorf("workers=%d diverged from workers=1:\n--- w1 ---\n%s--- w%d ---\n%s",
						workers, base, workers, sig)
				}
			}
		})
	}
}

func TestSymmetryReducesStateCount(t *testing.T) {
	plain := NewChecker(newToy(3, true), Options{Symmetry: false}).Run()
	sym := NewChecker(newToy(3, true), Options{Symmetry: true}).Run()
	if sym.DistinctStates >= plain.DistinctStates {
		t.Errorf("symmetry did not reduce states: sym=%d plain=%d", sym.DistinctStates, plain.DistinctStates)
	}
	if !sym.Exhausted || !plain.Exhausted {
		t.Errorf("both runs should exhaust the space")
	}
}

func TestSymmetryPreservesViolationDetection(t *testing.T) {
	res := NewChecker(newToy(3, false), DefaultOptions()).Run()
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("symmetric search missed the violation")
	}
	if v.Trace == nil || v.Trace.Depth() != v.Depth {
		t.Fatalf("reconstructed trace depth mismatch: trace=%v depth=%d", v.Trace, v.Depth)
	}
}

func TestMaxStatesAndDeadlineStops(t *testing.T) {
	res := NewChecker(newToy(4, false), Options{MaxStates: 10}).Run()
	if res.StopReason != "max-states" && res.StopReason != "violation" {
		t.Errorf("stop reason = %q, want max-states", res.StopReason)
	}
	res = NewChecker(newToy(4, false), Options{Deadline: time.Nanosecond}).Run()
	if res.StopReason == "" {
		t.Error("missing stop reason under deadline")
	}
}

func TestMaxDepthBoundsSearch(t *testing.T) {
	res := NewChecker(newToy(2, false), Options{MaxDepth: 2}).Run()
	if res.MaxDepth > 2 {
		t.Errorf("search exceeded depth bound: %d", res.MaxDepth)
	}
	if res.StopReason != "max-depth" {
		t.Errorf("stop reason = %q, want max-depth", res.StopReason)
	}
}

func TestSimulationWalksAreSeededAndReproducible(t *testing.T) {
	sim := NewSimulator(newToy(3, false), SimOptions{Seed: 42, CheckInvariants: true})
	w1 := sim.Walk(42)
	w2 := sim.Walk(42)
	if w1.Stats.Depth != w2.Stats.Depth {
		t.Errorf("same seed produced different depths: %d vs %d", w1.Stats.Depth, w2.Stats.Depth)
	}
	e1, e2 := w1.Trace.Events(), w2.Trace.Events()
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].String() != e2[i].String() {
			t.Errorf("step %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestSimulationTerminalReasons(t *testing.T) {
	sim := NewSimulator(newToy(2, true), SimOptions{})
	w := sim.Walk(1)
	if w.Stats.Terminal != "deadlock" {
		t.Errorf("terminal = %q, want deadlock (all processes finish)", w.Stats.Terminal)
	}
	if w.Stats.Depth != 2 {
		t.Errorf("atomic 2-process walk depth = %d, want 2", w.Stats.Depth)
	}

	sim = NewSimulator(newToy(3, false), SimOptions{MaxDepth: 1})
	w = sim.Walk(1)
	if w.Stats.Terminal != "max-depth" || w.Stats.Depth != 1 {
		t.Errorf("bounded walk: terminal=%q depth=%d", w.Stats.Terminal, w.Stats.Depth)
	}
}

func TestAggregateStats(t *testing.T) {
	sim := NewSimulator(newToy(3, false), SimOptions{Seed: 7, CheckInvariants: true})
	walks := sim.Walks(50)
	agg := Aggregate(walks)
	if agg.Walks != 50 {
		t.Errorf("walks = %d", agg.Walks)
	}
	if agg.BranchCoverage != 2 { // Read and Write
		t.Errorf("branch coverage = %d, want 2", agg.BranchCoverage)
	}
	if agg.MaxDepth != 6 { // 3 processes * 2 steps
		t.Errorf("max depth = %d, want 6", agg.MaxDepth)
	}
	if agg.Violations == 0 {
		t.Error("random walks over the racy model should hit violations")
	}
}

func TestStatelessSearchCountsRedundantWork(t *testing.T) {
	m := newToy(3, false)
	stateful := NewChecker(m, Options{Symmetry: false}).Run()
	stateless := StatelessSearch(m, StatelessOptions{})
	if !stateless.Exhausted {
		t.Fatalf("stateless search should exhaust the toy space")
	}
	if stateless.Visits <= int64(stateful.DistinctStates) {
		t.Errorf("stateless visits (%d) should exceed distinct states (%d)",
			stateless.Visits, stateful.DistinctStates)
	}
	if stateless.Violations == 0 {
		t.Error("stateless search missed the violation")
	}
	if f := stateless.RedundancyFactor(stateful.DistinctStates); f <= 1 {
		t.Errorf("redundancy factor = %v, want > 1", f)
	}
}

func TestViolationTraceVarsRecorded(t *testing.T) {
	res := NewChecker(newToy(2, false), Options{RecordVars: true, StopAtFirstViolation: true}).Run()
	v := res.FirstViolation()
	if v == nil || v.Trace == nil {
		t.Fatal("no violation trace")
	}
	if v.Trace.Init == nil {
		t.Error("trace init vars missing")
	}
	last := v.Trace.Steps[len(v.Trace.Steps)-1]
	if last.Vars["mem"] != "1" {
		t.Errorf("final mem = %q, want 1 (the lost update)", last.Vars["mem"])
	}
}

func TestTraceEventStringAndFormat(t *testing.T) {
	res := NewChecker(newToy(2, false), DefaultOptions()).Run()
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("no violation")
	}
	s := v.Trace.Format(true)
	if s == "" {
		t.Fatal("empty trace format")
	}
	var ev trace.Event
	ev = v.Trace.Events()[0]
	if ev.String() == "" {
		t.Error("empty event string")
	}
}
