package explorer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/sandtable-go/sandtable/internal/spec"
)

// Out-of-core BFS frontiers. The level-synchronous search reads one frontier
// sequentially while appending the next, so both sides map naturally onto
// disk: under a memory budget the accumulating side flushes sorted runs of
// (fingerprint, encoded state) records, and the consuming side merge-reads
// those runs back as expansion blocks. A k-way merge of sorted unique runs
// reproduces exactly the globally fingerprint-sorted level sequence the
// in-RAM path produces, so block composition — and with it every block-level
// stop decision and the final result — is identical whether or not a level
// spilled, at every worker count.
//
// Frontier spilling needs states to round-trip through bytes, so it is only
// available on machines implementing spec.StateCodec; the fingerprint set
// (which dominates long runs) spills regardless.

// levelFrontier is one BFS level awaiting expansion: a sorted in-RAM tail
// plus zero or more sorted disk runs.
type levelFrontier struct {
	mem   []frontierEntry
	runs  []*frontierRun
	codec spec.StateCodec
	total int
}

// newMemFrontier wraps a fully in-RAM (sorted) level.
func newMemFrontier(entries []frontierEntry) *levelFrontier {
	return &levelFrontier{mem: entries, total: len(entries)}
}

// size is the number of states in the level.
func (lf *levelFrontier) size() int { return lf.total }

// inRAM reports whether the whole level is resident.
func (lf *levelFrontier) inRAM() bool { return len(lf.runs) == 0 }

// discard deletes the level's spill files (no-op for in-RAM levels).
func (lf *levelFrontier) discard() {
	for _, r := range lf.runs {
		os.Remove(r.path)
	}
	lf.runs = nil
}

// fps appends every fingerprint in the level to dst — the checkpoint
// writer's view of the frontier. Disk runs are streamed without decoding
// states.
func (lf *levelFrontier) fps(dst []uint64) ([]uint64, error) {
	for _, fe := range lf.mem {
		dst = append(dst, fe.fp)
	}
	for _, r := range lf.runs {
		var err error
		if dst, err = r.appendFPs(dst); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// frontierRun is one immutable sorted spill run of a level. Record layout:
// fp[u64] encLen[u32] encoded-state bytes. Runs are session scratch —
// recreated by replay after a crash, never recovered.
type frontierRun struct {
	path  string
	count int
	bytes int64
}

// writeFrontierRun writes sorted entries as a new run file.
func writeFrontierRun(path string, entries []frontierEntry, codec spec.StateCodec) (*frontierRun, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var hdr [12]byte
	var enc []byte
	total := int64(0)
	for _, fe := range entries {
		enc = codec.AppendState(enc[:0], fe.state)
		binary.LittleEndian.PutUint64(hdr[0:8], fe.fp)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(enc)))
		if _, err := bw.Write(hdr[:]); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
		if _, err := bw.Write(enc); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
		total += 12 + int64(len(enc))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, err
	}
	return &frontierRun{path: path, count: len(entries), bytes: total}, nil
}

// appendFPs streams only the fingerprints of a run.
func (r *frontierRun) appendFPs(dst []uint64) ([]uint64, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [12]byte
	for i := 0; i < r.count; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("frontier run %s: %w", r.path, err)
		}
		dst = append(dst, binary.LittleEndian.Uint64(hdr[0:8]))
		if _, err := br.Discard(int(binary.LittleEndian.Uint32(hdr[8:12]))); err != nil {
			return nil, fmt.Errorf("frontier run %s: %w", r.path, err)
		}
	}
	return dst, nil
}

// frontierCursor merge-reads a spilled level back in global fingerprint
// order, one expansion block at a time.
type frontierCursor struct {
	srcs []*frontierRunReader
	mem  []frontierEntry
	mi   int
}

// cursor opens the level for merged sequential reading. Callers must close
// it. In-RAM levels do not need a cursor (iterate lf.mem directly).
func (lf *levelFrontier) cursor() (*frontierCursor, error) {
	c := &frontierCursor{mem: lf.mem}
	for _, r := range lf.runs {
		rd, err := newFrontierRunReader(r, lf.codec)
		if err != nil {
			c.close()
			return nil, err
		}
		c.srcs = append(c.srcs, rd)
	}
	return c, nil
}

func (c *frontierCursor) close() {
	for _, rd := range c.srcs {
		rd.close()
	}
}

// nextBlock fills buf with up to n entries in global fingerprint order; an
// empty result means the level is exhausted.
func (c *frontierCursor) nextBlock(buf []frontierEntry, n int) ([]frontierEntry, error) {
	for len(buf) < n {
		best := -1
		var bestFP uint64
		for i, rd := range c.srcs {
			if rd.ok && (best == -1 || rd.cur.fp < bestFP) {
				best = i
				bestFP = rd.cur.fp
			}
		}
		if c.mi < len(c.mem) && (best == -1 || c.mem[c.mi].fp < bestFP) {
			buf = append(buf, c.mem[c.mi])
			c.mi++
			continue
		}
		if best == -1 {
			break
		}
		buf = append(buf, c.srcs[best].cur)
		if err := c.srcs[best].advance(); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// frontierRunReader streams one run, decoding states as it goes.
type frontierRunReader struct {
	f     *os.File
	br    *bufio.Reader
	codec spec.StateCodec
	left  int
	enc   []byte
	cur   frontierEntry
	ok    bool
}

func newFrontierRunReader(r *frontierRun, codec spec.StateCodec) (*frontierRunReader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, err
	}
	rd := &frontierRunReader{f: f, br: bufio.NewReaderSize(f, 1<<16), codec: codec, left: r.count}
	if err := rd.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return rd, nil
}

func (rd *frontierRunReader) close() { rd.f.Close() }

func (rd *frontierRunReader) advance() error {
	if rd.left == 0 {
		rd.ok = false
		return nil
	}
	var hdr [12]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		return fmt.Errorf("frontier run: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if cap(rd.enc) < n {
		rd.enc = make([]byte, n)
	}
	rd.enc = rd.enc[:n]
	if _, err := io.ReadFull(rd.br, rd.enc); err != nil {
		return fmt.Errorf("frontier run: %w", err)
	}
	st, _, err := rd.codec.DecodeState(rd.enc)
	if err != nil {
		return fmt.Errorf("frontier run decode: %w", err)
	}
	rd.left--
	rd.cur = frontierEntry{state: st, fp: binary.LittleEndian.Uint64(hdr[0:8])}
	rd.ok = true
	return nil
}

// frontierSink accumulates the next level under a memory budget, flushing
// the in-RAM buffer to a sorted run whenever it crosses the spill threshold.
// All methods are nil-receiver-safe (a nil sink is the unbudgeted path).
type frontierSink struct {
	mc      *memController
	depth   int
	runs    []*frontierRun
	spilled int
}

// maybeSpill flushes next to disk when it has outgrown the spill threshold,
// returning the (possibly emptied) buffer. A write failure degrades
// gracefully: the level stays in RAM and frontier spilling is disabled for
// the rest of the run with a warning.
func (sk *frontierSink) maybeSpill(next []frontierEntry) []frontierEntry {
	if sk == nil {
		return next
	}
	mc := sk.mc
	if mc.frontierChunk == 0 || len(next) < mc.frontierChunk {
		return next
	}
	sortFrontier(next)
	mc.frontierSeq++
	path := filepath.Join(mc.dir, fmt.Sprintf("frontier-%06d.run", mc.frontierSeq))
	run, err := writeFrontierRun(path, next, mc.codec)
	if err != nil {
		mc.frontierChunk = 0
		mc.warnf("frontier spill failed, keeping level in RAM: %v", err)
		return next
	}
	sk.runs = append(sk.runs, run)
	sk.spilled += run.count
	if m := mc.m; m != nil {
		m.frontierSpillBytes.Add(run.bytes)
		m.frontierSpilledEntries.Add(int64(run.count))
	}
	for i := range next {
		next[i].state = nil
	}
	return next[:0]
}

// spilledCount is the number of next-level states already on disk.
func (sk *frontierSink) spilledCount() int {
	if sk == nil {
		return 0
	}
	return sk.spilled
}

// finish seals the level: the sorted in-RAM remainder plus any spilled runs
// become the next levelFrontier.
func (sk *frontierSink) finish(next []frontierEntry) *levelFrontier {
	if sk == nil || len(sk.runs) == 0 {
		return newMemFrontier(next)
	}
	lf := &levelFrontier{mem: next, runs: sk.runs, codec: sk.mc.codec, total: len(next) + sk.spilled}
	return lf
}
