package explorer

import (
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"time"

	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/transport"
)

// Distributed level-synchronous BFS. The fingerprint space is partitioned
// across peers by transport.Owner (contiguous slices of the Mix64-remixed
// space, balanced even for symmetry-reduced min-of-orbit fingerprints), and
// every peer runs the same loop:
//
//  1. Expand its share of the frontier. Workers never insert into the
//     fingerprint set during expansion; each successor either hits the local
//     set (owned + already visited → a dedup hit, counted immediately) or is
//     buffered as a candidate (fp, parent, action, state).
//  2. Fold the workers' candidates: one survivor per fingerprint, smallest
//     parent wins, losers count as dedup hits. This is pure wire-volume
//     reduction — the owner-side merge would pick the same survivor.
//  3. DATA barrier: candidates are routed to their owners as sorted,
//     compressed blocks (transport.EncodeBlock). The coordinator's barrier
//     summary carries the checkpoint cadence decision.
//  4. Owner merge: local + inbound candidates are sorted by (fp, parent) and
//     merged per fingerprint group — smallest parent inserts, the rest are
//     dedup hits. Fresh states join the next frontier (fp-sorted by
//     construction) and are goal/invariant-checked here, at their owner.
//  5. RESOLVE barrier: summary-only exchange of cumulative counters,
//     next-frontier sizes, and violations. Every peer computes the same
//     global stop decision from the same summaries, so the cluster always
//     stops at the same level without any coordinator round trip.
//
// Determinism argument. A parent fingerprint is expanded by exactly one peer
// (its owner), so within one fingerprint's candidate group all parents are
// distinct and sorting by (fp, parent) is a total order independent of
// arrival order, peer count, and worker count. The surviving (parent, depth)
// edge is the minimum parent at minimal depth — exactly the tie-break
// fpset.Insert applies in single-process runs — and the next frontier is the
// same fp-sorted set of fresh states every configuration produces. By
// induction over levels, counters, violations, coverage, and traces match a
// single-process run byte for byte (MaxQueueLen and fpset probe counts are
// per-peer structural measures and are summed, not reproduced).
//
// The coverage profile a cluster produces is the canonical W=1 profile at
// every worker count: freshness is attributed in the serial merge, after the
// fold picked each fingerprint's min-parent first-generated candidate. This
// is strictly more deterministic than single-process W>1 collection, where
// two actions reaching the same state within one level race for the fresh
// credit in per-action stats (totals are unaffected either way).
//
// Checkpoints are per-peer snapshots written at the same level on every peer
// (the coordinator drives the cadence through the data barrier), committed
// cluster-wide by a manifest the coordinator writes only after a resolve
// barrier confirms every peer's snapshot succeeded. Resume loads the
// manifest depth on every peer and re-validates compatibility at the hello
// barrier.

// PeerOptions configures one peer of a distributed exploration.
type PeerOptions struct {
	// Conn is this peer's endpoint of the cluster (transport.NewMesh for
	// in-process peers, transport.DialTCP for processes). The checker owns
	// the Conn and closes it when the run ends — including on failure, which
	// unblocks every other peer waiting at a barrier.
	Conn transport.Conn
}

// invalidAction marks a fired action missing from the declared vocabulary;
// the drain turns it into a run-fatal configuration error.
const invalidAction = ^uint16(0)

// clusterCand is one buffered candidate successor. Locally generated
// candidates carry the live state; inbound ones carry its wire encoding and
// are decoded only if they win their merge group.
type clusterCand struct {
	fp     uint64
	parent uint64
	action uint16
	state  spec.State
	enc    []byte
}

// clusterCtx is the per-run distributed context hung off the Checker.
type clusterCtx struct {
	conn      transport.Conn
	codec     spec.StateCodec
	self      int
	peers     int
	actions   []string
	actionIdx map[string]uint16
	seq       uint64 // next barrier tag; every peer calls Exchange in lockstep
}

func (cl *clusterCtx) exchange(blocks [][]byte, summary []byte) ([][]byte, [][]byte, error) {
	tag := cl.seq
	cl.seq++
	return cl.conn.Exchange(tag, blocks, summary)
}

// clusterHello is the first-barrier summary: every peer's model identity,
// validated all-to-all before any exploration.
type clusterHello struct {
	Label       string `json:"label,omitempty"`
	Machine     string `json:"machine"`
	Symmetry    bool   `json:"symmetry"`
	InitDigest  uint64 `json:"init_digest"`
	Peers       int    `json:"peers"`
	Partition   int    `json:"partition_version"`
	ResumeDepth int    `json:"resume_depth"` // -1 for a fresh run
}

// clusterData is the data-barrier summary. Only the coordinator's instance
// carries decisions; other peers send it empty.
type clusterData struct {
	// Checkpoint tells every peer to snapshot after merging this level.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// PruneBelow lets peers delete snapshots below the last committed
	// manifest depth.
	PruneBelow int `json:"prune_below,omitempty"`
}

// clusterResolve is the resolve-barrier summary: this peer's cumulative
// partial counters and the size of its next frontier.
type clusterResolve struct {
	Distinct     int             `json:"distinct"`
	Transitions  int64           `json:"transitions"`
	DedupHits    int64           `json:"dedup_hits"`
	NextFrontier int             `json:"next_frontier"`
	GoalReached  bool            `json:"goal_reached,omitempty"`
	DeadlineHit  bool            `json:"deadline_hit,omitempty"`
	CkErr        string          `json:"ck_err,omitempty"`
	Violations   []snapViolation `json:"violations,omitempty"` // cumulative, own share
}

// clusterFinal is the last-barrier summary: everything needed to assemble
// the identical global Result on every peer.
type clusterFinal struct {
	Distinct    int             `json:"distinct"`
	Transitions int64           `json:"transitions"`
	DedupHits   int64           `json:"dedup_hits"`
	MaxQueueLen int             `json:"max_queue_len"`
	GoalReached bool            `json:"goal_reached,omitempty"`
	Violations  []snapViolation `json:"violations,omitempty"`
	Cover       *obs.Cover      `json:"cover,omitempty"`
}

// clusterGlobals is the cluster-wide view a resolve barrier establishes.
type clusterGlobals struct {
	distinct int
	frontier int
	goal     bool
	deadline bool
	ckAllOK  bool
	viols    []snapViolation
}

// sortSnapViolations orders violations by (depth, fp, invariant) — the same
// total order sortViolations applies.
func sortSnapViolations(vs []snapViolation) {
	slices.SortFunc(vs, func(a, b snapViolation) int {
		if c := cmp.Compare(a.Depth, b.Depth); c != 0 {
			return c
		}
		if c := cmp.Compare(a.FP, b.FP); c != 0 {
			return c
		}
		return cmp.Compare(a.Invariant, b.Invariant)
	})
}

// lookupEdge resolves a fingerprint's parent edge, probing the owning peer
// when the fingerprint is not local — the trace-reconstruction path of a
// distributed run (coordinator only; other peers answer via ServeProbes).
func (c *Checker) lookupEdge(f uint64) (fpset.Edge, bool) {
	if cl := c.cluster; cl != nil {
		if owner := transport.Owner(f, cl.peers); owner != cl.self {
			parent, depth, ok, err := cl.conn.Probe(owner, f)
			if err != nil || !ok {
				return fpset.Edge{}, false
			}
			return fpset.Edge{Parent: parent, Depth: depth}, true
		}
	}
	return c.visited.Lookup(f)
}

// runCluster is the distributed counterpart of Run; see the file comment for
// the protocol and the determinism argument.
func (c *Checker) runCluster() *Result {
	start := time.Now()
	res := &Result{}
	conn := c.opts.Peer.Conn
	defer conn.Close()

	fail := func(reason string, err error) *Result {
		res.Err = err
		res.StopReason = reason
		return res
	}

	codec, ok := c.m.(spec.StateCodec)
	if !ok {
		return fail("config-error", fmt.Errorf("cluster: machine %q does not implement spec.StateCodec (states cannot cross peers)", c.m.Name()))
	}
	actions := spec.DeclaredActions(c.m)
	if len(actions) == 0 {
		return fail("config-error", fmt.Errorf("cluster: machine %q does not declare its action vocabulary (spec.ActionLister)", c.m.Name()))
	}
	if len(actions) > 0xFFFF {
		return fail("config-error", fmt.Errorf("cluster: %d declared actions exceed the wire format's 65535 limit", len(actions)))
	}
	if c.opts.MemBudget > 0 {
		return fail("config-error", errors.New("cluster: MemBudget is not supported in distributed runs (partitioning already divides the footprint)"))
	}

	cl := &clusterCtx{
		conn: conn, codec: codec, self: conn.Self(), peers: conn.Peers(),
		actions: actions, actionIdx: make(map[string]uint16, len(actions)),
	}
	for i, a := range actions {
		cl.actionIdx[a] = uint16(i)
	}
	c.cluster = cl

	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reporter := c.opts.newReporter()
	metrics := newRunMetrics(c.opts.Metrics)
	if c.opts.Metrics != nil {
		c.opts.Metrics.Gauge("transport.peers").Set(int64(cl.peers))
		c.opts.Metrics.Gauge("transport.peer_id").Set(int64(cl.self))
	}
	invs := c.m.Invariants()

	// Resume before the hello barrier so the loaded depth is validated
	// against every peer's.
	resumeDepth := -1
	var restored *clusterRestore
	if c.opts.Checkpoint.Resume {
		r, err := c.loadClusterSnapshot(cl)
		if err != nil {
			return fail("checkpoint-error", fmt.Errorf("resume: %w", err))
		}
		restored = r
		resumeDepth = r.header.Depth
	}

	if c.opts.Cover {
		res.Cover = obs.NewCover("bfs", actions)
		c.cover = res.Cover
	}

	// Hello barrier: all-to-all compatibility check. The transport handshake
	// already validated the run digest and cluster size for TCP; this covers
	// the in-process mesh too and produces better errors.
	hello := clusterHello{
		Label: c.opts.Checkpoint.Label, Machine: c.m.Name(), Symmetry: c.sym != nil,
		InitDigest: c.initDigest(), Peers: cl.peers,
		Partition: transport.PartitionVersion, ResumeDepth: resumeDepth,
	}
	hb, err := json.Marshal(hello)
	if err != nil {
		return fail("config-error", err)
	}
	_, hsums, err := cl.exchange(nil, hb)
	if err != nil {
		return fail("transport-error", fmt.Errorf("cluster hello: %w", err))
	}
	for q, raw := range hsums {
		if q == cl.self {
			continue
		}
		var h clusterHello
		if err := json.Unmarshal(raw, &h); err != nil {
			return fail("config-error", fmt.Errorf("cluster hello from peer %d: %w", q, err))
		}
		if h.Machine != hello.Machine || h.Symmetry != hello.Symmetry ||
			h.InitDigest != hello.InitDigest || h.Label != hello.Label ||
			h.Peers != hello.Peers || h.Partition != hello.Partition {
			return fail("config-error", fmt.Errorf("cluster: peer %d runs an incompatible model or configuration", q))
		}
		if h.ResumeDepth != resumeDepth {
			return fail("config-error", fmt.Errorf("cluster: peer %d resumes from depth %d, this peer from %d", q, h.ResumeDepth, resumeDepth))
		}
	}

	depth := 0
	var frontier []frontierEntry
	var restoredElapsed time.Duration
	var ownViols []snapViolation // cumulative violations found at this peer

	if restored != nil {
		hdr := restored.header
		res.Resumed = true
		res.DistinctStates = hdr.DistinctStates
		res.Transitions = hdr.Transitions
		res.DedupHits = hdr.DedupHits
		res.MaxQueueLen = hdr.MaxQueueLen
		res.MaxDepth = hdr.MaxDepth
		res.GoalReached = hdr.GoalReached
		ownViols = hdr.Violations
		restoredElapsed = time.Duration(hdr.ElapsedNs)
		depth = hdr.Depth
		frontier = restored.frontier
		if c.cover != nil {
			c.cover.ResumedAtDepth = depth
		}
	} else {
		// Init seeding: every peer canonicalises every initial state (they
		// are few) but keeps only its own share. A duplicate initial state
		// is a dedup hit at the owner of its fingerprint, so the global sum
		// matches a single-process run.
		seen := make(map[uint64]bool)
		for _, s := range c.m.Init() {
			f := c.canonicalFP(s)
			c.countCanon(1)
			if seen[f] {
				if transport.Owner(f, cl.peers) == cl.self {
					res.DedupHits++
				}
				continue
			}
			seen[f] = true
			if transport.Owner(f, cl.peers) != cl.self {
				continue
			}
			c.visited.Insert(f, f, 0)
			frontier = append(frontier, frontierEntry{state: s, fp: f})
			if c.opts.Goal != nil && c.opts.Goal(s) {
				res.GoalReached = true
			}
			if v := checkInvariants(invs, s, 0, f); v != nil {
				ownViols = append(ownViols, snapViolation{Invariant: v.Invariant, Error: v.Err.Error(), Depth: 0, FP: f})
			}
		}
		sortFrontier(frontier)
		res.DistinctStates = len(frontier)
		res.MaxQueueLen = len(frontier)
		if c.cover != nil {
			c.cover.Levels = append(c.cover.Levels, obs.LevelStats{
				Depth: 0, Frontier: len(frontier), Fresh: len(frontier),
			})
		}
	}

	// Depth-0 resolve: establishes the global frontier size, distinct count,
	// and violation set, putting fresh and resumed runs on the same footing.
	gl, err := c.clusterResolveBarrier(cl, res, len(frontier), ownViols, false, "")
	if err != nil {
		return fail("transport-error", fmt.Errorf("cluster resolve at depth %d: %w", depth, err))
	}
	gDistinct, gFrontier, gViols := gl.distinct, gl.frontier, gl.viols
	gDeadline := gl.deadline

	deadline := time.Time{}
	if c.opts.Deadline > 0 {
		deadline = start.Add(c.opts.Deadline)
	}

	pool := c.newExpandPool(workers, invs)
	defer pool.close()

	ck := c.newClusterCheckpointer()
	if ck != nil && restored != nil {
		ck.pruneBelow = resumeDepth
	}

	stop := ""
	for gFrontier > 0 {
		// Stop checks mirror the single-process loop top, evaluated on the
		// globals every peer derived from the same resolve summaries — so
		// every peer takes the same branch. Max-states and deadline are
		// level-granular here (single-process checks them mid-level), a
		// documented divergence for those stop reasons only.
		if c.opts.StopAtFirstViolation && len(gViols) > 0 {
			stop = "violation"
			break
		}
		if c.opts.MaxDepth > 0 && depth >= c.opts.MaxDepth {
			stop = "max-depth"
			break
		}
		if c.opts.MaxStates > 0 && gDistinct >= c.opts.MaxStates {
			stop = "max-states"
			break
		}
		if gDeadline {
			stop = "deadline"
			break
		}

		depth++

		var baseTrans, baseDedup, baseProbes int64
		var expanded int
		if c.cover != nil {
			baseTrans, baseDedup = res.Transitions, res.DedupHits
			baseProbes = c.visited.Stats().Probes
			expanded = len(frontier)
		}

		// Expand the local frontier into candidate buffers (no inserts).
		byFP := make(map[uint64]int, 2*len(frontier))
		var cands []clusterCand
		const block = 1 << 14
		for lo := 0; lo < len(frontier); lo += block {
			hi := min(lo+block, len(frontier))
			pool.expand(frontier[lo:hi], depth)
			for k := lo; k < hi; k++ {
				frontier[k].state = nil
			}
			if err := pool.drainClusterInto(res, depth, byFP, &cands); err != nil {
				return fail("config-error", err)
			}
			queueLen := (len(frontier) - hi) + len(cands)
			if queueLen > res.MaxQueueLen {
				res.MaxQueueLen = queueLen
			}
			metrics.publish(c, res, queueLen, depth, c.visited)
			reporter.Maybe(obs.Progress{
				DistinctStates: res.DistinctStates,
				QueueLen:       queueLen,
				Transitions:    res.Transitions,
				DedupHits:      res.DedupHits,
				Depth:          depth,
			})
		}
		// Route candidates to their owners: one (owner, fp) sort groups the
		// per-owner blocks contiguously, each internally in the fp order
		// AppendBlock requires. (Owner remixes the fingerprint to undo the
		// min-of-orbit bias of symmetry reduction, so it is not monotone in
		// fp and the owner key must be sorted on explicitly.)
		slices.SortFunc(cands, func(a, b clusterCand) int {
			if r := cmp.Compare(transport.Owner(a.fp, cl.peers), transport.Owner(b.fp, cl.peers)); r != 0 {
				return r
			}
			return cmp.Compare(a.fp, b.fp)
		})
		blocks, selfCands, err := c.buildClusterBlocks(cands)
		if err != nil {
			return fail("transport-error", fmt.Errorf("cluster: encode blocks at depth %d: %w", depth, err))
		}

		data := clusterData{}
		if cl.self == 0 && ck != nil {
			data.Checkpoint = ck.due(gDistinct)
			data.PruneBelow = ck.pruneBelow
		}
		draw, err := json.Marshal(data)
		if err != nil {
			return fail("config-error", err)
		}
		in, dsums, err := cl.exchange(blocks, draw)
		if err != nil {
			return fail("transport-error", fmt.Errorf("cluster: data barrier at depth %d: %w", depth, err))
		}
		coord := data
		if cl.self != 0 {
			if err := json.Unmarshal(dsums[0], &coord); err != nil {
				return fail("transport-error", fmt.Errorf("cluster: coordinator summary at depth %d: %w", depth, err))
			}
		}

		next, levelViols, err := c.clusterMerge(cl, res, depth, selfCands, in, invs)
		if err != nil {
			return fail("transport-error", err)
		}
		ownViols = append(ownViols, levelViols...)
		frontier = next
		if len(frontier) > res.MaxQueueLen {
			res.MaxQueueLen = len(frontier)
		}

		ckErr := ""
		if coord.Checkpoint {
			if err := c.writeClusterSnapshot(cl, res, depth, frontier, ownViols, restoredElapsed+time.Since(start)); err != nil {
				ckErr = err.Error()
				reporter.Warnf("cluster checkpoint failed at depth %d (previous checkpoint still valid): %v", depth, err)
				if metrics != nil {
					metrics.ckErrors.Inc()
				}
			}
		}
		if coord.PruneBelow > 0 {
			c.pruneClusterSnaps(cl, coord.PruneBelow)
		}

		deadlineHit := !deadline.IsZero() && time.Now().After(deadline)
		gl, err := c.clusterResolveBarrier(cl, res, len(frontier), ownViols, deadlineHit, ckErr)
		if err != nil {
			return fail("transport-error", fmt.Errorf("cluster resolve at depth %d: %w", depth, err))
		}
		gDistinct, gFrontier, gViols, gDeadline = gl.distinct, gl.frontier, gl.viols, gl.deadline
		if gFrontier > 0 {
			res.MaxDepth = depth
		}
		ckDone := false
		if coord.Checkpoint {
			if gl.ckAllOK {
				res.Checkpoints++
				ckDone = true
				if metrics != nil {
					metrics.checkpoints.Inc()
				}
				if cl.self == 0 {
					if err := c.writeClusterManifest(cl, depth); err != nil {
						reporter.Warnf("cluster manifest write failed at depth %d: %v", depth, err)
					} else {
						ck.pruneBelow = depth
					}
				}
			}
			if cl.self == 0 {
				ck.emit(gDistinct)
			}
		}

		c.opts.Tracer.Emit(obs.Event{
			Layer: "spec", Kind: "level", Node: -1,
			Detail: map[string]string{
				"depth":       strconv.Itoa(depth),
				"distinct":    strconv.Itoa(gDistinct),
				"queue":       strconv.Itoa(gFrontier),
				"transitions": strconv.FormatInt(res.Transitions, 10),
				"dedup_hits":  strconv.FormatInt(res.DedupHits, 10),
				"peer":        strconv.Itoa(cl.self),
			},
		})
		if c.cover != nil {
			c.cover.Levels = append(c.cover.Levels, obs.LevelStats{
				Depth:       depth,
				Frontier:    expanded,
				Fresh:       len(frontier),
				Transitions: res.Transitions - baseTrans,
				Dedup:       res.DedupHits - baseDedup,
				Violations:  len(levelViols),
				FpsetProbes: c.visited.Stats().Probes - baseProbes,
				Checkpoint:  ckDone,
			})
		}
	}

	if stop == "" {
		if len(gViols) > 0 && c.opts.StopAtFirstViolation {
			stop = "violation"
		} else {
			stop = "exhausted"
			res.Exhausted = true
		}
	}
	res.StopReason = stop
	res.Duration = restoredElapsed + time.Since(start)

	// Final barrier: every peer assembles the same global Result.
	fin := clusterFinal{
		Distinct: res.DistinctStates, Transitions: res.Transitions,
		DedupHits: res.DedupHits, MaxQueueLen: res.MaxQueueLen,
		GoalReached: res.GoalReached, Violations: ownViols, Cover: res.Cover,
	}
	fraw, err := json.Marshal(fin)
	if err != nil {
		return fail("config-error", err)
	}
	_, fsums, err := cl.exchange(nil, fraw)
	if err != nil {
		return fail("transport-error", fmt.Errorf("cluster final barrier: %w", err))
	}
	allViols := append([]snapViolation(nil), ownViols...)
	for q := range fsums {
		if q == cl.self {
			continue
		}
		var f clusterFinal
		if err := json.Unmarshal(fsums[q], &f); err != nil {
			return fail("transport-error", fmt.Errorf("cluster final summary from peer %d: %w", q, err))
		}
		res.DistinctStates += f.Distinct
		res.Transitions += f.Transitions
		res.DedupHits += f.DedupHits
		// MaxQueueLen is summed: per-peer high-water marks are concurrent
		// structural measures with no meaningful global maximum; the sum
		// bounds the cluster's peak frontier footprint.
		res.MaxQueueLen += f.MaxQueueLen
		res.GoalReached = res.GoalReached || f.GoalReached
		allViols = append(allViols, f.Violations...)
		res.Cover.Merge(f.Cover)
	}
	sortSnapViolations(allViols)
	res.Violations = res.Violations[:0]
	for _, v := range allViols {
		res.Violations = append(res.Violations, &Violation{
			Invariant: v.Invariant, Err: errors.New(v.Error), Depth: v.Depth, fp: v.FP,
		})
	}

	metrics.publish(c, res, gFrontier, depth, c.visited)
	if c.opts.Progress != nil {
		reporter.Emit(obs.Progress{
			DistinctStates: res.DistinctStates,
			QueueLen:       gFrontier,
			Transitions:    res.Transitions,
			DedupHits:      res.DedupHits,
			Depth:          depth,
			Final:          true,
		})
	}

	// Trace reconstruction needs parent edges from every shard, so the
	// coordinator probes the other peers, which serve lookups until the
	// coordinator says goodbye. Non-coordinator results carry the same
	// violations without traces.
	if cl.self == 0 {
		for _, v := range res.Violations {
			v.Trace = c.reconstruct(v)
		}
		if err := conn.Bye(); err != nil && res.Err == nil {
			res.Err = fmt.Errorf("cluster shutdown: %w", err)
		}
	} else {
		err := conn.ServeProbes(func(f uint64) (uint64, int32, bool) {
			e, ok := c.visited.Lookup(f)
			return e.Parent, e.Depth, ok
		})
		if err != nil && res.Err == nil {
			res.Err = fmt.Errorf("cluster probe service: %w", err)
		}
	}
	return res
}

// clusterResolveBarrier runs one summary-only barrier and folds every peer's
// summary into the global view.
func (c *Checker) clusterResolveBarrier(cl *clusterCtx, res *Result, nextFrontier int, ownViols []snapViolation, deadlineHit bool, ckErr string) (*clusterGlobals, error) {
	sum := clusterResolve{
		Distinct: res.DistinctStates, Transitions: res.Transitions,
		DedupHits: res.DedupHits, NextFrontier: nextFrontier,
		GoalReached: res.GoalReached, DeadlineHit: deadlineHit,
		CkErr: ckErr, Violations: ownViols,
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		return nil, err
	}
	_, sums, err := cl.exchange(nil, raw)
	if err != nil {
		return nil, err
	}
	g := &clusterGlobals{ckAllOK: true}
	for q := range sums {
		s := sum
		if q != cl.self {
			s = clusterResolve{}
			if err := json.Unmarshal(sums[q], &s); err != nil {
				return nil, fmt.Errorf("cluster: resolve summary from peer %d: %w", q, err)
			}
		}
		g.distinct += s.Distinct
		g.frontier += s.NextFrontier
		g.goal = g.goal || s.GoalReached
		g.deadline = g.deadline || s.DeadlineHit
		if s.CkErr != "" {
			g.ckAllOK = false
		}
		// Detection happens at the owner and each state violates at most
		// once, so per-peer cumulative lists are disjoint: concatenation is
		// already a set.
		g.viols = append(g.viols, s.Violations...)
	}
	sortSnapViolations(g.viols)
	return g, nil
}

// drainClusterInto folds every worker's counters and candidate buffers into
// the level accumulator, keeping one candidate per fingerprint (smallest
// parent wins; a losing candidate is a dedup hit, observed non-fresh, exactly
// as the owner-side merge would score it). Equal parents can only come from
// the same worker — a parent is expanded once — so generation order breaks
// the tie, matching single-process insertion order.
func (p *expandPool) drainClusterInto(res *Result, depth int, byFP map[uint64]int, cands *[]clusterCand) error {
	c := p.c
	cl := c.cluster
	cover := c.cover
	for _, w := range p.ws {
		cover.MergeWorker(w.wc)
		out := &w.out
		// As in drainInto: successors processed == canonicalizations, folded
		// at the barrier so the counter stays off the hot path.
		c.countCanon(out.work)
		res.Transitions += out.work
		res.DedupHits += out.dedup
		for _, cand := range out.cands {
			if cand.action == invalidAction {
				return fmt.Errorf("cluster: machine %q fired an action absent from its declared vocabulary", c.m.Name())
			}
			if idx, ok := byFP[cand.fp]; ok {
				prev := &(*cands)[idx]
				loser := cand
				if cand.parent < prev.parent {
					loser = *prev
					*prev = cand
				}
				res.DedupHits++
				cover.Observe(cl.actions[loser.action], depth, false)
			} else {
				byFP[cand.fp] = len(*cands)
				*cands = append(*cands, cand)
			}
		}
		for i := range out.cands {
			out.cands[i].state = nil
		}
		out.cands = out.cands[:0]
		out.work, out.dedup = 0, 0
	}
	return nil
}

// expandChunkCluster is the cluster-mode worker loop: successors are scored
// against the local shard only when this peer owns them (a hit is an
// immediate dedup), everything else is buffered for the level's exchange.
// Inserts never happen here, so Contains answers are stable for the whole
// level regardless of worker scheduling.
func (w *expandWorker) expandChunkCluster(entries []frontierEntry, depth int) {
	c := w.c
	cl := c.cluster
	out := &w.out
	for _, fe := range entries {
		w.buf = c.nextInto(fe.state, w.buf[:0])
		out.work += int64(len(w.buf))
		for _, su := range w.buf {
			f, reduced := c.canonicalFPScratch(su.State, &w.osc)
			if reduced {
				w.wc.SymmetryHit()
			}
			if transport.Owner(f, cl.peers) == cl.self && c.visited.Contains(f) {
				out.dedup++
				w.wc.Observe(su.Event.Action, depth, false)
				continue
			}
			action, ok := cl.actionIdx[su.Event.Action]
			if !ok {
				action = invalidAction
			}
			out.cands = append(out.cands, clusterCand{fp: f, parent: fe.fp, action: action, state: su.State})
		}
	}
}

// buildClusterBlocks splits the (owner, fp)-sorted candidate list into the
// local share and one encoded wire block per remote owner.
func (c *Checker) buildClusterBlocks(cands []clusterCand) ([][]byte, []clusterCand, error) {
	cl := c.cluster
	blocks := make([][]byte, cl.peers)
	var selfCands []clusterCand
	var wire []transport.Candidate
	i := 0
	for i < len(cands) {
		owner := transport.Owner(cands[i].fp, cl.peers)
		j := i + 1
		for j < len(cands) && transport.Owner(cands[j].fp, cl.peers) == owner {
			j++
		}
		if owner == cl.self {
			selfCands = cands[i:j]
		} else {
			wire = wire[:0]
			for k := i; k < j; k++ {
				wire = append(wire, transport.Candidate{
					FP: cands[k].fp, Parent: cands[k].parent, Action: cands[k].action,
					State: cl.codec.AppendState(nil, cands[k].state),
				})
			}
			payload, err := transport.EncodeBlock(wire)
			if err != nil {
				return nil, nil, err
			}
			blocks[owner] = payload
		}
		i = j
	}
	return blocks, selfCands, nil
}

// clusterMerge merges this peer's local candidates with the inbound blocks:
// sort by (fp, parent), insert the minimum parent of each fingerprint group,
// score the rest as dedup hits, and goal/invariant-check the fresh states.
// The returned next frontier is fp-sorted by construction.
func (c *Checker) clusterMerge(cl *clusterCtx, res *Result, depth int, selfCands []clusterCand, in [][]byte, invs []spec.Invariant) ([]frontierEntry, []snapViolation, error) {
	merged := selfCands
	for q, payload := range in {
		if q == cl.self || len(payload) == 0 {
			continue
		}
		wcands, err := transport.DecodeWireBlock(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: block from peer %d at depth %d: %w", q, depth, err)
		}
		for i := range wcands {
			merged = append(merged, clusterCand{
				fp: wcands[i].FP, parent: wcands[i].Parent,
				action: wcands[i].Action, enc: wcands[i].State,
			})
		}
	}
	slices.SortFunc(merged, func(a, b clusterCand) int {
		if r := cmp.Compare(a.fp, b.fp); r != 0 {
			return r
		}
		return cmp.Compare(a.parent, b.parent)
	})
	cover := c.cover
	goal := c.opts.Goal
	var next []frontierEntry
	var viols []snapViolation
	i := 0
	for i < len(merged) {
		j := i + 1
		for j < len(merged) && merged[j].fp == merged[i].fp {
			j++
		}
		lead := &merged[i]
		if int(lead.action) >= len(cl.actions) {
			return nil, nil, fmt.Errorf("cluster: candidate %#x carries action index %d outside the shared table", lead.fp, lead.action)
		}
		fresh := c.visited.Insert(lead.fp, lead.parent, int32(depth))
		cover.Observe(cl.actions[lead.action], depth, fresh)
		if fresh {
			res.DistinctStates++
			st := lead.state
			if st == nil {
				var rest []byte
				var derr error
				st, rest, derr = cl.codec.DecodeState(lead.enc)
				if derr != nil {
					return nil, nil, fmt.Errorf("cluster: decode state %#x at depth %d: %w", lead.fp, depth, derr)
				}
				if len(rest) != 0 {
					return nil, nil, fmt.Errorf("cluster: state %#x at depth %d: %d trailing bytes", lead.fp, depth, len(rest))
				}
			}
			next = append(next, frontierEntry{state: st, fp: lead.fp})
			if goal != nil && !res.GoalReached && goal(st) {
				res.GoalReached = true
			}
			if v := checkInvariants(invs, st, depth, lead.fp); v != nil {
				viols = append(viols, snapViolation{Invariant: v.Invariant, Error: v.Err.Error(), Depth: depth, FP: lead.fp})
			}
		} else {
			res.DedupHits++
		}
		for k := i + 1; k < j; k++ {
			if int(merged[k].action) >= len(cl.actions) {
				return nil, nil, fmt.Errorf("cluster: candidate %#x carries action index %d outside the shared table", merged[k].fp, merged[k].action)
			}
			res.DedupHits++
			cover.Observe(cl.actions[merged[k].action], depth, false)
		}
		i = j
	}
	return next, viols, nil
}
