package explorer

import (
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// reconstruct rebuilds the counterexample trace for a violation. The visited
// set stores only fingerprints and parent edges (never full states, exactly
// as TLC does), so reconstruction walks the parent chain backwards to a root
// and then re-executes the specification forwards, at each step picking the
// successor whose canonical fingerprint matches the next link in the chain.
//
// With symmetry reduction on, the forward re-execution may traverse a
// node-permuted variant of the state BFS originally discovered; canonical
// fingerprints are permutation-invariant, so the chain still resolves and
// the recorded events form a real execution of the specification.
func (c *Checker) reconstruct(v *Violation) *trace.Trace {
	// Backward pass: fingerprint chain from root to the violating state.
	var chain []uint64
	fp := v.fp
	for {
		e, ok := c.lookupEdge(fp)
		if !ok {
			return nil
		}
		chain = append(chain, fp)
		if e.Depth == 0 {
			break
		}
		fp = e.Parent
	}
	// Reverse in place: chain[0] is now the root.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	// Forward pass: find the root init state, then follow the chain.
	var cur spec.State
	for _, s := range c.m.Init() {
		if c.canonicalFP(s) == chain[0] {
			cur = s
			break
		}
	}
	if cur == nil {
		return nil
	}

	t := &trace.Trace{System: c.m.Name()}
	if c.opts.RecordVars {
		t.Init = cur.Vars()
	}
	var buf []spec.Succ
	for _, want := range chain[1:] {
		buf = c.nextInto(cur, buf[:0])
		var found *spec.Succ
		for i := range buf {
			if c.canonicalFP(buf[i].State) == want {
				found = &buf[i]
				break
			}
		}
		if found == nil {
			return nil
		}
		step := trace.Step{Event: found.Event, Fingerprint: want}
		if c.opts.RecordVars {
			step.Vars = found.State.Vars()
		}
		t.Steps = append(t.Steps, step)
		cur = found.State
	}
	return t
}
