// Package explorer implements SandTable's specification-level state
// exploration (§3.3): a stateful breadth-first model checker with
// fingerprint-based state deduplication, optional symmetry reduction, and a
// TLC-style simulation mode (seeded random walks) used for conformance
// checking and constraint ranking.
//
// The BFS checker is stateful — it remembers every visited state in a
// fingerprint set and therefore never re-explores a state — which is the
// property that makes specification-level exploration orders of magnitude
// faster than stateless implementation-level exploration. Counterexamples
// found by BFS have minimal depth.
package explorer

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Options configures a model-checking run.
type Options struct {
	// Workers is the number of parallel expansion workers (level-synchronous
	// BFS). Zero means runtime.NumCPU().
	Workers int
	// Symmetry enables symmetry reduction when the machine implements
	// spec.Symmetric: states are identified up to node permutation.
	Symmetry bool
	// MaxDepth bounds the BFS depth (0 = unbounded; budgets inside the spec
	// usually bound the space already).
	MaxDepth int
	// MaxStates stops the search after this many distinct states (0 = off).
	MaxStates int
	// Deadline stops the search after this wall-clock duration (0 = off).
	Deadline time.Duration
	// StopAtFirstViolation halts at the first invariant violation (the
	// default SandTable workflow: confirm one bug, fix, re-run). When false
	// the checker records every violating state but keeps exploring.
	StopAtFirstViolation bool
	// RecordVars includes rendered variable maps in counterexample traces
	// (needed for conformance checking and replay; costs time).
	RecordVars bool
	// Goal, when set, is a reachability query: the checker records whether
	// any explored state satisfies it (used e.g. to demonstrate
	// modeling-stage findings such as "no leader is ever elected").
	Goal func(s spec.State) bool

	// Progress, when set, receives TLC-style periodic progress snapshots
	// during the run (distinct states, frontier size, throughput). The
	// cadence is ProgressInterval and/or ProgressStates; with both zero a
	// 5-second interval is used. Checked only at block boundaries (~16k
	// states), so the callback never sits on the hot path.
	Progress obs.ProgressFunc
	// ProgressInterval is the minimum wall-clock time between reports.
	ProgressInterval time.Duration
	// ProgressStates reports every N newly discovered distinct states.
	ProgressStates int
	// Metrics, when set, receives live counters during the run (keys:
	// distinct_states, transitions, dedup_hits, queue_len, max_queue_len,
	// depth) so an expvar/pprof endpoint can watch a run in flight.
	Metrics *obs.Registry
	// Tracer, when set, receives one "level" event per completed BFS level
	// — a structured record of how the exploration advanced.
	Tracer *obs.Tracer
}

// DefaultOptions returns the options used by the SandTable workflow.
func DefaultOptions() Options {
	return Options{Symmetry: true, StopAtFirstViolation: true, RecordVars: true}
}

// Violation describes one invariant violation found during checking.
type Violation struct {
	Invariant string
	Err       error
	Depth     int
	Trace     *trace.Trace

	fp uint64 // fingerprint of the violating state
}

func (v *Violation) String() string {
	return fmt.Sprintf("invariant %s violated at depth %d: %v", v.Invariant, v.Depth, v.Err)
}

// Result summarises a model-checking run.
type Result struct {
	DistinctStates int
	Transitions    int64
	// DedupHits counts successors discarded because their canonical
	// fingerprint was already in the visited set — the work the stateful
	// discipline saves over stateless search (§2.1).
	DedupHits int64
	// MaxQueueLen is the BFS frontier high-water mark (states awaiting
	// expansion plus states discovered for the next level), the run's peak
	// memory driver.
	MaxQueueLen int
	MaxDepth    int
	Duration    time.Duration
	Violations  []*Violation
	// GoalReached reports whether any explored state satisfied Options.Goal.
	GoalReached bool
	// Exhausted is true when the bounded state space was fully explored.
	Exhausted bool
	// StopReason explains why the run ended ("exhausted", "violation",
	// "max-states", "deadline", "max-depth").
	StopReason string
}

// StatesPerSecond reports the exploration throughput.
func (r *Result) StatesPerSecond() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.DistinctStates) / r.Duration.Seconds()
}

// DedupRatio is the fraction of generated successors that were duplicates.
func (r *Result) DedupRatio() float64 {
	if r.Transitions == 0 {
		return 0
	}
	return float64(r.DedupHits) / float64(r.Transitions)
}

// FirstViolation returns the minimal-depth violation, or nil.
func (r *Result) FirstViolation() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

type edge struct {
	parent uint64
	depth  int32
}

// Checker runs stateful BFS over a specification. A Checker is single-use:
// build a fresh one per run.
type Checker struct {
	m    spec.Machine
	opts Options

	sym   spec.Symmetric
	fast  spec.FastSymmetric
	perms [][]int

	visited map[uint64]edge
}

// NewChecker builds a checker for machine m.
func NewChecker(m spec.Machine, opts Options) *Checker {
	c := &Checker{m: m, opts: opts, visited: make(map[uint64]edge, 1<<16)}
	if opts.Symmetry {
		if sym, ok := m.(spec.Symmetric); ok && sym.NumNodes() > 1 {
			c.sym = sym
			c.perms = spec.Permutations(sym.NumNodes())
			if fast, ok := m.(spec.FastSymmetric); ok {
				c.fast = fast
			}
		}
	}
	return c
}

// canonicalFP returns the symmetry-reduced fingerprint of s: the minimum
// fingerprint over all node permutations (with symmetry off it is the plain
// fingerprint).
func (c *Checker) canonicalFP(s spec.State) uint64 {
	fp := s.Fingerprint()
	if c.sym == nil {
		return fp
	}
	for _, p := range c.perms {
		if isIdentity(p) {
			continue
		}
		var pf uint64
		if c.fast != nil {
			pf = c.fast.PermutedFingerprint(s, p)
		} else {
			pf = c.sym.Permute(s, p).Fingerprint()
		}
		if pf < fp {
			fp = pf
		}
	}
	return fp
}

func isIdentity(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

type frontierEntry struct {
	state spec.State
	fp    uint64
}

// succRecord is a successor produced by a worker, awaiting the serial merge
// against the global visited set.
type succRecord struct {
	state  spec.State
	fp     uint64
	parent uint64
}

// runMetrics holds the registry handles resolved once per run; updates are
// lock-free atomic stores performed at block granularity, never per state.
type runMetrics struct {
	distinct, transitions, dedup, queueLen, maxQueueLen, depth *obs.Gauge
}

func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		distinct:    reg.Gauge("distinct_states"),
		transitions: reg.Gauge("transitions"),
		dedup:       reg.Gauge("dedup_hits"),
		queueLen:    reg.Gauge("queue_len"),
		maxQueueLen: reg.Gauge("max_queue_len"),
		depth:       reg.Gauge("depth"),
	}
}

func (m *runMetrics) publish(res *Result, queueLen, depth int) {
	if m == nil {
		return
	}
	m.distinct.Set(int64(res.DistinctStates))
	m.transitions.Set(res.Transitions)
	m.dedup.Set(res.DedupHits)
	m.queueLen.Set(int64(queueLen))
	m.maxQueueLen.Set(int64(res.MaxQueueLen))
	m.depth.Set(int64(depth))
}

// newReporter builds the progress reporter for a run (nil Progress → a
// reporter whose calls no-op). With no cadence configured a 5-second
// interval is used.
func (o *Options) newReporter() *obs.Reporter {
	interval := o.ProgressInterval
	if o.Progress != nil && interval == 0 && o.ProgressStates == 0 {
		interval = 5 * time.Second
	}
	return obs.NewReporter(o.Progress, interval, o.ProgressStates)
}

// Run performs the breadth-first search and returns the result.
func (c *Checker) Run() *Result {
	start := time.Now()
	res := &Result{}
	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reporter := c.opts.newReporter()
	metrics := newRunMetrics(c.opts.Metrics)

	invs := c.m.Invariants()
	var frontier []frontierEntry
	for _, s := range c.m.Init() {
		fp := c.canonicalFP(s)
		if _, seen := c.visited[fp]; seen {
			res.DedupHits++
			continue
		}
		c.visited[fp] = edge{parent: fp, depth: 0}
		frontier = append(frontier, frontierEntry{state: s, fp: fp})
		if c.opts.Goal != nil && c.opts.Goal(s) {
			res.GoalReached = true
		}
		if v := checkInvariants(invs, s, 0, fp); v != nil {
			res.Violations = append(res.Violations, v)
		}
	}
	res.DistinctStates = len(frontier)
	res.MaxQueueLen = len(frontier)

	depth := 0
	stop := ""
	deadline := time.Time{}
	if c.opts.Deadline > 0 {
		deadline = start.Add(c.opts.Deadline)
	}

	for len(frontier) > 0 {
		if c.opts.StopAtFirstViolation && len(res.Violations) > 0 {
			stop = "violation"
			break
		}
		if c.opts.MaxDepth > 0 && depth >= c.opts.MaxDepth {
			stop = "max-depth"
			break
		}
		if c.opts.MaxStates > 0 && res.DistinctStates >= c.opts.MaxStates {
			stop = "max-states"
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			stop = "deadline"
			break
		}

		depth++

		// Expand the level in bounded blocks so memory holds at most one
		// block's successors at a time, and merge each block serially:
		// deduplicate against the global fingerprint set, record parent
		// edges, and check invariants on newly discovered states only
		// (duplicates were checked when first discovered).
		const block = 1 << 14
		var next []frontierEntry
	level:
		for lo := 0; lo < len(frontier); lo += block {
			hi := min(lo+block, len(frontier))
			records, work := c.expand(frontier[lo:hi], workers)
			// The block's states are fully expanded: release them so the
			// peak footprint is one level plus one block, not two levels.
			for k := lo; k < hi; k++ {
				frontier[k].state = nil
			}
			res.Transitions += work
			for _, r := range records {
				if _, seen := c.visited[r.fp]; seen {
					res.DedupHits++
					continue
				}
				c.visited[r.fp] = edge{parent: r.parent, depth: int32(depth)}
				next = append(next, frontierEntry{state: r.state, fp: r.fp})
				res.DistinctStates++
				if c.opts.Goal != nil && !res.GoalReached && c.opts.Goal(r.state) {
					res.GoalReached = true
				}
				if v := checkInvariants(invs, r.state, depth, r.fp); v != nil {
					res.Violations = append(res.Violations, v)
					if c.opts.StopAtFirstViolation {
						break level
					}
				}
			}
			// Block boundary: cheap queue-length bookkeeping and (when
			// configured) progress/metrics publication. Never per state.
			queueLen := (len(frontier) - hi) + len(next)
			if queueLen > res.MaxQueueLen {
				res.MaxQueueLen = queueLen
			}
			metrics.publish(res, queueLen, depth)
			reporter.Maybe(obs.Progress{
				DistinctStates: res.DistinctStates,
				QueueLen:       queueLen,
				Transitions:    res.Transitions,
				DedupHits:      res.DedupHits,
				Depth:          depth,
			})
			if c.opts.MaxStates > 0 && res.DistinctStates >= c.opts.MaxStates {
				break
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
		}
		frontier = next
		if len(frontier) > 0 {
			res.MaxDepth = depth
		}
		c.opts.Tracer.Emit(obs.Event{
			Layer: "spec", Kind: "level", Node: -1,
			Detail: map[string]string{
				"depth":       strconv.Itoa(depth),
				"distinct":    strconv.Itoa(res.DistinctStates),
				"queue":       strconv.Itoa(len(frontier)),
				"transitions": strconv.FormatInt(res.Transitions, 10),
				"dedup_hits":  strconv.FormatInt(res.DedupHits, 10),
			},
		})
	}

	if stop == "" {
		if len(res.Violations) > 0 && c.opts.StopAtFirstViolation {
			stop = "violation"
		} else {
			stop = "exhausted"
			res.Exhausted = true
		}
	}
	res.StopReason = stop
	res.Duration = time.Since(start)

	metrics.publish(res, len(frontier), depth)
	if c.opts.Progress != nil {
		reporter.Emit(obs.Progress{
			DistinctStates: res.DistinctStates,
			QueueLen:       len(frontier),
			Transitions:    res.Transitions,
			DedupHits:      res.DedupHits,
			Depth:          depth,
			Final:          true,
		})
	}

	for _, v := range res.Violations {
		v.Trace = c.reconstruct(v)
	}
	return res
}

// expand computes all successors of the frontier, fanning the expensive work
// (Next enumeration, cloning, canonical fingerprints) across workers.
func (c *Checker) expand(frontier []frontierEntry, workers int) ([]succRecord, int64) {
	if len(frontier) < 2*workers || workers == 1 {
		return c.expandChunk(frontier)
	}
	chunks := workers
	type out struct {
		recs []succRecord
		work int64
	}
	outs := make([]out, chunks)
	var wg sync.WaitGroup
	size := (len(frontier) + chunks - 1) / chunks
	for i := 0; i < chunks; i++ {
		lo := i * size
		hi := min(lo+size, len(frontier))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			recs, work := c.expandChunk(frontier[lo:hi])
			outs[i] = out{recs: recs, work: work}
		}(i, lo, hi)
	}
	wg.Wait()
	var all []succRecord
	var work int64
	for _, o := range outs {
		all = append(all, o.recs...)
		work += o.work
	}
	return all, work
}

func (c *Checker) expandChunk(entries []frontierEntry) ([]succRecord, int64) {
	var recs []succRecord
	var work int64
	for _, fe := range entries {
		succs := c.m.Next(fe.state)
		work += int64(len(succs))
		for _, su := range succs {
			recs = append(recs, succRecord{state: su.State, fp: c.canonicalFP(su.State), parent: fe.fp})
		}
	}
	return recs, work
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func checkInvariants(invs []spec.Invariant, s spec.State, depth int, fp uint64) *Violation {
	for _, inv := range invs {
		if err := inv.Check(s); err != nil {
			return &Violation{Invariant: inv.Name, Err: err, Depth: depth, fp: fp}
		}
	}
	return nil
}
