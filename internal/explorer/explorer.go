// Package explorer implements SandTable's specification-level state
// exploration (§3.3): a stateful breadth-first model checker with
// fingerprint-based state deduplication, optional symmetry reduction, and a
// TLC-style simulation mode (seeded random walks) used for conformance
// checking and constraint ranking.
//
// The BFS checker is stateful — it remembers every visited state in a
// concurrent fingerprint set (internal/fpset, the analogue of TLC's
// fingerprint set) and therefore never re-explores a state — which is the
// property that makes specification-level exploration orders of magnitude
// faster than stateless implementation-level exploration. Counterexamples
// found by BFS have minimal depth.
//
// Expansion runs on a persistent worker pool: Options.Workers goroutines
// are started once per Run, and each block of the frontier is fed to them
// as dynamically sized sub-chunks claimed off an atomic cursor, so load
// balances even when successor counts vary wildly across states. Workers
// probe-and-insert into the sharded fingerprint set concurrently; there is
// no serial deduplication barrier. Results remain deterministic regardless
// of worker count and scheduling: the set breaks equal-depth parent ties by
// smallest parent fingerprint, each BFS level is sorted by fingerprint
// before the next level is expanded, and violations are reported in
// (depth, fingerprint) order.
//
// Long runs can snapshot their fingerprint set and frontier to disk and be
// resumed after an interruption; see CheckpointOptions.
package explorer

import (
	"cmp"
	"context"
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Options configures a model-checking run.
type Options struct {
	// Workers is the number of parallel expansion workers (level-synchronous
	// BFS). Zero means runtime.NumCPU().
	Workers int
	// FPSetShards is the fingerprint-set shard count (rounded up to a power
	// of two; 0 = automatic, sized from GOMAXPROCS). More shards lower the
	// probability that two expansion workers contend on one shard lock.
	FPSetShards int
	// Symmetry enables symmetry reduction when the machine implements
	// spec.Symmetric: states are identified up to node permutation.
	Symmetry bool
	// FlatCanon forces the flat per-permutation canonicalization path
	// (Permute / PermutedFingerprint once per permutation) even when the
	// machine implements spec.OrbitHasher. Exploration results are
	// identical either way — the OrbitHasher contract is exact fingerprint
	// equality, gated by differential tests — so the knob exists for those
	// tests and for benchmarking the two pipelines, not for operators.
	FlatCanon bool
	// MaxDepth bounds the BFS depth (0 = unbounded; budgets inside the spec
	// usually bound the space already).
	MaxDepth int
	// MaxStates stops the search after this many distinct states (0 = off).
	// The bound is checked at block boundaries, so a run may overshoot by
	// up to one block.
	MaxStates int
	// Deadline stops the search after this wall-clock duration (0 = off).
	// On a resumed run the deadline budgets the current session, not the
	// cumulative run.
	Deadline time.Duration
	// Context, when non-nil, cancels the run cooperatively: cancellation is
	// observed at expansion block boundaries (the same safepoints as
	// MaxStates and Deadline) and ends the run with StopReason "canceled".
	// A level cut short by cancellation is never snapshotted, so the last
	// complete-level checkpoint stays valid and the run remains resumable.
	// Ignored by distributed (Peer) runs, whose stop decisions must be
	// cluster-global.
	Context context.Context
	// StopAtFirstViolation halts at the first invariant violation (the
	// default SandTable workflow: confirm one bug, fix, re-run). The stop is
	// level-granular: the level that found the violation completes before
	// the run ends, so the reported counters cover whole levels and are
	// identical at every worker count and cluster size. When false the
	// checker records every violating state but keeps exploring.
	StopAtFirstViolation bool
	// RecordVars includes rendered variable maps in counterexample traces
	// (needed for conformance checking and replay; costs time).
	RecordVars bool
	// Goal, when set, is a reachability query: the checker records whether
	// any explored state satisfies it (used e.g. to demonstrate
	// modeling-stage findings such as "no leader is ever elected").
	Goal func(s spec.State) bool

	// MemBudget, when > 0, caps the estimated resident footprint (bytes) of
	// the exploration's two big structures. Over budget, the fingerprint
	// set spills frozen entries to sorted disk runs (any machine), and the
	// BFS frontier spills to disk runs when the machine implements
	// spec.StateCodec (without the codec only the fingerprint set spills).
	// Results are identical to an unbudgeted run — see frontier.go and
	// fpset/spill.go for the determinism argument. The CLI exposes this as
	// -mem-budget and defaults it from GOMEMLIMIT.
	MemBudget int64
	// SpillDir is where spill files live; a fresh private subdirectory is
	// created per run and removed when the run ends. Empty falls back to
	// the checkpoint dir, then the OS temp dir.
	SpillDir string

	// Checkpoint configures periodic exploration snapshots and resume; the
	// zero value disables both. See CheckpointOptions.
	Checkpoint CheckpointOptions

	// Peer, when non-nil, runs this checker as one peer of a distributed
	// exploration: the fingerprint space is partitioned across
	// Peer.Conn.Peers() processes by transport.Owner, and peers exchange
	// candidate successors at level barriers. Requires the machine to
	// implement spec.StateCodec and spec.ActionLister; incompatible with
	// MemBudget. See cluster.go for the determinism argument.
	Peer *PeerOptions

	// Progress, when set, receives TLC-style periodic progress snapshots
	// during the run (distinct states, frontier size, throughput). The
	// cadence is ProgressInterval and/or ProgressStates; with both zero a
	// 5-second interval is used. Checked only at block boundaries (~16k
	// states), so the callback never sits on the hot path.
	Progress obs.ProgressFunc
	// ProgressInterval is the minimum wall-clock time between reports.
	ProgressInterval time.Duration
	// ProgressStates reports every N newly discovered distinct states.
	ProgressStates int
	// Metrics, when set, receives live counters during the run (keys:
	// distinct_states, transitions, dedup_hits, queue_len, max_queue_len,
	// depth, plus the fpset.* fingerprint-set gauges) so an expvar/pprof
	// endpoint can watch a run in flight.
	Metrics *obs.Registry
	// Tracer, when set, receives one "level" event per completed BFS level
	// — a structured record of how the exploration advanced — and one
	// "checkpoint" event per snapshot written. The progress reporter also
	// emits a "stall" event (layer "obs") when a run plateaus; see
	// obs.Reporter.
	Tracer *obs.Tracer
	// Cover enables the state-space coverage profiler: per-action fire and
	// fresh-state counts, per-level frontier/dedup profiles, and symmetry-
	// reduction hits, published as Result.Cover. Collection is two-phase —
	// each expansion worker accumulates privately and the totals are folded
	// in at block barriers — so the hot path takes no locks and no atomics.
	Cover bool
}

// DefaultOptions returns the options used by the SandTable workflow.
func DefaultOptions() Options {
	return Options{Symmetry: true, StopAtFirstViolation: true, RecordVars: true}
}

// Violation describes one invariant violation found during checking.
type Violation struct {
	Invariant string
	Err       error
	Depth     int
	Trace     *trace.Trace

	fp uint64 // fingerprint of the violating state
}

// String renders the violation as a one-line human-readable summary.
func (v *Violation) String() string {
	return fmt.Sprintf("invariant %s violated at depth %d: %v", v.Invariant, v.Depth, v.Err)
}

// Result summarises a model-checking run.
type Result struct {
	DistinctStates int
	Transitions    int64
	// DedupHits counts successors discarded because their canonical
	// fingerprint was already in the visited set — the work the stateful
	// discipline saves over stateless search (§2.1).
	DedupHits int64
	// MaxQueueLen is the BFS frontier high-water mark (states awaiting
	// expansion plus states discovered for the next level), the run's peak
	// memory driver.
	MaxQueueLen int
	MaxDepth    int
	// Duration is the cumulative exploration wall-clock time; for a
	// resumed run it includes the elapsed time recorded in the snapshot.
	Duration   time.Duration
	Violations []*Violation
	// GoalReached reports whether any explored state satisfied Options.Goal.
	GoalReached bool
	// Exhausted is true when the bounded state space was fully explored.
	Exhausted bool
	// StopReason explains why the run ended ("exhausted", "violation",
	// "max-states", "deadline", "max-depth", "canceled" — Options.Context
	// was canceled — "checkpoint-error", "spill-error" — a disk failure
	// reading back a spilled frontier).
	StopReason string
	// Resumed reports whether the run continued from a snapshot.
	Resumed bool
	// Checkpoints counts the snapshots written during the run.
	Checkpoints int
	// Cover is the coverage profile collected during the run (nil unless
	// Options.Cover): which actions fired, which never did, how each BFS
	// level spent its work.
	Cover *obs.Cover
	// Err carries a fatal configuration error (today: a failed resume —
	// missing, corrupt, or incompatible snapshot). When non-nil the other
	// fields are zero and StopReason is "checkpoint-error".
	Err error
}

// StatesPerSecond reports the exploration throughput.
func (r *Result) StatesPerSecond() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.DistinctStates) / r.Duration.Seconds()
}

// DedupRatio is the fraction of generated successors that were duplicates.
func (r *Result) DedupRatio() float64 {
	if r.Transitions == 0 {
		return 0
	}
	return float64(r.DedupHits) / float64(r.Transitions)
}

// Summary renders the result as a flat map echoing the metrics-registry key
// names — the vocabulary shared by the CLI's -metrics-out artifact, the
// serve API's result.json, and the clustercmp signature comparison.
func (r *Result) Summary() map[string]any {
	out := map[string]any{
		"distinct_states": r.DistinctStates,
		"transitions":     r.Transitions,
		"dedup_hits":      r.DedupHits,
		"max_queue_len":   r.MaxQueueLen,
		"max_depth":       r.MaxDepth,
		"duration_ns":     r.Duration.Nanoseconds(),
		"states_per_sec":  r.StatesPerSecond(),
		"dedup_ratio":     r.DedupRatio(),
		"stop_reason":     r.StopReason,
		"exhausted":       r.Exhausted,
		"violations":      len(r.Violations),
		"resumed":         r.Resumed,
		"checkpoints":     r.Checkpoints,
	}
	if v := r.FirstViolation(); v != nil {
		out["first_violation"] = v.String()
	}
	return out
}

// FirstViolation returns the minimal-depth violation, or nil. Among
// equal-depth violations the one with the smallest state fingerprint is
// first — a deterministic choice independent of worker scheduling.
func (r *Result) FirstViolation() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// Checker runs stateful BFS over a specification. A Checker is single-use:
// build a fresh one per run.
type Checker struct {
	m    spec.Machine
	opts Options

	// bm is non-nil when the machine supports pooled successor enumeration
	// (spec.BufferedMachine); the type assertion is done once here, never on
	// the hot path.
	bm spec.BufferedMachine

	sym   spec.Symmetric
	fast  spec.FastSymmetric
	perms [][]int // non-identity permutations only (shared, read-only)
	// orbit is non-nil when the machine supports incremental orbit
	// canonicalization (spec.OrbitHasher) and Options.FlatCanon is off:
	// min-of-orbit then costs one digest pass plus cheap per-permutation
	// combines instead of one full rehash per permutation.
	orbit spec.OrbitHasher
	// ptab is the cached permutation table for the machine's arity (nil
	// with symmetry off).
	ptab *spec.PermTable
	// osc is the serial-path orbit scratch (init seeding, checkpoint
	// rebuild, trace reconstruction); expansion workers carry their own.
	osc fp.OrbitScratch
	// canonOrbit / canonFlat count canonicalizations served by the
	// incremental orbit path vs the flat per-permutation path. Published as
	// explorer.canonical.* metrics only — deliberately NOT part of Result,
	// so fast-path-on and fast-path-off runs stay byte-identical.
	canonOrbit, canonFlat int64

	visited *fpset.Set

	// cover is the run's coverage profile (nil unless Options.Cover);
	// workers feed it through per-worker accumulators merged at block
	// barriers, never directly.
	cover *obs.Cover

	// restored carries state loaded from a snapshot (nil for fresh runs).
	restored *snapshot
	// ckChain carries the committed checkpoint chain a resume loaded, so
	// the run's checkpointer keeps appending deltas to it.
	ckChain *ckChainState

	// cluster is the distributed-run context (nil for single-process runs);
	// see cluster.go.
	cluster *clusterCtx
}

// NewChecker builds a checker for machine m.
func NewChecker(m spec.Machine, opts Options) *Checker {
	c := &Checker{m: m, opts: opts, visited: fpset.New(opts.FPSetShards)}
	c.bm, _ = m.(spec.BufferedMachine)
	if opts.Symmetry {
		if sym, ok := m.(spec.Symmetric); ok && sym.NumNodes() > 1 {
			c.sym = sym
			// The cached table already separates the identity permutation
			// out: canonicalFP starts from the plain fingerprint, so the hot
			// loop never has to re-test for it.
			c.ptab = spec.PermTableFor(sym.NumNodes())
			c.perms = c.ptab.NonIdentity
			if fast, ok := m.(spec.FastSymmetric); ok {
				c.fast = fast
			}
			if orbit, ok := m.(spec.OrbitHasher); ok && !opts.FlatCanon {
				c.orbit = orbit
			}
		}
	}
	return c
}

// nextInto enumerates s's successors into buf, reusing its capacity, when
// the machine supports pooled enumeration; otherwise it falls back to the
// allocating Next path. Callers own buf and must consume the result before
// the next call with the same buffer.
func (c *Checker) nextInto(s spec.State, buf []spec.Succ) []spec.Succ {
	if c.bm != nil {
		return c.bm.AppendNext(s, buf)
	}
	return append(buf, c.m.Next(s)...)
}

// canonicalFP returns the symmetry-reduced fingerprint of s: the minimum
// fingerprint over all node permutations (with symmetry off it is the plain
// fingerprint).
func (c *Checker) canonicalFP(s spec.State) uint64 {
	fp, _ := c.canonicalFPReduced(s)
	return fp
}

// canonicalFPReduced is canonicalFP plus whether a non-identity permutation
// produced the minimum — i.e. whether symmetry reduction actually collapsed
// this state onto a representative (the coverage profiler's symmetry-hit
// signal). Serial-path wrapper over canonicalFPScratch using the checker's
// own scratch; concurrent callers (expansion workers, checkpoint replay)
// must pass their own.
func (c *Checker) canonicalFPReduced(s spec.State) (uint64, bool) {
	return c.canonicalFPScratch(s, &c.osc)
}

// canonicalFPScratch computes the canonical fingerprint with caller-owned
// orbit scratch: the incremental orbit path when the machine provides it
// (one digest pass + cheap combines, no allocations), otherwise the flat
// path (plain fingerprint, then one full rehash per non-identity
// permutation via PermutedFingerprint or a materialised Permute).
func (c *Checker) canonicalFPScratch(s spec.State, sc *fp.OrbitScratch) (uint64, bool) {
	if c.orbit != nil {
		return c.orbit.OrbitFingerprint(s, c.ptab, sc)
	}
	fpv := s.Fingerprint()
	if c.sym == nil {
		return fpv, false
	}
	plain := fpv
	for _, p := range c.perms {
		var pf uint64
		if c.fast != nil {
			pf = c.fast.PermutedFingerprint(s, p)
		} else {
			pf = c.sym.Permute(s, p).Fingerprint()
		}
		if pf < fpv {
			fpv = pf
		}
	}
	return fpv, fpv != plain
}

// countCanon attributes n canonicalizations to the active pipeline's
// counter (no-op with symmetry off — canonicalization is then a plain
// fingerprint). Called at block barriers and on serial paths, never
// per-successor.
func (c *Checker) countCanon(n int64) {
	switch {
	case c.orbit != nil:
		c.canonOrbit += n
	case c.sym != nil:
		c.canonFlat += n
	}
}

type frontierEntry struct {
	state spec.State
	fp    uint64
}

// runMetrics holds the registry handles resolved once per run; updates are
// lock-free atomic stores performed at block granularity, never per state.
type runMetrics struct {
	distinct, transitions, dedup, queueLen, maxQueueLen, depth *obs.Gauge
	fpsetEntries, fpsetSlots, fpsetProbes, fpsetResizes        *obs.Gauge
	// Canonicalization pipeline counters: how many canonical fingerprints
	// the incremental orbit fast path served vs the flat per-permutation
	// fallback (both zero with symmetry off).
	canonOrbit, canonFlat *obs.Gauge
	// Memory-pressure gauges/counters (see memory.go): fpset spill state,
	// frontier spill volume, heap-in-use, and the configured budget.
	fpsetSpilledEntries, fpsetSpilledShards, fpsetSpillRuns *obs.Gauge
	fpsetSpillBytes, fpsetDiskProbes                        *obs.Gauge
	heapInuse, memBudget                                    *obs.Gauge
	frontierSpillBytes, frontierSpilledEntries              *obs.Counter
	// Checkpoint-chain counters (see delta.go): full snapshots are counted
	// by checkpoints, incremental deltas and compactions separately.
	checkpoints, ckDeltas, ckDeltaBytes, ckCompactions, ckErrors *obs.Counter
}

func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		distinct:               reg.Gauge("distinct_states"),
		transitions:            reg.Gauge("transitions"),
		dedup:                  reg.Gauge("dedup_hits"),
		queueLen:               reg.Gauge("queue_len"),
		maxQueueLen:            reg.Gauge("max_queue_len"),
		depth:                  reg.Gauge("depth"),
		canonOrbit:             reg.Gauge("explorer.canonical.orbit"),
		canonFlat:              reg.Gauge("explorer.canonical.flat"),
		fpsetEntries:           reg.Gauge("fpset.entries"),
		fpsetSlots:             reg.Gauge("fpset.slots"),
		fpsetProbes:            reg.Gauge("fpset.probes"),
		fpsetResizes:           reg.Gauge("fpset.resizes"),
		fpsetSpilledEntries:    reg.Gauge("fpset.spilled_entries"),
		fpsetSpilledShards:     reg.Gauge("fpset.spilled_shards"),
		fpsetSpillRuns:         reg.Gauge("fpset.spill_runs"),
		fpsetSpillBytes:        reg.Gauge("fpset.spill_bytes"),
		fpsetDiskProbes:        reg.Gauge("fpset.disk_probes"),
		heapInuse:              reg.Gauge("heap_inuse_bytes"),
		memBudget:              reg.Gauge("mem_budget_bytes"),
		frontierSpillBytes:     reg.Counter("explorer.frontier_spill_bytes"),
		frontierSpilledEntries: reg.Counter("explorer.frontier_spilled_entries"),
		checkpoints:            reg.Counter("checkpoints"),
		ckDeltas:               reg.Counter("checkpoint.deltas"),
		ckDeltaBytes:           reg.Counter("checkpoint.delta_bytes"),
		ckCompactions:          reg.Counter("checkpoint.compactions"),
		ckErrors:               reg.Counter("checkpoint.errors"),
	}
}

func (m *runMetrics) publish(c *Checker, res *Result, queueLen, depth int, set *fpset.Set) {
	if m == nil {
		return
	}
	m.canonOrbit.Set(c.canonOrbit)
	m.canonFlat.Set(c.canonFlat)
	m.distinct.Set(int64(res.DistinctStates))
	m.transitions.Set(res.Transitions)
	m.dedup.Set(res.DedupHits)
	m.queueLen.Set(int64(queueLen))
	m.maxQueueLen.Set(int64(res.MaxQueueLen))
	m.depth.Set(int64(depth))
	st := set.Stats()
	m.fpsetEntries.Set(st.Entries)
	m.fpsetSlots.Set(st.Slots)
	m.fpsetProbes.Set(st.Probes)
	m.fpsetResizes.Set(st.Resizes)
	m.fpsetSpilledEntries.Set(st.SpilledEntries)
	m.fpsetSpilledShards.Set(st.SpilledShards)
	m.fpsetSpillRuns.Set(st.SpillRuns)
	m.fpsetSpillBytes.Set(st.SpillBytes)
	m.fpsetDiskProbes.Set(st.DiskProbes)
}

// newReporter builds the progress reporter for a run (nil Progress → a
// reporter whose calls no-op). With no cadence configured a 5-second
// interval is used. The run's tracer is attached so stall warnings land in
// the structured event stream as well as on the progress line.
func (o *Options) newReporter() *obs.Reporter {
	interval := o.ProgressInterval
	if o.Progress != nil && interval == 0 && o.ProgressStates == 0 {
		interval = 5 * time.Second
	}
	r := obs.NewReporter(o.Progress, interval, o.ProgressStates)
	r.Tracer = o.Tracer
	return r
}

// Run performs the breadth-first search and returns the result.
func (c *Checker) Run() *Result {
	if c.opts.Peer != nil && c.opts.Peer.Conn != nil {
		return c.runCluster()
	}
	start := time.Now()
	res := &Result{}
	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reporter := c.opts.newReporter()
	metrics := newRunMetrics(c.opts.Metrics)

	invs := c.m.Invariants()
	var frontier []frontierEntry
	depth := 0
	var restoredElapsed time.Duration

	if c.opts.Checkpoint.Resume {
		if err := c.resume(); err != nil {
			res.Err = fmt.Errorf("resume: %w", err)
			res.StopReason = "checkpoint-error"
			return res
		}
	}
	// Built after resume so it can adopt the restored delta chain and keep
	// appending to it instead of rewriting a full base snapshot.
	ck := c.newCheckpointer(metrics, reporter)

	if c.opts.Cover {
		res.Cover = obs.NewCover("bfs", spec.DeclaredActions(c.m))
		c.cover = res.Cover
	}

	if c.restored != nil {
		// Continue from the snapshot: counters, depth, and the rebuilt
		// frontier replace the init-state seeding below.
		snap := c.restored
		res.Resumed = true
		res.DistinctStates = snap.header.DistinctStates
		res.Transitions = snap.header.Transitions
		res.DedupHits = snap.header.DedupHits
		res.MaxQueueLen = snap.header.MaxQueueLen
		res.MaxDepth = snap.header.MaxDepth
		res.GoalReached = snap.header.GoalReached
		res.Violations = snap.violations()
		restoredElapsed = time.Duration(snap.header.ElapsedNs)
		depth = snap.header.Depth
		frontier = snap.frontier
		c.restored = nil
		if c.cover != nil {
			// Levels before the snapshot were profiled by the interrupted
			// session; this profile covers the continuation only.
			c.cover.ResumedAtDepth = depth
		}
	} else {
		seen := make(map[uint64]bool)
		for _, s := range c.m.Init() {
			fp := c.canonicalFP(s)
			c.countCanon(1)
			if seen[fp] {
				res.DedupHits++
				continue
			}
			seen[fp] = true
			c.visited.Insert(fp, fp, 0)
			frontier = append(frontier, frontierEntry{state: s, fp: fp})
			if c.opts.Goal != nil && c.opts.Goal(s) {
				res.GoalReached = true
			}
			if v := checkInvariants(invs, s, 0, fp); v != nil {
				res.Violations = append(res.Violations, v)
			}
		}
		sortFrontier(frontier)
		res.DistinctStates = len(frontier)
		res.MaxQueueLen = len(frontier)
		if c.cover != nil {
			// Level 0 is the deduplicated initial states: no actions fire,
			// so the entry records only the level's size.
			c.cover.Levels = append(c.cover.Levels, obs.LevelStats{
				Depth: 0, Frontier: len(frontier), Fresh: len(frontier),
			})
		}
	}

	stop := ""
	deadline := time.Time{}
	if c.opts.Deadline > 0 {
		deadline = start.Add(c.opts.Deadline)
	}

	// The pool's goroutines live for the whole run; blocks are fed to them,
	// not spawned onto fresh goroutines.
	pool := c.newExpandPool(workers, invs)
	defer pool.close()

	// The memory controller (nil without a budget) owns the run's spill
	// directory; closed after trace reconstruction, which may still probe
	// spilled fingerprints.
	memctl, err := c.newMemController(metrics, reporter)
	if err != nil {
		res.Err = fmt.Errorf("mem-budget: %w", err)
		res.StopReason = "spill-error"
		return res
	}
	defer memctl.close(c.visited)

	// spare recycles the previous level's frontier backing as the next
	// level's accumulation buffer (double buffering): after warm-up, level
	// turnover allocates nothing. (Levels that spill to disk opt out of the
	// recycling; they are dominated by I/O anyway.)
	var spare []frontierEntry
	lf := newMemFrontier(frontier)
	frontier = nil

	for lf.size() > 0 {
		if c.canceled() {
			stop = "canceled"
			break
		}
		if c.opts.StopAtFirstViolation && len(res.Violations) > 0 {
			stop = "violation"
			break
		}
		if c.opts.MaxDepth > 0 && depth >= c.opts.MaxDepth {
			stop = "max-depth"
			break
		}
		if c.opts.MaxStates > 0 && res.DistinctStates >= c.opts.MaxStates {
			stop = "max-states"
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			stop = "deadline"
			break
		}

		depth++

		// Level baselines for the coverage profile: per-level deltas are
		// differences of run totals taken at the level boundaries.
		var baseTrans, baseDedup, baseProbes int64
		var baseCk, expanded int
		if c.cover != nil {
			baseTrans, baseDedup = res.Transitions, res.DedupHits
			baseProbes = c.visited.Stats().Probes
			baseCk = res.Checkpoints
			expanded = lf.size()
		}

		// Expand the level in bounded blocks so memory holds at most one
		// block's successors at a time. Workers probe-and-insert into the
		// sharded fingerprint set concurrently — deduplication, parent-edge
		// recording, and invariant checking all happen inside the workers;
		// the serial part of a block is only appending the fresh states and
		// folding counters.
		const block = 1 << 14
		next := spare[:0]
		var levelViolations []*Violation
		sink := memctl.newSink(depth)
		consumed := 0
		stopLevel := false

		// processBlock expands one frontier block and does the boundary
		// bookkeeping: drain, spill checks, queue-length high-water,
		// metrics/progress publication, and the mid-level stop decisions.
		// Identical for in-RAM and disk-backed levels, so the stop
		// decisions cannot depend on where the frontier lives.
		processBlock := func(entries []frontierEntry) bool {
			pool.expand(entries, depth)
			// The block's states are fully expanded: release them so the
			// peak footprint is one level plus one block, not two levels.
			for k := range entries {
				entries[k].state = nil
			}
			pool.drainInto(res, &next, &levelViolations)
			consumed += len(entries)
			next = sink.maybeSpill(next)
			memctl.blockTick(c, depth)
			queueLen := (lf.size() - consumed) + sink.spilledCount() + len(next)
			if queueLen > res.MaxQueueLen {
				res.MaxQueueLen = queueLen
			}
			metrics.publish(c, res, queueLen, depth, c.visited)
			reporter.Maybe(obs.Progress{
				DistinctStates: res.DistinctStates,
				QueueLen:       queueLen,
				Transitions:    res.Transitions,
				DedupHits:      res.DedupHits,
				Depth:          depth,
			})
			if c.opts.MaxStates > 0 && res.DistinctStates >= c.opts.MaxStates {
				return true
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return true
			}
			return c.canceled()
		}

		if lf.inRAM() {
			mem := lf.mem
			for lo := 0; lo < len(mem); lo += block {
				hi := min(lo+block, len(mem))
				if stopLevel = processBlock(mem[lo:hi]); stopLevel {
					break
				}
			}
		} else {
			// Disk-backed level: merge-read the sorted runs (plus the
			// in-RAM tail) back in global fingerprint order, one block at
			// a time — exactly the sequence the in-RAM path would expand.
			var rerr error
			var cur *frontierCursor
			if cur, rerr = lf.cursor(); rerr == nil {
				buf := make([]frontierEntry, 0, block)
				for {
					if buf, rerr = cur.nextBlock(buf[:0], block); rerr != nil || len(buf) == 0 {
						break
					}
					if stopLevel = processBlock(buf); stopLevel {
						break
					}
				}
				cur.close()
			}
			if rerr != nil {
				sortViolations(levelViolations)
				res.Violations = append(res.Violations, levelViolations...)
				res.Err = fmt.Errorf("frontier spill: %w", rerr)
				stop = "spill-error"
				lf.discard()
				break
			}
		}
		partialLevel := stopLevel && consumed < lf.size()

		// Violations within a level are ordered by state fingerprint so the
		// reported counterexample does not depend on scheduling.
		sortViolations(levelViolations)
		res.Violations = append(res.Violations, levelViolations...)
		// The next frontier is sorted by fingerprint: with a deterministic
		// level order, block composition — and therefore every block-level
		// stop decision above — is identical across runs and worker counts.
		// (A spilled level merge-reads back in the same sorted order.)
		sortFrontier(next)
		if lf.inRAM() {
			spare = lf.mem[:0]
		} else {
			spare = nil
			lf.discard()
		}
		lf = sink.finish(next)
		if lf.size() > 0 {
			res.MaxDepth = depth
		}
		c.opts.Tracer.Emit(obs.Event{
			Layer: "spec", Kind: "level", Node: -1,
			Detail: map[string]string{
				"depth":       strconv.Itoa(depth),
				"distinct":    strconv.Itoa(res.DistinctStates),
				"queue":       strconv.Itoa(lf.size()),
				"transitions": strconv.FormatInt(res.Transitions, 10),
				"dedup_hits":  strconv.FormatInt(res.DedupHits, 10),
			},
		})
		// Level boundary: the frontier is well-defined and workers are
		// quiescent — write a snapshot when the checkpoint cadence is due.
		// A level cut short by a mid-level stop (max-states, deadline) is
		// never snapshotted: its frontier is incomplete, and the run is
		// ending anyway. The previous complete-level snapshot stays valid.
		if ck != nil && !partialLevel && lf.size() > 0 && (len(res.Violations) == 0 || !c.opts.StopAtFirstViolation) {
			ck.maybeWrite(c, res, depth, lf, restoredElapsed+time.Since(start))
		}
		if c.cover != nil {
			c.cover.Levels = append(c.cover.Levels, obs.LevelStats{
				Depth:       depth,
				Frontier:    expanded,
				Fresh:       lf.size(),
				Transitions: res.Transitions - baseTrans,
				Dedup:       res.DedupHits - baseDedup,
				Violations:  len(levelViolations),
				FpsetProbes: c.visited.Stats().Probes - baseProbes,
				Checkpoint:  res.Checkpoints > baseCk,
			})
		}
	}

	if stop == "" {
		if len(res.Violations) > 0 && c.opts.StopAtFirstViolation {
			stop = "violation"
		} else {
			stop = "exhausted"
			res.Exhausted = true
		}
	}
	if stop == "exhausted" && c.canceled() {
		// A cancel that landed on the final block would otherwise read as a
		// completed search; an interrupted run must never claim exhaustion.
		stop = "canceled"
		res.Exhausted = false
	}
	res.StopReason = stop
	res.Duration = restoredElapsed + time.Since(start)

	metrics.publish(c, res, lf.size(), depth, c.visited)
	if c.opts.Progress != nil {
		reporter.Emit(obs.Progress{
			DistinctStates: res.DistinctStates,
			QueueLen:       lf.size(),
			Transitions:    res.Transitions,
			DedupHits:      res.DedupHits,
			Depth:          depth,
			Final:          true,
		})
	}

	for _, v := range res.Violations {
		v.Trace = c.reconstruct(v)
	}
	return res
}

// canceled reports whether Options.Context has been canceled — the
// cooperative stop signal checked at block and level boundaries.
func (c *Checker) canceled() bool {
	return c.opts.Context != nil && c.opts.Context.Err() != nil
}

func sortFrontier(fs []frontierEntry) {
	slices.SortFunc(fs, func(a, b frontierEntry) int { return cmp.Compare(a.fp, b.fp) })
}

// sortViolations orders violations by (depth, state fingerprint, invariant
// name) — a total order independent of discovery order.
func sortViolations(vs []*Violation) {
	slices.SortFunc(vs, func(a, b *Violation) int {
		if c := cmp.Compare(a.Depth, b.Depth); c != 0 {
			return c
		}
		if c := cmp.Compare(a.fp, b.fp); c != 0 {
			return c
		}
		return cmp.Compare(a.Invariant, b.Invariant)
	})
}

// chunkOut accumulates one worker's share of a block expansion. It lives on
// the worker and is reused block after block: fresh keeps its capacity
// across drains, so the steady state allocates nothing here.
type chunkOut struct {
	fresh []frontierEntry
	work  int64
	dedup int64
	viols []*Violation
	goal  bool
	// cands accumulates cluster-mode candidate successors (see cluster.go);
	// unused in single-process runs.
	cands []clusterCand
}

// expandWorker is one member of the persistent expansion pool. Its scratch
// buffer (pooled successor enumeration) and accumulators live as long as
// the pool, so per-block allocation is amortised away.
type expandWorker struct {
	c   *Checker
	buf []spec.Succ
	out chunkOut
	// osc is the worker-private orbit-hash scratch: the incremental
	// canonicalization path (spec.OrbitHasher) reuses its sub-digest arrays
	// across every successor this worker ever hashes, so the hot loop does
	// not allocate.
	osc fp.OrbitScratch
	// wc is the worker's private coverage accumulator (nil unless
	// Options.Cover); it is folded into the run profile and reset at the
	// same block barrier that drains out.
	wc *obs.WorkerCover
}

// expandJob is one frontier block broadcast to the pool. Workers claim
// dynamically sized sub-chunks by bumping cursor; a worker that draws
// expensive states simply claims fewer chunks.
type expandJob struct {
	entries []frontierEntry
	depth   int
	chunk   int
	cursor  atomic.Int64
	done    sync.WaitGroup
}

// expandPool is the persistent expansion worker pool: workers goroutines
// started once per Run and fed frontier blocks until close. Worker 0 is the
// caller's goroutine — with Workers=1 the pool spawns nothing and expansion
// runs inline.
type expandPool struct {
	c    *Checker
	invs []spec.Invariant
	ws   []*expandWorker
	jobs []chan *expandJob // one channel per background worker (ws[1:])
}

func (c *Checker) newExpandPool(workers int, invs []spec.Invariant) *expandPool {
	p := &expandPool{c: c, invs: invs, ws: make([]*expandWorker, workers)}
	for i := range p.ws {
		p.ws[i] = &expandWorker{c: c}
		if c.cover != nil {
			p.ws[i].wc = obs.NewWorkerCover()
		}
	}
	p.jobs = make([]chan *expandJob, workers-1)
	for i := range p.jobs {
		ch := make(chan *expandJob, 1)
		p.jobs[i] = ch
		w := p.ws[i+1]
		go func() {
			for job := range ch {
				w.run(p, job)
				job.done.Done()
			}
		}()
	}
	return p
}

// close shuts the pool's background goroutines down. The pool must be
// quiescent (no expand in flight).
func (p *expandPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// expand fans one frontier block across the pool and returns when every
// state in it has been expanded and inserted. Small blocks skip the
// broadcast and run inline on the caller's goroutine.
func (p *expandPool) expand(entries []frontierEntry, depth int) {
	workers := len(p.ws)
	if workers == 1 || len(entries) < 2*workers {
		p.ws[0].expandChunkAny(p, entries, depth)
		return
	}
	job := &expandJob{entries: entries, depth: depth, chunk: chunkSize(len(entries), workers)}
	job.done.Add(len(p.jobs))
	for _, ch := range p.jobs {
		ch <- job
	}
	p.ws[0].run(p, job)
	job.done.Wait()
}

// drainInto folds every worker's accumulators into the caller's level state
// and resets them for the next block. The fresh slices keep their capacity;
// their state pointers are cleared so drained states do not outlive the
// level in worker-owned memory.
func (p *expandPool) drainInto(res *Result, next *[]frontierEntry, viols *[]*Violation) {
	cover := p.c.cover
	for _, w := range p.ws {
		cover.MergeWorker(w.wc)
		out := &w.out
		// Every enumerated successor was canonicalized exactly once, so
		// out.work doubles as the block's canonicalization count. Folding it
		// here keeps the counter off the hot path (and out of Result, which
		// must stay byte-identical across pipelines).
		p.c.countCanon(out.work)
		res.Transitions += out.work
		res.DedupHits += out.dedup
		res.DistinctStates += len(out.fresh)
		*next = append(*next, out.fresh...)
		if out.goal {
			res.GoalReached = true
		}
		*viols = append(*viols, out.viols...)
		for i := range out.fresh {
			out.fresh[i].state = nil
		}
		out.fresh = out.fresh[:0]
		out.work, out.dedup, out.viols, out.goal = 0, 0, nil, false
	}
}

// chunkSize picks the dynamic sub-chunk length for a block: small enough
// that each worker claims many chunks (so uneven successor counts balance
// out), large enough to amortise the atomic cursor bump.
func chunkSize(n, workers int) int {
	return max(16, min(1024, n/(workers*16)))
}

// run claims sub-chunks off the job's cursor until the block is exhausted.
func (w *expandWorker) run(p *expandPool, job *expandJob) {
	for {
		end := int(job.cursor.Add(int64(job.chunk)))
		lo := end - job.chunk
		if lo >= len(job.entries) {
			return
		}
		w.expandChunkAny(p, job.entries[lo:min(end, len(job.entries))], job.depth)
	}
}

// expandChunkAny dispatches a sub-chunk to the single-process or cluster
// expansion path.
func (w *expandWorker) expandChunkAny(p *expandPool, entries []frontierEntry, depth int) {
	if w.c.cluster != nil {
		w.expandChunkCluster(entries, depth)
	} else {
		w.expandChunk(p, entries, depth)
	}
}

// expandChunk expands one sub-chunk: pooled successor enumeration,
// canonical fingerprints, probe-and-insert into the shared fingerprint set,
// and goal/invariant checks on fresh states. Results accumulate on the
// worker until the block-level drain.
func (w *expandWorker) expandChunk(p *expandPool, entries []frontierEntry, depth int) {
	c := w.c
	out := &w.out
	goal := c.opts.Goal
	for _, fe := range entries {
		w.buf = c.nextInto(fe.state, w.buf[:0])
		out.work += int64(len(w.buf))
		for _, su := range w.buf {
			fp, reduced := c.canonicalFPScratch(su.State, &w.osc)
			fresh := c.visited.Insert(fp, fe.fp, int32(depth))
			if wc := w.wc; wc != nil {
				if reduced {
					wc.SymmetryHit()
				}
				wc.Observe(su.Event.Action, depth, fresh)
			}
			if !fresh {
				out.dedup++
				continue
			}
			out.fresh = append(out.fresh, frontierEntry{state: su.State, fp: fp})
			if goal != nil && !out.goal && goal(su.State) {
				out.goal = true
			}
			if v := checkInvariants(p.invs, su.State, depth, fp); v != nil {
				out.viols = append(out.viols, v)
			}
		}
	}
}

func checkInvariants(invs []spec.Invariant, s spec.State, depth int, fp uint64) *Violation {
	for _, inv := range invs {
		if err := inv.Check(s); err != nil {
			return &Violation{Invariant: inv.Name, Err: err, Depth: depth, fp: fp}
		}
	}
	return nil
}
