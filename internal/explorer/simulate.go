package explorer

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"github.com/sandtable-go/sandtable/internal/fpset"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// SimOptions configures simulation (random walk) mode — the analogue of
// TLC's simulation mode, used by conformance checking (§3.2) and constraint
// ranking (Algorithm 1).
type SimOptions struct {
	// MaxDepth bounds each walk (0 = walk until no transition is enabled).
	MaxDepth int
	// Seed makes walks reproducible; each walk i uses Seed+i.
	Seed int64
	// CheckInvariants stops a walk at the first invariant violation.
	CheckInvariants bool
	// RecordVars includes per-step variable maps in the produced traces
	// (required for conformance checking).
	RecordVars bool
	// Context, when non-nil, cancels a Walks loop cooperatively: it is
	// checked between walks, and the returned slice holds only the walks
	// completed before cancellation.
	Context context.Context
	// TrackDistinct deduplicates visited states across walks in a shared
	// fingerprint set (internal/fpset — the same structure backing the BFS
	// checker), so WalkStats.FreshStates and AggregateStats.DistinctStates
	// measure how much new ground each walk actually covers. Off by
	// default: the set grows with the number of distinct states touched.
	TrackDistinct bool

	// Progress, when set, receives periodic snapshots during Walks: Depth
	// carries the walk index, DistinctStates/Transitions the cumulative
	// steps walked. Cadence as in explorer.Options (default 5s).
	Progress obs.ProgressFunc
	// ProgressInterval is the minimum wall-clock time between reports.
	ProgressInterval time.Duration
	// ProgressStates reports every N walked steps.
	ProgressStates int
	// Metrics, when set, receives walk counters (walks, walk_steps,
	// violations, deadlocks) and a walk_depth histogram.
	Metrics *obs.Registry
	// Tracer, when set, receives one "walk" summary event per walk.
	Tracer *obs.Tracer
	// Cover enables the coverage profiler across walks: per-action fire
	// counts (and fresh-state yield when TrackDistinct is also set),
	// retrievable via Simulator.Cover. Each walk accumulates privately and
	// merges at its end, so concurrent Walk calls stay safe.
	Cover bool
}

// WalkStats captures the per-walk data Algorithm 1 collects: branch coverage
// (distinct specification actions fired), event diversity (distinct event
// types), and exploration depth.
type WalkStats struct {
	Depth      int
	Actions    map[string]int
	EventTypes map[trace.EventType]int
	// FreshStates counts states this walk visited that no earlier walk of
	// the same Simulator had seen (0 unless SimOptions.TrackDistinct).
	FreshStates int
	// Terminal reports why the walk ended: "deadlock" (no enabled
	// transition), "max-depth", or "violation".
	Terminal string
}

// BranchCoverage is the number of distinct actions fired during the walk.
func (w *WalkStats) BranchCoverage() int { return len(w.Actions) }

// EventDiversity is the number of distinct event types fired.
func (w *WalkStats) EventDiversity() int { return len(w.EventTypes) }

// WalkResult is one random walk: its trace, stats, and any violation hit.
type WalkResult struct {
	Trace     *trace.Trace
	Stats     WalkStats
	Violation *Violation
	Elapsed   time.Duration
}

// Simulator runs seeded random walks over a specification. Its methods are
// safe for concurrent use (conformance checking shares one Simulator across
// goroutines): walk-local scratch lives on the stack, never the Simulator.
type Simulator struct {
	m    spec.Machine
	opts SimOptions

	// bm is non-nil when the machine supports pooled successor enumeration.
	bm spec.BufferedMachine

	// distinct deduplicates states across walks (nil unless TrackDistinct).
	distinct *fpset.Set

	// cover aggregates the coverage profile across walks (nil unless
	// SimOptions.Cover); coverMu serialises the per-walk merges so Walk
	// stays safe for concurrent use.
	coverMu sync.Mutex
	cover   *obs.Cover
}

// NewSimulator builds a simulator for machine m.
func NewSimulator(m spec.Machine, opts SimOptions) *Simulator {
	s := &Simulator{m: m, opts: opts}
	s.bm, _ = m.(spec.BufferedMachine)
	if opts.TrackDistinct {
		s.distinct = fpset.New(1)
	}
	if opts.Cover {
		s.cover = obs.NewCover("simulate", spec.DeclaredActions(m))
	}
	return s
}

// Cover returns the coverage profile aggregated over every walk performed
// so far (nil unless SimOptions.Cover). The returned profile must not be
// read concurrently with in-flight walks.
func (s *Simulator) Cover() *obs.Cover { return s.cover }

// Distinct returns the number of distinct states visited across all walks
// performed so far (0 unless SimOptions.TrackDistinct).
func (s *Simulator) Distinct() int64 {
	if s.distinct == nil {
		return 0
	}
	return s.distinct.Len()
}

// Walk performs a single random walk with the given seed.
func (s *Simulator) Walk(seed int64) *WalkResult {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	invs := s.m.Invariants()

	inits := s.m.Init()
	cur := inits[rng.Intn(len(inits))]

	res := &WalkResult{
		Trace: &trace.Trace{System: s.m.Name()},
		Stats: WalkStats{
			Actions:    make(map[string]int),
			EventTypes: make(map[trace.EventType]int),
		},
	}
	if s.opts.RecordVars {
		res.Trace.Init = cur.Vars()
	}
	if s.distinct != nil && s.distinct.Insert(cur.Fingerprint(), 0, 0) {
		res.Stats.FreshStates++
	}

	// wc is the walk-local coverage accumulator (nil calls no-op): walks may
	// run concurrently, so the shared profile is only touched once, under
	// lock, when the walk ends.
	var wc *obs.WorkerCover
	if s.cover != nil {
		wc = obs.NewWorkerCover()
	}

	// buf is walk-local (Walk must stay goroutine-safe) but reused across
	// the walk's steps, so successor enumeration allocates per step only
	// while the buffer is still growing to the walk's fan-out high-water.
	var buf []spec.Succ
	for depth := 0; s.opts.MaxDepth == 0 || depth < s.opts.MaxDepth; depth++ {
		var succs []spec.Succ
		if s.bm != nil {
			buf = s.bm.AppendNext(cur, buf[:0])
			succs = buf
		} else {
			succs = s.m.Next(cur)
		}
		if len(succs) == 0 {
			res.Stats.Terminal = "deadlock"
			break
		}
		pick := succs[rng.Intn(len(succs))]
		cur = pick.State
		res.Stats.Depth++
		res.Stats.Actions[pick.Event.Action]++
		res.Stats.EventTypes[pick.Event.Type]++

		fresh := s.distinct != nil && s.distinct.Insert(cur.Fingerprint(), 0, int32(res.Stats.Depth))
		if fresh {
			res.Stats.FreshStates++
		}
		wc.Observe(pick.Event.Action, res.Stats.Depth, fresh)
		step := trace.Step{Event: pick.Event, Fingerprint: cur.Fingerprint()}
		if s.opts.RecordVars {
			step.Vars = cur.Vars()
		}
		res.Trace.Steps = append(res.Trace.Steps, step)

		if s.opts.CheckInvariants {
			if v := checkInvariants(invs, cur, res.Stats.Depth, 0); v != nil {
				v.Trace = res.Trace
				res.Violation = v
				res.Stats.Terminal = "violation"
				break
			}
		}
	}
	if res.Stats.Terminal == "" {
		res.Stats.Terminal = "max-depth"
	}
	if s.cover != nil {
		s.coverMu.Lock()
		s.cover.MergeWorker(wc)
		s.coverMu.Unlock()
	}
	res.Elapsed = time.Since(start)
	return res
}

// Walks performs n seeded walks (seeds Seed..Seed+n-1) and returns them,
// reporting progress and metrics on the configured cadence.
func (s *Simulator) Walks(n int) []*WalkResult {
	interval := s.opts.ProgressInterval
	if s.opts.Progress != nil && interval == 0 && s.opts.ProgressStates == 0 {
		interval = 5 * time.Second
	}
	reporter := obs.NewReporter(s.opts.Progress, interval, s.opts.ProgressStates)
	reporter.Tracer = s.opts.Tracer
	var walkDepth *obs.Histogram
	if s.opts.Metrics != nil {
		walkDepth = s.opts.Metrics.Histogram("walk_depth", []int64{5, 10, 20, 50, 100, 500})
	}

	out := make([]*WalkResult, n)
	steps := int64(0)
	for i := range out {
		if s.opts.Context != nil && s.opts.Context.Err() != nil {
			out = out[:i]
			break
		}
		w := s.Walk(s.opts.Seed + int64(i))
		out[i] = w
		steps += int64(w.Stats.Depth)

		if reg := s.opts.Metrics; reg != nil {
			reg.Counter("walks").Inc()
			reg.Counter("walk_steps").Add(int64(w.Stats.Depth))
			walkDepth.Observe(int64(w.Stats.Depth))
			switch w.Stats.Terminal {
			case "violation":
				reg.Counter("violations").Inc()
			case "deadlock":
				reg.Counter("deadlocks").Inc()
			}
		}
		if s.opts.Tracer != nil {
			s.opts.Tracer.Emit(obs.Event{
				Layer: "spec", Kind: "walk", Node: -1,
				Detail: map[string]string{
					"walk":     strconv.Itoa(i),
					"seed":     strconv.FormatInt(s.opts.Seed+int64(i), 10),
					"depth":    strconv.Itoa(w.Stats.Depth),
					"terminal": w.Stats.Terminal,
					"actions":  strconv.Itoa(w.Stats.BranchCoverage()),
				},
			})
		}
		reporter.Maybe(obs.Progress{
			DistinctStates: int(steps),
			Transitions:    steps,
			Depth:          i + 1,
		})
	}
	if s.opts.Progress != nil {
		reporter.Emit(obs.Progress{DistinctStates: int(steps), Transitions: steps, Depth: len(out), Final: true})
	}
	return out
}

// AggregateStats merges per-walk stats: union of branch coverage and event
// diversity, maximum depth — the data Algorithm 1 sorts constraints by.
type AggregateStats struct {
	Walks          int
	BranchCoverage int
	EventDiversity int
	MaxDepth       int
	MeanDepth      float64
	Violations     int
	// DistinctStates is the number of distinct states touched across all
	// walks (0 unless SimOptions.TrackDistinct; each fresh state is counted
	// by exactly one walk, so the per-walk FreshStates sum to it).
	DistinctStates int
	TotalElapsed   time.Duration
}

// Aggregate folds walk results into aggregate statistics.
func Aggregate(walks []*WalkResult) AggregateStats {
	agg := AggregateStats{Walks: len(walks)}
	actions := make(map[string]struct{})
	events := make(map[trace.EventType]struct{})
	total := 0
	for _, w := range walks {
		for a := range w.Stats.Actions {
			actions[a] = struct{}{}
		}
		for e := range w.Stats.EventTypes {
			events[e] = struct{}{}
		}
		if w.Stats.Depth > agg.MaxDepth {
			agg.MaxDepth = w.Stats.Depth
		}
		agg.DistinctStates += w.Stats.FreshStates
		total += w.Stats.Depth
		if w.Violation != nil {
			agg.Violations++
		}
		agg.TotalElapsed += w.Elapsed
	}
	agg.BranchCoverage = len(actions)
	agg.EventDiversity = len(events)
	if len(walks) > 0 {
		agg.MeanDepth = float64(total) / float64(len(walks))
	}
	return agg
}
