package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

func sampleCover() *obs.Cover {
	c := obs.NewCover("bfs", []string{"ClientRequest", "HandleVote", "Timeout"})
	c.Observe("ClientRequest", 1, true)
	c.Observe("ClientRequest", 2, true)
	c.Observe("ClientRequest", 2, false)
	c.Observe("HandleVote", 2, false)
	c.Levels = append(c.Levels,
		obs.LevelStats{Depth: 0, Frontier: 1, Fresh: 1},
		obs.LevelStats{Depth: 1, Frontier: 1, Fresh: 2, Transitions: 3, Dedup: 1, FpsetProbes: 4, Checkpoint: true},
	)
	c.SymmetryHits = 5
	return c
}

func sampleMetrics() map[string]any {
	return map[string]any{
		"schema":                   float64(obs.MetricsSchemaVersion),
		"distinct_states":          float64(3),
		"explorer.canonical.orbit": float64(42),
		"explorer.canonical.flat":  float64(0),
		"result": map[string]any{
			"distinct_states":      float64(3),
			"transitions":          float64(3),
			"dedup_ratio":          0.25,
			"duration_ns":          float64(1.5e9),
			"stop_reason":          "violation",
			"violations":           float64(1),
			"first_violation":      "invariant Agreement violated at depth 2: boom",
			"shrink_original_len":  float64(12),
			"shrink_minimized_len": float64(4),
			"shrink_attempts":      float64(9),
		},
	}
}

// TestRenderSections: every section renders with the expected content, and
// never-fired actions are flagged loudly.
func TestRenderSections(t *testing.T) {
	d := &Data{
		Cover:   sampleCover(),
		Metrics: sampleMetrics(),
		Events: []obs.Event{
			{V: 1, Seq: 1, Layer: "spec", Kind: "level", Node: -1,
				Detail: map[string]string{"depth": "1", "distinct": "3", "queue": "2", "transitions": "3", "dedup_hits": "1"}},
			{V: 1, Seq: 2, Layer: "obs", Kind: "stall", Node: -1,
				Detail: map[string]string{"reports": "3", "distinct": "3", "depth": "1"}},
		},
	}
	var b strings.Builder
	if err := Render(&b, d); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# SandTable run report",
		"## Run summary",
		"| stop_reason | violation |",
		"| dedup_ratio | 25.0% |",
		"| duration_ns | 1.500s |",
		"| canonicalizations (incremental orbit) | 42 |",
		"## Action coverage",
		"| ClientRequest | 3 | 2 | 66.7% | 1 | 2 |",
		"| HandleVote | 1 | 0 | 0.0% | 2 | — | zero yield |",
		"| Timeout | 0 | 0 | — | — | — | **NEVER FIRED** |",
		"1 declared action(s) never fired: Timeout",
		"Symmetry reduction collapsed 5 successor(s)",
		"## Depth profile",
		"⏺",
		"## Throughput timeline",
		"| 1 | 1 | 3 | 2 | 3 | 1 |",
		"**Stall warning** after 3 report(s)",
		"## Counterexample",
		"First violation: invariant Agreement violated at depth 2: boom",
		"Shrink: 12 → 4 events (9 candidate(s) evaluated)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}

	// Rendering is deterministic.
	var b2 strings.Builder
	if err := Render(&b2, d); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Fatal("non-deterministic report")
	}
}

// TestRenderMemorySection: the "Memory & spill" section appears exactly when
// the run carried a budget or spilled, with humanised sizes, and flags
// checkpoint write failures.
func TestRenderMemorySection(t *testing.T) {
	d := &Data{Metrics: map[string]any{
		"mem_budget_bytes":                  float64(8 << 30),
		"heap_inuse_bytes":                  float64(6442450944),
		"fpset.spilled_entries":             float64(120000),
		"fpset.spilled_shards":              float64(3),
		"fpset.spill_runs":                  float64(2),
		"fpset.spill_bytes":                 float64(2400000),
		"fpset.disk_probes":                 float64(55555),
		"explorer.frontier_spill_bytes":     float64(1 << 20),
		"explorer.frontier_spilled_entries": float64(4096),
		"checkpoint.deltas":                 float64(7),
		"checkpoint.delta_bytes":            float64(900 << 10),
		"checkpoint.compactions":            float64(1),
		"checkpoint.errors":                 float64(2),
	}}
	var b strings.Builder
	if err := Render(&b, d); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"## Memory & spill",
		"| memory budget | 8.00 GiB |",
		"| heap in use (last sample) | 6.00 GiB |",
		"| fingerprints spilled to disk | 120000 |",
		"| shard spill passes | 3 |",
		"| fingerprint spill size | 2.29 MiB |",
		"| disk probes | 55555 |",
		"| frontier spilled | 1.00 MiB |",
		"| frontier states spilled | 4096 |",
		"| checkpoint delta blocks | 7 |",
		"| checkpoint delta size | 900.0 KiB |",
		"| checkpoint compactions | 1 |",
		"| **checkpoint write failures** | 2 |",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("memory section missing %q:\n%s", want, text)
		}
	}

	// An in-RAM run (all spill metrics zero or absent) renders no section.
	var b2 strings.Builder
	if err := Render(&b2, &Data{Metrics: map[string]any{
		"mem_budget_bytes":      float64(0),
		"fpset.spilled_entries": float64(0),
	}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "## Memory & spill") {
		t.Fatalf("in-RAM run rendered a memory section:\n%s", b2.String())
	}
}

// TestRenderPartialData: a report from nothing but a coverage profile (or
// nothing at all) must not emit empty sections or panic.
func TestRenderPartialData(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, &Data{}); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"## Run summary", "## Action coverage", "## Depth profile", "## Throughput timeline", "## Counterexample", "## Memory & spill"} {
		if strings.Contains(b.String(), section) {
			t.Fatalf("empty data rendered section %s", section)
		}
	}

	b.Reset()
	if err := Render(&b, &Data{Cover: sampleCover()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## Action coverage") || strings.Contains(b.String(), "## Run summary") {
		t.Fatalf("cover-only report wrong:\n%s", b.String())
	}
}

// TestFromFiles: artifacts written to disk round-trip into a full report,
// including the embedded coverage profile.
func TestFromFiles(t *testing.T) {
	dir := t.TempDir()
	metrics := sampleMetrics()
	metrics["cover"] = sampleCover()
	buf, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, "metrics.json")
	if err := os.WriteFile(mpath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	tpath := filepath.Join(dir, "trace.jsonl")
	tf, err := os.Create(tpath)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(tf)
	tr.Emit(obs.Event{Layer: "spec", Kind: "level", Node: -1, Detail: map[string]string{"depth": "1", "distinct": "3"}})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	d, err := FromFiles(mpath, tpath)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cover == nil || d.Cover.Mode != "bfs" {
		t.Fatalf("cover not decoded: %+v", d.Cover)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "level" {
		t.Fatalf("events = %+v", d.Events)
	}
	if !strings.Contains(d.Source, "metrics.json") || !strings.Contains(d.Source, "trace.jsonl") {
		t.Fatalf("source = %q", d.Source)
	}

	out := filepath.Join(dir, "report.md")
	if err := WriteFile(out, d); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "**NEVER FIRED**") {
		t.Fatalf("written report missing never-fired flag:\n%s", text)
	}

	// Metrics-only and trace-only loads both work.
	if d, err := FromFiles(mpath, ""); err != nil || d.Events != nil {
		t.Fatalf("metrics-only: %v %+v", err, d)
	}
	if d, err := FromFiles("", tpath); err != nil || d.Cover != nil {
		t.Fatalf("trace-only: %v %+v", err, d)
	}
	if _, err := FromFiles(filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Fatal("missing metrics file not reported")
	}
}
