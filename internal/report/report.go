// Package report renders post-run Markdown reports from SandTable's
// observability artifacts: the -metrics-out JSON snapshot (run counters,
// result summary, coverage profile) and the optional -trace-out JSONL event
// stream. The report answers the questions a finished run raises — which
// actions fired and which never did, where the state space grew and where it
// saturated, how throughput evolved, and what the counterexample (if any)
// looked like — without re-running anything.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// Data is everything a report can draw on. Every field is optional: the
// renderer emits only the sections its inputs support.
type Data struct {
	// Title heads the report (defaults to "SandTable run report").
	Title string
	// Source describes where the data came from (artifact paths or
	// "in-memory run"), printed under the title.
	Source string
	// Note, when set, is printed emphasised under the source line — used by
	// the serve API to mark a report rendered from a live registry snapshot
	// of a still-running job as partial.
	Note string
	// Metrics is the decoded -metrics-out snapshot: counters, histogram
	// quantiles, and the "result" summary map.
	Metrics map[string]any
	// Cover is the coverage profile (decoded from the snapshot's "cover"
	// key, or handed over directly after an in-process run).
	Cover *obs.Cover
	// Events is the decoded -trace-out stream, used for the timeline and
	// stall annotations.
	Events []obs.Event
}

// FromFiles loads report data from artifact files. metricsPath and
// tracePath may each be empty; present files must parse.
func FromFiles(metricsPath, tracePath string) (*Data, error) {
	d := &Data{}
	var sources []string
	if metricsPath != "" {
		raw, err := os.ReadFile(metricsPath)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(raw, &d.Metrics); err != nil {
			return nil, fmt.Errorf("report: %s: %w", metricsPath, err)
		}
		if cv, ok := d.Metrics["cover"]; ok {
			// Round-trip the nested map through JSON into the typed profile.
			buf, err := json.Marshal(cv)
			if err == nil {
				var cover obs.Cover
				if err := json.Unmarshal(buf, &cover); err == nil {
					d.Cover = &cover
				}
			}
		}
		sources = append(sources, metricsPath)
	}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		evs, err := obs.ReadEvents(f)
		if err != nil {
			return nil, err
		}
		d.Events = evs
		sources = append(sources, tracePath)
	}
	d.Source = strings.Join(sources, ", ")
	return d, nil
}

// Render writes the Markdown report. Output is deterministic for a given
// Data value (sorted keys, stable section order).
func Render(w io.Writer, d *Data) error {
	b := &strings.Builder{}
	title := d.Title
	if title == "" {
		title = "SandTable run report"
	}
	fmt.Fprintf(b, "# %s\n", title)
	if d.Source != "" {
		fmt.Fprintf(b, "\nSource: `%s`\n", d.Source)
	}
	if d.Note != "" {
		fmt.Fprintf(b, "\n*%s*\n", d.Note)
	}
	renderSummary(b, d)
	renderMemory(b, d)
	renderCluster(b, d)
	renderCoverage(b, d.Cover)
	renderDepthProfile(b, d.Cover)
	renderTimeline(b, d.Events)
	renderCounterexample(b, d)
	_, err := io.WriteString(w, b.String())
	return err
}

// summaryOrder fixes the display order of the best-known result keys; any
// others follow alphabetically.
var summaryOrder = []string{
	"distinct_states", "transitions", "dedup_hits", "dedup_ratio",
	"states_per_sec", "max_depth", "max_queue_len", "duration_ns",
	"stop_reason", "exhausted", "violations", "resumed", "checkpoints",
	"walks", "events_checked", "passed", "confirmed", "steps",
}

func renderSummary(b *strings.Builder, d *Data) {
	result, _ := d.Metrics["result"].(map[string]any)
	if len(result) == 0 {
		return
	}
	fmt.Fprintf(b, "\n## Run summary\n\n| metric | value |\n|---|---|\n")
	done := map[string]bool{}
	emit := func(k string) {
		v, ok := result[k]
		if !ok || done[k] {
			return
		}
		done[k] = true
		fmt.Fprintf(b, "| %s | %s |\n", k, formatValue(k, v))
	}
	for _, k := range summaryOrder {
		emit(k)
	}
	var rest []string
	for k := range result {
		if !done[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		emit(k)
	}
	// Canonicalization pipeline attribution: which path served the run's
	// symmetry reduction. The counters live beside the run's gauges, not in
	// the result map, so that orbit-on and orbit-off runs stay comparable.
	if orbit, ok := metricNum(d.Metrics, "explorer.canonical.orbit"); ok && orbit > 0 {
		fmt.Fprintf(b, "| canonicalizations (incremental orbit) | %.0f |\n", orbit)
	}
	if flat, ok := metricNum(d.Metrics, "explorer.canonical.flat"); ok && flat > 0 {
		fmt.Fprintf(b, "| canonicalizations (flat per-permutation) | %.0f |\n", flat)
	}
}

// formatValue renders a summary value: durations humanised, ratios as
// percentages, floats trimmed, everything else verbatim. Numbers may arrive
// as float64 (decoded JSON) or as Go integer types (in-memory snapshots).
func formatValue(key string, v any) string {
	var f float64
	isNum := true
	switch n := v.(type) {
	case float64:
		f = n
	case int:
		f = float64(n)
	case int64:
		f = float64(n)
	default:
		isNum = false
	}
	switch {
	case isNum && strings.HasSuffix(key, "_ns"):
		return fmt.Sprintf("%.3fs", f/1e9)
	case isNum && strings.HasSuffix(key, "_ratio"):
		return fmt.Sprintf("%.1f%%", 100*f)
	case isNum && f == float64(int64(f)):
		return fmt.Sprintf("%d", int64(f))
	case isNum:
		return fmt.Sprintf("%.1f", f)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// metricNum extracts a numeric top-level metric from the snapshot. Numbers
// arrive as float64 when the snapshot was decoded from JSON and as Go
// integer types when handed over in-process.
func metricNum(m map[string]any, key string) (float64, bool) {
	switch n := m[key].(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}

// formatBytes humanises a byte count for the memory section.
func formatBytes(f float64) string {
	switch {
	case f >= 1<<30:
		return fmt.Sprintf("%.2f GiB", f/(1<<30))
	case f >= 1<<20:
		return fmt.Sprintf("%.2f MiB", f/(1<<20))
	case f >= 1<<10:
		return fmt.Sprintf("%.1f KiB", f/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", f)
	}
}

// renderMemory emits the "Memory & spill" section when the run carried a
// memory budget or produced out-of-core activity: how much of the
// fingerprint set and frontier went to disk, what disk lookups cost, and how
// the incremental checkpoint chain grew. Silent for fully in-RAM runs.
func renderMemory(b *strings.Builder, d *Data) {
	budget, _ := metricNum(d.Metrics, "mem_budget_bytes")
	spilledEntries, _ := metricNum(d.Metrics, "fpset.spilled_entries")
	frontierBytes, _ := metricNum(d.Metrics, "explorer.frontier_spill_bytes")
	deltas, _ := metricNum(d.Metrics, "checkpoint.deltas")
	ckErrors, _ := metricNum(d.Metrics, "checkpoint.errors")
	if budget == 0 && spilledEntries == 0 && frontierBytes == 0 && deltas == 0 && ckErrors == 0 {
		return
	}
	fmt.Fprintf(b, "\n## Memory & spill\n\n| metric | value |\n|---|---|\n")
	row := func(label, val string) { fmt.Fprintf(b, "| %s | %s |\n", label, val) }
	if budget > 0 {
		row("memory budget", formatBytes(budget))
	}
	if heap, ok := metricNum(d.Metrics, "heap_inuse_bytes"); ok && heap > 0 {
		row("heap in use (last sample)", formatBytes(heap))
	}
	if spilledEntries > 0 {
		row("fingerprints spilled to disk", fmt.Sprintf("%.0f", spilledEntries))
		if shards, ok := metricNum(d.Metrics, "fpset.spilled_shards"); ok && shards > 0 {
			row("shard spill passes", fmt.Sprintf("%.0f", shards))
		}
		if runs, ok := metricNum(d.Metrics, "fpset.spill_runs"); ok {
			row("open spill runs", fmt.Sprintf("%.0f", runs))
		}
		if bytes, ok := metricNum(d.Metrics, "fpset.spill_bytes"); ok && bytes > 0 {
			row("fingerprint spill size", formatBytes(bytes))
		}
		if probes, ok := metricNum(d.Metrics, "fpset.disk_probes"); ok {
			row("disk probes", fmt.Sprintf("%.0f", probes))
		}
	}
	if frontierBytes > 0 {
		row("frontier spilled", formatBytes(frontierBytes))
		if n, ok := metricNum(d.Metrics, "explorer.frontier_spilled_entries"); ok {
			row("frontier states spilled", fmt.Sprintf("%.0f", n))
		}
	}
	if deltas > 0 {
		row("checkpoint delta blocks", fmt.Sprintf("%.0f", deltas))
		if n, ok := metricNum(d.Metrics, "checkpoint.delta_bytes"); ok {
			row("checkpoint delta size", formatBytes(n))
		}
		if n, ok := metricNum(d.Metrics, "checkpoint.compactions"); ok && n > 0 {
			row("checkpoint compactions", fmt.Sprintf("%.0f", n))
		}
	}
	if ckErrors > 0 {
		row("**checkpoint write failures**", fmt.Sprintf("%.0f", ckErrors))
	}
}

// renderCluster emits the "Cluster" section when the run was one peer of
// a distributed exploration (the transport.peers gauge is set): which
// shard this snapshot describes, how much frontier crossed the wire, how
// long this peer waited at level barriers, and what remote edge probes
// (trace reconstruction) cost. Silent for single-process runs.
func renderCluster(b *strings.Builder, d *Data) {
	peers, ok := metricNum(d.Metrics, "transport.peers")
	if !ok || peers <= 0 {
		return
	}
	fmt.Fprintf(b, "\n## Cluster\n\n| metric | value |\n|---|---|\n")
	row := func(label, val string) { fmt.Fprintf(b, "| %s | %s |\n", label, val) }
	if id, ok := metricNum(d.Metrics, "transport.peer_id"); ok {
		role := ""
		if id == 0 {
			role = " (coordinator)"
		}
		row("peer", fmt.Sprintf("%.0f of %.0f%s", id, peers, role))
	}
	if n, ok := metricNum(d.Metrics, "transport.barriers"); ok {
		row("level barriers", fmt.Sprintf("%.0f", n))
	}
	sent, _ := metricNum(d.Metrics, "transport.blocks_sent")
	recv, _ := metricNum(d.Metrics, "transport.blocks_recv")
	row("frontier blocks sent / received", fmt.Sprintf("%.0f / %.0f", sent, recv))
	bsent, _ := metricNum(d.Metrics, "transport.bytes_sent")
	brecv, _ := metricNum(d.Metrics, "transport.bytes_recv")
	row("wire bytes sent / received", fmt.Sprintf("%s / %s", formatBytes(bsent), formatBytes(brecv)))
	if ns, ok := metricNum(d.Metrics, "transport.stall_ns"); ok && ns > 0 {
		row("time waiting at barriers", fmt.Sprintf("%.3fs", ns/1e9))
	}
	if n, ok := metricNum(d.Metrics, "transport.probes"); ok && n > 0 {
		row("remote edge probes", fmt.Sprintf("%.0f", n))
		if p50, ok := metricNum(d.Metrics, "transport.probe_latency_us.p50"); ok {
			p99, _ := metricNum(d.Metrics, "transport.probe_latency_us.p99")
			row("probe latency p50 / p99", fmt.Sprintf("%.0fµs / %.0fµs", p50, p99))
		}
	}
}

func renderCoverage(b *strings.Builder, cover *obs.Cover) {
	if cover == nil {
		return
	}
	fmt.Fprintf(b, "\n## Action coverage\n\n")
	if cover.Mode != "" {
		fmt.Fprintf(b, "Collected in %s mode.", cover.Mode)
		if cover.ResumedAtDepth > 0 {
			fmt.Fprintf(b, " Resumed at depth %d — this profile covers the continuation only.", cover.ResumedAtDepth)
		}
		fmt.Fprintf(b, "\n\n")
	}
	fmt.Fprintf(b, "| action | fired | fresh | yield | first depth | last fresh depth | |\n|---|---|---|---|---|---|---|\n")
	never := map[string]bool{}
	for _, n := range cover.NeverFired() {
		never[n] = true
	}
	for _, name := range cover.ActionNames() {
		a := cover.Actions[name]
		if a == nil || a.Fired == 0 {
			fmt.Fprintf(b, "| %s | 0 | 0 | — | — | — | **NEVER FIRED** |\n", name)
			continue
		}
		flag := ""
		if a.Fresh == 0 {
			flag = "zero yield"
		}
		first, lastFresh := "—", "—"
		if a.FirstDepth >= 0 {
			first = fmt.Sprintf("%d", a.FirstDepth)
		}
		if a.LastFreshDepth >= 0 {
			lastFresh = fmt.Sprintf("%d", a.LastFreshDepth)
		}
		fmt.Fprintf(b, "| %s | %d | %d | %.1f%% | %s | %s | %s |\n",
			name, a.Fired, a.Fresh, 100*a.Yield(), first, lastFresh, flag)
	}
	if nf := cover.NeverFired(); len(nf) > 0 {
		fmt.Fprintf(b, "\n**Warning:** %d declared action(s) never fired: %s. "+
			"Either the budget never enables them or the declared vocabulary has drifted from the model.\n",
			len(nf), strings.Join(nf, ", "))
	}
	if cover.SymmetryHits > 0 {
		fmt.Fprintf(b, "\nSymmetry reduction collapsed %d successor(s) onto canonical representatives.\n", cover.SymmetryHits)
	}
}

// barWidth is the histogram bar scale in characters.
const barWidth = 40

func renderDepthProfile(b *strings.Builder, cover *obs.Cover) {
	if cover == nil || len(cover.Levels) == 0 {
		return
	}
	maxFresh := 0
	for _, lv := range cover.Levels {
		if lv.Fresh > maxFresh {
			maxFresh = lv.Fresh
		}
	}
	fmt.Fprintf(b, "\n## Depth profile\n\n")
	fmt.Fprintf(b, "| depth | frontier | fresh | transitions | dedup | fp probes | viol | fresh states |\n|---|---|---|---|---|---|---|---|\n")
	for _, lv := range cover.Levels {
		bar := ""
		if maxFresh > 0 {
			bar = strings.Repeat("█", lv.Fresh*barWidth/maxFresh)
		}
		mark := ""
		if lv.Checkpoint {
			mark = " ⏺"
		}
		fmt.Fprintf(b, "| %d | %d | %d | %d | %.1f%% | %d | %d | `%s`%s |\n",
			lv.Depth, lv.Frontier, lv.Fresh, lv.Transitions, 100*lv.DedupRatio(), lv.FpsetProbes, lv.Violations, bar, mark)
	}
	fmt.Fprintf(b, "\n(`⏺` marks levels where a checkpoint was written.)\n")
}

func renderTimeline(b *strings.Builder, events []obs.Event) {
	var levels []obs.Event
	var stalls []obs.Event
	for _, e := range events {
		switch {
		case e.Layer == "spec" && e.Kind == "level":
			levels = append(levels, e)
		case e.Layer == "obs" && e.Kind == "stall":
			stalls = append(stalls, e)
		}
	}
	if len(levels) == 0 && len(stalls) == 0 {
		return
	}
	fmt.Fprintf(b, "\n## Throughput timeline\n\n")
	if len(levels) > 0 {
		fmt.Fprintf(b, "| seq | depth | distinct | queue | transitions | dedup hits |\n|---|---|---|---|---|---|\n")
		for _, e := range levels {
			fmt.Fprintf(b, "| %d | %s | %s | %s | %s | %s |\n", e.Seq,
				orDash(e.Detail["depth"]), orDash(e.Detail["distinct"]), orDash(e.Detail["queue"]),
				orDash(e.Detail["transitions"]), orDash(e.Detail["dedup_hits"]))
		}
	}
	for _, e := range stalls {
		fmt.Fprintf(b, "\n**Stall warning** after %s report(s) without new distinct states (distinct %s, depth %s).\n",
			orDash(e.Detail["reports"]), orDash(e.Detail["distinct"]), orDash(e.Detail["depth"]))
	}
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func renderCounterexample(b *strings.Builder, d *Data) {
	result, _ := d.Metrics["result"].(map[string]any)
	if len(result) == 0 {
		return
	}
	first, hasViolation := result["first_violation"]
	divergence, hasDivergence := result["divergence"]
	discrepancy, hasDiscrepancy := result["discrepancy"]
	_, hasShrink := result["shrink_original_len"]
	if !hasViolation && !hasDivergence && !hasDiscrepancy && !hasShrink {
		return
	}
	fmt.Fprintf(b, "\n## Counterexample\n\n")
	if hasViolation {
		fmt.Fprintf(b, "- First violation: %v\n", first)
	}
	if hasDivergence {
		fmt.Fprintf(b, "- Replay divergence: %v\n", divergence)
	}
	if hasDiscrepancy {
		fmt.Fprintf(b, "- Conformance discrepancy: %v\n", discrepancy)
	}
	if hasShrink {
		orig := formatValue("", result["shrink_original_len"])
		minLen := formatValue("", result["shrink_minimized_len"])
		attempts := formatValue("", result["shrink_attempts"])
		fmt.Fprintf(b, "- Shrink: %s → %s events (%s candidate(s) evaluated)\n", orig, minLen, attempts)
	}
}

// WriteFile renders the report to path ("-" or "" writes to stdout).
func WriteFile(path string, d *Data) error {
	if path == "" || path == "-" {
		return Render(os.Stdout, d)
	}
	var b strings.Builder
	if err := Render(&b, d); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
