// Package ranking implements Algorithm 1 of the paper: ranking budget
// constraints for each model configuration by random-walk heuristics.
//
// For each (configuration, constraint) pair, SandTable performs seeded
// random walks in the specification state space and collects branch
// coverage, event diversity, and exploration depth. Constraints are then
// sorted — by default branch coverage descending, then event diversity
// descending, then depth ascending (a smaller depth indicates a smaller
// space that bounded BFS can exhaust). Users may install a different sort.
package ranking

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Factory instantiates a specification machine from a configuration and a
// budget constraint. Each integrated system registers one.
type Factory func(cfg spec.Config, b spec.Budget) spec.Machine

// Entry is the collected data for one (config, constraint) pair.
type Entry struct {
	Config spec.Config
	Budget spec.Budget
	Stats  explorer.AggregateStats
}

// Less is a sort order over entries. The default order is
// BranchCoverageFirst.
type Less func(a, b *Entry) bool

// BranchCoverageFirst is the paper's built-in sorting function: branch
// coverage decreasing, then event diversity decreasing, then depth
// increasing.
func BranchCoverageFirst(a, b *Entry) bool {
	if a.Stats.BranchCoverage != b.Stats.BranchCoverage {
		return a.Stats.BranchCoverage > b.Stats.BranchCoverage
	}
	if a.Stats.EventDiversity != b.Stats.EventDiversity {
		return a.Stats.EventDiversity > b.Stats.EventDiversity
	}
	if a.Stats.MaxDepth != b.Stats.MaxDepth {
		return a.Stats.MaxDepth < b.Stats.MaxDepth
	}
	return a.Budget.Name < b.Budget.Name
}

// DepthFirst is an alternative order used in the ranking ablation bench:
// it prefers deeper walks outright.
func DepthFirst(a, b *Entry) bool {
	if a.Stats.MaxDepth != b.Stats.MaxDepth {
		return a.Stats.MaxDepth > b.Stats.MaxDepth
	}
	return BranchCoverageFirst(a, b)
}

// Options configures the ranking run.
type Options struct {
	// WalksPerPair is the number of random walks per (config, constraint).
	WalksPerPair int
	// WalkDepth bounds each walk (0 = until deadlock).
	WalkDepth int
	// Seed makes the ranking reproducible.
	Seed int64
	// Timeout bounds the whole ranking run (0 = off).
	Timeout time.Duration
	// Less overrides the sort order (nil = BranchCoverageFirst).
	Less Less
}

// DefaultOptions mirrors the paper's usage: a handful of short walks per
// pair is enough to separate constraint sets.
func DefaultOptions() Options {
	return Options{WalksPerPair: 32, WalkDepth: 0, Seed: 1}
}

// Ranking holds the per-configuration sorted constraint lists.
type Ranking struct {
	ByConfig map[string][]*Entry
	// Truncated reports that Options.Timeout expired before every
	// (config, constraint) pair was walked: the lists only rank the pairs
	// that ran, and later configurations may have no entries at all.
	Truncated bool
	// SkippedPairs counts the (config, constraint) pairs the timeout cut.
	SkippedPairs int
}

// Rank runs Algorithm 1: for every configuration, walk every constraint,
// collect data, and sort the constraints.
func Rank(factory Factory, configs []spec.Config, budgets []spec.Budget, opts Options) *Ranking {
	if opts.WalksPerPair <= 0 {
		opts.WalksPerPair = DefaultOptions().WalksPerPair
	}
	less := opts.Less
	if less == nil {
		less = BranchCoverageFirst
	}
	start := time.Now()
	r := &Ranking{ByConfig: make(map[string][]*Entry)}
	for _, cfg := range configs {
		var entries []*Entry
		for _, b := range budgets {
			if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
				// The timeout cuts the run mid-config: record how many
				// pairs never ran so the partial ranking is not mistaken
				// for a complete one.
				r.Truncated = true
				r.SkippedPairs++
				continue
			}
			m := factory(cfg, b)
			sim := explorer.NewSimulator(m, explorer.SimOptions{
				MaxDepth: opts.WalkDepth,
				Seed:     opts.Seed,
			})
			walks := sim.Walks(opts.WalksPerPair)
			entries = append(entries, &Entry{Config: cfg, Budget: b, Stats: explorer.Aggregate(walks)})
		}
		sort.SliceStable(entries, func(i, j int) bool { return less(entries[i], entries[j]) })
		r.ByConfig[cfg.Name] = entries
	}
	return r
}

// Top returns the n best constraints for a configuration. Out-of-range n is
// clamped to [0, len(entries)].
func (r *Ranking) Top(config string, n int) []*Entry {
	entries := r.ByConfig[config]
	if n < 0 {
		n = 0
	}
	if n > len(entries) {
		n = len(entries)
	}
	return entries[:n]
}

// Format renders the ranking as a table.
func (r *Ranking) Format() string {
	var b strings.Builder
	configs := make([]string, 0, len(r.ByConfig))
	for c := range r.ByConfig {
		configs = append(configs, c)
	}
	sort.Strings(configs)
	for _, c := range configs {
		fmt.Fprintf(&b, "config %s:\n", c)
		fmt.Fprintf(&b, "  %-16s %8s %8s %8s %10s\n", "constraint", "branches", "events", "maxdepth", "meandepth")
		for _, e := range r.ByConfig[c] {
			fmt.Fprintf(&b, "  %-16s %8d %8d %8d %10.1f\n",
				e.Budget.Name, e.Stats.BranchCoverage, e.Stats.EventDiversity, e.Stats.MaxDepth, e.Stats.MeanDepth)
		}
	}
	if r.Truncated {
		fmt.Fprintf(&b, "WARNING: ranking truncated by timeout — %d (config, constraint) pair(s) were not walked\n", r.SkippedPairs)
	}
	return b.String()
}
