package ranking

import (
	"strings"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

// factory instantiates toy machines whose walk depth scales with the
// process count encoded in the budget's MaxDepth field, giving the ranker
// distinguishable constraint sets.
func factory(cfg spec.Config, b spec.Budget) spec.Machine {
	n := b.MaxDepth
	if n <= 0 {
		n = cfg.Nodes
	}
	return &toy.LostUpdate{N: n}
}

func TestRankOrdersByHeuristics(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{
		{Name: "deep", MaxDepth: 4}, // deeper walks, same coverage
		{Name: "shallow", MaxDepth: 2},
	}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 16, Seed: 1})
	entries := r.ByConfig["c"]
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Equal branch coverage and event diversity: the default order prefers
	// the smaller depth (a space bounded BFS can exhaust).
	if entries[0].Budget.Name != "shallow" {
		t.Errorf("default order ranked %q first", entries[0].Budget.Name)
	}
	if top := r.Top("c", 1); len(top) != 1 || top[0].Budget.Name != "shallow" {
		t.Errorf("top = %v", top)
	}
}

func TestDepthFirstOrder(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{
		{Name: "deep", MaxDepth: 4},
		{Name: "shallow", MaxDepth: 2},
	}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 16, Seed: 1, Less: DepthFirst})
	if r.ByConfig["c"][0].Budget.Name != "deep" {
		t.Errorf("depth-first ranked %q first", r.ByConfig["c"][0].Budget.Name)
	}
}

func TestRankIsDeterministic(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{{Name: "a", MaxDepth: 3}, {Name: "b", MaxDepth: 3}}
	r1 := Rank(factory, cfgs, budgets, Options{WalksPerPair: 8, Seed: 5})
	r2 := Rank(factory, cfgs, budgets, Options{WalksPerPair: 8, Seed: 5})
	if r1.Format() != r2.Format() {
		t.Error("same seed produced different rankings")
	}
}

// TestTimeoutSurfacesTruncation is the regression test for the silent
// mid-run timeout: Rank used to break out of the budget loop and hand back
// a partial (or empty) entry list with no indication anything was skipped.
func TestTimeoutSurfacesTruncation(t *testing.T) {
	cfgs := []spec.Config{{Name: "a", Nodes: 2}, {Name: "b", Nodes: 2}}
	budgets := []spec.Budget{{Name: "x", MaxDepth: 2}, {Name: "y", MaxDepth: 3}}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 4, Seed: 1, Timeout: time.Nanosecond})
	if !r.Truncated {
		t.Fatal("timeout truncation not surfaced")
	}
	if r.SkippedPairs == 0 {
		t.Error("no skipped pairs recorded despite immediate timeout")
	}
	ranked := 0
	for _, entries := range r.ByConfig {
		ranked += len(entries)
	}
	if ranked+r.SkippedPairs != len(cfgs)*len(budgets) {
		t.Errorf("ranked %d + skipped %d != %d pairs", ranked, r.SkippedPairs, len(cfgs)*len(budgets))
	}
	if out := r.Format(); !strings.Contains(out, "truncated") {
		t.Errorf("Format does not mention truncation:\n%s", out)
	}
}

// TestCompleteRunIsNotTruncated guards the happy path.
func TestCompleteRunIsNotTruncated(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{{Name: "only", MaxDepth: 2}}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 4, Seed: 1})
	if r.Truncated || r.SkippedPairs != 0 {
		t.Errorf("untimed run marked truncated (skipped %d)", r.SkippedPairs)
	}
	if strings.Contains(r.Format(), "truncated") {
		t.Error("Format mentions truncation on a complete run")
	}
}

// TestTopGuardsBounds pins Top's behaviour at both ends: negative n must
// not panic (it used to slice entries[:-1]) and oversized n is clamped.
func TestTopGuardsBounds(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{{Name: "only", MaxDepth: 2}}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 4, Seed: 1})
	if top := r.Top("c", -1); len(top) != 0 {
		t.Errorf("Top(-1) = %d entries, want 0", len(top))
	}
	if top := r.Top("c", 99); len(top) != 1 {
		t.Errorf("Top(99) = %d entries, want 1", len(top))
	}
	if top := r.Top("missing", 3); len(top) != 0 {
		t.Errorf("Top on unknown config = %d entries", len(top))
	}
}

func TestFormatContainsColumns(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{{Name: "only", MaxDepth: 2}}
	out := Rank(factory, cfgs, budgets, Options{WalksPerPair: 4, Seed: 1}).Format()
	for _, col := range []string{"branches", "events", "maxdepth", "only"} {
		if !strings.Contains(out, col) {
			t.Errorf("format missing %q:\n%s", col, out)
		}
	}
}
