package ranking

import (
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

// factory instantiates toy machines whose walk depth scales with the
// process count encoded in the budget's MaxDepth field, giving the ranker
// distinguishable constraint sets.
func factory(cfg spec.Config, b spec.Budget) spec.Machine {
	n := b.MaxDepth
	if n <= 0 {
		n = cfg.Nodes
	}
	return &toy.LostUpdate{N: n}
}

func TestRankOrdersByHeuristics(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{
		{Name: "deep", MaxDepth: 4}, // deeper walks, same coverage
		{Name: "shallow", MaxDepth: 2},
	}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 16, Seed: 1})
	entries := r.ByConfig["c"]
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Equal branch coverage and event diversity: the default order prefers
	// the smaller depth (a space bounded BFS can exhaust).
	if entries[0].Budget.Name != "shallow" {
		t.Errorf("default order ranked %q first", entries[0].Budget.Name)
	}
	if top := r.Top("c", 1); len(top) != 1 || top[0].Budget.Name != "shallow" {
		t.Errorf("top = %v", top)
	}
}

func TestDepthFirstOrder(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{
		{Name: "deep", MaxDepth: 4},
		{Name: "shallow", MaxDepth: 2},
	}
	r := Rank(factory, cfgs, budgets, Options{WalksPerPair: 16, Seed: 1, Less: DepthFirst})
	if r.ByConfig["c"][0].Budget.Name != "deep" {
		t.Errorf("depth-first ranked %q first", r.ByConfig["c"][0].Budget.Name)
	}
}

func TestRankIsDeterministic(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{{Name: "a", MaxDepth: 3}, {Name: "b", MaxDepth: 3}}
	r1 := Rank(factory, cfgs, budgets, Options{WalksPerPair: 8, Seed: 5})
	r2 := Rank(factory, cfgs, budgets, Options{WalksPerPair: 8, Seed: 5})
	if r1.Format() != r2.Format() {
		t.Error("same seed produced different rankings")
	}
}

func TestFormatContainsColumns(t *testing.T) {
	cfgs := []spec.Config{{Name: "c", Nodes: 2}}
	budgets := []spec.Budget{{Name: "only", MaxDepth: 2}}
	out := Rank(factory, cfgs, budgets, Options{WalksPerPair: 4, Seed: 1}).Format()
	for _, col := range []string{"branches", "events", "maxdepth", "only"} {
		if !strings.Contains(out, col) {
			t.Errorf("format missing %q:\n%s", col, out)
		}
	}
}
