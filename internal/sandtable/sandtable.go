// Package sandtable is the public facade of the framework: it ties together
// the Figure-1 workflow of the paper — conformance checking (§3.2),
// specification-level model checking (§3.3), bug confirmation by
// deterministic replay, and fix validation (§3.4) — for one integrated
// target system.
package sandtable

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/ranking"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// System describes one integrated target system: how to build its
// specification machine, how to boot its implementation cluster, and how to
// observe implementation state for conformance.
type System struct {
	Name string
	// DefaultConfig/DefaultBudget are the model-checking settings used by
	// the experiment harness (chosen with the §3.3 ranking heuristics).
	DefaultConfig spec.Config
	DefaultBudget spec.Budget
	// NewMachine builds the specification.
	NewMachine func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine
	// NewCluster boots the implementation under the deterministic engine.
	NewCluster func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error)
	// Observe overrides implementation state collection.
	Observe func(*engine.Cluster) (map[string]string, error)
	// ResourceCheck flags general correctness bugs during conformance.
	ResourceCheck func(*engine.Cluster) error
	// IgnoreVars excludes variables from spec/impl comparison.
	IgnoreVars []string
}

// SandTable is one checking session: a system instantiated with a model
// configuration, a budget constraint, and a defect set.
type SandTable struct {
	Sys    *System
	Config spec.Config
	Budget spec.Budget
	// SpecBugs are the defects modelled in the specification (SandTable
	// specifications describe the actual, buggy implementation; bugs found
	// at the conformance or modeling stage are impl-only and never appear
	// here).
	SpecBugs bugdb.Set
	// ImplBugs are the defects present in the implementation build.
	ImplBugs bugdb.Set
}

// New builds a session where specification and implementation carry the
// same defect set (the aligned state reached after conformance checking).
func New(sys *System, cfg spec.Config, b spec.Budget, bugs bugdb.Set) *SandTable {
	return &SandTable{Sys: sys, Config: cfg, Budget: b, SpecBugs: bugs, ImplBugs: bugs}
}

// Machine instantiates the specification for this session.
func (st *SandTable) Machine() spec.Machine {
	return st.Sys.NewMachine(st.Config, st.Budget, st.SpecBugs)
}

// Label identifies the session's model — system/config/budget plus the
// sorted enabled defect set. Checkpoints are stamped with it so a snapshot
// written under one session setup refuses to resume under another, and
// cluster handshakes digest it so mismatched peers refuse to form a mesh.
func (st *SandTable) Label() string {
	var bugs []string
	for k, on := range st.SpecBugs {
		if on {
			bugs = append(bugs, string(k))
		}
	}
	sort.Strings(bugs)
	return fmt.Sprintf("%s/%s/%s/%s", st.Sys.Name, st.Config.Name, st.Budget.Name, strings.Join(bugs, ","))
}

// target builds the conformance target for this session.
func (st *SandTable) target() *conformance.Target {
	return &conformance.Target{
		Machine: st.Machine(),
		NewCluster: func(seed int64) (*engine.Cluster, error) {
			return st.Sys.NewCluster(st.Config, st.ImplBugs, seed)
		},
		Observe:       st.Sys.Observe,
		ResourceCheck: st.Sys.ResourceCheck,
		IgnoreVars:    st.Sys.IgnoreVars,
	}
}

// Conform runs one conformance round (§3.2).
func (st *SandTable) Conform(opts conformance.Options) (*conformance.Report, error) {
	return conformance.Run(st.target(), opts)
}

// Check runs specification-level model checking (§3.3).
func (st *SandTable) Check(opts explorer.Options) *explorer.Result {
	return explorer.NewChecker(st.Machine(), opts).Run()
}

// Confirm replays a model-checking violation at the implementation level
// (§3.4). A confirmed result means the implementation reproduced every
// specification state along the trace, ending in the violating one — the
// bug is real, not a false alarm.
func (st *SandTable) Confirm(v *explorer.Violation) (*replay.Result, error) {
	if v == nil || v.Trace == nil {
		return nil, fmt.Errorf("sandtable: violation has no trace to replay")
	}
	cluster, err := st.Sys.NewCluster(st.Config, st.ImplBugs, 1)
	if err != nil {
		return nil, err
	}
	return replay.ConfirmBug(v.Trace, cluster, replay.Options{
		IgnoreVars: st.Sys.IgnoreVars,
		Observe:    st.Sys.Observe,
	})
}

// FixReport is the outcome of fix validation.
type FixReport struct {
	Conformance *conformance.Report
	Check       *explorer.Result
}

// Clean reports whether the fix validated: conformance passed and model
// checking found no violation.
func (r *FixReport) Clean() bool {
	return r.Conformance.Passed() && len(r.Check.Violations) == 0
}

// ValidateFix re-runs the workflow with a defect set where the given bugs
// are fixed in both the specification and the implementation: conformance
// ensures the fix introduced no new discrepancy, and model checking ensures
// the bug is gone and no regression appeared (§3.4).
func (st *SandTable) ValidateFix(fixed []bugdb.Key, confOpts conformance.Options, checkOpts explorer.Options) (*FixReport, error) {
	fixedSession := &SandTable{
		Sys:      st.Sys,
		Config:   st.Config,
		Budget:   st.Budget,
		SpecBugs: st.SpecBugs.Without(fixed...),
		ImplBugs: st.ImplBugs.Without(fixed...),
	}
	conf, err := fixedSession.Conform(confOpts)
	if err != nil {
		return nil, err
	}
	return &FixReport{Conformance: conf, Check: fixedSession.Check(checkOpts)}, nil
}

// Rank applies Algorithm 1 to candidate configurations and budgets for this
// system (§3.3).
func (st *SandTable) Rank(configs []spec.Config, budgets []spec.Budget, opts ranking.Options) *ranking.Ranking {
	factory := func(cfg spec.Config, b spec.Budget) spec.Machine {
		return st.Sys.NewMachine(cfg, b, st.SpecBugs)
	}
	return ranking.Rank(factory, configs, budgets, opts)
}
