package sandtable_test

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/ranking"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// toySystem wires the toy lost-update model into the facade with a dummy
// single-node implementation, exercising the workflow plumbing without the
// cost of a full Raft integration (those live in internal/integrations).
func toySystem() *sandtable.System {
	return &sandtable.System{
		Name:          "toy",
		DefaultConfig: spec.Config{Name: "n2", Nodes: 2},
		DefaultBudget: spec.Budget{Name: "none"},
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return &toy.LostUpdate{N: cfg.Nodes, Atomic: !bugs.Has("toy.race")}
		},
		NewCluster: func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{Nodes: cfg.Nodes}, func(id int) vos.Process {
				return nopProcess{}
			})
		},
	}
}

type nopProcess struct{}

func (nopProcess) Start(vos.Env)              {}
func (nopProcess) Receive(int, []byte)        {}
func (nopProcess) Tick()                      {}
func (nopProcess) ClientRequest(string)       {}
func (nopProcess) Observe() map[string]string { return map[string]string{} }

func TestCheckFindsAndFixValidates(t *testing.T) {
	st := sandtable.New(toySystem(), spec.Config{Name: "n2", Nodes: 2}, spec.Budget{}, bugdb.Set{"toy.race": true})
	res := st.Check(explorer.DefaultOptions())
	if res.FirstViolation() == nil {
		t.Fatal("racy toy model should violate")
	}
	fixed := sandtable.New(st.Sys, st.Config, st.Budget, bugdb.NoBugs())
	if v := fixed.Check(explorer.DefaultOptions()).FirstViolation(); v != nil {
		t.Fatalf("fixed model violated: %v", v)
	}
}

func TestConfirmRequiresTrace(t *testing.T) {
	st := sandtable.New(toySystem(), spec.Config{Nodes: 2}, spec.Budget{}, bugdb.NoBugs())
	if _, err := st.Confirm(nil); err == nil {
		t.Error("confirming a nil violation must fail")
	}
	if _, err := st.Confirm(&explorer.Violation{}); err == nil {
		t.Error("confirming a violation without a trace must fail")
	}
}

func TestRankUsesSessionBugs(t *testing.T) {
	st := sandtable.New(toySystem(), spec.Config{Name: "n2", Nodes: 2}, spec.Budget{}, bugdb.NoBugs())
	r := st.Rank(
		[]spec.Config{{Name: "n2", Nodes: 2}, {Name: "n3", Nodes: 3}},
		[]spec.Budget{{Name: "only"}},
		ranking.Options{WalksPerPair: 4, Seed: 1},
	)
	if len(r.ByConfig) != 2 {
		t.Fatalf("configs ranked = %d", len(r.ByConfig))
	}
}
