package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP full mesh: every pair of peers shares one TCP connection carrying the
// length-prefixed frames of wire.go. Peer i listens on Addrs[i] and dials
// every lower-numbered peer, so each link is established exactly once
// regardless of start order; dialing retries until Timeout so the processes
// of a cluster can launch in any order (the `make cluster` target starts
// all three concurrently).
//
// Exchange writes to every peer from per-link goroutines while the caller's
// goroutine reads the links in order — writes never wait on reads, so two
// peers pushing large blocks at each other cannot deadlock on full kernel
// buffers. The per-link protocol is strictly sequential (each peer sends
// exactly one block frame and one summary frame per barrier, in that
// order), so no demultiplexer is needed. Every barrier and probe round is
// deadline-bounded by TCPOptions.Timeout, so a peer that stops reading or
// writing mid-barrier fails the round with a transport error instead of
// hanging the cluster.

// TCPOptions configures DialTCP.
type TCPOptions struct {
	// Addrs lists every peer's listen address, indexed by peer id
	// (the -peers flag, split on commas).
	Addrs []string
	// Self is this process's peer id, an index into Addrs.
	Self int
	// Digest fingerprints the run configuration (model, options). Peers
	// exchange it during the handshake and refuse to form a cluster when
	// it differs — catching a mis-launched peer before any state flows.
	Digest uint64
	// Timeout bounds connection establishment (dial retries plus
	// handshakes) and, once the mesh is up, every barrier and probe round:
	// each Exchange/Probe arms a per-link I/O deadline of this duration, so
	// a hung (SIGSTOP'd or partitioned) peer fails the barrier with a
	// transport error instead of stalling the cluster forever. It must
	// therefore exceed the worst-case level imbalance across peers — the
	// fastest peer waits at the barrier while the slowest finishes its
	// level. Zero means 30 seconds.
	Timeout time.Duration
	// Metrics receives the peer-level transport instrumentation (may be
	// nil).
	Metrics *Metrics
}

// tcpHello is the JSON handshake payload exchanged on every new link.
type tcpHello struct {
	Peer      int `json:"peer"`
	Peers     int `json:"peers"`
	Partition int `json:"partition"`
}

// tcpConn implements Conn over a TCP full mesh.
type tcpConn struct {
	self, peers int
	metrics     *Metrics
	conns       []net.Conn // nil at self
	rd          []*bufio.Reader
	wr          []*bufio.Writer
	// frameTimeout bounds each barrier/probe round's blocking I/O (see
	// TCPOptions.Timeout).
	frameTimeout time.Duration
	closeOnce    sync.Once
	closeErr     error
}

// DialTCP establishes this peer's links to the rest of the cluster and
// blocks until the full mesh is up (every handshake validated) or the
// timeout expires.
func DialTCP(o TCPOptions) (Conn, error) {
	n := len(o.Addrs)
	if n < 2 {
		return nil, fmt.Errorf("transport: cluster needs at least 2 peers, got %d", n)
	}
	if o.Self < 0 || o.Self >= n {
		return nil, fmt.Errorf("transport: peer id %d out of range [0,%d)", o.Self, n)
	}
	timeout := o.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)

	c := &tcpConn{
		self: o.Self, peers: n, metrics: o.Metrics,
		conns:        make([]net.Conn, n),
		rd:           make([]*bufio.Reader, n),
		wr:           make([]*bufio.Writer, n),
		frameTimeout: timeout,
	}

	ln, err := net.Listen("tcp", o.Addrs[o.Self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", o.Addrs[o.Self], err)
	}
	defer ln.Close()

	// Accept links from every higher-numbered peer concurrently with
	// dialing the lower-numbered ones. Accepted conns whose handshake is
	// still in flight are tracked in pending so a dial-side failure can
	// close them immediately: closing the listener alone would leave the
	// accept goroutine blocked in a handshake read until the full timeout,
	// and fail() blocks on that goroutine.
	expect := n - 1 - o.Self
	acceptErr := make(chan error, 1)
	done := make(chan struct{})
	var pendMu sync.Mutex
	pending := make(map[net.Conn]bool)
	failing := false
	track := func(nc net.Conn, on bool) bool {
		pendMu.Lock()
		defer pendMu.Unlock()
		if on && failing {
			return false
		}
		if on {
			pending[nc] = true
		} else {
			delete(pending, nc)
		}
		return true
	}
	go func() {
		defer close(done)
		for i := 0; i < expect; i++ {
			nc, err := ln.Accept()
			if err != nil {
				acceptErr <- fmt.Errorf("transport: accept: %w", err)
				return
			}
			if !track(nc, true) {
				nc.Close()
				acceptErr <- fmt.Errorf("transport: dial failed while accepting peers")
				return
			}
			peer, err := c.handshake(nc, o, deadline, false)
			track(nc, false)
			if err != nil {
				nc.Close()
				acceptErr <- err
				return
			}
			if peer <= o.Self || peer >= n || c.conns[peer] != nil {
				nc.Close()
				acceptErr <- fmt.Errorf("transport: unexpected hello from peer %d", peer)
				return
			}
			c.install(peer, nc)
		}
		acceptErr <- nil
	}()

	fail := func(err error) (Conn, error) {
		pendMu.Lock()
		failing = true
		for nc := range pending {
			nc.Close()
		}
		pendMu.Unlock()
		ln.Close()
		<-done
		c.Close()
		return nil, err
	}
	for peer := 0; peer < o.Self; peer++ {
		nc, err := dialRetry(o.Addrs[peer], deadline)
		if err != nil {
			return fail(fmt.Errorf("transport: dial peer %d (%s): %w", peer, o.Addrs[peer], err))
		}
		from, err := c.handshake(nc, o, deadline, true)
		if err != nil {
			nc.Close()
			return fail(err)
		}
		if from != peer {
			nc.Close()
			return fail(fmt.Errorf("transport: %s identified as peer %d, want %d", o.Addrs[peer], from, peer))
		}
		c.install(peer, nc)
	}
	if err := <-acceptErr; err != nil {
		<-done
		c.Close()
		return nil, err
	}
	<-done
	return c, nil
}

// dialRetry dials addr until it succeeds or the deadline passes, so peers
// may start in any order.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		left := time.Until(deadline)
		if left <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("timed out")
			}
			return nil, lastErr
		}
		nc, err := net.DialTimeout("tcp", addr, min(left, 2*time.Second))
		if err == nil {
			return nc, nil
		}
		lastErr = err
		time.Sleep(min(left, 100*time.Millisecond))
	}
}

// handshake exchanges hello frames on a fresh link (dialer speaks first)
// and validates digest, cluster size, and partition version. It returns the
// remote peer id.
func (c *tcpConn) handshake(nc net.Conn, o TCPOptions, deadline time.Time, dialer bool) (int, error) {
	nc.SetDeadline(deadline)
	defer nc.SetDeadline(time.Time{})
	self, _ := json.Marshal(tcpHello{Peer: o.Self, Peers: len(o.Addrs), Partition: PartitionVersion})
	send := func() error { return writeFrame(nc, frameHello, o.Digest, self) }
	var remote tcpHello
	recv := func() error {
		typ, tag, payload, err := readFrame(nc)
		if err != nil {
			return fmt.Errorf("transport: handshake read: %w", err)
		}
		if typ != frameHello {
			return fmt.Errorf("transport: handshake got %s", frameName(typ))
		}
		if tag != o.Digest {
			return fmt.Errorf("transport: run digest mismatch (peer launched with different model or options)")
		}
		if err := json.Unmarshal(payload, &remote); err != nil {
			return fmt.Errorf("transport: handshake payload: %w", err)
		}
		if remote.Peers != len(o.Addrs) {
			return fmt.Errorf("transport: peer expects cluster of %d, this run has %d", remote.Peers, len(o.Addrs))
		}
		if remote.Partition != PartitionVersion {
			return fmt.Errorf("transport: partition version mismatch (%d vs %d)", remote.Partition, PartitionVersion)
		}
		return nil
	}
	steps := []func() error{send, recv}
	if !dialer {
		steps = []func() error{recv, send}
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return 0, err
		}
	}
	return remote.Peer, nil
}

// install registers an established link.
func (c *tcpConn) install(peer int, nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.conns[peer] = nc
	c.rd[peer] = bufio.NewReaderSize(nc, 1<<16)
	c.wr[peer] = bufio.NewWriterSize(nc, 1<<16)
}

// armDeadline bounds one barrier or probe round's blocking I/O: every listed
// link gets an absolute read+write deadline frameTimeout from now, cleared
// again by the returned func. The deadline interrupts in-flight Read and
// Write calls, so it also releases Exchange's writer goroutines — and the
// wg.Wait() on them — when a peer stops draining its receive buffer.
func (c *tcpConn) armDeadline(peers ...int) func() {
	if c.frameTimeout <= 0 {
		return func() {}
	}
	dl := time.Now().Add(c.frameTimeout)
	for _, q := range peers {
		if q != c.self && c.conns[q] != nil {
			c.conns[q].SetDeadline(dl)
		}
	}
	return func() {
		for _, q := range peers {
			if q != c.self && c.conns[q] != nil {
				c.conns[q].SetDeadline(time.Time{})
			}
		}
	}
}

// allPeers lists every peer id, self included (armDeadline skips self).
func (c *tcpConn) allPeers() []int {
	out := make([]int, c.peers)
	for i := range out {
		out[i] = i
	}
	return out
}

// Self implements Conn.
func (c *tcpConn) Self() int { return c.self }

// Peers implements Conn.
func (c *tcpConn) Peers() int { return c.peers }

// Exchange implements Conn.
func (c *tcpConn) Exchange(tag uint64, blocks [][]byte, summary []byte) ([][]byte, [][]byte, error) {
	n := c.peers
	if blocks != nil && len(blocks) != n {
		return nil, nil, fmt.Errorf("transport: %d blocks for %d peers", len(blocks), n)
	}
	start := time.Now()
	defer c.armDeadline(c.allPeers()...)()
	var wg sync.WaitGroup
	werr := make(chan error, n)
	for q := 0; q < n; q++ {
		if q == c.self {
			continue
		}
		var blk []byte
		if blocks != nil {
			blk = blocks[q]
		}
		wg.Add(1)
		go func(q int, blk []byte) {
			defer wg.Done()
			w := c.wr[q]
			if err := writeFrame(w, frameBlock, tag, blk); err != nil {
				werr <- fmt.Errorf("transport: send to peer %d: %w", q, err)
				return
			}
			if err := writeFrame(w, frameSummary, tag, summary); err != nil {
				werr <- fmt.Errorf("transport: send to peer %d: %w", q, err)
				return
			}
			if err := w.Flush(); err != nil {
				werr <- fmt.Errorf("transport: send to peer %d: %w", q, err)
				return
			}
			c.metrics.sent(len(blk))
		}(q, blk)
	}

	in := make([][]byte, n)
	sums := make([][]byte, n)
	sums[c.self] = summary
	var rerr error
	for q := 0; q < n && rerr == nil; q++ {
		if q == c.self {
			continue
		}
		for _, want := range []byte{frameBlock, frameSummary} {
			typ, gotTag, payload, err := readFrame(c.rd[q])
			if err != nil {
				rerr = fmt.Errorf("transport: recv from peer %d: %w", q, err)
				break
			}
			if typ != want || gotTag != tag {
				rerr = fmt.Errorf("transport: barrier desync with peer %d (got %s tag %d, want %s tag %d)",
					q, frameName(typ), gotTag, frameName(want), tag)
				break
			}
			if want == frameBlock {
				in[q] = payload
				c.metrics.recv(len(payload))
			} else {
				sums[q] = payload
			}
		}
	}
	wg.Wait()
	close(werr)
	if rerr != nil {
		return nil, nil, rerr
	}
	if err := <-werr; err != nil {
		return nil, nil, err
	}
	c.metrics.barrier(time.Since(start).Nanoseconds())
	return in, sums, nil
}

// Probe implements Conn (coordinator side).
func (c *tcpConn) Probe(peer int, fp uint64) (uint64, int32, bool, error) {
	if peer == c.self || peer < 0 || peer >= c.peers {
		return 0, 0, false, fmt.Errorf("transport: probe peer %d invalid", peer)
	}
	start := time.Now()
	defer c.armDeadline(peer)()
	w := c.wr[peer]
	if err := writeFrame(w, frameProbeReq, fp, nil); err != nil {
		return 0, 0, false, err
	}
	if err := w.Flush(); err != nil {
		return 0, 0, false, err
	}
	typ, tag, payload, err := readFrame(c.rd[peer])
	if err != nil {
		return 0, 0, false, fmt.Errorf("transport: probe peer %d: %w", peer, err)
	}
	if typ != frameProbeResp || tag != fp || len(payload) != 13 {
		return 0, 0, false, fmt.Errorf("transport: probe desync with peer %d (got %s)", peer, frameName(typ))
	}
	parent := binary.LittleEndian.Uint64(payload[0:8])
	depth := int32(binary.LittleEndian.Uint32(payload[8:12]))
	found := payload[12] != 0
	c.metrics.probe(time.Since(start).Microseconds())
	return parent, depth, found, nil
}

// ServeProbes implements Conn (non-coordinator side): probes only ever come
// from peer 0.
func (c *tcpConn) ServeProbes(lookup func(fp uint64) (uint64, int32, bool)) error {
	r, w := c.rd[0], c.wr[0]
	for {
		typ, tag, _, err := readFrame(r)
		if err != nil {
			return fmt.Errorf("transport: serve probes: %w", err)
		}
		switch typ {
		case frameBye:
			return nil
		case frameProbeReq:
			parent, depth, found := lookup(tag)
			var payload [13]byte
			binary.LittleEndian.PutUint64(payload[0:8], parent)
			binary.LittleEndian.PutUint32(payload[8:12], uint32(depth))
			if found {
				payload[12] = 1
			}
			// The wait for the next request stays unbounded (the gap between
			// probes is the coordinator's trace reconstruction, of unknown
			// length), but each response write is deadline-bounded.
			clear := c.armDeadline(0)
			err := writeFrame(w, frameProbeResp, tag, payload[:])
			if err == nil {
				err = w.Flush()
			}
			clear()
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("transport: unexpected %s while serving probes", frameName(typ))
		}
	}
}

// Bye implements Conn (coordinator side).
func (c *tcpConn) Bye() error {
	defer c.armDeadline(c.allPeers()...)()
	for q := 0; q < c.peers; q++ {
		if q == c.self {
			continue
		}
		if err := writeFrame(c.wr[q], frameBye, 0, nil); err != nil {
			return err
		}
		if err := c.wr[q].Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() {
		for _, nc := range c.conns {
			if nc != nil {
				if err := nc.Close(); err != nil && c.closeErr == nil {
					c.closeErr = err
				}
			}
		}
	})
	return c.closeErr
}
