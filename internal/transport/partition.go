package transport

// PartitionVersion identifies the fingerprint-space partition function. It
// is carried in cluster hello summaries and checkpoint manifests: peers (and
// resumed runs) built with a different partition function must not merge,
// because ownership of every fingerprint would silently change. Bump it
// whenever Owner's mapping changes.
const PartitionVersion = 1

// Owner maps a fingerprint to the peer that owns it: the fingerprint is
// remixed through Mix64 and the mixed value's top 32 bits select one of
// peers contiguous range slices.
//
// The remix is load-bearing. Canonical fingerprints are not uniform:
// under symmetry reduction each stored fingerprint is the minimum of its
// orbit's hashes, and the minimum of k uniform draws is biased low — with
// two symmetric nodes, 75% of canonical fingerprints land in the bottom
// half of the raw space, so a raw prefix partition would give peer 0
// three times peer 1's share. Mix64 is a bijection, so ownership stays
// deterministic and disjoint, while the mixed values are uniform and the
// slices balanced regardless of symmetry-group size.
func Owner(fp uint64, peers int) int {
	if peers <= 1 {
		return 0
	}
	return int((Mix64(fp) >> 32) * uint64(peers) >> 32)
}

// Mix64 is the 64-bit finalizer from MurmurHash3 (fmix64): an invertible
// avalanche permutation of the fingerprint space. Owner partitions on the
// mixed value; it is exported so tooling can map a raw fingerprint into
// the partitioned space when reasoning about Range intervals.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Range returns peer's owned interval [lo, hi) of the mixed fingerprint
// space; hi is 0 for the last peer, meaning "through the top of the
// space" (the interval is [lo, 2^64)). For every fp, Owner(fp, peers) ==
// p iff Range(p, peers) contains Mix64(fp).
func Range(peer, peers int) (lo, hi uint64) {
	if peers <= 1 {
		return 0, 0
	}
	// Smallest 32-bit prefix q with q*peers>>32 == peer is
	// ceil(peer<<32 / peers).
	lo32 := (uint64(peer)<<32 + uint64(peers) - 1) / uint64(peers)
	lo = lo32 << 32
	if peer == peers-1 {
		return lo, 0
	}
	hi32 := (uint64(peer+1)<<32 + uint64(peers) - 1) / uint64(peers)
	return lo, hi32 << 32
}
