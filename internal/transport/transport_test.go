package transport

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// unmix64 inverts Mix64 (the fmix64 constants have well-known modular
// inverses), letting the test turn a mixed-space boundary back into a raw
// fingerprint.
func unmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0x9cb4b2f8129337db
	x ^= x >> 33
	x *= 0x4f74430c22a54005
	x ^= x >> 33
	return x
}

func TestOwnerRangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, peers := range []int{1, 2, 3, 5, 8} {
		// Every peer's range boundaries must agree with Owner (via the
		// Mix64 bijection), and ranges must tile the mixed space.
		prevHi := uint64(0)
		for p := 0; p < peers; p++ {
			lo, hi := Range(p, peers)
			if p == 0 && lo != 0 {
				t.Fatalf("peers=%d: range 0 starts at %#x", peers, lo)
			}
			if p > 0 && lo != prevHi {
				t.Fatalf("peers=%d: range %d starts at %#x, previous ended at %#x", peers, p, lo, prevHi)
			}
			if p == peers-1 && hi != 0 {
				t.Fatalf("peers=%d: last range ends at %#x, want open top", peers, hi)
			}
			prevHi = hi
			if Owner(unmix64(lo), peers) != p {
				t.Fatalf("peers=%d: Owner(unmix(lo=%#x))=%d, want %d", peers, lo, Owner(unmix64(lo), peers), p)
			}
			if hi != 0 && Owner(unmix64(hi-1), peers) != p {
				t.Fatalf("peers=%d: Owner(unmix(hi-1=%#x))=%d, want %d", peers, hi-1, Owner(unmix64(hi-1), peers), p)
			}
		}
		for i := 0; i < 10000; i++ {
			fp := rng.Uint64()
			if got := unmix64(Mix64(fp)); got != fp {
				t.Fatalf("unmix64(Mix64(%#x)) = %#x", fp, got)
			}
			o := Owner(fp, peers)
			if o < 0 || o >= peers {
				t.Fatalf("peers=%d: Owner(%#x)=%d out of range", peers, fp, o)
			}
			lo, hi := Range(o, peers)
			if m := Mix64(fp); m < lo || (hi != 0 && m >= hi) {
				t.Fatalf("peers=%d: fp %#x (mixed %#x) owned by %d but outside [%#x,%#x)", peers, fp, m, o, lo, hi)
			}
		}
	}
}

// TestOwnerBalancesSymmetryReducedFingerprints regression-tests the Mix64
// remix in Owner: canonical fingerprints under symmetry reduction are the
// minimum of an orbit's hashes, which is heavily biased low (min of two
// uniforms puts 75% of mass in the bottom half). The partition must still
// hand every peer a near-equal share of such fingerprints.
func TestOwnerBalancesSymmetryReducedFingerprints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	fps := make([]uint64, n)
	for i := range fps {
		// Orbit size 2: the bias the remix must absorb.
		a, b := rng.Uint64(), rng.Uint64()
		if b < a {
			a = b
		}
		fps[i] = a
	}
	for _, peers := range []int{2, 3, 4, 8} {
		counts := make([]int, peers)
		for _, fp := range fps {
			counts[Owner(fp, peers)]++
		}
		// Without the remix the first peer owns 75% at peers=2; a ±5%
		// tolerance leaves room for the finalizer's residual structure
		// while failing hard on any real skew.
		want := float64(n) / float64(peers)
		for p, c := range counts {
			if dev := (float64(c) - want) / want; dev < -0.05 || dev > 0.05 {
				t.Errorf("peers=%d: peer %d owns %d of %d (%.1f%% off an even share)",
					peers, p, c, n, 100*dev)
			}
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var cands []Candidate
	fp := uint64(0)
	for i := 0; i < 500; i++ {
		fp += uint64(rng.Intn(1 << 20))
		st := make([]byte, rng.Intn(40))
		rng.Read(st)
		cands = append(cands, Candidate{FP: fp, Parent: rng.Uint64(), Action: uint16(rng.Intn(300)), State: st})
	}
	for _, in := range [][]Candidate{nil, cands[:1], cands} {
		payload, err := EncodeBlock(in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := DecodeWireBlock(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip: %d candidates, want %d", len(out), len(in))
		}
		for i := range in {
			if out[i].FP != in[i].FP || out[i].Parent != in[i].Parent || out[i].Action != in[i].Action ||
				!reflect.DeepEqual(append([]byte{}, out[i].State...), append([]byte{}, in[i].State...)) {
				t.Fatalf("candidate %d mismatch: %+v vs %+v", i, out[i], in[i])
			}
		}
	}
}

func TestDecodeBlockRejectsCorrupt(t *testing.T) {
	payload, err := EncodeBlock([]Candidate{{FP: 7, Parent: 3, Action: 1, State: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWireBlock(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated block decoded without error")
	}
	raw := AppendBlock(nil, []Candidate{{FP: 7, State: []byte("x")}})
	if _, err := DecodeBlock(append(raw, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// exerciseConns drives one barrier + probe round over any Conn mesh and
// verifies all-to-all delivery. Shared by the mesh and TCP tests.
func exerciseConns(t *testing.T, conns []Conn) {
	t.Helper()
	n := len(conns)
	results := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p] = func() error {
				conn := conns[p]
				if conn.Self() != p || conn.Peers() != n {
					return fmt.Errorf("identity: self=%d peers=%d", conn.Self(), conn.Peers())
				}
				for tag := uint64(0); tag < 3; tag++ {
					blocks := make([][]byte, n)
					for q := 0; q < n; q++ {
						if q != p {
							blocks[q] = []byte(fmt.Sprintf("blk %d->%d @%d", p, q, tag))
						}
					}
					sum := []byte(fmt.Sprintf("sum %d @%d", p, tag))
					in, sums, err := conn.Exchange(tag, blocks, sum)
					if err != nil {
						return fmt.Errorf("exchange tag %d: %w", tag, err)
					}
					for q := 0; q < n; q++ {
						if q == p {
							if string(sums[q]) != string(sum) {
								return fmt.Errorf("own summary echo: %q", sums[q])
							}
							continue
						}
						if want := fmt.Sprintf("blk %d->%d @%d", q, p, tag); string(in[q]) != want {
							return fmt.Errorf("block from %d: %q want %q", q, in[q], want)
						}
						if want := fmt.Sprintf("sum %d @%d", q, tag); string(sums[q]) != want {
							return fmt.Errorf("summary from %d: %q want %q", q, sums[q], want)
						}
					}
				}
				if p == 0 {
					for q := 1; q < n; q++ {
						parent, depth, ok, err := conn.Probe(q, 42)
						if err != nil {
							return fmt.Errorf("probe %d: %w", q, err)
						}
						if !ok || parent != uint64(1000+q) || depth != int32(q) {
							return fmt.Errorf("probe %d: parent=%d depth=%d ok=%v", q, parent, depth, ok)
						}
						if _, _, ok, err := conn.Probe(q, 7); err != nil || ok {
							return fmt.Errorf("probe miss %d: ok=%v err=%v", q, ok, err)
						}
					}
					return conn.Bye()
				}
				return conn.ServeProbes(func(fp uint64) (uint64, int32, bool) {
					if fp == 42 {
						return uint64(1000 + p), int32(p), true
					}
					return 0, 0, false
				})
			}()
		}(p)
	}
	wg.Wait()
	for p, err := range results {
		if err != nil {
			t.Fatalf("peer %d: %v", p, err)
		}
	}
}

func TestMeshExchange(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		conns := NewMesh(n)
		exerciseConns(t, conns)
		for _, c := range conns {
			c.Close()
		}
	}
}

func TestMeshCloseUnblocksPeers(t *testing.T) {
	conns := NewMesh(3)
	errs := make(chan error, 2)
	for p := 1; p < 3; p++ {
		go func(p int) {
			_, _, err := conns[p].Exchange(0, nil, []byte("s"))
			errs <- err
		}(p)
	}
	conns[0].Close()
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			t.Fatal("exchange with a closed peer succeeded")
		}
	}
}

// freeAddrs reserves n distinct localhost ports and returns them as listen
// addresses (the listeners are closed; a tiny race with other processes is
// accepted in tests).
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestTCPMesh(t *testing.T) {
	const n = 3
	addrs := freeAddrs(t, n)
	regs := make([]*obs.Registry, n)
	conns := make([]Conn, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		regs[p] = obs.NewRegistry()
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conns[p], errs[p] = DialTCP(TCPOptions{
				Addrs: addrs, Self: p, Digest: 0xD1CE, Metrics: NewMetrics(regs[p]),
			})
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("dial peer %d: %v", p, err)
		}
	}
	exerciseConns(t, conns)
	for _, c := range conns {
		c.Close()
	}
	snap := regs[0].Snapshot()
	if v, ok := snap["transport.blocks_sent"].(int64); !ok || v != 6 {
		t.Fatalf("coordinator blocks_sent = %v, want 6", snap["transport.blocks_sent"])
	}
	if v, ok := snap["transport.probes"].(int64); !ok || v != 4 {
		t.Fatalf("coordinator probes = %v, want 4", snap["transport.probes"])
	}
}

func TestTCPDigestMismatch(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	conns := make([]Conn, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conns[p], errs[p] = DialTCP(TCPOptions{Addrs: addrs, Self: p, Digest: uint64(p)})
		}(p)
	}
	wg.Wait()
	for p, c := range conns {
		if c != nil {
			c.Close()
		}
		if errs[p] == nil {
			t.Fatalf("peer %d formed a cluster across a digest mismatch", p)
		}
	}
}
