package transport

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeHandshake performs one valid hello exchange on nc, posing as peer id
// in a cluster of peers processes (dialer speaks first when dialer is true).
// It drives the package's real wire framing, so the conn afterwards looks to
// the remote exactly like an established mesh link.
func fakeHandshake(t *testing.T, nc net.Conn, id, peers int, digest uint64, dialer bool) {
	t.Helper()
	hello, _ := json.Marshal(tcpHello{Peer: id, Peers: peers, Partition: PartitionVersion})
	send := func() {
		if err := writeFrame(nc, frameHello, digest, hello); err != nil {
			t.Fatalf("fake peer %d: send hello: %v", id, err)
		}
	}
	recv := func() {
		if typ, _, _, err := readFrame(nc); err != nil || typ != frameHello {
			t.Fatalf("fake peer %d: recv hello: typ=%d err=%v", id, typ, err)
		}
	}
	if dialer {
		send()
		recv()
	} else {
		recv()
		send()
	}
}

// TestExchangeHungPeerTimesOut is the hung-cluster regression test: a peer
// that completes the mesh handshake and then goes silent (the SIGSTOP'd or
// partitioned peer of OPERATIONS.md) must fail the other peer's barrier
// within the configured peer timeout, not stall it forever. The small-block
// subtest stalls the read side; the big-block subtest additionally fills the
// send buffer so Exchange's writer goroutine — and the wg.Wait() on it —
// blocks in Write, the path a read deadline alone would not release.
func TestExchangeHungPeerTimesOut(t *testing.T) {
	const timeout = time.Second
	for _, tc := range []struct {
		name  string
		block int
	}{
		{"read-stall", 64},
		// Far beyond the 64 KiB bufio writer plus any sane kernel buffer,
		// so the write to the non-reading peer must block.
		{"write-stall", 32 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addrs := freeAddrs(t, 2)
			var (
				conn Conn
				derr error
				wg   sync.WaitGroup
			)
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, derr = DialTCP(TCPOptions{Addrs: addrs, Self: 0, Digest: 0xD1CE, Timeout: timeout})
			}()
			// The fake peer 1 dials peer 0 (its lower-numbered peer), shakes
			// hands for real, then never touches the conn again.
			var nc net.Conn
			for i := 0; ; i++ {
				var err error
				if nc, err = net.Dial("tcp", addrs[0]); err == nil {
					break
				}
				if i > 100 {
					t.Fatalf("dial fake link: %v", err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			defer nc.Close()
			fakeHandshake(t, nc, 1, 2, 0xD1CE, true)
			wg.Wait()
			if derr != nil {
				t.Fatalf("DialTCP: %v", derr)
			}
			defer conn.Close()

			start := time.Now()
			_, _, err := conn.Exchange(0, [][]byte{nil, make([]byte, tc.block)}, []byte("sum"))
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("Exchange against a hung peer succeeded")
			}
			// One frame-timeout for the barrier, generous headroom for CI.
			if elapsed > 4*timeout {
				t.Fatalf("Exchange took %v to fail; want within ~%v", elapsed, timeout)
			}
		})
	}
}

// TestDialFailFast is the fail-fast regression test for DialTCP's failure
// path: when the dial side of mesh establishment fails (here: a peer
// launched with a different run digest), the failure must propagate in
// milliseconds even while the accept side holds an accepted conn whose
// handshake never completes — closing the listener alone would leave that
// handshake read blocked for the full peer timeout.
func TestDialFailFast(t *testing.T) {
	const timeout = 10 * time.Second
	addrs := freeAddrs(t, 3)

	// Fake peer 0: accepts peer 1's link and answers its hello with the
	// wrong digest, failing peer 1's dial-side handshake.
	ln0, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	badHello := make(chan struct{})
	go func() {
		nc, err := ln0.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if typ, _, _, err := readFrame(nc); err != nil || typ != frameHello {
			return
		}
		<-badHello
		hello, _ := json.Marshal(tcpHello{Peer: 0, Peers: 3, Partition: PartitionVersion})
		writeFrame(nc, frameHello, 0xBAD, hello)
	}()

	var (
		conn Conn
		derr error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		conn, derr = DialTCP(TCPOptions{Addrs: addrs, Self: 1, Digest: 0xD1CE, Timeout: timeout})
	}()

	// Fake peer 2 connects to peer 1's listener and goes silent, parking
	// peer 1's accept goroutine inside an unfinished handshake read.
	var silent net.Conn
	for i := 0; ; i++ {
		var err error
		if silent, err = net.Dial("tcp", addrs[1]); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("dial silent link: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer silent.Close()
	// Give peer 1 time to Accept the silent conn and enter the handshake
	// read before the dial failure lands.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	close(badHello)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("DialTCP still blocked 5s after the dial-side failure")
	}
	elapsed := time.Since(start)
	if conn != nil {
		conn.Close()
	}
	if derr == nil {
		t.Fatal("DialTCP succeeded across a digest mismatch")
	}
	if !strings.Contains(derr.Error(), "digest mismatch") {
		t.Fatalf("DialTCP error = %v, want the digest mismatch", derr)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("DialTCP took %v to fail; the peer timeout is %v and failure should not wait on it", elapsed, timeout)
	}
}
