package transport

import (
	"fmt"
	"sync"
	"time"
)

// In-memory channel mesh: the test and single-process implementation of
// Conn. It moves exactly the bytes the TCP mesh would (callers hand it
// already-encoded block payloads), so equivalence tests running on the mesh
// exercise the real wire format end to end — only the sockets are elided.

// meshMsg is one in-flight mesh message; the same frame vocabulary as the
// TCP wire, minus the byte framing.
type meshMsg struct {
	typ     byte
	tag     uint64
	payload []byte
	// probe-response fields (avoid encoding a payload for loopback probes).
	parent uint64
	depth  int32
	found  bool
}

// mesh is the shared state of one in-memory cluster.
type mesh struct {
	n    int
	ch   [][]chan meshMsg // ch[src][dst]
	dead []chan struct{}
	once []sync.Once
}

// meshConn is one peer's endpoint of an in-memory mesh.
type meshConn struct {
	m       *mesh
	id      int
	metrics *Metrics
}

// NewMesh builds a fully connected in-memory cluster of n peers and returns
// one Conn per peer. A 1-peer mesh is a loopback whose Exchange returns
// immediately. Closing any endpoint unblocks every peer waiting on it with
// an error, so a test can simulate a peer crash by closing its Conn.
func NewMesh(n int) []Conn {
	return NewMeshMetrics(n, nil)
}

// NewMeshMetrics is NewMesh with per-peer metrics (metrics may be nil or
// shorter than n; missing entries record nothing).
func NewMeshMetrics(n int, metrics []*Metrics) []Conn {
	if n < 1 {
		n = 1
	}
	m := &mesh{n: n, dead: make([]chan struct{}, n), once: make([]sync.Once, n)}
	m.ch = make([][]chan meshMsg, n)
	for i := range m.ch {
		m.dead[i] = make(chan struct{})
		m.ch[i] = make([]chan meshMsg, n)
		for j := range m.ch[i] {
			// Capacity 4 ≥ the 2 frames (block + summary) a peer sends per
			// pair per barrier before it starts receiving, so Exchange's
			// send phase never blocks and barriers cannot deadlock.
			m.ch[i][j] = make(chan meshMsg, 4)
		}
	}
	conns := make([]Conn, n)
	for i := range conns {
		mc := &meshConn{m: m, id: i}
		if i < len(metrics) {
			mc.metrics = metrics[i]
		}
		conns[i] = mc
	}
	return conns
}

// send delivers msg on the src→dst link, failing if either endpoint closed.
func (m *mesh) send(src, dst int, msg meshMsg) error {
	select {
	case m.ch[src][dst] <- msg:
		return nil
	case <-m.dead[dst]:
		return fmt.Errorf("transport: peer %d closed", dst)
	case <-m.dead[src]:
		return fmt.Errorf("transport: peer %d closed", src)
	}
}

// recv takes the next message on the src→dst link, draining buffered
// messages before reporting a closed endpoint.
func (m *mesh) recv(dst, src int) (meshMsg, error) {
	select {
	case msg := <-m.ch[src][dst]:
		return msg, nil
	default:
	}
	select {
	case msg := <-m.ch[src][dst]:
		return msg, nil
	case <-m.dead[src]:
		return meshMsg{}, fmt.Errorf("transport: peer %d closed", src)
	case <-m.dead[dst]:
		return meshMsg{}, fmt.Errorf("transport: peer %d closed", dst)
	}
}

// Self implements Conn.
func (c *meshConn) Self() int { return c.id }

// Peers implements Conn.
func (c *meshConn) Peers() int { return c.m.n }

// Exchange implements Conn: it broadcasts the summary, scatters the blocks,
// and gathers every other peer's block and summary for the same tag.
func (c *meshConn) Exchange(tag uint64, blocks [][]byte, summary []byte) ([][]byte, [][]byte, error) {
	n := c.m.n
	if blocks != nil && len(blocks) != n {
		return nil, nil, fmt.Errorf("transport: %d blocks for %d peers", len(blocks), n)
	}
	start := time.Now()
	for q := 0; q < n; q++ {
		if q == c.id {
			continue
		}
		var blk []byte
		if blocks != nil {
			blk = blocks[q]
		}
		if err := c.m.send(c.id, q, meshMsg{typ: frameBlock, tag: tag, payload: blk}); err != nil {
			return nil, nil, err
		}
		if err := c.m.send(c.id, q, meshMsg{typ: frameSummary, tag: tag, payload: summary}); err != nil {
			return nil, nil, err
		}
		c.metrics.sent(len(blk))
	}
	in := make([][]byte, n)
	sums := make([][]byte, n)
	sums[c.id] = summary
	for q := 0; q < n; q++ {
		if q == c.id {
			continue
		}
		blk, err := c.m.recv(c.id, q)
		if err != nil {
			return nil, nil, err
		}
		sum, err := c.m.recv(c.id, q)
		if err != nil {
			return nil, nil, err
		}
		if blk.typ != frameBlock || sum.typ != frameSummary || blk.tag != tag || sum.tag != tag {
			return nil, nil, fmt.Errorf("transport: barrier desync with peer %d (got %s tag %d, want tag %d)",
				q, frameName(blk.typ), blk.tag, tag)
		}
		in[q] = blk.payload
		sums[q] = sum.payload
		c.metrics.recv(len(blk.payload))
	}
	c.metrics.barrier(time.Since(start).Nanoseconds())
	return in, sums, nil
}

// Probe implements Conn (coordinator side).
func (c *meshConn) Probe(peer int, fp uint64) (uint64, int32, bool, error) {
	start := time.Now()
	if err := c.m.send(c.id, peer, meshMsg{typ: frameProbeReq, tag: fp}); err != nil {
		return 0, 0, false, err
	}
	msg, err := c.m.recv(c.id, peer)
	if err != nil {
		return 0, 0, false, err
	}
	if msg.typ != frameProbeResp || msg.tag != fp {
		return 0, 0, false, fmt.Errorf("transport: probe desync with peer %d (got %s)", peer, frameName(msg.typ))
	}
	c.metrics.probe(time.Since(start).Microseconds())
	return msg.parent, msg.depth, msg.found, nil
}

// ServeProbes implements Conn (non-coordinator side): probes only ever come
// from peer 0, so the serve loop listens on that one link.
func (c *meshConn) ServeProbes(lookup func(fp uint64) (uint64, int32, bool)) error {
	for {
		msg, err := c.m.recv(c.id, 0)
		if err != nil {
			return err
		}
		switch msg.typ {
		case frameBye:
			return nil
		case frameProbeReq:
			parent, depth, found := lookup(msg.tag)
			if err := c.m.send(c.id, 0, meshMsg{typ: frameProbeResp, tag: msg.tag, parent: parent, depth: depth, found: found}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("transport: unexpected %s while serving probes", frameName(msg.typ))
		}
	}
}

// Bye implements Conn (coordinator side).
func (c *meshConn) Bye() error {
	for q := 0; q < c.m.n; q++ {
		if q == c.id {
			continue
		}
		if err := c.m.send(c.id, q, meshMsg{typ: frameBye}); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Conn: it marks this endpoint dead, unblocking every peer
// that waits on it.
func (c *meshConn) Close() error {
	c.m.once[c.id].Do(func() { close(c.m.dead[c.id]) })
	return nil
}
