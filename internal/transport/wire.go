package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format. Every message is a length-prefixed binary frame:
//
//	length[u32 LE]  type[u8]  tag[u64 LE]  payload[length-9 bytes]
//
// where length covers type+tag+payload. Frame types:
//
//	hello      handshake; tag carries the run digest, payload the peer ids
//	block      one level's candidate block; tag is the barrier tag
//	summary    one peer's barrier summary (opaque to the transport)
//	probeReq   parent-edge probe; tag is the fingerprint, empty payload
//	probeResp  probe answer: parent[u64] depth[i32] found[u8]
//	bye        coordinator releasing ServeProbes loops
//
// Block payloads are DEFLATE-compressed records of the candidates a peer
// generated for fingerprints another peer owns; see AppendBlock for the
// record layout. Summaries are small JSON documents produced by the
// explorer — the transport never interprets them.

// Frame type bytes.
const (
	frameHello byte = iota + 1
	frameBlock
	frameSummary
	frameProbeReq
	frameProbeResp
	frameBye
)

// maxFrame bounds a frame payload (sanity check against corrupt length
// prefixes, not a protocol limit a healthy run approaches).
const maxFrame = 1 << 30

// frameName renders a frame type for error messages.
func frameName(t byte) string {
	switch t {
	case frameHello:
		return "hello"
	case frameBlock:
		return "block"
	case frameSummary:
		return "summary"
	case frameProbeReq:
		return "probe-req"
	case frameProbeResp:
		return "probe-resp"
	case frameBye:
		return "bye"
	}
	return fmt.Sprintf("frame(%d)", t)
}

// writeFrame emits one frame to w.
func writeFrame(w io.Writer, typ byte, tag uint64, payload []byte) error {
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(9+len(payload)))
	hdr[4] = typ
	binary.LittleEndian.PutUint64(hdr[5:13], tag)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame from r.
func readFrame(r io.Reader) (typ byte, tag uint64, payload []byte, err error) {
	var hdr [13]byte
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 9 || n > maxFrame {
		return 0, 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	if _, err = io.ReadFull(r, hdr[4:13]); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[4]
	tag = binary.LittleEndian.Uint64(hdr[5:13])
	payload = make([]byte, n-9)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return typ, tag, payload, nil
}

// Candidate is one cross-peer successor record: a state generated on one
// peer whose fingerprint belongs to another. The receiving owner merges
// candidates deterministically (min parent per fingerprint) before
// inserting into its fingerprint-set shard.
type Candidate struct {
	// FP is the successor's canonical fingerprint.
	FP uint64
	// Parent is the fingerprint of the frontier state that generated it.
	Parent uint64
	// Action is the generating action's index in the run's shared action
	// table (spec.DeclaredActions order).
	Action uint16
	// State is the successor's spec.StateCodec encoding.
	State []byte
}

// AppendBlock appends the uncompressed encoding of cands — which must be
// sorted by ascending FP — to dst and returns the extended slice. Record
// layout: uvarint count, then per candidate the FP delta from its
// predecessor (uvarint; sorted input keeps deltas small), Parent (uvarint),
// Action (uvarint), and the state encoding (uvarint length + bytes).
func AppendBlock(dst []byte, cands []Candidate) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cands)))
	prev := uint64(0)
	for i := range cands {
		c := &cands[i]
		dst = binary.AppendUvarint(dst, c.FP-prev)
		prev = c.FP
		dst = binary.AppendUvarint(dst, c.Parent)
		dst = binary.AppendUvarint(dst, uint64(c.Action))
		dst = binary.AppendUvarint(dst, uint64(len(c.State)))
		dst = append(dst, c.State...)
	}
	return dst
}

// DecodeBlock decodes an uncompressed candidate block (the inverse of
// AppendBlock). The returned candidates alias src's backing array.
func DecodeBlock(src []byte) ([]Candidate, error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("transport: block count: truncated")
	}
	src = src[n:]
	if count > uint64(len(src))+1 {
		return nil, fmt.Errorf("transport: block claims %d candidates in %d bytes", count, len(src))
	}
	cands := make([]Candidate, 0, count)
	fp := uint64(0)
	for i := uint64(0); i < count; i++ {
		var c Candidate
		d, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("transport: candidate %d: truncated fp", i)
		}
		src = src[n:]
		fp += d
		c.FP = fp
		c.Parent, n = binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("transport: candidate %d: truncated parent", i)
		}
		src = src[n:]
		a, n := binary.Uvarint(src)
		if n <= 0 || a > 0xFFFF {
			return nil, fmt.Errorf("transport: candidate %d: bad action", i)
		}
		src = src[n:]
		c.Action = uint16(a)
		sl, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("transport: candidate %d: truncated state length", i)
		}
		src = src[n:]
		if sl > uint64(len(src)) {
			return nil, fmt.Errorf("transport: candidate %d: state %d bytes, %d remain", i, sl, len(src))
		}
		c.State = src[:sl:sl]
		src = src[sl:]
		cands = append(cands, c)
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after block", len(src))
	}
	return cands, nil
}

// Compress DEFLATE-compresses a block payload for the wire.
func Compress(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress inverts Compress.
func Decompress(b []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(b))
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("transport: decompress block: %w", err)
	}
	return raw, nil
}

// EncodeBlock is the full wire encoding of a candidate block: AppendBlock
// then Compress. An empty block encodes as an empty payload.
func EncodeBlock(cands []Candidate) ([]byte, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	return Compress(AppendBlock(nil, cands))
}

// DecodeWireBlock inverts EncodeBlock. An empty payload is an empty block.
func DecodeWireBlock(payload []byte) ([]Candidate, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	raw, err := Decompress(payload)
	if err != nil {
		return nil, err
	}
	return DecodeBlock(raw)
}
