// Package transport carries the explorer's cross-peer fingerprint traffic
// for distributed exploration: every peer owns one contiguous slice of the
// fingerprint space (see Owner), expands only the frontier states it owns,
// and at each BFS level barrier exchanges the successor candidates that
// belong to other peers as batched, compressed blocks. The explorer's
// deterministic merge (equal-depth min-parent tie-break plus (depth, fp)
// ordering) makes the result byte-identical to a single-process run; the
// transport's only job is to move the candidate blocks and the small
// per-peer summaries that drive the global stop decisions.
//
// Two implementations exist: an in-memory channel mesh (NewMesh) used by
// tests — it moves the same encoded bytes the TCP mesh would, so the wire
// format is exercised in-process — and a TCP full mesh (DialTCP) with
// length-prefixed binary frames for real multi-process and multi-machine
// runs. A single-peer mesh is a loopback: Exchange returns immediately and
// exploration degenerates to the local path.
package transport

import (
	"github.com/sandtable-go/sandtable/internal/obs"
)

// Conn is one peer's endpoint in a fully connected cluster of Peers()
// members. All methods are called from the peer's single exploration
// goroutine; implementations may use internal concurrency but need not be
// goroutine-safe. The protocol is phase-ordered: a run performs a sequence
// of Exchange barriers with strictly increasing tags, after which peer 0
// (the coordinator, by convention) issues Probe calls answered by the other
// peers' ServeProbes loops until the coordinator sends Bye.
type Conn interface {
	// Self is this peer's id in [0, Peers()).
	Self() int
	// Peers is the cluster size.
	Peers() int
	// Exchange performs one level barrier: blocks[q] is sent to peer q
	// (blocks may be nil or hold nil entries — both mean an empty block),
	// summary is broadcast to every peer, and the call blocks until every
	// peer has contributed. It returns the blocks addressed to this peer
	// (in[Self()] is nil) and all summaries (sums[Self()] echoes the
	// caller's own). Every peer must call Exchange with the same tag
	// sequence; a tag mismatch or a dead peer surfaces as an error.
	Exchange(tag uint64, blocks [][]byte, summary []byte) (in [][]byte, sums [][]byte, err error)
	// Probe asks peer for the parent edge of a fingerprint it owns (used
	// by counterexample reconstruction on the coordinator). Only peer 0
	// may call Probe, and only after the final Exchange barrier.
	Probe(peer int, fp uint64) (parent uint64, depth int32, ok bool, err error)
	// ServeProbes answers the coordinator's Probe requests with the given
	// lookup until the coordinator sends Bye (returns nil) or the
	// connection dies (returns the error). Non-coordinator peers call this
	// after their final Exchange.
	ServeProbes(lookup func(fp uint64) (parent uint64, depth int32, ok bool)) error
	// Bye releases every peer blocked in ServeProbes. Only peer 0 calls it.
	Bye() error
	// Close tears the connection down; peers blocked on this peer fail
	// with an error rather than hanging.
	Close() error
}

// Metrics is the transport's peer-level instrumentation, resolved once from
// an obs.Registry and safe to share across a Conn's internal goroutines.
// A nil *Metrics is valid and records nothing.
type Metrics struct {
	// BlocksSent / BlocksRecv count candidate blocks exchanged at level
	// barriers (one per (peer, barrier) pair, empty blocks included).
	BlocksSent, BlocksRecv *obs.Counter
	// BytesSent / BytesRecv count wire payload bytes after compression.
	BytesSent, BytesRecv *obs.Counter
	// Barriers counts completed Exchange calls.
	Barriers *obs.Counter
	// StallNs accumulates wall-clock nanoseconds spent inside Exchange —
	// the time this peer waited on the rest of the cluster (plus its own
	// serialization), the headline load-imbalance signal.
	StallNs *obs.Counter
	// Probes counts remote parent-edge probes issued by this peer.
	Probes *obs.Counter
	// ProbeLatency is the remote-probe round-trip latency histogram, in
	// microseconds.
	ProbeLatency *obs.Histogram
}

// probeLatencyBounds are the ProbeLatency bucket upper bounds (µs).
var probeLatencyBounds = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000}

// NewMetrics resolves the transport metric handles from reg (nil reg → nil
// Metrics). Metric names are transport.blocks_sent, transport.blocks_recv,
// transport.bytes_sent, transport.bytes_recv, transport.barriers,
// transport.stall_ns, transport.probes, and transport.probe_latency_us.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		BlocksSent:   reg.Counter("transport.blocks_sent"),
		BlocksRecv:   reg.Counter("transport.blocks_recv"),
		BytesSent:    reg.Counter("transport.bytes_sent"),
		BytesRecv:    reg.Counter("transport.bytes_recv"),
		Barriers:     reg.Counter("transport.barriers"),
		StallNs:      reg.Counter("transport.stall_ns"),
		Probes:       reg.Counter("transport.probes"),
		ProbeLatency: reg.Histogram("transport.probe_latency_us", probeLatencyBounds),
	}
}

// sent records one outgoing block of n payload bytes.
func (m *Metrics) sent(n int) {
	if m == nil {
		return
	}
	m.BlocksSent.Inc()
	m.BytesSent.Add(int64(n))
}

// recv records one incoming block of n payload bytes.
func (m *Metrics) recv(n int) {
	if m == nil {
		return
	}
	m.BlocksRecv.Inc()
	m.BytesRecv.Add(int64(n))
}

// barrier records one completed Exchange that stalled for d nanoseconds.
func (m *Metrics) barrier(stallNs int64) {
	if m == nil {
		return
	}
	m.Barriers.Inc()
	m.StallNs.Add(stallNs)
}

// probe records one remote probe round trip of d microseconds.
func (m *Metrics) probe(latencyUs int64) {
	if m == nil {
		return
	}
	m.Probes.Inc()
	m.ProbeLatency.Observe(latencyUs)
}
