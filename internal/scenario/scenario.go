// Package scenario drives a specification machine through a scripted event
// sequence and records the resulting trace — directed testing on top of the
// specification. SandTable's workflow uses it where a state is known to
// matter but sits too deep for bounded search to reach comfortably (e.g.
// steering a snapshot transfer onto a conflicting follower log for the
// CRaft#3 conformance demonstration); users can script regression scenarios
// the same way.
package scenario

import (
	"fmt"
	"strings"

	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Run executes the scripted events against the machine, starting from its
// (single) initial state. Each script entry must match the String() of
// exactly one enabled event (a unique prefix is accepted). The returned
// trace carries per-step variables, ready for implementation-level replay.
func Run(m spec.Machine, script []string) (*trace.Trace, error) {
	inits := m.Init()
	if len(inits) != 1 {
		return nil, fmt.Errorf("scenario: machine has %d initial states, want 1", len(inits))
	}
	cur := inits[0]
	t := &trace.Trace{System: m.Name(), Init: cur.Vars()}
	for i, want := range script {
		succs := m.Next(cur)
		var matches []spec.Succ
		for _, su := range succs {
			s := su.Event.String()
			if s == want || strings.HasPrefix(s, want) {
				matches = append(matches, su)
			}
		}
		switch len(matches) {
		case 1:
			cur = matches[0].State
			t.Steps = append(t.Steps, trace.Step{
				Event:       matches[0].Event,
				Vars:        cur.Vars(),
				Fingerprint: cur.Fingerprint(),
			})
		case 0:
			return nil, fmt.Errorf("scenario: step %d: no enabled event matches %q; enabled:\n%s",
				i+1, want, enabledList(succs))
		default:
			return nil, fmt.Errorf("scenario: step %d: %q is ambiguous (%d matches); enabled:\n%s",
				i+1, want, len(matches), enabledList(succs))
		}
	}
	return t, nil
}

func enabledList(succs []spec.Succ) string {
	var b strings.Builder
	for _, su := range succs {
		fmt.Fprintf(&b, "  %s\n", su.Event.String())
	}
	return b.String()
}
