package scenario

import (
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

func TestRunFollowsScript(t *testing.T) {
	m := &toy.LostUpdate{N: 2}
	tr, err := Run(m, []string{"Read", "Read", "Write", "Write"})
	if err == nil {
		t.Fatal("bare \"Read\" is ambiguous between the two processes")
	}
	// The event strings for internal events are just the action name, so
	// disambiguation needs full successor enumeration context; the toy
	// model's two processes produce identical strings. Use the atomic
	// variant where each step is unique after the first pick.
	m2 := &toy.LostUpdate{N: 1}
	tr, err = Run(m2, []string{"Read", "Write"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 2 {
		t.Fatalf("depth = %d", tr.Depth())
	}
	if tr.Steps[1].Vars["mem"] != "1" {
		t.Errorf("final mem = %s", tr.Steps[1].Vars["mem"])
	}
}

func TestRunReportsUnmatchedStep(t *testing.T) {
	m := &toy.LostUpdate{N: 1}
	_, err := Run(m, []string{"Flip"})
	if err == nil || !strings.Contains(err.Error(), "no enabled event") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "Read") {
		t.Errorf("error should list enabled events: %v", err)
	}
}

func TestRunReportsAmbiguity(t *testing.T) {
	m := &toy.LostUpdate{N: 2}
	_, err := Run(m, []string{"Read"})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}
