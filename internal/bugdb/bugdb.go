// Package bugdb catalogues the 23 defects from Table 2 of the paper. Every
// target system in this repository carries its paper bugs behind flags: the
// default ("buggy") build reproduces the defect mechanisms the paper
// describes, and the fixed build disables them, which is what fix validation
// (§3.4) re-checks. The registry also records the paper's measured
// time/depth/states per bug so EXPERIMENTS.md can print paper-vs-measured
// rows.
package bugdb

// Key identifies one defect mechanism inside an implementation and its
// specification.
type Key string

// GoSyncObj (PySyncObj analogue) defects.
const (
	GSODisconnectCrash    Key = "gosyncobj.disconnect-crash"    // #1
	GSOCommitNonMonotonic Key = "gosyncobj.commit-nonmonotonic" // #2
	GSONextLEMatch        Key = "gosyncobj.next-le-match"       // #3
	GSOMatchNonMonotonic  Key = "gosyncobj.match-nonmonotonic"  // #4
	GSOCommitOldTerm      Key = "gosyncobj.commit-old-term"     // #5
)

// CRaft (WRaft analogue) defects; RedisRaft and DaosRaft are downstream.
const (
	CRaftFirstEntryAppend    Key = "craft.first-entry-append"     // #1
	CRaftAEInsteadOfSnapshot Key = "craft.ae-instead-of-snapshot" // #2
	CRaftSnapshotReject      Key = "craft.snapshot-reject"        // #3
	CRaftTermNonMonotonic    Key = "craft.term-nonmonotonic"      // #4
	CRaftEmptyRetry          Key = "craft.empty-retry"            // #5
	CRaftBufferLeak          Key = "craft.buffer-leak"            // #6
	CRaftNextLEMatch         Key = "craft.next-le-match"          // #7
	CRaftHeartbeatBreak      Key = "craft.heartbeat-break"        // #8
	CRaftWrongTermRead       Key = "craft.wrong-term-read"        // #9
)

// DaosRaft defect (PreVote extension).
const (
	DaosLeaderVotes Key = "daosraft.leader-votes" // #1
)

// AsyncRaft (RaftOS analogue) defects.
const (
	ARMatchNonMonotonic Key = "asyncraft.match-nonmonotonic" // #1
	ARLogErase          Key = "asyncraft.log-erase"          // #2
	ARMissingKeyCrash   Key = "asyncraft.missing-key-crash"  // #3
	ARCommitLoopBreak   Key = "asyncraft.commit-loop-break"  // #4
)

// Xraft defects.
const (
	XRaftStaleVotes    Key = "xraft.stale-votes"    // #1
	XRaftConcurrentMap Key = "xraft.concurrent-map" // #2
)

// Xraft-KV defect.
const (
	XKVStaleRead Key = "xraftkv.stale-read" // #1
)

// ZabKeeper (ZooKeeper analogue) defect.
const (
	ZabVoteOrder Key = "zabkeeper.vote-order" // #1 (ZOOKEEPER-1419 analogue)
)

// Extension defects beyond the paper's Table 2. These are reachable only
// under the crash-consistency fault model (spec.Budget.MaxDirtyCrashes > 0
// plus a buffered engine store), so they are NOT part of Catalog,
// ForSystem, or the All/Verification bug sets — enable them explicitly
// with Set.With or the CLI's -bug flag.
const (
	// GSOUnsyncedLog: persistLog writes the log without fsync; a dirty
	// crash between the write and the next hard-state sync loses committed
	// entries (LogDurability violation).
	GSOUnsyncedLog Key = "gosyncobj.unsynced-log" // GoSyncObj#6 (extension)
)

// Extensions lists the extension rows in the Table 2 format.
var Extensions = []Info{
	{ID: "GoSyncObj#6", PaperID: "-", System: "gosyncobj", Key: GSOUnsyncedLog, Stage: StageVerification, Status: "New", Consequence: "Committed log entries lost by a dirty crash", Invariant: "LogDurability"},
}

// Set is the collection of defects enabled in a build of a system. The
// paper's workflow checks the buggy build, confirms bugs, then validates the
// fixed build.
type Set map[Key]bool

// Has reports whether the defect is enabled (present, i.e. NOT fixed).
func (s Set) Has(k Key) bool { return s[k] }

// Without returns a copy of the set with the given defects fixed.
func (s Set) Without(keys ...Key) Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v
	}
	for _, k := range keys {
		delete(out, k)
	}
	return out
}

// With returns a copy of the set with the given defects enabled.
func (s Set) With(keys ...Key) Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v
	}
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// Stage is the workflow stage at which a bug is found (Table 2's "Stage").
type Stage string

// Stages.
const (
	StageVerification Stage = "Verification" // found by model checking
	StageConformance  Stage = "Conformance"  // found while conformance checking
	StageModeling     Stage = "Modeling"     // found while writing the spec
)

// Info is one Table 2 row.
type Info struct {
	ID          string // e.g. "GoSyncObj#4"
	PaperID     string // e.g. "PySyncObj#4"
	System      string
	Key         Key
	Stage       Stage
	Status      string // "New" or "Old"
	Consequence string
	// Invariant is the safety property whose violation detects the bug
	// (empty for conformance/modeling-stage bugs).
	Invariant string
	// Paper-reported cost to hit the bug (scaled-down runs are compared
	// against these in EXPERIMENTS.md). Zero values mean "-" in Table 2.
	PaperTime   string
	PaperDepth  int
	PaperStates int
}

// Catalog lists every Table 2 row in paper order.
var Catalog = []Info{
	{ID: "GoSyncObj#1", PaperID: "PySyncObj#1", System: "gosyncobj", Key: GSODisconnectCrash, Stage: StageConformance, Status: "New", Consequence: "Unhandled exception during disconnection"},
	{ID: "GoSyncObj#2", PaperID: "PySyncObj#2", System: "gosyncobj", Key: GSOCommitNonMonotonic, Stage: StageVerification, Status: "New", Consequence: "Commit index is not monotonic", Invariant: "NoFlaggedViolation", PaperTime: "6s", PaperDepth: 13, PaperStates: 93713},
	{ID: "GoSyncObj#3", PaperID: "PySyncObj#3", System: "gosyncobj", Key: GSONextLEMatch, Stage: StageVerification, Status: "New", Consequence: "Next index <= match index", Invariant: "NextIndexAfterMatchIndex", PaperTime: "7s", PaperDepth: 18, PaperStates: 189725},
	{ID: "GoSyncObj#4", PaperID: "PySyncObj#4", System: "gosyncobj", Key: GSOMatchNonMonotonic, Stage: StageVerification, Status: "New", Consequence: "Match index is not monotonic", Invariant: "NoFlaggedViolation", PaperTime: "35s", PaperDepth: 25, PaperStates: 1512679},
	{ID: "GoSyncObj#5", PaperID: "PySyncObj#5", System: "gosyncobj", Key: GSOCommitOldTerm, Stage: StageVerification, Status: "New", Consequence: "Leader commits log entries of older terms", Invariant: "NoFlaggedViolation", PaperTime: "2min", PaperDepth: 14, PaperStates: 2364779},
	{ID: "CRaft#1", PaperID: "WRaft#1", System: "craft", Key: CRaftFirstEntryAppend, Stage: StageVerification, Status: "New", Consequence: "Incorrectly appending log entries", Invariant: "LogMatching", PaperTime: "9min", PaperDepth: 22, PaperStates: 5954049},
	{ID: "CRaft#2", PaperID: "WRaft#2", System: "craft", Key: CRaftAEInsteadOfSnapshot, Stage: StageVerification, Status: "Old", Consequence: "Inconsistent committed log", Invariant: "CommittedLogConsistency", PaperTime: "22min", PaperDepth: 20, PaperStates: 20955790},
	{ID: "CRaft#3", PaperID: "WRaft#3", System: "craft", Key: CRaftSnapshotReject, Stage: StageConformance, Status: "New", Consequence: "Follower lagging behind until next snapshot"},
	{ID: "CRaft#4", PaperID: "WRaft#4", System: "craft", Key: CRaftTermNonMonotonic, Stage: StageVerification, Status: "Old", Consequence: "Current term is not monotonic", Invariant: "NoFlaggedViolation", PaperTime: "39min", PaperDepth: 23, PaperStates: 48338241},
	{ID: "CRaft#5", PaperID: "WRaft#5", System: "craft", Key: CRaftEmptyRetry, Stage: StageVerification, Status: "New", Consequence: "Retry messages include empty logs", Invariant: "NoFlaggedViolation", PaperTime: "11min", PaperDepth: 24, PaperStates: 10576917},
	{ID: "CRaft#6", PaperID: "WRaft#6", System: "craft", Key: CRaftBufferLeak, Stage: StageConformance, Status: "Old", Consequence: "Memory leak"},
	{ID: "CRaft#7", PaperID: "WRaft#7", System: "craft", Key: CRaftNextLEMatch, Stage: StageVerification, Status: "New", Consequence: "Next index <= match index", Invariant: "NextIndexAfterMatchIndex", PaperTime: "8min", PaperDepth: 23, PaperStates: 7401586},
	{ID: "CRaft#8", PaperID: "WRaft#8", System: "craft", Key: CRaftHeartbeatBreak, Stage: StageConformance, Status: "New", Consequence: "Prematurely stopping sending heartbeats"},
	{ID: "CRaft#9", PaperID: "WRaft#9", System: "craft", Key: CRaftWrongTermRead, Stage: StageModeling, Status: "Old", Consequence: "Cannot elect leaders due to incorrectly getting term"},
	{ID: "DaosRaft#1", PaperID: "DaosRaft#1", System: "daosraft", Key: DaosLeaderVotes, Stage: StageVerification, Status: "New", Consequence: "Leader votes for others", Invariant: "LeaderVotesForSelf", PaperTime: "5s", PaperDepth: 8, PaperStates: 476},
	{ID: "AsyncRaft#1", PaperID: "RaftOS#1", System: "asyncraft", Key: ARMatchNonMonotonic, Stage: StageVerification, Status: "New", Consequence: "Match index is not monotonic", Invariant: "NoFlaggedViolation", PaperTime: "5s", PaperDepth: 10, PaperStates: 60101},
	{ID: "AsyncRaft#2", PaperID: "RaftOS#2", System: "asyncraft", Key: ARLogErase, Stage: StageVerification, Status: "New", Consequence: "Incorrectly erasing log entries", Invariant: "LogDurability", PaperTime: "4s", PaperDepth: 9, PaperStates: 19455},
	{ID: "AsyncRaft#3", PaperID: "RaftOS#3", System: "asyncraft", Key: ARMissingKeyCrash, Stage: StageConformance, Status: "New", Consequence: "Unhandled exception during receiving messages"},
	{ID: "AsyncRaft#4", PaperID: "RaftOS#4", System: "asyncraft", Key: ARCommitLoopBreak, Stage: StageVerification, Status: "New", Consequence: "Prematurely stopping checking commitment", Invariant: "NoFlaggedViolation", PaperTime: "4min", PaperDepth: 14, PaperStates: 16938773},
	{ID: "Xraft#1", PaperID: "Xraft#1", System: "xraft", Key: XRaftStaleVotes, Stage: StageVerification, Status: "New", Consequence: "More than one valid leader in the same term", Invariant: "AtMostOneLeaderPerTerm", PaperTime: "3s", PaperDepth: 8, PaperStates: 3534},
	{ID: "Xraft#2", PaperID: "Xraft#2", System: "xraft", Key: XRaftConcurrentMap, Stage: StageConformance, Status: "New", Consequence: "Unhandled concurrent modification exception"},
	{ID: "XraftKV#1", PaperID: "Xraft-KV#1", System: "xraftkv", Key: XKVStaleRead, Stage: StageVerification, Status: "New", Consequence: "Read operations do not satisfy linearizability", Invariant: "Linearizability", PaperTime: "15s", PaperDepth: 10, PaperStates: 124409},
	{ID: "ZabKeeper#1", PaperID: "ZooKeeper#1", System: "zabkeeper", Key: ZabVoteOrder, Stage: StageVerification, Status: "Old", Consequence: "Votes are not total ordered", Invariant: "VoteTotalOrder", PaperTime: "4min", PaperDepth: 41, PaperStates: 7625160},
}

// ForSystem returns the catalog rows of one system.
func ForSystem(system string) []Info {
	var out []Info
	for _, b := range Catalog {
		if b.System == system {
			out = append(out, b)
		}
	}
	return out
}

// ByID returns the catalog (or extension) row with the given ID.
func ByID(id string) (Info, bool) {
	for _, b := range Catalog {
		if b.ID == id {
			return b, true
		}
	}
	for _, b := range Extensions {
		if b.ID == id {
			return b, true
		}
	}
	return Info{}, false
}

// upstream lists the defects a downstream fork inherits unfixed from its
// upstream library. RedisRaft fixed CRaft #2/#4/#6/#9 (the paper found
// WRaft's old bugs "resolved in DaosRaft and/or RedisRaft"; we model
// RedisRaft as the fork with those fixes); DaosRaft carries the upstream
// defects except the buffer leak and wrong-term read it patched, plus its
// own PreVote defect.
var upstream = map[string][]Key{
	"redisraft": {CRaftFirstEntryAppend, CRaftSnapshotReject, CRaftEmptyRetry, CRaftNextLEMatch, CRaftHeartbeatBreak},
	"daosraft":  {CRaftFirstEntryAppend, CRaftAEInsteadOfSnapshot, CRaftSnapshotReject, CRaftTermNonMonotonic, CRaftEmptyRetry, CRaftNextLEMatch, CRaftHeartbeatBreak},
}

// Upstream returns the defects a system inherits from its upstream library.
func Upstream(system string) []Key {
	return append([]Key(nil), upstream[system]...)
}

// StageOf reports the workflow stage at which a defect key was found.
func StageOf(k Key) Stage {
	for _, b := range Catalog {
		if b.Key == k {
			return b.Stage
		}
	}
	for _, b := range Extensions {
		if b.Key == k {
			return b.Stage
		}
	}
	return StageVerification
}

// AllBugs returns the full buggy build for a system (every defect enabled,
// including defects inherited from an upstream library).
func AllBugs(system string) Set {
	s := make(Set)
	for _, b := range Catalog {
		if b.System == system {
			s[b.Key] = true
		}
	}
	for _, k := range upstream[system] {
		s[k] = true
	}
	return s
}

// VerificationBugs is the defect set after the conformance and modeling
// stages fixed their by-product findings: only the defects model checking
// hunts remain. This is the aligned state the paper's verification
// experiments run from, in both the specification and the implementation.
func VerificationBugs(system string) Set {
	s := make(Set)
	for k := range AllBugs(system) {
		if StageOf(k) == StageVerification {
			s[k] = true
		}
	}
	return s
}

// NoBugs returns the fully fixed build.
func NoBugs() Set { return make(Set) }
