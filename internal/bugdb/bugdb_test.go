package bugdb

import "testing"

func TestCatalogHas23UniqueRows(t *testing.T) {
	if len(Catalog) != 23 {
		t.Fatalf("catalog rows = %d, want 23 (Table 2)", len(Catalog))
	}
	ids := map[string]bool{}
	keys := map[Key]bool{}
	for _, b := range Catalog {
		if ids[b.ID] {
			t.Errorf("duplicate id %s", b.ID)
		}
		ids[b.ID] = true
		if keys[b.Key] {
			t.Errorf("duplicate key %s", b.Key)
		}
		keys[b.Key] = true
		switch b.Stage {
		case StageVerification, StageConformance, StageModeling:
		default:
			t.Errorf("%s: bad stage %q", b.ID, b.Stage)
		}
		if b.Status != "New" && b.Status != "Old" {
			t.Errorf("%s: bad status %q", b.ID, b.Status)
		}
		if b.Consequence == "" {
			t.Errorf("%s: missing consequence", b.ID)
		}
	}
}

func TestStageBreakdownMatchesPaper(t *testing.T) {
	count := map[Stage]int{}
	for _, b := range Catalog {
		count[b.Stage]++
	}
	if count[StageVerification] != 16 || count[StageConformance] != 6 || count[StageModeling] != 1 {
		t.Errorf("stage counts = %v, want 16/6/1", count)
	}
	news := 0
	for _, b := range Catalog {
		if b.Status == "New" {
			news++
		}
	}
	if news != 18 {
		t.Errorf("new bugs = %d, want 18", news)
	}
}

func TestSetOperations(t *testing.T) {
	s := NoBugs().With(GSOCommitOldTerm, CRaftEmptyRetry)
	if !s.Has(GSOCommitOldTerm) || !s.Has(CRaftEmptyRetry) || s.Has(ZabVoteOrder) {
		t.Errorf("set = %v", s)
	}
	fixed := s.Without(GSOCommitOldTerm)
	if fixed.Has(GSOCommitOldTerm) || !fixed.Has(CRaftEmptyRetry) {
		t.Errorf("without = %v", fixed)
	}
	if s.Has(GSOCommitOldTerm) == false {
		t.Error("Without must not mutate the receiver")
	}
}

func TestAllBugsIncludesUpstreamInheritance(t *testing.T) {
	redis := AllBugs("redisraft")
	// RedisRaft fixed CRaft #2/#4/#6/#9 but inherits the rest.
	for _, k := range []Key{CRaftFirstEntryAppend, CRaftEmptyRetry, CRaftNextLEMatch, CRaftHeartbeatBreak, CRaftSnapshotReject} {
		if !redis.Has(k) {
			t.Errorf("redisraft should inherit %s", k)
		}
	}
	for _, k := range []Key{CRaftAEInsteadOfSnapshot, CRaftTermNonMonotonic, CRaftBufferLeak, CRaftWrongTermRead} {
		if redis.Has(k) {
			t.Errorf("redisraft fixed %s upstream", k)
		}
	}
	daos := AllBugs("daosraft")
	if !daos.Has(DaosLeaderVotes) || !daos.Has(CRaftAEInsteadOfSnapshot) {
		t.Errorf("daosraft set = %v", daos)
	}
}

func TestVerificationBugsExcludesByProductStages(t *testing.T) {
	v := VerificationBugs("craft")
	for k := range v {
		if StageOf(k) != StageVerification {
			t.Errorf("verification set contains %s (stage %s)", k, StageOf(k))
		}
	}
	if v.Has(CRaftBufferLeak) || v.Has(CRaftWrongTermRead) {
		t.Error("conformance/modeling defects must be excluded")
	}
	if !v.Has(CRaftTermNonMonotonic) {
		t.Error("verification defects must be included")
	}
}

func TestByIDAndForSystem(t *testing.T) {
	info, ok := ByID("ZabKeeper#1")
	if !ok || info.Key != ZabVoteOrder {
		t.Errorf("ByID = %+v, %v", info, ok)
	}
	if _, ok := ByID("Nope#9"); ok {
		t.Error("unknown id resolved")
	}
	if rows := ForSystem("gosyncobj"); len(rows) != 5 {
		t.Errorf("gosyncobj rows = %d, want 5", len(rows))
	}
}
