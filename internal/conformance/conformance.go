// Package conformance implements SandTable's iterative conformance checking
// (§3.2): it randomly explores the specification state space, replays each
// trace against the implementation under the deterministic execution
// engine, and compares the specification variables with the implementation
// state after every event. Any discrepancy — a diverging variable, a
// non-executable command, or an implementation crash — is reported with the
// event prefix that produced it, so the user can fix the specification (or
// discover a by-product implementation bug) and rerun until a full round
// passes quietly.
package conformance

import (
	"fmt"
	"strconv"
	"time"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Target couples a specification machine with an implementation cluster
// factory — everything needed to cross-check the two levels.
type Target struct {
	Machine spec.Machine
	// NewCluster boots a fresh implementation cluster for one trace replay
	// (stateless initialisation, as the paper's engine does per trace).
	NewCluster func(seed int64) (*engine.Cluster, error)
	// Observe overrides implementation state collection (defaults to
	// ObserveAll: node APIs plus the proxy's network variables).
	Observe func(*engine.Cluster) (map[string]string, error)
	// ResourceCheck, when set, runs after every event and can flag
	// general correctness bugs (e.g. the CRaft#6 buffer leak).
	ResourceCheck func(*engine.Cluster) error
	// IgnoreVars excludes variable keys from comparison.
	IgnoreVars []string
}

// Options tunes a conformance run.
type Options struct {
	// Walks is the number of random specification traces to replay.
	Walks int
	// WalkDepth bounds each trace (0 = until deadlock).
	WalkDepth int
	// Seed makes the run reproducible.
	Seed int64
	// Timeout stops the run early (the paper's stopping condition is a
	// period with no discrepancies, e.g. 30 minutes; tests use seconds).
	Timeout time.Duration
	// Progress, when set, receives a snapshot after every replayed walk
	// (Depth = walks completed, DistinctStates/Transitions = events
	// checked). Cadence as in explorer.Options (default 5s).
	Progress obs.ProgressFunc
	// ProgressInterval is the minimum wall-clock time between reports.
	ProgressInterval time.Duration
	// Metrics, when set, receives conformance.walks / conformance.events
	// counters and is installed on every replay cluster (engine.* and
	// vnet.* counters accumulate across walks).
	Metrics *obs.Registry
	// Tracer, when set, records every engine/vnet/replay event of every
	// replayed walk, separated by "walk-start" markers.
	Tracer *obs.Tracer
}

// DefaultOptions is a short conformance round.
func DefaultOptions() Options { return Options{Walks: 100, WalkDepth: 30, Seed: 1} }

// Discrepancy is one detected spec/impl divergence.
type Discrepancy struct {
	Walk  int
	Seed  int64
	Step  *replay.StepResult
	Trace *trace.Trace
}

func (d *Discrepancy) Error() string {
	return fmt.Sprintf("conformance: walk %d (seed %d): %s", d.Walk, d.Seed, d.Step.Describe())
}

// Report summarises a conformance round.
type Report struct {
	Walks         int
	EventsChecked int
	Duration      time.Duration
	// Discrepancy is the first divergence found (nil = the round passed).
	Discrepancy *Discrepancy
}

// Passed reports whether the round found no discrepancies.
func (r *Report) Passed() bool { return r.Discrepancy == nil }

// Run performs one conformance round: Walks random traces, each replayed
// from a fresh cluster, stopping at the first discrepancy.
func Run(t *Target, opts Options) (*Report, error) {
	if opts.Walks <= 0 {
		opts.Walks = DefaultOptions().Walks
	}
	start := time.Now()
	sim := explorer.NewSimulator(t.Machine, explorer.SimOptions{
		MaxDepth:   opts.WalkDepth,
		Seed:       opts.Seed,
		RecordVars: true,
	})
	interval := opts.ProgressInterval
	if opts.Progress != nil && interval == 0 {
		interval = 5 * time.Second
	}
	reporter := obs.NewReporter(opts.Progress, interval, 0)
	walksCtr := opts.Metrics.Counter("conformance.walks")
	eventsCtr := opts.Metrics.Counter("conformance.events")

	rep := &Report{}
	for w := 0; w < opts.Walks; w++ {
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			break
		}
		seed := opts.Seed + int64(w)
		walk := sim.Walk(seed)
		cluster, err := t.NewCluster(seed)
		if err != nil {
			return nil, fmt.Errorf("conformance: boot cluster: %w", err)
		}
		if opts.Tracer != nil {
			opts.Tracer.Emit(obs.Event{
				Layer: "conformance", Kind: "walk-start", Node: -1,
				Detail: map[string]string{"walk": strconv.Itoa(w), "seed": strconv.FormatInt(seed, 10), "depth": strconv.Itoa(walk.Stats.Depth)},
			})
		}
		res, err := runOne(t, walk.Trace, cluster, opts.Tracer, opts.Metrics)
		if err != nil {
			return nil, err
		}
		rep.Walks++
		walksCtr.Inc()
		rep.EventsChecked += res.Steps
		eventsCtr.Add(int64(res.Steps))
		if res.Divergence != nil {
			rep.Discrepancy = &Discrepancy{Walk: w, Seed: seed, Step: res.Divergence, Trace: walk.Trace}
			break
		}
		reporter.Maybe(obs.Progress{
			DistinctStates: rep.EventsChecked,
			Transitions:    int64(rep.EventsChecked),
			Depth:          rep.Walks,
		})
	}
	rep.Duration = time.Since(start)
	if opts.Progress != nil {
		reporter.Emit(obs.Progress{
			DistinctStates: rep.EventsChecked,
			Transitions:    int64(rep.EventsChecked),
			Depth:          rep.Walks,
			Final:          true,
		})
	}
	return rep, nil
}

func runOne(t *Target, tr *trace.Trace, c *engine.Cluster, tracer *obs.Tracer, metrics *obs.Registry) (*replay.Result, error) {
	opts := replay.Options{
		CompareEachStep: true,
		IgnoreVars:      t.IgnoreVars,
		Observe:         t.Observe,
		Tracer:          tracer,
		Metrics:         metrics,
	}
	if t.ResourceCheck == nil {
		return replay.Run(tr, c, opts)
	}
	// With a resource check installed, replay step by step so the check
	// runs after every event.
	res := &replay.Result{}
	for i := range tr.Steps {
		one := &trace.Trace{System: tr.System, Steps: tr.Steps[i : i+1]}
		r, err := replay.Run(one, c, opts)
		if err != nil {
			return nil, err
		}
		res.Steps += r.Steps
		if r.Divergence != nil {
			r.Divergence.Step = i
			res.Divergence = r.Divergence
			return res, nil
		}
		if err := t.ResourceCheck(c); err != nil {
			res.Divergence = &replay.StepResult{Step: i, Event: tr.Steps[i].Event, Err: err}
			return res, nil
		}
	}
	return res, nil
}
