// Package conformance implements SandTable's iterative conformance checking
// (§3.2): it randomly explores the specification state space, replays each
// trace against the implementation under the deterministic execution
// engine, and compares the specification variables with the implementation
// state after every event. Any discrepancy — a diverging variable, a
// non-executable command, or an implementation crash — is reported with the
// event prefix that produced it, so the user can fix the specification (or
// discover a by-product implementation bug) and rerun until a full round
// passes quietly.
package conformance

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Target couples a specification machine with an implementation cluster
// factory — everything needed to cross-check the two levels.
type Target struct {
	Machine spec.Machine
	// NewCluster boots a fresh implementation cluster for one trace replay
	// (stateless initialisation, as the paper's engine does per trace).
	NewCluster func(seed int64) (*engine.Cluster, error)
	// Observe overrides implementation state collection (defaults to
	// ObserveAll: node APIs plus the proxy's network variables).
	Observe func(*engine.Cluster) (map[string]string, error)
	// ResourceCheck, when set, runs after every event and can flag
	// general correctness bugs (e.g. the CRaft#6 buffer leak).
	ResourceCheck func(*engine.Cluster) error
	// IgnoreVars excludes variable keys from comparison.
	IgnoreVars []string
}

// Options tunes a conformance run.
type Options struct {
	// Walks is the number of random specification traces to replay.
	Walks int
	// WalkDepth bounds each trace (0 = until deadlock).
	WalkDepth int
	// Seed makes the run reproducible.
	Seed int64
	// Workers is the number of parallel replay workers (<= 1 runs the
	// walks serially). Each walk is seeded by its index and replayed on a
	// fresh cluster, so walks are independent; workers claim walk indices
	// in order and the first discrepancy (lowest walk index) wins, so the
	// Report — Walks, EventsChecked, and the Discrepancy's walk, seed,
	// step, and diff keys — is identical for every worker count. Only
	// scheduling-dependent side channels vary: tracer event interleaving
	// (walk-start markers carry a "worker" detail), per-worker
	// conformance.worker[i].walks counters, and replay.*/engine.* metric
	// totals, which may include walks past the first discrepancy that
	// other workers had already claimed.
	Workers int
	// Timeout stops the run early (the paper's stopping condition is a
	// period with no discrepancies, e.g. 30 minutes; tests use seconds).
	Timeout time.Duration
	// Progress, when set, receives a snapshot after every replayed walk
	// (Depth = walks completed, DistinctStates/Transitions = events
	// checked). Cadence as in explorer.Options (default 5s).
	Progress obs.ProgressFunc
	// ProgressInterval is the minimum wall-clock time between reports.
	ProgressInterval time.Duration
	// Metrics, when set, receives conformance.walks / conformance.events
	// counters and is installed on every replay cluster (engine.* and
	// vnet.* counters accumulate across walks).
	Metrics *obs.Registry
	// Tracer, when set, records every engine/vnet/replay event of every
	// replayed walk, separated by "walk-start" markers.
	Tracer *obs.Tracer
}

// DefaultOptions is a short conformance round.
func DefaultOptions() Options { return Options{Walks: 100, WalkDepth: 30, Seed: 1} }

// Discrepancy is one detected spec/impl divergence.
type Discrepancy struct {
	Walk  int
	Seed  int64
	Step  *replay.StepResult
	Trace *trace.Trace
}

// Error renders the discrepancy as a one-line diagnostic naming the walk,
// its seed, and the diverging step.
func (d *Discrepancy) Error() string {
	return fmt.Sprintf("conformance: walk %d (seed %d): %s", d.Walk, d.Seed, d.Step.Describe())
}

// Report summarises a conformance round.
type Report struct {
	Walks         int
	EventsChecked int
	Duration      time.Duration
	// Discrepancy is the first divergence found (nil = the round passed).
	Discrepancy *Discrepancy
}

// Passed reports whether the round found no discrepancies.
func (r *Report) Passed() bool { return r.Discrepancy == nil }

// Run performs one conformance round: Walks random traces, each replayed
// from a fresh cluster, stopping at the first discrepancy. With
// Options.Workers > 1 the walks are replayed by a worker pool; the report
// is identical to a serial run (see Options.Workers).
func Run(t *Target, opts Options) (*Report, error) {
	if opts.Walks <= 0 {
		opts.Walks = DefaultOptions().Walks
	}
	start := time.Now()
	sim := explorer.NewSimulator(t.Machine, explorer.SimOptions{
		MaxDepth:   opts.WalkDepth,
		Seed:       opts.Seed,
		RecordVars: true,
	})
	interval := opts.ProgressInterval
	if opts.Progress != nil && interval == 0 {
		interval = 5 * time.Second
	}
	reporter := obs.NewReporter(opts.Progress, interval, 0)

	var rep *Report
	var err error
	if opts.Workers > 1 {
		rep, err = runParallel(t, sim, reporter, opts, start)
	} else {
		rep, err = runSerial(t, sim, reporter, opts, start)
	}
	if err != nil {
		return nil, err
	}
	rep.Duration = time.Since(start)
	if opts.Progress != nil {
		reporter.Emit(obs.Progress{
			DistinctStates: rep.EventsChecked,
			Transitions:    int64(rep.EventsChecked),
			Depth:          rep.Walks,
			Final:          true,
		})
	}
	return rep, nil
}

func runSerial(t *Target, sim *explorer.Simulator, reporter *obs.Reporter, opts Options, start time.Time) (*Report, error) {
	walksCtr := opts.Metrics.Counter("conformance.walks")
	eventsCtr := opts.Metrics.Counter("conformance.events")

	rep := &Report{}
	for w := 0; w < opts.Walks; w++ {
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			break
		}
		seed := opts.Seed + int64(w)
		walk := sim.Walk(seed)
		cluster, err := t.NewCluster(seed)
		if err != nil {
			return nil, fmt.Errorf("conformance: boot cluster: %w", err)
		}
		if opts.Tracer != nil {
			opts.Tracer.Emit(obs.Event{
				Layer: "conformance", Kind: "walk-start", Node: -1,
				Detail: map[string]string{"walk": strconv.Itoa(w), "seed": strconv.FormatInt(seed, 10), "depth": strconv.Itoa(walk.Stats.Depth)},
			})
		}
		res, err := runOne(t, walk.Trace, cluster, opts.Tracer, opts.Metrics)
		if err != nil {
			return nil, err
		}
		rep.Walks++
		walksCtr.Inc()
		rep.EventsChecked += res.Steps
		eventsCtr.Add(int64(res.Steps))
		if res.Divergence != nil {
			rep.Discrepancy = &Discrepancy{Walk: w, Seed: seed, Step: res.Divergence, Trace: walk.Trace}
			break
		}
		reporter.Maybe(obs.Progress{
			DistinctStates: rep.EventsChecked,
			Transitions:    int64(rep.EventsChecked),
			Depth:          rep.Walks,
		})
	}
	return rep, nil
}

// walkSlot is one walk's outcome in a parallel round, filled in by whichever
// worker claimed the walk.
type walkSlot struct {
	executed bool
	steps    int
	div      *replay.StepResult
	tr       *trace.Trace
	err      error
}

// runParallel replays walks on opts.Workers goroutines. Determinism scheme:
// an atomic counter hands out walk indices in order; a worker never abandons
// a claimed walk (except when the walk index is already past the lowest
// known discrepancy, which a serial run would never reach); and the report
// is assembled by a final in-order scan of the per-walk slots, stopping at
// the first unexecuted slot or discrepancy. Because the lowest-discrepancy
// watermark only decreases, every walk below the final discrepancy index is
// guaranteed to have been executed, so the scan reproduces the serial
// Walks / EventsChecked / Discrepancy exactly.
func runParallel(t *Target, sim *explorer.Simulator, reporter *obs.Reporter, opts Options, start time.Time) (*Report, error) {
	slots := make([]walkSlot, opts.Walks)
	var (
		next  atomic.Int64
		found atomic.Int64 // lowest walk index with a discrepancy or error
		mu    sync.Mutex   // guards reporter and the progress totals
		wg    sync.WaitGroup

		progWalks  int
		progEvents int
	)
	found.Store(int64(opts.Walks))
	opts.Metrics.Gauge("conformance.workers").Set(int64(opts.Workers))

	lower := func(w int) {
		for {
			cur := found.Load()
			if int64(w) >= cur || found.CompareAndSwap(cur, int64(w)) {
				return
			}
		}
	}

	for wk := 0; wk < opts.Workers; wk++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			workerCtr := opts.Metrics.Counter(fmt.Sprintf("conformance.worker[%d].walks", worker))
			for {
				w := int(next.Add(1) - 1)
				if w >= opts.Walks || int64(w) > found.Load() {
					return
				}
				if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
					return
				}
				seed := opts.Seed + int64(w)
				walk := sim.Walk(seed)
				cluster, err := t.NewCluster(seed)
				if err != nil {
					slots[w] = walkSlot{executed: true, err: fmt.Errorf("conformance: boot cluster: %w", err)}
					lower(w)
					continue
				}
				if opts.Tracer != nil {
					opts.Tracer.Emit(obs.Event{
						Layer: "conformance", Kind: "walk-start", Node: -1,
						Detail: map[string]string{
							"walk": strconv.Itoa(w), "seed": strconv.FormatInt(seed, 10),
							"depth": strconv.Itoa(walk.Stats.Depth), "worker": strconv.Itoa(worker),
						},
					})
				}
				res, err := runOne(t, walk.Trace, cluster, opts.Tracer, opts.Metrics)
				if err != nil {
					slots[w] = walkSlot{executed: true, err: err}
					lower(w)
					continue
				}
				slots[w] = walkSlot{executed: true, steps: res.Steps, div: res.Divergence, tr: walk.Trace}
				workerCtr.Inc()
				if res.Divergence != nil {
					lower(w)
					continue
				}
				mu.Lock()
				progWalks++
				progEvents += res.Steps
				reporter.Maybe(obs.Progress{
					DistinctStates: progEvents,
					Transitions:    int64(progEvents),
					Depth:          progWalks,
				})
				mu.Unlock()
			}
		}(wk)
	}
	wg.Wait()

	// In-order scan: conformance.walks / conformance.events are counted
	// here rather than in the workers so the counters match a serial run.
	walksCtr := opts.Metrics.Counter("conformance.walks")
	eventsCtr := opts.Metrics.Counter("conformance.events")
	rep := &Report{}
	for w := 0; w < opts.Walks; w++ {
		s := &slots[w]
		if !s.executed {
			break
		}
		if s.err != nil {
			return nil, s.err
		}
		rep.Walks++
		walksCtr.Inc()
		rep.EventsChecked += s.steps
		eventsCtr.Add(int64(s.steps))
		if s.div != nil {
			rep.Discrepancy = &Discrepancy{Walk: w, Seed: opts.Seed + int64(w), Step: s.div, Trace: s.tr}
			break
		}
	}
	return rep, nil
}

func runOne(t *Target, tr *trace.Trace, c *engine.Cluster, tracer *obs.Tracer, metrics *obs.Registry) (*replay.Result, error) {
	opts := replay.Options{
		CompareEachStep: true,
		IgnoreVars:      t.IgnoreVars,
		Observe:         t.Observe,
		Tracer:          tracer,
		Metrics:         metrics,
	}
	if t.ResourceCheck != nil {
		// The check runs after every executed event via the replay-layer
		// hook, so the walk stays a single replay: exactly one verdict
		// event, step indices relative to the walk trace, and replay.steps
		// metrics identical to runs without a resource check.
		opts.AfterStep = func(step int, c *engine.Cluster) error {
			return t.ResourceCheck(c)
		}
	}
	return replay.Run(tr, c, opts)
}
