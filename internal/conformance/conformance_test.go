package conformance

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// counterMachine is a minimal spec: each client request increments a
// per-node counter. The matching counterProcess mirrors it, with optional
// skew to provoke discrepancies.
type counterState struct {
	vals     []int
	counters spec.Counters
}

func (s *counterState) Fingerprint() uint64 {
	h := fp.New()
	h.WriteInts(s.vals)
	s.counters.Hash(h)
	return h.Sum()
}

func (s *counterState) Vars() map[string]string {
	m := map[string]string{}
	for i, v := range s.vals {
		m[fmt.Sprintf("count[%d]", i)] = strconv.Itoa(v)
	}
	return m
}

type counterMachine struct {
	n      int
	budget spec.Budget
}

func (m *counterMachine) Name() string { return "counter" }

func (m *counterMachine) Init() []spec.State {
	return []spec.State{&counterState{vals: make([]int, m.n)}}
}

func (m *counterMachine) Next(st spec.State) []spec.Succ {
	s := st.(*counterState)
	var out []spec.Succ
	if !s.counters.CanRequest(m.budget) {
		return nil
	}
	for i := 0; i < m.n; i++ {
		n := &counterState{vals: append([]int(nil), s.vals...), counters: s.counters}
		n.vals[i]++
		n.counters.Requests++
		out = append(out, spec.Succ{
			Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: i, Payload: "inc"},
			State: n,
		})
	}
	return out
}

func (m *counterMachine) Invariants() []spec.Invariant { return nil }

type counterProcess struct {
	env  vos.Env
	val  int
	skew bool // count by two after the second increment (a seeded defect)
}

func (p *counterProcess) Start(env vos.Env)   { p.env = env; p.val = 0 }
func (p *counterProcess) Receive(int, []byte) {}
func (p *counterProcess) Tick()               {}
func (p *counterProcess) ClientRequest(string) {
	p.val++
	if p.skew && p.val >= 2 {
		p.val++
	}
}
func (p *counterProcess) Observe() map[string]string {
	return map[string]string{"count": strconv.Itoa(p.val)}
}

func target(n int, skew bool, resource func(*engine.Cluster) error) *Target {
	return &Target{
		Machine: &counterMachine{n: n, budget: spec.Budget{MaxRequests: 5}},
		NewCluster: func(seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{Nodes: n}, func(id int) vos.Process {
				return &counterProcess{skew: skew}
			})
		},
		ResourceCheck: resource,
	}
}

func TestConformingPairPasses(t *testing.T) {
	rep, err := Run(target(2, false, nil), Options{Walks: 30, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("discrepancy on an aligned pair: %v", rep.Discrepancy)
	}
	if rep.Walks != 30 || rep.EventsChecked == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSkewDetectedWithEventPrefix(t *testing.T) {
	rep, err := Run(target(2, true, nil), Options{Walks: 30, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("skewed implementation not detected")
	}
	d := rep.Discrepancy
	if len(d.Step.DiffKeys) == 0 || d.Trace == nil {
		t.Fatalf("discrepancy lacks detail: %+v", d)
	}
	if d.Error() == "" {
		t.Error("empty discrepancy message")
	}
}

func TestResourceCheckRunsPerEvent(t *testing.T) {
	calls := 0
	rc := func(c *engine.Cluster) error {
		calls++
		if calls == 3 {
			return fmt.Errorf("leak detected")
		}
		return nil
	}
	rep, err := Run(target(2, false, rc), Options{Walks: 5, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("resource failure not reported")
	}
	if rep.Discrepancy.Step.Err == nil {
		t.Errorf("resource failure should surface as a step error: %+v", rep.Discrepancy)
	}
	if calls != 3 {
		t.Errorf("resource check ran %d times, want 3", calls)
	}
}

func TestTimeoutStopsRound(t *testing.T) {
	rep, err := Run(target(2, false, nil), Options{Walks: 100000, WalkDepth: 5, Seed: 1, Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks >= 100000 {
		t.Errorf("timeout did not stop the round (%d walks)", rep.Walks)
	}
}
