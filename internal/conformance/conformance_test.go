package conformance

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// counterMachine is a minimal spec: each client request increments a
// per-node counter. The matching counterProcess mirrors it, with optional
// skew to provoke discrepancies.
type counterState struct {
	vals     []int
	counters spec.Counters
}

func (s *counterState) Fingerprint() uint64 {
	h := fp.New()
	h.WriteInts(s.vals)
	s.counters.Hash(h)
	return h.Sum()
}

func (s *counterState) Vars() map[string]string {
	m := map[string]string{}
	for i, v := range s.vals {
		m[fmt.Sprintf("count[%d]", i)] = strconv.Itoa(v)
	}
	return m
}

type counterMachine struct {
	n      int
	budget spec.Budget
}

func (m *counterMachine) Name() string { return "counter" }

func (m *counterMachine) Init() []spec.State {
	return []spec.State{&counterState{vals: make([]int, m.n)}}
}

func (m *counterMachine) Next(st spec.State) []spec.Succ {
	s := st.(*counterState)
	var out []spec.Succ
	if !s.counters.CanRequest(m.budget) {
		return nil
	}
	for i := 0; i < m.n; i++ {
		n := &counterState{vals: append([]int(nil), s.vals...), counters: s.counters}
		n.vals[i]++
		n.counters.Requests++
		out = append(out, spec.Succ{
			Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: i, Payload: "inc"},
			State: n,
		})
	}
	return out
}

func (m *counterMachine) Invariants() []spec.Invariant { return nil }

type counterProcess struct {
	env  vos.Env
	val  int
	skew bool // count by two after the second increment (a seeded defect)
}

func (p *counterProcess) Start(env vos.Env)   { p.env = env; p.val = 0 }
func (p *counterProcess) Receive(int, []byte) {}
func (p *counterProcess) Tick()               {}
func (p *counterProcess) ClientRequest(string) {
	p.val++
	if p.skew && p.val >= 2 {
		p.val++
	}
}
func (p *counterProcess) Observe() map[string]string {
	return map[string]string{"count": strconv.Itoa(p.val)}
}

func target(n int, skew bool, resource func(*engine.Cluster) error) *Target {
	return &Target{
		Machine: &counterMachine{n: n, budget: spec.Budget{MaxRequests: 5}},
		NewCluster: func(seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{Nodes: n}, func(id int) vos.Process {
				return &counterProcess{skew: skew}
			})
		},
		ResourceCheck: resource,
	}
}

func TestConformingPairPasses(t *testing.T) {
	rep, err := Run(target(2, false, nil), Options{Walks: 30, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("discrepancy on an aligned pair: %v", rep.Discrepancy)
	}
	if rep.Walks != 30 || rep.EventsChecked == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSkewDetectedWithEventPrefix(t *testing.T) {
	rep, err := Run(target(2, true, nil), Options{Walks: 30, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("skewed implementation not detected")
	}
	d := rep.Discrepancy
	if len(d.Step.DiffKeys) == 0 || d.Trace == nil {
		t.Fatalf("discrepancy lacks detail: %+v", d)
	}
	if d.Error() == "" {
		t.Error("empty discrepancy message")
	}
}

func TestResourceCheckRunsPerEvent(t *testing.T) {
	calls := 0
	rc := func(c *engine.Cluster) error {
		calls++
		if calls == 3 {
			return fmt.Errorf("leak detected")
		}
		return nil
	}
	rep, err := Run(target(2, false, rc), Options{Walks: 5, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("resource failure not reported")
	}
	if rep.Discrepancy.Step.Err == nil {
		t.Errorf("resource failure should surface as a step error: %+v", rep.Discrepancy)
	}
	if calls != 3 {
		t.Errorf("resource check ran %d times, want 3", calls)
	}
}

// TestResourceCheckEmitsOneVerdictPerWalk is the regression test for the
// spurious-verdict bug: replaying each step of a walk as its own sub-trace
// made the tracer emit a replay-layer conform verdict after every event of
// every walk, and the replay.steps counter disagreed with non-resource-check
// mode. Both modes must emit exactly one verdict per walk and count the same
// executed steps.
func TestResourceCheckEmitsOneVerdictPerWalk(t *testing.T) {
	run := func(resource bool) (verdicts int, steps int64, walks int) {
		var buf bytes.Buffer
		tracer := obs.NewTracer(&buf)
		reg := obs.NewRegistry()
		var rc func(*engine.Cluster) error
		if resource {
			rc = func(*engine.Cluster) error { return nil }
		}
		rep, err := Run(target(2, false, rc), Options{
			Walks: 10, WalkDepth: 5, Seed: 1, Metrics: reg, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("aligned pair diverged: %v", rep.Discrepancy)
		}
		if err := tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadEvents(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Layer == "replay" && (e.Kind == "conform" || e.Kind == "diverge") {
				verdicts++
			}
		}
		return verdicts, reg.Counter("replay.steps").Value(), rep.Walks
	}

	plainVerdicts, plainSteps, walks := run(false)
	rcVerdicts, rcSteps, _ := run(true)
	if plainVerdicts != walks {
		t.Errorf("plain mode: %d verdicts for %d walks", plainVerdicts, walks)
	}
	if rcVerdicts != walks {
		t.Errorf("resource-check mode emitted %d verdicts for %d walks, want exactly one per walk", rcVerdicts, walks)
	}
	if rcSteps != plainSteps {
		t.Errorf("replay.steps = %d in resource-check mode, %d without — modes must agree", rcSteps, plainSteps)
	}
}

// TestResourceCheckDivergenceStepIndex pins the step index of a resource
// failure to the walk's trace index (it used to be relative to a one-step
// sub-trace before being patched up by the caller).
func TestResourceCheckDivergenceStepIndex(t *testing.T) {
	calls := 0
	rc := func(c *engine.Cluster) error {
		calls++
		if calls == 4 {
			return fmt.Errorf("leak detected")
		}
		return nil
	}
	rep, err := Run(target(2, false, rc), Options{Walks: 5, WalkDepth: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("resource failure not reported")
	}
	if got := rep.Discrepancy.Step.Step; got != 3 {
		t.Errorf("discrepancy step = %d, want 3 (the 4th executed event)", got)
	}
	if ev := rep.Discrepancy.Step.Event; ev.Action != "Increment" {
		t.Errorf("discrepancy event = %v", ev)
	}
}

// TestParallelMatchesSerial is the determinism contract of the worker pool:
// for any worker count the report — walks, events checked, and the first
// discrepancy's walk index, seed, step, event, and diff keys — must be
// byte-identical to a serial run (Options.Workers documents why).
func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		skew bool
	}{
		{"first-discrepancy", true},
		{"clean-round", false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var base *Report
			for _, workers := range []int{1, 4, 8} {
				rep, err := Run(target(2, tc.skew, nil), Options{
					Walks: 60, WalkDepth: 5, Seed: 7, Workers: workers,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if tc.skew == rep.Passed() {
					t.Fatalf("workers=%d: passed=%v with skew=%v", workers, rep.Passed(), tc.skew)
				}
				if base == nil {
					base = rep
					continue
				}
				if rep.Walks != base.Walks || rep.EventsChecked != base.EventsChecked {
					t.Errorf("workers=%d: walks/events = %d/%d, serial = %d/%d",
						workers, rep.Walks, rep.EventsChecked, base.Walks, base.EventsChecked)
				}
				if tc.skew {
					d, bd := rep.Discrepancy, base.Discrepancy
					if d.Walk != bd.Walk || d.Seed != bd.Seed {
						t.Errorf("workers=%d: discrepancy at walk %d (seed %d), serial at walk %d (seed %d)",
							workers, d.Walk, d.Seed, bd.Walk, bd.Seed)
					}
					if d.Step.Step != bd.Step.Step || !d.Step.Event.Matches(bd.Step.Event) {
						t.Errorf("workers=%d: diverging step %d (%v), serial step %d (%v)",
							workers, d.Step.Step, d.Step.Event, bd.Step.Step, bd.Step.Event)
					}
					if fmt.Sprint(d.Step.DiffKeys) != fmt.Sprint(bd.Step.DiffKeys) {
						t.Errorf("workers=%d: diff keys %v, serial %v", workers, d.Step.DiffKeys, bd.Step.DiffKeys)
					}
				}
			}
		})
	}
}

func TestTimeoutStopsRound(t *testing.T) {
	rep, err := Run(target(2, false, nil), Options{Walks: 100000, WalkDepth: 5, Seed: 1, Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks >= 100000 {
		t.Errorf("timeout did not stop the round (%d walks)", rep.Walks)
	}
}
