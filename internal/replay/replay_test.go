package replay

import (
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/trace"
)

func TestConvertMapsEventFields(t *testing.T) {
	ev := trace.Event{Type: trace.EvDeliver, Action: "HandleX", Node: 2, Peer: 1, Index: 3}
	cmd, ok := Convert(ev)
	if !ok {
		t.Fatal("deliver should convert")
	}
	if cmd.Type != trace.EvDeliver || cmd.Node != 2 || cmd.Peer != 1 || cmd.Index != 3 {
		t.Errorf("cmd = %+v", cmd)
	}
	if _, ok := Convert(trace.Event{Type: trace.EvInternal}); ok {
		t.Error("internal events must not convert")
	}
	cmd, _ = Convert(trace.Event{Type: trace.EvTimeout, Node: 1, Payload: "election"})
	if cmd.Payload != "election" {
		t.Errorf("timeout payload = %q", cmd.Payload)
	}
}

func TestStepResultDescribe(t *testing.T) {
	sr := &StepResult{
		Step:     2,
		Event:    trace.Event{Type: trace.EvRequest, Action: "ClientRequest", Node: 0, Payload: "v1"},
		DiffKeys: []string{"commit[0]"},
		SpecVars: map[string]string{"commit[0]": "1"},
		ImplVars: map[string]string{"commit[0]": "0"},
	}
	out := sr.Describe()
	if !strings.Contains(out, "step 3") || !strings.Contains(out, "commit[0]") ||
		!strings.Contains(out, "spec=1") || !strings.Contains(out, "impl=0") {
		t.Errorf("describe = %q", out)
	}
	if !sr.Divergent() {
		t.Error("diff keys should mark divergence")
	}
	if (&StepResult{}).Divergent() {
		t.Error("empty step result must not be divergent")
	}
}
