package replay

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// countProc is a minimal process: each client request increments a counter.
type countProc struct {
	val int
}

func (p *countProc) Start(vos.Env)        { p.val = 0 }
func (p *countProc) Receive(int, []byte)  {}
func (p *countProc) Tick()                {}
func (p *countProc) ClientRequest(string) { p.val++ }
func (p *countProc) Observe() map[string]string {
	return map[string]string{"count": strconv.Itoa(p.val)}
}

func countCluster(t *testing.T, nodes int) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{Nodes: nodes}, func(id int) vos.Process { return &countProc{} })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFinalCompareAfterTrailingInternal is the regression test for the fast
// confirmation mode bug: when a trace ends in an EvInternal event, Convert
// returns ok=false and the loop used to `continue` past the final-state
// comparison entirely, silently confirming diverging replays. The final
// comparison must anchor on the last convertible step instead.
func TestFinalCompareAfterTrailingInternal(t *testing.T) {
	tr := &trace.Trace{
		System: "count",
		Steps: []trace.Step{
			{
				Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"},
				// The spec claims count[0]=2 after one increment; the
				// implementation holds 1, so the final compare must diverge.
				Vars: map[string]string{"count[0]": "2"},
			},
			{
				Event: trace.Event{Type: trace.EvInternal, Action: "SpecBookkeeping", Node: 0},
				Vars:  map[string]string{"count[0]": "2"},
			},
		},
	}
	res, err := Run(tr, countCluster(t, 1), Options{CompareEachStep: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("converted steps = %d, want 1", res.Steps)
	}
	if res.Divergence == nil {
		t.Fatal("fast-mode replay of an internal-terminated trace skipped the final-state comparison")
	}
	if res.Divergence.Step != 0 {
		t.Errorf("divergence step = %d, want 0 (the last convertible step)", res.Divergence.Step)
	}
}

// TestFinalCompareConformingTrailingInternal checks the conforming side: a
// trace ending in internal events whose last convertible step agrees with
// the implementation must still pass in fast mode.
func TestFinalCompareConformingTrailingInternal(t *testing.T) {
	tr := &trace.Trace{
		System: "count",
		Steps: []trace.Step{
			{
				Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"},
				Vars:  map[string]string{"count[0]": "1"},
			},
			{
				Event: trace.Event{Type: trace.EvInternal, Action: "SpecBookkeeping", Node: 0},
				Vars:  map[string]string{"count[0]": "1"},
			},
		},
	}
	res, err := Run(tr, countCluster(t, 1), Options{CompareEachStep: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence != nil {
		t.Fatalf("conforming trace diverged: %s", res.Divergence.Describe())
	}
}

// TestAfterStepHook verifies the per-step hook used by conformance resource
// checks: it runs once per executed event and its error surfaces as a
// divergence at the true trace step index.
func TestAfterStepHook(t *testing.T) {
	tr := &trace.Trace{
		System: "count",
		Steps: []trace.Step{
			{Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"}, Vars: map[string]string{"count[0]": "1"}},
			{Event: trace.Event{Type: trace.EvInternal, Action: "SpecBookkeeping", Node: 0}, Vars: map[string]string{"count[0]": "1"}},
			{Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"}, Vars: map[string]string{"count[0]": "2"}},
			{Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"}, Vars: map[string]string{"count[0]": "3"}},
		},
	}
	calls := 0
	res, err := Run(tr, countCluster(t, 1), Options{
		CompareEachStep: true,
		AfterStep: func(step int, c *engine.Cluster) error {
			calls++
			if calls == 2 {
				return fmt.Errorf("leak detected")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("AfterStep ran %d times, want 2 (executed events only)", calls)
	}
	if res.Divergence == nil || res.Divergence.Err == nil {
		t.Fatal("AfterStep error did not surface as a divergence")
	}
	if res.Divergence.Step != 2 {
		t.Errorf("divergence step = %d, want 2 (the trace index, not the executed-event index)", res.Divergence.Step)
	}
}

func TestConvertMapsEventFields(t *testing.T) {
	ev := trace.Event{Type: trace.EvDeliver, Action: "HandleX", Node: 2, Peer: 1, Index: 3}
	cmd, ok := Convert(ev)
	if !ok {
		t.Fatal("deliver should convert")
	}
	if cmd.Type != trace.EvDeliver || cmd.Node != 2 || cmd.Peer != 1 || cmd.Index != 3 {
		t.Errorf("cmd = %+v", cmd)
	}
	if _, ok := Convert(trace.Event{Type: trace.EvInternal}); ok {
		t.Error("internal events must not convert")
	}
	cmd, _ = Convert(trace.Event{Type: trace.EvTimeout, Node: 1, Payload: "election"})
	if cmd.Payload != "election" {
		t.Errorf("timeout payload = %q", cmd.Payload)
	}
}

func TestStepResultDescribe(t *testing.T) {
	sr := &StepResult{
		Step:     2,
		Event:    trace.Event{Type: trace.EvRequest, Action: "ClientRequest", Node: 0, Payload: "v1"},
		DiffKeys: []string{"commit[0]"},
		SpecVars: map[string]string{"commit[0]": "1"},
		ImplVars: map[string]string{"commit[0]": "0"},
	}
	out := sr.Describe()
	if !strings.Contains(out, "step 3") || !strings.Contains(out, "commit[0]") ||
		!strings.Contains(out, "spec=1") || !strings.Contains(out, "impl=0") {
		t.Errorf("describe = %q", out)
	}
	if !sr.Divergent() {
		t.Error("diff keys should mark divergence")
	}
	if (&StepResult{}).Divergent() {
		t.Error("empty step result must not be divergent")
	}
}
