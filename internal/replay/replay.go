// Package replay converts specification-level trace events into
// deterministic-execution commands and replays them against a running
// cluster — the mechanism behind both conformance checking (§3.2) and bug
// confirmation (§3.4 — "SandTable reproduces the bugs at the implementation
// level by replaying the event interleaving").
package replay

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Convert maps one trace event to an engine command. Message delivery and
// failure events convert automatically; timeout events carry their kind in
// Payload and resolve against the cluster's configured timeout table;
// client-request events carry their payload verbatim (the user-supplied
// request command of §3.2).
func Convert(ev trace.Event) (engine.Command, bool) {
	switch ev.Type {
	case trace.EvInternal:
		return engine.Command{}, false
	default:
		return engine.Command{
			Type:    ev.Type,
			Node:    ev.Node,
			Peer:    ev.Peer,
			Index:   ev.Index,
			Payload: ev.Payload,
		}, true
	}
}

// StepResult records the comparison outcome after one replayed event.
type StepResult struct {
	Step  int
	Event trace.Event
	// DiffKeys are the variables whose specification and implementation
	// values disagree after this event (nil when conforming).
	DiffKeys []string
	SpecVars map[string]string
	ImplVars map[string]string
	// Err is a command-execution failure (including implementation crashes
	// surfaced as *engine.CrashError).
	Err error
}

// Divergent reports whether the step exposed a discrepancy.
func (s *StepResult) Divergent() bool { return s.Err != nil || len(s.DiffKeys) > 0 }

// Describe renders the discrepancy for the report the user debugs from.
func (s *StepResult) Describe() string {
	if s.Err != nil {
		return fmt.Sprintf("step %d (%s): %v", s.Step+1, s.Event, s.Err)
	}
	out := fmt.Sprintf("step %d (%s): %d variable(s) diverge:", s.Step+1, s.Event, len(s.DiffKeys))
	for _, k := range s.DiffKeys {
		out += fmt.Sprintf("\n  %-14s spec=%s impl=%s", k, s.SpecVars[k], s.ImplVars[k])
	}
	return out
}

// Result is a full replay outcome.
type Result struct {
	Steps      int
	Divergence *StepResult // first divergent step, nil when fully conforming
	// Confirmed is set by ConfirmBug: the implementation reproduced every
	// specification state along the bug trace, so the bug is real (§3.4).
	Confirmed bool
}

// Options tunes a replay.
type Options struct {
	// CompareEachStep diffs spec vs impl variables after every event
	// (conformance mode). When false only command execution errors are
	// detected (fast confirmation mode still compares the final state).
	CompareEachStep bool
	// IgnoreVars excludes variable keys from comparison.
	IgnoreVars []string
	// Observe overrides how implementation variables are collected
	// (defaults to Cluster.ObserveAll).
	Observe func(*engine.Cluster) (map[string]string, error)
	// Tracer, when set, is installed on the cluster for the duration of
	// the replay (engine + vnet events) and additionally receives
	// replay-layer events: one "step" per converted event and a final
	// "conform" or "diverge" verdict with the diffing variables.
	Tracer *obs.Tracer
	// Metrics, when set, is installed on the cluster and receives
	// replay.steps / replay.divergences counters.
	Metrics *obs.Registry
	// AfterStep, when set, runs after every executed (convertible) event,
	// following the state comparison for that step. A returned error is
	// recorded as a divergence at the step's trace index. Conformance
	// checking uses this for per-event resource checks (e.g. the CRaft#6
	// buffer leak) without splitting the walk into sub-traces.
	AfterStep func(step int, c *engine.Cluster) error
}

// Run replays a trace against the cluster.
func Run(t *trace.Trace, c *engine.Cluster, opts Options) (*Result, error) {
	observe := opts.Observe
	if observe == nil {
		observe = func(c *engine.Cluster) (map[string]string, error) { return c.ObserveAll() }
	}
	if opts.Tracer != nil {
		c.SetTracer(opts.Tracer)
	}
	if opts.Metrics != nil {
		c.SetMetrics(opts.Metrics)
	}
	steps := opts.Metrics.Counter("replay.steps")
	divergences := opts.Metrics.Counter("replay.divergences")
	ignored := make(map[string]bool, len(opts.IgnoreVars))
	for _, k := range opts.IgnoreVars {
		ignored[k] = true
	}
	res := &Result{}
	diverge := func(sr *StepResult) {
		res.Divergence = sr
		divergences.Inc()
		if opts.Tracer != nil {
			detail := map[string]string{"step": strconv.Itoa(sr.Step + 1), "event": sr.Event.String()}
			if sr.Err != nil {
				detail["error"] = sr.Err.Error()
			}
			if len(sr.DiffKeys) > 0 {
				detail["diff_keys"] = strings.Join(sr.DiffKeys, ",")
			}
			opts.Tracer.Emit(obs.Event{Layer: "replay", Kind: "diverge", Node: sr.Event.Node, Detail: detail})
		}
	}
	// The final-state comparison of fast confirmation mode anchors on the
	// last *convertible* step: a trace may end in EvInternal events (spec
	// bookkeeping with no implementation command), and comparing only at the
	// literal last index would silently skip the compare for such traces.
	last := -1
	for i := range t.Steps {
		if _, ok := Convert(t.Steps[i].Event); ok {
			last = i
		}
	}
	for i, step := range t.Steps {
		cmd, ok := Convert(step.Event)
		if !ok {
			continue
		}
		res.Steps++
		steps.Inc()
		sr := &StepResult{Step: i, Event: step.Event}
		if err := c.Apply(cmd); err != nil {
			sr.Err = err
			diverge(sr)
			return res, nil
		}
		compare := opts.CompareEachStep || i == last
		if compare && step.Vars != nil {
			impl, err := observe(c)
			if err != nil {
				return nil, fmt.Errorf("replay: observe after step %d: %w", i+1, err)
			}
			diff := diffIntersection(step.Vars, impl, ignored)
			if len(diff) > 0 {
				sr.DiffKeys = diff
				sr.SpecVars = step.Vars
				sr.ImplVars = impl
				diverge(sr)
				return res, nil
			}
		}
		if opts.AfterStep != nil {
			if err := opts.AfterStep(i, c); err != nil {
				sr.Err = err
				diverge(sr)
				return res, nil
			}
		}
	}
	if opts.Tracer != nil {
		opts.Tracer.Emit(obs.Event{
			Layer: "replay", Kind: "conform", Node: -1,
			Detail: map[string]string{"steps": strconv.Itoa(res.Steps)},
		})
	}
	return res, nil
}

// ConfirmBug replays a violation trace and confirms the bug exists in the
// implementation: the replay must conform at every step, ending in the
// violating state. Any discrepancy means the specification does not match
// the implementation (a potential false alarm) and is reported instead.
func ConfirmBug(t *trace.Trace, c *engine.Cluster, opts Options) (*Result, error) {
	opts.CompareEachStep = true
	res, err := Run(t, c, opts)
	if err != nil {
		return nil, err
	}
	res.Confirmed = res.Divergence == nil
	return res, nil
}

// diffIntersection returns the keys present in both maps (minus ignored)
// whose values differ — SandTable compares the specification variables with
// their implementation counterparts (§3.2).
func diffIntersection(spec, impl map[string]string, ignored map[string]bool) []string {
	keys := trace.DiffVars(spec, impl)
	out := keys[:0]
	for _, k := range keys {
		if !ignored[k] {
			out = append(out, k)
		}
	}
	return out
}
