package engine

import (
	"fmt"
	"regexp"
	"strconv"
)

// Observe renders node i's state variables via the process's observation
// API (the paper's first state-retrieval method, §A.4). Crashed nodes
// report only their status.
func (c *Cluster) Observe(i int) (map[string]string, error) {
	if err := c.guard(i); err != nil {
		return nil, err
	}
	if !c.up[i] {
		return map[string]string{"status": "crashed"}, nil
	}
	vars := c.procs[i].Observe()
	if vars == nil {
		vars = make(map[string]string)
	}
	vars["status"] = "up"
	return vars, nil
}

// ObserveAll collects every node's variables under "var[i]" keys, plus the
// network environment (message counts per channel) which the engine manages
// itself and can compare directly (§3.2). Conformance checking calls this
// once per replayed event, so the key rendering uses the tables precomputed
// at boot instead of fmt.Sprintf.
func (c *Cluster) ObserveAll() (map[string]string, error) {
	out := make(map[string]string)
	for i := 0; i < c.cfg.Nodes; i++ {
		vars, err := c.Observe(i)
		if err != nil {
			return nil, err
		}
		sfx := c.nodeVarSuffix[i]
		for k, v := range vars {
			out[k+sfx] = v
		}
	}
	c.networkVars(out)
	return out, nil
}

// NetworkVars renders the proxy state: per-channel buffered message counts.
func (c *Cluster) NetworkVars() map[string]string {
	out := make(map[string]string, c.cfg.Nodes*(c.cfg.Nodes-1))
	c.networkVars(out)
	return out
}

func (c *Cluster) networkVars(out map[string]string) {
	for src := 0; src < c.cfg.Nodes; src++ {
		keys := c.netVarKeys[src]
		for dst := 0; dst < c.cfg.Nodes; dst++ {
			if src == dst {
				continue
			}
			out[keys[dst]] = strconv.Itoa(c.net.Len(src, dst))
		}
	}
}

// LogObserver extracts state variables from captured debug logs using
// user-defined regular expressions — the paper's second state-retrieval
// method (§A.1, §A.4), used when a system offers no query API. Each pattern
// must contain exactly one capture group; the last match in the log wins.
type LogObserver struct {
	patterns map[string]*regexp.Regexp
}

// NewLogObserver compiles the variable→pattern table.
func NewLogObserver(patterns map[string]string) (*LogObserver, error) {
	o := &LogObserver{patterns: make(map[string]*regexp.Regexp, len(patterns))}
	for name, p := range patterns {
		re, err := regexp.Compile(p)
		if err != nil {
			return nil, fmt.Errorf("log observer: pattern for %s: %w", name, err)
		}
		if re.NumSubexp() != 1 {
			return nil, fmt.Errorf("log observer: pattern for %s must have exactly one capture group", name)
		}
		o.patterns[name] = re
	}
	return o, nil
}

// Extract scans the lines and returns the last captured value per variable.
func (o *LogObserver) Extract(lines []string) map[string]string {
	out := make(map[string]string)
	for _, line := range lines {
		for name, re := range o.patterns {
			if m := re.FindStringSubmatch(line); m != nil {
				out[name] = m[1]
			}
		}
	}
	return out
}

// ObserveLogs applies a log observer to node i's captured log.
func (c *Cluster) ObserveLogs(i int, o *LogObserver) (map[string]string, error) {
	if err := c.guard(i); err != nil {
		return nil, err
	}
	return o.Extract(c.logs[i].Lines()), nil
}
