// Package engine is the implementation-level deterministic execution engine
// (§4.1 and Appendix A of the paper). It runs a cluster of node processes on
// a single machine with full control over every source of nondeterminism:
// message delivery order (via the vnet proxy), time (via per-node virtual
// clocks), failures (crash, restart, partition, UDP loss/duplication), and
// client requests.
//
// The engine executes three kinds of commands — network commands, node
// commands, and state commands — converted from specification-level trace
// events. Replaying the same command sequence always produces the same
// execution, which is what lets SandTable confirm specification-level bugs
// at the implementation level (§3.4) and compare the two levels during
// conformance checking (§3.2).
package engine

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"strconv"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Command is one deterministic-execution step, converted from a trace event.
type Command struct {
	Type    trace.EventType
	Node    int
	Peer    int
	Index   int
	Payload string // timeout kind for EvTimeout; request value for EvRequest
}

func (c Command) String() string {
	return trace.Event{Type: c.Type, Action: string(c.Type), Node: c.Node, Peer: c.Peer, Index: c.Index, Payload: c.Payload}.String()
}

// CostModel charges simulated wall-clock per operation, calibrated from the
// paper's §5.3 measurements of real implementation-level exploration (cluster
// initialisation sleeps, per-event model-checker waits, and per-system
// synchronisation sleeps). The engine also measures true execution time; the
// experiments report both (see DESIGN.md substitutions).
type CostModel struct {
	ClusterInit time.Duration // cluster boot (paper: 2–18 s after FlyMC-style snapshotting)
	PerEvent    time.Duration // enforced inter-event wait (paper: e.g. 300 ms)
	PerTimeout  time.Duration // extra sleep to fire a timer in the real system
	PerRequest  time.Duration // client round trip
	PerRestart  time.Duration // node restart
}

// Cost of a single command under the model.
func (m CostModel) Cost(c Command) time.Duration {
	d := m.PerEvent
	switch c.Type {
	case trace.EvTimeout:
		d += m.PerTimeout
	case trace.EvRequest:
		d += m.PerRequest
	case trace.EvRestart:
		d += m.PerRestart
	}
	return d
}

// Config describes a cluster under test.
type Config struct {
	Nodes     int
	Semantics vnet.Semantics
	Seed      int64
	// Timeouts maps a timeout kind (the payload of EvTimeout events) to the
	// virtual-clock advance that fires it. The paper requires users to
	// provide timeout values when converting trace events (§3.2).
	Timeouts map[string]time.Duration
	Cost     CostModel
	// Buffered gives every node a buffered store (vos.NewBufferedStore):
	// Persist writes stay volatile until the process calls Env.Sync, so
	// dirty-crash commands (trace.EvCrashDirty) can lose or tear the
	// unsynced tail. False keeps the legacy auto-sync stores, under which
	// dirty crashes degenerate to clean ones.
	Buffered bool
}

// PanicPolicy configures graceful degradation for node panics. With Tolerate
// unset (the default) a panic surfaces as a *CrashError from Apply, aborting
// the run. With Tolerate set, the engine converts the panic into an injected
// crash — applying Mode to the node's store — and, while the node's
// auto-restart budget lasts, immediately restarts it from durable state
// after charging an exponentially growing backoff to the simulated cost.
type PanicPolicy struct {
	// Tolerate turns panics into injected crash(+restart) instead of errors.
	Tolerate bool
	// MaxAutoRestarts bounds automatic restarts per node; once exhausted the
	// node stays down (the run still completes).
	MaxAutoRestarts int
	// Mode is the vos.CrashMode applied to the panicking node's store
	// (empty = vos.CrashClean, preserving all buffered writes).
	Mode vos.CrashMode
	// Backoff is the base restart delay; restart k of a node charges
	// Backoff<<k of simulated time. Zero means no backoff accounting.
	Backoff time.Duration
}

// CrashError reports that a node process panicked while handling an event —
// the analogue of the unhandled exceptions SandTable's conformance checking
// catches as by-product bugs (e.g. PySyncObj#1, RaftOS#3, Xraft#2).
type CrashError struct {
	Node  int
	Cmd   Command
	Panic any
	Stack string
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("node %d crashed handling %s: %v", e.Node, e.Cmd, e.Panic)
}

// Cluster is a running deterministic cluster.
type Cluster struct {
	cfg     Config
	factory func(id int) vos.Process

	net    *vnet.Network
	clocks []*vos.Clock
	stores []*vos.Store
	logs   []*vos.LogBuffer
	rngs   []*rand.Rand
	procs  []vos.Process
	up     []bool

	partitions map[[2]int]bool

	// faultRng is the dedicated deterministic stream for fault-injection
	// choices (torn-batch cut points). It is separate from the per-node
	// rngs so adding faults never perturbs node behaviour, and it is a pure
	// function of the seed so two runs with the same seed pick identical
	// cuts — the byte-identical durable-state guarantee confirm relies on.
	faultRng *rand.Rand

	panicPolicy  PanicPolicy
	autoRestarts []int

	events  int
	simCost time.Duration
	history []Command

	// netVarKeys / nodeVarSuffix are the observation key tables, rendered
	// once at boot so ObserveAll never calls fmt.Sprintf on its per-step
	// hot path: netVarKeys[src][dst] = "net[src->dst]",
	// nodeVarSuffix[i] = "[i]".
	netVarKeys    [][]string
	nodeVarSuffix []string

	tracer  *obs.Tracer // structured event sink (nil-safe)
	metrics *obs.Registry
	cmds    *obs.Counter // commands executed, mirrored into metrics
}

// NewCluster boots a cluster: every node is constructed and started.
func NewCluster(cfg Config, factory func(id int) vos.Process) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("engine: need at least one node")
	}
	c := &Cluster{
		cfg:        cfg,
		factory:    factory,
		net:        vnet.New(cfg.Nodes, cfg.Semantics),
		clocks:     make([]*vos.Clock, cfg.Nodes),
		stores:     make([]*vos.Store, cfg.Nodes),
		logs:       make([]*vos.LogBuffer, cfg.Nodes),
		rngs:       make([]*rand.Rand, cfg.Nodes),
		procs:      make([]vos.Process, cfg.Nodes),
		up:         make([]bool, cfg.Nodes),
		partitions: make(map[[2]int]bool),
		// 0x5ab1e mixes the seed so the fault stream differs from every
		// per-node stream (seeded cfg.Seed + i*7919).
		faultRng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5ab1e)),
		autoRestarts: make([]int, cfg.Nodes),
	}
	c.simCost += cfg.Cost.ClusterInit
	c.netVarKeys = make([][]string, cfg.Nodes)
	c.nodeVarSuffix = make([]string, cfg.Nodes)
	for src := 0; src < cfg.Nodes; src++ {
		c.nodeVarSuffix[src] = "[" + strconv.Itoa(src) + "]"
		c.netVarKeys[src] = make([]string, cfg.Nodes)
		for dst := 0; dst < cfg.Nodes; dst++ {
			if src != dst {
				c.netVarKeys[src][dst] = fmt.Sprintf("net[%d->%d]", src, dst)
			}
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.clocks[i] = vos.NewClock()
		if cfg.Buffered {
			c.stores[i] = vos.NewBufferedStore()
		} else {
			c.stores[i] = vos.NewStore()
		}
		c.logs[i] = &vos.LogBuffer{}
		c.rngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		if err := c.startNode(i); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) startNode(i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CrashError{Node: i, Panic: r, Stack: string(debug.Stack())}
		}
	}()
	p := c.factory(i)
	p.Start(&nodeEnv{c: c, id: i})
	c.procs[i] = p
	c.up[i] = true
	return nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.cfg.Nodes }

// Up reports whether node i is running.
func (c *Cluster) Up(i int) bool { return c.up[i] }

// Events returns the number of commands executed.
func (c *Cluster) Events() int { return c.events }

// SimulatedCost returns the accumulated cost-model time.
func (c *Cluster) SimulatedCost() time.Duration { return c.simCost }

// Network exposes the proxy for assertions and conformance.
func (c *Cluster) Network() *vnet.Network { return c.net }

// Logs returns node i's captured log lines.
func (c *Cluster) Logs(i int) []string { return c.logs[i].Lines() }

// History returns the executed command sequence.
func (c *Cluster) History() []Command { return append([]Command(nil), c.history...) }

// SetTracer installs a structured event sink on the cluster and its network
// proxy: every applied command, virtual-clock advance, node crash/restart,
// and network send/deliver/drop is emitted as one JSONL event, leaving a
// replayable, diffable record of what the implementation run actually did.
// A nil tracer disables tracing.
func (c *Cluster) SetTracer(t *obs.Tracer) {
	c.tracer = t
	c.net.SetTracer(t)
}

// SetMetrics mirrors cluster and network counters into the registry
// (engine.commands plus the vnet.* family). A nil registry uninstalls.
func (c *Cluster) SetMetrics(reg *obs.Registry) {
	c.metrics = reg
	c.cmds = reg.Counter("engine.commands")
	c.net.SetMetrics(reg)
}

// Process returns the running process for node i (nil when crashed); used
// by system-specific observers.
func (c *Cluster) Process(i int) vos.Process {
	if !c.up[i] {
		return nil
	}
	return c.procs[i]
}

// Apply executes one command deterministically. A returned *CrashError
// means the node implementation itself failed (a by-product bug); other
// errors mean the command was not applicable (e.g. delivering from an empty
// channel), which during conformance checking indicates a spec/impl
// discrepancy.
func (c *Cluster) Apply(cmd Command) error {
	c.events++
	c.cmds.Inc()
	c.simCost += c.cfg.Cost.Cost(cmd)
	c.history = append(c.history, cmd)
	if c.tracer != nil {
		detail := map[string]string{"event": strconv.Itoa(c.events)}
		if cmd.Payload != "" {
			detail["payload"] = cmd.Payload
		}
		c.tracer.Emit(obs.Event{
			Layer: "engine", Kind: string(cmd.Type),
			Node: cmd.Node, Peer: cmd.Peer, Index: cmd.Index,
			Detail: detail,
		})
	}

	switch cmd.Type {
	case trace.EvDeliver:
		return c.deliver(cmd)
	case trace.EvTimeout:
		return c.timeout(cmd)
	case trace.EvRequest:
		return c.request(cmd)
	case trace.EvCrash:
		return c.crash(cmd.Node)
	case trace.EvCrashDirty:
		return c.crashDirty(cmd)
	case trace.EvRestart:
		return c.restart(cmd.Node)
	case trace.EvPartition:
		return c.partition(cmd.Node, cmd.Peer)
	case trace.EvRecover:
		return c.heal(cmd.Node, cmd.Peer)
	case trace.EvDrop:
		return c.net.Drop(cmd.Peer, cmd.Node, cmd.Index)
	case trace.EvDuplicate:
		return c.net.Duplicate(cmd.Peer, cmd.Node, cmd.Index)
	case trace.EvInternal:
		return nil
	default:
		return fmt.Errorf("engine: unknown command type %q", cmd.Type)
	}
}

func (c *Cluster) guard(i int) error {
	if i < 0 || i >= c.cfg.Nodes {
		return fmt.Errorf("engine: no node %d", i)
	}
	return nil
}

func (c *Cluster) deliver(cmd Command) error {
	if err := c.guard(cmd.Node); err != nil {
		return err
	}
	if err := c.guard(cmd.Peer); err != nil {
		return err
	}
	if !c.up[cmd.Node] {
		return fmt.Errorf("engine: deliver to crashed node %d", cmd.Node)
	}
	f, err := c.net.Deliver(cmd.Peer, cmd.Node, cmd.Index)
	if err != nil {
		return err
	}
	payloads, rest := vnet.DecodeStream(f.Payload)
	if len(rest) != 0 || len(payloads) != 1 {
		return fmt.Errorf("engine: malformed frame %d->%d", cmd.Peer, cmd.Node)
	}
	return c.invoke(cmd, cmd.Node, func(p vos.Process) {
		p.Receive(cmd.Peer, payloads[0])
	})
}

func (c *Cluster) timeout(cmd Command) error {
	if err := c.guard(cmd.Node); err != nil {
		return err
	}
	if !c.up[cmd.Node] {
		return fmt.Errorf("engine: timeout on crashed node %d", cmd.Node)
	}
	d, ok := c.cfg.Timeouts[cmd.Payload]
	if !ok {
		return fmt.Errorf("engine: no timeout duration configured for kind %q", cmd.Payload)
	}
	c.clocks[cmd.Node].Advance(d)
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{
			Layer: "engine", Kind: "clock-advance", Node: cmd.Node,
			Detail: map[string]string{"kind": cmd.Payload, "advance": d.String()},
		})
	}
	return c.invoke(cmd, cmd.Node, func(p vos.Process) { p.Tick() })
}

func (c *Cluster) request(cmd Command) error {
	if err := c.guard(cmd.Node); err != nil {
		return err
	}
	if !c.up[cmd.Node] {
		return fmt.Errorf("engine: request to crashed node %d", cmd.Node)
	}
	return c.invoke(cmd, cmd.Node, func(p vos.Process) { p.ClientRequest(cmd.Payload) })
}

func (c *Cluster) crash(node int) error {
	if err := c.guard(node); err != nil {
		return err
	}
	if !c.up[node] {
		return fmt.Errorf("engine: node %d already crashed", node)
	}
	// Legacy atomic-durability semantics: everything the node persisted
	// survives, so a buffered journal is flushed before the lights go out.
	c.stores[node].Crash(vos.CrashClean, 0)
	c.downNode(node)
	return nil
}

// crashDirty crashes a node under the crash-consistency fault model: the
// command payload selects the vos.CrashMode deciding the fate of the node's
// unsynced write journal. Torn crashes draw the cut point from the
// deterministic fault stream, so the same seed always persists the same
// prefix.
func (c *Cluster) crashDirty(cmd Command) error {
	node := cmd.Node
	if err := c.guard(node); err != nil {
		return err
	}
	if !c.up[node] {
		return fmt.Errorf("engine: node %d already crashed", node)
	}
	mode := vos.CrashMode(cmd.Payload)
	if mode == "" {
		mode = vos.CrashLoseUnsynced
	}
	switch mode {
	case vos.CrashClean, vos.CrashLoseUnsynced, vos.CrashTorn:
	default:
		return fmt.Errorf("engine: unknown crash mode %q", cmd.Payload)
	}
	unsynced := c.stores[node].Unsynced()
	cut := 0
	if mode == vos.CrashTorn {
		cut = c.faultRng.Intn(unsynced + 1)
	}
	c.stores[node].Crash(mode, cut)
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{
			Layer: "engine", Kind: "dirty-crash", Node: node,
			Detail: map[string]string{
				"mode":     string(mode),
				"unsynced": strconv.Itoa(unsynced),
				"cut":      strconv.Itoa(cut),
			},
		})
	}
	c.metrics.Counter("engine.faults.dirty_crashes").Inc()
	c.metrics.Counter("engine.faults.crash_mode." + string(mode)).Inc()
	c.downNode(node)
	return nil
}

// downNode takes a running node off the cluster with SIGQUIT semantics: no
// cleanup runs; volatile state is lost, durable store and captured logs
// survive; all connections break.
func (c *Cluster) downNode(node int) {
	c.procs[node] = nil
	c.up[node] = false
	c.net.CrashNode(node)
}

func (c *Cluster) restart(node int) error {
	if err := c.guard(node); err != nil {
		return err
	}
	if c.up[node] {
		return fmt.Errorf("engine: node %d is already running", node)
	}
	c.net.RestartNode(node, func(a, b int) bool { return c.partitioned(a, b) })
	return c.startNode(node)
}

func (c *Cluster) partition(a, b int) error {
	if err := c.guard(a); err != nil {
		return err
	}
	if err := c.guard(b); err != nil {
		return err
	}
	c.partitions[pairKey(a, b)] = true
	c.net.Partition(a, b)
	return nil
}

func (c *Cluster) heal(a, b int) error {
	if err := c.guard(a); err != nil {
		return err
	}
	if err := c.guard(b); err != nil {
		return err
	}
	delete(c.partitions, pairKey(a, b))
	// Do not reconnect pairs where one side is down.
	if c.up[a] && c.up[b] {
		c.net.Heal(a, b)
	}
	return nil
}

func (c *Cluster) partitioned(a, b int) bool { return c.partitions[pairKey(a, b)] }

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// invoke runs fn on the node's process, converting panics into CrashError
// and crashing the node (matching a real unhandled exception). Under a
// tolerant PanicPolicy the error is swallowed: the panic becomes an injected
// crash (with the policy's CrashMode applied to the store) followed, budget
// permitting, by an automatic restart from durable state.
func (c *Cluster) invoke(cmd Command, node int, fn func(vos.Process)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CrashError{Node: node, Cmd: cmd, Panic: r, Stack: string(debug.Stack())}
			if c.tracer != nil {
				c.tracer.Emit(obs.Event{
					Layer: "engine", Kind: "node-panic", Node: node,
					Detail: map[string]string{"panic": fmt.Sprint(r), "cmd": cmd.String()},
				})
			}
			c.metrics.Counter("engine.node_panics").Inc()
			mode := vos.CrashClean
			if c.panicPolicy.Tolerate && c.panicPolicy.Mode != "" {
				mode = c.panicPolicy.Mode
			}
			cut := 0
			if mode == vos.CrashTorn {
				cut = c.faultRng.Intn(c.stores[node].Unsynced() + 1)
			}
			c.stores[node].Crash(mode, cut)
			c.downNode(node)
			if c.panicPolicy.Tolerate {
				err = c.autoRestart(node, mode)
			}
		}
	}()
	fn(c.procs[node])
	return nil
}

// autoRestart implements the tolerant half of PanicPolicy: record the
// injected fault, and bring the node back from durable state while its
// restart budget lasts, charging an exponentially growing backoff.
func (c *Cluster) autoRestart(node int, mode vos.CrashMode) error {
	c.metrics.Counter("engine.faults.panics_tolerated").Inc()
	c.metrics.Counter("engine.faults.crash_mode." + string(mode)).Inc()
	attempt := c.autoRestarts[node]
	if attempt >= c.panicPolicy.MaxAutoRestarts {
		if c.tracer != nil {
			c.tracer.Emit(obs.Event{
				Layer: "engine", Kind: "auto-restart-exhausted", Node: node,
				Detail: map[string]string{"attempts": strconv.Itoa(attempt)},
			})
		}
		return nil // node stays down; the run continues
	}
	c.autoRestarts[node] = attempt + 1
	if c.panicPolicy.Backoff > 0 {
		backoff := c.panicPolicy.Backoff << uint(attempt)
		c.simCost += backoff
		c.clocks[node].Advance(backoff)
	}
	c.metrics.Counter("engine.faults.auto_restarts").Inc()
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{
			Layer: "engine", Kind: "auto-restart", Node: node,
			Detail: map[string]string{"attempt": strconv.Itoa(attempt + 1), "mode": string(mode)},
		})
	}
	return c.restart(node)
}

// SetPanicPolicy installs the graceful-degradation policy for node panics.
// The zero value restores the default fail-fast behaviour.
func (c *Cluster) SetPanicPolicy(p PanicPolicy) { c.panicPolicy = p }

// DumpDurable renders every node's crash-durable store contents as one
// canonical byte string (per-node sections in node order). Byte-for-byte
// equality across two runs proves they produced the identical persistence
// outcome — the confirmation check for dirty-crash determinism.
func (c *Cluster) DumpDurable() []byte {
	var b []byte
	for i, s := range c.stores {
		b = append(b, fmt.Sprintf("-- node %d --\n", i)...)
		b = append(b, s.DumpDurable()...)
	}
	return b
}

// nodeEnv implements vos.Env for one node.
type nodeEnv struct {
	c  *Cluster
	id int
}

func (e *nodeEnv) ID() int          { return e.id }
func (e *nodeEnv) N() int           { return e.c.cfg.Nodes }
func (e *nodeEnv) Now() time.Time   { return e.c.clocks[e.id].Now() }
func (e *nodeEnv) Rand() *rand.Rand { return e.c.rngs[e.id] }
func (e *nodeEnv) Logf(f string, a ...any) {
	e.c.logs[e.id].Append(f, a...)
}

func (e *nodeEnv) Send(to int, msg []byte) {
	if to < 0 || to >= e.c.cfg.Nodes || to == e.id {
		return
	}
	// Frame the payload the way the paper's interceptor marks message
	// boundaries before handing the stream to the proxy.
	e.c.net.Send(e.id, to, vnet.Encode(msg))
}

func (e *nodeEnv) Connected(to int) bool {
	if to < 0 || to >= e.c.cfg.Nodes || to == e.id {
		return false
	}
	return e.c.net.Connected(e.id, to)
}

func (e *nodeEnv) Persist(key string, value []byte) { e.c.stores[e.id].Persist(key, value) }
func (e *nodeEnv) Load(key string) ([]byte, bool)   { return e.c.stores[e.id].Load(key) }
func (e *nodeEnv) Sync() {
	e.c.metrics.Counter("engine.syncs").Inc()
	e.c.stores[e.id].Sync()
}
