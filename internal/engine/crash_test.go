package engine

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// newBufferedCluster builds a cluster whose stores buffer writes until an
// explicit Sync — the crash-consistency fault model's substrate. pingNode
// never calls Sync, so all its persisted state rides in the journal.
func newBufferedCluster(t *testing.T, nodes int, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Nodes:     nodes,
		Semantics: vnet.TCP,
		Seed:      seed,
		Timeouts:  map[string]time.Duration{"election": 200 * time.Millisecond},
		Buffered:  true,
	}, func(id int) vos.Process { return &pingNode{} })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDirtyCrashLosesUnsyncedWrites(t *testing.T) {
	c := newBufferedCluster(t, 2, 1)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	// pings=1 is journalled but unsynced; a dirty crash discards it.
	apply(t, c, Command{Type: trace.EvCrashDirty, Node: 1})
	if c.Up(1) {
		t.Fatal("node should be down")
	}
	apply(t, c, Command{Type: trace.EvRestart, Node: 1})
	vars, _ := c.Observe(1)
	if vars["pings"] != "0" {
		t.Errorf("pings = %s, want 0 (unsynced write must be lost)", vars["pings"])
	}
	if c.Process(1).(*pingNode).restored {
		t.Error("restart found durable state that was never synced")
	}
}

func TestCleanCrashOnBufferedStoreKeepsWrites(t *testing.T) {
	c := newBufferedCluster(t, 2, 1)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	// Legacy EvCrash models an atomic-persistence crash: the journal is
	// flushed, preserving pre-existing (pre-fault-model) semantics.
	apply(t, c, Command{Type: trace.EvCrash, Node: 1})
	apply(t, c, Command{Type: trace.EvRestart, Node: 1})
	vars, _ := c.Observe(1)
	if vars["pings"] != "1" {
		t.Errorf("pings = %s, want 1 (clean crash flushes the journal)", vars["pings"])
	}
}

func TestDirtyCrashUnknownModeRejected(t *testing.T) {
	c := newBufferedCluster(t, 2, 1)
	if err := c.Apply(Command{Type: trace.EvCrashDirty, Node: 1, Payload: "fsync-maybe"}); err == nil {
		t.Error("unknown crash mode should be rejected")
	}
	if !c.Up(1) {
		t.Error("rejected command must not crash the node")
	}
}

// tornScenario queues three unsynced writes on node 1 and torn-crashes it.
func tornScenario(t *testing.T, c *Cluster) {
	t.Helper()
	for i := 0; i < 3; i++ {
		apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
		apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	}
	apply(t, c, Command{Type: trace.EvCrashDirty, Node: 1, Payload: string(vos.CrashTorn)})
}

func TestTornCrashDeterministicAcrossRuns(t *testing.T) {
	a := newBufferedCluster(t, 2, 7)
	b := newBufferedCluster(t, 2, 7)
	tornScenario(t, a)
	tornScenario(t, b)
	// Same seed, same fault stream, same torn cut: the durable stores must
	// be byte-identical — the acceptance check for replay determinism.
	if !bytes.Equal(a.DumpDurable(), b.DumpDurable()) {
		t.Fatalf("same-seed torn crashes diverged:\n%s\nvs\n%s", a.DumpDurable(), b.DumpDurable())
	}
}

func TestPanicToleratedBecomesCrashRestart(t *testing.T) {
	c := newBufferedCluster(t, 2, 1)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	c.SetPanicPolicy(PanicPolicy{
		Tolerate:        true,
		MaxAutoRestarts: 1,
		Mode:            vos.CrashLoseUnsynced,
		Backoff:         10 * time.Millisecond,
	})
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	before := c.SimulatedCost()

	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "boom"})
	if err := c.Apply(Command{Type: trace.EvDeliver, Node: 1, Peer: 0}); err != nil {
		t.Fatalf("tolerated panic returned error: %v", err)
	}
	if !c.Up(1) {
		t.Fatal("node should have been auto-restarted")
	}
	// The injected lose-unsynced crash discarded the journalled pings=1.
	vars, _ := c.Observe(1)
	if vars["pings"] != "0" {
		t.Errorf("pings = %s, want 0 after lose-unsynced panic crash", vars["pings"])
	}
	if c.SimulatedCost() <= before {
		t.Error("auto-restart backoff should charge simulated cost")
	}
	if got := reg.Counter("engine.faults.panics_tolerated").Value(); got != 1 {
		t.Errorf("panics_tolerated = %d, want 1", got)
	}
	if got := reg.Counter("engine.faults.auto_restarts").Value(); got != 1 {
		t.Errorf("auto_restarts = %d, want 1", got)
	}

	// Second panic exhausts the restart budget: still no error, node down.
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "boom"})
	if err := c.Apply(Command{Type: trace.EvDeliver, Node: 1, Peer: 0}); err != nil {
		t.Fatalf("exhausted policy returned error: %v", err)
	}
	if c.Up(1) {
		t.Error("restart budget exhausted: node must stay down")
	}
}

// TestPanicSeversConnectionsAndRestartRecovers pins the fail-fast path with
// the policy off: the panic surfaces as CrashError, the node's connections
// are severed like any crash, and an explicit EvRestart recovers it from
// the durable store.
func TestPanicSeversConnectionsAndRestartRecovers(t *testing.T) {
	c := newTestCluster(t, 3) // unbuffered: Persist is immediately durable
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})

	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "boom"})
	err := c.Apply(Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CrashError", err)
	}
	for _, other := range []int{0, 2} {
		if c.Network().Connected(1, other) || c.Network().Connected(other, 1) {
			t.Errorf("connections to node %d should be severed after panic", other)
		}
	}

	apply(t, c, Command{Type: trace.EvRestart, Node: 1})
	vars, _ := c.Observe(1)
	if vars["pings"] != "1" {
		t.Errorf("restored pings = %s, want 1 (durable before panic)", vars["pings"])
	}
	if !c.Process(1).(*pingNode).restored {
		t.Error("restart should load the durable store")
	}
	if !c.Network().Connected(1, 0) {
		t.Error("restart should reconnect the node")
	}
}
