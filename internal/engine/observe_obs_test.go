package engine

import (
	"bytes"
	"testing"

	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// TestClusterTracerRecordsRun drives a small deterministic run with a
// tracer installed and checks that the JSONL record contains the engine
// steps, the vnet send/deliver flow, the clock advance, and the crash —
// i.e. a replayable record of what the implementation actually did.
func TestClusterTracerRecordsRun(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	c := newTestCluster(t, 2)
	c.SetTracer(tr)

	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	apply(t, c, Command{Type: trace.EvTimeout, Node: 0, Payload: "election"})
	apply(t, c, Command{Type: trace.EvCrash, Node: 1})

	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]map[string]int) // layer -> kind -> count
	for _, e := range evs {
		if kinds[e.Layer] == nil {
			kinds[e.Layer] = make(map[string]int)
		}
		kinds[e.Layer][e.Kind]++
	}
	for _, want := range []struct{ layer, kind string }{
		{"engine", string(trace.EvRequest)},
		{"engine", string(trace.EvDeliver)},
		{"engine", string(trace.EvTimeout)},
		{"engine", string(trace.EvCrash)},
		{"engine", "clock-advance"},
		{"vnet", "send"},
		{"vnet", "deliver"},
		{"vnet", "crash-node"},
	} {
		if kinds[want.layer][want.kind] == 0 {
			t.Errorf("no %s/%s event in trace (got %v)", want.layer, want.kind, kinds)
		}
	}
	// The ping triggers a pong reply: two sends, one deliver.
	if kinds["vnet"]["send"] != 2 || kinds["vnet"]["deliver"] != 1 {
		t.Errorf("vnet flow = %v, want 2 sends / 1 deliver", kinds["vnet"])
	}
}

// TestClusterMetricsMirror checks that engine and vnet counters appear in a
// registry snapshot and agree with the plain vnet.Stats copy.
func TestClusterMetricsMirror(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, 2)
	c.SetMetrics(reg)

	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})

	snap := reg.Snapshot()
	stats := c.Network().Stats()
	// The mirror was installed after boot, so it counts from zero exactly
	// like the plain stats (both saw the same two commands).
	if snap["vnet.sent"].(int64) != int64(stats.Sent) {
		t.Errorf("vnet.sent = %v, stats.Sent = %d", snap["vnet.sent"], stats.Sent)
	}
	if snap["vnet.delivered"].(int64) != int64(stats.Delivered) {
		t.Errorf("vnet.delivered = %v, stats.Delivered = %d", snap["vnet.delivered"], stats.Delivered)
	}
	if snap["vnet.buffered"].(int64) != int64(c.Network().TotalBuffered()) {
		t.Errorf("vnet.buffered = %v, want %d", snap["vnet.buffered"], c.Network().TotalBuffered())
	}
	if snap["engine.commands"].(int64) != int64(c.Events()) {
		t.Errorf("engine.commands = %v, want %d", snap["engine.commands"], c.Events())
	}
}

// TestObserveAllUsesPrecomputedKeys checks the hot-path key rendering:
// ObserveAll and NetworkVars must produce exactly the fmt.Sprintf-shaped
// keys they produced before the key table was precomputed.
func TestObserveAllUsesPrecomputedKeys(t *testing.T) {
	c := newTestCluster(t, 3)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	all, err := c.ObserveAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"net[0->1]", "net[0->2]", "net[1->0]", "net[1->2]", "net[2->0]", "net[2->1]",
		"pings[0]", "pings[1]", "pings[2]", "status[0]"} {
		if _, ok := all[key]; !ok {
			t.Errorf("ObserveAll missing key %q", key)
		}
	}
	if all["net[0->1]"] != "1" || all["net[0->2]"] != "1" {
		t.Errorf("request fan-out not visible: net[0->1]=%s net[0->2]=%s", all["net[0->1]"], all["net[0->2]"])
	}
	nv := c.NetworkVars()
	if len(nv) != 6 {
		t.Errorf("NetworkVars has %d keys, want 6", len(nv))
	}
}

// TestLogObserverExtractEdgeCases covers the Extract contract: variables
// with no matching line are absent (not empty), multiple matches on one
// line take that pattern's first submatch per line scan, and across lines
// the last match wins.
func TestLogObserverExtractEdgeCases(t *testing.T) {
	o, err := NewLogObserver(map[string]string{
		"term":   `term=(\d+)`,
		"leader": `leader=(\w+)`,
		"absent": `never-logged=(\d+)`,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No match at all: the key must be absent from the result map.
	out := o.Extract([]string{"nothing to see here"})
	if len(out) != 0 {
		t.Fatalf("expected empty extraction, got %v", out)
	}

	// Multiple matches on one line: FindStringSubmatch takes the leftmost.
	out = o.Extract([]string{"term=3 then later term=7"})
	if out["term"] != "3" {
		t.Errorf("leftmost match on one line: term = %q, want 3", out["term"])
	}

	// Across lines the last matching line wins (observation reads the most
	// recent state the implementation logged).
	out = o.Extract([]string{
		"term=1 leader=none",
		"irrelevant line",
		"term=4",
		"leader=n2",
	})
	if out["term"] != "4" {
		t.Errorf("last-match-wins: term = %q, want 4", out["term"])
	}
	if out["leader"] != "n2" {
		t.Errorf("last-match-wins: leader = %q, want n2", out["leader"])
	}
	if _, ok := out["absent"]; ok {
		t.Error("absent variable must not appear")
	}

	// Empty input extracts nothing.
	if got := o.Extract(nil); len(got) != 0 {
		t.Errorf("nil lines extracted %v", got)
	}
}
