package engine

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// pingNode is a minimal deterministic process used to exercise the engine:
// it counts received pings, replies with pongs, persists its counter, arms
// an election-style deadline, and can be told to panic.
type pingNode struct {
	env      vos.Env
	pings    int
	pongs    int
	ticks    int
	deadline time.Time
	restored bool
}

func (p *pingNode) Start(env vos.Env) {
	p.env = env
	if v, ok := env.Load("pings"); ok {
		p.pings, _ = strconv.Atoi(string(v))
		p.restored = true
	}
	p.deadline = env.Now().Add(100 * time.Millisecond)
	env.Logf("started node=%d pings=%d", env.ID(), p.pings)
}

func (p *pingNode) Receive(from int, msg []byte) {
	switch string(msg) {
	case "ping":
		p.pings++
		p.env.Persist("pings", []byte(strconv.Itoa(p.pings)))
		p.env.Send(from, []byte("pong"))
		p.env.Logf("got ping total=%d", p.pings)
	case "pong":
		p.pongs++
	case "boom":
		panic("unhandled exception in message handler")
	}
}

func (p *pingNode) Tick() {
	if p.env.Now().After(p.deadline) {
		p.ticks++
		p.deadline = p.env.Now().Add(100 * time.Millisecond)
		p.env.Logf("timer fired ticks=%d", p.ticks)
	}
}

func (p *pingNode) ClientRequest(payload string) {
	for i := 0; i < p.env.N(); i++ {
		if i != p.env.ID() {
			p.env.Send(i, []byte(payload))
		}
	}
}

func (p *pingNode) Observe() map[string]string {
	return map[string]string{
		"pings": strconv.Itoa(p.pings),
		"pongs": strconv.Itoa(p.pongs),
		"ticks": strconv.Itoa(p.ticks),
	}
}

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Nodes:     nodes,
		Semantics: vnet.TCP,
		Seed:      1,
		Timeouts:  map[string]time.Duration{"election": 200 * time.Millisecond},
	}, func(id int) vos.Process { return &pingNode{} })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *Cluster, cmd Command) {
	t.Helper()
	if err := c.Apply(cmd); err != nil {
		t.Fatalf("apply %v: %v", cmd, err)
	}
}

func TestDeliverAndReply(t *testing.T) {
	c := newTestCluster(t, 2)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	if c.Network().Len(0, 1) != 1 {
		t.Fatalf("buffered 0->1 = %d, want 1", c.Network().Len(0, 1))
	}
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	vars, err := c.Observe(1)
	if err != nil {
		t.Fatal(err)
	}
	if vars["pings"] != "1" {
		t.Errorf("pings = %s, want 1", vars["pings"])
	}
	// The pong reply is now buffered 1->0.
	if c.Network().Len(1, 0) != 1 {
		t.Fatalf("reply not buffered")
	}
	apply(t, c, Command{Type: trace.EvDeliver, Node: 0, Peer: 1})
	vars, _ = c.Observe(0)
	if vars["pongs"] != "1" {
		t.Errorf("pongs = %s, want 1", vars["pongs"])
	}
}

func TestTimeoutAdvancesVirtualClock(t *testing.T) {
	c := newTestCluster(t, 1)
	apply(t, c, Command{Type: trace.EvTimeout, Node: 0, Payload: "election"})
	vars, _ := c.Observe(0)
	if vars["ticks"] != "1" {
		t.Errorf("ticks = %s, want 1 (200ms advance beats the 100ms deadline)", vars["ticks"])
	}
}

func TestTimeoutUnknownKindRejected(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Apply(Command{Type: trace.EvTimeout, Node: 0, Payload: "nope"}); err == nil {
		t.Error("unknown timeout kind should be rejected")
	}
}

func TestCrashLosesVolatileKeepsDurable(t *testing.T) {
	c := newTestCluster(t, 2)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	apply(t, c, Command{Type: trace.EvCrash, Node: 1})

	if c.Up(1) {
		t.Fatal("node should be down")
	}
	vars, _ := c.Observe(1)
	if vars["status"] != "crashed" {
		t.Errorf("status = %s", vars["status"])
	}
	if err := c.Apply(Command{Type: trace.EvDeliver, Node: 1, Peer: 0}); err == nil {
		t.Error("delivery to crashed node should fail")
	}

	apply(t, c, Command{Type: trace.EvRestart, Node: 1})
	vars, _ = c.Observe(1)
	// pings was persisted before the crash; pongs (volatile) is gone.
	if vars["pings"] != "1" {
		t.Errorf("restored pings = %s, want 1 (durable)", vars["pings"])
	}
	p := c.Process(1).(*pingNode)
	if !p.restored {
		t.Error("restart should load the durable store")
	}
}

func TestRestartRespectsActivePartition(t *testing.T) {
	c := newTestCluster(t, 3)
	apply(t, c, Command{Type: trace.EvPartition, Node: 1, Peer: 2})
	apply(t, c, Command{Type: trace.EvCrash, Node: 1})
	apply(t, c, Command{Type: trace.EvRestart, Node: 1})
	if !c.Network().Connected(0, 1) {
		t.Error("restart should reconnect to node 0")
	}
	if c.Network().Connected(1, 2) {
		t.Error("restart must not cross the still-active partition")
	}
	apply(t, c, Command{Type: trace.EvRecover, Node: 1, Peer: 2})
	if !c.Network().Connected(1, 2) {
		t.Error("heal should reconnect")
	}
}

func TestPanicBecomesCrashError(t *testing.T) {
	c := newTestCluster(t, 2)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "boom"})
	err := c.Apply(Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CrashError", err)
	}
	if ce.Node != 1 {
		t.Errorf("crashed node = %d, want 1", ce.Node)
	}
	if c.Up(1) {
		t.Error("panicked node should be marked crashed")
	}
}

func TestObserveAllIncludesNetwork(t *testing.T) {
	c := newTestCluster(t, 2)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	all, err := c.ObserveAll()
	if err != nil {
		t.Fatal(err)
	}
	if all["net[0->1]"] != "1" {
		t.Errorf("net[0->1] = %s, want 1", all["net[0->1]"])
	}
	if all["pings[1]"] != "0" {
		t.Errorf("pings[1] = %s", all["pings[1]"])
	}
}

func TestLogObserverExtractsState(t *testing.T) {
	c := newTestCluster(t, 2)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	obs, err := NewLogObserver(map[string]string{"pings": `got ping total=(\d+)`})
	if err != nil {
		t.Fatal(err)
	}
	vars, err := c.ObserveLogs(1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if vars["pings"] != "1" {
		t.Errorf("log-extracted pings = %q, want 1", vars["pings"])
	}
}

func TestLogObserverValidation(t *testing.T) {
	if _, err := NewLogObserver(map[string]string{"bad": `no capture group`}); err == nil {
		t.Error("pattern without a capture group should be rejected")
	}
	if _, err := NewLogObserver(map[string]string{"bad": `([`}); err == nil {
		t.Error("invalid regexp should be rejected")
	}
}

func TestCostModelAccumulates(t *testing.T) {
	c, err := NewCluster(Config{
		Nodes:     1,
		Semantics: vnet.TCP,
		Timeouts:  map[string]time.Duration{"election": time.Second},
		Cost: CostModel{
			ClusterInit: 2 * time.Second,
			PerEvent:    300 * time.Millisecond,
			PerTimeout:  time.Second,
		},
	}, func(id int) vos.Process { return &pingNode{} })
	if err != nil {
		t.Fatal(err)
	}
	apply(t, c, Command{Type: trace.EvTimeout, Node: 0, Payload: "election"})
	want := 2*time.Second + 300*time.Millisecond + time.Second
	if c.SimulatedCost() != want {
		t.Errorf("simulated cost = %v, want %v", c.SimulatedCost(), want)
	}
}

func TestDeterministicReplayProducesSameObservations(t *testing.T) {
	script := []Command{
		{Type: trace.EvRequest, Node: 0, Payload: "ping"},
		{Type: trace.EvDeliver, Node: 1, Peer: 0},
		{Type: trace.EvDeliver, Node: 2, Peer: 0},
		{Type: trace.EvDeliver, Node: 0, Peer: 1},
		{Type: trace.EvTimeout, Node: 2, Payload: "election"},
		{Type: trace.EvCrash, Node: 1},
		{Type: trace.EvRestart, Node: 1},
	}
	run := func() string {
		c := newTestCluster(t, 3)
		for _, cmd := range script {
			apply(t, c, cmd)
		}
		all, err := c.ObserveAll()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|events=%d", all, c.Events())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay diverged:\n%s\n%s", a, b)
	}
}

func TestHistoryRecordsCommands(t *testing.T) {
	c := newTestCluster(t, 2)
	apply(t, c, Command{Type: trace.EvRequest, Node: 0, Payload: "ping"})
	apply(t, c, Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	h := c.History()
	if len(h) != 2 || h[0].Type != trace.EvRequest || h[1].Type != trace.EvDeliver {
		t.Errorf("history = %v", h)
	}
}
