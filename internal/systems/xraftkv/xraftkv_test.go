package xraftkv_test

import (
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/systems/xraftkv"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func cluster(t *testing.T, n int, bugs bugdb.Set) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{
		Nodes:     n,
		Semantics: vnet.TCP,
		Seed:      1,
		Timeouts: map[string]time.Duration{
			"election":  200 * time.Millisecond,
			"heartbeat": 60 * time.Millisecond,
		},
	}, func(id int) vos.Process { return xraftkv.New(bugs) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *engine.Cluster, cmds ...engine.Command) {
	t.Helper()
	for _, cmd := range cmds {
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
}

func putAndReplicate(t *testing.T, c *engine.Cluster) {
	t.Helper()
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // initial AE
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // its ack
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "put x 7"},
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // AE [x=7]
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // ack: commit+apply
	)
}

func TestPutGetRoundTrip(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs())
	putAndReplicate(t, c)
	apply(t, c, engine.Command{Type: trace.EvRequest, Node: 0, Payload: "get x"})
	v0, _ := c.Observe(0)
	if v0["lastRead"] != "x=7" {
		t.Errorf("lastRead = %q, want x=7", v0["lastRead"])
	}
	if v0["kv"] != "{x=7}" {
		t.Errorf("kv = %q", v0["kv"])
	}
}

func TestFixedBuildRefusesReadWithoutQuorum(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	putAndReplicate(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvPartition, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvPartition, Node: 0, Peer: 2},
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "get x"},
	)
	v0, _ := c.Observe(0)
	if v0["lastRead"] != "" {
		t.Errorf("isolated leader must refuse the read, got %q", v0["lastRead"])
	}
}

func TestBuggyBuildServesIsolatedRead(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs().With(bugdb.XKVStaleRead))
	putAndReplicate(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvPartition, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvPartition, Node: 0, Peer: 2},
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "get x"},
	)
	v0, _ := c.Observe(0)
	if v0["lastRead"] != "x=7" {
		t.Errorf("buggy build should answer locally, got %q", v0["lastRead"])
	}
}

func TestBadCommandRejected(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs())
	apply(t, c, engine.Command{Type: trace.EvRequest, Node: 0, Payload: "frobnicate"})
	v0, _ := c.Observe(0)
	if v0["kv"] != "{}" {
		t.Errorf("kv = %q", v0["kv"])
	}
}
