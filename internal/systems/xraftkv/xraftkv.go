// Package xraftkv is the Xraft-KV analogue: a replicated key-value store
// built on the xraft core (without PreVote, matching the paper's
// configuration). Put operations replicate through the Raft log; Get
// operations are served by the leader from its applied state machine.
//
// BUG(XraftKV#1): the buggy read path answers immediately from local state
// whenever the node believes it is the leader — a deposed leader (e.g.
// isolated by a partition) then serves stale data, violating
// linearizability. The fixed read path performs a ReadIndex-style check:
// the leader confirms it can still reach a same-term quorum before
// answering.
package xraftkv

import (
	"fmt"
	"strings"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/systems/xraft"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Store is one xraftkv replica: an xraft node plus a KV state machine.
type Store struct {
	*xraft.Node
	bugs bugdb.Set

	env      vos.Env
	data     map[string]string
	lastRead string
}

// New constructs a replica.
func New(bugs bugdb.Set) *Store {
	s := &Store{bugs: bugs}
	s.Node = xraft.New(xraft.Options{
		PreVote: false,
		Bugs:    bugs,
		Apply:   s.apply,
	})
	return s
}

// Start implements vos.Process.
func (s *Store) Start(env vos.Env) {
	s.env = env
	s.data = make(map[string]string)
	s.lastRead = ""
	s.Node.Start(env)
}

func (s *Store) apply(e xraft.Entry) {
	key, val, ok := splitKV(e.Value)
	if !ok {
		return
	}
	s.data[key] = val
	s.env.Logf("applied %s=%s", key, val)
}

// ClientRequest implements vos.Process: "put <key> <value>" replicates a
// write; "get <key>" serves a read.
func (s *Store) ClientRequest(payload string) {
	fields := strings.Fields(payload)
	switch {
	case len(fields) == 3 && fields[0] == "put":
		s.Node.ClientRequest(fields[1] + "=" + fields[2])
	case len(fields) == 2 && fields[0] == "get":
		s.get(fields[1])
	default:
		s.env.Logf("client request rejected: bad command %q", payload)
	}
}

func (s *Store) get(key string) {
	if s.CurrentRole() != xraft.Leader {
		s.env.Logf("get rejected: not leader")
		return
	}
	if !s.bugs.Has(bugdb.XKVStaleRead) {
		// ReadIndex-style leadership confirmation: the read only completes
		// when a quorum is still reachable (the engine schedules reads the
		// specification enabled, so a refused read indicates divergence).
		reachable := 1
		for p := 0; p < s.env.N(); p++ {
			if p != s.env.ID() && s.env.Connected(p) {
				reachable++
			}
		}
		if reachable < s.env.N()/2+1 {
			s.env.Logf("get rejected: leadership unconfirmed")
			return
		}
	}
	// BUG(XraftKV#1): with the flag on, no confirmation happens — any
	// self-styled leader answers from local state.
	val := s.data[key]
	s.lastRead = key + "=" + val
	s.env.Logf("get %s -> %q", key, val)
}

// Observe implements vos.Process: the xraft variables plus the KV read
// result compared against the specification's ghost.
func (s *Store) Observe() map[string]string {
	m := s.Node.Observe()
	if s.lastRead != "" {
		m["lastRead"] = s.lastRead
	}
	m["kv"] = formatData(s.data)
	return m
}

func formatData(data map[string]string) string {
	if len(data) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, data[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func splitKV(v string) (key, val string, ok bool) {
	if i := strings.IndexByte(v, '='); i >= 0 {
		return v[:i], v[i+1:], true
	}
	return "", "", false
}
