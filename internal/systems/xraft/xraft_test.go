package xraft_test

import (
	"errors"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/systems/xraft"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func cluster(t *testing.T, n int, opt xraft.Options) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{
		Nodes:     n,
		Semantics: vnet.TCP,
		Seed:      1,
		Timeouts: map[string]time.Duration{
			"election":  200 * time.Millisecond,
			"heartbeat": 60 * time.Millisecond,
		},
	}, func(id int) vos.Process { return xraft.New(opt) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *engine.Cluster, cmds ...engine.Command) {
	t.Helper()
	for _, cmd := range cmds {
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
}

// elect drives node 0 to leadership without prevote.
func elect(t *testing.T, c *engine.Cluster) {
	t.Helper()
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	v, _ := c.Observe(0)
	if v["role"] != "leader" {
		t.Fatalf("node 0 = %v", v)
	}
}

func TestApplyCallbackFiresOnCommit(t *testing.T) {
	var applied []string
	c, err := engine.NewCluster(engine.Config{
		Nodes:     2,
		Semantics: vnet.TCP,
		Seed:      1,
		Timeouts:  map[string]time.Duration{"election": 200 * time.Millisecond, "heartbeat": 60 * time.Millisecond},
	}, func(id int) vos.Process {
		return xraft.New(xraft.Options{Apply: func(e xraft.Entry) {
			if id == 0 {
				applied = append(applied, e.Value)
			}
		}})
	})
	if err != nil {
		t.Fatal(err)
	}
	elect(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // initial AE
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "x=1"},
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	if len(applied) != 1 || applied[0] != "x=1" {
		t.Errorf("applied = %v", applied)
	}
}

func TestStaleVotesBugElectsWithOldVotes(t *testing.T) {
	// Node 0 starts election term 1 (no prevote); node 1 grants; the grant
	// stays queued. Node 0 times out into term 2 and — with the defect —
	// counts the stale term-1 grant toward term 2.
	c := cluster(t, 3, xraft.Options{Bugs: bugdb.NoBugs().With(bugdb.XRaftStaleVotes)})
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // rv(t1): grant queued
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // stale rvr(t1)
	)
	v0, _ := c.Observe(0)
	if v0["role"] != "leader" || v0["term"] != "2" {
		t.Fatalf("buggy build should elect on stale votes: %v", v0)
	}
	// The fixed build ignores the stale grant.
	c2 := cluster(t, 3, xraft.Options{})
	apply(t, c2,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	v0, _ = c2.Observe(0)
	if v0["role"] != "candidate" {
		t.Errorf("fixed build must stay candidate: %v", v0)
	}
}

func TestConcurrentMapBugCrashesOnHigherTermResponse(t *testing.T) {
	// Node 1 reaches term 2 through node 2's election (no vote request of
	// its own toward node 0), rejects node 0's stale initial AppendEntries
	// with its higher term, and the buggy leader crashes on the response.
	c := cluster(t, 3, xraft.Options{Bugs: bugdb.NoBugs().With(bugdb.XRaftConcurrentMap)})
	elect(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // rv(t1): node2 joins term 1
		engine.Command{Type: trace.EvTimeout, Node: 2, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 2}, // rv(t2): node1 steps to t2
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // stale initial AE(t1): reject with t2
	)
	err := c.Apply(engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}) // aer(t2) at the leader
	var ce *engine.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected the concurrent-modification crash, got %v", err)
	}
	// The fixed build steps down cleanly instead.
	c2 := cluster(t, 3, xraft.Options{})
	elect(t, c2)
	apply(t, c2,
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0},
		engine.Command{Type: trace.EvTimeout, Node: 2, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 2},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	v0, _ := c2.Observe(0)
	if v0["role"] != "follower" || v0["term"] != "2" {
		t.Errorf("fixed leader should step down: %v", v0)
	}
}
