// Package xraft is the Xraft analogue: a teaching-oriented Raft core over
// TCP with the PreVote extension. The xraftkv package builds a replicated
// key-value store on top of it, the way xraft-kvstore builds on xraft-core.
//
// The two Table 2 defects live in the vote-response handler (stale votes
// counted across election rounds, Xraft#1) and in the replication-progress
// table (a concurrent-modification crash analogue, Xraft#2).
package xraft

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Role is the node role.
type Role int

// Roles.
const (
	Follower Role = iota
	PreCandidate
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	case PreCandidate:
		return "precandidate"
	default:
		return "follower"
	}
}

// Entry is one log entry.
type Entry struct {
	Term  int    `json:"t"`
	Value string `json:"v"`
}

// Message is the wire format.
type Message struct {
	Type      string  `json:"type"`
	Term      int     `json:"term"`
	Pre       bool    `json:"pre,omitempty"`
	LastIndex int     `json:"last_index,omitempty"`
	LastTerm  int     `json:"last_term,omitempty"`
	Granted   bool    `json:"granted,omitempty"`
	PrevIndex int     `json:"prev_index,omitempty"`
	PrevTerm  int     `json:"prev_term,omitempty"`
	Entries   []Entry `json:"entries,omitempty"`
	Commit    int     `json:"commit,omitempty"`
	Flag      bool    `json:"flag,omitempty"`
	NextIndex int     `json:"next_index,omitempty"`
}

// Timer constants.
const (
	ElectionTimeout   = 100 * time.Millisecond
	HeartbeatInterval = 50 * time.Millisecond
)

// Options configure a node.
type Options struct {
	// PreVote enables the pre-election round (xraft-core has it; the KV
	// store configuration ships without it, as the paper notes).
	PreVote bool
	Bugs    bugdb.Set
	// Apply, when set, is called for every newly committed entry (the KV
	// store hooks its state machine here).
	Apply func(e Entry)
}

// Node is one xraft replica.
type Node struct {
	env vos.Env
	opt Options

	role     Role
	term     int
	votedFor int
	log      []Entry
	commit   int
	applied  int

	votes    map[int]bool
	prevotes map[int]bool
	next     []int
	match    []int

	electionDeadline  time.Time
	heartbeatDeadline time.Time
}

// New constructs a replica.
func New(opt Options) *Node { return &Node{opt: opt, votedFor: -1} }

func (n *Node) bug(k bugdb.Key) bool { return n.opt.Bugs.Has(k) }

// Env exposes the node's environment to embedding packages (xraftkv).
func (n *Node) Env() vos.Env { return n.env }

// Role returns the current role.
func (n *Node) CurrentRole() Role { return n.role }

// Commit returns the current commit index.
func (n *Node) CommitIndex() int { return n.commit }

// Start implements vos.Process.
func (n *Node) Start(env vos.Env) {
	n.env = env
	n.role = Follower
	n.term = 0
	n.votedFor = -1
	n.log = nil
	n.commit = 0
	n.applied = 0
	n.votes, n.prevotes = nil, nil
	n.next, n.match = nil, nil
	n.loadDurable()
	n.electionDeadline = env.Now().Add(ElectionTimeout)
	env.Logf("started role=%s term=%d", n.role, n.term)
}

type durable struct {
	Term     int     `json:"term"`
	VotedFor int     `json:"voted_for"`
	Log      []Entry `json:"log"`
}

func (n *Node) persist() {
	b, err := json.Marshal(durable{Term: n.term, VotedFor: n.votedFor, Log: n.log})
	if err != nil {
		panic(fmt.Sprintf("xraft: marshal durable: %v", err))
	}
	n.env.Persist("xraft", b)
}

func (n *Node) loadDurable() {
	b, ok := n.env.Load("xraft")
	if !ok {
		return
	}
	var d durable
	if err := json.Unmarshal(b, &d); err != nil {
		panic(fmt.Sprintf("xraft: unmarshal durable: %v", err))
	}
	n.term, n.votedFor, n.log = d.Term, d.VotedFor, d.Log
}

func (n *Node) lastIndex() int { return len(n.log) }

func (n *Node) logTerm(index int) int {
	if index < 1 || index > len(n.log) {
		return 0
	}
	return n.log[index-1].Term
}

func (n *Node) quorum() int { return n.env.N()/2 + 1 }

func (n *Node) send(to int, m Message) {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("xraft: marshal message: %v", err))
	}
	n.env.Send(to, b)
}

// Tick implements vos.Process.
func (n *Node) Tick() {
	now := n.env.Now()
	if n.role == Leader {
		if !now.Before(n.heartbeatDeadline) {
			n.broadcastAppend()
			n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
		}
		return
	}
	if !now.Before(n.electionDeadline) {
		if n.opt.PreVote {
			n.startPreVote()
		} else {
			n.startElection()
		}
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
}

func (n *Node) startPreVote() {
	n.role = PreCandidate
	n.prevotes = map[int]bool{n.env.ID(): true}
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "rv", Term: n.term + 1, Pre: true, LastIndex: n.lastIndex(), LastTerm: n.logTerm(n.lastIndex())})
	}
	n.maybeWinPreVote()
}

func (n *Node) startElection() {
	n.role = Candidate
	n.term++
	n.votedFor = n.env.ID()
	n.prevotes = nil
	n.persist()
	n.votes = map[int]bool{n.env.ID(): true}
	n.env.Logf("election started term=%d", n.term)
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "rv", Term: n.term, LastIndex: n.lastIndex(), LastTerm: n.logTerm(n.lastIndex())})
	}
	n.maybeWinElection()
}

func (n *Node) maybeWinPreVote() {
	if n.role == PreCandidate && len(n.prevotes) >= n.quorum() {
		n.startElection()
	}
}

func (n *Node) maybeWinElection() {
	if n.role == Candidate && len(n.votes) >= n.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.votes, n.prevotes = nil, nil
	n.next = make([]int, n.env.N())
	n.match = make([]int, n.env.N())
	for p := range n.next {
		n.next[p] = n.lastIndex() + 1
	}
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("became leader term=%d", n.term)
	n.broadcastAppend()
	n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
}

func (n *Node) stepDown(term int) {
	n.term = term
	n.role = Follower
	n.votedFor = -1
	n.votes, n.prevotes = nil, nil
	n.next, n.match = nil, nil
	n.persist()
}

func (n *Node) yieldToLeader() {
	if n.role != Follower {
		n.role = Follower
		n.votes, n.prevotes = nil, nil
		n.next, n.match = nil, nil
	}
}

func (n *Node) broadcastAppend() {
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() || !n.env.Connected(p) {
			continue
		}
		ni := n.next[p]
		if ni < 1 {
			ni = 1
		}
		prev := ni - 1
		var entries []Entry
		if prev < len(n.log) {
			entries = append([]Entry(nil), n.log[prev:]...)
		}
		n.send(p, Message{Type: "ae", Term: n.term, PrevIndex: prev, PrevTerm: n.logTerm(prev), Entries: entries, Commit: n.commit})
	}
}

// ClientRequest implements vos.Process.
func (n *Node) ClientRequest(payload string) {
	if n.role != Leader {
		n.env.Logf("client request rejected: not leader")
		return
	}
	n.log = append(n.log, Entry{Term: n.term, Value: payload})
	n.persist()
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("appended entry index=%d term=%d", n.lastIndex(), n.term)
}

// Receive implements vos.Process.
func (n *Node) Receive(from int, msg []byte) {
	var m Message
	if err := json.Unmarshal(msg, &m); err != nil {
		panic(fmt.Sprintf("xraft: bad message from %d: %v", from, err))
	}
	switch m.Type {
	case "rv":
		n.handleRequestVote(from, m)
	case "rvr":
		n.handleRequestVoteResponse(from, m)
	case "ae":
		n.handleAppendEntries(from, m)
	case "aer":
		n.handleAppendEntriesResponse(from, m)
	default:
		panic(fmt.Sprintf("xraft: unknown message type %q", m.Type))
	}
}

func (n *Node) handleRequestVote(from int, m Message) {
	if m.Pre {
		granted := m.Term >= n.term
		if granted {
			last := n.lastIndex()
			granted = m.LastTerm > n.logTerm(last) ||
				(m.LastTerm == n.logTerm(last) && m.LastIndex >= last)
		}
		if granted && n.role == Leader {
			granted = false
		}
		n.send(from, Message{Type: "rvr", Term: n.term, Pre: true, Granted: granted})
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	last := n.lastIndex()
	upToDate := m.LastTerm > n.logTerm(last) ||
		(m.LastTerm == n.logTerm(last) && m.LastIndex >= last)
	granted := m.Term == n.term && (n.votedFor == -1 || n.votedFor == from) && upToDate
	if granted {
		n.votedFor = from
		n.persist()
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
	n.send(from, Message{Type: "rvr", Term: n.term, Granted: granted})
}

func (n *Node) handleRequestVoteResponse(from int, m Message) {
	if m.Pre {
		if m.Term > n.term && !m.Granted {
			n.stepDown(m.Term)
			return
		}
		if n.role != PreCandidate || !m.Granted {
			return
		}
		n.prevotes[from] = true
		n.maybeWinPreVote()
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if n.role != Candidate || !m.Granted {
		return
	}
	if !n.bug(bugdb.XRaftStaleVotes) && m.Term != n.term {
		return
	}
	// BUG(Xraft#1): with the flag on, granted responses are accepted
	// unconditionally — a vote earned in an older election round counts
	// toward the current one, and two leaders can coexist in one term.
	n.votes[from] = true
	n.maybeWinElection()
}

func (n *Node) handleAppendEntries(from int, m Message) {
	if m.Term < n.term {
		n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	n.yieldToLeader()
	n.electionDeadline = n.env.Now().Add(ElectionTimeout)

	if m.PrevIndex > n.lastIndex() || (m.PrevIndex >= 1 && n.logTerm(m.PrevIndex) != m.PrevTerm) {
		n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}

	changed := false
	idx := m.PrevIndex
	for _, e := range m.Entries {
		idx++
		if idx <= n.lastIndex() {
			if n.logTerm(idx) != e.Term {
				n.log = n.log[:idx-1]
				n.log = append(n.log, e)
				changed = true
			}
			continue
		}
		n.log = append(n.log, e)
		changed = true
	}
	if changed {
		n.persist()
	}

	if c := min(m.Commit, m.PrevIndex+len(m.Entries)); c > n.commit {
		n.commit = c
		n.applyCommitted()
	}
	n.send(from, Message{Type: "aer", Term: n.term, Flag: true, NextIndex: m.PrevIndex + len(m.Entries) + 1})
}

func (n *Node) handleAppendEntriesResponse(from int, m Message) {
	if m.Term > n.term {
		if n.role == Leader && n.bug(bugdb.XRaftConcurrentMap) {
			// BUG(Xraft#2): the handler steps down (clearing the
			// replication-progress table) while the enclosing replication
			// routine continues to use it — the analogue of xraft's
			// ConcurrentModificationException between the core thread and
			// the replication callback.
			n.stepDown(m.Term)
			n.match[from] = m.NextIndex - 1 // progress table is gone: crash
			return
		}
		n.stepDown(m.Term)
		return
	}
	if m.Term < n.term || n.role != Leader {
		return
	}
	if m.Flag {
		if nm := m.NextIndex - 1; nm > n.match[from] {
			n.match[from] = nm
		}
		if m.NextIndex > n.next[from] {
			n.next[from] = m.NextIndex
		}
		n.advanceCommit()
		return
	}
	ni := m.NextIndex
	if ni < n.match[from]+1 {
		ni = n.match[from] + 1
	}
	n.next[from] = ni
}

func (n *Node) advanceCommit() {
	for idx := n.lastIndex(); idx > n.commit; idx-- {
		if n.logTerm(idx) != n.term {
			break
		}
		count := 1
		for p := 0; p < n.env.N(); p++ {
			if p != n.env.ID() && n.match[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commit = idx
			n.env.Logf("commit advanced to %d", n.commit)
			n.applyCommitted()
			break
		}
	}
}

func (n *Node) applyCommitted() {
	for n.applied < n.commit {
		n.applied++
		if n.opt.Apply != nil {
			n.opt.Apply(n.log[n.applied-1])
		}
	}
}

// Observe implements vos.Process.
func (n *Node) Observe() map[string]string {
	m := map[string]string{
		"role":     n.role.String(),
		"term":     strconv.Itoa(n.term),
		"votedFor": strconv.Itoa(n.votedFor),
		"log":      formatLog(n.log),
		"commit":   strconv.Itoa(n.commit),
	}
	if n.role == Leader {
		m["next"] = formatPeerInts(n.next, n.env.ID())
		m["match"] = formatPeerInts(n.match, n.env.ID())
	} else {
		m["next"] = "-"
		m["match"] = "-"
	}
	if n.role == Candidate {
		m["votes"] = formatVotes(n.votes)
	} else {
		m["votes"] = "-"
	}
	return m
}

func formatLog(log []Entry) string {
	if len(log) == 0 {
		return "[]"
	}
	parts := make([]string, len(log))
	for i, e := range log {
		parts[i] = fmt.Sprintf("%d:%s", e.Term, e.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatPeerInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatVotes(votes map[int]bool) string {
	var ids []int
	for id := range votes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, " ") + "}"
}
