// Package gosyncobj is the PySyncObj analogue: a compact Raft library in the
// style of an object-replication framework, speaking JSON messages over TCP
// semantics.
//
// Like PySyncObj, it implements two unverified optimisations on top of basic
// Raft (the paper calls them out when describing PySyncObj#4):
//
//   - aggressive next-index advance: after sending AppendEntries the leader
//     optimistically sets the follower's next index past the entries sent,
//     so subsequent heartbeats carry only the newest entries;
//   - follower-provided next-index hints: AppendEntries responses carry the
//     follower's suggested next index (Inext) in both the success and the
//     reject case, and the leader adopts it directly.
//
// The package carries the five defects the paper found in PySyncObj (Table
// 2) behind bugdb flags; see the bug sites marked "BUG(...)" below.
package gosyncobj

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Role is the Raft role of a node.
type Role int

// Roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	default:
		return "follower"
	}
}

// Entry is one replicated log entry. Index is implicit: position+1.
type Entry struct {
	Term  int    `json:"t"`
	Value string `json:"v"`
}

// Message is the wire format (all message kinds share one struct, like
// PySyncObj's dict-shaped messages).
type Message struct {
	Type      string  `json:"type"` // "rv", "rvr", "ae", "aer"
	Term      int     `json:"term"`
	LastIndex int     `json:"last_index,omitempty"` // rv: candidate last log index
	LastTerm  int     `json:"last_term,omitempty"`  // rv: candidate last log term
	Granted   bool    `json:"granted,omitempty"`    // rvr
	PrevIndex int     `json:"prev_index,omitempty"` // ae
	PrevTerm  int     `json:"prev_term,omitempty"`  // ae
	Entries   []Entry `json:"entries,omitempty"`    // ae
	Commit    int     `json:"commit,omitempty"`     // ae: leader commit
	Flag      bool    `json:"flag,omitempty"`       // aer: success flag
	NextIndex int     `json:"next_index,omitempty"` // aer: follower's Inext hint
}

// Timing constants: the engine's virtual clock advances past these to fire
// timers deterministically.
const (
	ElectionTimeout   = 100 * time.Millisecond
	HeartbeatInterval = 50 * time.Millisecond
)

// Node is one gosyncobj replica.
type Node struct {
	env  vos.Env
	bugs bugdb.Set

	role     Role
	term     int
	votedFor int
	log      []Entry
	commit   int

	votes map[int]bool
	next  []int
	match []int

	electionDeadline  time.Time
	heartbeatDeadline time.Time
}

// New constructs a replica with the given defect set (bugdb.AllBugs
// reproduces upstream PySyncObj; bugdb.NoBugs is the fixed build).
func New(bugs bugdb.Set) *Node {
	return &Node{bugs: bugs, votedFor: -1}
}

// Start implements vos.Process: initialise volatile state and reload the
// durable journal a previous incarnation persisted.
func (n *Node) Start(env vos.Env) {
	n.env = env
	n.role = Follower
	n.term = 0
	n.votedFor = -1
	n.log = nil
	n.commit = 0
	n.votes = nil
	n.next = nil
	n.match = nil
	n.loadDurable()
	n.electionDeadline = env.Now().Add(ElectionTimeout)
	env.Logf("started role=%s term=%d", n.role, n.term)
}

// persistHard writes and fsyncs the hard state (term, vote). The sync
// flushes the whole write journal, so a pending unsynced log write becomes
// durable here too.
func (n *Node) persistHard() {
	n.env.Persist("hard", []byte(fmt.Sprintf("%d:%d", n.term, n.votedFor)))
	n.env.Sync()
}

func (n *Node) persistLog() {
	b, err := json.Marshal(n.log)
	if err != nil {
		panic(fmt.Sprintf("gosyncobj: marshal log: %v", err))
	}
	n.env.Persist("log", b)
	if n.bugs.Has(bugdb.GSOUnsyncedLog) {
		// BUG(GoSyncObj#6, extension): the log write is left in the page
		// cache — no fsync. A dirty crash before the next hard-state sync
		// loses the entries, even ones the cluster already committed.
		return
	}
	n.env.Sync()
}

func (n *Node) loadDurable() {
	if b, ok := n.env.Load("hard"); ok {
		fmt.Sscanf(string(b), "%d:%d", &n.term, &n.votedFor)
	}
	if b, ok := n.env.Load("log"); ok {
		if err := json.Unmarshal(b, &n.log); err != nil {
			panic(fmt.Sprintf("gosyncobj: unmarshal log: %v", err))
		}
	}
}

func (n *Node) lastIndex() int { return len(n.log) }

func (n *Node) logTerm(index int) int {
	if index < 1 || index > len(n.log) {
		return 0
	}
	return n.log[index-1].Term
}

func (n *Node) quorum() int { return n.env.N()/2 + 1 }

func (n *Node) send(to int, m Message) {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("gosyncobj: marshal message: %v", err))
	}
	n.env.Send(to, b)
}

// Tick implements vos.Process: fire any timers that became due after the
// engine advanced the virtual clock.
func (n *Node) Tick() {
	now := n.env.Now()
	if n.role == Leader {
		if !now.Before(n.heartbeatDeadline) {
			n.broadcastAppendEntries()
			n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
		}
		return
	}
	if !now.Before(n.electionDeadline) {
		n.startElection()
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
}

func (n *Node) startElection() {
	n.role = Candidate
	n.term++
	n.votedFor = n.env.ID()
	n.persistHard()
	n.votes = map[int]bool{n.env.ID(): true}
	n.env.Logf("election started term=%d", n.term)
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "rv", Term: n.term, LastIndex: n.lastIndex(), LastTerm: n.logTerm(n.lastIndex())})
	}
	n.maybeWinElection()
}

func (n *Node) maybeWinElection() {
	if n.role == Candidate && len(n.votes) >= n.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.votes = nil
	n.next = make([]int, n.env.N())
	n.match = make([]int, n.env.N())
	for p := range n.next {
		n.next[p] = n.lastIndex() + 1
	}
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("became leader term=%d", n.term)
	n.broadcastAppendEntries()
	n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
}

func (n *Node) broadcastAppendEntries() {
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		if !n.env.Connected(p) {
			if n.bugs.Has(bugdb.GSODisconnectCrash) {
				// BUG(GoSyncObj#1): the reconnect path dereferences the
				// connection object that the disconnect handler already
				// dropped — an unhandled exception crashes the node.
				var conn *struct{ retries int }
				conn.retries++ // nil dereference
			}
			continue
		}
		n.sendAppendEntries(p)
	}
}

func (n *Node) sendAppendEntries(p int) {
	ni := n.next[p]
	if ni < 1 {
		ni = 1
	}
	prev := ni - 1
	entries := append([]Entry(nil), n.log[min(prev, len(n.log)):]...)
	n.send(p, Message{
		Type:      "ae",
		Term:      n.term,
		PrevIndex: prev,
		PrevTerm:  n.logTerm(prev),
		Entries:   entries,
		Commit:    n.commit,
	})
	// Aggressive next-index advance: assume the entries will be accepted so
	// the next heartbeat sends only newer entries (PySyncObj optimisation).
	n.next[p] = n.lastIndex() + 1
}

// ClientRequest implements vos.Process: a leader appends the value to its
// log; replication happens on subsequent heartbeats.
func (n *Node) ClientRequest(payload string) {
	if n.role != Leader {
		n.env.Logf("client request rejected: not leader")
		return
	}
	n.log = append(n.log, Entry{Term: n.term, Value: payload})
	n.persistLog()
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("appended entry index=%d term=%d", n.lastIndex(), n.term)
}

// Receive implements vos.Process.
func (n *Node) Receive(from int, msg []byte) {
	var m Message
	if err := json.Unmarshal(msg, &m); err != nil {
		panic(fmt.Sprintf("gosyncobj: bad message from %d: %v", from, err))
	}
	switch m.Type {
	case "rv":
		n.handleRequestVote(from, m)
	case "rvr":
		n.handleRequestVoteResponse(from, m)
	case "ae":
		n.handleAppendEntries(from, m)
	case "aer":
		n.handleAppendEntriesResponse(from, m)
	default:
		panic(fmt.Sprintf("gosyncobj: unknown message type %q", m.Type))
	}
}

func (n *Node) stepDown(term int) {
	n.term = term
	n.role = Follower
	n.votedFor = -1
	n.votes = nil
	n.next = nil
	n.match = nil
	n.persistHard()
}

func (n *Node) handleRequestVote(from int, m Message) {
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	upToDate := m.LastTerm > n.logTerm(n.lastIndex()) ||
		(m.LastTerm == n.logTerm(n.lastIndex()) && m.LastIndex >= n.lastIndex())
	granted := m.Term == n.term && (n.votedFor == -1 || n.votedFor == from) && upToDate
	if granted {
		n.votedFor = from
		n.persistHard()
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
	n.send(from, Message{Type: "rvr", Term: n.term, Granted: granted})
}

func (n *Node) handleRequestVoteResponse(from int, m Message) {
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if n.role != Candidate || m.Term != n.term || !m.Granted {
		return
	}
	n.votes[from] = true
	n.maybeWinElection()
}

func (n *Node) handleAppendEntries(from int, m Message) {
	if m.Term < n.term {
		n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	if n.role != Follower {
		// A candidate (or stale leader) of the same term yields to the
		// established leader but keeps its vote.
		n.role = Follower
		n.votes = nil
		n.next, n.match = nil, nil
	}
	n.electionDeadline = n.env.Now().Add(ElectionTimeout)

	// Consistency check on the previous entry.
	if m.PrevIndex > n.lastIndex() || (m.PrevIndex >= 1 && n.logTerm(m.PrevIndex) != m.PrevTerm) {
		n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}

	// Append, truncating on conflict.
	changed := false
	idx := m.PrevIndex
	for _, e := range m.Entries {
		idx++
		if idx <= n.lastIndex() {
			if n.logTerm(idx) != e.Term {
				n.log = n.log[:idx-1]
				n.log = append(n.log, e)
				changed = true
			}
			continue
		}
		n.log = append(n.log, e)
		changed = true
	}
	if changed {
		n.persistLog()
	}

	// Advance (or, buggily, regress) the commit index.
	leaderCommit := min(m.Commit, n.lastIndex())
	if n.bugs.Has(bugdb.GSOCommitNonMonotonic) {
		// BUG(GoSyncObj#2): the follower adopts the leader's commit index
		// unconditionally. A freshly elected leader whose own commit index
		// lags this follower's makes the commit index go backwards.
		n.commit = leaderCommit
	} else if leaderCommit > n.commit {
		n.commit = leaderCommit
	}

	// Reply with the follower's next-index hint (Inext): the highest index
	// this message confirmed, plus one.
	inext := m.PrevIndex + len(m.Entries) + 1
	if len(m.Entries) > 0 && (n.bugs.Has(bugdb.GSOMatchNonMonotonic) || n.bugs.Has(bugdb.GSONextLEMatch)) {
		// BUG(GoSyncObj#3/#4, shared root cause): off-by-one — when the
		// AppendEntries message carries entries the hint misses the +1. A
		// retransmission of already-synchronised entries then makes the
		// leader regress its replication state: the match index goes
		// backwards if assigned unguarded (#4, Figure 6), and the next
		// index falls to or below the match index (#3).
		inext--
	}
	n.send(from, Message{Type: "aer", Term: n.term, Flag: true, NextIndex: inext})
}

func (n *Node) handleAppendEntriesResponse(from int, m Message) {
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if n.role != Leader || m.Term < n.term {
		return
	}
	if m.Flag {
		// Success: adopt the follower's hint.
		nm := m.NextIndex - 1
		if n.bugs.Has(bugdb.GSOMatchNonMonotonic) {
			// BUG(GoSyncObj#4), leader side: the match index is assigned
			// without a monotonicity guard.
			n.match[from] = nm
		} else if nm > n.match[from] {
			n.match[from] = nm
		}
		if n.bugs.Has(bugdb.GSONextLEMatch) {
			// BUG(GoSyncObj#3): the next index is adopted from the (wrong)
			// hint without respecting the match index.
			n.next[from] = m.NextIndex
		} else {
			n.next[from] = max(m.NextIndex, n.match[from]+1)
		}
	} else {
		// Rejected: reset the next index to the follower's hint.
		if n.bugs.Has(bugdb.GSONextLEMatch) {
			n.next[from] = m.NextIndex
		} else {
			n.next[from] = max(m.NextIndex, n.match[from]+1)
		}
	}
	n.advanceCommit()
}

// advanceCommit recomputes the leader commit index from the match indexes.
func (n *Node) advanceCommit() {
	matches := append([]int(nil), n.match...)
	matches[n.env.ID()] = n.lastIndex()
	sort.Ints(matches)
	// The quorum-th highest match index is replicated on a majority.
	candidate := matches[n.env.N()-n.quorum()]
	if candidate <= n.commit {
		return
	}
	if !n.bugs.Has(bugdb.GSOCommitOldTerm) {
		// Raft commitment rule: only entries of the current term may be
		// committed by counting replicas.
		if n.logTerm(candidate) != n.term {
			return
		}
	}
	// BUG(GoSyncObj#5): with the flag on, the term check above is skipped
	// and the leader commits entries created by older leaders.
	n.commit = candidate
	n.env.Logf("commit advanced to %d", n.commit)
}

// Observe implements vos.Process: render the variables compared during
// conformance checking. The rendering must match the specification's Vars.
func (n *Node) Observe() map[string]string {
	m := map[string]string{
		"role":     n.role.String(),
		"term":     strconv.Itoa(n.term),
		"votedFor": strconv.Itoa(n.votedFor),
		"log":      FormatLog(n.log),
		"commit":   strconv.Itoa(n.commit),
	}
	if n.role == Leader {
		m["next"] = formatPeerInts(n.next, n.env.ID())
		m["match"] = formatPeerInts(n.match, n.env.ID())
	} else {
		m["next"] = "-"
		m["match"] = "-"
	}
	if n.role == Candidate {
		m["votes"] = formatVotes(n.votes)
	} else {
		m["votes"] = "-"
	}
	return m
}

// FormatLog renders a log canonically: "term:value term:value ...".
func FormatLog(log []Entry) string {
	if len(log) == 0 {
		return "[]"
	}
	parts := make([]string, len(log))
	for i, e := range log {
		parts[i] = fmt.Sprintf("%d:%s", e.Term, e.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatPeerInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatVotes(votes map[int]bool) string {
	ids := make([]int, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, " ") + "}"
}
