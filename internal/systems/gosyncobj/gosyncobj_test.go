package gosyncobj_test

import (
	"strings"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/systems/gosyncobj"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func cluster(t *testing.T, n int, bugs bugdb.Set) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{
		Nodes:     n,
		Semantics: vnet.TCP,
		Seed:      1,
		Timeouts: map[string]time.Duration{
			"election":  200 * time.Millisecond,
			"heartbeat": 60 * time.Millisecond,
		},
	}, func(id int) vos.Process { return gosyncobj.New(bugs) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *engine.Cluster, cmds ...engine.Command) {
	t.Helper()
	for _, cmd := range cmds {
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
}

// electLeader drives node 0 to leadership in a 2-node cluster.
func electLeader(t *testing.T, c *engine.Cluster) {
	t.Helper()
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // rv
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // rvr -> leader
	)
	vars, _ := c.Observe(0)
	if vars["role"] != "leader" {
		t.Fatalf("node 0 role = %s, want leader", vars["role"])
	}
}

func TestElectionAndReplication(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs())
	electLeader(t, c)
	// The new leader broadcast an initial AppendEntries; deliver and ack.
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // initial AE
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // AER
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // AE with v1
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // AER
	)
	v0, _ := c.Observe(0)
	v1, _ := c.Observe(1)
	if v0["log"] != "[1:v1]" || v1["log"] != "[1:v1]" {
		t.Errorf("logs: leader=%s follower=%s", v0["log"], v1["log"])
	}
	if v0["commit"] != "1" {
		t.Errorf("leader commit = %s, want 1", v0["commit"])
	}
}

func TestFollowerRejectsStaleTermAppendEntries(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	// Node 0 leads term 1 (votes from 1).
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	// Node 2 learns term 1 (vote request), then starts a term-2 election
	// and wins with node 1's vote.
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // rv(t1): grants
		engine.Command{Type: trace.EvTimeout, Node: 2, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 2}, // rv(t2)
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 1}, // rvr(t2)
	)
	v2, _ := c.Observe(2)
	if v2["role"] != "leader" || v2["term"] != "2" {
		t.Fatalf("node 2 = %v", v2)
	}
	// The stale-term initial AppendEntries from node 0's leadership is
	// still queued for node 2: it must be rejected with the higher term,
	// and node 0 must step down on the response.
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // AE(t1) rejected
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // rvr(t1): ignored by leader
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // aer(t2): step down
	)
	v0, _ := c.Observe(0)
	if v0["role"] != "follower" || v0["term"] != "2" {
		t.Errorf("old leader did not step down: %v", v0)
	}
}

func TestDurableStateSurvivesCrash(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs())
	electLeader(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
		engine.Command{Type: trace.EvCrash, Node: 0},
		engine.Command{Type: trace.EvRestart, Node: 0},
	)
	v0, _ := c.Observe(0)
	if v0["log"] != "[1:v1]" {
		t.Errorf("log after restart = %s (journal must survive)", v0["log"])
	}
	if v0["role"] != "follower" || v0["commit"] != "0" {
		t.Errorf("volatile state must reset: %v", v0)
	}
}

func TestDisconnectCrashBug(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs().With(bugdb.GSODisconnectCrash))
	electLeader(t, c)
	apply(t, c, engine.Command{Type: trace.EvPartition, Node: 0, Peer: 1})
	err := c.Apply(engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"})
	if _, ok := err.(*engine.CrashError); !ok {
		t.Fatalf("expected CrashError on heartbeat during disconnection, got %v", err)
	}
	// The fixed build skips the disconnected peer.
	c2 := cluster(t, 2, bugdb.NoBugs())
	apply(t, c2,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvPartition, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"},
	)
}

func TestFormatLog(t *testing.T) {
	if got := gosyncobj.FormatLog(nil); got != "[]" {
		t.Errorf("empty log = %q", got)
	}
	got := gosyncobj.FormatLog([]gosyncobj.Entry{{Term: 1, Value: "a"}, {Term: 2, Value: "b"}})
	if got != "[1:a 2:b]" {
		t.Errorf("log = %q", got)
	}
	if !strings.HasPrefix(got, "[") {
		t.Error("log rendering must be bracketed")
	}
}

func TestClientRequestRejectedByFollower(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs())
	apply(t, c, engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"})
	v0, _ := c.Observe(0)
	if v0["log"] != "[]" {
		t.Errorf("follower accepted a client request: %v", v0["log"])
	}
}
