package asyncraft_test

import (
	"errors"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/systems/asyncraft"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func cluster(t *testing.T, n int, bugs bugdb.Set) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{
		Nodes:     n,
		Semantics: vnet.UDP,
		Seed:      1,
		Timeouts: map[string]time.Duration{
			"election":  200 * time.Millisecond,
			"heartbeat": 60 * time.Millisecond,
		},
	}, func(id int) vos.Process { return asyncraft.New(bugs) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *engine.Cluster, cmds ...engine.Command) {
	t.Helper()
	for _, cmd := range cmds {
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
}

func elect(t *testing.T, c *engine.Cluster) {
	t.Helper()
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
}

func TestReplicationAndCommit(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs())
	elect(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1}, // eager AE
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},           // ack
	)
	v0, _ := c.Observe(0)
	if v0["commit"] != "1" {
		t.Errorf("commit = %s, want 1", v0["commit"])
	}
}

func TestLogEraseBugDestroysMatchedEntries(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs().With(bugdb.ARLogErase))
	elect(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
		// Duplicate the EMPTY initial AppendEntries (index 0) so an older
		// message survives delivery of the newer one.
		engine.Command{Type: trace.EvDuplicate, Node: 1, Peer: 0, Index: 0},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1}, // AE [v1]: appends
	)
	v1, _ := c.Observe(1)
	if v1["log"] != "[1:v1]" {
		t.Fatalf("follower log = %s", v1["log"])
	}
	// Deliver the duplicated old empty AE: the buggy blind truncation
	// erases the already-matched entry.
	apply(t, c, engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1})
	v1, _ = c.Observe(1)
	if v1["log"] != "[]" {
		t.Fatalf("buggy build should erase the entry, log = %s", v1["log"])
	}
	// The fixed build keeps it.
	c2 := cluster(t, 2, bugdb.NoBugs())
	elect(t, c2)
	apply(t, c2,
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
		engine.Command{Type: trace.EvDuplicate, Node: 1, Peer: 0, Index: 0},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1},
	)
	v1, _ = c2.Observe(1)
	if v1["log"] != "[1:v1]" {
		t.Errorf("fixed build lost the entry: %s", v1["log"])
	}
}

func TestMissingKeyCrashBug(t *testing.T) {
	c := cluster(t, 2, bugdb.NoBugs().With(bugdb.ARMissingKeyCrash))
	elect(t, c)
	// Follower 1 acks the initial AppendEntries; then node 0 steps down
	// (higher-term vote request) and the late ack blows up in the handler.
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // initial AE -> ack queued
		engine.Command{Type: trace.EvTimeout, Node: 1, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1, Index: 1}, // rv(t2): step down
	)
	err := c.Apply(engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1, Index: 0}) // stale ack
	var ce *engine.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected the KeyError-style crash, got %v", err)
	}
}

func TestCommitLoopBreakBugBlocksProgress(t *testing.T) {
	// Leader 1 at term 2 with an old-term entry below a current-term entry:
	// the buggy loop stops at the old entry and never commits.
	run := func(bugs bugdb.Set) string {
		c := cluster(t, 2, bugs)
		elect(t, c)
		apply(t, c,
			engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
			engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1}, // AE [v1]
			// Node 1 takes over (term 2) with v1 in its log.
			engine.Command{Type: trace.EvTimeout, Node: 1, Payload: "election"},
			engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1, Index: 1}, // rv(t2): 0 grants
			engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1}, // rvr: leader
			engine.Command{Type: trace.EvRequest, Node: 1, Payload: "v2"},
		)
		// Deliver the eager AE for v2 to node 0, then the fresh ack back
		// (the ack lands at the tail of the 0->1 buffer).
		apply(t, c, engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1, Index: c.Network().Len(1, 0) - 1})
		apply(t, c, engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: c.Network().Len(0, 1) - 1})
		v1, _ := c.Observe(1)
		return v1["commit"]
	}
	if got := run(bugdb.NoBugs().With(bugdb.ARCommitLoopBreak)); got != "0" {
		t.Errorf("buggy build committed %s, want 0 (stuck)", got)
	}
	if got := run(bugdb.NoBugs()); got != "2" {
		t.Errorf("fixed build committed %s, want 2", got)
	}
}
