// Package asyncraft is the RaftOS analogue: an asyncio-styled Raft for
// replicating objects over UDP, with no delivery-order assumptions. Its
// event-loop heritage shows in the replication handler layout (dictionary
// lookups keyed by peer, an incremental commitment-checking loop) — which
// is where its four Table 2 defects live.
package asyncraft

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Role is the node role.
type Role int

// Roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	default:
		return "follower"
	}
}

// Entry is one log entry.
type Entry struct {
	Term  int    `json:"t"`
	Value string `json:"v"`
}

// Message is the wire format (field names echo RaftOS's JSON dicts).
type Message struct {
	Type      string  `json:"type"` // "request_vote", "request_vote_response", "append_entries", "append_entries_response"
	Term      int     `json:"term"`
	LastIndex int     `json:"last_log_index,omitempty"`
	LastTerm  int     `json:"last_log_term,omitempty"`
	Granted   bool    `json:"vote_granted,omitempty"`
	PrevIndex int     `json:"prev_log_index,omitempty"`
	PrevTerm  int     `json:"prev_log_term,omitempty"`
	Entries   []Entry `json:"entries,omitempty"`
	Commit    int     `json:"commit_index,omitempty"`
	Flag      bool    `json:"success,omitempty"`
	NextIndex int     `json:"next_index,omitempty"`
}

// Timer constants.
const (
	ElectionTimeout   = 100 * time.Millisecond
	HeartbeatInterval = 50 * time.Millisecond
)

// Node is one asyncraft replica.
type Node struct {
	env  vos.Env
	bugs bugdb.Set

	role     Role
	term     int
	votedFor int
	log      []Entry
	commit   int

	votes []bool
	next  []int
	match []int

	electionDeadline  time.Time
	heartbeatDeadline time.Time
}

// New constructs a replica.
func New(bugs bugdb.Set) *Node { return &Node{bugs: bugs, votedFor: -1} }

// Start implements vos.Process.
func (n *Node) Start(env vos.Env) {
	n.env = env
	n.role = Follower
	n.term = 0
	n.votedFor = -1
	n.log = nil
	n.commit = 0
	n.votes, n.next, n.match = nil, nil, nil
	n.loadDurable()
	n.electionDeadline = env.Now().Add(ElectionTimeout)
	env.Logf("started role=%s term=%d", n.role, n.term)
}

type durable struct {
	Term     int     `json:"term"`
	VotedFor int     `json:"voted_for"`
	Log      []Entry `json:"log"`
}

func (n *Node) persist() {
	b, err := json.Marshal(durable{Term: n.term, VotedFor: n.votedFor, Log: n.log})
	if err != nil {
		panic(fmt.Sprintf("asyncraft: marshal durable: %v", err))
	}
	n.env.Persist("raftos", b)
}

func (n *Node) loadDurable() {
	b, ok := n.env.Load("raftos")
	if !ok {
		return
	}
	var d durable
	if err := json.Unmarshal(b, &d); err != nil {
		panic(fmt.Sprintf("asyncraft: unmarshal durable: %v", err))
	}
	n.term, n.votedFor, n.log = d.Term, d.VotedFor, d.Log
}

func (n *Node) lastIndex() int { return len(n.log) }

func (n *Node) logTerm(index int) int {
	if index < 1 || index > len(n.log) {
		return 0
	}
	return n.log[index-1].Term
}

func (n *Node) quorum() int { return n.env.N()/2 + 1 }

func (n *Node) send(to int, m Message) {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("asyncraft: marshal message: %v", err))
	}
	n.env.Send(to, b)
}

// Tick implements vos.Process.
func (n *Node) Tick() {
	now := n.env.Now()
	if n.role == Leader {
		if !now.Before(n.heartbeatDeadline) {
			n.broadcastAppend()
			n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
		}
		return
	}
	if !now.Before(n.electionDeadline) {
		n.startElection()
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
}

func (n *Node) startElection() {
	n.role = Candidate
	n.term++
	n.votedFor = n.env.ID()
	n.persist()
	n.votes = make([]bool, n.env.N())
	n.votes[n.env.ID()] = true
	n.env.Logf("election started term=%d", n.term)
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "request_vote", Term: n.term, LastIndex: n.lastIndex(), LastTerm: n.logTerm(n.lastIndex())})
	}
	n.maybeWinElection()
}

func (n *Node) maybeWinElection() {
	if n.role != Candidate {
		return
	}
	count := 0
	for _, v := range n.votes {
		if v {
			count++
		}
	}
	if count >= n.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.votes = nil
	n.next = make([]int, n.env.N())
	n.match = make([]int, n.env.N())
	for p := range n.next {
		n.next[p] = n.lastIndex() + 1
	}
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("became leader term=%d", n.term)
	n.broadcastAppend()
	n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
}

func (n *Node) stepDown(term int) {
	n.term = term
	n.role = Follower
	n.votedFor = -1
	n.votes, n.next, n.match = nil, nil, nil
	n.persist()
}

func (n *Node) yieldToLeader() {
	if n.role != Follower {
		n.role = Follower
		n.votes, n.next, n.match = nil, nil, nil
	}
}

func (n *Node) broadcastAppend() {
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() || !n.env.Connected(p) {
			continue
		}
		ni := n.next[p]
		if ni < 1 {
			ni = 1
		}
		prev := ni - 1
		var entries []Entry
		if prev < len(n.log) {
			entries = append([]Entry(nil), n.log[prev:]...)
		}
		n.send(p, Message{Type: "append_entries", Term: n.term, PrevIndex: prev, PrevTerm: n.logTerm(prev), Entries: entries, Commit: n.commit})
	}
}

// ClientRequest implements vos.Process.
func (n *Node) ClientRequest(payload string) {
	if n.role != Leader {
		n.env.Logf("client request rejected: not leader")
		return
	}
	n.log = append(n.log, Entry{Term: n.term, Value: payload})
	n.persist()
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("appended entry index=%d term=%d", n.lastIndex(), n.term)
	// Eager replication on write, as the asyncio replicator does.
	n.broadcastAppend()
}

// Receive implements vos.Process.
func (n *Node) Receive(from int, msg []byte) {
	var m Message
	if err := json.Unmarshal(msg, &m); err != nil {
		panic(fmt.Sprintf("asyncraft: bad message from %d: %v", from, err))
	}
	switch m.Type {
	case "request_vote":
		n.handleRequestVote(from, m)
	case "request_vote_response":
		n.handleRequestVoteResponse(from, m)
	case "append_entries":
		n.handleAppendEntries(from, m)
	case "append_entries_response":
		n.handleAppendEntriesResponse(from, m)
	default:
		panic(fmt.Sprintf("asyncraft: unknown message type %q", m.Type))
	}
}

func (n *Node) handleRequestVote(from int, m Message) {
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	last := n.lastIndex()
	upToDate := m.LastTerm > n.logTerm(last) ||
		(m.LastTerm == n.logTerm(last) && m.LastIndex >= last)
	granted := m.Term == n.term && (n.votedFor == -1 || n.votedFor == from) && upToDate
	if granted {
		n.votedFor = from
		n.persist()
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
	n.send(from, Message{Type: "request_vote_response", Term: n.term, Granted: granted})
}

func (n *Node) handleRequestVoteResponse(from int, m Message) {
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if n.role != Candidate || !m.Granted || m.Term != n.term {
		return
	}
	n.votes[from] = true
	n.maybeWinElection()
}

func (n *Node) handleAppendEntries(from int, m Message) {
	if m.Term < n.term {
		n.send(from, Message{Type: "append_entries_response", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	n.yieldToLeader()
	n.electionDeadline = n.env.Now().Add(ElectionTimeout)

	if m.PrevIndex > n.lastIndex() || (m.PrevIndex >= 1 && n.logTerm(m.PrevIndex) != m.PrevTerm) {
		n.send(from, Message{Type: "append_entries_response", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}

	changed := false
	if n.bugs.Has(bugdb.ARLogErase) && m.PrevIndex < n.lastIndex() {
		// BUG(AsyncRaft#2): the handler truncates everything after
		// PrevIndex before appending, erasing entries that already matched.
		// A duplicated or reordered (UDP) older AppendEntries then destroys
		// newer — possibly committed — entries.
		n.log = n.log[:m.PrevIndex]
		changed = true
	}
	idx := m.PrevIndex
	for _, e := range m.Entries {
		idx++
		if idx <= n.lastIndex() {
			if n.logTerm(idx) != e.Term {
				n.log = n.log[:idx-1]
				n.log = append(n.log, e)
				changed = true
			}
			continue
		}
		n.log = append(n.log, e)
		changed = true
	}
	if changed {
		n.persist()
	}

	if c := min(m.Commit, m.PrevIndex+len(m.Entries)); c > n.commit {
		n.commit = c
		n.env.Logf("commit advanced to %d", n.commit)
	}
	n.send(from, Message{Type: "append_entries_response", Term: n.term, Flag: true, NextIndex: m.PrevIndex + len(m.Entries) + 1})
}

func (n *Node) handleAppendEntriesResponse(from int, m Message) {
	if n.bugs.Has(bugdb.ARMissingKeyCrash) && m.Flag {
		// BUG(AsyncRaft#3): the handler indexes the replication table
		// before checking it is still the leader; after a step-down the
		// table is gone and the lookup blows up (RaftOS's KeyError).
		_ = n.match[from] // panics with index-out-of-range when not leader
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if m.Term < n.term || n.role != Leader {
		return
	}
	if m.Flag {
		nm := m.NextIndex - 1
		if n.bugs.Has(bugdb.ARMatchNonMonotonic) {
			// BUG(AsyncRaft#1): plain assignment without a monotonicity
			// check — an out-of-order older response regresses the index.
			n.match[from] = nm
		} else if nm > n.match[from] {
			n.match[from] = nm
		}
		if m.NextIndex > n.next[from] {
			n.next[from] = m.NextIndex
		}
		n.advanceCommit()
		return
	}
	ni := m.NextIndex
	if ni < n.match[from]+1 {
		ni = n.match[from] + 1
	}
	n.next[from] = ni
}

func (n *Node) advanceCommit() {
	newCommit := n.commit
	for idx := n.commit + 1; idx <= n.lastIndex(); idx++ {
		if n.logTerm(idx) != n.term {
			if n.bugs.Has(bugdb.ARCommitLoopBreak) {
				// BUG(AsyncRaft#4): the commitment-checking loop stops at
				// the first old-term entry instead of skipping it, so a
				// replicated current-term entry beyond it never commits and
				// the cluster stops making progress.
				break
			}
			continue
		}
		count := 1
		for p := 0; p < n.env.N(); p++ {
			if p != n.env.ID() && n.match[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			newCommit = idx
		}
	}
	if newCommit > n.commit {
		n.commit = newCommit
		n.env.Logf("commit advanced to %d", n.commit)
	}
}

// Observe implements vos.Process.
func (n *Node) Observe() map[string]string {
	m := map[string]string{
		"role":     n.role.String(),
		"term":     strconv.Itoa(n.term),
		"votedFor": strconv.Itoa(n.votedFor),
		"log":      formatLog(n.log),
		"commit":   strconv.Itoa(n.commit),
	}
	if n.role == Leader {
		m["next"] = formatPeerInts(n.next, n.env.ID())
		m["match"] = formatPeerInts(n.match, n.env.ID())
	} else {
		m["next"] = "-"
		m["match"] = "-"
	}
	if n.role == Candidate {
		m["votes"] = formatVotes(n.votes)
	} else {
		m["votes"] = "-"
	}
	return m
}

func formatLog(log []Entry) string {
	if len(log) == 0 {
		return "[]"
	}
	parts := make([]string, len(log))
	for i, e := range log {
		parts[i] = fmt.Sprintf("%d:%s", e.Term, e.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatPeerInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatVotes(votes []bool) string {
	var parts []string
	for i, v := range votes {
		if v {
			parts = append(parts, strconv.Itoa(i))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}
