package zabkeeper_test

import (
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/systems/zabkeeper"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func cluster(t *testing.T, n int, bugs bugdb.Set) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{
		Nodes:     n,
		Semantics: vnet.TCP,
		Seed:      1,
		Timeouts:  map[string]time.Duration{"election": 200 * time.Millisecond},
	}, func(id int) vos.Process { return zabkeeper.New(bugs) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *engine.Cluster, cmds ...engine.Command) {
	t.Helper()
	for _, cmd := range cmds {
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
}

// leadNode2 drives the FLE+sync handshake: node 2 (highest id) wins the
// election, node 0 follows and syncs, and the epoch activates.
func leadNode2(t *testing.T, c *engine.Cluster) {
	t.Helper()
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 2, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // notif: node 0 adopts + follows
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // node 0's notif: node 2 leads
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // finfo
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // sync
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // ackld: activated
	)
	v2, _ := c.Observe(2)
	if v2["state"] != "leading" || v2["epoch"] != "1" {
		t.Fatalf("node 2 = %v", v2)
	}
}

func TestElectionSyncAndBroadcast(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	leadNode2(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvRequest, Node: 2, Payload: "v1"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // prop
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // ack: commit
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // commit msg
	)
	v2, _ := c.Observe(2)
	v0, _ := c.Observe(0)
	if v2["committed"] != "1" || v0["committed"] != "1" {
		t.Errorf("committed: leader=%s follower=%s", v2["committed"], v0["committed"])
	}
	if v0["history"] != "[1.1:v1]" {
		t.Errorf("follower history = %s", v0["history"])
	}
}

func TestFollowerRejectsRequests(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	apply(t, c, engine.Command{Type: trace.EvRequest, Node: 1, Payload: "v1"})
	v1, _ := c.Observe(1)
	if v1["history"] != "[]" {
		t.Errorf("non-leader accepted a proposal: %v", v1)
	}
}

func TestHistorySurvivesCrash(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	leadNode2(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvRequest, Node: 2, Payload: "v1"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2},
		engine.Command{Type: trace.EvCrash, Node: 0},
		engine.Command{Type: trace.EvRestart, Node: 0},
	)
	v0, _ := c.Observe(0)
	if v0["history"] != "[1.1:v1]" || v0["epoch"] != "1" {
		t.Errorf("durable state lost: %v", v0)
	}
	if v0["state"] != "looking" || v0["committed"] != "0" {
		t.Errorf("volatile state must reset: %v", v0)
	}
}

func TestSettledNodeAnswersLookingPeer(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	leadNode2(t, c)
	// Node 1 wakes up and asks around; the leader answers with its vote and
	// node 1 joins as a follower.
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 1, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 1}, // notif at leader
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 2}, // leader's answer
	)
	v1, _ := c.Observe(1)
	if v1["state"] != "following" || v1["leader"] != "2" {
		t.Errorf("node 1 should join the ensemble: %v", v1)
	}
}

func TestEpochPromiseRejectsStaleSync(t *testing.T) {
	c := cluster(t, 3, bugdb.NoBugs())
	leadNode2(t, c)
	v0, _ := c.Observe(0)
	if v0["epoch"] != "1" {
		t.Fatalf("follower epoch = %s", v0["epoch"])
	}
	// Any later SYNC at or below epoch 1 must be ignored: epochs only grow.
	// A full re-election round establishes epoch 2.
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 2, Payload: "election"},
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // notif r2: adopt + follow + finfo
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // node 0's own-vote notif: recorded
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // adopted-vote notif: node 2 leads
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // finfo: sync sent
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 2}, // sync: epoch 2 accepted
		engine.Command{Type: trace.EvDeliver, Node: 2, Peer: 0}, // ackld: epoch 2 activated
	)
	v0, _ = c.Observe(0)
	v2, _ := c.Observe(2)
	if v0["epoch"] != "2" || v2["epoch"] != "2" {
		t.Errorf("re-election should establish epoch 2: follower=%s leader=%s", v0["epoch"], v2["epoch"])
	}
	if v2["state"] != "leading" {
		t.Errorf("node 2 = %v", v2)
	}
}
