// Package zabkeeper is the ZooKeeper analogue: a coordination-service core
// implementing Zab — fast leader election (FLE) by vote notification,
// a discovery/synchronisation phase, and the broadcast phase (propose /
// ack / commit) — over TCP semantics.
//
// BUG(ZabKeeper#1), the ZOOKEEPER-1419 analogue: the FLE vote comparator
// treats a higher epoch OR a higher counter as superseding. Once vote zxids
// cross epochs the relation loses antisymmetry — votes are no longer
// totally ordered — and leader election can oscillate forever.
package zabkeeper

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Server states.
type ZState int

// States.
const (
	Looking ZState = iota
	Following
	Leading
)

func (s ZState) String() string {
	switch s {
	case Leading:
		return "leading"
	case Following:
		return "following"
	default:
		return "looking"
	}
}

// Txn is one replicated transaction with zxid (Epoch, Counter).
type Txn struct {
	Epoch   int    `json:"e"`
	Counter int    `json:"c"`
	Value   string `json:"v"`
}

// Vote is an FLE vote.
type Vote struct {
	Leader  int `json:"leader"`
	Epoch   int `json:"epoch"`
	Counter int `json:"counter"`
}

func (v Vote) String() string {
	return fmt.Sprintf("%d@(%d,%d)", v.Leader, v.Epoch, v.Counter)
}

// Message is the wire format.
type Message struct {
	Type      string `json:"type"`
	Round     int    `json:"round,omitempty"`
	State     int    `json:"state,omitempty"`
	Vote      Vote   `json:"vote,omitempty"`
	Epoch     int    `json:"epoch,omitempty"`
	Counter   int    `json:"counter,omitempty"`
	NewEpoch  int    `json:"new_epoch,omitempty"`
	History   []Txn  `json:"history,omitempty"`
	Committed int    `json:"committed,omitempty"`
	Value     string `json:"value,omitempty"`
	Index     int    `json:"index,omitempty"`
}

// ElectionTimeout is fired by the engine's virtual-clock advancement.
const ElectionTimeout = 100 * time.Millisecond

// Node is one zabkeeper replica.
type Node struct {
	env  vos.Env
	bugs bugdb.Set

	state   ZState
	round   int
	vote    Vote
	recv    []Vote
	epoch   int   // durable
	history []Txn // durable
	commit  int

	leaderID  int
	pendEpoch int
	synced    []bool
	acked     []int
	activated bool
	counter   int

	electionDeadline time.Time
}

// New constructs a replica.
func New(bugs bugdb.Set) *Node { return &Node{bugs: bugs} }

// Start implements vos.Process.
func (n *Node) Start(env vos.Env) {
	n.env = env
	n.state = Looking
	n.round = 0
	n.epoch = 0
	n.history = nil
	n.commit = 0
	n.leaderID = -1
	n.pendEpoch = 0
	n.synced, n.acked = nil, nil
	n.activated = false
	n.counter = 0
	n.loadDurable()
	e, c := n.lastZxid()
	n.vote = Vote{Leader: env.ID(), Epoch: e, Counter: c}
	n.recv = emptyRecv(env.N())
	n.recv[env.ID()] = n.vote
	n.electionDeadline = env.Now().Add(ElectionTimeout)
	env.Logf("started state=%s epoch=%d", n.state, n.epoch)
}

func emptyRecv(count int) []Vote {
	r := make([]Vote, count)
	for i := range r {
		r[i] = Vote{Leader: -1}
	}
	return r
}

type durable struct {
	Epoch   int   `json:"epoch"`
	History []Txn `json:"history"`
}

func (n *Node) persist() {
	b, err := json.Marshal(durable{Epoch: n.epoch, History: n.history})
	if err != nil {
		panic(fmt.Sprintf("zabkeeper: marshal durable: %v", err))
	}
	n.env.Persist("zab", b)
}

func (n *Node) loadDurable() {
	b, ok := n.env.Load("zab")
	if !ok {
		return
	}
	var d durable
	if err := json.Unmarshal(b, &d); err != nil {
		panic(fmt.Sprintf("zabkeeper: unmarshal durable: %v", err))
	}
	n.epoch, n.history = d.Epoch, d.History
}

func (n *Node) lastZxid() (epoch, counter int) {
	if len(n.history) == 0 {
		return 0, 0
	}
	t := n.history[len(n.history)-1]
	return t.Epoch, t.Counter
}

func (n *Node) quorum() int { return n.env.N()/2 + 1 }

func (n *Node) send(to int, m Message) {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("zabkeeper: marshal message: %v", err))
	}
	n.env.Send(to, b)
}

// supersedes is the FLE totalOrderPredicate; see the package comment for
// the ZabKeeper#1 defect.
func (n *Node) supersedes(a, b Vote) bool {
	if n.bugs.Has(bugdb.ZabVoteOrder) {
		return a.Epoch > b.Epoch || a.Counter > b.Counter ||
			(a.Epoch == b.Epoch && a.Counter == b.Counter && a.Leader > b.Leader)
	}
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	if a.Counter != b.Counter {
		return a.Counter > b.Counter
	}
	return a.Leader > b.Leader
}

// Tick implements vos.Process: the election timer fires and the node
// (re-)enters leader election.
func (n *Node) Tick() {
	if n.env.Now().Before(n.electionDeadline) {
		return
	}
	n.startElection()
	n.electionDeadline = n.env.Now().Add(ElectionTimeout)
}

func (n *Node) startElection() {
	n.state = Looking
	n.round++
	e, c := n.lastZxid()
	n.vote = Vote{Leader: n.env.ID(), Epoch: e, Counter: c}
	n.recv = emptyRecv(n.env.N())
	n.recv[n.env.ID()] = n.vote
	n.leaderID = -1
	n.synced, n.acked = nil, nil
	n.activated = false
	n.env.Logf("election round=%d vote=%s", n.round, n.vote)
	n.broadcastNotif()
}

func (n *Node) broadcastNotif() {
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "notif", Round: n.round, State: int(n.state), Vote: n.vote})
	}
}

// ClientRequest implements vos.Process: an activated leader proposes the
// value as the next transaction.
func (n *Node) ClientRequest(payload string) {
	if n.state != Leading || !n.activated {
		n.env.Logf("client request rejected: not an active leader")
		return
	}
	n.counter++
	txn := Txn{Epoch: n.pendEpoch, Counter: n.counter, Value: payload}
	n.history = append(n.history, txn)
	n.persist()
	n.acked[n.env.ID()] = len(n.history)
	n.env.Logf("proposed %d.%d:%s", txn.Epoch, txn.Counter, txn.Value)
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() || !n.synced[p] {
			continue
		}
		n.send(p, Message{Type: "prop", Epoch: txn.Epoch, Counter: txn.Counter, Value: payload})
	}
}

// Receive implements vos.Process.
func (n *Node) Receive(from int, msg []byte) {
	var m Message
	if err := json.Unmarshal(msg, &m); err != nil {
		panic(fmt.Sprintf("zabkeeper: bad message from %d: %v", from, err))
	}
	switch m.Type {
	case "notif":
		n.handleNotification(from, m)
	case "finfo":
		n.handleFollowerInfo(from, m)
	case "sync":
		n.handleSync(from, m)
	case "ackld":
		n.handleAckLeader(from, m)
	case "prop":
		n.handleProposal(from, m)
	case "ack":
		n.handleAck(from, m)
	case "commit":
		n.handleCommit(from, m)
	default:
		panic(fmt.Sprintf("zabkeeper: unknown message type %q", m.Type))
	}
}

func (n *Node) handleNotification(from int, m Message) {
	if n.state != Looking {
		if ZState(m.State) == Looking {
			n.send(from, Message{Type: "notif", Round: n.round, State: int(n.state), Vote: n.vote})
		}
		return
	}
	if ZState(m.State) == Looking {
		switch {
		case m.Round > n.round:
			n.round = m.Round
			n.recv = emptyRecv(n.env.N())
			if n.supersedes(m.Vote, n.vote) {
				n.vote = m.Vote
			}
			n.broadcastNotif()
		case m.Round < n.round:
			n.send(from, Message{Type: "notif", Round: n.round, State: int(n.state), Vote: n.vote})
			return
		default:
			if n.supersedes(m.Vote, n.vote) {
				n.vote = m.Vote
				n.broadcastNotif()
			}
		}
		n.recv[from] = m.Vote
		n.recv[n.env.ID()] = n.vote
		n.maybeElect()
		return
	}
	// A settled peer answered: join the established ensemble.
	if m.Vote.Leader != n.env.ID() {
		n.vote = m.Vote
		n.recv[from] = m.Vote
		n.follow(m.Vote.Leader)
	}
}

func (n *Node) maybeElect() {
	count := 0
	for j := 0; j < n.env.N(); j++ {
		if n.recv[j].Leader >= 0 && n.recv[j] == n.vote {
			count++
		}
	}
	if count < n.quorum() {
		return
	}
	if n.vote.Leader == n.env.ID() {
		n.lead()
	} else {
		n.follow(n.vote.Leader)
	}
}

func (n *Node) lead() {
	n.state = Leading
	n.leaderID = n.env.ID()
	he, _ := n.lastZxid()
	pend := n.epoch
	if he > pend {
		pend = he
	}
	n.pendEpoch = pend + 1
	n.synced = make([]bool, n.env.N())
	n.synced[n.env.ID()] = true
	n.acked = make([]int, n.env.N())
	n.acked[n.env.ID()] = len(n.history)
	n.activated = false
	n.counter = 0
	n.env.Logf("leading epoch=%d", n.pendEpoch)
}

func (n *Node) follow(leader int) {
	n.state = Following
	n.leaderID = leader
	n.synced, n.acked = nil, nil
	n.activated = false
	e, c := n.lastZxid()
	n.env.Logf("following %d", leader)
	n.send(leader, Message{Type: "finfo", Epoch: n.epoch, Counter: c, NewEpoch: e})
}

func (n *Node) handleFollowerInfo(from int, m Message) {
	if n.state != Leading {
		return
	}
	n.send(from, Message{Type: "sync", NewEpoch: n.pendEpoch, History: append([]Txn(nil), n.history...), Committed: n.commit})
}

func (n *Node) handleSync(from int, m Message) {
	if n.state != Following || n.leaderID != from {
		return
	}
	// Epoch promise: never help establish an epoch at or below the one
	// already accepted.
	if m.NewEpoch <= n.epoch {
		return
	}
	n.epoch = m.NewEpoch
	n.history = append([]Txn(nil), m.History...)
	n.persist()
	if m.Committed > n.commit {
		n.commit = m.Committed
		n.env.Logf("committed %d", n.commit)
	}
	e, c := n.lastZxid()
	n.send(from, Message{Type: "ackld", Epoch: e, Counter: c})
}

func (n *Node) handleAckLeader(from int, m Message) {
	if n.state != Leading {
		return
	}
	n.synced[from] = true
	// Stream proposals issued since the SYNC was cut (no history gaps).
	idx := n.historyIndex(m.Epoch, m.Counter)
	n.acked[from] = idx
	for k := idx; k < len(n.history); k++ {
		t := n.history[k]
		n.send(from, Message{Type: "prop", Epoch: t.Epoch, Counter: t.Counter, Value: t.Value})
	}
	count := 0
	for j := 0; j < n.env.N(); j++ {
		if n.synced[j] {
			count++
		}
	}
	if count >= n.quorum() && !n.activated {
		n.activated = true
		n.epoch = n.pendEpoch
		n.persist()
		n.env.Logf("epoch %d established", n.epoch)
	}
	n.advanceCommit()
}

func (n *Node) handleProposal(from int, m Message) {
	if n.state != Following || n.leaderID != from {
		return
	}
	e, c := n.lastZxid()
	switch {
	case (m.Epoch == e && m.Counter == c+1) || (m.Epoch > e && m.Counter == 1):
		n.history = append(n.history, Txn{Epoch: m.Epoch, Counter: m.Counter, Value: m.Value})
		n.persist()
		n.send(from, Message{Type: "ack", Epoch: m.Epoch, Counter: m.Counter})
	case m.Epoch < e || (m.Epoch == e && m.Counter <= c):
		n.send(from, Message{Type: "ack", Epoch: m.Epoch, Counter: m.Counter})
	default:
		// Gap: ignore; a later election round re-synchronises this node.
		n.env.Logf("proposal %d.%d ignored: gap after (%d,%d)", m.Epoch, m.Counter, e, c)
	}
}

// historyIndex maps a zxid to its 1-based history position (0 if absent).
func (n *Node) historyIndex(epoch, counter int) int {
	for k, t := range n.history {
		if t.Epoch == epoch && t.Counter == counter {
			return k + 1
		}
	}
	return 0
}

func (n *Node) handleAck(from int, m Message) {
	if n.state != Leading {
		return
	}
	idx := -1
	for k, t := range n.history {
		if t.Epoch == m.Epoch && t.Counter == m.Counter {
			idx = k + 1
			break
		}
	}
	if idx < 0 {
		return
	}
	if idx > n.acked[from] {
		n.acked[from] = idx
	}
	n.advanceCommit()
}

func (n *Node) advanceCommit() {
	if !n.activated {
		return
	}
	newCommit := n.commit
	for idx := n.commit + 1; idx <= len(n.history); idx++ {
		if n.history[idx-1].Epoch != n.pendEpoch {
			continue
		}
		count := 0
		for j := 0; j < n.env.N(); j++ {
			if n.acked[j] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			newCommit = idx
		}
	}
	if newCommit > n.commit {
		n.commit = newCommit
		n.env.Logf("committed %d", n.commit)
		for p := 0; p < n.env.N(); p++ {
			if p == n.env.ID() || !n.synced[p] {
				continue
			}
			n.send(p, Message{Type: "commit", Index: n.commit})
		}
	}
}

func (n *Node) handleCommit(from int, m Message) {
	if n.state != Following || n.leaderID != from {
		return
	}
	c := m.Index
	if c > len(n.history) {
		c = len(n.history)
	}
	if c > n.commit {
		n.commit = c
		n.env.Logf("committed %d", n.commit)
	}
}

// Observe implements vos.Process.
func (n *Node) Observe() map[string]string {
	m := map[string]string{
		"state":     n.state.String(),
		"round":     strconv.Itoa(n.round),
		"vote":      n.vote.String(),
		"epoch":     strconv.Itoa(n.epoch),
		"history":   formatHistory(n.history),
		"committed": strconv.Itoa(n.commit),
		"leader":    strconv.Itoa(n.leaderID),
	}
	if n.state == Leading {
		m["synced"] = formatBoolSet(n.synced)
		m["acked"] = formatInts(n.acked, n.env.ID())
	} else {
		m["synced"] = "-"
		m["acked"] = "-"
	}
	return m
}

func formatHistory(h []Txn) string {
	if len(h) == 0 {
		return "[]"
	}
	parts := make([]string, len(h))
	for i, t := range h {
		parts[i] = fmt.Sprintf("%d.%d:%s", t.Epoch, t.Counter, t.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatBoolSet(b []bool) string {
	var parts []string
	for i, v := range b {
		if v {
			parts = append(parts, strconv.Itoa(i))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func formatInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}
