// Package craft is the WRaft analogue: a C-style Raft library with log
// compaction and snapshot transfer, designed for UDP-like transports (no
// delivery guarantees assumed). Downstream systems embed it the way
// RedisRaft and DaosRaft embed WRaft: RedisRaft (TCP, PreVote, several
// upstream defects fixed) and DaosRaft (TCP, PreVote with its own defect).
//
// The package carries the nine WRaft defects and the DaosRaft PreVote
// defect from Table 2 behind bugdb flags; see the "BUG(...)" sites.
package craft

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// Role is the node role.
type Role int

// Roles.
const (
	Follower Role = iota
	PreCandidate
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	case PreCandidate:
		return "precandidate"
	default:
		return "follower"
	}
}

// Entry is one log entry; indexes are absolute (snapshot-aware).
type Entry struct {
	Term  int    `json:"t"`
	Value string `json:"v"`
}

// Message is the wire format.
type Message struct {
	Type      string  `json:"type"` // "rv", "rvr", "ae", "aer", "snap"
	Term      int     `json:"term"`
	Pre       bool    `json:"pre,omitempty"`
	LastIndex int     `json:"last_index,omitempty"`
	LastTerm  int     `json:"last_term,omitempty"`
	Granted   bool    `json:"granted,omitempty"`
	PrevIndex int     `json:"prev_index,omitempty"`
	PrevTerm  int     `json:"prev_term,omitempty"`
	Entries   []Entry `json:"entries,omitempty"`
	Commit    int     `json:"commit,omitempty"`
	Flag      bool    `json:"flag,omitempty"`
	NextIndex int     `json:"next_index,omitempty"`
	Retry     bool    `json:"retry,omitempty"`
	SnapIndex int     `json:"snap_index,omitempty"`
	SnapTerm  int     `json:"snap_term,omitempty"`
}

// Timer constants, fired by the engine's virtual-clock advancement.
const (
	ElectionTimeout   = 100 * time.Millisecond
	HeartbeatInterval = 50 * time.Millisecond
)

// Options configure a node: the downstream fork knobs.
type Options struct {
	PreVote bool
	Bugs    bugdb.Set
}

// Node is one craft replica.
type Node struct {
	env vos.Env
	opt Options

	role     Role
	term     int
	votedFor int
	log      []Entry // entries after snapIdx
	snapIdx  int
	snapTerm int
	commit   int

	votes    map[int]bool
	prevotes map[int]bool
	next     []int
	match    []int

	electionDeadline  time.Time
	heartbeatDeadline time.Time

	// allocBuffers counts live receive buffers; BUG(CRaft#6) forgets to
	// release one on the AppendEntries rejection path, which the
	// conformance resource check observes as a leak.
	allocBuffers int
}

// New constructs a replica.
func New(opt Options) *Node { return &Node{opt: opt, votedFor: -1} }

// Allocs reports the number of live receive buffers (leak detection).
func (n *Node) Allocs() int { return n.allocBuffers }

func (n *Node) bug(k bugdb.Key) bool { return n.opt.Bugs.Has(k) }

// Start implements vos.Process.
func (n *Node) Start(env vos.Env) {
	n.env = env
	n.role = Follower
	n.term = 0
	n.votedFor = -1
	n.log = nil
	n.snapIdx, n.snapTerm = 0, 0
	n.commit = 0
	n.votes, n.prevotes = nil, nil
	n.next, n.match = nil, nil
	n.allocBuffers = 0
	n.loadDurable()
	n.electionDeadline = env.Now().Add(ElectionTimeout)
	env.Logf("started role=%s term=%d snap=%d@%d", n.role, n.term, n.snapIdx, n.snapTerm)
}

type durable struct {
	Term     int     `json:"term"`
	VotedFor int     `json:"voted_for"`
	Log      []Entry `json:"log"`
	SnapIdx  int     `json:"snap_idx"`
	SnapTerm int     `json:"snap_term"`
}

func (n *Node) persist() {
	b, err := json.Marshal(durable{Term: n.term, VotedFor: n.votedFor, Log: n.log, SnapIdx: n.snapIdx, SnapTerm: n.snapTerm})
	if err != nil {
		panic(fmt.Sprintf("craft: marshal durable: %v", err))
	}
	n.env.Persist("raft", b)
}

func (n *Node) loadDurable() {
	b, ok := n.env.Load("raft")
	if !ok {
		return
	}
	var d durable
	if err := json.Unmarshal(b, &d); err != nil {
		panic(fmt.Sprintf("craft: unmarshal durable: %v", err))
	}
	n.term, n.votedFor, n.log, n.snapIdx, n.snapTerm = d.Term, d.VotedFor, d.Log, d.SnapIdx, d.SnapTerm
}

// Log helpers (absolute indexing).

func (n *Node) lastIndex() int { return n.snapIdx + len(n.log) }

func (n *Node) logTerm(abs int) int {
	switch {
	case abs == n.snapIdx:
		return n.snapTerm
	case abs > n.snapIdx && abs <= n.lastIndex():
		return n.log[abs-n.snapIdx-1].Term
	default:
		return 0
	}
}

func (n *Node) entriesFrom(from int) []Entry {
	if from <= n.snapIdx {
		from = n.snapIdx + 1
	}
	if from > n.lastIndex() {
		return nil
	}
	return append([]Entry(nil), n.log[from-n.snapIdx-1:]...)
}

func (n *Node) truncateTo(abs int) {
	if abs < n.snapIdx {
		abs = n.snapIdx
	}
	n.log = n.log[:abs-n.snapIdx]
}

func (n *Node) quorum() int { return n.env.N()/2 + 1 }

func (n *Node) send(to int, m Message) {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("craft: marshal message: %v", err))
	}
	n.env.Send(to, b)
}

// Tick implements vos.Process.
func (n *Node) Tick() {
	now := n.env.Now()
	if n.role == Leader {
		if !now.Before(n.heartbeatDeadline) {
			n.broadcastAppend()
			n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
		}
		return
	}
	if !now.Before(n.electionDeadline) {
		if n.opt.PreVote {
			n.startPreVote()
		} else {
			n.startElection()
		}
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
}

func (n *Node) startPreVote() {
	n.role = PreCandidate
	n.prevotes = map[int]bool{n.env.ID(): true}
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "rv", Term: n.term + 1, Pre: true, LastIndex: n.lastIndex(), LastTerm: n.logTerm(n.lastIndex())})
	}
	n.maybeWinPreVote()
}

func (n *Node) startElection() {
	n.role = Candidate
	n.term++
	n.votedFor = n.env.ID()
	n.prevotes = nil
	n.persist()
	n.votes = map[int]bool{n.env.ID(): true}
	n.env.Logf("election started term=%d", n.term)
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		n.send(p, Message{Type: "rv", Term: n.term, LastIndex: n.lastIndex(), LastTerm: n.logTerm(n.lastIndex())})
	}
	n.maybeWinElection()
}

func (n *Node) maybeWinPreVote() {
	if n.role == PreCandidate && len(n.prevotes) >= n.quorum() {
		n.startElection()
	}
}

func (n *Node) maybeWinElection() {
	if n.role == Candidate && len(n.votes) >= n.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.votes, n.prevotes = nil, nil
	n.next = make([]int, n.env.N())
	n.match = make([]int, n.env.N())
	for p := range n.next {
		n.next[p] = n.lastIndex() + 1
	}
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("became leader term=%d", n.term)
	n.broadcastAppend()
	n.heartbeatDeadline = n.env.Now().Add(HeartbeatInterval)
}

func (n *Node) stepDown(term int) {
	n.term = term
	n.role = Follower
	n.votedFor = -1
	n.votes, n.prevotes = nil, nil
	n.next, n.match = nil, nil
	n.persist()
}

func (n *Node) yieldToLeader() {
	if n.role != Follower {
		n.role = Follower
		n.votes, n.prevotes = nil, nil
		n.next, n.match = nil, nil
	}
}

func (n *Node) broadcastAppend() {
	for p := 0; p < n.env.N(); p++ {
		if p == n.env.ID() {
			continue
		}
		if !n.env.Connected(p) {
			if n.bug(bugdb.CRaftHeartbeatBreak) {
				// BUG(CRaft#8): a sending failure aborts the whole
				// broadcast loop, so peers after the failed one silently
				// stop receiving heartbeats.
				break
			}
			continue
		}
		n.sendAppend(p, false)
	}
}

func (n *Node) sendAppend(p int, retry bool) {
	ni := n.next[p]
	if ni < 1 {
		ni = 1
	}
	if ni <= n.snapIdx {
		if n.bug(bugdb.CRaftAEInsteadOfSnapshot) {
			// BUG(CRaft#2): the compacted case falls through to the
			// AppendEntries path; the message carries no entries but still
			// advertises the leader's commit index (Figure 7).
			n.send(p, Message{Type: "ae", Term: n.term, PrevIndex: ni - 1, PrevTerm: n.logTerm(ni - 1), Commit: n.commit, Retry: retry})
			return
		}
		n.send(p, Message{Type: "snap", Term: n.term, SnapIndex: n.snapIdx, SnapTerm: n.snapTerm})
		n.next[p] = n.snapIdx + 1
		return
	}
	prev := ni - 1
	entries := n.entriesFrom(ni)
	n.send(p, Message{Type: "ae", Term: n.term, PrevIndex: prev, PrevTerm: n.logTerm(prev), Entries: entries, Commit: n.commit, Retry: retry})
}

// ClientRequest implements vos.Process. The "!compact" admin command
// triggers log compaction (the operator-driven snapshot of real
// deployments); anything else is a value to replicate.
func (n *Node) ClientRequest(payload string) {
	if n.role != Leader {
		n.env.Logf("client request rejected: not leader")
		return
	}
	if payload == "!compact" {
		n.compact()
		return
	}
	n.log = append(n.log, Entry{Term: n.term, Value: payload})
	n.persist()
	n.match[n.env.ID()] = n.lastIndex()
	n.env.Logf("appended entry index=%d term=%d", n.lastIndex(), n.term)
	// Eager replication on entry receipt (WRaft's raft_recv_entry).
	n.broadcastAppend()
}

func (n *Node) compact() {
	if n.commit <= n.snapIdx {
		return
	}
	c := n.commit
	n.snapTerm = n.logTerm(c)
	n.log = append([]Entry(nil), n.log[c-n.snapIdx:]...)
	n.snapIdx = c
	n.persist()
	n.env.Logf("compacted to snapshot %d@%d", n.snapIdx, n.snapTerm)
}

// Receive implements vos.Process.
func (n *Node) Receive(from int, msg []byte) {
	var m Message
	if err := json.Unmarshal(msg, &m); err != nil {
		panic(fmt.Sprintf("craft: bad message from %d: %v", from, err))
	}
	switch m.Type {
	case "rv":
		n.handleRequestVote(from, m)
	case "rvr":
		n.handleRequestVoteResponse(from, m)
	case "ae":
		n.handleAppendEntries(from, m)
	case "aer":
		n.handleAppendEntriesResponse(from, m)
	case "snap":
		n.handleSnapshot(from, m)
	default:
		panic(fmt.Sprintf("craft: unknown message type %q", m.Type))
	}
}

func (n *Node) handleRequestVote(from int, m Message) {
	if m.Pre {
		n.handlePreVoteRequest(from, m)
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	last := n.lastIndex()
	upToDate := m.LastTerm > n.logTerm(last) ||
		(m.LastTerm == n.logTerm(last) && m.LastIndex >= last)
	granted := m.Term == n.term && (n.votedFor == -1 || n.votedFor == from) && upToDate
	if granted {
		n.votedFor = from
		n.persist()
		n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	}
	replyTerm := n.term
	if n.bug(bugdb.CRaftWrongTermRead) {
		// BUG(CRaft#9): the reply reads the term from the last log entry
		// instead of the current term, so candidates can never match the
		// response to their election and no leader is ever elected. (The
		// paper found this while modeling the system.)
		replyTerm = n.logTerm(n.lastIndex())
	}
	n.send(from, Message{Type: "rvr", Term: replyTerm, Granted: granted})
}

func (n *Node) handlePreVoteRequest(from int, m Message) {
	granted := m.Term >= n.term
	if granted {
		last := n.lastIndex()
		granted = m.LastTerm > n.logTerm(last) ||
			(m.LastTerm == n.logTerm(last) && m.LastIndex >= last)
	}
	if granted && n.role == Leader && !n.bug(bugdb.DaosLeaderVotes) {
		// A live leader suppresses disruptive candidates by rejecting
		// pre-votes. BUG(DaosRaft#1): with the flag on the check is
		// missing and the leader votes for its own competitor.
		granted = false
	}
	n.send(from, Message{Type: "rvr", Term: n.term, Pre: true, Granted: granted})
}

func (n *Node) handleRequestVoteResponse(from int, m Message) {
	if m.Pre {
		if m.Term > n.term && !m.Granted {
			n.stepDown(m.Term)
			return
		}
		if n.role != PreCandidate || !m.Granted {
			return
		}
		n.prevotes[from] = true
		n.maybeWinPreVote()
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if n.role != Candidate || !m.Granted {
		return
	}
	if m.Term != n.term {
		return
	}
	n.votes[from] = true
	n.maybeWinElection()
}

func (n *Node) handleAppendEntries(from int, m Message) {
	n.allocBuffers++ // receive buffer for the entry batch
	if m.Term < n.term {
		n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		n.releaseBuffer(true)
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	n.yieldToLeader()
	n.electionDeadline = n.env.Now().Add(ElectionTimeout)

	if m.PrevIndex > n.lastIndex() ||
		(m.PrevIndex >= 1 && m.PrevIndex > n.snapIdx && n.logTerm(m.PrevIndex) != m.PrevTerm) {
		if !(m.PrevIndex == 0 && n.bug(bugdb.CRaftFirstEntryAppend)) {
			n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
			n.releaseBuffer(true)
			return
		}
	}

	skipConflictCheck := m.PrevIndex == 0 && n.bug(bugdb.CRaftFirstEntryAppend)
	changed := false
	idx := m.PrevIndex
	for _, e := range m.Entries {
		idx++
		if idx <= n.lastIndex() {
			if idx <= n.snapIdx || skipConflictCheck {
				// BUG(CRaft#1): with the flag on, the first-entry special
				// case skips the conflict check: existing conflicting
				// entries survive.
				continue
			}
			if n.logTerm(idx) != e.Term {
				n.truncateTo(idx - 1)
				n.log = append(n.log, e)
				changed = true
			}
			continue
		}
		n.log = append(n.log, e)
		changed = true
	}
	if changed {
		n.persist()
	}

	var leaderCommit int
	if n.bug(bugdb.CRaftFirstEntryAppend) {
		// BUG(CRaft#1), commit half: the cap uses the local log length
		// instead of the indices this message accounted for, so the
		// follower commits entries the leader never confirmed it has
		// (Figure 7's incorrect commit advance).
		leaderCommit = min(m.Commit, n.lastIndex())
	} else {
		leaderCommit = min(m.Commit, m.PrevIndex+len(m.Entries))
	}
	if leaderCommit > n.commit {
		n.commit = leaderCommit
		n.env.Logf("commit advanced to %d", n.commit)
	}

	n.send(from, Message{Type: "aer", Term: n.term, Flag: true, NextIndex: m.PrevIndex + len(m.Entries) + 1})
	n.releaseBuffer(false)
}

// releaseBuffer frees the receive buffer; BUG(CRaft#6) leaks it on the
// rejection path.
func (n *Node) releaseBuffer(rejected bool) {
	if rejected && n.bug(bugdb.CRaftBufferLeak) {
		return // leaked
	}
	n.allocBuffers--
}

func (n *Node) handleAppendEntriesResponse(from int, m Message) {
	if m.Term > n.term {
		n.stepDown(m.Term)
		return
	}
	if m.Term < n.term {
		if n.bug(bugdb.CRaftTermNonMonotonic) {
			// BUG(CRaft#4): a stale response drags the current term
			// backwards.
			n.term = m.Term
			n.persist()
		}
		return
	}
	if n.role != Leader {
		return
	}
	if m.Flag {
		if nm := m.NextIndex - 1; nm > n.match[from] {
			n.match[from] = nm
		}
		if m.NextIndex > n.next[from] {
			n.next[from] = m.NextIndex
		}
		n.advanceCommit()
		return
	}
	ni := m.NextIndex
	if !n.bug(bugdb.CRaftEmptyRetry) && ni > n.lastIndex() {
		ni = n.lastIndex()
	}
	if !n.bug(bugdb.CRaftNextLEMatch) && ni < n.match[from]+1 {
		// BUG(CRaft#7): without this clamp a delayed rejection drives the
		// next index to or below the match index.
		ni = n.match[from] + 1
	}
	n.next[from] = ni
	// craft retries immediately after a rejection. BUG(CRaft#5): with the
	// flag on it retries even when there is nothing to send, producing
	// AppendEntries retries with empty logs.
	if n.bug(bugdb.CRaftEmptyRetry) || ni <= n.lastIndex() || ni <= n.snapIdx {
		n.sendAppend(from, true)
	}
}

func (n *Node) handleSnapshot(from int, m Message) {
	if m.Term < n.term {
		n.send(from, Message{Type: "aer", Term: n.term, Flag: false, NextIndex: n.lastIndex() + 1})
		return
	}
	if m.Term > n.term {
		n.stepDown(m.Term)
	}
	n.yieldToLeader()
	n.electionDeadline = n.env.Now().Add(ElectionTimeout)
	if m.SnapIndex > n.snapIdx {
		if n.bug(bugdb.CRaftSnapshotReject) && n.lastIndex() >= m.SnapIndex && n.logTerm(m.SnapIndex) != m.SnapTerm {
			// BUG(CRaft#3): the snapshot is rejected when the local log
			// conflicts with it — exactly the situation the snapshot is
			// supposed to repair — so the follower lags behind until the
			// next snapshot round.
			n.env.Logf("snapshot %d@%d rejected: conflicting local log", m.SnapIndex, m.SnapTerm)
			n.send(from, Message{Type: "aer", Term: n.term, Flag: true, NextIndex: n.lastIndex() + 1})
			return
		}
		n.log = nil
		n.snapIdx = m.SnapIndex
		n.snapTerm = m.SnapTerm
		if m.SnapIndex > n.commit {
			n.commit = m.SnapIndex
		}
		n.persist()
		n.env.Logf("installed snapshot %d@%d", n.snapIdx, n.snapTerm)
	}
	n.send(from, Message{Type: "aer", Term: n.term, Flag: true, NextIndex: n.lastIndex() + 1})
}

func (n *Node) advanceCommit() {
	for idx := n.lastIndex(); idx > n.commit; idx-- {
		if n.logTerm(idx) != n.term {
			break
		}
		count := 1
		for p := 0; p < n.env.N(); p++ {
			if p != n.env.ID() && n.match[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commit = idx
			n.env.Logf("commit advanced to %d", n.commit)
			break
		}
	}
}

// Observe implements vos.Process.
func (n *Node) Observe() map[string]string {
	m := map[string]string{
		"role":     n.role.String(),
		"term":     strconv.Itoa(n.term),
		"votedFor": strconv.Itoa(n.votedFor),
		"log":      formatLog(n.log),
		"commit":   strconv.Itoa(n.commit),
		"snapshot": fmt.Sprintf("%d@%d", n.snapIdx, n.snapTerm),
	}
	if n.role == Leader {
		m["next"] = formatPeerInts(n.next, n.env.ID())
		m["match"] = formatPeerInts(n.match, n.env.ID())
	} else {
		m["next"] = "-"
		m["match"] = "-"
	}
	if n.role == Candidate {
		m["votes"] = formatVotes(n.votes)
	} else {
		m["votes"] = "-"
	}
	return m
}

func formatLog(log []Entry) string {
	if len(log) == 0 {
		return "[]"
	}
	parts := make([]string, len(log))
	for i, e := range log {
		parts[i] = fmt.Sprintf("%d:%s", e.Term, e.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatPeerInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatVotes(votes map[int]bool) string {
	ids := make([]int, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, " ") + "}"
}
