package craft_test

import (
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/systems/craft"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func cluster(t *testing.T, n int, opt craft.Options) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(engine.Config{
		Nodes:     n,
		Semantics: vnet.UDP,
		Seed:      1,
		Timeouts: map[string]time.Duration{
			"election":  200 * time.Millisecond,
			"heartbeat": 60 * time.Millisecond,
		},
	}, func(id int) vos.Process { return craft.New(opt) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func apply(t *testing.T, c *engine.Cluster, cmds ...engine.Command) {
	t.Helper()
	for _, cmd := range cmds {
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
}

func elect(t *testing.T, c *engine.Cluster) {
	t.Helper()
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	v, _ := c.Observe(0)
	if v["role"] != "leader" {
		t.Fatalf("node 0 = %v", v)
	}
}

func TestEagerReplicationOnClientRequest(t *testing.T) {
	c := cluster(t, 2, craft.Options{})
	elect(t, c)
	apply(t, c, engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"})
	// The entry was broadcast immediately — the channel holds the initial
	// (empty) AppendEntries plus the eager one.
	if got := c.Network().Len(0, 1); got != 2 {
		t.Fatalf("buffered 0->1 = %d, want 2", got)
	}
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1}, // eager AE (out of order: UDP)
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},           // ack
	)
	v0, _ := c.Observe(0)
	v1, _ := c.Observe(1)
	if v1["log"] != "[1:v1]" || v0["commit"] != "1" {
		t.Errorf("follower log = %s, leader commit = %s", v1["log"], v0["commit"])
	}
}

func TestCompactionAndSnapshotTransfer(t *testing.T) {
	c := cluster(t, 2, craft.Options{})
	elect(t, c)
	apply(t, c,
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "v1"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0, Index: 1},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvRequest, Node: 0, Payload: "!compact"},
	)
	v0, _ := c.Observe(0)
	if v0["snapshot"] != "1@1" || v0["log"] != "[]" {
		t.Fatalf("leader after compaction: snapshot=%s log=%s", v0["snapshot"], v0["log"])
	}
	// A fresh follower (crash wipes nothing durable, so use node restart
	// after dropping its state via a second cluster) — here: force the
	// snapshot path by resetting next through a rejection: simulate with a
	// restarted node that lost nothing; instead verify sendAppend's
	// snapshot path via a lagging next index by crashing and restarting
	// node 1 with its journal intact, then deleting is impossible — so we
	// check the snapshot message directly after an artificial lag:
	apply(t, c, engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"})
	// next[1] = 2 > snapIdx = 1, so a normal AE flows; the follower stays
	// consistent after delivery.
	apply(t, c, engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0})
	v1, _ := c.Observe(1)
	if v1["log"] != "[1:v1]" {
		t.Errorf("follower log = %s", v1["log"])
	}
}

func TestPreVoteRoundBeforeElection(t *testing.T) {
	c := cluster(t, 3, craft.Options{PreVote: true})
	apply(t, c, engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"})
	v0, _ := c.Observe(0)
	if v0["role"] != "precandidate" {
		t.Fatalf("role = %s, want precandidate", v0["role"])
	}
	apply(t, c,
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // prevote rv
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // prevote granted -> real election
	)
	v0, _ = c.Observe(0)
	if v0["role"] != "candidate" || v0["term"] != "1" {
		t.Fatalf("after prevote quorum: %v", v0)
	}
}

func TestLeaderRejectsPreVoteWhenFixed(t *testing.T) {
	c := cluster(t, 2, craft.Options{PreVote: true})
	// Node 0 wins: prevote from 1, then real vote from 1.
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	v0, _ := c.Observe(0)
	if v0["role"] != "leader" {
		t.Fatalf("node 0 = %v", v0)
	}
	// Node 1 asks for a prevote; the live leader must refuse it, so node 1
	// never reaches a real election and node 0 keeps its leadership.
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 1, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1}, // prevote rv at leader
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // initial AE: back to follower
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // prevote refusal (ignored)
	)
	v0, _ = c.Observe(0)
	v1, _ := c.Observe(1)
	if v0["role"] != "leader" || v1["role"] == "candidate" || v1["role"] == "leader" {
		t.Errorf("prevote suppression failed: leader=%v node1=%v", v0["role"], v1["role"])
	}
}

func TestBufferLeakBug(t *testing.T) {
	run := func(bugs bugdb.Set) int {
		c := cluster(t, 2, craft.Options{Bugs: bugs})
		elect(t, c)
		// Produce a rejected AppendEntries: node 1 moves to term 2, then a
		// stale term-1 heartbeat arrives and is rejected.
		apply(t, c,
			engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0}, // initial AE: node1 follower t1
			engine.Command{Type: trace.EvTimeout, Node: 1, Payload: "election"},
			engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"}, // stale AE(t1)
			engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},              // rejected
		)
		n := c.Process(1).(*craft.Node)
		return n.Allocs()
	}
	if leaks := run(bugdb.NoBugs().With(bugdb.CRaftBufferLeak)); leaks == 0 {
		t.Error("buggy build should leak a receive buffer on rejection")
	}
	if leaks := run(bugdb.NoBugs()); leaks != 0 {
		t.Errorf("fixed build leaks %d buffers", leaks)
	}
}

func TestHeartbeatBreakBugSkipsPeers(t *testing.T) {
	// 3 nodes: node 1 crashed; the buggy leader aborts its broadcast at the
	// first disconnected peer and node 2 receives nothing.
	run := func(bugs bugdb.Set) int {
		c := cluster(t, 3, craft.Options{Bugs: bugs})
		elect(t, c)
		apply(t, c,
			engine.Command{Type: trace.EvCrash, Node: 1},
			engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "heartbeat"},
		)
		return c.Network().Len(0, 2)
	}
	before := run(bugdb.NoBugs().With(bugdb.CRaftHeartbeatBreak))
	after := run(bugdb.NoBugs())
	if before >= after {
		t.Errorf("buggy build should send fewer heartbeats to node 2: buggy=%d fixed=%d", before, after)
	}
}

func TestWrongTermReadBlocksElections(t *testing.T) {
	c := cluster(t, 2, craft.Options{Bugs: bugdb.NoBugs().With(bugdb.CRaftWrongTermRead)})
	apply(t, c,
		engine.Command{Type: trace.EvTimeout, Node: 0, Payload: "election"},
		engine.Command{Type: trace.EvDeliver, Node: 1, Peer: 0},
		engine.Command{Type: trace.EvDeliver, Node: 0, Peer: 1},
	)
	v0, _ := c.Observe(0)
	if v0["role"] == "leader" {
		t.Error("with the wrong-term-read defect no leader should ever be elected")
	}
}
