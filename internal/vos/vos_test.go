package vos

import (
	"testing"
)

func TestClockMonotonicOnReads(t *testing.T) {
	c := NewClock()
	prev := c.Now()
	for i := 0; i < 100; i++ {
		now := c.Now()
		if !now.After(prev) {
			t.Fatal("clock reads must be strictly monotonic")
		}
		prev = now
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	before := c.Peek()
	c.Advance(1000)
	if got := c.Peek().Sub(before); got != 1000 {
		t.Fatalf("advance = %v", got)
	}
}

func TestClockStartsAtFixedEpoch(t *testing.T) {
	if !NewClock().Peek().Equal(NewClock().Peek()) {
		t.Fatal("clocks must start identically for reproducibility")
	}
}

func TestStorePersistLoadIsolation(t *testing.T) {
	s := NewStore()
	val := []byte("hello")
	s.Persist("k", val)
	val[0] = 'X' // caller mutation must not leak in
	got, ok := s.Load("k")
	if !ok || string(got) != "hello" {
		t.Fatalf("load = %q, %v", got, ok)
	}
	got[0] = 'Y' // returned copy mutation must not leak back
	again, _ := s.Load("k")
	if string(again) != "hello" {
		t.Fatal("store aliases caller memory")
	}
	if _, ok := s.Load("missing"); ok {
		t.Fatal("missing key reported present")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Wipe()
	if s.Len() != 0 {
		t.Fatal("wipe did not clear")
	}
}

func TestLogBuffer(t *testing.T) {
	var l LogBuffer
	l.Append("line %d", 1)
	l.Append("line %d", 2)
	lines := l.Lines()
	if len(lines) != 2 || lines[0] != "line 1" {
		t.Fatalf("lines = %v", lines)
	}
	lines[0] = "mutated"
	if l.Lines()[0] != "line 1" {
		t.Fatal("Lines aliases internal storage")
	}
	l.Reset()
	if len(l.Lines()) != 0 {
		t.Fatal("reset did not clear")
	}
}
