package vos

import (
	"bytes"
	"strings"
	"testing"
)

func TestBufferedWritesVolatileUntilSync(t *testing.T) {
	s := NewBufferedStore()
	if !s.Buffered() {
		t.Fatal("NewBufferedStore must report Buffered")
	}
	s.Persist("k", []byte("v1"))
	if got, ok := s.Load("k"); !ok || string(got) != "v1" {
		t.Fatalf("read-your-writes before sync: %q, %v", got, ok)
	}
	if s.Unsynced() != 1 {
		t.Fatalf("unsynced = %d, want 1", s.Unsynced())
	}
	s.Crash(CrashLoseUnsynced, 0)
	if _, ok := s.Load("k"); ok {
		t.Fatal("unsynced write survived a dirty crash")
	}

	s.Persist("k", []byte("v2"))
	s.Sync()
	if s.Unsynced() != 0 {
		t.Fatalf("unsynced after sync = %d", s.Unsynced())
	}
	s.Crash(CrashLoseUnsynced, 0)
	if got, ok := s.Load("k"); !ok || string(got) != "v2" {
		t.Fatalf("synced write lost by dirty crash: %q, %v", got, ok)
	}
}

func TestCleanCrashFlushesJournal(t *testing.T) {
	s := NewBufferedStore()
	s.Persist("k", []byte("v"))
	s.Crash(CrashClean, 0)
	if got, ok := s.Load("k"); !ok || string(got) != "v" {
		t.Fatalf("clean crash must preserve buffered writes: %q, %v", got, ok)
	}
}

func TestTornBatchAppliesPrefix(t *testing.T) {
	s := NewBufferedStore()
	s.Persist("a", []byte("1"))
	s.Persist("b", []byte("2"))
	s.Persist("c", []byte("3"))
	s.Crash(CrashTorn, 2)
	for k, want := range map[string]bool{"a": true, "b": true, "c": false} {
		_, ok := s.Load(k)
		if ok != want {
			t.Errorf("after torn cut 2: key %q present=%v, want %v", k, ok, want)
		}
	}
	// Cut beyond the journal is clamped, not a panic.
	s.Persist("d", []byte("4"))
	s.Crash(CrashTorn, 99)
	if _, ok := s.Load("d"); !ok {
		t.Error("clamped torn cut should have applied the whole journal")
	}
}

func TestWriteBatchCommitAndTorn(t *testing.T) {
	s := NewBufferedStore()
	wb := s.Batch()
	wb.Put("x", []byte("1"))
	wb.Put("y", []byte("2"))
	if wb.Len() != 2 {
		t.Fatalf("batch len = %d", wb.Len())
	}
	// Nothing visible before Commit.
	if _, ok := s.Load("x"); ok {
		t.Fatal("batched write visible before Commit")
	}
	wb.Commit()
	if wb.Len() != 0 {
		t.Fatal("Commit must clear the batch")
	}
	if got, _ := s.Load("y"); string(got) != "2" {
		t.Fatal("committed batch not readable")
	}
	// The committed batch is still unsynced: a torn crash can keep a prefix.
	if s.Unsynced() != 2 {
		t.Fatalf("unsynced = %d, want 2", s.Unsynced())
	}
	s.Crash(CrashTorn, 1)
	if _, ok := s.Load("x"); !ok {
		t.Error("torn prefix should retain first batched write")
	}
	if _, ok := s.Load("y"); ok {
		t.Error("torn crash should lose the batch suffix")
	}
}

// TestUnbufferedBatchIsAtomic checks that on an auto-sync store a batch
// commit is durable immediately (legacy semantics preserved).
func TestUnbufferedBatchIsAtomic(t *testing.T) {
	s := NewStore()
	wb := s.Batch()
	wb.Put("x", []byte("1"))
	wb.Commit()
	if s.Unsynced() != 0 {
		t.Fatalf("unsynced = %d on auto-sync store", s.Unsynced())
	}
	s.Crash(CrashLoseUnsynced, 0)
	if _, ok := s.Load("x"); !ok {
		t.Fatal("auto-sync store lost a committed batch")
	}
}

// TestBufferedAliasing extends the aliasing contract to the journal path:
// neither slices handed to Persist/Put nor slices returned by Load may
// share memory with store internals.
func TestBufferedAliasing(t *testing.T) {
	s := NewBufferedStore()
	val := []byte("hello")
	s.Persist("k", val)
	val[0] = 'X' // mutate after journalling
	if got, _ := s.Load("k"); string(got) != "hello" {
		t.Fatalf("journal aliases caller memory: %q", got)
	}
	got, _ := s.Load("k")
	got[0] = 'Y' // mutate the returned copy
	if again, _ := s.Load("k"); string(again) != "hello" {
		t.Fatal("Load returns aliased journal memory")
	}
	s.Sync()
	if after, _ := s.Load("k"); string(after) != "hello" {
		t.Fatalf("sync applied corrupted value: %q", after)
	}

	bval := []byte("batch")
	wb := s.Batch()
	wb.Put("b", bval)
	bval[0] = 'Z' // mutate between Put and Commit
	wb.Commit()
	if got, _ := s.Load("b"); string(got) != "batch" {
		t.Fatalf("WriteBatch aliases caller memory: %q", got)
	}
}

func TestLenCountsJournalKeysOnce(t *testing.T) {
	s := NewBufferedStore()
	s.Persist("a", []byte("1"))
	s.Persist("a", []byte("2")) // same key twice in the journal
	s.Persist("b", []byte("3"))
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	s.Sync()
	if s.Len() != 2 {
		t.Fatalf("len after sync = %d, want 2", s.Len())
	}
	if got, _ := s.Load("a"); string(got) != "2" {
		t.Fatalf("last write wins violated: %q", got)
	}
}

func TestDumpDurableDeterministic(t *testing.T) {
	s := NewBufferedStore()
	s.Persist("b", []byte{0x02})
	s.Persist("a", []byte{0x01})
	s.Sync()
	s.Persist("c", []byte{0x03}) // unsynced: must not appear
	d := s.DumpDurable()
	if !bytes.Equal(d, s.DumpDurable()) {
		t.Fatal("DumpDurable not deterministic")
	}
	txt := string(d)
	if strings.Contains(txt, "c=") {
		t.Fatalf("unsynced key in durable dump:\n%s", txt)
	}
	if strings.Index(txt, "a=") > strings.Index(txt, "b=") {
		t.Fatalf("durable dump not key-sorted:\n%s", txt)
	}
}
