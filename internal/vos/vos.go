// Package vos is the virtual operating-system layer that substitutes for
// SandTable's LD_PRELOAD interposition (§A.1 of the paper).
//
// The paper's interceptor overrides ~20 POSIX APIs inside the target
// process to control every source of nondeterminism: the clock
// (clock_gettime/gettimeofday), the network (send/recv and friends), and
// randomness. Our target systems are Go implementations written against the
// Env interface below, which exposes exactly that controlled surface. The
// deterministic execution engine (internal/engine) owns the Env and fires
// all events, so an execution is a pure function of the command sequence.
package vos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Clock is a per-node virtual clock. Reads advance it by one nanosecond so
// time stays strictly monotonic (the paper's "small predefined increment");
// the engine advances it in larger steps to trigger timeouts without
// waiting for wall-clock time.
type Clock struct {
	now time.Time
}

// NewClock starts the clock at a fixed epoch so executions are reproducible.
func NewClock() *Clock {
	return &Clock{now: time.Unix(1700000000, 0)}
}

// Now returns the current virtual time, bumping it by 1ns.
func (c *Clock) Now() time.Time {
	c.now = c.now.Add(time.Nanosecond)
	return c.now
}

// Peek returns the current virtual time without advancing it.
func (c *Clock) Peek() time.Time { return c.now }

// Advance moves the clock forward by d (engine "advance time" command).
func (c *Clock) Advance(d time.Duration) {
	c.now = c.now.Add(d)
}

// CrashMode selects what happens to a store's unsynced write journal when
// its node crashes. The paper's interposition layer (§A.1) intercepts
// write/fsync precisely so the checker can explore these outcomes; the
// engine picks the mode (and, for torn crashes, the cut point)
// deterministically from its seed.
type CrashMode string

const (
	// CrashClean flushes everything before the crash: no writes are lost.
	// This is the legacy atomic-durability model.
	CrashClean CrashMode = "clean"
	// CrashLoseUnsynced discards the entire unsynced journal: only data
	// that was explicitly Sync()ed survives (fsync-less writes vanish).
	CrashLoseUnsynced CrashMode = "lose-unsynced"
	// CrashTorn persists a prefix of the unsynced journal and discards the
	// rest, modelling a torn multi-write batch interrupted mid-flush.
	CrashTorn CrashMode = "torn-batch"
)

// writeOp is one buffered write awaiting a Sync.
type writeOp struct {
	key   string
	value []byte
}

// Store is a node's durable storage with explicit sync boundaries. It
// substitutes for the paper's write/fsync interposition (§A.1): Persist
// appends to an ordered in-memory journal (the OS page cache), and only
// Sync makes the journalled writes crash-durable. A store created with
// NewStore auto-syncs every write (the legacy atomic model); one created
// with NewBufferedStore keeps writes volatile until Sync, so a dirty crash
// can lose the unsynced tail or tear it at any write boundary.
type Store struct {
	mu       sync.Mutex
	durable  map[string][]byte
	journal  []writeOp
	buffered bool
}

// NewStore returns an empty store in which every Persist is immediately
// durable (auto-sync). Crash-consistency faults cannot lose its writes.
func NewStore() *Store { return &Store{durable: make(map[string][]byte)} }

// NewBufferedStore returns an empty store whose writes stay volatile until
// Sync. Use with the engine's Buffered config to explore dirty crashes.
func NewBufferedStore() *Store {
	return &Store{durable: make(map[string][]byte), buffered: true}
}

// Buffered reports whether writes require an explicit Sync to survive a
// dirty crash.
func (s *Store) Buffered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buffered
}

// Persist records value under key. On an auto-sync store the write is
// immediately durable; on a buffered store it joins the unsynced journal
// (read-your-writes visible via Load, but lost on a dirty crash).
func (s *Store) Persist(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := append([]byte(nil), value...)
	if !s.buffered {
		s.durable[key] = cp
		return
	}
	s.journal = append(s.journal, writeOp{key: key, value: cp})
}

// Sync flushes the journal: every buffered write becomes crash-durable, in
// order. The fsync of the fault model.
func (s *Store) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyJournalLocked(len(s.journal))
}

// applyJournalLocked makes the first n journalled writes durable and drops
// the remainder. Callers hold s.mu.
func (s *Store) applyJournalLocked(n int) {
	for _, op := range s.journal[:n] {
		s.durable[op.key] = op.value
	}
	s.journal = nil
}

// Unsynced reports the number of journalled writes that would be at risk in
// a dirty crash right now.
func (s *Store) Unsynced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.journal)
}

// Crash applies a crash outcome to the store. For CrashClean the journal is
// flushed (nothing lost); for CrashLoseUnsynced it is discarded entirely;
// for CrashTorn the first cut writes are flushed and the rest discarded
// (cut is clamped to the journal length — the engine draws it from its
// deterministic fault stream).
func (s *Store) Crash(mode CrashMode, cut int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch mode {
	case CrashLoseUnsynced:
		s.journal = nil
	case CrashTorn:
		if cut < 0 {
			cut = 0
		}
		if cut > len(s.journal) {
			cut = len(s.journal)
		}
		s.applyJournalLocked(cut)
	default: // CrashClean
		s.applyJournalLocked(len(s.journal))
	}
}

// Load reads the value for key, observing buffered writes (read-your-writes:
// a running process sees the page cache, not the platter).
func (s *Store) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.journal) - 1; i >= 0; i-- {
		if s.journal[i].key == key {
			return append([]byte(nil), s.journal[i].value...), true
		}
	}
	v, ok := s.durable[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Wipe clears the store (used to reset a cluster between traces, NOT on
// crash — crashes preserve durable state).
func (s *Store) Wipe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.durable = make(map[string][]byte)
	s.journal = nil
}

// Len reports the number of visible keys (durable plus buffered).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.durable)
	seen := make(map[string]bool)
	for _, op := range s.journal {
		if _, ok := s.durable[op.key]; !ok && !seen[op.key] {
			seen[op.key] = true
			n++
		}
	}
	return n
}

// DumpDurable renders the crash-durable contents (journal excluded) as a
// canonical byte string: sorted keys, hex-encoded values, one per line.
// Two stores with identical durable state produce byte-identical dumps, so
// confirmation runs can compare persistence outcomes across seeds.
func (s *Store) DumpDurable() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.durable))
	for k := range s.durable {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%x\n", k, s.durable[k])
	}
	return b.Bytes()
}

// WriteBatch groups writes that the caller intends as one logical update.
// Commit journals the writes in order as a unit, but durability is still
// governed by Sync — and a torn crash (CrashTorn) can cut the journal
// *inside* the batch, persisting only a prefix of it. That is exactly the
// torn-write outcome the fault model explores.
type WriteBatch struct {
	s   *Store
	ops []writeOp
}

// Batch starts a new write batch against the store.
func (s *Store) Batch() *WriteBatch { return &WriteBatch{s: s} }

// Put adds one write to the batch.
func (b *WriteBatch) Put(key string, value []byte) {
	b.ops = append(b.ops, writeOp{key: key, value: append([]byte(nil), value...)})
}

// Len reports the number of writes staged in the batch.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Commit journals the batch's writes in order (auto-sync stores flush them
// immediately). The batch can be reused after Commit; its staged writes are
// cleared.
func (b *WriteBatch) Commit() {
	s := b.s
	s.mu.Lock()
	s.journal = append(s.journal, b.ops...)
	if !s.buffered {
		s.applyJournalLocked(len(s.journal))
	}
	s.mu.Unlock()
	b.ops = nil
}

// Env is the controlled syscall surface a node process runs against.
type Env interface {
	// ID is this node's identity (0-based), N the cluster size.
	ID() int
	N() int
	// Now reads the virtual clock (monotonic; engine-controlled).
	Now() time.Time
	// Send transmits a message to peer `to` through the network proxy.
	// Messages to disconnected peers are silently dropped, matching TCP
	// connection breakage under partition/crash.
	Send(to int, msg []byte)
	// Connected reports whether the connection to peer `to` is currently
	// established (a real process observes this as send errors or TCP
	// resets).
	Connected(to int) bool
	// Rand is a deterministic, per-node-seeded random source.
	Rand() *rand.Rand
	// Logf writes to the node's captured log (the engine parses logs to
	// observe state, mirroring the paper's logging-fd interception, §A.4).
	Logf(format string, args ...any)
	// Persist/Load access the durable store that survives crashes.
	Persist(key string, value []byte)
	Load(key string) ([]byte, bool)
	// Sync flushes buffered Persist writes to crash-durable storage (the
	// fsync of the fault model, §A.1). A no-op under the legacy auto-sync
	// store; under a buffered store, writes not yet synced are at risk in
	// a dirty crash.
	Sync()
}

// Process is a node implementation runnable under the engine. All methods
// are invoked by the engine only — never concurrently — which is exactly the
// determinism the paper's interposition enforces on real processes.
type Process interface {
	// Start initialises the node. Called on cluster boot and on restart
	// after a crash (in which case Load reveals the pre-crash durable
	// state).
	Start(env Env)
	// Receive handles one delivered message.
	Receive(from int, msg []byte)
	// Tick is called after the engine advances the virtual clock; the
	// process checks its deadlines and fires any timers that became due.
	Tick()
	// ClientRequest submits one client operation (write value, etc.).
	ClientRequest(payload string)
	// Observe renders the node's state variables for conformance checking
	// (the paper's "query the system's APIs" observation path).
	Observe() map[string]string
}

// LogBuffer captures a node's log output for the log-parsing observation
// path.
type LogBuffer struct {
	mu    sync.Mutex
	lines []string
}

// Append adds a formatted line.
func (l *LogBuffer) Append(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// Lines returns a copy of all captured lines.
func (l *LogBuffer) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

// Reset clears the buffer.
func (l *LogBuffer) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = nil
}
