// Package vos is the virtual operating-system layer that substitutes for
// SandTable's LD_PRELOAD interposition (§A.1 of the paper).
//
// The paper's interceptor overrides ~20 POSIX APIs inside the target
// process to control every source of nondeterminism: the clock
// (clock_gettime/gettimeofday), the network (send/recv and friends), and
// randomness. Our target systems are Go implementations written against the
// Env interface below, which exposes exactly that controlled surface. The
// deterministic execution engine (internal/engine) owns the Env and fires
// all events, so an execution is a pure function of the command sequence.
package vos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Clock is a per-node virtual clock. Reads advance it by one nanosecond so
// time stays strictly monotonic (the paper's "small predefined increment");
// the engine advances it in larger steps to trigger timeouts without
// waiting for wall-clock time.
type Clock struct {
	now time.Time
}

// NewClock starts the clock at a fixed epoch so executions are reproducible.
func NewClock() *Clock {
	return &Clock{now: time.Unix(1700000000, 0)}
}

// Now returns the current virtual time, bumping it by 1ns.
func (c *Clock) Now() time.Time {
	c.now = c.now.Add(time.Nanosecond)
	return c.now
}

// Peek returns the current virtual time without advancing it.
func (c *Clock) Peek() time.Time { return c.now }

// Advance moves the clock forward by d (engine "advance time" command).
func (c *Clock) Advance(d time.Duration) {
	c.now = c.now.Add(d)
}

// Store is a node's durable storage: the data that survives a crash. The
// paper's node-crash model clears all volatile data but preserves persistent
// data (e.g. Raft's currentTerm, votedFor, and log).
type Store struct {
	mu   sync.Mutex
	data map[string][]byte
}

// NewStore returns an empty durable store.
func NewStore() *Store { return &Store{data: make(map[string][]byte)} }

// Persist durably records value under key.
func (s *Store) Persist(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = append([]byte(nil), value...)
}

// Load reads the durable value for key.
func (s *Store) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Wipe clears the store (used to reset a cluster between traces, NOT on
// crash — crashes preserve durable state).
func (s *Store) Wipe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte)
}

// Len reports the number of persisted keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Env is the controlled syscall surface a node process runs against.
type Env interface {
	// ID is this node's identity (0-based), N the cluster size.
	ID() int
	N() int
	// Now reads the virtual clock (monotonic; engine-controlled).
	Now() time.Time
	// Send transmits a message to peer `to` through the network proxy.
	// Messages to disconnected peers are silently dropped, matching TCP
	// connection breakage under partition/crash.
	Send(to int, msg []byte)
	// Connected reports whether the connection to peer `to` is currently
	// established (a real process observes this as send errors or TCP
	// resets).
	Connected(to int) bool
	// Rand is a deterministic, per-node-seeded random source.
	Rand() *rand.Rand
	// Logf writes to the node's captured log (the engine parses logs to
	// observe state, mirroring the paper's logging-fd interception, §A.4).
	Logf(format string, args ...any)
	// Persist/Load access the durable store that survives crashes.
	Persist(key string, value []byte)
	Load(key string) ([]byte, bool)
}

// Process is a node implementation runnable under the engine. All methods
// are invoked by the engine only — never concurrently — which is exactly the
// determinism the paper's interposition enforces on real processes.
type Process interface {
	// Start initialises the node. Called on cluster boot and on restart
	// after a crash (in which case Load reveals the pre-crash durable
	// state).
	Start(env Env)
	// Receive handles one delivered message.
	Receive(from int, msg []byte)
	// Tick is called after the engine advances the virtual clock; the
	// process checks its deadlines and fires any timers that became due.
	Tick()
	// ClientRequest submits one client operation (write value, etc.).
	ClientRequest(payload string)
	// Observe renders the node's state variables for conformance checking
	// (the paper's "query the system's APIs" observation path).
	Observe() map[string]string
}

// LogBuffer captures a node's log output for the log-parsing observation
// path.
type LogBuffer struct {
	mu    sync.Mutex
	lines []string
}

// Append adds a formatted line.
func (l *LogBuffer) Append(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// Lines returns a copy of all captured lines.
func (l *LogBuffer) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

// Reset clears the buffer.
func (l *LogBuffer) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = nil
}
