// Package trace defines the event and trace formats shared between the
// specification-level explorer and the implementation-level execution engine.
//
// A specification-level exploration produces a Trace: the event sequence that
// drove the specification state machine plus, for each step, the values of
// the specification variables after the step. SandTable converts trace events
// into deterministic-execution commands (conformance checking, §3.2, and bug
// confirmation, §3.4 of the paper), so the event vocabulary here mirrors the
// node-level events the paper's engine controls: message delivery, timeouts,
// client requests, node crashes/restarts, and network failures.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EventType enumerates the node-level event kinds SandTable schedules.
type EventType string

// Event kinds. Deliver/Timeout/Request/Crash/Restart are common to all
// systems; Partition/Recover apply to the TCP failure model; Drop/Duplicate
// and out-of-order delivery (Deliver with Index > 0) apply to UDP semantics.
const (
	EvDeliver EventType = "DeliverMessage"
	EvTimeout EventType = "Timeout"
	EvRequest EventType = "ClientRequest"
	EvCrash   EventType = "NodeCrash"
	// EvCrashDirty is a crash with realistic durability: the payload names
	// the vos.CrashMode ("lose-unsynced" or "torn-batch") deciding the fate
	// of the node's unsynced write journal.
	EvCrashDirty EventType = "NodeCrashDirty"
	EvRestart    EventType = "NodeStart"
	EvPartition  EventType = "NetworkPartition"
	EvRecover    EventType = "NetworkRecover"
	EvDrop       EventType = "MessageDrop"
	EvDuplicate  EventType = "MessageDuplicate"
	EvInternal   EventType = "Internal"
)

// Event is one scheduled node-level event. Node is the event's primary node
// (the destination for deliveries, the crashing/restarting node, the timeout
// owner). Peer is the counterpart (source node for deliveries; the other
// side of a partition). Index selects a buffered message for UDP semantics
// (0 = head, which is the only legal choice under TCP semantics). Payload
// carries the client-request value or the timeout kind.
type Event struct {
	Type    EventType         `json:"type"`
	Action  string            `json:"action"`
	Node    int               `json:"node"`
	Peer    int               `json:"peer,omitempty"`
	Index   int               `json:"index,omitempty"`
	Payload string            `json:"payload,omitempty"`
	Detail  map[string]string `json:"detail,omitempty"`
}

// String renders the event compactly for logs and counterexample listings.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", e.Action)
	switch e.Type {
	case EvDeliver:
		fmt.Fprintf(&b, " %d->%d", e.Peer, e.Node)
		if e.Index > 0 {
			fmt.Fprintf(&b, " [%d]", e.Index)
		}
	case EvTimeout:
		fmt.Fprintf(&b, " n%d %s", e.Node, e.Payload)
	case EvRequest:
		fmt.Fprintf(&b, " n%d %q", e.Node, e.Payload)
	case EvCrash, EvRestart:
		fmt.Fprintf(&b, " n%d", e.Node)
	case EvCrashDirty:
		fmt.Fprintf(&b, " n%d %s", e.Node, e.Payload)
	case EvPartition, EvRecover:
		fmt.Fprintf(&b, " n%d|n%d", e.Node, e.Peer)
	case EvDrop, EvDuplicate:
		fmt.Fprintf(&b, " %d->%d [%d]", e.Peer, e.Node, e.Index)
	}
	return b.String()
}

// Matches reports whether two events denote the same scheduled action:
// equal type, action, nodes, buffered-message index, and payload. Detail is
// ignored — it carries free-form annotations, not scheduling identity. The
// trace minimizer uses this to guide candidate sub-traces through the
// specification machine.
func (e Event) Matches(o Event) bool {
	return e.Type == o.Type && e.Action == o.Action && e.Node == o.Node &&
		e.Peer == o.Peer && e.Index == o.Index && e.Payload == o.Payload
}

// Step is one trace entry: the event taken and the specification state
// (rendered variable map and fingerprint) reached after the event.
type Step struct {
	Event       Event             `json:"event"`
	Vars        map[string]string `json:"vars,omitempty"`
	Fingerprint uint64            `json:"fingerprint"`
}

// Trace is a full specification-level execution: system name, the model
// configuration it was generated under, the initial state, and the steps.
type Trace struct {
	System string            `json:"system"`
	Config map[string]int    `json:"config,omitempty"`
	Init   map[string]string `json:"init,omitempty"`
	Steps  []Step            `json:"steps"`
}

// Events returns just the event sequence of the trace.
func (t *Trace) Events() []Event {
	evs := make([]Event, len(t.Steps))
	for i, s := range t.Steps {
		evs[i] = s.Event
	}
	return evs
}

// Depth returns the number of events in the trace.
func (t *Trace) Depth() int { return len(t.Steps) }

// Encode writes the trace as JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads a JSON trace.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("decode trace: %w", err)
	}
	return &t, nil
}

// Format renders a human-readable counterexample listing: one line per step
// with the event, followed (optionally) by the variables that changed.
func (t *Trace) Format(showVars bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace for %s (%d events)\n", t.System, len(t.Steps))
	prev := t.Init
	for i, s := range t.Steps {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, s.Event.String())
		if showVars && s.Vars != nil {
			for _, k := range sortedKeys(s.Vars) {
				if prev == nil || prev[k] != s.Vars[k] {
					fmt.Fprintf(&b, "       %s = %s\n", k, s.Vars[k])
				}
			}
			prev = s.Vars
		}
	}
	return b.String()
}

// DiffVars returns the keys at which two variable maps differ, sorted.
func DiffVars(a, b map[string]string) []string {
	var keys []string
	for k, va := range a {
		if vb, ok := b[k]; ok && va != vb {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
