package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Trace {
	return &Trace{
		System: "demo",
		Config: map[string]int{"MaxTimeouts": 3},
		Init:   map[string]string{"x": "0"},
		Steps: []Step{
			{Event: Event{Type: EvTimeout, Action: "TimeoutElection", Node: 0, Payload: "election"}, Vars: map[string]string{"x": "1"}, Fingerprint: 10},
			{Event: Event{Type: EvDeliver, Action: "HandleRequestVote", Node: 1, Peer: 0}, Vars: map[string]string{"x": "2"}, Fingerprint: 20},
			{Event: Event{Type: EvPartition, Action: "NetworkPartition", Node: 0, Peer: 1}, Fingerprint: 30},
			{Event: Event{Type: EvRequest, Action: "ClientRequest", Node: 1, Payload: "v1"}, Fingerprint: 40},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.System != tr.System || got.Depth() != tr.Depth() {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Steps {
		if got.Steps[i].Event.String() != tr.Steps[i].Event.String() {
			t.Errorf("step %d differs", i)
		}
		if got.Steps[i].Fingerprint != tr.Steps[i].Fingerprint {
			t.Errorf("fingerprint %d differs", i)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := map[string]Event{
		"HandleRequestVote 0->1":      {Type: EvDeliver, Action: "HandleRequestVote", Node: 1, Peer: 0},
		"TimeoutElection n2 election": {Type: EvTimeout, Action: "TimeoutElection", Node: 2, Payload: "election"},
		"NodeCrash n1":                {Type: EvCrash, Action: "NodeCrash", Node: 1},
		"NetworkPartition n0|n2":      {Type: EvPartition, Action: "NetworkPartition", Node: 0, Peer: 2},
		"DropMessage 1->0 [2]":        {Type: EvDrop, Action: "DropMessage", Node: 0, Peer: 1, Index: 2},
	}
	for want, ev := range cases {
		if got := ev.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestFormatShowsChangedVars(t *testing.T) {
	out := sample().Format(true)
	if !strings.Contains(out, "x = 1") || !strings.Contains(out, "x = 2") {
		t.Errorf("format missing changed vars:\n%s", out)
	}
	if !strings.Contains(out, "4 events") {
		t.Errorf("format missing event count")
	}
}

func TestDiffVars(t *testing.T) {
	a := map[string]string{"x": "1", "y": "2", "z": "3"}
	b := map[string]string{"x": "1", "y": "9", "w": "0"}
	diff := DiffVars(a, b)
	if len(diff) != 1 || diff[0] != "y" {
		t.Errorf("diff = %v, want [y]", diff)
	}
}

func TestDiagramRendersArrowsAndLocalEvents(t *testing.T) {
	d := sample().Diagram(2, nil)
	if !strings.Contains(d, "n0") || !strings.Contains(d, "n1") {
		t.Error("missing node headers")
	}
	if !strings.Contains(d, ">") {
		t.Error("missing delivery arrow")
	}
	if !strings.Contains(d, "PARTITION") {
		t.Error("missing partition annotation")
	}
	if !strings.Contains(d, "*") {
		t.Error("missing local event marker")
	}
	// Every row must have consistent width (column alignment).
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	for _, l := range lines[1:] {
		if len(l) > 2*28 {
			t.Errorf("row too wide (%d): %q", len(l), l)
		}
	}
}

func TestEventMatches(t *testing.T) {
	base := Event{Type: EvDeliver, Action: "HandleX", Node: 1, Peer: 0, Index: 2, Payload: "p"}
	if !base.Matches(base) {
		t.Error("event does not match itself")
	}
	withDetail := base
	withDetail.Detail = map[string]string{"note": "x"}
	if !base.Matches(withDetail) {
		t.Error("detail must not affect matching")
	}
	for _, mut := range []func(*Event){
		func(e *Event) { e.Type = EvTimeout },
		func(e *Event) { e.Action = "HandleY" },
		func(e *Event) { e.Node = 2 },
		func(e *Event) { e.Peer = 1 },
		func(e *Event) { e.Index = 0 },
		func(e *Event) { e.Payload = "q" },
	} {
		ev := base
		mut(&ev)
		if base.Matches(ev) {
			t.Errorf("mutated event %v must not match %v", ev, base)
		}
	}
}

func TestEventsAccessor(t *testing.T) {
	evs := sample().Events()
	if len(evs) != 4 || evs[0].Action != "TimeoutElection" {
		t.Errorf("events = %v", evs)
	}
}
