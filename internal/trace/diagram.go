package trace

import (
	"fmt"
	"strings"
)

// Diagram renders a trace as an ASCII space-time diagram in the style of the
// paper's Figures 6 and 7: one column per node, message deliveries drawn as
// arrows between columns, local events (timeouts, crashes, client requests)
// annotated on the owning node's column.
//
// nodes is the number of node columns; labels optionally names them
// (defaults to n0..nk). Each step occupies one row.
func (t *Trace) Diagram(nodes int, labels []string) string {
	const colWidth = 28
	if labels == nil {
		labels = make([]string, nodes)
		for i := range labels {
			labels[i] = fmt.Sprintf("n%d", i)
		}
	}
	var b strings.Builder
	// Header row.
	for i := 0; i < nodes; i++ {
		b.WriteString(pad(labels[i], colWidth))
	}
	b.WriteByte('\n')
	for i := 0; i < nodes; i++ {
		b.WriteString(pad("|", colWidth))
	}
	b.WriteByte('\n')

	for _, s := range t.Steps {
		e := s.Event
		switch e.Type {
		case EvDeliver:
			b.WriteString(arrowRow(e.Peer, e.Node, e.Action+annot(e), nodes, colWidth))
		case EvDrop, EvDuplicate:
			b.WriteString(arrowRow(e.Peer, e.Node, string(e.Type)+annot(e), nodes, colWidth))
		case EvPartition, EvRecover:
			label := "PARTITION"
			if e.Type == EvRecover {
				label = "HEAL"
			}
			b.WriteString(spanRow(e.Node, e.Peer, label, nodes, colWidth))
		default:
			b.WriteString(localRow(e.Node, e.String(), nodes, colWidth))
		}
	}
	return b.String()
}

func annot(e Event) string {
	if len(e.Detail) == 0 {
		return ""
	}
	parts := make([]string, 0, len(e.Detail))
	for _, k := range sortedKeys(e.Detail) {
		parts = append(parts, k+"="+e.Detail[k])
	}
	return " {" + strings.Join(parts, ",") + "}"
}

// arrowRow draws "|----label--->|" from column src to column dst.
func arrowRow(src, dst int, label string, nodes, w int) string {
	lo, hi := src, dst
	right := true
	if src > dst {
		lo, hi = dst, src
		right = false
	}
	var b strings.Builder
	for i := 0; i < nodes; i++ {
		switch {
		case i < lo || i > hi:
			b.WriteString(pad("|", w))
		case i == lo:
			span := (hi - lo) * w
			b.WriteString(drawArrow(span, label, right))
		case i == hi:
			b.WriteString(pad("|", w))
		default:
			// Interior columns are covered by the arrow span drawn at lo.
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func drawArrow(span int, label string, right bool) string {
	body := span - 2 // room for the endpoints' pipes
	if body < len(label)+4 {
		label = truncate(label, body-4)
	}
	dashes := body - len(label)
	left := dashes / 2
	rightN := dashes - left
	var b strings.Builder
	b.WriteByte('|')
	if right {
		b.WriteString(strings.Repeat("-", left))
		b.WriteString(label)
		b.WriteString(strings.Repeat("-", max(0, rightN-1)))
		b.WriteByte('>')
	} else {
		b.WriteByte('<')
		b.WriteString(strings.Repeat("-", max(0, left-1)))
		b.WriteString(label)
		b.WriteString(strings.Repeat("-", rightN))
	}
	b.WriteByte('|')
	// Result is span characters wide; caller accounts for both endpoints.
	return b.String()[:span]
}

func spanRow(a, b int, label string, nodes, w int) string {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	var s strings.Builder
	for i := 0; i < nodes; i++ {
		if i == lo {
			span := (hi - lo) * w
			text := "~~ " + label + " ~~"
			s.WriteString(pad("|"+center(text, span-1), span))
			continue
		}
		if i > lo && i <= hi {
			continue
		}
		s.WriteString(pad("|", w))
	}
	s.WriteByte('\n')
	return s.String()
}

func localRow(node int, label string, nodes, w int) string {
	var b strings.Builder
	for i := 0; i < nodes; i++ {
		if i == node {
			b.WriteString(pad("* "+truncate(label, w-3), w))
		} else {
			b.WriteString(pad("|", w))
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}

func center(s string, w int) string {
	if len(s) >= w {
		return truncate(s, w)
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

func truncate(s string, n int) string {
	if n < 1 {
		return ""
	}
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "~"
}
