// Package integrations wires each target system into the SandTable
// framework: the specification factory, the implementation cluster factory
// (node processes, transport semantics, timeout tables — the per-system
// knowledge §4.2 describes), the state observation path, and the
// implementation-level cost model calibrated from the paper's §5.3
// measurements (see the substitution table in DESIGN.md).
package integrations

import (
	"fmt"
	"sort"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// registry holds all integrated systems, keyed by name.
var registry = map[string]*sandtable.System{}

func register(s *sandtable.System) { registry[s.Name] = s }

// Get returns the integration for a system name.
func Get(name string) (*sandtable.System, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("integrations: unknown system %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the integrated systems, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every integration in name order.
func All() []*sandtable.System {
	var out []*sandtable.System
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// VerificationBugs re-exports bugdb.VerificationBugs for convenience.
func VerificationBugs(system string) bugdb.Set { return bugdb.VerificationBugs(system) }

// Session builds the standard checking session for a system: its default
// configuration and budget with the verification-stage defect set.
func Session(name string) (*sandtable.SandTable, error) {
	sys, err := Get(name)
	if err != nil {
		return nil, err
	}
	return sandtable.New(sys, sys.DefaultConfig, sys.DefaultBudget, VerificationBugs(name)), nil
}

// Standard timeout tables: the engine advances the virtual clock by these
// amounts to fire the corresponding timer kinds (§3.2: "the user needs to
// provide timeout values for timeout events").
func raftTimeouts() map[string]time.Duration {
	return map[string]time.Duration{
		"election":  200 * time.Millisecond,
		"heartbeat": 60 * time.Millisecond,
	}
}

// defaultBudget is the bug-hunting constraint family of §5.1 (scaled to the
// repository's seconds-scale experiments): a handful of timeouts, a couple
// of client requests, a failure or two, and a small message buffer bound.
func defaultBudget() spec.Budget {
	return spec.Budget{
		Name:        "hunt",
		MaxTimeouts: 6, MaxCrashes: 1, MaxRestarts: 1,
		MaxRequests: 2, MaxPartitions: 1, MaxDrops: 2, MaxDuplicates: 1,
		MaxBuffer: 4, MaxCompactions: 1,
	}
}

// costModel returns the §5.3-calibrated implementation-exploration cost for
// a system: per-trace time ≈ init + depth × per-event, matching Table 4's
// measured averages (e.g. gosyncobj ≈ 1.8 s/trace, xraft ≈ 24 s/trace).
func costModel(init, perEvent time.Duration) engine.CostModel {
	return engine.CostModel{
		ClusterInit: init,
		PerEvent:    perEvent,
		PerTimeout:  perEvent / 2,
		PerRequest:  perEvent / 2,
		PerRestart:  init / 4,
	}
}

// newSession builds a session with explicit config and defect set (test and
// tooling helper).
func newSession(sys *sandtable.System, cfg spec.Config, bugs bugdb.Set) *sandtable.SandTable {
	return sandtable.New(sys, cfg, sys.DefaultBudget, bugs)
}
