package integrations

import (
	"fmt"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	specasync "github.com/sandtable-go/sandtable/internal/specs/asyncraft"
	speccraft "github.com/sandtable-go/sandtable/internal/specs/craft"
	specdaos "github.com/sandtable-go/sandtable/internal/specs/daosraft"
	specredis "github.com/sandtable-go/sandtable/internal/specs/redisraft"
	specxraft "github.com/sandtable-go/sandtable/internal/specs/xraft"
	specxkv "github.com/sandtable-go/sandtable/internal/specs/xraftkv"
	sysasync "github.com/sandtable-go/sandtable/internal/systems/asyncraft"
	syscraft "github.com/sandtable-go/sandtable/internal/systems/craft"
	sysxraft "github.com/sandtable-go/sandtable/internal/systems/xraft"
	sysxkv "github.com/sandtable-go/sandtable/internal/systems/xraftkv"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// craftLeakCheck is the conformance resource check that catches CRaft#6:
// after every event all receive buffers must have been released.
func craftLeakCheck(c *engine.Cluster) error {
	for i := 0; i < c.N(); i++ {
		p := c.Process(i)
		if p == nil {
			continue
		}
		if n, ok := p.(*syscraft.Node); ok && n.Allocs() > 0 {
			return fmt.Errorf("resource check: node %d leaks %d receive buffer(s)", i, n.Allocs())
		}
	}
	return nil
}

func craftCluster(semantics vnet.Semantics, preVote bool, init, perEvent time.Duration) func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
	return func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
		return engine.NewCluster(engine.Config{
			Nodes:     cfg.Nodes,
			Semantics: semantics,
			Seed:      seed,
			Timeouts:  raftTimeouts(),
			Cost:      costModel(init, perEvent),
		}, func(id int) vos.Process {
			return syscraft.New(syscraft.Options{PreVote: preVote, Bugs: bugs})
		})
	}
}

func init() {
	// craft: the upstream C library — UDP semantics, log compaction.
	// Table 4: WRaft averaged ~2.5 s per replayed trace (sleepless driver).
	register(&sandtable.System{
		Name:          "craft",
		DefaultConfig: spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return speccraft.New(cfg, b, bugs)
		},
		NewCluster:    craftCluster(vnet.UDP, false, 2250*time.Millisecond, 5*time.Millisecond),
		ResourceCheck: craftLeakCheck,
	})

	// redisraft: the craft fork with PreVote and upstream bugs #2/#4/#6/#9
	// fixed, deployed over TCP. Table 4: ~1.8 s/trace.
	register(&sandtable.System{
		Name:          "redisraft",
		DefaultConfig: spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return specredis.New(cfg, b, bugs)
		},
		NewCluster:    craftCluster(vnet.TCP, true, 1580*time.Millisecond, 5*time.Millisecond),
		ResourceCheck: craftLeakCheck,
	})

	// daosraft: the craft fork in the DAOS storage stack, PreVote over TCP.
	// Table 4: ~2.1 s/trace.
	register(&sandtable.System{
		Name:          "daosraft",
		DefaultConfig: spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return specdaos.New(cfg, b, bugs)
		},
		NewCluster:    craftCluster(vnet.TCP, true, 1875*time.Millisecond, 5*time.Millisecond),
		ResourceCheck: craftLeakCheck,
	})

	// asyncraft: the asyncio object replicator over UDP. Table 4: RaftOS
	// averaged ~4.8 s/trace because the driver must sleep around async
	// actions.
	register(&sandtable.System{
		Name:          "asyncraft",
		DefaultConfig: spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return specasync.New(cfg, b, bugs)
		},
		NewCluster: func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{
				Nodes:     cfg.Nodes,
				Semantics: vnet.UDP,
				Seed:      seed,
				Timeouts:  raftTimeouts(),
				Cost:      costModel(1700*time.Millisecond, 100*time.Millisecond),
			}, func(id int) vos.Process { return sysasync.New(bugs) })
		},
	})

	// xraft: the teaching Raft on the JVM — startup and synchronisation
	// sleeps dominate. Table 4: ~24 s/trace.
	register(&sandtable.System{
		Name:          "xraft",
		DefaultConfig: spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return specxraft.New(cfg, b, bugs)
		},
		NewCluster: func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{
				Nodes:     cfg.Nodes,
				Semantics: vnet.TCP,
				Seed:      seed,
				Timeouts:  raftTimeouts(),
				Cost:      costModel(16700*time.Millisecond, 200*time.Millisecond),
			}, func(id int) vos.Process {
				return sysxraft.New(sysxraft.Options{PreVote: true, Bugs: bugs})
			})
		},
	})

	// xraftkv: the KV store on xraft (no PreVote). Table 4: ~24 s/trace.
	register(&sandtable.System{
		Name:          "xraftkv",
		DefaultConfig: spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return specxkv.New(cfg, b, bugs)
		},
		NewCluster: func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{
				Nodes:     cfg.Nodes,
				Semantics: vnet.TCP,
				Seed:      seed,
				Timeouts:  raftTimeouts(),
				Cost:      costModel(17000*time.Millisecond, 200*time.Millisecond),
			}, func(id int) vos.Process { return sysxkv.New(bugs) })
		},
	})
}
