package integrations

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// TestAllSystemsConform is the repository's §3.2 gate: for every integrated
// Raft-family system, random specification traces replay on the
// implementation with every compared variable agreeing after every event —
// in the aligned verification build and in the fully fixed build.
func TestAllSystemsConform(t *testing.T) {
	for _, name := range []string{"gosyncobj", "craft", "redisraft", "daosraft", "asyncraft", "xraft", "xraftkv", "zabkeeper"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
			for _, bugs := range []bugdb.Set{bugdb.VerificationBugs(name), bugdb.NoBugs()} {
				st := sandtable.New(sys, cfg, defaultBudget(), bugs)
				rep, err := st.Conform(conformance.Options{Walks: 100, WalkDepth: 25, Seed: 20})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Passed() {
					t.Fatalf("bugs=%v:\n%v\ntrace:\n%s", bugs, rep.Discrepancy, rep.Discrepancy.Trace.Format(false))
				}
			}
		})
	}
}
