package integrations

import (
	"strconv"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// TestLogParsingObservationAgreesWithAPI exercises the paper's second state
// observation path (§A.4: parse debug logs with regular expressions when a
// system has no query API): a commit-index log observer must agree with the
// direct Observe API along a real replayed counterexample trace.
func TestLogParsingObservationAgreesWithAPI(t *testing.T) {
	sys, err := Get("gosyncobj")
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}
	st := newSession(sys, cfg, bugdb.NoBugs().With(bugdb.GSOCommitOldTerm))
	res := st.Check(explorer.DefaultOptions())
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("no counterexample to replay")
	}
	cluster, err := sys.NewCluster(cfg, st.ImplBugs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Run(v.Trace, cluster, replay.Options{}); err != nil {
		t.Fatal(err)
	}
	obs, err := engine.NewLogObserver(map[string]string{
		"commit": `commit advanced to (\d+)`,
		"term":   `election started term=(\d+)`,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cluster.N(); i++ {
		api, err := cluster.Observe(i)
		if err != nil {
			t.Fatal(err)
		}
		logs, err := cluster.ObserveLogs(i, obs)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := logs["commit"]; ok && got != api["commit"] {
			t.Errorf("node %d: log-parsed commit %s != API commit %s", i, got, api["commit"])
		}
		if got, ok := logs["commit"]; !ok {
			_ = got
		} else if _, err := strconv.Atoi(got); err != nil {
			t.Errorf("node %d: log-parsed commit %q is not a number", i, got)
		}
	}
}
