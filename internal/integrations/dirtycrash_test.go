package integrations

import (
	"bytes"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// dirtyBudget bounds the search to the shortest crash-consistency
// counterexample: elect a leader, commit one entry, dirty-crash a follower.
func dirtyBudget() spec.Budget {
	return spec.Budget{
		Name:            "dirty",
		MaxTimeouts:     3,
		MaxRequests:     1,
		MaxCrashes:      1,
		MaxDirtyCrashes: 1,
		MaxBuffer:       4,
	}
}

// The tentpole acceptance check: with the fsync-skipping defect enabled and
// a dirty-crash budget, spec-level model checking produces a LogDurability
// counterexample (a committed entry lost with the unsynced log suffix), and
// deterministic replay confirms it at the implementation level.
func TestDirtyCrashCounterexampleConfirmed(t *testing.T) {
	st := gsoSession(t, bugdb.NoBugs().With(bugdb.GSOUnsyncedLog))
	st.Budget = dirtyBudget()
	res := st.Check(explorer.DefaultOptions())
	v := res.FirstViolation()
	if v == nil {
		t.Fatalf("model checking found no violation (%d states)", res.DistinctStates)
	}
	if v.Invariant != "LogDurability" {
		t.Fatalf("violated %s, want LogDurability:\n%v", v.Invariant, v.Err)
	}
	dirty := false
	for _, e := range v.Trace.Events() {
		if e.Type == trace.EvCrashDirty {
			dirty = true
		}
	}
	if !dirty {
		t.Fatalf("counterexample has no dirty-crash step:\n%s", v.Trace.Format(false))
	}
	conf, err := st.Confirm(v)
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Confirmed {
		t.Fatalf("bug not confirmed at implementation level: %s", conf.Divergence.Describe())
	}
}

// Without the defect the same budget finds no violation: the fault model
// itself must not create false alarms on correct fsync placement.
func TestDirtyCrashNoFalseAlarmWhenSynced(t *testing.T) {
	st := gsoSession(t, bugdb.NoBugs())
	b := dirtyBudget() // trimmed so exhausting the space stays fast
	b.MaxTimeouts = 2
	b.MaxBuffer = 3
	st.Budget = b
	res := st.Check(explorer.DefaultOptions())
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("correct implementation's spec violated %s:\n%s", v.Invariant, v.Trace.Format(false))
	}
	if !res.Exhausted {
		t.Fatalf("bounded space not exhausted: %s", res.StopReason)
	}
}

// Replaying the counterexample twice with the same seed must leave both
// implementation clusters with byte-identical durable stores — the paper's
// determinism requirement extended to the persistence layer.
func TestDirtyCrashReplayDurableStateDeterministic(t *testing.T) {
	st := gsoSession(t, bugdb.NoBugs().With(bugdb.GSOUnsyncedLog))
	st.Budget = dirtyBudget()
	res := st.Check(explorer.DefaultOptions())
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("model checking found no violation")
	}
	var dumps [][]byte
	for run := 0; run < 2; run++ {
		cluster, err := st.Sys.NewCluster(st.Config, st.ImplBugs, 1)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		conf, err := replay.ConfirmBug(v.Trace, cluster, replay.Options{
			IgnoreVars: st.Sys.IgnoreVars, Observe: st.Sys.Observe, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The injected fault shows up in the metrics registry, and from
		// there in any -metrics-out snapshot.
		if got := reg.Counter("engine.faults.dirty_crashes").Value(); got != 1 {
			t.Errorf("run %d: engine.faults.dirty_crashes = %d, want 1", run, got)
		}
		if !conf.Confirmed {
			t.Fatalf("run %d not confirmed: %s", run, conf.Divergence.Describe())
		}
		dumps = append(dumps, cluster.DumpDurable())
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Fatalf("same-seed replays left different durable state:\n%s\nvs\n%s", dumps[0], dumps[1])
	}
}
