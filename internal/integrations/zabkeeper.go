package integrations

import (
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	speczab "github.com/sandtable-go/sandtable/internal/specs/zabkeeper"
	syszab "github.com/sandtable-go/sandtable/internal/systems/zabkeeper"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func init() {
	register(&sandtable.System{
		Name:          "zabkeeper",
		DefaultConfig: spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}},
		DefaultBudget: spec.Budget{
			Name:        "hunt",
			MaxTimeouts: 6, MaxCrashes: 1, MaxRestarts: 1,
			MaxRequests: 3, MaxPartitions: 1, MaxBuffer: 4,
		},
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return speczab.New(cfg, b, bugs)
		},
		NewCluster: func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{
				Nodes:     cfg.Nodes,
				Semantics: vnet.TCP,
				Seed:      seed,
				Timeouts:  map[string]time.Duration{"election": 200 * time.Millisecond},
				// Table 4: ZooKeeper averaged ~28 s per replayed trace (JVM
				// startup plus synchronisation sleeps).
				Cost: costModel(14600*time.Millisecond, 300*time.Millisecond),
			}, func(id int) vos.Process { return syszab.New(bugs) })
		},
	})
}
