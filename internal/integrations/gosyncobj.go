package integrations

import (
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
	specgso "github.com/sandtable-go/sandtable/internal/specs/gosyncobj"
	sysgso "github.com/sandtable-go/sandtable/internal/systems/gosyncobj"
	"github.com/sandtable-go/sandtable/internal/vnet"
	"github.com/sandtable-go/sandtable/internal/vos"
)

func init() {
	register(&sandtable.System{
		Name:          "gosyncobj",
		DefaultConfig: spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}},
		DefaultBudget: defaultBudget(),
		NewMachine: func(cfg spec.Config, b spec.Budget, bugs bugdb.Set) spec.Machine {
			return specgso.New(cfg, b, bugs)
		},
		NewCluster: func(cfg spec.Config, bugs bugdb.Set, seed int64) (*engine.Cluster, error) {
			return engine.NewCluster(engine.Config{
				Nodes:     cfg.Nodes,
				Semantics: vnet.TCP,
				Seed:      seed,
				Timeouts:  raftTimeouts(),
				// Table 4: PySyncObj averaged ~1.8 s per replayed trace with
				// a sleepless driver — dominated by cluster initialisation.
				Cost: costModel(1600*time.Millisecond, 5*time.Millisecond),
				// Buffered stores: gosyncobj distinguishes write from fsync
				// (persistHard/persistLog call Env.Sync), so dirty crashes
				// can exercise its durability handling.
				Buffered: true,
			}, func(id int) vos.Process { return sysgso.New(bugs) })
		},
	})
}
