package integrations

import (
	"errors"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/spec"
)

func gsoSession(t *testing.T, bugs bugdb.Set) *sandtable.SandTable {
	t.Helper()
	sys, err := Get("gosyncobj")
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}
	return sandtable.New(sys, cfg, defaultBudget(), bugs)
}

// The heart of §3.2: after alignment, random spec traces replay on the
// implementation with every compared variable agreeing at every step.
func TestGoSyncObjConformancePasses(t *testing.T) {
	for _, bugs := range []bugdb.Set{VerificationBugs("gosyncobj"), bugdb.NoBugs()} {
		st := gsoSession(t, bugs)
		rep, err := st.Conform(conformance.Options{Walks: 120, WalkDepth: 25, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("discrepancy with bugs=%v:\n%v\ntrace:\n%s", bugs, rep.Discrepancy, rep.Discrepancy.Trace.Format(false))
		}
		if rep.EventsChecked == 0 {
			t.Fatal("conformance checked no events")
		}
	}
}

// Figure 4: an intentionally wrong specification (modelling a defect the
// implementation does not have) is caught by conformance checking.
func TestConformanceDetectsSpecDiscrepancy(t *testing.T) {
	st := gsoSession(t, bugdb.NoBugs())
	st.SpecBugs = bugdb.NoBugs().With(bugdb.GSOCommitNonMonotonic) // spec wrong, impl fixed
	rep, err := st.Conform(conformance.Options{Walks: 100, WalkDepth: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("conformance failed to detect a spec/impl discrepancy")
	}
	if len(rep.Discrepancy.Step.DiffKeys) == 0 {
		t.Fatalf("expected diverging variables, got %v", rep.Discrepancy)
	}
}

// GoSyncObj#1: the unhandled exception on heartbeat-during-disconnection is
// the kind of by-product bug conformance checking surfaces (§3.2).
func TestConformanceFindsDisconnectCrash(t *testing.T) {
	st := gsoSession(t, bugdb.NoBugs())
	st.ImplBugs = bugdb.NoBugs().With(bugdb.GSODisconnectCrash)
	rep, err := st.Conform(conformance.Options{Walks: 600, WalkDepth: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("conformance did not surface the crash bug")
	}
	var ce *engine.CrashError
	if !errors.As(rep.Discrepancy.Step.Err, &ce) {
		t.Fatalf("expected an implementation crash, got %v", rep.Discrepancy)
	}
}

// §3.4: every model-checking violation is confirmed at the implementation
// level by deterministic replay — no false alarms.
func TestConfirmBugsAtImplementationLevel(t *testing.T) {
	for _, key := range []bugdb.Key{
		bugdb.GSOCommitNonMonotonic,
		bugdb.GSONextLEMatch,
		bugdb.GSOMatchNonMonotonic,
		bugdb.GSOCommitOldTerm,
	} {
		st := gsoSession(t, bugdb.NoBugs().With(key))
		st.Config = spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}
		res := st.Check(explorer.DefaultOptions())
		v := res.FirstViolation()
		if v == nil {
			t.Fatalf("%s: model checking found no violation", key)
		}
		conf, err := st.Confirm(v)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if !conf.Confirmed {
			t.Fatalf("%s: bug not confirmed at implementation level: %s", key, conf.Divergence.Describe())
		}
	}
}

// §3.4 fix validation: with the defect fixed on both levels, conformance
// passes and (bounded) model checking is clean.
func TestValidateFix(t *testing.T) {
	st := gsoSession(t, bugdb.NoBugs().With(bugdb.GSOCommitNonMonotonic))
	st.Config = spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}}
	st.Budget = spec.Budget{Name: "tiny", MaxTimeouts: 4, MaxCrashes: 1, MaxRestarts: 1, MaxRequests: 1, MaxPartitions: 1, MaxBuffer: 3}
	rep, err := st.ValidateFix(
		[]bugdb.Key{bugdb.GSOCommitNonMonotonic},
		conformance.Options{Walks: 60, WalkDepth: 20, Seed: 5},
		explorer.DefaultOptions(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fix did not validate: conformance=%v check=%v", rep.Conformance.Discrepancy, rep.Check.FirstViolation())
	}
	if !rep.Check.Exhausted {
		t.Errorf("fix validation should exhaust the bounded space, stopped: %s", rep.Check.StopReason)
	}
}
