package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// JobState is a job's position in its lifecycle.
type JobState string

// The job lifecycle: a submitted job waits in the FIFO queue as StateQueued,
// a run slot moves it to StateRunning, and it ends in exactly one of
// StateDone (the operation completed, result.json holds its summary),
// StateFailed (the operation errored; the status carries the error), or
// StateCanceled (DELETE /v1/jobs/{id} before or during the run).
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the JSON body of POST /v1/jobs — the service's mirror of the
// CLI's flags, so a job and a `sandtable <op>` invocation with the same
// settings produce equivalent results and artifacts. Zero values defer to
// the same defaults the CLI uses (and, for budgets, to the server-side caps
// configured in Options).
type JobSpec struct {
	// Op selects the pipeline stage: "check" (BFS model checking, the
	// default), "simulate" (seeded random walks), "conform" (spec/impl
	// conformance), or "confirm" (check + implementation-level replay).
	Op string `json:"op"`
	// System is the integrated target system (default "gosyncobj").
	System string `json:"system"`
	// Bug restricts checking to one catalogued defect (e.g. "GoSyncObj#4");
	// empty means the system's verification defect set.
	Bug string `json:"bug,omitempty"`
	// Nodes overrides the cluster size (0 = system default).
	Nodes int `json:"nodes,omitempty"`
	// Fixed selects the fully fixed build (fix validation).
	Fixed bool `json:"fixed,omitempty"`

	// MaxTimeouts, MaxRequests, MaxDirtyCrashes, and MaxBuffer override the
	// spec budget when positive, exactly like the CLI flags of the same
	// names.
	MaxTimeouts     int `json:"max_timeouts,omitempty"`
	MaxRequests     int `json:"max_requests,omitempty"`
	MaxDirtyCrashes int `json:"max_dirty_crashes,omitempty"`
	MaxBuffer       int `json:"max_buffer,omitempty"`
	// MaxCrashes overrides the crash budget when present (a pointer because
	// zero is a meaningful override, matching the CLI's -max-crashes -1
	// sentinel).
	MaxCrashes *int `json:"max_crashes,omitempty"`

	// Workers is the BFS/replay worker count (0 = the server's default).
	Workers int `json:"workers,omitempty"`
	// MaxStates stops a check after this many distinct states; the server's
	// per-job cap (Options.MaxJobStates) clamps it.
	MaxStates int `json:"max_states,omitempty"`
	// Deadline is the per-job wall-clock budget as a Go duration string
	// (e.g. "90s"); empty means the server default, and the server's
	// MaxDeadline clamps it.
	Deadline string `json:"deadline,omitempty"`
	// MemBudget is the per-job memory budget (e.g. "512MiB",
	// explorer.ParseByteSize grammar); empty means the server default.
	MemBudget string `json:"mem_budget,omitempty"`
	// Shrink minimizes the counterexample with ddmin before it is written.
	Shrink bool `json:"shrink,omitempty"`

	// Walks, Depth, Seed, and Distinct configure simulate/conform jobs as
	// the CLI flags of the same names do.
	Walks    int   `json:"walks,omitempty"`
	Depth    int   `json:"depth,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	Distinct bool  `json:"distinct,omitempty"`

	// CheckpointEvery (a Go duration) and CheckpointStates enable periodic
	// exploration snapshots in the job's artifact store; either one turns
	// checkpointing on. A canceled job keeps its last complete-level
	// checkpoint, so a successor job can resume it.
	CheckpointEvery  string `json:"checkpoint_every,omitempty"`
	CheckpointStates int    `json:"checkpoint_states,omitempty"`
	// ResumeFrom names an earlier job whose checkpoint this job continues
	// from. The checkpoint is copied into this job's artifact store, and the
	// explorer's compatibility checks (model label, symmetry, init digest)
	// refuse a mismatched resume.
	ResumeFrom string `json:"resume_from,omitempty"`

	// ProgressEvery (a Go duration) sets the cadence of SSE progress events
	// (default 1s).
	ProgressEvery string `json:"progress_every,omitempty"`
}

// JobStatus is the JSON rendering of a job returned by the lifecycle
// endpoints.
type JobStatus struct {
	// ID is the job's identifier, assigned at submission.
	ID string `json:"id"`
	// State is the lifecycle state; see JobState.
	State JobState `json:"state"`
	// Spec echoes the submitted job spec.
	Spec JobSpec `json:"spec"`
	// Created, Started, and Finished are lifecycle timestamps (RFC 3339;
	// zero-valued ones are omitted).
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Error describes why a failed job failed.
	Error string `json:"error,omitempty"`
	// Result is the operation's summary (the result.json artifact) once the
	// job is done.
	Result map[string]any `json:"result,omitempty"`
	// Progress is a live extract of the job's metrics registry while it
	// runs: distinct_states, transitions, depth, queue_len, checkpoints.
	Progress map[string]int64 `json:"progress,omitempty"`
	// Artifacts lists the files available under /v1/jobs/{id}/artifacts/.
	Artifacts []string `json:"artifacts,omitempty"`
	// EventsDropped counts SSE events lost to slow subscribers or replay-
	// buffer eviction; zero means every subscriber saw the full stream.
	EventsDropped int64 `json:"events_dropped,omitempty"`
}

// Job is one queued or running unit of work and its observability state.
type Job struct {
	id   string
	spec JobSpec
	dir  string

	reg    *obs.Registry
	fan    *obs.Fanout
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	result   map[string]any
	cover    *obs.Cover
}

// setCover records the run's coverage profile for the metrics artifact and
// report.
func (j *Job) setCover(c *obs.Cover) {
	j.mu.Lock()
	j.cover = c
	j.mu.Unlock()
}

// getCover returns the recorded coverage profile, if any.
func (j *Job) getCover() *obs.Cover {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cover
}

// setState transitions the job, stamping lifecycle timestamps.
func (j *Job) setState(st JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = st
	now := time.Now()
	switch st {
	case StateRunning:
		j.started = now
	case StateDone, StateFailed, StateCanceled:
		j.finished = now
	}
}

// getState returns the current lifecycle state.
func (j *Job) getState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// finish records the job's outcome and final state.
func (j *Job) finish(st JobState, result map[string]any, errMsg string) {
	j.mu.Lock()
	j.result = result
	j.errMsg = errMsg
	j.mu.Unlock()
	j.setState(st)
}

// tryCancel flips a non-terminal job to canceled and fires its context. It
// reports whether the job was still cancelable; canceling a queued job takes
// effect immediately (the run slot skips it), canceling a running one stops
// the explorer at its next block boundary.
func (j *Job) tryCancel() bool {
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	if st.terminal() {
		return false
	}
	j.cancel()
	if st == StateQueued {
		j.setState(StateCanceled)
	}
	return true
}

// progressKeys are the registry gauges surfaced in JobStatus.Progress.
var progressKeys = []string{"distinct_states", "transitions", "dedup_hits", "depth", "queue_len", "checkpoints"}

// status renders the job for the API.
func (j *Job) status() *JobStatus {
	j.mu.Lock()
	st := &JobStatus{
		ID:      j.id,
		State:   j.state,
		Spec:    j.spec,
		Created: j.created,
		Error:   j.errMsg,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	state := j.state
	j.mu.Unlock()

	if state == StateRunning {
		snap := j.reg.Snapshot()
		st.Progress = make(map[string]int64, len(progressKeys))
		for _, k := range progressKeys {
			if v, ok := snap[k].(int64); ok {
				st.Progress[k] = v
			}
		}
	}
	st.Artifacts = listArtifacts(j.dir)
	st.EventsDropped = j.fan.Dropped()
	return st
}

// listArtifacts walks the job directory and returns the relative paths of
// its regular files, sorted (checkpoint files appear under "checkpoint/").
func listArtifacts(dir string) []string {
	var out []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return nil
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(out)
	return out
}

// jobID formats the n'th job's identifier.
func jobID(n int) string { return fmt.Sprintf("job-%06d", n) }
