package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/conformance"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/integrations"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/report"
	"github.com/sandtable-go/sandtable/internal/sandtable"
	"github.com/sandtable-go/sandtable/internal/shrink"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Artifact file names within a job's directory. TraceJSONL, MetricsJSON, and
// ReportMD have exactly the shape of the CLI's -trace-out, -metrics-out, and
// -report artifacts, so the offline tooling (sandtable report, clustercmp,
// checktrace) consumes them unchanged.
const (
	// TraceJSONL is the structured observability event log.
	TraceJSONL = "trace.jsonl"
	// MetricsJSON is the final metrics snapshot + result summary + coverage.
	MetricsJSON = "metrics.json"
	// ReportMD is the rendered Markdown report. While the job runs, fetching
	// it renders a live partial report; the final render replaces it.
	ReportMD = "report.md"
	// ResultJSON is the operation's result summary on its own.
	ResultJSON = "result.json"
	// CounterexampleJSON is the violating trace (shrunk when the spec asked
	// for it), replayable with `sandtable replay -trace`.
	CounterexampleJSON = "trace.json"
	// CheckpointDir holds exploration snapshots when the job enables
	// checkpointing; a successor job resumes from it via resume_from.
	CheckpointDir = "checkpoint"
)

// validateSpec normalises and bounds-checks a submitted spec against the
// server's budgets. It returns the effective deadline and memory budget.
func (s *Server) validateSpec(js *JobSpec) (time.Duration, int64, error) {
	switch js.Op {
	case "":
		js.Op = "check"
	case "check", "simulate", "conform", "confirm":
	default:
		return 0, 0, fmt.Errorf("unknown op %q (want check, simulate, conform, or confirm)", js.Op)
	}
	if js.System == "" {
		js.System = "gosyncobj"
	}
	if _, err := integrations.Get(js.System); err != nil {
		return 0, 0, err
	}
	if js.Workers == 0 {
		js.Workers = s.opts.DefaultWorkers
	}
	if s.opts.MaxJobStates > 0 && (js.MaxStates <= 0 || js.MaxStates > s.opts.MaxJobStates) {
		js.MaxStates = s.opts.MaxJobStates
	}
	deadline := s.opts.DefaultDeadline
	if js.Deadline != "" {
		d, err := time.ParseDuration(js.Deadline)
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("bad deadline %q", js.Deadline)
		}
		deadline = d
	}
	if s.opts.MaxDeadline > 0 && deadline > s.opts.MaxDeadline {
		deadline = s.opts.MaxDeadline
	}
	memBudget := s.opts.MemBudget
	if js.MemBudget != "" {
		n, err := explorer.ParseByteSize(js.MemBudget)
		if err != nil {
			return 0, 0, fmt.Errorf("mem_budget: %w", err)
		}
		memBudget = n
	}
	if js.CheckpointEvery != "" {
		if _, err := time.ParseDuration(js.CheckpointEvery); err != nil {
			return 0, 0, fmt.Errorf("bad checkpoint_every %q", js.CheckpointEvery)
		}
	}
	if js.ProgressEvery != "" {
		if _, err := time.ParseDuration(js.ProgressEvery); err != nil {
			return 0, 0, fmt.Errorf("bad progress_every %q", js.ProgressEvery)
		}
	}
	return deadline, memBudget, nil
}

// buildSession mirrors the CLI's session construction: system lookup, config
// and budget overrides, and defect-set selection.
func buildSession(js JobSpec) (*sandtable.SandTable, error) {
	sys, err := integrations.Get(js.System)
	if err != nil {
		return nil, err
	}
	cfg := sys.DefaultConfig
	if js.Nodes > 0 {
		cfg = spec.Config{Name: fmt.Sprintf("n%dw2", js.Nodes), Nodes: js.Nodes, Workload: []string{"v1", "v2"}}
	}
	bugs := bugdb.VerificationBugs(js.System)
	if js.Fixed {
		bugs = bugdb.NoBugs()
	}
	if js.Bug != "" {
		info, ok := bugdb.ByID(js.Bug)
		if !ok {
			return nil, fmt.Errorf("unknown bug id %q", js.Bug)
		}
		bugs = bugdb.NoBugs().With(info.Key)
	}
	budget := sys.DefaultBudget
	if js.MaxTimeouts > 0 {
		budget.MaxTimeouts = js.MaxTimeouts
	}
	if js.MaxRequests > 0 {
		budget.MaxRequests = js.MaxRequests
	}
	if js.MaxCrashes != nil && *js.MaxCrashes >= 0 {
		budget.MaxCrashes = *js.MaxCrashes
	}
	if js.MaxDirtyCrashes > 0 {
		budget.MaxDirtyCrashes = js.MaxDirtyCrashes
	}
	if js.MaxBuffer > 0 {
		budget.MaxBuffer = js.MaxBuffer
	}
	return sandtable.New(sys, cfg, budget, bugs), nil
}

// runJob executes one job end to end: builds the session, attaches the
// tracer (teed into the job's event fan-out), starts the progress publisher,
// dispatches on the op, and writes the artifact set. It returns the result
// summary for result.json and the job status.
func (s *Server) runJob(j *Job, deadline time.Duration, memBudget int64) (map[string]any, error) {
	st, err := buildSession(j.spec)
	if err != nil {
		return nil, err
	}

	tf, err := os.Create(filepath.Join(j.dir, TraceJSONL))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	tracer := obs.NewTracer(tf)
	tracer.Tee(j.fan.Publish)
	defer tracer.Flush()

	stopProgress := s.startProgress(j)
	defer stopProgress()

	var (
		result map[string]any
		runErr error
	)
	switch j.spec.Op {
	case "check":
		result, runErr = s.runCheck(j, st, tracer, deadline, memBudget)
	case "simulate":
		result, runErr = s.runSimulate(j, st, tracer, deadline)
	case "conform":
		result, runErr = s.runConform(j, st, tracer, deadline)
	case "confirm":
		result, runErr = s.runConfirm(j, st, tracer, deadline)
	default:
		runErr = fmt.Errorf("unknown op %q", j.spec.Op)
	}
	if result != nil {
		if err := s.writeFinalArtifacts(j, result); err != nil && runErr == nil {
			runErr = err
		}
	}
	return result, runErr
}

// startProgress publishes a periodic "progress" event (layer "obs", node -1)
// to the job's fan-out, carrying a snapshot of the run's headline counters.
// These events are service-local: they never enter the JSONL trace and carry
// no tracer sequence number.
func (s *Server) startProgress(j *Job) (stop func()) {
	interval := time.Second
	if j.spec.ProgressEvery != "" {
		if d, err := time.ParseDuration(j.spec.ProgressEvery); err == nil && d > 0 {
			interval = d
		}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				snap := j.reg.Snapshot()
				detail := make(map[string]string, len(progressKeys)+1)
				detail["job"] = j.id
				for _, k := range progressKeys {
					if v, ok := snap[k].(int64); ok {
						detail[k] = strconv.FormatInt(v, 10)
					}
				}
				j.fan.Publish(obs.Event{
					V:      obs.TraceSchemaVersion,
					Layer:  "obs",
					Kind:   "progress",
					Node:   -1,
					Detail: detail,
				})
			}
		}
	}()
	return func() { close(done) }
}

// checkOptions assembles the explorer options for a check/confirm job.
func (s *Server) checkOptions(j *Job, st *sandtable.SandTable, tracer *obs.Tracer, deadline time.Duration, memBudget int64) (explorer.Options, error) {
	opts := explorer.DefaultOptions()
	opts.Deadline = deadline
	opts.Workers = j.spec.Workers
	opts.MaxStates = j.spec.MaxStates
	opts.MemBudget = memBudget
	opts.Cover = true
	opts.Metrics = j.reg
	opts.Tracer = tracer
	opts.Context = j.ctx
	if j.spec.CheckpointEvery != "" || j.spec.CheckpointStates > 0 || j.spec.ResumeFrom != "" {
		ck := explorer.CheckpointOptions{
			Dir:         filepath.Join(j.dir, CheckpointDir),
			EveryStates: j.spec.CheckpointStates,
			Label:       st.Label(),
		}
		if j.spec.CheckpointEvery != "" {
			d, err := time.ParseDuration(j.spec.CheckpointEvery)
			if err != nil {
				return opts, fmt.Errorf("bad checkpoint_every %q", j.spec.CheckpointEvery)
			}
			ck.Interval = d
		}
		if j.spec.ResumeFrom != "" {
			src, err := s.checkpointOf(j.spec.ResumeFrom)
			if err != nil {
				return opts, err
			}
			if err := copyDir(src, ck.Dir); err != nil {
				return opts, fmt.Errorf("resume_from %s: %w", j.spec.ResumeFrom, err)
			}
			ck.Resume = true
		}
		opts.Checkpoint = ck
	}
	return opts, nil
}

// runCheck executes a BFS model-checking job and writes the counterexample
// artifact when a violation is found.
func (s *Server) runCheck(j *Job, st *sandtable.SandTable, tracer *obs.Tracer, deadline time.Duration, memBudget int64) (map[string]any, error) {
	opts, err := s.checkOptions(j, st, tracer, deadline, memBudget)
	if err != nil {
		return nil, err
	}
	stop := j.reg.StartPhase("explore")
	res := st.Check(opts)
	stop()
	j.setCover(res.Cover)
	summary := res.Summary()
	if res.Err != nil {
		return summary, res.Err
	}
	if v := res.FirstViolation(); v != nil {
		if err := s.writeCounterexample(j, st, v.Trace, v.Invariant, tracer, summary); err != nil {
			return summary, err
		}
	}
	return summary, nil
}

// runSimulate executes a random-walk simulation job.
func (s *Server) runSimulate(j *Job, st *sandtable.SandTable, tracer *obs.Tracer, deadline time.Duration) (map[string]any, error) {
	ctx, cancel := context.WithTimeout(j.ctx, deadline)
	defer cancel()
	walks := j.spec.Walks
	if walks <= 0 {
		walks = 100
	}
	seed := j.spec.Seed
	if seed == 0 {
		seed = 1
	}
	sim := explorer.NewSimulator(st.Machine(), explorer.SimOptions{
		MaxDepth: j.spec.Depth, Seed: seed, CheckInvariants: true,
		TrackDistinct: j.spec.Distinct, RecordVars: j.spec.Shrink,
		Metrics: j.reg, Tracer: tracer, Cover: true, Context: ctx,
	})
	stop := j.reg.StartPhase("simulate")
	results := sim.Walks(walks)
	stop()
	j.setCover(sim.Cover())
	agg := explorer.Aggregate(results)
	summary := map[string]any{
		"walks":           agg.Walks,
		"branch_coverage": agg.BranchCoverage,
		"event_diversity": agg.EventDiversity,
		"max_depth":       agg.MaxDepth,
		"mean_depth":      agg.MeanDepth,
		"violations":      agg.Violations,
		"distinct_states": agg.DistinctStates,
	}
	for _, w := range results {
		if w.Violation != nil {
			if err := s.writeCounterexample(j, st, w.Trace, w.Violation.Invariant, tracer, summary); err != nil {
				return summary, err
			}
			break
		}
	}
	if ctx.Err() != nil && j.ctx.Err() != nil {
		summary["stop_reason"] = "canceled"
	}
	return summary, nil
}

// runConform executes a conformance-checking job. Conformance rounds have no
// mid-walk cancellation point, so canceling a running conform job takes
// effect only once the current round of walks completes.
func (s *Server) runConform(j *Job, st *sandtable.SandTable, tracer *obs.Tracer, deadline time.Duration) (map[string]any, error) {
	walks := j.spec.Walks
	if walks <= 0 {
		walks = 200
	}
	depth := j.spec.Depth
	if depth <= 0 {
		depth = 30
	}
	seed := j.spec.Seed
	if seed == 0 {
		seed = 1
	}
	workers := j.spec.Workers
	if workers <= 0 {
		workers = 1
	}
	stop := j.reg.StartPhase("conform")
	rep, err := st.Conform(conformance.Options{
		Walks: walks, WalkDepth: depth, Seed: seed, Workers: workers,
		Metrics: j.reg, Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	stop()
	summary := map[string]any{"walks": rep.Walks, "events_checked": rep.EventsChecked, "passed": rep.Passed()}
	if !rep.Passed() {
		summary["discrepancy"] = rep.Discrepancy.Error()
		if err := s.writeTraceArtifact(j, rep.Discrepancy.Trace); err != nil {
			return summary, err
		}
	}
	return summary, nil
}

// runConfirm executes check + implementation-level replay, mirroring the
// CLI's confirm subcommand.
func (s *Server) runConfirm(j *Job, st *sandtable.SandTable, tracer *obs.Tracer, deadline time.Duration) (map[string]any, error) {
	opts, err := s.checkOptions(j, st, tracer, deadline, 0)
	if err != nil {
		return nil, err
	}
	stopExplore := j.reg.StartPhase("explore")
	res := st.Check(opts)
	stopExplore()
	j.setCover(res.Cover)
	summary := res.Summary()
	if res.Err != nil {
		return summary, res.Err
	}
	v := res.FirstViolation()
	if v == nil {
		return summary, fmt.Errorf("no violation found to confirm (%d states)", res.DistinctStates)
	}
	ctrace := v.Trace
	if j.spec.Shrink {
		ctrace = s.shrinkTrace(j, st, ctrace, v.Invariant, tracer, summary)
	}
	if err := s.writeTraceArtifact(j, ctrace); err != nil {
		return summary, err
	}
	stopReplay := j.reg.StartPhase("replay")
	cluster, err := st.Sys.NewCluster(st.Config, st.ImplBugs, 1)
	if err != nil {
		return summary, err
	}
	conf, err := replay.ConfirmBug(ctrace, cluster, replay.Options{
		IgnoreVars: st.Sys.IgnoreVars, Observe: st.Sys.Observe,
		Tracer: tracer, Metrics: j.reg,
	})
	if err != nil {
		return summary, err
	}
	stopReplay()
	summary["replay_steps"] = conf.Steps
	summary["confirmed"] = conf.Confirmed
	if !conf.Confirmed {
		summary["divergence"] = conf.Divergence.Describe()
	}
	return summary, nil
}

// shrinkTrace minimizes tr with ddmin, keeping the original on failure and
// recording the reduction in the summary — the CLI's -shrink behaviour.
func (s *Server) shrinkTrace(j *Job, st *sandtable.SandTable, tr *trace.Trace, invariant string, tracer *obs.Tracer, summary map[string]any) *trace.Trace {
	m := st.Machine()
	res, err := shrink.Minimize(m, tr, shrink.InvariantOracle(m, invariant), shrink.Options{Metrics: j.reg, Tracer: tracer})
	if err != nil {
		return tr
	}
	summary["shrink_original_len"] = res.OriginalLen
	summary["shrink_minimized_len"] = res.MinimizedLen
	summary["shrink_attempts"] = res.Attempts
	return res.Trace
}

// writeCounterexample optionally shrinks the violating trace and writes it
// as the replayable trace.json artifact.
func (s *Server) writeCounterexample(j *Job, st *sandtable.SandTable, tr *trace.Trace, invariant string, tracer *obs.Tracer, summary map[string]any) error {
	if j.spec.Shrink {
		tr = s.shrinkTrace(j, st, tr, invariant, tracer, summary)
	}
	return s.writeTraceArtifact(j, tr)
}

// writeTraceArtifact encodes tr as the job's trace.json.
func (s *Server) writeTraceArtifact(j *Job, tr *trace.Trace) error {
	if tr == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(j.dir, CounterexampleJSON))
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.Encode(f)
}

// metricsSnapshot builds the metrics artifact payload: the registry snapshot
// stamped with the schema version and merged with the result summary and
// coverage profile — the exact shape of the CLI's -metrics-out file.
func (j *Job) metricsSnapshot(result map[string]any) map[string]any {
	snap := j.reg.Snapshot()
	snap["schema"] = obs.MetricsSchemaVersion
	if result != nil {
		snap["result"] = result
	}
	if c := j.getCover(); c != nil {
		snap["cover"] = c
	}
	return snap
}

// writeFinalArtifacts writes result.json, metrics.json, and the final
// report.md for a finished run.
func (s *Server) writeFinalArtifacts(j *Job, result map[string]any) error {
	if err := writeJSON(filepath.Join(j.dir, ResultJSON), result); err != nil {
		return err
	}
	snap := j.metricsSnapshot(result)
	if err := writeJSON(filepath.Join(j.dir, MetricsJSON), snap); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(j.dir, ReportMD))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.Render(f, j.reportData(snap, ""))
}

// reportData assembles the report input for a job; note marks live renders.
func (j *Job) reportData(snap map[string]any, note string) *report.Data {
	return &report.Data{
		Title:   fmt.Sprintf("sandtable serve: %s %s (%s)", j.spec.Op, j.spec.System, j.id),
		Source:  "sandtable serve job " + j.id,
		Metrics: snap,
		Cover:   j.getCover(),
		Note:    note,
	}
}

// renderLiveReport streams a report for a still-running job to w, marked as
// partial — the render-to-writer path, no file involved.
func (j *Job) renderLiveReport(w io.Writer) error {
	return report.Render(w, j.reportData(j.metricsSnapshot(nil), "Partial report: the job is still running."))
}

// checkpointOf resolves the checkpoint directory of an earlier job and
// verifies it holds a committed snapshot.
func (s *Server) checkpointOf(id string) (string, error) {
	src, ok := s.getJob(id)
	if !ok {
		return "", fmt.Errorf("resume_from: no such job %q", id)
	}
	dir := filepath.Join(src.dir, CheckpointDir)
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.commit")); err != nil {
		return "", fmt.Errorf("resume_from: job %s has no committed checkpoint", id)
	}
	return dir, nil
}

// copyDir copies the regular files of src into dst (created if needed). The
// checkpoint layout is flat, so no recursion is required.
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := copyFile(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// copyFile copies one regular file.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeJSON marshals v with indentation to path.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
