// Package serve turns SandTable into a checking-as-a-service daemon: an
// HTTP+JSON control plane over the same pipeline the CLI drives. Clients
// submit jobs (check, simulate, conform, confirm) to a bounded FIFO queue,
// a fixed number of run slots execute them under per-job budgets (max
// states, wall clock, memory), progress streams live over Server-Sent
// Events, and every run leaves a durable artifact set — event trace,
// metrics snapshot, Markdown report, replayable counterexample, and
// exploration checkpoints a later job can resume from.
//
// The API surface:
//
//	GET    /healthz                        liveness + queue occupancy
//	GET    /metrics                        Prometheus text format (service + jobs)
//	POST   /v1/jobs                        submit a JobSpec; 202 + status, 429 when the queue is full
//	GET    /v1/jobs                        list all jobs, oldest first
//	GET    /v1/jobs/{id}                   job status (live progress while running)
//	DELETE /v1/jobs/{id}                   cancel a queued or running job
//	GET    /v1/jobs/{id}/events            SSE stream: replay of past events, live tail, final "done"
//	GET    /v1/jobs/{id}/artifacts/        artifact listing (JSON)
//	GET    /v1/jobs/{id}/artifacts/{path}  artifact download; report.md renders live for running jobs
//
// Results are CLI-equivalent by construction: a job runs the same session,
// explorer, and artifact-writing code paths as `sandtable <op>`, so its
// metrics.json and trace.json match a CLI run with the same settings (the
// serve-smoke CI target asserts this with clustercmp).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// Options configure a Server.
type Options struct {
	// Dir is the artifact root; each job gets Dir/<job-id>/. Required.
	Dir string
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429 (default 16).
	QueueDepth int
	// Slots is the number of jobs run concurrently (default 1 — model
	// checking saturates the machine on its own via Workers).
	Slots int
	// DefaultWorkers is the per-job worker count when a spec leaves Workers
	// zero (default 1, keeping single-job results deterministic).
	DefaultWorkers int
	// MaxJobStates caps every job's distinct-state budget; zero means
	// uncapped. A spec asking for more (or for no limit) is clamped.
	MaxJobStates int
	// DefaultDeadline is the per-job wall-clock budget when the spec leaves
	// Deadline empty (default 2m).
	DefaultDeadline time.Duration
	// MaxDeadline caps every job's wall-clock budget; zero means uncapped.
	MaxDeadline time.Duration
	// MemBudget is the per-job memory budget in bytes when the spec leaves
	// MemBudget empty; zero means none.
	MemBudget int64
	// Registry receives the service's own metrics (serve.* counters and
	// gauges); nil allocates a private one. Per-job run metrics live in
	// per-job registries, not here, so job artifacts stay CLI-equivalent.
	Registry *obs.Registry
	// ReplayEvents bounds each job's SSE replay buffer (default 4096).
	ReplayEvents int
}

// Server is the checking service: a job registry, a bounded FIFO queue, and
// a pool of run slots.
type Server struct {
	opts Options
	reg  *obs.Registry

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup
}

// New builds a Server, creates its artifact root, and starts its run slots.
// Close must be called to stop them.
func New(opts Options) (*Server, error) {
	if opts.Dir == "" {
		return nil, errors.New("serve: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.DefaultWorkers <= 0 {
		opts.DefaultWorkers = 1
	}
	if opts.DefaultDeadline <= 0 {
		opts.DefaultDeadline = 2 * time.Minute
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s := &Server{
		opts:  opts,
		reg:   opts.Registry,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, opts.QueueDepth),
		stop:  make(chan struct{}),
	}
	s.reg.Gauge("serve.slots").Set(int64(opts.Slots))
	for i := 0; i < opts.Slots; i++ {
		s.wg.Add(1)
		go s.runSlot()
	}
	return s, nil
}

// Close stops the service: no new jobs run, queued jobs are marked canceled,
// the running ones are canceled via their contexts, and Close blocks until
// every run slot exits.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.stop:
		s.mu.Unlock()
		return
	default:
	}
	close(s.stop)
	for _, j := range s.jobs {
		j.tryCancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Drain jobs that were queued but never picked up.
	for {
		select {
		case j := <-s.queue:
			j.fan.Close()
		default:
			return
		}
	}
}

// runSlot is one worker: it pulls jobs off the FIFO queue and runs them.
func (s *Server) runSlot() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.reg.Gauge("serve.queue_len").Set(int64(len(s.queue)))
			s.execute(j)
		}
	}
}

// execute runs one job through its lifecycle and closes its event stream.
func (s *Server) execute(j *Job) {
	defer j.fan.Close()
	if j.ctx.Err() != nil { // canceled while queued
		return
	}
	j.setState(StateRunning)
	s.reg.Gauge("serve.jobs_running").Add(1)
	defer s.reg.Gauge("serve.jobs_running").Add(-1)

	deadline, memBudget, err := s.validateSpec(&j.spec)
	var result map[string]any
	if err == nil {
		result, err = s.runJob(j, deadline, memBudget)
	}
	switch {
	case err == nil && j.ctx.Err() != nil, err == nil && result["stop_reason"] == "canceled":
		j.finish(StateCanceled, result, "")
		s.reg.Counter("serve.jobs_canceled").Add(1)
	case err != nil && j.ctx.Err() != nil:
		j.finish(StateCanceled, result, err.Error())
		s.reg.Counter("serve.jobs_canceled").Add(1)
	case err != nil:
		j.finish(StateFailed, result, err.Error())
		s.reg.Counter("serve.jobs_failed").Add(1)
	default:
		j.finish(StateDone, result, "")
		s.reg.Counter("serve.jobs_completed").Add(1)
	}
	// Announce the final state on the stream before it closes, so SSE
	// consumers that joined mid-run learn the outcome in-band.
	j.fan.Publish(obs.Event{
		V: obs.TraceSchemaVersion, Layer: "obs", Kind: "job-state", Node: -1,
		Detail: map[string]string{"job": j.id, "state": string(j.getState())},
	})
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", obs.PrometheusHandler(func() *obs.Registry { return s.reg }))
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{path...}", s.handleArtifact)
	return mux
}

// getJob looks a job up by id.
func (s *Server) getJob(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSONResponse writes v with the given status code.
func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleHealth reports liveness plus queue and slot occupancy.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	running, _ := snap["serve.jobs_running"].(int64)
	writeJSONResponse(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"queue_len": len(s.queue),
		"queue_cap": cap(s.queue),
		"running":   running,
		"slots":     s.opts.Slots,
		"go":        runtime.Version(),
	})
}

// handleSubmit validates a JobSpec, registers the job, and enqueues it.
// A full queue rejects with 429 and a Retry-After hint rather than blocking
// the client.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if _, _, err := s.validateSpec(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if spec.ResumeFrom != "" {
		if _, err := s.checkpointOf(spec.ResumeFrom); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	s.mu.Lock()
	select {
	case <-s.stop:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	default:
	}
	s.seq++
	id := jobID(s.seq)
	dir := filepath.Join(s.opts.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "artifact dir: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:      id,
		spec:    spec,
		dir:     dir,
		reg:     obs.NewRegistry(),
		fan:     obs.NewFanout(s.opts.ReplayEvents),
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.mu.Unlock()
		os.Remove(dir)
		s.reg.Counter("serve.jobs_rejected").Add(1)
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, "job queue full (%d queued)", cap(s.queue))
		return
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.reg.Counter("serve.jobs_submitted").Add(1)
	s.reg.Gauge("serve.queue_len").Set(int64(len(s.queue)))
	writeJSONResponse(w, http.StatusAccepted, j.status())
}

// handleList returns every job's status, oldest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSONResponse(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleStatus returns one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSONResponse(w, http.StatusOK, j.status())
}

// handleCancel cancels a queued or running job; canceling a finished job is
// a 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.tryCancel() {
		httpError(w, http.StatusConflict, "job already %s", j.getState())
		return
	}
	writeJSONResponse(w, http.StatusOK, j.status())
}

// handleEvents streams the job's observability events as Server-Sent Events:
// first a replay of everything published so far, then the live tail, and a
// final "done" event carrying the job's terminal status. Event types are
// "trace" (tracer events, with real sequence numbers), "progress" (periodic
// counter snapshots), "job-state", and "done".
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, events, cancel := j.fan.Subscribe(0)
	defer cancel()
	for _, e := range replay {
		if err := writeSSE(w, e); err != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-events:
			if !ok {
				// Stream over: the job reached a terminal state.
				buf, _ := json.Marshal(j.status())
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", buf)
				fl.Flush()
				return
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE frames one event for the stream.
func writeSSE(w http.ResponseWriter, e obs.Event) error {
	typ := "trace"
	switch e.Kind {
	case "progress", "job-state":
		typ = e.Kind
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, buf)
	return err
}

// handleArtifact serves one artifact file; an empty path lists the job's
// artifacts as JSON. report.md for a still-running job is rendered live
// (marked partial) instead of read from disk.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.PathValue("path") == "" {
		writeJSONResponse(w, http.StatusOK, map[string]any{"artifacts": listArtifacts(j.dir)})
		return
	}
	rel := path.Clean(r.PathValue("path"))
	if rel == "." || rel == ".." || strings.HasPrefix(rel, "../") || path.IsAbs(rel) {
		httpError(w, http.StatusBadRequest, "bad artifact path")
		return
	}
	if rel == ReportMD && !j.getState().terminal() {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		j.renderLiveReport(w)
		return
	}
	full := filepath.Join(j.dir, filepath.FromSlash(rel))
	fi, err := os.Stat(full)
	if err != nil || fi.IsDir() {
		httpError(w, http.StatusNotFound, "no such artifact")
		return
	}
	http.ServeFile(w, r, full)
}
