package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/obs"
)

// tinySpec exhausts in ~1k distinct states — fast and deterministic.
func tinySpec() JobSpec {
	zero := 0
	return JobSpec{
		Op: "check", System: "gosyncobj", Fixed: true,
		MaxTimeouts: 2, MaxRequests: 2, MaxCrashes: &zero,
		Workers: 1, Deadline: "30s",
	}
}

// mediumSpec explores ~25k states in a few hundred ms — long enough to
// observe mid-run, short enough for tests.
func mediumSpec() JobSpec {
	one := 1
	return JobSpec{
		Op: "check", System: "gosyncobj", Fixed: true,
		MaxTimeouts: 3, MaxRequests: 2, MaxCrashes: &one,
		Workers: 1, Deadline: "60s",
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func submit(t *testing.T, base string, spec JobSpec) *JobStatus {
	t.Helper()
	st, code := trySubmit(t, base, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	return st
}

func trySubmit(t *testing.T, base string, spec JobSpec) (*JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return &st, resp.StatusCode
}

func getStatus(t *testing.T, base, id string) *JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return &st
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state within %s", id, timeout)
	return nil
}

// TestJobLifecycle submits a small check job and verifies the terminal
// status, result summary, and artifact set.
func TestJobLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	st := submit(t, hs.URL, tinySpec())
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	fin := waitTerminal(t, hs.URL, st.ID, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.Result["stop_reason"] != "exhausted" {
		t.Errorf("stop_reason = %v, want exhausted", fin.Result["stop_reason"])
	}
	if ds, _ := fin.Result["distinct_states"].(float64); ds < 1000 {
		t.Errorf("distinct_states = %v, want >= 1000", fin.Result["distinct_states"])
	}
	want := []string{MetricsJSON, ReportMD, ResultJSON, TraceJSONL}
	for _, name := range want {
		found := false
		for _, a := range fin.Artifacts {
			if a == name {
				found = true
			}
		}
		if !found {
			t.Errorf("artifact %s missing from %v", name, fin.Artifacts)
		}
	}

	// The metrics artifact must carry the CLI schema stamp and result block.
	var metrics map[string]any
	fetchJSON(t, hs.URL+"/v1/jobs/"+st.ID+"/artifacts/"+MetricsJSON, &metrics)
	if v, _ := metrics["schema"].(float64); int(v) != obs.MetricsSchemaVersion {
		t.Errorf("metrics schema = %v, want %d", metrics["schema"], obs.MetricsSchemaVersion)
	}
	if _, ok := metrics["result"].(map[string]any); !ok {
		t.Errorf("metrics artifact has no result block")
	}

	// The final report is a rendered Markdown document.
	rep := fetchBody(t, hs.URL+"/v1/jobs/"+st.ID+"/artifacts/"+ReportMD)
	if !strings.Contains(rep, "## Run summary") {
		t.Errorf("report.md lacks a Summary section:\n%.400s", rep)
	}
}

func fetchJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func fetchBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return b.String()
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	typ  string
	data string
}

// readSSE parses events from an SSE stream until the stream ends, the "done"
// event arrives, or maxEvents are read.
func readSSE(t *testing.T, base, id string, maxEvents int, stopEarly func(sseEvent) bool) []sseEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.typ != "" {
				out = append(out, cur)
				if cur.typ == "done" || len(out) >= maxEvents || (stopEarly != nil && stopEarly(cur)) {
					return out
				}
			}
			cur = sseEvent{}
		}
	}
	return out
}

// TestSSEStream verifies the event stream end to end: a subscriber that
// joins mid-run receives the replayed prefix plus the live tail, a
// subscriber that leaves mid-run does not disturb the job, and a subscriber
// arriving after completion still sees the full replay and the final done
// event.
func TestSSEStream(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	spec := mediumSpec()
	spec.ProgressEvery = "20ms"
	st := submit(t, hs.URL, spec)

	// Leave mid-run: read a handful of events and drop the connection.
	early := readSSE(t, hs.URL, st.ID, 3, nil)
	if len(early) == 0 {
		t.Fatalf("mid-run subscriber saw no events")
	}

	// Join mid-run (or just after) and read to completion.
	full := readSSE(t, hs.URL, st.ID, 100000, nil)
	last := full[len(full)-1]
	if last.typ != "done" {
		t.Fatalf("last SSE event = %q, want done (got %d events)", last.typ, len(full))
	}
	var fin JobStatus
	if err := json.Unmarshal([]byte(last.data), &fin); err != nil {
		t.Fatalf("done event payload: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("done event state = %s (error %q)", fin.State, fin.Error)
	}
	var kinds []string
	for _, e := range full {
		kinds = append(kinds, e.typ)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "trace") {
		t.Errorf("stream carried no trace events: %s", joined)
	}

	// Trace events on the stream are schema-valid (progress events are
	// service-local and carry no tracer seq, so they are exempt).
	for _, e := range full {
		if e.typ != "trace" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(e.data), &ev); err != nil {
			t.Fatalf("trace event payload: %v", err)
		}
		if err := obs.ValidateEvent(ev); err != nil {
			t.Fatalf("invalid trace event on stream: %v", err)
		}
	}

	// Late join after completion: replay plus immediate done.
	late := readSSE(t, hs.URL, st.ID, 100000, nil)
	if late[len(late)-1].typ != "done" {
		t.Fatalf("late subscriber did not get done, got %q", late[len(late)-1].typ)
	}
}

// TestQueueFullRejects fills the queue behind a slow job and verifies the
// 429 + Retry-After contract, then cancels everything.
func TestQueueFullRejects(t *testing.T) {
	_, hs := newTestServer(t, Options{QueueDepth: 1})
	slow := mediumSpec()
	slow.Nodes = 3
	slow.MaxStates = 1_000_000
	slow.CheckpointStates = 100_000_000 // checkpointing on, but effectively never fires
	running := submit(t, hs.URL, slow)
	queued := submit(t, hs.URL, tinySpec())
	if _, code := trySubmit(t, hs.URL, tinySpec()); code != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d, want 429", code)
	}
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s: status %d", id, resp.StatusCode)
		}
	}
	if st := waitTerminal(t, hs.URL, queued.ID, 10*time.Second); st.State != StateCanceled {
		t.Errorf("queued job state = %s, want canceled", st.State)
	}
	if st := waitTerminal(t, hs.URL, running.ID, 30*time.Second); st.State != StateCanceled {
		t.Errorf("running job state = %s, want canceled", st.State)
	}
}

// TestCancelLeavesResumableCheckpoint cancels a running checkpointed job and
// resumes a successor from its snapshot.
func TestCancelLeavesResumableCheckpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	spec := mediumSpec()
	spec.Nodes = 3
	spec.MaxStates = 1_000_000
	spec.CheckpointStates = 5000
	spec.Deadline = "120s"
	st := submit(t, hs.URL, spec)

	// Wait for the first committed checkpoint, then cancel.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared")
		}
		cur := getStatus(t, hs.URL, st.ID)
		if cur.State.terminal() {
			t.Fatalf("job finished before it could be canceled: %s", cur.State)
		}
		if cur.Progress["checkpoints"] >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, hs.URL, st.ID, 30*time.Second)
	if fin.State != StateCanceled {
		t.Fatalf("state = %s (error %q), want canceled", fin.State, fin.Error)
	}
	hasCommit := false
	for _, a := range fin.Artifacts {
		if a == CheckpointDir+"/checkpoint.commit" {
			hasCommit = true
		}
	}
	if !hasCommit {
		t.Fatalf("canceled job left no committed checkpoint: %v", fin.Artifacts)
	}
	canceledStates, _ := fin.Result["distinct_states"].(float64)
	if canceledStates <= 0 {
		t.Fatalf("canceled job reports no explored states: %v", fin.Result)
	}

	// Resume: the successor continues the exploration rather than starting
	// over, so it passes the canceled job's state count and stops at its own
	// budget.
	res := spec
	res.MaxStates = 50_000
	res.CheckpointStates = 0
	res.ResumeFrom = st.ID
	st2 := submit(t, hs.URL, res)
	fin2 := waitTerminal(t, hs.URL, st2.ID, 60*time.Second)
	if fin2.State != StateDone {
		t.Fatalf("resumed job state = %s (error %q)", fin2.State, fin2.Error)
	}
	if fin2.Result["resumed"] != true {
		t.Errorf("resumed job did not report resumed=true: %v", fin2.Result)
	}
	if ds, _ := fin2.Result["distinct_states"].(float64); ds < 50_000 {
		t.Errorf("resumed job explored %v states, want >= 50000", ds)
	}

	// A mismatched resume (different model label) is refused.
	bad := tinySpec()
	bad.ResumeFrom = st.ID
	st3 := submit(t, hs.URL, bad)
	if fin3 := waitTerminal(t, hs.URL, st3.ID, 30*time.Second); fin3.State != StateFailed {
		t.Errorf("mismatched resume state = %s, want failed", fin3.State)
	}
}

// TestSubmitValidation exercises spec rejection paths.
func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	cases := []JobSpec{
		{Op: "frobnicate"},
		{System: "no-such-system"},
		{Deadline: "yesterday"},
		{MemBudget: "12parsecs"},
		{ResumeFrom: "job-999999"},
		{CheckpointEvery: "sometimes"},
	}
	for _, spec := range cases {
		if _, code := trySubmit(t, hs.URL, spec); code != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", spec, code)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(`{"op":"check","bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestBudgetClamping verifies the server-side caps land in the job spec.
func TestBudgetClamping(t *testing.T) {
	_, hs := newTestServer(t, Options{MaxJobStates: 1500, MaxDeadline: time.Minute})
	spec := tinySpec()
	spec.MaxStates = 50_000_000
	spec.Deadline = "24h"
	st := submit(t, hs.URL, spec)
	fin := waitTerminal(t, hs.URL, st.ID, 30*time.Second)
	if fin.Spec.MaxStates != 1500 {
		t.Errorf("MaxStates = %d, want clamped to 1500", fin.Spec.MaxStates)
	}
	// The tiny space exhausts below the clamp, so the run still completes.
	if fin.State != StateDone {
		t.Errorf("state = %s", fin.State)
	}
}

// TestLiveReportAndList covers the live (partial) report render and the job
// listing.
func TestLiveReportAndList(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	spec := mediumSpec()
	spec.Nodes = 3
	spec.MaxStates = 1_000_000
	spec.Deadline = "120s"
	st := submit(t, hs.URL, spec)
	// Wait until it is actually running so the live render has counters.
	for getStatus(t, hs.URL, st.ID).State == StateQueued {
		time.Sleep(2 * time.Millisecond)
	}
	rep := fetchBody(t, hs.URL+"/v1/jobs/"+st.ID+"/artifacts/"+ReportMD)
	if !strings.Contains(rep, "Partial report") {
		t.Errorf("live report is not marked partial:\n%.300s", rep)
	}

	var list struct {
		Jobs []*JobStatus `json:"jobs"`
	}
	fetchJSON(t, hs.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}

	// Path traversal outside the job directory is rejected.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/artifacts/../../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("traversal fetch succeeded")
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitTerminal(t, hs.URL, st.ID, 30*time.Second)
}

// TestServeWithDebugRepublish hammers the service mux and obs.ServeDebug
// concurrently while debug servers restart (republishing the expvar
// registry holder) and a job runs — the regression surface of the PR 6
// expvar holder under concurrent use.
func TestServeWithDebugRepublish(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newTestServer(t, Options{Registry: reg})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Republish loop: start/stop debug servers against the same registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addr, stopDbg, err := obs.ServeDebug("127.0.0.1:0", reg)
			if err != nil {
				t.Errorf("ServeDebug: %v", err)
				return
			}
			if i == 0 {
				resp, err := http.Get("http://" + addr + "/metrics")
				if err == nil {
					resp.Body.Close()
				}
			}
			stopDbg()
		}
	}()

	// Reader loops: service metrics and health under the same registry.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/healthz", "/v1/jobs"} {
					resp, err := http.Get(hs.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}()
	}

	st := submit(t, hs.URL, tinySpec())
	waitTerminal(t, hs.URL, st.ID, 30*time.Second)
	close(stop)
	wg.Wait()
}

// TestServerClose verifies shutdown cancels queued and running jobs.
func TestServerClose(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	slow := mediumSpec()
	slow.Nodes = 3
	slow.MaxStates = 1_000_000
	slow.Deadline = "120s"
	running := submit(t, hs.URL, slow)
	queued := submit(t, hs.URL, tinySpec())
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("Close did not return")
	}
	for _, id := range []string{running.ID, queued.ID} {
		if j, ok := s.getJob(id); !ok || !j.getState().terminal() {
			st := JobState("missing")
			if ok {
				st = j.getState()
			}
			t.Errorf("after Close, job %s state = %s", id, st)
		}
	}
	// Submissions after Close are refused.
	if _, code := trySubmit(t, hs.URL, tinySpec()); code != http.StatusServiceUnavailable {
		t.Errorf("post-Close submit status = %d, want 503", code)
	}
}

// TestSimulateJob runs the simulate op through the service.
func TestSimulateJob(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	spec := JobSpec{Op: "simulate", System: "gosyncobj", Fixed: true, Walks: 20, Depth: 15, Seed: 7}
	st := submit(t, hs.URL, spec)
	fin := waitTerminal(t, hs.URL, st.ID, 60*time.Second)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	if w, _ := fin.Result["walks"].(float64); int(w) != 20 {
		t.Errorf("walks = %v, want 20", fin.Result["walks"])
	}
}
