package raftbase_test

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/spec/spectest"
	scraft "github.com/sandtable-go/sandtable/internal/specs/craft"
	sgso "github.com/sandtable-go/sandtable/internal/specs/gosyncobj"
	sxkv "github.com/sandtable-go/sandtable/internal/specs/xraftkv"
)

// TestAppendNextMatchesNext property-tests the spec.BufferedMachine contract
// across the raftbase dialects that exercise every enumeration branch: TCP
// with partitions (gosyncobj), UDP with drops/duplicates, snapshots, and
// retries (craft), and the KV workload with PreVote (xraftkv) — plus the
// dirty-crash fault model, which gates the durability mirrors.
func TestAppendNextMatchesNext(t *testing.T) {
	machines := map[string]spec.Machine{
		"gosyncobj": sgso.New(cfg3(), budget(), bugdb.NoBugs()),
		"craft":     scraft.New(cfg2(), budget(), bugdb.AllBugs("craft")),
		"xraftkv":   sxkv.New(cfg3(), budget(), bugdb.NoBugs()),
	}
	dirty := budget()
	dirty.MaxDirtyCrashes = 1
	machines["gosyncobj-dirty"] = sgso.New(cfg3(), dirty, bugdb.NoBugs())
	for name, m := range machines {
		t.Run(name, func(t *testing.T) {
			spectest.AssertBufferedEquiv(t, m, 25, 30, 7)
		})
	}
}
