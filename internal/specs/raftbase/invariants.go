package raftbase

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/spec"
)

// Invariants implements spec.Machine: the safety properties the paper draws
// from the Raft protocol design (election safety, log matching, commitment,
// durability, monotonicity — the latter via the flagged-violation channel)
// plus system-specific properties (linearizability for the KV store, the
// non-empty-retry rule for CRaft).
func (m *Machine) Invariants() []spec.Invariant {
	invs := []spec.Invariant{
		spec.ViolationInvariant(func(st spec.State) string { return st.(*State).Viol.Flag }),
		{Name: "AtMostOneLeaderPerTerm", Check: m.atMostOneLeaderPerTerm},
		{Name: "NextIndexAfterMatchIndex", Check: m.nextAfterMatch},
		{Name: "CommittedLogConsistency", Check: m.committedLogConsistency},
		{Name: "LogDurability", Check: m.logDurability},
		{Name: "LogMatching", Check: m.logMatching},
		{Name: "CommitWithinLog", Check: m.commitWithinLog},
		{Name: "LeaderVotesForSelf", Check: m.leaderVotesForSelf},
		{Name: "TermMonotonePerMessageFlow", Check: m.voteSelfConsistent},
	}
	if m.opt.KV {
		invs = append(invs, spec.Invariant{Name: "Linearizability", Check: func(st spec.State) error {
			s := st.(*State)
			if s.LastReadBad {
				return fmt.Errorf("read of %q at node %d returned %q, committed value is %q",
					s.LastReadKey, s.LastReadNode, s.LastReadVal, s.LastReadWant)
			}
			return nil
		}})
	}
	return invs
}

// atMostOneLeaderPerTerm: election safety (Raft's fundamental guarantee).
func (m *Machine) atMostOneLeaderPerTerm(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if !s.Up[i] || s.Role[i] != Leader {
			continue
		}
		for j := i + 1; j < s.n; j++ {
			if s.Up[j] && s.Role[j] == Leader && s.Term[i] == s.Term[j] {
				return fmt.Errorf("nodes %d and %d are both leaders in term %d", i, j, s.Term[i])
			}
		}
	}
	return nil
}

// nextAfterMatch: a leader's next index for a follower always exceeds its
// match index (violated by GoSyncObj#3 and CRaft#7).
func (m *Machine) nextAfterMatch(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if !s.Up[i] || s.Role[i] != Leader {
			continue
		}
		for p := 0; p < s.n; p++ {
			if p == i {
				continue
			}
			if s.Next[i][p] <= s.Match[i][p] {
				return fmt.Errorf("leader %d: next index %d <= match index %d for follower %d",
					i, s.Next[i][p], s.Match[i][p], p)
			}
		}
	}
	return nil
}

// committedLogConsistency: every node's committed prefix agrees with the
// ghost committed log (violated by the CRaft#1+#2 combination).
func (m *Machine) committedLogConsistency(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if !s.Up[i] {
			continue
		}
		hi := s.Commit[i]
		if hi > len(s.Committed) {
			hi = len(s.Committed)
		}
		for abs := s.SnapIdx[i] + 1; abs <= hi; abs++ {
			e, ok := s.entryAt(i, abs)
			if !ok {
				continue
			}
			if e != s.Committed[abs-1] {
				return fmt.Errorf("node %d committed entry %d is %d:%s, cluster committed %d:%s",
					i, abs, e.Term, e.Value, s.Committed[abs-1].Term, s.Committed[abs-1].Value)
			}
		}
	}
	return nil
}

// logDurability: every committed entry survives on a quorum (violated by
// AsyncRaft#2's erasure of matched entries).
func (m *Machine) logDurability(st spec.State) error {
	s := st.(*State)
	for abs := 1; abs <= len(s.Committed); abs++ {
		holders := 0
		for i := 0; i < s.n; i++ {
			if abs <= s.SnapIdx[i] {
				holders++ // compacted into the snapshot: still durable
				continue
			}
			if e, ok := s.entryAt(i, abs); ok && e == s.Committed[abs-1] {
				holders++
			}
		}
		if holders < m.quorum() {
			return fmt.Errorf("committed entry %d (%d:%s) survives on only %d/%d nodes",
				abs, s.Committed[abs-1].Term, s.Committed[abs-1].Value, holders, s.n)
		}
	}
	return nil
}

// logMatching: two logs holding an entry with the same index and term hold
// the same entry.
func (m *Machine) logMatching(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		for j := i + 1; j < s.n; j++ {
			lo := maxInt(s.SnapIdx[i], s.SnapIdx[j]) + 1
			hi := minInt(s.lastIndex(i), s.lastIndex(j))
			for abs := lo; abs <= hi; abs++ {
				ei, _ := s.entryAt(i, abs)
				ej, _ := s.entryAt(j, abs)
				if ei.Term == ej.Term && ei.Value != ej.Value {
					return fmt.Errorf("nodes %d and %d disagree at index %d term %d: %q vs %q",
						i, j, abs, ei.Term, ei.Value, ej.Value)
				}
			}
		}
	}
	return nil
}

// commitWithinLog: a commit index never points past the log end.
func (m *Machine) commitWithinLog(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if s.Commit[i] > s.lastIndex(i) {
			return fmt.Errorf("node %d commit index %d exceeds last log index %d", i, s.Commit[i], s.lastIndex(i))
		}
	}
	return nil
}

// leaderVotesForSelf: a leader's recorded vote is itself.
func (m *Machine) leaderVotesForSelf(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if s.Up[i] && s.Role[i] == Leader && s.VotedFor[i] != i {
			return fmt.Errorf("leader %d has votedFor=%d", i, s.VotedFor[i])
		}
	}
	return nil
}

// voteSelfConsistent: a candidate counts its own vote and voted for itself.
func (m *Machine) voteSelfConsistent(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if s.Up[i] && s.Role[i] == Candidate {
			if s.Votes[i] == nil || !s.Votes[i][i] || s.VotedFor[i] != i {
				return fmt.Errorf("candidate %d did not vote for itself", i)
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
