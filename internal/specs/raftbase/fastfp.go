package raftbase

import (
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// PermutedFingerprint implements spec.FastSymmetric: it computes
// Permute(s, perm).Fingerprint() without materialising the permuted state.
// The write sequence below must match State.Fingerprint exactly, reading
// through the inverse permutation (the permuted state's slot j holds the
// original node inv[j]'s data); raftbase_test.go property-tests the
// equivalence against the reference Permute implementation.
func (m *Machine) PermutedFingerprint(st spec.State, perm []int) uint64 {
	s := st.(*State)
	n := s.n
	var invBuf [8]int
	inv := invBuf[:n]
	for i, p := range perm {
		inv[p] = i
	}

	h := fp.New()
	// Role, Term, VotedFor (WriteInts layout: length frame then values).
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.Role[inv[j]])
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.Term[inv[j]])
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		v := s.VotedFor[inv[j]]
		if v >= 0 {
			v = perm[v]
		}
		h.WriteInt(v)
	}
	for j := 0; j < n; j++ {
		log := s.Log[inv[j]]
		h.Sep()
		h.WriteInt(len(log))
		for _, e := range log {
			h.WriteInt(e.Term)
			h.WriteString(e.Value)
		}
	}
	for _, arr := range [][]int{s.Commit, s.SnapIdx, s.SnapTerm} {
		h.WriteInt(n)
		for j := 0; j < n; j++ {
			h.WriteInt(arr[inv[j]])
		}
	}
	permBoolMatrix(h, s.Votes, perm, inv)
	permBoolMatrix(h, s.PreVotes, perm, inv)
	permIntMatrix(h, s.Next, perm, inv)
	permIntMatrix(h, s.Match, perm, inv)
	h.Sep()
	for j := 0; j < n; j++ {
		h.WriteBool(s.Up[inv[j]])
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			h.Sep()
			if a == b {
				h.WriteInt(0)
				h.WriteBool(false)
				h.WriteBool(false)
				continue
			}
			q := s.Chan[inv[a]][inv[b]]
			h.WriteInt(len(q))
			for k := range q {
				q[k].hash(h)
			}
			h.WriteBool(s.Cut[inv[a]][inv[b]])
			h.WriteBool(s.Part[inv[a]][inv[b]])
		}
	}
	h.Sep()
	h.WriteInt(len(s.Committed))
	for _, e := range s.Committed {
		h.WriteInt(e.Term)
		h.WriteString(e.Value)
	}
	h.WriteBool(s.SnapConflictInstall)
	h.WriteInt(perm[s.LastReadNode])
	h.WriteString(s.LastReadKey)
	h.WriteString(s.LastReadVal)
	h.WriteString(s.LastReadWant)
	h.WriteBool(s.LastReadBad)
	// Durability mirrors, matching State.Fingerprint's gated section.
	if s.durability {
		h.WriteInt(n)
		for j := 0; j < n; j++ {
			h.WriteInt(s.DurTerm[inv[j]])
		}
		h.WriteInt(n)
		for j := 0; j < n; j++ {
			v := s.DurVote[inv[j]]
			if v >= 0 {
				v = perm[v]
			}
			h.WriteInt(v)
		}
		for j := 0; j < n; j++ {
			log := s.DurLog[inv[j]]
			h.Sep()
			h.WriteInt(len(log))
			for _, e := range log {
				h.WriteInt(e.Term)
				h.WriteString(e.Value)
			}
		}
	}
	s.Counters.Hash(h)
	s.Viol.Hash(h)
	return h.Sum()
}

// permBoolMatrix hashes the permuted view of a per-node bool matrix, in the
// layout of hashBoolMatrix.
func permBoolMatrix(h *fp.Hasher, mtx [][]bool, perm, inv []int) {
	h.Sep()
	for j := range mtx {
		row := mtx[inv[j]]
		h.WriteInt(len(row))
		if row == nil {
			continue
		}
		for k := range row {
			h.WriteBool(row[inv[k]])
		}
	}
}

// permIntMatrix hashes the permuted view of a per-node int matrix, in the
// layout of hashIntMatrix (WriteInts rows).
func permIntMatrix(h *fp.Hasher, mtx [][]int, perm, inv []int) {
	h.Sep()
	for j := range mtx {
		row := mtx[inv[j]]
		h.WriteInt(len(row))
		if row == nil {
			continue
		}
		for k := range row {
			h.WriteInt(row[inv[k]])
		}
	}
}
