package raftbase

import (
	"sort"

	"github.com/sandtable-go/sandtable/internal/bugdb"
)

// syncDurable is the specification-level fsync: everything node i has
// written so far (term, vote, log) becomes crash-durable. The
// implementations persist hard state (term/vote) synchronously, and a sync
// flushes the whole write journal, so any earlier unsynced log write
// becomes durable here too — which is why the mirror copies all three.
// No-op unless the budget enables the durability fault model.
func (m *Machine) syncDurable(s *State, i int) {
	if !s.durability {
		return
	}
	s.DurTerm[i] = s.Term[i]
	s.DurVote[i] = s.VotedFor[i]
	s.DurLog[i] = append([]Entry(nil), s.Log[i]...)
}

// persistLog mirrors the implementations' log-persistence path: write the
// log and fsync. Under the unsynced-log defect (GoSyncObj#6) the write is
// buffered but never synced, so the durable mirrors do not advance — the
// log write sits in the journal until a later hard-state sync flushes it,
// and a dirty crash in between loses it.
func (m *Machine) persistLog(s *State, i int) {
	if m.opt.Profile == GoSyncObj && m.bug(bugdb.GSOUnsyncedLog) {
		return
	}
	m.syncDurable(s, i)
}

// electionTimeout fires the election timer of non-leader node i: it starts
// a (pre-)election, mirroring the implementations' Tick paths.
func (m *Machine) electionTimeout(s *State, i int) {
	if m.opt.PreVote {
		m.startPreVote(s, i)
		return
	}
	m.startElection(s, i)
}

func (m *Machine) startPreVote(s *State, i int) {
	s.Role[i] = PreCandidate
	s.PreVotes[i] = make([]bool, m.n)
	s.PreVotes[i][i] = true
	for p := 0; p < m.n; p++ {
		if p == i {
			continue
		}
		s.send(i, p, Msg{Type: "rv", Term: s.Term[i] + 1, Pre: true, LastIndex: s.lastIndex(i), LastTerm: s.logTerm(i, s.lastIndex(i))})
	}
	m.maybeWinPreVote(s, i)
}

func (m *Machine) startElection(s *State, i int) {
	s.Role[i] = Candidate
	s.Term[i]++
	s.VotedFor[i] = i
	s.PreVotes[i] = nil
	s.Votes[i] = make([]bool, m.n)
	s.Votes[i][i] = true
	m.syncDurable(s, i) // implementations persist hard state before campaigning
	for p := 0; p < m.n; p++ {
		if p == i {
			continue
		}
		s.send(i, p, Msg{Type: "rv", Term: s.Term[i], LastIndex: s.lastIndex(i), LastTerm: s.logTerm(i, s.lastIndex(i))})
	}
	m.maybeWinElection(s, i)
}

func (m *Machine) maybeWinPreVote(s *State, i int) {
	if s.Role[i] == PreCandidate && countVotes(s.PreVotes[i]) >= m.quorum() {
		m.startElection(s, i)
	}
}

func (m *Machine) maybeWinElection(s *State, i int) {
	if s.Role[i] == Candidate && countVotes(s.Votes[i]) >= m.quorum() {
		m.becomeLeader(s, i)
	}
}

func (m *Machine) becomeLeader(s *State, i int) {
	s.Role[i] = Leader
	s.Votes[i] = nil
	s.PreVotes[i] = nil
	s.Next[i] = make([]int, m.n)
	s.Match[i] = make([]int, m.n)
	for p := range s.Next[i] {
		s.Next[i][p] = s.lastIndex(i) + 1
	}
	s.Match[i][i] = s.lastIndex(i)
	m.broadcastAppend(s, i)
}

// stepDown adopts a higher term and reverts to follower.
func (m *Machine) stepDown(s *State, i, term int) {
	s.Term[i] = term
	s.Role[i] = Follower
	s.VotedFor[i] = -1
	s.Votes[i] = nil
	s.PreVotes[i] = nil
	s.Next[i] = nil
	s.Match[i] = nil
	m.syncDurable(s, i) // the adopted term is persisted synchronously
}

// yieldToLeader makes a same-term candidate revert to follower while
// keeping its vote.
func (m *Machine) yieldToLeader(s *State, i int) {
	if s.Role[i] != Follower {
		s.Role[i] = Follower
		s.Votes[i] = nil
		s.PreVotes[i] = nil
		s.Next[i] = nil
		s.Match[i] = nil
	}
}

// broadcastAppend sends replication traffic to every connected peer (the
// heartbeat body). The conformance-stage CRaft#8 defect (loop break on the
// first disconnected peer) lives only in the implementation; the
// specification models the intended behaviour.
func (m *Machine) broadcastAppend(s *State, i int) {
	for p := 0; p < m.n; p++ {
		if p == i || s.Cut[i][p] {
			continue
		}
		m.sendAppend(s, i, p, false)
	}
}

// sendAppend sends one AppendEntries (or InstallSnapshot) to peer p.
func (m *Machine) sendAppend(s *State, i, p int, retry bool) {
	ni := s.Next[i][p]
	if ni < 1 {
		ni = 1
	}
	if m.opt.Snapshots && ni <= s.SnapIdx[i] {
		if m.bug(bugdb.CRaftAEInsteadOfSnapshot) {
			// BUG(CRaft#2): the compacted case falls through to the
			// AppendEntries path: the prefix the follower needs is gone, so
			// the message carries no entries but still advertises the
			// leader's commit index (Figure 7). The specification asserts
			// the snapshot obligation the way the system's own source
			// assertion would (§3.1: properties come from code assertions
			// too), so model checking flags the send.
			s.Viol.Set("AppendEntries sent where snapshot transfer is required (leader %d, follower %d, next=%d, snapshot=%d)", i, p, ni, s.SnapIdx[i])
			s.send(i, p, Msg{Type: "ae", Term: s.Term[i], PrevIndex: ni - 1, PrevTerm: s.logTerm(i, ni-1), Entries: nil, Commit: s.Commit[i], Retry: retry})
			return
		}
		s.send(i, p, Msg{Type: "snap", Term: s.Term[i], SnapIndex: s.SnapIdx[i], SnapTerm: s.SnapTerm[i]})
		s.Next[i][p] = s.SnapIdx[i] + 1
		return
	}
	prev := ni - 1
	entries := s.entriesFrom(i, ni)
	if retry && len(entries) == 0 && m.bug(bugdb.CRaftEmptyRetry) {
		// BUG(CRaft#5): the retry after a rejection carries an empty log —
		// the follower still needs synchronisation, so the retry is useless
		// and the system churns. The system-specific safety property
		// "retrying requests must not contain an empty log" flags it.
		s.Viol.Set("retry message includes empty log (leader %d -> follower %d, next=%d)", i, p, ni)
	}
	s.send(i, p, Msg{Type: "ae", Term: s.Term[i], PrevIndex: prev, PrevTerm: s.logTerm(i, prev), Entries: entries, Commit: s.Commit[i], Retry: retry})
	if m.opt.Profile == GoSyncObj {
		// Aggressive next-index advance (PySyncObj optimisation).
		s.Next[i][p] = s.lastIndex(i) + 1
	}
}

// clientAppend appends a client value at the leader. CRaft and AsyncRaft
// replicate eagerly on entry receipt (WRaft's raft_recv_entry sends
// appendentries immediately); GoSyncObj and Xraft replicate on the next
// heartbeat.
func (m *Machine) clientAppend(s *State, i int, v string) {
	s.Log[i] = append(s.Log[i], Entry{Term: s.Term[i], Value: v})
	s.Match[i][i] = s.lastIndex(i)
	m.persistLog(s, i)
	if m.opt.Profile == CRaft || m.opt.Profile == AsyncRaft {
		m.broadcastAppend(s, i)
	}
}

// clientPut is the KV write: the value is logged as "key=value".
func (m *Machine) clientPut(s *State, i int, key, v string) {
	m.clientAppend(s, i, key+"="+v)
}

// clientGet is the KV read: the leader answers from its locally applied
// state. The buggy implementation (XraftKV#1) serves any node that believes
// itself leader, so a deposed leader returns stale data; the fixed
// implementation performs the ReadIndex protocol, which getEnabled models as
// an enabling condition (quorum confirmation + applied catch-up), making the
// local read linearizable by construction.
func (m *Machine) clientGet(s *State, i int, key string) {
	got := appliedValue(s, i, key)
	want := committedValue(s.Committed, key)
	s.LastReadNode = i
	s.LastReadKey = key
	s.LastReadVal = got
	s.LastReadWant = want
	s.LastReadBad = got != want
}

// getEnabled models when a read can complete. With the XraftKV#1 defect any
// self-styled leader answers immediately. The fixed system runs ReadIndex:
// the leader confirms leadership against a quorum of same-term reachable
// peers and waits until its applied state covers every committed write.
func (m *Machine) getEnabled(s *State, i int) bool {
	if m.bug(bugdb.XKVStaleRead) {
		return true
	}
	reachable := 1
	for p := 0; p < m.n; p++ {
		if p != i && s.Up[p] && !s.Cut[i][p] && s.Term[p] == s.Term[i] {
			reachable++
		}
	}
	return reachable >= m.quorum() && s.Commit[i] >= len(s.Committed)
}

// committedValue is the latest committed write to key.
func committedValue(committed []Entry, key string) string {
	for k := len(committed) - 1; k >= 0; k-- {
		if kk, vv, ok := splitKV(committed[k].Value); ok && kk == key {
			return vv
		}
	}
	return ""
}

// appliedValue is node i's locally applied value for key (its log up to its
// own commit index).
func appliedValue(s *State, i int, key string) string {
	for abs := s.Commit[i]; abs > s.SnapIdx[i]; abs-- {
		e, ok := s.entryAt(i, abs)
		if !ok {
			break
		}
		if kk, vv, ok := splitKV(e.Value); ok && kk == key {
			return vv
		}
	}
	return ""
}

func splitKV(v string) (key, val string, ok bool) {
	for c := 0; c < len(v); c++ {
		if v[c] == '=' {
			return v[:c], v[c+1:], true
		}
	}
	return "", "", false
}

// compactLog discards the committed prefix into a snapshot (CRaft).
func (m *Machine) compactLog(s *State, i int) {
	c := s.Commit[i]
	s.SnapTerm[i] = s.logTerm(i, c)
	s.Log[i] = append([]Entry(nil), s.Log[i][c-s.SnapIdx[i]:]...)
	s.SnapIdx[i] = c
	m.syncDurable(s, i) // snapshotting rewrites the durable log synchronously
}

// extendCommitted grows the ghost committed prefix after node i's commit
// index advanced.
func (m *Machine) extendCommitted(s *State, i int) {
	for abs := len(s.Committed) + 1; abs <= s.Commit[i]; abs++ {
		e, ok := s.entryAt(i, abs)
		if !ok {
			return
		}
		s.Committed = append(s.Committed, e)
	}
}

// --- Message handlers -------------------------------------------------

func (m *Machine) handleRequestVote(s *State, dst, src int, msg Msg) {
	if msg.Pre {
		m.handlePreVoteRequest(s, dst, src, msg)
		return
	}
	if msg.Term > s.Term[dst] {
		m.stepDown(s, dst, msg.Term)
	}
	last := s.lastIndex(dst)
	upToDate := msg.LastTerm > s.logTerm(dst, last) ||
		(msg.LastTerm == s.logTerm(dst, last) && msg.LastIndex >= last)
	granted := msg.Term == s.Term[dst] && (s.VotedFor[dst] == -1 || s.VotedFor[dst] == src) && upToDate
	if granted {
		s.VotedFor[dst] = src
		m.syncDurable(s, dst) // the vote is persisted before it is answered
	}
	s.send(dst, src, Msg{Type: "rvr", Term: s.Term[dst], Granted: granted})
}

func (m *Machine) handlePreVoteRequest(s *State, dst, src int, msg Msg) {
	granted := msg.Term >= s.Term[dst]
	if granted {
		last := s.lastIndex(dst)
		granted = msg.LastTerm > s.logTerm(dst, last) ||
			(msg.LastTerm == s.logTerm(dst, last) && msg.LastIndex >= last)
	}
	if granted && s.Role[dst] == Leader {
		if m.bug(bugdb.DaosLeaderVotes) {
			// BUG(DaosRaft#1): a live leader grants pre-votes, effectively
			// voting for a competing candidate it should suppress.
			s.Viol.Set("leader %d votes for candidate %d while leading term %d", dst, src, s.Term[dst])
		} else {
			granted = false
		}
	}
	s.send(dst, src, Msg{Type: "rvr", Term: s.Term[dst], Pre: true, Granted: granted})
}

func (m *Machine) handleRequestVoteResponse(s *State, dst, src int, msg Msg) {
	if msg.Pre {
		if msg.Term > s.Term[dst] && !msg.Granted {
			m.stepDown(s, dst, msg.Term)
			return
		}
		if s.Role[dst] != PreCandidate || !msg.Granted {
			return
		}
		s.PreVotes[dst][src] = true
		m.maybeWinPreVote(s, dst)
		return
	}
	if msg.Term > s.Term[dst] {
		m.stepDown(s, dst, msg.Term)
		return
	}
	if s.Role[dst] != Candidate || !msg.Granted {
		return
	}
	if !m.bug(bugdb.XRaftStaleVotes) && msg.Term != s.Term[dst] {
		// A response from an earlier election round is stale.
		return
	}
	// BUG(Xraft#1): with the flag on, granted responses are accepted
	// unconditionally — votes earned in an older term count toward the
	// current election, producing two valid leaders in the same term.
	s.Votes[dst][src] = true
	m.maybeWinElection(s, dst)
}

func (m *Machine) handleAppendEntries(s *State, dst, src int, msg Msg) {
	if msg.Term < s.Term[dst] {
		s.send(dst, src, Msg{Type: "aer", Term: s.Term[dst], Flag: false, NextIndex: s.lastIndex(dst) + 1})
		return
	}
	if msg.Term > s.Term[dst] {
		m.stepDown(s, dst, msg.Term)
	}
	m.yieldToLeader(s, dst)

	// Log consistency check on the previous entry.
	if msg.PrevIndex > s.lastIndex(dst) ||
		(msg.PrevIndex >= 1 && msg.PrevIndex > s.SnapIdx[dst] && s.logTerm(dst, msg.PrevIndex) != msg.PrevTerm) {
		if !(msg.PrevIndex == 0 && m.bug(bugdb.CRaftFirstEntryAppend)) {
			s.send(dst, src, Msg{Type: "aer", Term: s.Term[dst], Flag: false, NextIndex: s.lastIndex(dst) + 1})
			return
		}
	}

	if m.opt.Profile == AsyncRaft && m.bug(bugdb.ARLogErase) && msg.PrevIndex < s.lastIndex(dst) {
		// BUG(AsyncRaft#2): the follower blindly truncates everything after
		// PrevIndex before appending, erasing entries that already matched
		// (a duplicated or reordered older AppendEntries destroys newer,
		// possibly committed entries).
		s.truncateTo(dst, msg.PrevIndex)
	}

	skipConflictCheck := msg.PrevIndex == 0 && m.bug(bugdb.CRaftFirstEntryAppend)
	idx := msg.PrevIndex
	for _, e := range msg.Entries {
		idx++
		if idx <= s.lastIndex(dst) {
			if idx <= s.SnapIdx[dst] {
				continue
			}
			if skipConflictCheck {
				// BUG(CRaft#1): the first-entry special case skips the
				// conflict check entirely: an existing conflicting entry
				// survives and the incoming one is ignored.
				continue
			}
			if s.logTerm(dst, idx) != e.Term {
				s.truncateTo(dst, idx-1)
				s.Log[dst] = append(s.Log[dst], e)
			}
			continue
		}
		s.Log[dst] = append(s.Log[dst], e)
	}
	m.persistLog(s, dst)

	// Commit index update.
	var leaderCommit int
	if m.bug(bugdb.CRaftFirstEntryAppend) || m.opt.Profile == GoSyncObj {
		// GoSyncObj (and buggy CRaft) cap by the local log length.
		leaderCommit = minInt(msg.Commit, s.lastIndex(dst))
	} else {
		// The Raft rule: cap by the index of the last entry this message
		// accounted for.
		leaderCommit = minInt(msg.Commit, msg.PrevIndex+len(msg.Entries))
	}
	if m.opt.Profile == GoSyncObj && m.bug(bugdb.GSOCommitNonMonotonic) {
		// BUG(GoSyncObj#2): unconditional adoption — a freshly elected
		// leader with a lagging commit index drags the follower's back.
		if leaderCommit < s.Commit[dst] {
			s.Viol.Set("commit index is not monotonic on node %d: %d -> %d", dst, s.Commit[dst], leaderCommit)
		}
		s.Commit[dst] = leaderCommit
		m.extendCommitted(s, dst)
	} else if leaderCommit > s.Commit[dst] {
		s.Commit[dst] = leaderCommit
		m.extendCommitted(s, dst)
	}

	// Success reply with the follower's next-index hint: the highest index
	// this message confirmed, plus one.
	inext := msg.PrevIndex + len(msg.Entries) + 1
	if m.opt.Profile == GoSyncObj && len(msg.Entries) > 0 &&
		(m.bug(bugdb.GSOMatchNonMonotonic) || m.bug(bugdb.GSONextLEMatch)) {
		// BUG(GoSyncObj#3/#4, shared root cause): off-by-one in the entries
		// branch (Fig. 6) — the hint points at the last confirmed entry
		// instead of past it.
		inext--
	}
	s.send(dst, src, Msg{Type: "aer", Term: s.Term[dst], Flag: true, NextIndex: inext})
}

func (m *Machine) handleAppendEntriesResponse(s *State, dst, src int, msg Msg) {
	if msg.Term > s.Term[dst] {
		m.stepDown(s, dst, msg.Term)
		return
	}
	if msg.Term < s.Term[dst] {
		if m.opt.Profile == CRaft && m.bug(bugdb.CRaftTermNonMonotonic) {
			// BUG(CRaft#4): a stale response drags the current term
			// backwards.
			s.Viol.Set("current term is not monotonic on node %d: %d -> %d", dst, s.Term[dst], msg.Term)
			s.Term[dst] = msg.Term
		}
		return
	}
	if s.Role[dst] != Leader {
		return
	}
	if msg.Flag {
		nm := msg.NextIndex - 1
		switch {
		case m.opt.Profile == GoSyncObj && m.bug(bugdb.GSOMatchNonMonotonic):
			// BUG(GoSyncObj#4), leader side: no monotonicity guard.
			if nm < s.Match[dst][src] {
				s.Viol.Set("match index is not monotonic: leader %d follower %d: %d -> %d", dst, src, s.Match[dst][src], nm)
			}
			s.Match[dst][src] = nm
		case m.opt.Profile == AsyncRaft && m.bug(bugdb.ARMatchNonMonotonic):
			// BUG(AsyncRaft#1): plain assignment without a check — an
			// out-of-order (UDP) older response regresses the match index.
			if nm < s.Match[dst][src] {
				s.Viol.Set("match index is not monotonic: leader %d follower %d: %d -> %d", dst, src, s.Match[dst][src], nm)
			}
			s.Match[dst][src] = nm
		default:
			if nm > s.Match[dst][src] {
				s.Match[dst][src] = nm
			}
		}
		switch {
		case m.opt.Profile == GoSyncObj && m.bug(bugdb.GSONextLEMatch):
			// BUG(GoSyncObj#3): the next index is adopted from the (wrong)
			// hint without respecting the match index.
			s.Next[dst][src] = msg.NextIndex
		case m.opt.Profile == GoSyncObj:
			s.Next[dst][src] = maxInt(msg.NextIndex, s.Match[dst][src]+1)
		default:
			if msg.NextIndex > s.Next[dst][src] {
				s.Next[dst][src] = msg.NextIndex
			}
		}
		m.advanceCommit(s, dst)
		return
	}
	// Rejection: reset the next index from the follower's hint.
	ni := msg.NextIndex
	hasEmptyRetryFix := m.opt.Profile == CRaft && !m.bug(bugdb.CRaftEmptyRetry)
	if hasEmptyRetryFix && ni > s.lastIndex(dst) {
		ni = s.lastIndex(dst)
	}
	nextLEMatchKey := bugdb.GSONextLEMatch
	if m.opt.Profile != GoSyncObj {
		nextLEMatchKey = bugdb.CRaftNextLEMatch
	}
	if !m.bug(nextLEMatchKey) && ni < s.Match[dst][src]+1 {
		ni = s.Match[dst][src] + 1
	}
	// BUG(GoSyncObj#3 / CRaft#7): without the clamp above, a delayed
	// rejection drives next index <= match index (the
	// NextIndexAfterMatchIndex invariant catches the resulting state).
	s.Next[dst][src] = ni
	if m.opt.Profile == CRaft {
		// CRaft retries immediately after a rejection.
		if m.bug(bugdb.CRaftEmptyRetry) || ni <= s.lastIndex(dst) || (m.opt.Snapshots && ni <= s.SnapIdx[dst]) {
			m.sendAppend(s, dst, src, true)
		}
	}
}

func (m *Machine) handleSnapshot(s *State, dst, src int, msg Msg) {
	if msg.Term < s.Term[dst] {
		s.send(dst, src, Msg{Type: "aer", Term: s.Term[dst], Flag: false, NextIndex: s.lastIndex(dst) + 1})
		return
	}
	if msg.Term > s.Term[dst] {
		m.stepDown(s, dst, msg.Term)
	}
	m.yieldToLeader(s, dst)
	// Install: discard the log and adopt the snapshot. (The implementation's
	// CRaft#3 defect — rejecting the snapshot when the local log conflicts —
	// lives only in the implementation and is caught by conformance.)
	if msg.SnapIndex > s.SnapIdx[dst] {
		if s.lastIndex(dst) >= msg.SnapIndex && s.logTerm(dst, msg.SnapIndex) != msg.SnapTerm {
			s.SnapConflictInstall = true
		}
		s.Log[dst] = nil
		s.SnapIdx[dst] = msg.SnapIndex
		s.SnapTerm[dst] = msg.SnapTerm
		m.syncDurable(s, dst) // snapshot installation is synchronously durable
		if msg.SnapIndex > s.Commit[dst] {
			s.Commit[dst] = msg.SnapIndex
			m.extendCommitted(s, dst)
		}
	}
	s.send(dst, src, Msg{Type: "aer", Term: s.Term[dst], Flag: true, NextIndex: s.lastIndex(dst) + 1})
}

// advanceCommit recomputes the leader's commit index.
func (m *Machine) advanceCommit(s *State, i int) {
	switch m.opt.Profile {
	case GoSyncObj:
		matches := append([]int(nil), s.Match[i]...)
		matches[i] = s.lastIndex(i)
		sort.Ints(matches)
		candidate := matches[m.n-m.quorum()]
		if candidate <= s.Commit[i] {
			return
		}
		if !m.bug(bugdb.GSOCommitOldTerm) && s.logTerm(i, candidate) != s.Term[i] {
			return
		}
		if m.bug(bugdb.GSOCommitOldTerm) && s.logTerm(i, candidate) != s.Term[i] {
			// BUG(GoSyncObj#5): the current-term commitment rule is
			// skipped; the leader commits entries of older terms.
			s.Viol.Set("leader %d commits entry %d of older term %d (current %d)", i, candidate, s.logTerm(i, candidate), s.Term[i])
		}
		s.Commit[i] = candidate
		m.extendCommitted(s, i)
	case AsyncRaft:
		loopBreak := m.bug(bugdb.ARCommitLoopBreak)
		last := s.lastIndex(i)
		newCommit := s.Commit[i]
		for idx := s.Commit[i] + 1; idx <= last; idx++ {
			if s.logTerm(i, idx) != s.Term[i] {
				if loopBreak {
					// BUG(AsyncRaft#4): the commitment-checking loop stops
					// at the first old-term entry instead of skipping it.
					break
				}
				continue
			}
			if m.matchQuorum(s, i, idx) {
				newCommit = idx
			}
		}
		if newCommit > s.Commit[i] {
			s.Commit[i] = newCommit
			m.extendCommitted(s, i)
		}
		if loopBreak {
			// Safety approximation of the liveness failure: flag when a
			// committable entry was skipped by the premature break.
			for idx := last; idx > s.Commit[i]; idx-- {
				if s.logTerm(i, idx) == s.Term[i] && m.matchQuorum(s, i, idx) {
					s.Viol.Set("leader %d prematurely stopped commitment check before index %d", i, idx)
					break
				}
			}
		}
	default: // CRaft, Xraft: scan downward for the highest committable index.
		for idx := s.lastIndex(i); idx > s.Commit[i]; idx-- {
			if s.logTerm(i, idx) != s.Term[i] {
				break
			}
			if m.matchQuorum(s, i, idx) {
				s.Commit[i] = idx
				m.extendCommitted(s, i)
				break
			}
		}
	}
}

// matchQuorum reports whether index idx is replicated on a quorum.
func (m *Machine) matchQuorum(s *State, i, idx int) bool {
	count := 1 // the leader itself
	for p := 0; p < m.n; p++ {
		if p != i && s.Match[i][p] >= idx {
			count++
		}
	}
	return count >= m.quorum()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
