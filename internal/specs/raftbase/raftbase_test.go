package raftbase_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/spec/spectest"
	sasync "github.com/sandtable-go/sandtable/internal/specs/asyncraft"
	scraft "github.com/sandtable-go/sandtable/internal/specs/craft"
	sdaos "github.com/sandtable-go/sandtable/internal/specs/daosraft"
	sgso "github.com/sandtable-go/sandtable/internal/specs/gosyncobj"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	sxraft "github.com/sandtable-go/sandtable/internal/specs/xraft"
	sxkv "github.com/sandtable-go/sandtable/internal/specs/xraftkv"
)

func cfg2() spec.Config { return spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}} }
func cfg3() spec.Config { return spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}} }

func budget() spec.Budget {
	return spec.Budget{
		Name: "test", MaxTimeouts: 6, MaxCrashes: 1, MaxRestarts: 1,
		MaxRequests: 2, MaxPartitions: 1, MaxDrops: 2, MaxDuplicates: 1,
		MaxBuffer: 4, MaxCompactions: 1,
	}
}

// checkFinds asserts that model checking the machine hits a violation of the
// named invariant whose message contains msgPart.
func checkFinds(t *testing.T, m spec.Machine, invariant, msgPart string) *explorer.Violation {
	t.Helper()
	opts := explorer.DefaultOptions()
	opts.Deadline = 2 * time.Minute
	res := explorer.NewChecker(m, opts).Run()
	v := res.FirstViolation()
	if v == nil {
		t.Fatalf("no violation found (states=%d, stop=%s)", res.DistinctStates, res.StopReason)
	}
	if v.Invariant != invariant {
		t.Fatalf("violated %s (%v), want %s", v.Invariant, v.Err, invariant)
	}
	if msgPart != "" && !strings.Contains(v.Err.Error(), msgPart) {
		t.Fatalf("violation message %q does not mention %q", v.Err, msgPart)
	}
	if v.Trace == nil || v.Trace.Depth() != v.Depth {
		t.Fatalf("counterexample trace missing or wrong depth")
	}
	return v
}

func TestGoSyncObjBug2CommitNonMonotonic(t *testing.T) {
	m := sgso.New(cfg2(), budget(), bugdb.NoBugs().With(bugdb.GSOCommitNonMonotonic))
	v := checkFinds(t, m, "NoFlaggedViolation", "commit index is not monotonic")
	if v.Depth > 16 {
		t.Errorf("BFS counterexample unexpectedly deep: %d", v.Depth)
	}
}

func TestGoSyncObjBug3NextLEMatch(t *testing.T) {
	m := sgso.New(cfg2(), budget(), bugdb.NoBugs().With(bugdb.GSONextLEMatch))
	checkFinds(t, m, "NextIndexAfterMatchIndex", "next index")
}

func TestGoSyncObjBug4MatchNonMonotonic(t *testing.T) {
	m := sgso.New(cfg2(), budget(), bugdb.NoBugs().With(bugdb.GSOMatchNonMonotonic))
	checkFinds(t, m, "NoFlaggedViolation", "match index is not monotonic")
}

func TestGoSyncObjBug5CommitOldTerm(t *testing.T) {
	m := sgso.New(cfg2(), budget(), bugdb.NoBugs().With(bugdb.GSOCommitOldTerm))
	checkFinds(t, m, "NoFlaggedViolation", "older term")
}

func TestGoSyncObjFixedSmallSpaceClean(t *testing.T) {
	b := spec.Budget{Name: "tiny", MaxTimeouts: 4, MaxCrashes: 1, MaxRestarts: 1, MaxRequests: 1, MaxPartitions: 1, MaxBuffer: 3}
	m := sgso.New(cfg2(), b, bugdb.NoBugs())
	opts := explorer.DefaultOptions()
	res := explorer.NewChecker(m, opts).Run()
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("fixed gosyncobj violated %s: %v\n%s", v.Invariant, v.Err, v.Trace.Format(false))
	}
	if !res.Exhausted {
		t.Fatalf("expected exhaustive exploration, stopped: %s after %d states", res.StopReason, res.DistinctStates)
	}
}

func TestLeaderElectionReachableInAllProfiles(t *testing.T) {
	b := spec.Budget{Name: "elect", MaxTimeouts: 2, MaxBuffer: 4}
	machines := []spec.Machine{
		sgso.New(cfg3(), b, bugdb.NoBugs()),
		scraft.New(cfg3(), b, bugdb.NoBugs()),
		sdaos.New(cfg3(), b, bugdb.NoBugs()),
		sasync.New(cfg3(), b, bugdb.NoBugs()),
		sxraft.New(cfg3(), b, bugdb.NoBugs()),
		sxkv.New(cfg3(), b, bugdb.NoBugs()),
	}
	for _, m := range machines {
		opts := explorer.DefaultOptions()
		opts.Goal = func(st spec.State) bool {
			s := st.(*raftbase.State)
			for i := range s.Role {
				if s.Role[i] == raftbase.Leader {
					return true
				}
			}
			return false
		}
		res := explorer.NewChecker(m, opts).Run()
		if v := res.FirstViolation(); v != nil {
			t.Errorf("%s: unexpected violation %v\n%s", m.Name(), v, v.Trace.Format(false))
			continue
		}
		if !res.GoalReached {
			t.Errorf("%s: no leader electable within %d states", m.Name(), res.DistinctStates)
		}
	}
}

func TestPermutedFingerprintMatchesReference(t *testing.T) {
	machines := []*raftbase.Machine{
		sgso.New(cfg3(), budget(), bugdb.AllBugs("gosyncobj")),
		scraft.New(cfg3(), budget(), bugdb.AllBugs("craft")),
		sxkv.New(cfg3(), budget(), bugdb.AllBugs("xraftkv")),
	}
	perms := spec.Permutations(3)
	for _, m := range machines {
		rng := rand.New(rand.NewSource(7))
		cur := m.Init()[0]
		for step := 0; step < 400; step++ {
			for _, p := range perms {
				want := m.Permute(cur, p).Fingerprint()
				got := m.PermutedFingerprint(cur, p)
				if got != want {
					t.Fatalf("%s step %d perm %v: fast fingerprint %x != reference %x", m.Name(), step, p, got, want)
				}
			}
			succs := m.Next(cur)
			if len(succs) == 0 {
				break
			}
			cur = succs[rng.Intn(len(succs))].State
		}
	}
}

// TestOrbitFingerprintMatchesReference property-tests the spec.OrbitHasher
// contract (incremental min-of-orbit == materialised reference min, with
// the durability fault model both off and on via the crash budget) through
// the shared spectest harness.
func TestOrbitFingerprintMatchesReference(t *testing.T) {
	machines := []*raftbase.Machine{
		sgso.New(cfg3(), budget(), bugdb.AllBugs("gosyncobj")),
		scraft.New(cfg3(), budget(), bugdb.AllBugs("craft")),
		sxkv.New(cfg3(), budget(), bugdb.AllBugs("xraftkv")),
		sgso.New(cfg2(), spec.Budget{Name: "lean", MaxTimeouts: 4, MaxRequests: 2, MaxBuffer: 3}, bugdb.NoBugs()),
	}
	for i, m := range machines {
		spectest.AssertOrbitEquiv(t, m, 4, 120, int64(11+i))
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	m := scraft.New(cfg3(), budget(), bugdb.AllBugs("craft"))
	rng := rand.New(rand.NewSource(3))
	cur := m.Init()[0]
	perm := []int{1, 2, 0}
	inv := []int{2, 0, 1}
	for step := 0; step < 200; step++ {
		fp := cur.Fingerprint()
		round := m.Permute(m.Permute(cur, perm), inv)
		if round.Fingerprint() != fp {
			t.Fatalf("step %d: permute round trip changed fingerprint", step)
		}
		succs := m.Next(cur)
		if len(succs) == 0 {
			break
		}
		cur = succs[rng.Intn(len(succs))].State
	}
}

func TestVarsRenderingStable(t *testing.T) {
	m := sgso.New(cfg2(), budget(), bugdb.NoBugs())
	s := m.Init()[0]
	vars := s.Vars()
	for _, key := range []string{"role[0]", "term[0]", "votedFor[0]", "log[0]", "commit[0]", "net[0->1]", "status[1]"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("missing rendered variable %s", key)
		}
	}
	if vars["role[0]"] != "follower" || vars["log[0]"] != "[]" || vars["votedFor[0]"] != "-1" {
		t.Errorf("unexpected initial rendering: %v", vars)
	}
}
