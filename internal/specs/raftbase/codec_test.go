package raftbase

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// codecMachines covers the codec-relevant feature axes: plain TCP, UDP with
// snapshots + dirty crashes (exercises DurLog/SnapIdx/compaction fields), KV
// reads (LastRead*), and a buggy run whose states carry Viol.Flag.
func codecMachines() map[string]*Machine {
	return map[string]*Machine{
		"gosyncobj": New(Options{
			System: "gosyncobj", Profile: GoSyncObj, Transport: vnet.TCP,
			Config: spec.Config{Name: "n2w2", Nodes: 2, Workload: []string{"v1", "v2"}},
			Budget: spec.Budget{Name: "codec", MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 2},
		}),
		"craft-dirty": New(Options{
			System: "craft", Profile: CRaft, Transport: vnet.UDP, Snapshots: true,
			Config: spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}},
			Budget: spec.Budget{Name: "codec", MaxTimeouts: 2, MaxRequests: 1, MaxDrops: 1,
				MaxBuffer: 2, MaxCompactions: 1, MaxDirtyCrashes: 1},
		}),
		"xraftkv": New(Options{
			System: "xraftkv", Profile: Xraft, Transport: vnet.TCP, KV: true, PreVote: true,
			Config: spec.Config{Name: "n2w1", Nodes: 2, Workload: []string{"v1"}},
			Budget: spec.Budget{Name: "codec", MaxTimeouts: 2, MaxRequests: 1, MaxBuffer: 2},
		}),
		"craft-buggy": New(Options{
			System: "craft", Profile: CRaft, Transport: vnet.UDP, Snapshots: true,
			Bugs:             bugdb.VerificationBugs("craft"),
			ContinuePastFlag: true,
			Config:           spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}},
			Budget: spec.Budget{Name: "codec", MaxTimeouts: 2, MaxRequests: 1,
				MaxBuffer: 2, MaxCompactions: 1},
		}),
	}
}

// succFPs returns the sorted successor fingerprints of s under m.
func succFPs(m *Machine, s spec.State) []uint64 {
	succs := m.Next(s)
	fps := make([]uint64, len(succs))
	for i, sc := range succs {
		fps[i] = sc.State.Fingerprint()
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fps
}

// sameNilness reports whether the per-node rows of two states agree on
// nil-vs-allocated, which permute branches on.
func sameNilness(a, b *State) error {
	for i := 0; i < a.n; i++ {
		if (a.Votes[i] == nil) != (b.Votes[i] == nil) {
			return fmt.Errorf("Votes[%d] nil-ness differs", i)
		}
		if (a.PreVotes[i] == nil) != (b.PreVotes[i] == nil) {
			return fmt.Errorf("PreVotes[%d] nil-ness differs", i)
		}
		if (a.Next[i] == nil) != (b.Next[i] == nil) {
			return fmt.Errorf("Next[%d] nil-ness differs", i)
		}
		if (a.Match[i] == nil) != (b.Match[i] == nil) {
			return fmt.Errorf("Match[%d] nil-ness differs", i)
		}
	}
	return nil
}

func TestCodecRoundTrip(t *testing.T) {
	const maxStates = 3000
	for name, m := range codecMachines() {
		t.Run(name, func(t *testing.T) {
			var codec spec.StateCodec = m // compile-time capability check
			seen := map[uint64]bool{}
			var queue []spec.State
			for _, s := range m.Init() {
				if fp := s.Fingerprint(); !seen[fp] {
					seen[fp] = true
					queue = append(queue, s)
				}
			}
			checked, flagged := 0, 0
			for i := 0; i < len(queue) && len(queue) < maxStates; i++ {
				s := queue[i].(*State)
				enc := codec.AppendState(nil, s)
				dec, rest, err := codec.DecodeState(enc)
				if err != nil {
					t.Fatalf("state %d: decode: %v", i, err)
				}
				if len(rest) != 0 {
					t.Fatalf("state %d: %d bytes left after decode", i, len(rest))
				}
				ds := dec.(*State)
				if got, want := ds.Fingerprint(), s.Fingerprint(); got != want {
					t.Fatalf("state %d: fingerprint %#x after round trip, want %#x", i, got, want)
				}
				if !reflect.DeepEqual(ds.Vars(), s.Vars()) {
					t.Fatalf("state %d: Vars differ after round trip", i)
				}
				if err := sameNilness(s, ds); err != nil {
					t.Fatalf("state %d: %v", i, err)
				}
				if ds.Viol.Flag != s.Viol.Flag {
					t.Fatalf("state %d: Viol.Flag %q after round trip, want %q", i, ds.Viol.Flag, s.Viol.Flag)
				}
				if s.Viol.Flag != "" {
					flagged++
				}
				// Behavioural identity is the expensive check; sample it.
				if i%17 == 0 {
					if !reflect.DeepEqual(succFPs(m, dec), succFPs(m, s)) {
						t.Fatalf("state %d: successor sets differ after round trip", i)
					}
					checked++
				}
				for _, sc := range m.Next(s) {
					if fp := sc.State.Fingerprint(); !seen[fp] {
						seen[fp] = true
						queue = append(queue, sc.State)
					}
				}
			}
			if len(queue) < 100 {
				t.Fatalf("only %d states explored; config too tight to exercise the codec", len(queue))
			}
			t.Logf("%d states round-tripped, %d successor-checked, %d flagged", len(queue), checked, flagged)
			if flagged == 0 {
				// The BFS cutoff may sit above the first flagged state, so
				// exercise the Viol.Flag encoding on a synthetic one.
				s := queue[len(queue)-1].(*State).clone()
				s.Viol.Flag = "synthetic-flag"
				dec, _, err := codec.DecodeState(codec.AppendState(nil, s))
				if err != nil {
					t.Fatalf("flagged state: %v", err)
				}
				if ds := dec.(*State); ds.Viol.Flag != s.Viol.Flag || ds.Fingerprint() != s.Fingerprint() {
					t.Fatalf("flagged state round trip: flag %q fp match %v", ds.Viol.Flag, ds.Fingerprint() == s.Fingerprint())
				}
			}
		})
	}
}

// TestCodecBatch decodes several states appended into one buffer, the way
// frontier spill files and cluster blocks batch them.
func TestCodecBatch(t *testing.T) {
	m := codecMachines()["gosyncobj"]
	states := m.Init()
	for _, sc := range m.Next(states[0]) {
		states = append(states, sc.State)
		if len(states) >= 5 {
			break
		}
	}
	var buf []byte
	for _, s := range states {
		buf = m.AppendState(buf, s)
	}
	for i, s := range states {
		dec, rest, err := m.DecodeState(buf)
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		buf = rest
		if dec.Fingerprint() != s.Fingerprint() {
			t.Fatalf("state %d: fingerprint mismatch in batch", i)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left after batch decode", len(buf))
	}
}

// TestCodecRejectsTruncation: every strict prefix of a valid encoding must
// fail to decode (no silent short reads).
func TestCodecRejectsTruncation(t *testing.T) {
	m := codecMachines()["craft-dirty"]
	s := m.Init()[0]
	enc := m.AppendState(nil, s)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := m.DecodeState(enc[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(enc))
		}
	}
}
