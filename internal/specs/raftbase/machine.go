package raftbase

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// Profile selects a system dialect: the same Raft skeleton with the
// particular reply formulas, optimisations, and extensions of each target
// system.
type Profile int

// Profiles.
const (
	// GoSyncObj: TCP, optimistic next-index advance, follower Inext hints.
	GoSyncObj Profile = iota
	// CRaft: UDP, log compaction + snapshots, retry-on-reject.
	CRaft
	// AsyncRaft: UDP, asyncio-style replication loop.
	AsyncRaft
	// Xraft: TCP, PreVote.
	Xraft
)

// Options instantiate the specification.
type Options struct {
	System    string
	Profile   Profile
	Transport vnet.Semantics
	PreVote   bool
	Snapshots bool
	KV        bool
	// Volatile marks systems that persist nothing across a crash (the
	// in-memory gosyncobj): a restarted node loses its term, vote, and log
	// in addition to the volatile Raft state.
	Volatile bool
	// ContinuePastFlag keeps exploring beyond states whose violation flag
	// is set. By default a flagged state is terminal (the violation has
	// been found; exploring further wastes states), but reproducing
	// multi-defect scenarios such as Figure 7 — where a flagged send must
	// still be delivered — requires exploring past the flag.
	ContinuePastFlag bool
	Bugs             bugdb.Set
	Config           spec.Config
	Budget           spec.Budget
}

// Machine is the Raft-family specification engine.
type Machine struct {
	opt Options
	n   int
}

// New builds the machine.
func New(opt Options) *Machine {
	return &Machine{opt: opt, n: opt.Config.Nodes}
}

// Name implements spec.Machine.
func (m *Machine) Name() string { return m.opt.System }

// Options exposes the instantiation (used by integrations).
func (m *Machine) Options() Options { return m.opt }

// Init implements spec.Machine.
func (m *Machine) Init() []spec.State {
	s := newState(m.n)
	s.snapshots = m.opt.Snapshots
	s.kv = m.opt.KV
	s.durability = m.opt.Budget.MaxDirtyCrashes > 0
	return []spec.State{s}
}

// NumNodes implements spec.Symmetric.
func (m *Machine) NumNodes() int { return m.n }

// Permute implements spec.Symmetric.
func (m *Machine) Permute(st spec.State, perm []int) spec.State {
	return st.(*State).permute(perm)
}

func (m *Machine) bug(k bugdb.Key) bool { return m.opt.Bugs.Has(k) }

func (m *Machine) quorum() int { return m.n/2 + 1 }

// Next implements spec.Machine: enumerate every enabled node-level event.
func (m *Machine) Next(st spec.State) []spec.Succ {
	return m.AppendNext(st, nil)
}

// AppendNext implements spec.BufferedMachine: it appends every enabled
// node-level event to buf, letting the explorer reuse one successor buffer
// per worker instead of allocating a slice per expanded state.
func (m *Machine) AppendNext(st spec.State, buf []spec.Succ) []spec.Succ {
	s := st.(*State)
	if s.Viol.Flag != "" && !m.opt.ContinuePastFlag {
		// A flagged state is terminal: the violation has been detected and
		// exploring beyond it only wastes states.
		return buf
	}
	out := buf
	add := func(ev trace.Event, n *State) {
		if m.overflows(n) {
			return
		}
		out = append(out, spec.Succ{Event: ev, State: n})
	}

	b := m.opt.Budget
	for i := 0; i < m.n; i++ {
		if !s.Up[i] {
			continue
		}
		// Election timeout: any non-leader may time out at any moment.
		if s.Role[i] != Leader && s.Counters.CanTimeout(b) {
			n := s.clone()
			n.Counters.Timeouts++
			m.electionTimeout(n, i)
			add(trace.Event{Type: trace.EvTimeout, Action: "TimeoutElection", Node: i, Payload: "election"}, n)
		}
		// Heartbeat timeout: leaders replicate on their heartbeat timer.
		if s.Role[i] == Leader && s.Counters.CanTimeout(b) {
			n := s.clone()
			n.Counters.Timeouts++
			m.broadcastAppend(n, i)
			add(trace.Event{Type: trace.EvTimeout, Action: "TimeoutHeartbeat", Node: i, Payload: "heartbeat"}, n)
		}
		// Client requests are served by leaders.
		if s.Role[i] == Leader && s.Counters.CanRequest(b) {
			if m.opt.KV {
				for _, v := range m.opt.Config.Workload {
					n := s.clone()
					n.Counters.Requests++
					m.clientPut(n, i, "x", v)
					add(trace.Event{Type: trace.EvRequest, Action: "ClientPut", Node: i, Payload: "put x " + v}, n)
				}
				if m.getEnabled(s, i) {
					n := s.clone()
					n.Counters.Requests++
					m.clientGet(n, i, "x")
					add(trace.Event{Type: trace.EvRequest, Action: "ClientGet", Node: i, Payload: "get x"}, n)
				}
			} else {
				for _, v := range m.opt.Config.Workload {
					n := s.clone()
					n.Counters.Requests++
					m.clientAppend(n, i, v)
					add(trace.Event{Type: trace.EvRequest, Action: "ClientRequest", Node: i, Payload: v}, n)
				}
			}
		}
		// Log compaction (snapshotting systems): an internal admin action.
		if m.opt.Snapshots && s.Role[i] == Leader && s.Commit[i] > s.SnapIdx[i] && s.Counters.CanCompact(b) {
			n := s.clone()
			n.Counters.Compactions++
			m.compactLog(n, i)
			add(trace.Event{Type: trace.EvRequest, Action: "CompactLog", Node: i, Payload: "!compact"}, n)
		}
		// Node crash.
		if s.Counters.CanCrash(b) {
			n := s.clone()
			n.Counters.Crashes++
			m.crash(n, i)
			add(trace.Event{Type: trace.EvCrash, Action: "NodeCrash", Node: i}, n)
		}
		// Dirty node crash (crash-consistency fault): the unsynced journal
		// is lost, so recovery sees the durable mirrors, not the live
		// variables. Consumes the crash budget too, so MaxDirtyCrashes
		// selects how many of the crashes may be dirty.
		if s.Counters.CanCrash(b) && s.Counters.CanDirtyCrash(b) {
			n := s.clone()
			n.Counters.Crashes++
			n.Counters.DirtyCrashes++
			m.crashDirty(n, i)
			add(trace.Event{Type: trace.EvCrashDirty, Action: "NodeCrashDirty", Node: i, Payload: "lose-unsynced"}, n)
		}
	}
	// Node restart.
	for i := 0; i < m.n; i++ {
		if s.Up[i] || !s.Counters.CanRestart(b) {
			continue
		}
		n := s.clone()
		n.Counters.Restarts++
		m.restart(n, i)
		add(trace.Event{Type: trace.EvRestart, Action: "NodeStart", Node: i}, n)
	}

	// Message deliveries and UDP manipulations.
	for src := 0; src < m.n; src++ {
		for dst := 0; dst < m.n; dst++ {
			q := s.Chan[src][dst]
			if src == dst || len(q) == 0 || !s.Up[dst] {
				continue
			}
			limit := 1 // TCP: head only
			if m.opt.Transport == vnet.UDP {
				limit = len(q)
			}
			for k := 0; k < limit; k++ {
				n := s.clone()
				msg := n.takeMsg(src, dst, k)
				action := m.dispatch(n, src, dst, msg)
				add(trace.Event{Type: trace.EvDeliver, Action: action, Node: dst, Peer: src, Index: k}, n)
			}
			if m.opt.Transport == vnet.UDP {
				for k := 0; k < len(q); k++ {
					if s.Counters.CanDrop(b) {
						n := s.clone()
						n.Counters.Drops++
						n.takeMsg(src, dst, k)
						add(trace.Event{Type: trace.EvDrop, Action: "DropMessage", Node: dst, Peer: src, Index: k}, n)
					}
					if s.Counters.CanDuplicate(b) {
						n := s.clone()
						n.Counters.Duplicates++
						n.Chan[src][dst] = append(n.Chan[src][dst], n.Chan[src][dst][k])
						add(trace.Event{Type: trace.EvDuplicate, Action: "DuplicateMessage", Node: dst, Peer: src, Index: k}, n)
					}
				}
			}
		}
	}

	// Network partitions and recovery (TCP failure model).
	if m.opt.Transport == vnet.TCP {
		for a := 0; a < m.n; a++ {
			for bn := a + 1; bn < m.n; bn++ {
				if !s.Part[a][bn] && s.Counters.CanPartition(b) {
					n := s.clone()
					n.Counters.Partitions++
					m.partition(n, a, bn)
					add(trace.Event{Type: trace.EvPartition, Action: "NetworkPartition", Node: a, Peer: bn}, n)
				}
				if s.Part[a][bn] {
					n := s.clone()
					m.heal(n, a, bn)
					add(trace.Event{Type: trace.EvRecover, Action: "NetworkRecover", Node: a, Peer: bn}, n)
				}
			}
		}
	}
	return out
}

// overflows enforces the MaxBuffer budget: transitions that would leave any
// channel over the bound are not enumerated.
func (m *Machine) overflows(s *State) bool {
	if m.opt.Budget.MaxBuffer <= 0 {
		return false
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if len(s.Chan[i][j]) > m.opt.Budget.MaxBuffer {
				return true
			}
		}
	}
	return false
}

// takeMsg removes and returns message k of channel src→dst.
func (s *State) takeMsg(src, dst, k int) Msg {
	q := s.Chan[src][dst]
	msg := q[k]
	s.Chan[src][dst] = append(q[:k:k], q[k+1:]...)
	return msg
}

// send appends a message to a channel unless the connection is severed
// (mirrors vnet.Send dropping across cut pairs).
func (s *State) send(src, dst int, msg Msg) {
	if src == dst || s.Cut[src][dst] {
		return
	}
	s.Chan[src][dst] = append(s.Chan[src][dst], msg)
}

// dispatch routes a delivered message to its handler and returns the action
// name for coverage accounting.
func (m *Machine) dispatch(s *State, src, dst int, msg Msg) string {
	switch msg.Type {
	case "rv":
		m.handleRequestVote(s, dst, src, msg)
		return "HandleRequestVote"
	case "rvr":
		m.handleRequestVoteResponse(s, dst, src, msg)
		return "HandleRequestVoteResponse"
	case "ae":
		m.handleAppendEntries(s, dst, src, msg)
		return "HandleAppendEntries"
	case "aer":
		m.handleAppendEntriesResponse(s, dst, src, msg)
		return "HandleAppendEntriesResponse"
	case "snap":
		m.handleSnapshot(s, dst, src, msg)
		return "HandleSnapshot"
	default:
		panic(fmt.Sprintf("raftbase: unknown message type %q", msg.Type))
	}
}

// Environment actions.

func (m *Machine) crash(s *State, i int) {
	s.Up[i] = false
	for j := 0; j < m.n; j++ {
		if j == i {
			continue
		}
		s.Chan[i][j] = nil
		s.Chan[j][i] = nil
		s.Cut[i][j] = true
		s.Cut[j][i] = true
	}
	// Volatile state is lost; we clear it eagerly so fingerprints do not
	// distinguish dead states by unreachable data. Durable state (term,
	// votedFor, log, snapshot) survives — unless the whole system is
	// in-memory (Volatile option), in which case everything resets.
	s.Role[i] = Follower
	s.Commit[i] = 0
	s.Votes[i] = nil
	s.PreVotes[i] = nil
	s.Next[i] = nil
	s.Match[i] = nil
	if m.opt.Volatile {
		s.Term[i] = 0
		s.VotedFor[i] = -1
		s.Log[i] = nil
		s.SnapIdx[i] = 0
		s.SnapTerm[i] = 0
	}
}

// crashDirty crashes node i losing its unsynced writes: the live durable
// variables roll back to the Dur* mirrors (what the implementation's store
// actually holds on disk), then the ordinary crash clears volatile state.
// Without the durability model (or for Volatile systems, which lose
// everything anyway) this degenerates to a clean crash.
func (m *Machine) crashDirty(s *State, i int) {
	if s.durability {
		s.Term[i] = s.DurTerm[i]
		s.VotedFor[i] = s.DurVote[i]
		s.Log[i] = append([]Entry(nil), s.DurLog[i]...)
	}
	m.crash(s, i)
}

func (m *Machine) restart(s *State, i int) {
	s.Up[i] = true
	for j := 0; j < m.n; j++ {
		if j == i || !s.Up[j] {
			continue
		}
		if s.Part[i][j] || s.Part[j][i] {
			continue
		}
		s.Cut[i][j] = false
		s.Cut[j][i] = false
	}
}

func (m *Machine) partition(s *State, a, b int) {
	s.Part[a][b] = true
	s.Part[b][a] = true
	s.Cut[a][b] = true
	s.Cut[b][a] = true
	s.Chan[a][b] = nil
	s.Chan[b][a] = nil
}

func (m *Machine) heal(s *State, a, b int) {
	s.Part[a][b] = false
	s.Part[b][a] = false
	if s.Up[a] && s.Up[b] {
		s.Cut[a][b] = false
		s.Cut[b][a] = false
	}
}

// Actions lists the specification's action names (Table 1's #Act): the
// node-level events Next can fire under this instantiation.
func (m *Machine) Actions() []string {
	acts := []string{
		"TimeoutElection", "TimeoutHeartbeat",
		"HandleRequestVote", "HandleRequestVoteResponse",
		"HandleAppendEntries", "HandleAppendEntriesResponse",
		"NodeCrash", "NodeStart",
	}
	if m.opt.Budget.MaxDirtyCrashes > 0 {
		acts = append(acts, "NodeCrashDirty")
	}
	if m.opt.KV {
		acts = append(acts, "ClientPut", "ClientGet")
	} else {
		acts = append(acts, "ClientRequest")
	}
	if m.opt.Snapshots {
		acts = append(acts, "CompactLog", "HandleSnapshot")
	}
	if m.opt.Transport == vnet.TCP {
		acts = append(acts, "NetworkPartition", "NetworkRecover")
	} else {
		acts = append(acts, "DropMessage", "DuplicateMessage")
	}
	return acts
}
