package raftbase

import (
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Incremental orbit canonicalization (spec.OrbitHasher).
//
// The state is decomposed into sub-digests that are invariant under node
// renaming, hashed ONCE per state by orbitDigests:
//
//   - node[i]: node i's local component — role, term, log, commit index,
//     snapshot boundary, liveness, durable mirrors, and the row *shapes*
//     (lengths) of its nil-able per-peer matrices. No node ids.
//   - edge[a*n+b]: the ordered-pair component — a's per-peer matrix cells
//     for peer b (Votes/PreVotes/Next/Match, written only when the row is
//     materialised; the row length in node[a] pins the structure), and for
//     a != b the a→b channel queue and Cut/Part flags. raftbase messages
//     carry no node ids, so whole queues are permutation-invariant.
//   - a global digest: state shared by all nodes (the committed ghost log,
//     flags, KV read ghosts, budget counters, violation flag).
//
// orbitCombine then derives the fingerprint of the state permuted by any
// perm without touching the state again, except for the handful of
// node-id-VALUED fields that cannot live in invariant sub-digests
// (VotedFor, DurVote, LastReadNode): it writes node digests in permuted
// slot order, edge digests in permuted pair order, then the id residue
// mapped through perm — exactly the data a materialised Permute would
// produce. State.Fingerprint is orbitCombine under the identity, so
//
//	orbitCombine(perm) == Permute(s, perm).Fingerprint()
//
// holds by construction (slot j of the permuted state is original node
// inv[j]), and the min-of-orbit canonical fingerprint costs one full
// digest pass plus P! cheap recombines instead of P! full passes.
// raftbase_test.go property-tests the equality against the materialising
// reference for every permutation.

// orbitMaxNodes bounds the stack-allocated digest buffers used by
// Fingerprint and PermutedFingerprint; larger configurations fall back to
// heap buffers. (Symmetry configurations in the paper use 2–3 nodes.)
const orbitMaxNodes = 8

// orbitDigests fills node (len n) and edge (len n*n, row-major) with the
// state's id-free sub-digests and returns the global digest.
func (s *State) orbitDigests(node, edge []uint64) uint64 {
	n := s.n
	var h fp.Hasher
	for i := 0; i < n; i++ {
		h.Reset()
		h.WriteInt(s.Role[i])
		h.WriteInt(s.Term[i])
		h.Sep()
		h.WriteInt(len(s.Log[i]))
		for _, e := range s.Log[i] {
			h.WriteInt(e.Term)
			h.WriteString(e.Value)
		}
		h.WriteInt(s.Commit[i])
		h.WriteInt(s.SnapIdx[i])
		h.WriteInt(s.SnapTerm[i])
		h.WriteBool(s.Up[i])
		// Row shapes of the nil-able matrices: which of node i's per-peer
		// rows are materialised. The cells live in the edge digests; pinning
		// the lengths here keeps an absent row from aliasing an all-zero one.
		h.WriteInt(len(s.Votes[i]))
		h.WriteInt(len(s.PreVotes[i]))
		h.WriteInt(len(s.Next[i]))
		h.WriteInt(len(s.Match[i]))
		// Durability mirrors are hashed only when the fault model is active,
		// so instantiations without dirty crashes keep their hashing cost
		// unchanged (DurVote is a node id: it lives in the combine residue).
		if s.durability {
			h.WriteInt(s.DurTerm[i])
			h.Sep()
			h.WriteInt(len(s.DurLog[i]))
			for _, e := range s.DurLog[i] {
				h.WriteInt(e.Term)
				h.WriteString(e.Value)
			}
		}
		node[i] = h.Sum()
	}
	for a := 0; a < n; a++ {
		votes, preVotes := s.Votes[a], s.PreVotes[a]
		next, match := s.Next[a], s.Match[a]
		for b := 0; b < n; b++ {
			h.Reset()
			if len(votes) > 0 {
				h.WriteBool(votes[b])
			}
			if len(preVotes) > 0 {
				h.WriteBool(preVotes[b])
			}
			if len(next) > 0 {
				h.WriteInt(next[b])
			}
			if len(match) > 0 {
				h.WriteInt(match[b])
			}
			if a != b {
				q := s.Chan[a][b]
				h.WriteInt(len(q))
				for k := range q {
					q[k].hash(&h)
				}
				h.WriteBool(s.Cut[a][b])
				h.WriteBool(s.Part[a][b])
			}
			edge[a*n+b] = h.Sum()
		}
	}
	h.Reset()
	h.WriteInt(len(s.Committed))
	for _, e := range s.Committed {
		h.WriteInt(e.Term)
		h.WriteString(e.Value)
	}
	h.WriteBool(s.SnapConflictInstall)
	h.WriteString(s.LastReadKey)
	h.WriteString(s.LastReadVal)
	h.WriteString(s.LastReadWant)
	h.WriteBool(s.LastReadBad)
	s.Counters.Hash(&h)
	s.Viol.Hash(&h)
	return h.Sum()
}

// orbitCombine folds the sub-digests into the fingerprint of the state
// permuted by perm (inv is perm's inverse: slot j of the permuted state
// holds original node inv[j]). Under the identity permutation this IS
// State.Fingerprint.
func (s *State) orbitCombine(node, edge []uint64, global uint64, perm, inv []int) uint64 {
	n := s.n
	var h fp.Hasher
	h.Reset()
	for j := 0; j < n; j++ {
		h.WriteDigest(node[inv[j]])
	}
	for a := 0; a < n; a++ {
		row := edge[inv[a]*n:]
		for b := 0; b < n; b++ {
			h.WriteDigest(row[inv[b]])
		}
	}
	// Node-id residue: the only fields whose VALUES are node identities,
	// written in permuted slot order with the ids mapped through perm.
	h.Sep()
	for j := 0; j < n; j++ {
		v := s.VotedFor[inv[j]]
		if v >= 0 {
			v = perm[v]
		}
		h.WriteInt(v)
	}
	if s.durability {
		for j := 0; j < n; j++ {
			v := s.DurVote[inv[j]]
			if v >= 0 {
				v = perm[v]
			}
			h.WriteInt(v)
		}
	}
	h.WriteInt(perm[s.LastReadNode])
	h.WriteDigest(global)
	return h.Sum()
}

// orbitBuffers returns digest buffers for an n-node state: views of the
// caller's stack arrays when the arity fits, heap slices otherwise.
func orbitBuffers(n int, nodeBuf *[orbitMaxNodes]uint64, edgeBuf *[orbitMaxNodes * orbitMaxNodes]uint64) (node, edge []uint64) {
	if n <= orbitMaxNodes {
		return nodeBuf[:n], edgeBuf[:n*n]
	}
	return make([]uint64, n), make([]uint64, n*n)
}

// OrbitFingerprint implements spec.OrbitHasher: the minimum fingerprint
// over all node permutations (and whether a non-identity permutation
// produced it), from one digest pass plus cheap per-permutation combines.
func (m *Machine) OrbitFingerprint(st spec.State, perms *spec.PermTable, scratch *fp.OrbitScratch) (uint64, bool) {
	s := st.(*State)
	scratch.Reset(s.n)
	g := s.orbitDigests(scratch.Node, scratch.Edge)
	plain := s.orbitCombine(scratch.Node, scratch.Edge, g, perms.Identity, perms.Identity)
	min := plain
	for k, p := range perms.NonIdentity {
		if f := s.orbitCombine(scratch.Node, scratch.Edge, g, p, perms.NonIdentityInv[k]); f < min {
			min = f
		}
	}
	return min, min != plain
}
