package raftbase

import (
	"encoding/binary"
	"fmt"

	"github.com/sandtable-go/sandtable/internal/spec"
)

// spec.StateCodec for the Raft-family states: a compact varint encoding that
// lets frontiers spill to disk (explorer -mem-budget) and travel between
// cluster peers. The machine's instantiation constants (node count, feature
// flags, durability) are NOT encoded — they are re-derived from the decoding
// machine's options, so an encoding is only meaningful to a machine built
// with the same Options, which is exactly the contract the explorer's
// checkpoint/cluster compatibility digests enforce.
//
// The encoding preserves nil-ness of the per-node Votes/PreVotes/Next/Match
// rows (a 0 marker for nil, len+1 otherwise): fingerprints and rendering
// treat nil and empty alike, but permute branches on nil-ness, so a decoded
// state must round-trip it exactly. Log rows, channel queues, and Committed
// only ever exist as nil-or-nonempty (see clone), so a plain length suffices.

// msgTypes maps the Msg.Type vocabulary to wire codes; index = code.
var msgTypes = []string{"rv", "rvr", "ae", "aer", "snap"}

func msgTypeCode(t string) (byte, bool) {
	for i, s := range msgTypes {
		if s == t {
			return byte(i), true
		}
	}
	return 0, false
}

// AppendState implements spec.StateCodec.
func (m *Machine) AppendState(dst []byte, st spec.State) []byte {
	s := st.(*State)
	n := s.n
	vi := func(v int) { dst = binary.AppendVarint(dst, int64(v)) }
	vb := func(b bool) {
		if b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	vs := func(str string) {
		dst = binary.AppendUvarint(dst, uint64(len(str)))
		dst = append(dst, str...)
	}
	entries := func(es []Entry) {
		dst = binary.AppendUvarint(dst, uint64(len(es)))
		for _, e := range es {
			vi(e.Term)
			vs(e.Value)
		}
	}
	boolRow := func(row []bool) {
		if row == nil {
			dst = append(dst, 0)
			return
		}
		dst = binary.AppendUvarint(dst, uint64(len(row))+1)
		for _, b := range row {
			vb(b)
		}
	}
	intRow := func(row []int) {
		if row == nil {
			dst = append(dst, 0)
			return
		}
		dst = binary.AppendUvarint(dst, uint64(len(row))+1)
		for _, v := range row {
			vi(v)
		}
	}

	for i := 0; i < n; i++ {
		vi(s.Role[i])
		vi(s.Term[i])
		vi(s.VotedFor[i])
		vi(s.Commit[i])
		vi(s.SnapIdx[i])
		vi(s.SnapTerm[i])
		vi(s.DurTerm[i])
		vi(s.DurVote[i])
		vb(s.Up[i])
	}
	for i := 0; i < n; i++ {
		entries(s.Log[i])
		entries(s.DurLog[i])
		boolRow(s.Votes[i])
		boolRow(s.PreVotes[i])
		intRow(s.Next[i])
		intRow(s.Match[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vb(s.Cut[i][j])
			vb(s.Part[i][j])
			q := s.Chan[i][j]
			dst = binary.AppendUvarint(dst, uint64(len(q)))
			for k := range q {
				msg := &q[k]
				code, ok := msgTypeCode(msg.Type)
				if !ok {
					// Unreachable with the current action set; a loud
					// sentinel beats silent corruption if a new message
					// kind is ever added without extending msgTypes.
					panic(fmt.Sprintf("raftbase: unencodable message type %q", msg.Type))
				}
				dst = append(dst, code)
				vi(msg.Term)
				vi(msg.LastIndex)
				vi(msg.LastTerm)
				vb(msg.Pre)
				vb(msg.Granted)
				vi(msg.PrevIndex)
				vi(msg.PrevTerm)
				entries(msg.Entries)
				vi(msg.Commit)
				vb(msg.Flag)
				vi(msg.NextIndex)
				vb(msg.Retry)
				vi(msg.SnapIndex)
				vi(msg.SnapTerm)
			}
		}
	}
	entries(s.Committed)
	vb(s.SnapConflictInstall)
	vi(s.LastReadNode)
	vs(s.LastReadKey)
	vs(s.LastReadVal)
	vs(s.LastReadWant)
	vb(s.LastReadBad)
	// spec.Counters, field by field (keep in sync with Counters.Hash).
	c := &s.Counters
	vi(c.Timeouts)
	vi(c.Crashes)
	vi(c.Restarts)
	vi(c.Requests)
	vi(c.Partitions)
	vi(c.Drops)
	vi(c.Duplicates)
	vi(c.Compactions)
	vi(c.DirtyCrashes)
	vs(s.Viol.Flag)
	return dst
}

// stateDecoder walks one encoded state; the first error sticks and every
// subsequent read returns zero values, so call sites stay linear.
type stateDecoder struct {
	src []byte
	err error
}

func (d *stateDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("raftbase: decode state: truncated %s", what)
	}
}

func (d *stateDecoder) int(what string) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.src)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.src = d.src[n:]
	return int(v)
}

func (d *stateDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.src)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.src = d.src[n:]
	return v
}

func (d *stateDecoder) bool(what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.src) == 0 {
		d.fail(what)
		return false
	}
	b := d.src[0]
	d.src = d.src[1:]
	return b != 0
}

func (d *stateDecoder) str(what string) string {
	ln := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if ln > uint64(len(d.src)) {
		d.fail(what)
		return ""
	}
	s := string(d.src[:ln])
	d.src = d.src[ln:]
	return s
}

func (d *stateDecoder) entries(what string) []Entry {
	ln := d.uvarint(what)
	if d.err != nil || ln == 0 {
		return nil
	}
	if ln > uint64(len(d.src)) {
		d.fail(what)
		return nil
	}
	es := make([]Entry, ln)
	for i := range es {
		es[i].Term = d.int(what)
		es[i].Value = d.str(what)
	}
	if d.err != nil {
		return nil
	}
	return es
}

func (d *stateDecoder) boolRow(what string) []bool {
	code := d.uvarint(what)
	if d.err != nil || code == 0 {
		return nil
	}
	ln := code - 1
	if ln > uint64(len(d.src)) {
		d.fail(what)
		return nil
	}
	row := make([]bool, ln)
	for i := range row {
		row[i] = d.bool(what)
	}
	return row
}

func (d *stateDecoder) intRow(what string) []int {
	code := d.uvarint(what)
	if d.err != nil || code == 0 {
		return nil
	}
	ln := code - 1
	if ln > uint64(len(d.src)) {
		d.fail(what)
		return nil
	}
	row := make([]int, ln)
	for i := range row {
		row[i] = d.int(what)
	}
	return row
}

// DecodeState implements spec.StateCodec.
func (m *Machine) DecodeState(src []byte) (spec.State, []byte, error) {
	n := m.n
	s := newState(n)
	s.snapshots = m.opt.Snapshots
	s.kv = m.opt.KV
	s.durability = m.opt.Budget.MaxDirtyCrashes > 0
	d := &stateDecoder{src: src}

	for i := 0; i < n; i++ {
		s.Role[i] = d.int("role")
		s.Term[i] = d.int("term")
		s.VotedFor[i] = d.int("votedFor")
		s.Commit[i] = d.int("commit")
		s.SnapIdx[i] = d.int("snapIdx")
		s.SnapTerm[i] = d.int("snapTerm")
		s.DurTerm[i] = d.int("durTerm")
		s.DurVote[i] = d.int("durVote")
		s.Up[i] = d.bool("up")
	}
	for i := 0; i < n; i++ {
		s.Log[i] = d.entries("log")
		s.DurLog[i] = d.entries("durLog")
		s.Votes[i] = d.boolRow("votes")
		s.PreVotes[i] = d.boolRow("preVotes")
		s.Next[i] = d.intRow("next")
		s.Match[i] = d.intRow("match")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Cut[i][j] = d.bool("cut")
			s.Part[i][j] = d.bool("part")
			qn := d.uvarint("chan")
			if d.err != nil {
				break
			}
			if qn > uint64(len(d.src)) {
				d.fail("chan")
				break
			}
			if qn == 0 {
				continue
			}
			q := make([]Msg, qn)
			for k := range q {
				msg := &q[k]
				if len(d.src) == 0 {
					d.fail("msg type")
					break
				}
				code := d.src[0]
				d.src = d.src[1:]
				if int(code) >= len(msgTypes) {
					if d.err == nil {
						d.err = fmt.Errorf("raftbase: decode state: unknown message type code %d", code)
					}
					break
				}
				msg.Type = msgTypes[code]
				msg.Term = d.int("msg term")
				msg.LastIndex = d.int("msg lastIndex")
				msg.LastTerm = d.int("msg lastTerm")
				msg.Pre = d.bool("msg pre")
				msg.Granted = d.bool("msg granted")
				msg.PrevIndex = d.int("msg prevIndex")
				msg.PrevTerm = d.int("msg prevTerm")
				msg.Entries = d.entries("msg entries")
				msg.Commit = d.int("msg commit")
				msg.Flag = d.bool("msg flag")
				msg.NextIndex = d.int("msg nextIndex")
				msg.Retry = d.bool("msg retry")
				msg.SnapIndex = d.int("msg snapIndex")
				msg.SnapTerm = d.int("msg snapTerm")
			}
			s.Chan[i][j] = q
		}
	}
	s.Committed = d.entries("committed")
	s.SnapConflictInstall = d.bool("snapConflictInstall")
	s.LastReadNode = d.int("lastReadNode")
	s.LastReadKey = d.str("lastReadKey")
	s.LastReadVal = d.str("lastReadVal")
	s.LastReadWant = d.str("lastReadWant")
	s.LastReadBad = d.bool("lastReadBad")
	c := &s.Counters
	c.Timeouts = d.int("timeouts")
	c.Crashes = d.int("crashes")
	c.Restarts = d.int("restarts")
	c.Requests = d.int("requests")
	c.Partitions = d.int("partitions")
	c.Drops = d.int("drops")
	c.Duplicates = d.int("duplicates")
	c.Compactions = d.int("compactions")
	c.DirtyCrashes = d.int("dirtyCrashes")
	s.Viol.Flag = d.str("violation")
	if d.err != nil {
		return nil, nil, d.err
	}
	return s, d.src, nil
}
